// ptb::race — a simulator-integrated dynamic data-race detector.
//
// The paper's central synchronization claims (§2: ORIG/LOCAL/UPDATE are
// correct *because of* per-cell locks; SPACE needs no locks because
// processors own disjoint subspaces) are checked here rather than taken on
// faith. The detector is a FastTrack-style happens-before checker (vector
// clocks with adaptive epoch compression, Flanagan & Freund, PLDI'09)
// combined with an Eraser-style lockset witness (Savage et al., SOSP'97):
// the happens-before relation decides whether two accesses race, and the
// per-granule candidate lockset enriches each report with *why* (which locks,
// if any, consistently protected the location).
//
// It plugs into the simulator as a MemModel decorator (RaceModel wraps the
// platform's protocol model), driven by the hooks that already exist —
// on_read/on_write/on_rmw/on_acquire/on_release/on_barrier_* — all of which
// the simulator calls under its global ordering lock in virtual-time order,
// so the detector needs no synchronization of its own and every run is
// deterministic. Opt-in via --race / PTB_RACE; when disabled the raw
// protocol model is installed and the only residual cost is the no-op
// virtual on_phase call per phase change (bench_sched_micro guards this).
//
// The happens-before edges mirror the simulated synchronization exactly:
//
//   lock release / acquire     release assigns the lock's clock from the
//                              holder; acquire joins it into the acquirer
//   ordered_store / _load      release/acquire on the atomic object itself
//                              (the publish pattern in shared_insert)
//   fetch_add                  acquire+release (acq_rel RMW on the counter)
//   barrier                    arrive joins every participant's clock into a
//                              generation accumulator; depart joins it back
//
// read_shared() is deliberately NOT checked: it is the force-phase fast path
// whose contract ("only in phases where the touched data is not written") is
// a phase-structure invariant, not a per-access one — e.g. the partitioning
// phase legitimately reads stale per-body charge slots it is concurrently
// re-claiming, resolved by the phase barrier.
//
// Shadow state is keyed through the decorator's own RegionTable at a 4-byte
// granule (SPACE's per-processor count slots are adjacent int32s; an 8-byte
// granule would report false sharing as racing). See docs/ANALYSIS.md for
// the shadow-word layout and how to read a report.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/model.hpp"
#include "rt/phase.hpp"

namespace ptb::race {

/// Shadow granule size (bytes). Must divide the common shared-field sizes;
/// 4 keeps adjacent per-processor int32 slots (SPACE's count rows) distinct.
inline constexpr std::size_t kGranuleBytes = 4;

// --- epochs -----------------------------------------------------------------
// An epoch packs one processor's (clock, phase, proc) into a single word so
// the common shadow case (location last accessed by one processor) costs one
// compare instead of a vector-clock walk. The phase bits ride along purely
// for race-report context; happens-before comparisons use the clock alone.
namespace epoch {

inline constexpr int kProcBits = 8;   // SimContext caps nprocs at 64
inline constexpr int kPhaseBits = 4;  // kNumPhases == 6
inline constexpr int kShift = kProcBits + kPhaseBits;
inline constexpr std::uint64_t kNone = 0;  // clocks start at 1, so 0 is free

inline std::uint64_t pack(std::uint64_t clock, Phase phase, int proc) {
  return (clock << kShift) | (static_cast<std::uint64_t>(phase) << kProcBits) |
         static_cast<std::uint64_t>(proc);
}
inline std::uint64_t clock_of(std::uint64_t e) { return e >> kShift; }
inline int proc_of(std::uint64_t e) {
  return static_cast<int>(e & ((std::uint64_t{1} << kProcBits) - 1));
}
inline Phase phase_of(std::uint64_t e) {
  return static_cast<Phase>((e >> kProcBits) & ((std::uint64_t{1} << kPhaseBits) - 1));
}

}  // namespace epoch

// --- vector clocks ----------------------------------------------------------

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int nprocs) : c_(static_cast<std::size_t>(nprocs), 0) {}

  int size() const { return static_cast<int>(c_.size()); }
  std::uint64_t get(int p) const { return c_[static_cast<std::size_t>(p)]; }
  void set(int p, std::uint64_t v) { c_[static_cast<std::size_t>(p)] = v; }
  void increment(int p) { ++c_[static_cast<std::size_t>(p)]; }

  /// Component-wise maximum (the happens-before join).
  void join(const VectorClock& o) {
    for (std::size_t i = 0; i < c_.size(); ++i)
      if (o.c_[i] > c_[i]) c_[i] = o.c_[i];
  }
  void assign(const VectorClock& o) { c_ = o.c_; }
  void clear() { c_.assign(c_.size(), 0); }

  /// True when an event at (clock, p) happens-before this clock's owner.
  bool covers(std::uint64_t clock, int p) const {
    return clock <= c_[static_cast<std::size_t>(p)];
  }

 private:
  std::vector<std::uint64_t> c_;
};

// --- locksets ---------------------------------------------------------------

/// Interning table for sets of lock addresses: every distinct set gets a
/// small id, so the per-granule candidate lockset is one uint32_t and the
/// Eraser intersection is computed once per distinct (candidate, held) pair.
class LocksetTable {
 public:
  static constexpr std::uint32_t kEmpty = 0;

  LocksetTable() { sets_.emplace_back(); /* id 0 = {} */ }

  std::uint32_t add(std::uint32_t set, std::uintptr_t lock);
  std::uint32_t remove(std::uint32_t set, std::uintptr_t lock);
  std::uint32_t intersect(std::uint32_t a, std::uint32_t b);
  const std::vector<std::uintptr_t>& contents(std::uint32_t id) const {
    return sets_[id];
  }
  std::size_t size() const { return sets_.size(); }

 private:
  std::uint32_t intern(std::vector<std::uintptr_t> sorted);

  std::vector<std::vector<std::uintptr_t>> sets_;
  std::map<std::vector<std::uintptr_t>, std::uint32_t> ids_;
};

// --- reports ----------------------------------------------------------------

/// One detected race: two accesses to the same granule, unordered by
/// happens-before, at least one a write. `first` is reconstructed from the
/// shadow word (the earlier access in virtual time), `second` is the access
/// that tripped the check.
struct Race {
  std::string region;      // owning shared region (RegionTable name)
  std::size_t offset = 0;  // byte offset of the granule within the region
  int first_proc = -1;
  Phase first_phase = Phase::kOther;
  bool first_write = false;
  int second_proc = -1;
  Phase second_phase = Phase::kOther;
  bool second_write = false;
  std::uint64_t when_ns = 0;  // virtual time of the second access
  /// Locks held by the second access (region-relative names when resolvable).
  std::vector<std::string> held_locks;
  /// Eraser witness: did some lock protect every access to this granule so
  /// far? (With happens-before as the judge this is virtually always false
  /// for a reported race — a common lock would have ordered the accesses.)
  bool lockset_consistent = false;
};

struct RaceReport {
  bool enabled = false;
  /// Distinct racy granules (each granule reports at most once).
  std::uint64_t races = 0;
  std::uint64_t checked_reads = 0;
  std::uint64_t checked_writes = 0;
  std::uint64_t atomics = 0;        // ordered load/store + fetch_add sync ops
  std::uint64_t lock_acquires = 0;  // SPACE must finish with 0 of these
  std::uint64_t lock_releases = 0;
  std::uint64_t barriers = 0;  // barrier arrivals
  std::vector<Race> top;       // first kMaxStored distinct races, in order
  static constexpr std::size_t kMaxStored = 64;
};

/// Multi-line human-readable rendering (ptbsim, test failure messages).
std::string format_race_report(const RaceReport& r);

// --- the detector -----------------------------------------------------------

class RaceDetector {
 public:
  /// `regions` is the caller's granule-sized RegionTable (block_bytes ==
  /// kGranuleBytes); it maps access addresses to shadow indices and race
  /// reports back to region names. Must outlive the detector.
  RaceDetector(int nprocs, const RegionTable* regions);

  /// Grows the shadow array after a region registration.
  void sync_shadow();
  /// Clears all shadow, sync-variable and per-processor state (regions are
  /// the caller's and survive).
  void reset();

  // Called in virtual-time order (under the simulator's ordering lock).
  // Each returns the number of *new* distinct races recorded (0 almost
  // always), so the caller can emit trace instants without re-diffing.
  int on_plain(int proc, const void* p, std::size_t n, bool is_write, std::uint64_t now);
  void on_atomic(int proc, const void* sync, bool is_write);
  void on_rmw(int proc, const void* sync);
  void on_lock_acquire(int proc, const void* lock);
  void on_lock_release(int proc, const void* lock);
  void on_barrier_arrive(int proc);
  void on_barrier_depart(int proc);
  void on_phase(int proc, Phase ph);

  const RaceReport& report() const { return report_; }
  const VectorClock& proc_clock(int p) const {
    return vc_[static_cast<std::size_t>(p)];
  }
  std::uint32_t held_lockset(int p) const { return held_[static_cast<std::size_t>(p)]; }
  LocksetTable& locksets() { return locksets_; }

 private:
  /// Per-granule shadow word (24 bytes): last-write epoch, last-read epoch
  /// (or the shared-read sentinel, with `rvc` indexing the per-proc read
  /// epochs), and the interned Eraser candidate lockset.
  struct Shadow {
    std::uint64_t w = epoch::kNone;
    std::uint64_t r = epoch::kNone;
    std::uint32_t rvc = 0;
    std::uint32_t lockset = kLocksetUnset;
  };
  static constexpr std::uint64_t kReadShared = ~std::uint64_t{0};
  static constexpr std::uint32_t kLocksetUnset = ~std::uint32_t{0};

  /// Inflated read state: full epoch (clock+phase) of each processor's last
  /// read since the last write, kNone where absent.
  struct ReadVC {
    std::vector<std::uint64_t> e;
  };

  std::uint64_t cur_epoch(int p) const { return epoch_[static_cast<std::size_t>(p)]; }
  void refresh_epoch(int p) {
    const auto i = static_cast<std::size_t>(p);
    epoch_[i] = epoch::pack(vc_[i].get(p), phase_[i], p);
  }
  void release_into(int proc, VectorClock& target);
  VectorClock& sync_clock(const void* addr);
  int check_write(std::size_t g, Shadow& s, int proc, std::uint64_t now);
  int check_read(std::size_t g, Shadow& s, int proc, std::uint64_t now);
  void record_race(std::size_t g, const Shadow& s, std::uint64_t first_epoch,
                   bool first_write, int proc, bool second_write, std::uint64_t now);
  void granule_location(std::size_t g, std::string& region, std::size_t& offset) const;
  std::string lock_name(std::uintptr_t lock) const;

  int nprocs_;
  const RegionTable* regions_;
  std::vector<Shadow> shadow_;
  std::vector<ReadVC> rvcs_;
  std::vector<VectorClock> vc_;           // per-processor clocks
  std::vector<std::uint64_t> epoch_;      // cached pack(vc_[p][p], phase, p)
  std::vector<Phase> phase_;
  std::vector<std::uint32_t> held_;       // per-processor held lockset id
  LocksetTable locksets_;
  std::unordered_map<const void*, VectorClock> syncs_;  // locks + atomics
  std::unordered_set<std::size_t> reported_;            // deduped racy granules
  // Stable report names for locks outside registered regions: interned in
  // first-acquisition order, which is virtual-time deterministic, so reports
  // never carry host addresses (they vary across processes under ASLR).
  std::unordered_map<std::uintptr_t, int> lock_ids_;

  // Barrier happens-before: two alternating generation slots, because the
  // last departures of generation g can interleave (at equal virtual time,
  // larger proc ids) with the first arrivals of generation g+1. A third
  // concurrent generation is impossible: g+1 cannot release until every
  // alive processor has arrived at it, and a processor still departing g
  // has not.
  struct BarrierGen {
    VectorClock acc;
    bool departing = false;
  };
  BarrierGen bgen_[2];
  int bcur_ = 0;
  std::vector<std::uint8_t> pgen_;  // which slot each processor arrived in

  RaceReport report_;
};

// --- the MemModel decorator -------------------------------------------------

/// Wraps the platform's protocol model: every hook first drives the
/// detector, then forwards to the wrapped model (whose latencies are
/// returned unchanged, so --race never perturbs virtual time). Statistics
/// accessors forward to the wrapped model too — results are identical with
/// and without the decorator.
class RaceModel final : public MemModel {
 public:
  explicit RaceModel(std::unique_ptr<MemModel> inner);

  void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                       int fixed_home, std::string name) override;
  void reset() override;

  std::uint64_t on_read(int proc, const void* p, std::size_t n, std::uint64_t now) override;
  std::uint64_t on_write(int proc, const void* p, std::size_t n,
                         std::uint64_t now) override;
  std::uint64_t on_rmw(int proc, const void* p, std::uint64_t now) override;
  std::uint64_t on_acquire(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_release(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_barrier_arrive(int proc, std::uint64_t now) override;
  std::uint64_t on_barrier_depart(int proc, std::uint64_t now) override;
  std::uint64_t on_atomic(int proc, const void* sync, bool is_write, const void* p,
                          std::size_t n, std::uint64_t now) override;
  std::uint64_t on_read_shared(int proc, const void* p, std::size_t n) override;
  std::uint64_t on_read_shared_span(int proc, const void* p, std::size_t n,
                                    std::size_t stride, std::size_t count) override;
  void on_phase(int proc, Phase ph) override;
  void set_serialized(bool s) override { inner_->set_serialized(s); }

  const MemProcStats& proc_stats(int p) const override { return inner_->proc_stats(p); }
  MemProcStats total_stats() const override { return inner_->total_stats(); }
  void reset_stats() override { inner_->reset_stats(); }

  const RaceReport& report() const { return detector_.report(); }
  RaceDetector& detector() { return detector_; }
  MemModel& inner() { return *inner_; }

  /// Optional: emit a `race` category instant on each newly detected race.
  void set_tracer(ptb::trace::Tracer* t) { tracer_ = t; }

 private:
  void note_races(int proc, int new_races, std::uint64_t now);

  std::unique_ptr<MemModel> inner_;
  RaceDetector detector_;
  ptb::trace::Tracer* tracer_ = nullptr;
};

/// True when PTB_RACE is set to a non-empty, non-"0" value (cached).
bool default_race_enabled();

}  // namespace ptb::race
