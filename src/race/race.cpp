#include "race/race.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "support/check.hpp"
#include "trace/trace.hpp"

namespace ptb::race {

// --- LocksetTable -----------------------------------------------------------

std::uint32_t LocksetTable::intern(std::vector<std::uintptr_t> sorted) {
  if (sorted.empty()) return kEmpty;
  auto it = ids_.find(sorted);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(sets_.size());
  ids_.emplace(sorted, id);
  sets_.push_back(std::move(sorted));
  return id;
}

std::uint32_t LocksetTable::add(std::uint32_t set, std::uintptr_t lock) {
  std::vector<std::uintptr_t> s = sets_[set];
  auto it = std::lower_bound(s.begin(), s.end(), lock);
  if (it != s.end() && *it == lock) return set;  // already a member
  s.insert(it, lock);
  return intern(std::move(s));
}

std::uint32_t LocksetTable::remove(std::uint32_t set, std::uintptr_t lock) {
  std::vector<std::uintptr_t> s = sets_[set];
  auto it = std::lower_bound(s.begin(), s.end(), lock);
  if (it == s.end() || *it != lock) return set;  // not a member
  s.erase(it);
  return intern(std::move(s));
}

std::uint32_t LocksetTable::intersect(std::uint32_t a, std::uint32_t b) {
  if (a == b) return a;
  if (a == kEmpty || b == kEmpty) return kEmpty;
  const auto& sa = sets_[a];
  const auto& sb = sets_[b];
  std::vector<std::uintptr_t> out;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(out));
  return intern(std::move(out));
}

// --- RaceDetector -----------------------------------------------------------

RaceDetector::RaceDetector(int nprocs, const RegionTable* regions)
    : nprocs_(nprocs), regions_(regions) {
  PTB_CHECK(nprocs >= 1 && nprocs < (1 << epoch::kProcBits));
  PTB_CHECK(kNumPhases <= (1 << epoch::kPhaseBits));
  reset();
  report_.enabled = true;
}

void RaceDetector::reset() {
  const auto np = static_cast<std::size_t>(nprocs_);
  shadow_.assign(regions_->total_blocks(), Shadow{});
  rvcs_.clear();
  vc_.assign(np, VectorClock(nprocs_));
  epoch_.assign(np, 0);
  phase_.assign(np, Phase::kOther);
  held_.assign(np, LocksetTable::kEmpty);
  syncs_.clear();
  reported_.clear();
  lock_ids_.clear();
  for (auto& b : bgen_) {
    b.acc = VectorClock(nprocs_);
    b.departing = false;
  }
  bcur_ = 0;
  pgen_.assign(np, 0);
  // Clocks start at 1 so a packed epoch is never epoch::kNone.
  for (int p = 0; p < nprocs_; ++p) {
    vc_[static_cast<std::size_t>(p)].set(p, 1);
    refresh_epoch(p);
  }
  report_ = RaceReport{};
  report_.enabled = true;
}

void RaceDetector::sync_shadow() {
  // Regions only grow (first_block is append-ordered), so existing shadow
  // indices stay valid.
  if (shadow_.size() < regions_->total_blocks())
    shadow_.resize(regions_->total_blocks());
}

VectorClock& RaceDetector::sync_clock(const void* addr) {
  auto it = syncs_.find(addr);
  if (it == syncs_.end())
    it = syncs_.emplace(addr, VectorClock(nprocs_)).first;
  return it->second;
}

/// Release semantics: publish the releasing processor's knowledge, then tick
/// its own clock so post-release accesses are not covered by the handoff.
void RaceDetector::release_into(int proc, VectorClock& target) {
  auto& c = vc_[static_cast<std::size_t>(proc)];
  target.assign(c);
  c.increment(proc);
  refresh_epoch(proc);
}

void RaceDetector::on_lock_acquire(int proc, const void* lock) {
  ++report_.lock_acquires;
  const auto pi = static_cast<std::size_t>(proc);
  vc_[pi].join(sync_clock(lock));
  refresh_epoch(proc);
  const auto key = reinterpret_cast<std::uintptr_t>(lock);
  lock_ids_.emplace(key, static_cast<int>(lock_ids_.size()));
  held_[pi] = locksets_.add(held_[pi], key);
}

void RaceDetector::on_lock_release(int proc, const void* lock) {
  ++report_.lock_releases;
  const auto pi = static_cast<std::size_t>(proc);
  release_into(proc, sync_clock(lock));
  held_[pi] = locksets_.remove(held_[pi], reinterpret_cast<std::uintptr_t>(lock));
}

void RaceDetector::on_atomic(int proc, const void* sync, bool is_write) {
  ++report_.atomics;
  if (is_write) {
    release_into(proc, sync_clock(sync));  // ordered_store = release
  } else {
    vc_[static_cast<std::size_t>(proc)].join(sync_clock(sync));  // = acquire
    refresh_epoch(proc);
  }
}

void RaceDetector::on_rmw(int proc, const void* sync) {
  ++report_.atomics;
  // fetch_add is acquire+release on the counter.
  VectorClock& s = sync_clock(sync);
  vc_[static_cast<std::size_t>(proc)].join(s);
  release_into(proc, s);
}

void RaceDetector::on_barrier_arrive(int proc) {
  ++report_.barriers;
  BarrierGen& cur = bgen_[bcur_];
  if (cur.departing) {
    // First arrival of the next generation while stragglers still depart
    // the previous one: flip to the other slot.
    bcur_ ^= 1;
    BarrierGen& next = bgen_[bcur_];
    next.acc.clear();
    next.departing = false;
  }
  bgen_[bcur_].acc.join(vc_[static_cast<std::size_t>(proc)]);
  pgen_[static_cast<std::size_t>(proc)] = static_cast<std::uint8_t>(bcur_);
}

void RaceDetector::on_barrier_depart(int proc) {
  const auto pi = static_cast<std::size_t>(proc);
  BarrierGen& gen = bgen_[pgen_[pi]];
  gen.departing = true;
  vc_[pi].join(gen.acc);
  vc_[pi].increment(proc);
  refresh_epoch(proc);
}

void RaceDetector::on_phase(int proc, Phase ph) {
  phase_[static_cast<std::size_t>(proc)] = ph;
  refresh_epoch(proc);
}

void RaceDetector::granule_location(std::size_t g, std::string& region,
                                    std::size_t& offset) const {
  for (const Region& r : regions_->regions()) {
    if (g >= r.first_block && g < r.first_block + r.num_blocks) {
      region = r.name;
      // The granule grid is aligned to absolute addresses, so recover the
      // granule's address and subtract the region base.
      const std::uintptr_t addr =
          (r.base / kGranuleBytes + (g - r.first_block)) * kGranuleBytes;
      offset = addr >= r.base ? addr - r.base : 0;
      return;
    }
  }
  region = "<unknown>";
  offset = 0;
}

std::string RaceDetector::lock_name(std::uintptr_t lock) const {
  std::string region;
  std::size_t off = 0;
  std::size_t first = 0, last = 0;
  int home = 0;
  if (regions_->resolve_range(reinterpret_cast<const void*>(lock), 1, nprocs_, first,
                              last, home)) {
    granule_location(first, region, off);
    std::ostringstream os;
    os << region << "+" << off;
    return os.str();
  }
  // Never print the host address: it varies across processes under ASLR and
  // would make otherwise-identical race reports uncomparable. The intern id
  // follows first-acquisition order, which is virtual-time deterministic.
  std::ostringstream os;
  const auto it = lock_ids_.find(lock);
  os << "lock#" << (it != lock_ids_.end() ? it->second : -1);
  return os.str();
}

void RaceDetector::record_race(std::size_t g, const Shadow& s, std::uint64_t first_epoch,
                               bool first_write, int proc, bool second_write,
                               std::uint64_t now) {
  if (!reported_.insert(g).second) return;  // one report per granule
  ++report_.races;
  if (report_.top.size() >= RaceReport::kMaxStored) return;
  Race r;
  granule_location(g, r.region, r.offset);
  r.first_proc = epoch::proc_of(first_epoch);
  r.first_phase = epoch::phase_of(first_epoch);
  r.first_write = first_write;
  r.second_proc = proc;
  r.second_phase = phase_[static_cast<std::size_t>(proc)];
  r.second_write = second_write;
  r.when_ns = now;
  const std::uint32_t held = held_[static_cast<std::size_t>(proc)];
  for (std::uintptr_t lk : locksets_.contents(held)) r.held_locks.push_back(lock_name(lk));
  r.lockset_consistent =
      s.lockset != kLocksetUnset &&
      locksets_.intersect(s.lockset, held) != LocksetTable::kEmpty;
  report_.top.push_back(std::move(r));
}

int RaceDetector::check_write(std::size_t g, Shadow& s, int proc, std::uint64_t now) {
  const std::uint64_t e = cur_epoch(proc);
  if (s.w == e) return 0;  // same-epoch fast path
  int races = 0;
  const VectorClock& c = vc_[static_cast<std::size_t>(proc)];
  // write-write
  if (s.w != epoch::kNone) {
    const int wp = epoch::proc_of(s.w);
    if (wp != proc && !c.covers(epoch::clock_of(s.w), wp)) {
      record_race(g, s, s.w, /*first_write=*/true, proc, /*second_write=*/true, now);
      ++races;
    }
  }
  // read(s)-write
  if (s.r == kReadShared) {
    const ReadVC& rv = rvcs_[s.rvc];
    for (int q = 0; q < nprocs_; ++q) {
      const std::uint64_t re = rv.e[static_cast<std::size_t>(q)];
      if (q == proc || re == epoch::kNone) continue;
      if (!c.covers(epoch::clock_of(re), q)) {
        record_race(g, s, re, /*first_write=*/false, proc, /*second_write=*/true, now);
        ++races;
        break;  // one witness suffices (the granule is deduped anyway)
      }
    }
  } else if (s.r != epoch::kNone) {
    const int rp = epoch::proc_of(s.r);
    if (rp != proc && !c.covers(epoch::clock_of(s.r), rp)) {
      record_race(g, s, s.r, /*first_write=*/false, proc, /*second_write=*/true, now);
      ++races;
    }
  }
  // A successful write dominates all prior accesses; drop the read state so
  // the shared-read vector can be garbage (it is never consulted again).
  s.w = e;
  s.r = epoch::kNone;
  return races;
}

int RaceDetector::check_read(std::size_t g, Shadow& s, int proc, std::uint64_t now) {
  const std::uint64_t e = cur_epoch(proc);
  if (s.r == e) return 0;  // same-epoch fast path
  const auto pi = static_cast<std::size_t>(proc);
  if (s.r == kReadShared && rvcs_[s.rvc].e[pi] == e) return 0;
  int races = 0;
  const VectorClock& c = vc_[pi];
  // write-read
  if (s.w != epoch::kNone) {
    const int wp = epoch::proc_of(s.w);
    if (wp != proc && !c.covers(epoch::clock_of(s.w), wp)) {
      record_race(g, s, s.w, /*first_write=*/true, proc, /*second_write=*/false, now);
      ++races;
    }
  }
  // Update read state (FastTrack's adaptive representation).
  if (s.r == kReadShared) {
    rvcs_[s.rvc].e[pi] = e;
  } else if (s.r == epoch::kNone || epoch::proc_of(s.r) == proc ||
             c.covers(epoch::clock_of(s.r), epoch::proc_of(s.r))) {
    // Exclusive read: none before, ours, or ordered before us — replace.
    s.r = e;
  } else {
    // Concurrent reader: inflate to a per-processor read vector.
    ReadVC rv;
    rv.e.assign(static_cast<std::size_t>(nprocs_), epoch::kNone);
    rv.e[static_cast<std::size_t>(epoch::proc_of(s.r))] = s.r;
    rv.e[pi] = e;
    s.rvc = static_cast<std::uint32_t>(rvcs_.size());
    rvcs_.push_back(std::move(rv));
    s.r = kReadShared;
  }
  return races;
}

int RaceDetector::on_plain(int proc, const void* p, std::size_t n, bool is_write,
                           std::uint64_t now) {
  if (is_write)
    ++report_.checked_writes;
  else
    ++report_.checked_reads;
  std::size_t first = 0, last = 0;
  int home = 0;
  if (!regions_->resolve_range(p, n, nprocs_, first, last, home))
    return 0;  // private memory: single-owner by construction
  const auto pi = static_cast<std::size_t>(proc);
  const std::uint32_t held = held_[pi];
  int races = 0;
  for (std::size_t g = first; g <= last; ++g) {
    Shadow& s = shadow_[g];
    races += is_write ? check_write(g, s, proc, now) : check_read(g, s, proc, now);
    // Eraser candidate lockset: intersect with the locks held at this access.
    s.lockset = s.lockset == kLocksetUnset ? held : locksets_.intersect(s.lockset, held);
  }
  return races;
}

// --- report formatting ------------------------------------------------------

std::string format_race_report(const RaceReport& r) {
  std::ostringstream os;
  if (!r.enabled) {
    os << "race detection: off";
    return os.str();
  }
  os << "race detection: " << r.races << " race(s) on " << r.checked_reads << " reads / "
     << r.checked_writes << " writes (" << r.atomics << " atomic sync ops, "
     << r.lock_acquires << " lock acquires, " << r.barriers << " barrier arrivals)";
  for (std::size_t i = 0; i < r.top.size(); ++i) {
    const Race& x = r.top[i];
    os << "\n  [" << i << "] " << x.region << "+" << x.offset << ": "
       << (x.first_write ? "write" : "read") << " by proc " << x.first_proc << " ("
       << phase_name(x.first_phase) << ") vs " << (x.second_write ? "write" : "read")
       << " by proc " << x.second_proc << " (" << phase_name(x.second_phase) << ") at t="
       << x.when_ns << "ns";
    if (x.held_locks.empty()) {
      os << "; no locks held";
    } else {
      os << "; holding {";
      for (std::size_t k = 0; k < x.held_locks.size(); ++k)
        os << (k != 0 ? ", " : "") << x.held_locks[k];
      os << "}";
    }
    os << (x.lockset_consistent ? " (lockset consistent)" : " (no consistent lockset)");
  }
  if (r.races > r.top.size())
    os << "\n  ... " << r.races - r.top.size() << " more racy granule(s) not stored";
  return os.str();
}

// --- RaceModel --------------------------------------------------------------

RaceModel::RaceModel(std::unique_ptr<MemModel> inner)
    : MemModel(inner->spec(), inner->nprocs()),
      inner_(std::move(inner)),
      detector_(nprocs_, &regions_) {
  regions_.set_block_bytes(kGranuleBytes);
}

void RaceModel::register_region(const void* base, std::size_t bytes, HomePolicy policy,
                                int fixed_home, std::string name) {
  inner_->register_region(base, bytes, policy, fixed_home, name);
  MemModel::register_region(base, bytes, policy, fixed_home, std::move(name));
  detector_.sync_shadow();
}

void RaceModel::reset() {
  inner_->reset();
  MemModel::reset();
  detector_.reset();
}

void RaceModel::note_races(int proc, int new_races, std::uint64_t now) {
  if (new_races != 0 && tracer_ != nullptr)
    tracer_->instant(proc, ptb::trace::kCatRace, "data-race", now,
                     static_cast<std::uint32_t>(new_races));
}

std::uint64_t RaceModel::on_read(int proc, const void* p, std::size_t n,
                                 std::uint64_t now) {
  note_races(proc, detector_.on_plain(proc, p, n, /*is_write=*/false, now), now);
  return inner_->on_read(proc, p, n, now);
}

std::uint64_t RaceModel::on_write(int proc, const void* p, std::size_t n,
                                  std::uint64_t now) {
  note_races(proc, detector_.on_plain(proc, p, n, /*is_write=*/true, now), now);
  return inner_->on_write(proc, p, n, now);
}

std::uint64_t RaceModel::on_rmw(int proc, const void* p, std::uint64_t now) {
  detector_.on_rmw(proc, p);
  return inner_->on_rmw(proc, p, now);
}

std::uint64_t RaceModel::on_acquire(int proc, const void* lock, std::uint64_t now) {
  detector_.on_lock_acquire(proc, lock);
  return inner_->on_acquire(proc, lock, now);
}

std::uint64_t RaceModel::on_release(int proc, const void* lock, std::uint64_t now) {
  detector_.on_lock_release(proc, lock);
  return inner_->on_release(proc, lock, now);
}

std::uint64_t RaceModel::on_barrier_arrive(int proc, std::uint64_t now) {
  detector_.on_barrier_arrive(proc);
  return inner_->on_barrier_arrive(proc, now);
}

std::uint64_t RaceModel::on_barrier_depart(int proc, std::uint64_t now) {
  detector_.on_barrier_depart(proc);
  return inner_->on_barrier_depart(proc, now);
}

std::uint64_t RaceModel::on_atomic(int proc, const void* sync, bool is_write,
                                   const void* p, std::size_t n, std::uint64_t now) {
  // Atomic accesses synchronize; they are not recorded in the plain shadow
  // (classic FastTrack — mixed atomic/plain access to the SAME word would go
  // unchecked, a documented limitation; the builders never do that).
  detector_.on_atomic(proc, sync, is_write);
  return inner_->on_atomic(proc, sync, is_write, p, n, now);
}

std::uint64_t RaceModel::on_read_shared(int proc, const void* p, std::size_t n) {
  // Deliberately unchecked (see the header comment): phase-structure
  // invariant, concurrent call context, and per-proc-only state allowed.
  return inner_->on_read_shared(proc, p, n);
}

std::uint64_t RaceModel::on_read_shared_span(int proc, const void* p, std::size_t n,
                                             std::size_t stride, std::size_t count) {
  // Unchecked like the scalar form; the wrapped model's own span fast path
  // still applies underneath the decorator.
  return inner_->on_read_shared_span(proc, p, n, stride, count);
}

void RaceModel::on_phase(int proc, Phase ph) {
  detector_.on_phase(proc, ph);
  inner_->on_phase(proc, ph);
}

bool default_race_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("PTB_RACE");
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

}  // namespace ptb::race
