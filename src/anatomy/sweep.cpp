#include "anatomy/sweep.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "treebuild/types.hpp"

namespace ptb::anatomy {

SweepResult run_anatomy_sweep(ExperimentRunner& runner, ExperimentSpec spec,
                              const std::vector<int>& procs) {
  std::vector<int> sweep = procs;
  if (std::find(sweep.begin(), sweep.end(), 1) == sweep.end())
    sweep.insert(sweep.begin(), 1);
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  PTB_CHECK_MSG(!sweep.empty() && sweep.front() >= 1, "anatomy: bad processor sweep");

  SweepResult out;
  out.prov.platform = spec.platform;
  out.prov.algorithm = algorithm_name(spec.algorithm);
  out.prov.nbodies = spec.n;
  out.prov.nprocs = sweep.back();

  spec.anatomy = true;
  for (int p : sweep) {
    spec.nprocs = p;
    const ExperimentResult r = runner.run(spec);
    SweepPoint pt;
    pt.procs = p;
    pt.speedup = r.speedup;
    pt.ledger = r.anatomy;
    out.points.push_back(std::move(pt));
  }
  const SweepPoint* ref = out.reference();
  PTB_CHECK_MSG(ref != nullptr, "anatomy: sweep lost its p=1 reference");
  for (SweepPoint& pt : out.points) {
    if (pt.procs == 1) continue;
    pt.waterfall = build_waterfall(ref->ledger, pt.ledger);
  }
  return out;
}

namespace {

void write_categories(std::FILE* f, const char* indent,
                      const std::array<double, kNumCategories>& v) {
  std::fprintf(f, "[");
  for (int c = 0; c < kNumCategories; ++c) {
    std::fprintf(f, "%s\n%s  {\"category\": \"%s\", \"ns\": %.0f}", c != 0 ? "," : "",
                 indent, category_name(static_cast<Category>(c)),
                 v[static_cast<std::size_t>(c)]);
  }
  std::fprintf(f, "\n%s]", indent);
}

std::array<double, kNumCategories> ledger_totals(const Ledger& led) {
  std::array<double, kNumCategories> t{};
  for (int c = 0; c < kNumCategories; ++c)
    t[static_cast<std::size_t>(c)] = led.category_ns(static_cast<Category>(c));
  return t;
}

}  // namespace

void write_anatomy_json(const SweepResult& r, std::FILE* f) {
  std::fprintf(f, "{\n  \"anatomy\": {\n    \"provenance\": ");
  support::write_provenance_json(f, &r.prov);
  std::fprintf(f, ",\n    \"runs\": [");
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const SweepPoint& pt = r.points[i];
    const Ledger& led = pt.ledger;
    const bool exact =
        led.sum_ns() == static_cast<double>(led.nprocs) * led.total_ns;
    std::fprintf(f,
                 "%s\n      {\"procs\": %d, \"total_ns\": %.0f, \"speedup\": %.4f, "
                 "\"invariant_exact\": %s,\n        \"categories\": ",
                 i != 0 ? "," : "", pt.procs, led.total_ns, pt.speedup,
                 exact ? "true" : "false");
    write_categories(f, "        ", ledger_totals(led));
    std::fprintf(f, ",\n        \"phases\": [");
    bool first = true;
    for (int ph = 0; ph < kNumPhases; ++ph) {
      if (ph == static_cast<int>(Phase::kOther)) continue;
      const auto phase = static_cast<Phase>(ph);
      std::array<double, kNumCategories> v{};
      for (int c = 0; c < kNumCategories; ++c)
        v[static_cast<std::size_t>(c)] =
            led.phase_category_ns(phase, static_cast<Category>(c));
      std::fprintf(f, "%s\n          {\"phase\": \"%s\", \"ns\": %.0f, \"categories\": ",
                   first ? "" : ",", phase_name(phase),
                   led.phase_ns[static_cast<std::size_t>(ph)]);
      write_categories(f, "          ", v);
      std::fprintf(f, "}");
      first = false;
    }
    std::fprintf(f, "\n        ]}");
  }
  std::fprintf(f, "\n    ],\n    \"waterfall\": [");
  bool first = true;
  for (const SweepPoint& pt : r.points) {
    if (!pt.waterfall.enabled) continue;
    const Waterfall& w = pt.waterfall;
    std::fprintf(f,
                 "%s\n      {\"procs\": %d, \"t1_ns\": %.0f, \"tp_ns\": %.0f, "
                 "\"loss_ns\": %.0f,\n        \"deltas\": ",
                 first ? "" : ",", w.procs, w.t1_ns, w.tp_ns, w.loss_ns);
    write_categories(f, "        ", w.delta);
    std::fprintf(f, ",\n        \"phase_deltas\": [");
    bool pfirst = true;
    for (int ph = 0; ph < kNumPhases; ++ph) {
      if (ph == static_cast<int>(Phase::kOther)) continue;
      std::fprintf(f, "%s\n          {\"phase\": \"%s\", \"deltas\": ", pfirst ? "" : ",",
                   phase_name(static_cast<Phase>(ph)));
      write_categories(f, "          ", w.phase_delta[static_cast<std::size_t>(ph)]);
      std::fprintf(f, "}");
      pfirst = false;
    }
    std::fprintf(f, "\n        ]}");
    first = false;
  }
  std::fprintf(f, "\n    ]\n  }\n}\n");
}

std::string anatomy_json(const SweepResult& r) {
  std::FILE* f = std::tmpfile();
  PTB_CHECK_MSG(f != nullptr, "anatomy: cannot create temporary file");
  write_anatomy_json(r, f);
  long size = std::ftell(f);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::rewind(f);
  std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  out.resize(got);
  return out;
}

}  // namespace ptb::anatomy
