// The differential layer of ptb::anatomy: run one (platform, algorithm, n)
// configuration at a sweep of processor counts, ledger every run, and
// attribute the speedup loss p·T_p − T_1 per category/phase against the
// p=1 reference. write_anatomy_json emits the provenance-stamped report
// tools/anatomy_report.py renders and tools/compare_runs.py diffs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "anatomy/anatomy.hpp"
#include "harness/experiment.hpp"
#include "support/provenance.hpp"

namespace ptb::anatomy {

struct SweepPoint {
  int procs = 0;
  double speedup = 0.0;  // vs the platform's sequential baseline
  Ledger ledger;
  Waterfall waterfall;  // disabled on the p=1 reference point
};

struct SweepResult {
  support::RunProvenance prov;  // nprocs = the largest swept count
  std::vector<SweepPoint> points;

  const SweepPoint* reference() const {
    for (const SweepPoint& pt : points)
      if (pt.procs == 1) return &pt;
    return nullptr;
  }
};

/// Runs `spec` at every processor count in `procs` (a p=1 reference run is
/// prepended when missing) with the anatomy ledger enabled, and builds the
/// per-point waterfalls. `spec.nprocs` is overwritten per point.
SweepResult run_anatomy_sweep(ExperimentRunner& runner, ExperimentSpec spec,
                              const std::vector<int>& procs);

void write_anatomy_json(const SweepResult& r, std::FILE* f);

/// write_anatomy_json via a temporary file (test/tool convenience).
std::string anatomy_json(const SweepResult& r);

}  // namespace ptb::anatomy
