// ptb::anatomy — the exact speedup-loss ledger.
//
// The conservative DES advances a processor's virtual clock in exactly four
// ways: a compute/read_shared pending fold (read_shared stall separately
// recorded as mem_stall), a protocol-model charge (mem_stall), a lock-grant
// jump (lock_wait) and a barrier-release jump (barrier_wait). So per
// (processor, phase) the identity
//
//   phase_ns == busy + mem_stall + lock_wait + barrier_wait
//
// holds *exactly* — not approximately, not by sampling. The ledger adds two
// refinements on top of the runtime's ProcStats:
//
//  * the memory stall is split local vs remote using per-phase deltas of the
//    protocol counters (remote misses priced at the platform's remote-local
//    latency gap, page faults at the platform's fault cost, capped by the
//    recorded stall);
//  * a per-(proc, phase) "phase skew" term — the gap between this
//    processor's time in the phase and the phase's wall duration (the max
//    over processors) — so the per-cell categories tile p·T_p exactly:
//
//   sum over (proc, measured phase, category) == nprocs * T_p
//
// asserted on every build. Barrier wait + phase skew together are the run's
// load imbalance. The differential layer (Waterfall) subtracts a p=1
// reference ledger: the per-category deltas attribute the whole speedup
// loss p·T_p − T_1, with the busy delta being the extra parallel work.
//
// Like trace/race/prof/sight this is a pure observer: the Collector only
// snapshots counters the simulator already keeps, at phase boundaries the
// simulator already processes, so runs with anatomy on are bit-identical in
// virtual time and the disabled cost is one null-pointer branch per phase
// change.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "mem/model.hpp"
#include "platform/spec.hpp"
#include "rt/phase.hpp"
#include "trace/metrics.hpp"

namespace ptb::anatomy {

/// Every virtual cycle of every processor lands in exactly one of these.
enum class Category : int {
  kBusy = 0,         // useful work (compute charges)
  kMemLocal = 1,     // memory stall priced at local latency
  kMemRemote = 2,    // memory stall attributed to remote traffic
  kLockWait = 3,     // blocked in a lock queue
  kBarrierWait = 4,  // idle between barrier arrival and release
  kPhaseSkew = 5,    // behind the phase's last finisher (imbalance seen
                     // only at the *next* barrier-aligned phase boundary)
};

inline constexpr int kNumCategories = 6;

const char* category_name(Category c);

/// Pure observer the simulator notifies at phase boundaries. It accumulates
/// per-(processor, phase) deltas of the protocol counters the local/remote
/// stall split needs; everything else the ledger uses is already in
/// ProcStats. Reads counters the simulator computed — never writes
/// simulation state.
class Collector {
 public:
  /// Called by the simulator at the start of every run (reset_run_state).
  void begin_run(int nprocs);

  /// Called whenever processor p closes a phase span attributed to `ph`
  /// (begin_phase and end-of-body), with p's current protocol counters.
  void phase_close(int p, Phase ph, const MemProcStats& now);

  bool active() const { return nprocs_ > 0; }
  std::uint64_t remote_misses(int p, int ph) const {
    return remote_[static_cast<std::size_t>(p)][static_cast<std::size_t>(ph)];
  }
  std::uint64_t page_faults(int p, int ph) const {
    return faults_[static_cast<std::size_t>(p)][static_cast<std::size_t>(ph)];
  }

 private:
  int nprocs_ = 0;
  std::vector<MemProcStats> last_;
  std::vector<std::array<std::uint64_t, kNumPhases>> remote_;
  std::vector<std::array<std::uint64_t, kNumPhases>> faults_;
};

/// The per-run ledger: every virtual cycle of every processor classified
/// into exactly one category, per measured phase. All values are virtual
/// nanoseconds held in integer-valued doubles (< 2^53), so the sums and the
/// tiling invariant below are exact, not approximate.
struct Ledger {
  using Cell = std::array<double, kNumCategories>;
  using PhaseCells = std::array<Cell, kNumPhases>;

  bool enabled = false;
  int nprocs = 0;
  /// T_p: sum over measured phases of the phase's max-over-processors time
  /// (identical to RunResult::total_ns).
  double total_ns = 0.0;
  /// Per-phase wall duration (max over processors; kOther stays 0).
  std::array<double, kNumPhases> phase_ns{};
  /// cells[proc][phase][category]; warm-up (kOther) rows stay zero.
  std::vector<PhaseCells> cells;

  double cell_ns(int p, Phase ph, Category c) const {
    return cells[static_cast<std::size_t>(p)][static_cast<std::size_t>(
        static_cast<int>(ph))][static_cast<std::size_t>(static_cast<int>(c))];
  }
  /// Whole-run total of one category (all processors, measured phases).
  double category_ns(Category c) const;
  /// One phase's total of one category (all processors).
  double phase_category_ns(Phase ph, Category c) const;
  /// Sum of every cell; the invariant is sum_ns() == nprocs * total_ns.
  double sum_ns() const;
  /// Load imbalance: idle-at-barrier plus phase skew.
  double imbalance_ns() const {
    return category_ns(Category::kBarrierWait) + category_ns(Category::kPhaseSkew);
  }
};

/// Builds the ledger from a finished run and asserts the exact tiling
/// invariant `sum(categories) == nprocs * T_p` (plus busy >= 0 per cell and
/// per-phase tiling), aborting on any violation.
Ledger build_ledger(const std::vector<ProcStats>& stats, const Collector& col,
                    const PlatformSpec& spec);

/// The differential layer: the p-processor ledger minus a p=1 reference of
/// the same (platform, algorithm, n). The per-category deltas attribute the
/// whole speedup loss: sum(delta) == procs * T_p - T_1 exactly. delta[kBusy]
/// is the extra parallel work; kBarrierWait + kPhaseSkew deltas are the
/// imbalance loss.
struct Waterfall {
  bool enabled = false;
  int procs = 0;
  double t1_ns = 0.0;    // reference run (p=1) total
  double tp_ns = 0.0;    // this run's T_p
  double loss_ns = 0.0;  // procs * tp_ns - t1_ns
  std::array<double, kNumCategories> delta{};
  std::array<std::array<double, kNumCategories>, kNumPhases> phase_delta{};
};

/// `ref` must be a 1-processor ledger of the same configuration.
Waterfall build_waterfall(const Ledger& ref, const Ledger& led);

/// Lands the ledger in the registry: anatomy.total_ns,
/// anatomy.category_ns{category=...}, anatomy.phase_category_ns{...}.
void ingest_anatomy_metrics(trace::MetricsRegistry& m, const Ledger& led);

/// Reads PTB_ANATOMY from the environment (non-empty, non-"0" enables the
/// ledger), mirroring PTB_SIGHT / PTB_PROF.
bool default_anatomy_enabled();

/// Output path for the anatomy JSON: the --anatomy flag value if non-empty,
/// else PTB_ANATOMY, else "".
std::string anatomy_path_from(const std::string& flag_value);

}  // namespace ptb::anatomy
