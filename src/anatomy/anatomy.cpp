#include "anatomy/anatomy.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"

namespace ptb::anatomy {

const char* category_name(Category c) {
  constexpr const char* names[kNumCategories] = {
      "busy", "mem_local", "mem_remote", "lock_wait", "barrier_wait", "phase_skew"};
  return names[static_cast<int>(c)];
}

void Collector::begin_run(int nprocs) {
  nprocs_ = nprocs;
  const auto np = static_cast<std::size_t>(nprocs);
  last_.assign(np, MemProcStats{});
  remote_.assign(np, {});
  faults_.assign(np, {});
}

void Collector::phase_close(int p, Phase ph, const MemProcStats& now) {
  const auto pi = static_cast<std::size_t>(p);
  const auto phi = static_cast<std::size_t>(static_cast<int>(ph));
  MemProcStats& last = last_[pi];
  remote_[pi][phi] += now.remote_misses - last.remote_misses;
  faults_[pi][phi] += now.page_faults - last.page_faults;
  last = now;
}

double Ledger::category_ns(Category c) const {
  const auto ci = static_cast<std::size_t>(static_cast<int>(c));
  double t = 0.0;
  for (const PhaseCells& pc : cells)
    for (const Cell& cell : pc) t += cell[ci];
  return t;
}

double Ledger::phase_category_ns(Phase ph, Category c) const {
  const auto phi = static_cast<std::size_t>(static_cast<int>(ph));
  const auto ci = static_cast<std::size_t>(static_cast<int>(c));
  double t = 0.0;
  for (const PhaseCells& pc : cells) t += pc[phi][ci];
  return t;
}

double Ledger::sum_ns() const {
  double t = 0.0;
  for (const PhaseCells& pc : cells)
    for (const Cell& cell : pc)
      for (double v : cell) t += v;
  return t;
}

Ledger build_ledger(const std::vector<ProcStats>& stats, const Collector& col,
                    const PlatformSpec& spec) {
  Ledger led;
  led.enabled = true;
  led.nprocs = static_cast<int>(stats.size());
  led.cells.assign(stats.size(), Ledger::PhaseCells{});
  PTB_CHECK_MSG(col.active(), "anatomy: collector was never attached to the run");

  // Price of one remote event over its local equivalent. On the SVM
  // platforms the remote traffic is page faults (remote_miss_ns is unset);
  // on NUMA hardware it is remote misses. Counts are integers and the specs
  // integer-valued doubles, so the estimates below are exact products.
  const double remote_extra =
      spec.remote_miss_ns > spec.local_miss_ns ? spec.remote_miss_ns - spec.local_miss_ns
                                               : 0.0;

  for (int ph = 0; ph < kNumPhases; ++ph) {
    if (ph == static_cast<int>(Phase::kOther)) continue;  // warm-up
    const auto phi = static_cast<std::size_t>(ph);
    double phase_max = 0.0;
    for (const ProcStats& ps : stats) phase_max = std::max(phase_max, ps.phase_ns[ph]);
    led.phase_ns[phi] = phase_max;
    led.total_ns += phase_max;

    double phase_sum = 0.0;
    for (int p = 0; p < led.nprocs; ++p) {
      const ProcStats& ps = stats[static_cast<std::size_t>(p)];
      const double mem = ps.mem_stall_ns[ph];
      const double lock = ps.lock_wait_phase_ns[ph];
      const double barrier = ps.barrier_wait_phase_ns[ph];
      // The clock-advance taxonomy (sim_rt.cpp): every ns of phase_ns is a
      // pending fold, a protocol charge, a lock grant or a barrier release,
      // and the latter three are recorded per phase — so this remainder is
      // the compute time, exactly.
      const double busy = ps.phase_ns[ph] - mem - lock - barrier;
      PTB_CHECK_MSG(busy >= 0.0,
                    "anatomy: negative busy remainder — phase accounting broke");
      const double remote_est =
          static_cast<double>(col.remote_misses(p, ph)) * remote_extra +
          static_cast<double>(col.page_faults(p, ph)) * spec.page_fault_ns;
      const double mem_remote = std::min(mem, remote_est);
      Ledger::Cell& cell = led.cells[static_cast<std::size_t>(p)][phi];
      cell[static_cast<int>(Category::kBusy)] = busy;
      cell[static_cast<int>(Category::kMemLocal)] = mem - mem_remote;
      cell[static_cast<int>(Category::kMemRemote)] = mem_remote;
      cell[static_cast<int>(Category::kLockWait)] = lock;
      cell[static_cast<int>(Category::kBarrierWait)] = barrier;
      cell[static_cast<int>(Category::kPhaseSkew)] = phase_max - ps.phase_ns[ph];
      for (double v : cell) phase_sum += v;
    }
    // Per-phase tiling: the p cells of this phase cover p * wall duration.
    PTB_CHECK_MSG(phase_sum == static_cast<double>(led.nprocs) * phase_max,
                  "anatomy: per-phase ledger does not tile p * phase time");
  }
  // The hard accounting invariant: every virtual cycle of every processor
  // in exactly one category. Exact double equality — all terms are
  // integer-valued and far below 2^53.
  PTB_CHECK_MSG(led.sum_ns() == static_cast<double>(led.nprocs) * led.total_ns,
                "anatomy: ledger sum != p * T_p — a cycle was dropped or counted twice");
  return led;
}

Waterfall build_waterfall(const Ledger& ref, const Ledger& led) {
  PTB_CHECK_MSG(ref.enabled && ref.nprocs == 1,
                "anatomy: waterfall reference must be an enabled p=1 ledger");
  PTB_CHECK_MSG(led.enabled, "anatomy: waterfall needs an enabled ledger");
  Waterfall w;
  w.enabled = true;
  w.procs = led.nprocs;
  w.t1_ns = ref.total_ns;
  w.tp_ns = led.total_ns;
  w.loss_ns = static_cast<double>(led.nprocs) * led.total_ns - ref.total_ns;
  double delta_sum = 0.0;
  for (int c = 0; c < kNumCategories; ++c) {
    const auto cat = static_cast<Category>(c);
    w.delta[static_cast<std::size_t>(c)] = led.category_ns(cat) - ref.category_ns(cat);
    delta_sum += w.delta[static_cast<std::size_t>(c)];
    for (int ph = 0; ph < kNumPhases; ++ph) {
      const auto phase = static_cast<Phase>(ph);
      w.phase_delta[static_cast<std::size_t>(ph)][static_cast<std::size_t>(c)] =
          led.phase_category_ns(phase, cat) - ref.phase_category_ns(phase, cat);
    }
  }
  // Both ledgers tile exactly, so the category deltas attribute the whole
  // speedup loss with nothing left over.
  PTB_CHECK_MSG(delta_sum == w.loss_ns,
                "anatomy: waterfall deltas do not sum to p*T_p - T_1");
  return w;
}

void ingest_anatomy_metrics(trace::MetricsRegistry& m, const Ledger& led) {
  m.set("anatomy.total_ns", {}, led.total_ns);
  m.set("anatomy.procs", {}, static_cast<double>(led.nprocs));
  for (int c = 0; c < kNumCategories; ++c) {
    const auto cat = static_cast<Category>(c);
    m.set("anatomy.category_ns", {{"category", category_name(cat)}},
          led.category_ns(cat));
    for (int ph = 0; ph < kNumPhases; ++ph) {
      if (ph == static_cast<int>(Phase::kOther)) continue;
      const auto phase = static_cast<Phase>(ph);
      m.set("anatomy.phase_category_ns",
            {{"category", category_name(cat)}, {"phase", phase_name(phase)}},
            led.phase_category_ns(phase, cat));
    }
  }
}

bool default_anatomy_enabled() {
  const char* env = std::getenv("PTB_ANATOMY");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string anatomy_path_from(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  const char* env = std::getenv("PTB_ANATOMY");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace ptb::anatomy
