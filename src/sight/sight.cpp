#include "sight/sight.hpp"

#include <algorithm>
#include <bitset>
#include <cinttypes>
#include <cmath>
#include <cstdlib>
#include <map>
#include <tuple>

#include "support/check.hpp"
#include "support/provenance.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace ptb::sight {

namespace {

int popcount64(std::uint64_t x) { return static_cast<int>(std::bitset<64>(x).count()); }

/// "local.cells.p3" → "local.cells.p*": collapses per-processor region
/// suffixes so the sharing table aggregates a pool family into one scope.
std::string normalize_scope(const std::string& name) {
  auto pos = name.rfind(".p");
  if (pos == std::string::npos || pos + 2 >= name.size()) return name;
  for (std::size_t i = pos + 2; i < name.size(); ++i)
    if (name[i] < '0' || name[i] > '9') return name;
  return name.substr(0, pos) + ".p*";
}

const char* phase_key(int phase) {
  return phase < 0 ? "run" : phase_name(static_cast<Phase>(phase));
}

}  // namespace

const char* line_class_name(LineClass c) {
  switch (c) {
    case LineClass::kUntouched: return "untouched";
    case LineClass::kPrivate: return "private";
    case LineClass::kReadShared: return "read-shared";
    case LineClass::kProducerConsumer: return "producer-consumer";
    case LineClass::kMigratory: return "migratory";
    case LineClass::kPingPong: return "ping-pong";
  }
  return "?";
}

LineClass classify(const LineUse& u) {
  const std::uint64_t all = u.readers | u.writers;
  if (all == 0) return LineClass::kUntouched;
  if ((all & (all - 1)) == 0) return LineClass::kPrivate;
  const int nw = popcount64(u.writers);
  if (nw == 0) return LineClass::kReadShared;
  if (nw == 1) return LineClass::kProducerConsumer;
  // Several writers: migratory when ownership transfers are predominantly
  // read-then-write (the lock-protected update pattern); otherwise the line
  // bounces on blind writes — ping-pong.
  if (u.migratory_changes * 4 >= u.writer_changes * 3) return LineClass::kMigratory;
  return LineClass::kPingPong;
}

// --- ReuseTracker -----------------------------------------------------------

void SightModel::ReuseTracker::fen_add(std::uint32_t pos, std::int32_t d) {
  for (; pos <= cap; pos += pos & (~pos + 1)) fen[pos] += static_cast<std::uint32_t>(d);
}

std::uint32_t SightModel::ReuseTracker::fen_prefix(std::uint32_t pos) const {
  std::uint32_t s = 0;
  for (; pos > 0; pos -= pos & (~pos + 1)) s += fen[pos];
  return s;
}

void SightModel::ReuseTracker::compact() {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
  order.reserve(lines.size());
  // ptblint: allow(unordered-iter) -- collected into (slot, line) pairs and sorted before use
  for (const auto& [line, li] : lines) order.emplace_back(li.slot, line);
  std::sort(order.begin(), order.end());
  const auto k = static_cast<std::uint32_t>(order.size());
  cap = std::max<std::uint32_t>(1024, 2 * k);
  fen.assign(cap + 1, 0);
  next = 0;
  for (const auto& [slot, line] : order) {
    lines[line].slot = next;
    fen_add(next + 1, 1);
    ++next;
  }
}

std::uint64_t SightModel::ReuseTracker::access(std::uint64_t line, int phase,
                                               bool& first_in_phase) {
  if (cap == 0) {
    cap = 1024;
    fen.assign(cap + 1, 0);
  }
  if (next == cap) compact();
  auto [it, inserted] = lines.try_emplace(line);
  LineInfo& li = it->second;
  const auto pbit = static_cast<std::uint8_t>(1u << phase);
  first_in_phase = (li.phase_mask & pbit) == 0;
  li.phase_mask = static_cast<std::uint8_t>(li.phase_mask | pbit);
  std::uint64_t dist = ~std::uint64_t{0};
  if (!inserted) {
    // Distinct lines this processor touched since its last access to this
    // one: the markers in slots strictly more recent than ours.
    const auto occupied = static_cast<std::uint32_t>(lines.size());
    dist = occupied - fen_prefix(li.slot + 1);
    fen_add(li.slot + 1, -1);
  }
  li.slot = next++;
  fen_add(li.slot + 1, 1);
  return dist;
}

// --- SightModel -------------------------------------------------------------

SightModel::SightModel(std::unique_ptr<MemModel> inner)
    : MemModel(inner->spec(), inner->nprocs()),
      inner_(std::move(inner)),
      phase_(static_cast<std::size_t>(nprocs_), Phase::kOther),
      reuse_(static_cast<std::size_t>(nprocs_)),
      ws_lines_(static_cast<std::size_t>(nprocs_)),
      ws_cold_(static_cast<std::size_t>(nprocs_)),
      reuse_dist_(static_cast<std::size_t>(nprocs_)) {
  regions_.set_block_bytes(kLineBytes);
  if (const char* env = std::getenv("PTB_SIGHT_WINDOW_NS");
      env != nullptr && env[0] != '\0') {
    window_ns_ = std::strtoull(env, nullptr, 10);
  } else {
    const double worst = std::max(
        {spec_.remote_miss_ns, spec_.local_miss_ns, spec_.page_fault_ns, 100.0});
    window_ns_ = static_cast<std::uint64_t>(std::llround(8.0 * worst));
  }
}

void SightModel::register_region(const void* base, std::size_t bytes, HomePolicy policy,
                                 int fixed_home, std::string name) {
  inner_->register_region(base, bytes, policy, fixed_home, name);
  MemModel::register_region(base, bytes, policy, fixed_home, std::move(name));
  slot_of_block_.resize(regions_.total_blocks(), -1);
  refresh_granules();
}

void SightModel::add_observed_region(const void* base, std::size_t bytes,
                                     std::string name) {
  MemModel::register_region(base, bytes, HomePolicy::kFixed, 0, std::move(name));
  slot_of_block_.resize(regions_.total_blocks(), -1);
  refresh_granules();
}

void SightModel::set_object_granule(const std::string& prefix, std::size_t bytes) {
  for (auto& [p, b] : granule_config_) {
    if (p == prefix) {
      b = bytes;
      refresh_granules();
      return;
    }
  }
  granule_config_.emplace_back(prefix, bytes);
  refresh_granules();
}

void SightModel::refresh_granules() {
  // Region indices shift when the table re-sorts on add, so the per-region
  // granule view is rebuilt from the name-prefix config each time.
  const auto& regs = regions_.regions();
  region_granule_.assign(regs.size(), 0);
  for (std::size_t i = 0; i < regs.size(); ++i) {
    for (const auto& [prefix, bytes] : granule_config_) {
      if (regs[i].name.rfind(prefix, 0) == 0)
        region_granule_[i] = static_cast<std::uint32_t>(bytes);
    }
  }
}

void SightModel::reset() {
  inner_->reset();
  MemModel::reset();
  slot_of_block_.clear();
  lines_.clear();
  line_block_.clear();
  region_granule_.clear();
  findings_.clear();
  phase_.assign(static_cast<std::size_t>(nprocs_), Phase::kOther);
  reuse_.assign(static_cast<std::size_t>(nprocs_), ReuseTracker{});
  ws_lines_.assign(static_cast<std::size_t>(nprocs_), {});
  ws_cold_.assign(static_cast<std::size_t>(nprocs_), {});
  reuse_dist_.assign(static_cast<std::size_t>(nprocs_), {});
  now_hint_ = 0;
  reads_ = 0;
  writes_ = 0;
}

SightModel::Line& SightModel::line_at(std::size_t block) {
  std::int32_t& s = slot_of_block_[block];
  if (s < 0) {
    s = static_cast<std::int32_t>(lines_.size());
    lines_.emplace_back();
    line_block_.push_back(block);
  }
  return lines_[static_cast<std::size_t>(s)];
}

void SightModel::note_class(int proc, LineClass cls, std::uint64_t now) {
  if (tracer_ != nullptr)
    tracer_->instant(proc, trace::kCatSight, line_class_name(cls), now, 1);
}

void SightModel::touch_line(int proc, std::size_t block, bool is_write,
                            std::uint32_t object, bool has_object, std::uint64_t now,
                            bool has_now) {
  Line& L = line_at(block);
  const auto ph = static_cast<std::size_t>(phase_[static_cast<std::size_t>(proc)]);
  const std::uint64_t bit = std::uint64_t{1} << proc;
  LineUse& total = L.total;
  LineUse& pu = L.phase[ph];
  if (is_write) {
    total.writes += 1;
    pu.writes += 1;
    total.writers |= bit;
    pu.writers |= bit;
    if (L.last_writer >= 0 && L.last_writer != proc) {
      total.writer_changes += 1;
      pu.writer_changes += 1;
      if ((L.readers_since_write & bit) != 0) {
        total.migratory_changes += 1;
        pu.migratory_changes += 1;
      }
    }
    if (has_object && has_now) {
      if (L.fs_writer >= 0 && L.fs_writer != proc && L.fs_object != object &&
          now - L.fs_when_ns <= window_ns_) {
        FindingAcc& f = findings_[block];
        f.hits += 1;
        f.procs |= bit | (std::uint64_t{1} << L.fs_writer);
        f.phase_hits[ph] += 1;
        for (std::uint32_t o : {L.fs_object, object}) {
          const std::uint64_t obit = std::uint64_t{1} << (o % 64);
          if ((f.objects & obit) == 0 ||
              std::find(f.object_ids.begin(), f.object_ids.end(), o) ==
                  f.object_ids.end()) {
            f.objects |= obit;
            f.object_ids.push_back(o);
          }
        }
      }
      L.fs_writer = static_cast<std::int16_t>(proc);
      L.fs_object = object;
      L.fs_when_ns = now;
    }
    L.last_writer = static_cast<std::int16_t>(proc);
    L.readers_since_write = 0;
  } else {
    total.reads += 1;
    pu.reads += 1;
    total.readers |= bit;
    pu.readers |= bit;
    L.readers_since_write |= bit;
  }
  const LineClass c = classify(total);
  if (c != L.cls) {
    L.cls = c;
    note_class(proc, c, has_now ? now : now_hint_);
  }

  ReuseTracker& rt = reuse_[static_cast<std::size_t>(proc)];
  bool first_in_phase = false;
  const std::uint64_t dist = rt.access(block, static_cast<int>(ph), first_in_phase);
  if (first_in_phase) ws_lines_[static_cast<std::size_t>(proc)][ph] += 1;
  if (dist == ~std::uint64_t{0}) {
    ws_cold_[static_cast<std::size_t>(proc)][ph] += 1;
  } else {
    reuse_dist_[static_cast<std::size_t>(proc)][ph].add(static_cast<double>(dist));
  }
}

void SightModel::observe(int proc, const void* p, std::size_t n, bool is_write,
                         std::uint64_t now, bool has_now) {
  const BlockRef br = regions_.resolve(p, nprocs_);
  if (!br.shared) return;
  if (is_write) {
    writes_ += 1;
  } else {
    reads_ += 1;
  }
  const Region& r = regions_.regions()[br.region];
  const std::uint32_t granule = region_granule_[br.region];
  const unsigned shift = regions_.block_shift();
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  std::uintptr_t end = a + (n > 0 ? n : 1);
  if (end > r.base + r.bytes) end = r.base + r.bytes;
  const std::size_t nlines = ((end - 1) >> shift) - (a >> shift);
  for (std::size_t i = 0; i <= nlines; ++i) {
    const std::uintptr_t first_byte = i == 0 ? a : (((a >> shift) + i) << shift);
    const std::uint32_t object =
        granule != 0 ? static_cast<std::uint32_t>((first_byte - r.base) / granule) : 0;
    touch_line(proc, br.block + i, is_write, object, granule != 0, now, has_now);
  }
}

std::uint64_t SightModel::on_read(int proc, const void* p, std::size_t n,
                                  std::uint64_t now) {
  now_hint_ = now;
  observe(proc, p, n, /*is_write=*/false, now, /*has_now=*/true);
  return inner_->on_read(proc, p, n, now);
}

std::uint64_t SightModel::on_write(int proc, const void* p, std::size_t n,
                                   std::uint64_t now) {
  now_hint_ = now;
  observe(proc, p, n, /*is_write=*/true, now, /*has_now=*/true);
  return inner_->on_write(proc, p, n, now);
}

std::uint64_t SightModel::on_rmw(int proc, const void* p, std::uint64_t now) {
  now_hint_ = now;
  observe(proc, p, sizeof(std::uint64_t), /*is_write=*/true, now, /*has_now=*/true);
  return inner_->on_rmw(proc, p, now);
}

std::uint64_t SightModel::on_acquire(int proc, const void* lock, std::uint64_t now) {
  now_hint_ = now;
  // A lock acquire is a read-modify-write of the lock word; record the read
  // first so contended locks classify migratory, not ping-pong.
  observe(proc, lock, sizeof(void*), /*is_write=*/false, now, /*has_now=*/true);
  observe(proc, lock, sizeof(void*), /*is_write=*/true, now, /*has_now=*/true);
  return inner_->on_acquire(proc, lock, now);
}

std::uint64_t SightModel::on_release(int proc, const void* lock, std::uint64_t now) {
  now_hint_ = now;
  observe(proc, lock, sizeof(void*), /*is_write=*/true, now, /*has_now=*/true);
  return inner_->on_release(proc, lock, now);
}

std::uint64_t SightModel::on_barrier_arrive(int proc, std::uint64_t now) {
  now_hint_ = now;
  return inner_->on_barrier_arrive(proc, now);
}

std::uint64_t SightModel::on_barrier_depart(int proc, std::uint64_t now) {
  now_hint_ = now;
  return inner_->on_barrier_depart(proc, now);
}

std::uint64_t SightModel::on_atomic(int proc, const void* sync, bool is_write,
                                    const void* p, std::size_t n, std::uint64_t now) {
  now_hint_ = now;
  observe(proc, p, n, is_write, now, /*has_now=*/true);
  return inner_->on_atomic(proc, sync, is_write, p, n, now);
}

std::uint64_t SightModel::on_read_shared(int proc, const void* p, std::size_t n) {
  // No virtual timestamp on the concurrent fast path; execution is
  // serialized whenever sight is attached (the simulator disables section
  // overlap for observers), so plain updates are safe and now_hint_ gives
  // trace instants a consistent, slightly-stale timestamp.
  observe(proc, p, n, /*is_write=*/false, now_hint_, /*has_now=*/false);
  return inner_->on_read_shared(proc, p, n);
}

std::uint64_t SightModel::on_read_shared_span(int proc, const void* p, std::size_t n,
                                              std::size_t stride, std::size_t count) {
  const char* a = static_cast<const char*>(p);
  for (std::size_t i = 0; i < count; ++i)
    observe(proc, a + i * stride, n, /*is_write=*/false, now_hint_, /*has_now=*/false);
  return inner_->on_read_shared_span(proc, p, n, stride, count);
}

void SightModel::on_phase(int proc, Phase ph) {
  phase_[static_cast<std::size_t>(proc)] = ph;
  inner_->on_phase(proc, ph);
}

// --- report assembly --------------------------------------------------------

namespace {

struct RegionSpan {
  std::size_t first_block;
  std::size_t end_block;
  const Region* region;
};

const RegionSpan* span_of(const std::vector<RegionSpan>& spans, std::size_t block) {
  auto it = std::upper_bound(spans.begin(), spans.end(), block,
                             [](std::size_t b, const RegionSpan& s) {
                               return b < s.first_block;
                             });
  if (it == spans.begin()) return nullptr;
  --it;
  return block < it->end_block ? &*it : nullptr;
}

}  // namespace

SightReport SightModel::build_report(const CellResolver& cells) const {
  SightReport rep;
  rep.enabled = true;
  rep.window_ns = window_ns_;
  rep.lines_observed = lines_.size();
  rep.reads = reads_;
  rep.writes = writes_;

  std::vector<RegionSpan> spans;
  spans.reserve(regions_.regions().size());
  for (const Region& r : regions_.regions())
    spans.push_back({r.first_block, r.first_block + r.num_blocks, &r});
  std::sort(spans.begin(), spans.end(), [](const RegionSpan& a, const RegionSpan& b) {
    return a.first_block < b.first_block;
  });
  const unsigned shift = regions_.block_shift();

  // (scope, depth, phase, class) -> line count. Phase -1 is the whole run.
  std::map<std::tuple<std::string, int, int, int>, std::uint64_t> table;
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    const Line& L = lines_[i];
    const RegionSpan* s = span_of(spans, line_block_[i]);
    if (s == nullptr) continue;
    const Region& r = *s->region;
    const std::uintptr_t lbase =
        ((r.base >> shift) + (line_block_[i] - r.first_block)) << shift;
    const CellResolver::Cell* c =
        cells.empty() ? nullptr
                      : cells.resolve(reinterpret_cast<const void*>(
                            std::max(lbase, r.base)));
    const std::string scope = c != nullptr ? "cells" : normalize_scope(r.name);
    const int depth = c != nullptr ? c->depth : -1;
    const LineClass run_cls = classify(L.total);
    rep.total_classes[static_cast<std::size_t>(run_cls)] += 1;
    table[{scope, depth, -1, static_cast<int>(run_cls)}] += 1;
    for (int ph = 0; ph < kNumPhases; ++ph) {
      const LineUse& u = L.phase[static_cast<std::size_t>(ph)];
      if ((u.readers | u.writers) == 0) continue;
      table[{scope, depth, ph, static_cast<int>(classify(u))}] += 1;
    }
  }
  for (const auto& [key, count] : table) {
    ClassCell cell;
    cell.scope = std::get<0>(key);
    cell.depth = std::get<1>(key);
    cell.phase = std::get<2>(key);
    cell.cls = static_cast<LineClass>(std::get<3>(key));
    cell.lines = count;
    rep.classes.push_back(std::move(cell));
  }

  // ptblint: allow(unordered-iter) -- findings are sorted below by the total key (hits, region, line)
  for (const auto& [block, acc] : findings_) {
    Finding f;
    const RegionSpan* s = span_of(spans, block);
    if (s == nullptr) continue;
    const Region& r = *s->region;
    f.region = r.name;
    f.line = block - r.first_block;
    const std::uintptr_t lbase = ((r.base >> shift) + f.line) << shift;
    const CellResolver::Cell* c =
        cells.empty() ? nullptr
                      : cells.resolve(reinterpret_cast<const void*>(
                            std::max(lbase, r.base)));
    f.cell = c != nullptr ? cell_name(c) : "";
    f.objects = acc.object_ids;
    std::sort(f.objects.begin(), f.objects.end());
    for (int p = 0; p < nprocs_; ++p)
      if ((acc.procs >> p) & 1) f.procs.push_back(p);
    f.hits = acc.hits;
    f.phase_hits = acc.phase_hits;
    rep.false_sharing_hits += acc.hits;
    rep.false_sharing.push_back(std::move(f));
  }
  std::sort(rep.false_sharing.begin(), rep.false_sharing.end(),
            [](const Finding& a, const Finding& b) {
              if (a.hits != b.hits) return a.hits > b.hits;
              if (a.region != b.region) return a.region < b.region;
              return a.line < b.line;
            });

  for (int p = 0; p < nprocs_; ++p) {
    for (int ph = 0; ph < kNumPhases; ++ph) {
      const auto pi = static_cast<std::size_t>(p);
      const auto phi = static_cast<std::size_t>(ph);
      WorkingSetRow row;
      row.proc = p;
      row.phase = ph;
      row.distinct_lines = ws_lines_[pi][phi];
      row.cold = ws_cold_[pi][phi];
      row.reuse = reuse_dist_[pi][phi];
      if (row.distinct_lines == 0 && row.cold == 0 && row.reuse.count() == 0) continue;
      rep.working_set.push_back(std::move(row));
    }
  }
  return rep;
}

// --- serialization ----------------------------------------------------------

void write_sight_json(const SightReport& r, std::FILE* f) {
  std::fprintf(f, "{\n  \"sight\": {\n");
  support::RunProvenance prov;
  prov.platform = r.platform;
  prov.algorithm = r.algorithm;
  prov.nbodies = r.nbodies;
  prov.nprocs = r.nprocs;
  std::fprintf(f, "    \"provenance\": ");
  support::write_provenance_json(f, &prov);
  std::fprintf(f, ",\n");
  std::fprintf(f, "    \"window_ns\": %" PRIu64 ",\n", r.window_ns);
  std::fprintf(f, "    \"lines_observed\": %" PRIu64 ",\n", r.lines_observed);
  std::fprintf(f, "    \"reads\": %" PRIu64 ",\n", r.reads);
  std::fprintf(f, "    \"writes\": %" PRIu64 ",\n", r.writes);
  std::fprintf(f, "    \"total_classes\": [");
  bool first = true;
  for (int c = 1; c < kNumClasses; ++c) {
    std::fprintf(f, "%s\n      {\"class\": \"%s\", \"lines\": %" PRIu64 "}",
                 first ? "" : ",", line_class_name(static_cast<LineClass>(c)),
                 r.total_classes[static_cast<std::size_t>(c)]);
    first = false;
  }
  std::fprintf(f, "\n    ],\n");
  std::fprintf(f, "    \"classes\": [");
  for (std::size_t i = 0; i < r.classes.size(); ++i) {
    const ClassCell& cc = r.classes[i];
    std::fprintf(f,
                 "%s\n      {\"scope\": \"%s\", \"depth\": %d, \"phase\": \"%s\", "
                 "\"class\": \"%s\", \"lines\": %" PRIu64 "}",
                 i != 0 ? "," : "", cc.scope.c_str(), cc.depth, phase_key(cc.phase),
                 line_class_name(cc.cls), cc.lines);
  }
  std::fprintf(f, "\n    ],\n");
  std::fprintf(f, "    \"false_sharing_hits\": %" PRIu64 ",\n", r.false_sharing_hits);
  std::fprintf(f, "    \"false_sharing\": [");
  for (std::size_t i = 0; i < r.false_sharing.size(); ++i) {
    const Finding& fd = r.false_sharing[i];
    std::fprintf(f,
                 "%s\n      {\"region\": \"%s\", \"line\": %" PRIu64
                 ", \"cell\": \"%s\", \"hits\": %" PRIu64 ", \"objects\": [",
                 i != 0 ? "," : "", fd.region.c_str(), fd.line, fd.cell.c_str(),
                 fd.hits);
    for (std::size_t o = 0; o < fd.objects.size(); ++o)
      std::fprintf(f, "%s%u", o != 0 ? ", " : "", fd.objects[o]);
    std::fprintf(f, "], \"procs\": [");
    for (std::size_t p = 0; p < fd.procs.size(); ++p)
      std::fprintf(f, "%s%d", p != 0 ? ", " : "", fd.procs[p]);
    std::fprintf(f, "], \"phase_hits\": [");
    bool ph_first = true;
    for (int ph = 0; ph < kNumPhases; ++ph) {
      if (fd.phase_hits[static_cast<std::size_t>(ph)] == 0) continue;
      std::fprintf(f, "%s{\"phase\": \"%s\", \"hits\": %" PRIu64 "}",
                   ph_first ? "" : ", ", phase_name(static_cast<Phase>(ph)),
                   fd.phase_hits[static_cast<std::size_t>(ph)]);
      ph_first = false;
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "\n    ],\n");
  std::fprintf(f, "    \"working_set\": [");
  for (std::size_t i = 0; i < r.working_set.size(); ++i) {
    const WorkingSetRow& w = r.working_set[i];
    std::fprintf(f,
                 "%s\n      {\"proc\": %d, \"phase\": \"%s\", \"distinct_lines\": %" PRIu64
                 ", \"cold\": %" PRIu64 ", \"reuse_samples\": %" PRIu64
                 ", \"reuse_p50\": %.1f, \"reuse_p95\": %.1f, \"reuse_max\": %.0f}",
                 i != 0 ? "," : "", w.proc, phase_name(static_cast<Phase>(w.phase)),
                 w.distinct_lines, w.cold, w.reuse.count(), w.reuse.p50(),
                 w.reuse.p95(), w.reuse.stat().max());
  }
  std::fprintf(f, "\n    ]\n  }\n}\n");
}

std::string sight_json(const SightReport& r) {
  std::FILE* f = std::tmpfile();
  PTB_CHECK_MSG(f != nullptr, "sight: cannot create temporary file");
  write_sight_json(r, f);
  long size = std::ftell(f);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::rewind(f);
  std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  out.resize(got);
  return out;
}

void ingest_sight_metrics(trace::MetricsRegistry& m, const SightReport& r) {
  m.set("sight.lines_observed", {}, static_cast<double>(r.lines_observed));
  m.set("sight.reads", {}, static_cast<double>(r.reads));
  m.set("sight.writes", {}, static_cast<double>(r.writes));
  for (int c = 1; c < kNumClasses; ++c) {
    m.set("sight.class_lines", {{"class", line_class_name(static_cast<LineClass>(c))}},
          static_cast<double>(r.total_classes[static_cast<std::size_t>(c)]));
  }
  m.set("sight.false_sharing_findings", {},
        static_cast<double>(r.false_sharing.size()));
  m.set("sight.false_sharing_hits", {}, static_cast<double>(r.false_sharing_hits));
  for (const WorkingSetRow& w : r.working_set) {
    const trace::Labels labels = {{"proc", std::to_string(w.proc)},
                                  {"phase", phase_name(static_cast<Phase>(w.phase))}};
    m.set("sight.ws_distinct_lines", labels, static_cast<double>(w.distinct_lines));
    m.set("sight.ws_cold", labels, static_cast<double>(w.cold));
    if (w.reuse.count() > 0) m.record_all("sight.reuse_dist", labels, w.reuse);
  }
}

bool default_sight_enabled() {
  const char* env = std::getenv("PTB_SIGHT");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string sight_path_from(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  const char* env = std::getenv("PTB_SIGHT");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace ptb::sight
