// ptb::sight — data-centric memory observability.
//
// The paper's argument runs through *where* communication happens: which
// data structures miss, which lines ping-pong between processors, how the
// working set tracks the tree's shape. The protocol models export aggregate
// counters; sight ties every access back to a logical object — a body index,
// a tree cell (via the shared CellResolver), a lock word, or a harness
// region — and derives three analyses from the observed per-line access
// interleaving:
//
//   (a) sharing-pattern classification per 64-byte line into the classic
//       taxonomy (private, read-shared, producer–consumer, migratory,
//       ping-pong), per phase and whole-run. Migratory is separated from
//       ping-pong by the fraction of ownership transfers where the new
//       writer read the line before writing (lock-protected read-modify-
//       write migration vs. blind write-write bouncing).
//   (b) false-sharing detection: lines where *distinct logical objects*
//       are written by *distinct processors* within an invalidation window
//       of virtual time. Object identity comes from per-region object
//       granules the harness opts into (bodies → sizeof(Body), cell pools →
//       sizeof(Node), reduction slots → sizeof(ReduceSlot)); regions
//       without a configured granule are never flagged.
//   (c) per-processor, per-phase reuse-distance histograms (exact Olken
//       stack distances over 64 B lines, log2-bucketed into the mergeable
//       Distribution machinery) and working-set sizes (distinct lines).
//
// Like RaceModel, SightModel is an opt-in MemModel decorator (--sight /
// PTB_SIGHT): every hook first updates observer state, then forwards to the
// wrapped model and returns its latency unchanged, so sighted runs are
// bit-identical in virtual time. When disabled the only residual cost is a
// null-pointer branch in the simulator. Unlike RaceModel it DOES observe
// the concurrent read_shared fast path: attaching any observer forces the
// parallel backend to run unordered sections inline (sim_rt.cpp), so host
// execution is serialized whenever sight is on and plain state updates are
// safe everywhere.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/model.hpp"
#include "rt/phase.hpp"
#include "support/cell_resolver.hpp"
#include "support/stats.hpp"

namespace ptb::trace {
class Tracer;
class MetricsRegistry;
}  // namespace ptb::trace

namespace ptb::sight {

/// Observation granularity: one coherence line. Fixed at 64 B regardless of
/// the platform's block size so classifications are comparable across the
/// platform matrix (and match the cache-line reality of modern hosts).
inline constexpr std::size_t kLineBytes = 64;

enum class LineClass : std::uint8_t {
  kUntouched = 0,
  kPrivate,
  kReadShared,
  kProducerConsumer,
  kMigratory,
  kPingPong,
};
inline constexpr int kNumClasses = 6;
const char* line_class_name(LineClass c);

/// Access interleaving summary for one line over one phase (or the whole
/// run): who touched it, how, and how ownership moved.
struct LineUse {
  std::uint64_t readers = 0;  // bitmask of reading processors
  std::uint64_t writers = 0;  // bitmask of writing processors
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t writer_changes = 0;     // writes by a proc != previous writer
  std::uint64_t migratory_changes = 0;  // ...where the new writer read first
};

/// Classifies one interleaving summary. Pure function of the counters; used
/// for both the whole-run class and the per-phase rows.
LineClass classify(const LineUse& u);

// --- report -----------------------------------------------------------------

/// One (scope, phase, class) cell of the sharing table. `scope` is "cells"
/// for lines inside tree cells (then `depth` is the cell depth) or the
/// owning region's name with per-processor suffixes collapsed
/// ("local.cells.p3" → "local.cells.p*"). `phase` is a Phase index, or -1
/// for the whole-run classification.
struct ClassCell {
  std::string scope;
  int depth = -1;
  int phase = -1;
  LineClass cls = LineClass::kUntouched;
  std::uint64_t lines = 0;
};

/// One falsely-shared line: distinct objects written by distinct processors
/// within the invalidation window.
struct Finding {
  std::string region;       // owning region (raw name)
  std::uint64_t line = 0;   // line index within the region
  std::string cell;         // "root"/"d<d>.o<o>" when the line is a tree cell
  std::vector<std::uint32_t> objects;  // object indices within the region
  std::vector<int> procs;
  std::uint64_t hits = 0;  // window-qualified cross-object write pairs
  std::array<std::uint64_t, kNumPhases> phase_hits{};
};

struct WorkingSetRow {
  int proc = 0;
  int phase = 0;
  std::uint64_t distinct_lines = 0;  // touched in this phase
  std::uint64_t cold = 0;            // first-ever accesses (no reuse distance)
  Distribution reuse;                // stack distances, log2-bucketed
};

struct SightReport {
  bool enabled = false;
  // Provenance (filled by the harness).
  std::string platform;
  std::string algorithm;
  int nbodies = 0;
  int nprocs = 0;
  std::uint64_t window_ns = 0;
  std::uint64_t lines_observed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::array<std::uint64_t, kNumClasses> total_classes{};  // whole-run, all lines
  std::vector<ClassCell> classes;  // long form, nonzero cells only
  std::vector<Finding> false_sharing;
  std::uint64_t false_sharing_hits = 0;
  std::vector<WorkingSetRow> working_set;  // rows with accesses only
};

/// Serializes the report as JSON (consumed by tools/sight_report.py).
void write_sight_json(const SightReport& r, std::FILE* f);
std::string sight_json(const SightReport& r);

/// Publishes sight.* metrics (class line counts, false-sharing totals,
/// per-proc/phase working sets and reuse distributions) into the registry.
void ingest_sight_metrics(trace::MetricsRegistry& m, const SightReport& r);

// --- the MemModel decorator -------------------------------------------------

/// Wraps the platform's protocol model (outside RaceModel when both are on):
/// every hook updates the observer, forwards to the wrapped model, and
/// returns its latency unchanged. Statistics accessors forward too.
class SightModel final : public MemModel {
 public:
  explicit SightModel(std::unique_ptr<MemModel> inner);

  void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                       int fixed_home, std::string name) override;
  void reset() override;

  std::uint64_t on_read(int proc, const void* p, std::size_t n, std::uint64_t now) override;
  std::uint64_t on_write(int proc, const void* p, std::size_t n,
                         std::uint64_t now) override;
  std::uint64_t on_rmw(int proc, const void* p, std::uint64_t now) override;
  std::uint64_t on_acquire(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_release(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_barrier_arrive(int proc, std::uint64_t now) override;
  std::uint64_t on_barrier_depart(int proc, std::uint64_t now) override;
  std::uint64_t on_atomic(int proc, const void* sync, bool is_write, const void* p,
                          std::size_t n, std::uint64_t now) override;
  std::uint64_t on_read_shared(int proc, const void* p, std::size_t n) override;
  std::uint64_t on_read_shared_span(int proc, const void* p, std::size_t n,
                                    std::size_t stride, std::size_t count) override;
  void on_phase(int proc, Phase ph) override;
  void set_serialized(bool s) override { inner_->set_serialized(s); }

  const MemProcStats& proc_stats(int p) const override { return inner_->proc_stats(p); }
  MemProcStats total_stats() const override { return inner_->total_stats(); }
  void reset_stats() override { inner_->reset_stats(); }

  MemModel& inner() { return *inner_; }

  /// Registers a region in the observer's table ONLY — not in the wrapped
  /// protocol model, so observing it cannot perturb virtual time. Used for
  /// memory the protocol never charges but sight attributes (the lock
  /// table: lock words are scheduler objects, yet their lines classify).
  void add_observed_region(const void* base, std::size_t bytes, std::string name);

  /// Opts region(s) into false-sharing detection: every region whose name
  /// starts with `prefix` is split into `bytes`-sized logical objects
  /// (body structs, tree nodes, reduction slots). Applies to regions
  /// registered before or after the call. bytes == 0 disables.
  void set_object_granule(const std::string& prefix, std::size_t bytes);

  /// Cross-object writes by distinct processors closer than this (virtual
  /// ns) count as false sharing. Default: 8× the platform's worst miss
  /// latency; PTB_SIGHT_WINDOW_NS overrides.
  void set_window_ns(std::uint64_t ns) { window_ns_ = ns; }
  std::uint64_t window_ns() const { return window_ns_; }

  /// Optional: emit a `sight` category instant at each line-class
  /// transition (Perfetto shows when a line goes migratory).
  void set_tracer(ptb::trace::Tracer* t) { tracer_ = t; }

  /// Builds the report. `cells` may be empty (all lines attribute to their
  /// region); provenance fields are left for the caller.
  SightReport build_report(const CellResolver& cells) const;

 private:
  struct Line {
    LineUse total;
    std::array<LineUse, kNumPhases> phase;
    std::int16_t last_writer = -1;
    std::uint64_t readers_since_write = 0;  // mask; reset on every write
    LineClass cls = LineClass::kUntouched;
    // False-sharing window state (writes only, objects valid only when the
    // region has an object granule).
    std::int16_t fs_writer = -1;
    std::uint32_t fs_object = 0;
    std::uint64_t fs_when_ns = 0;
  };

  struct FindingAcc {
    std::uint64_t hits = 0;
    std::uint64_t procs = 0;    // bitmask
    std::uint64_t objects = 0;  // bitmask of (object index % 64)
    std::vector<std::uint32_t> object_ids;  // exact ids, deduped
    std::array<std::uint64_t, kNumPhases> phase_hits{};
  };

  /// Exact Olken stack-distance tracker for one processor: a Fenwick tree
  /// over access-recency slots plus a line → slot map. Amortized O(log n)
  /// per access; slots are compacted when the slot space fills.
  struct ReuseTracker {
    struct LineInfo {
      std::uint32_t slot = 0;
      std::uint8_t phase_mask = 0;  // phases in which this proc touched it
    };
    std::unordered_map<std::uint64_t, LineInfo> lines;
    std::vector<std::uint32_t> fen;  // 1-based Fenwick over cap slots
    std::uint32_t cap = 0;
    std::uint32_t next = 0;

    void fen_add(std::uint32_t pos, std::int32_t d);
    std::uint32_t fen_prefix(std::uint32_t pos) const;
    void compact();
    /// Distance to the previous access of `line` by this proc, or UINT64_MAX
    /// when cold. Updates the tracker; `first_in_phase` reports whether this
    /// is the proc's first touch of the line in `phase`.
    std::uint64_t access(std::uint64_t line, int phase, bool& first_in_phase);
  };

  void observe(int proc, const void* p, std::size_t n, bool is_write, std::uint64_t now,
               bool has_now);
  void touch_line(int proc, std::size_t block, bool is_write, std::uint32_t object,
                  bool has_object, std::uint64_t now, bool has_now);
  Line& line_at(std::size_t block);
  void refresh_granules();
  void note_class(int proc, LineClass cls, std::uint64_t now);

  std::unique_ptr<MemModel> inner_;
  ptb::trace::Tracer* tracer_ = nullptr;
  std::uint64_t window_ns_ = 0;

  // Per-line observer state, allocated lazily per touched line.
  std::vector<std::int32_t> slot_of_block_;  // -1 = untouched
  std::vector<Line> lines_;
  std::vector<std::uint64_t> line_block_;  // lines_[i] observes this block

  std::vector<std::pair<std::string, std::size_t>> granule_config_;
  std::vector<std::uint32_t> region_granule_;  // per region index; 0 = off

  std::unordered_map<std::uint64_t, FindingAcc> findings_;  // by block

  std::vector<Phase> phase_;  // per proc
  std::vector<ReuseTracker> reuse_;
  // Per (proc, phase): distinct lines, cold accesses, reuse distances.
  std::vector<std::array<std::uint64_t, kNumPhases>> ws_lines_;
  std::vector<std::array<std::uint64_t, kNumPhases>> ws_cold_;
  std::vector<std::array<Distribution, kNumPhases>> reuse_dist_;

  std::uint64_t now_hint_ = 0;  // latest ordered virtual time seen
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// True when PTB_SIGHT is set to a non-empty, non-"0" value (cached).
bool default_sight_enabled();

/// Report path: the --sight flag value if non-empty, else $PTB_SIGHT, else
/// "" (disabled).
std::string sight_path_from(const std::string& flag_value);

}  // namespace ptb::sight
