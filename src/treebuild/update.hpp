// UPDATE (paper §2.3) — incremental per-timestep tree update.
//
// The tree persists across time-steps. Each step: (1) the root cube is
// recomputed from the new body positions and every node's absolute bounds are
// refreshed top-down (relative positions in the tree are invariant, so a
// node's cube is parent.cube.child(octant) — this replaces the paper's
// "record the space bounds of the previous time step" bookkeeping with an
// equivalent recomputation); (2) each processor checks its bodies against
// their leaf's new bounds and relocates movers: remove from the old leaf
// under its lock, walk up to the first ancestor that contains the new
// position, and re-insert from there with the usual locked insertion;
// (3) leaves left empty (and cells left childless) are reclaimed in a
// deepest-level-first sweep by their creators.
#pragma once

#include <vector>

#include "mem/region_table.hpp"
#include "treebuild/builder_common.hpp"

namespace ptb {

class UpdateBuilder {
 public:
  static constexpr Algorithm kAlgorithm = Algorithm::kUpdate;

  explicit UpdateBuilder(AppState& st) : st_(&st) {
    for (auto& pool : st.storage.per_proc)
      pool.init(proc_pool_capacity(st.cfg.n, st.nprocs));
    freelists_.resize(static_cast<std::size_t>(st.nprocs));
  }

  template <class Ctx>
  void register_regions(Ctx& ctx) {
    for (int p = 0; p < st_->nprocs; ++p) {
      auto& pool = st_->storage.per_proc[static_cast<std::size_t>(p)];
      ctx.register_region(pool.base(), pool.size_bytes(), HomePolicy::kFixed, p,
                          "update.cells.p" + std::to_string(p));
    }
    // UPDATE is the one builder that needs the body -> leaf map as a real
    // shared structure; it pays for it.
    ctx.register_region(st_->tree.body_leaf.get(),
                        static_cast<std::size_t>(st_->tree.nbodies) * sizeof(Node*),
                        HomePolicy::kProcStriped, 0, "update.bodyleaf");
  }

  void reset() { built_ = false; }

  /// True if `inner` fits entirely inside `outer`.
  static bool covers(const Cube& outer, const Cube& inner) {
    for (int d = 0; d < 3; ++d) {
      if (inner.center[d] - inner.half < outer.center[d] - outer.half) return false;
      if (inner.center[d] + inner.half > outer.center[d] + outer.half) return false;
    }
    return true;
  }

  template <class RT>
  void build(RT& rt) {
    if (!built_) {
      initial_build(rt);
      rt.barrier();
      if (rt.self() == 0) built_ = true;
      rt.barrier();
      return;
    }
    incremental_update(rt);
  }

  std::vector<NodePool>& pools() { return st_->storage.per_proc; }

 private:
  ProcAlloc make_alloc(int p) {
    ProcAlloc a;
    a.proc = p;
    a.pool = &st_->storage.per_proc[static_cast<std::size_t>(p)];
    a.created = &st_->tree.created[static_cast<std::size_t>(p)];
    a.freelist = &freelists_[static_cast<std::size_t>(p)];
    return a;
  }

  InsertEnv make_env() const {
    return InsertEnv{&st_->cfg, st_->bodies.data(), st_, st_->tree.body_leaf.get(), true};
  }

  template <class RT>
  void initial_build(RT& rt) {
    AppState& st = *st_;
    const int p = rt.self();
    const auto pi = static_cast<std::size_t>(p);
    const Cube rc = reduce_root_cube(rt, st);
    st.tree.created[pi].clear();
    freelists_[pi].clear();
    rt.barrier();

    ProcAlloc alloc = make_alloc(p);
    Node* root = nullptr;
    if (p == 0) {
      for (auto& pool : st_->storage.per_proc) pool.reset();
      root = alloc_node(rt, alloc);
      root->init_leaf(rc, nullptr, 0, 0);
      rt.write(root, 64);
    }
    if (p == 0) root_cube_ = rc;  // single writer; others see it past the barrier
    root = publish_root(rt, st, rc, root);

    const InsertEnv env = make_env();
    for (std::int32_t bi : st.partition[pi]) {
      rt.read(st.body_charge(bi), sizeof(Vec3));
      shared_insert(rt, env, alloc, root, bi);
    }
  }

  /// Reduce the global max alive level through the shared slots.
  template <class RT>
  int reduce_max_level(RT& rt) {
    AppState& st = *st_;
    const auto pi = static_cast<std::size_t>(rt.self());
    std::int64_t local = 0;
    for (const Node* n : st.tree.created[pi])
      if (!n->dead && n->level > local) local = n->level;
    st.tree.reduce[pi].value = local;
    rt.write(&st.tree.reduce[pi].value, sizeof(std::int64_t));
    rt.barrier();
    std::int64_t gmax = 0;
    for (int q = 0; q < rt.nprocs(); ++q) {
      rt.read(&st.tree.reduce[static_cast<std::size_t>(q)].value, sizeof(std::int64_t));
      gmax = std::max(gmax, st.tree.reduce[static_cast<std::size_t>(q)].value);
    }
    return static_cast<int>(gmax);
  }

  /// Bucket this processor's alive created nodes by level (host-side copy;
  /// the shared-memory cost of touching the nodes is charged where they are
  /// actually read/written).
  std::vector<std::vector<Node*>> bucket_by_level(int p, int gmax) {
    std::vector<std::vector<Node*>> buckets(static_cast<std::size_t>(gmax) + 1);
    for (Node* n : st_->tree.created[static_cast<std::size_t>(p)])
      if (!n->dead) buckets[n->level].push_back(n);
    return buckets;
  }

  template <class RT>
  void incremental_update(RT& rt) {
    AppState& st = *st_;
    const int p = rt.self();
    const auto pi = static_cast<std::size_t>(p);
    ProcAlloc alloc = make_alloc(p);
    const InsertEnv env = make_env();

    // (1) The recorded bounds persist across steps (paper: cells "record the
    // space bounds they represented in the previous time step"). Only when
    // the universe outgrows the recorded root cube do we grow it (with
    // hysteresis, so this is rare) and re-derive every node's bounds from the
    // invariant relative positions. A drifting root cube would otherwise
    // shift every leaf's bounds each step and relocate nearly every body.
    const Cube rc = reduce_root_cube(rt, st);
    const bool refresh = !covers(root_cube_, rc);
    rt.barrier();  // everyone sampled root_cube_ before processor 0 grows it
    if (refresh) {
      if (p == 0) {
        Cube grown = rc;
        grown.half *= 1.3;  // hysteresis: the next few growths are absorbed
        root_cube_ = grown;
        st.tree.root->cube = grown;
        st.tree.root_cube = grown;
        rt.write(st.tree.root, 48);
        rt.write(&st.tree.root, sizeof(Node*) + sizeof(Cube));
      }
      const int gmax = reduce_max_level(rt);  // includes a barrier
      auto buckets = bucket_by_level(p, gmax);
      for (int lvl = 1; lvl <= gmax; ++lvl) {
        for (Node* n : buckets[static_cast<std::size_t>(lvl)]) {
          rt.read(&n->parent->cube, sizeof(Cube));
          n->cube = n->parent->cube.child(n->octant);
          rt.write(&n->cube, sizeof(Cube));
          rt.compute(4.0);
        }
        rt.barrier();
      }
    }

    // (2) Relocate bodies that crossed their leaf's (new) bounds.
    for (std::int32_t bi : st.partition[pi]) {
      const auto bidx = static_cast<std::size_t>(bi);
      const Body& b = st.bodies[bidx];
      rt.read(st.body_charge(bi), sizeof(Vec3));
      Node* leaf = nullptr;
      for (;;) {
        leaf = rt.ordered_load(st.tree.body_leaf[bidx], &st.tree.body_leaf[bidx],
                               sizeof(Node*));
        const NodeKind kind = rt.ordered_load(leaf->kind, leaf, 48);
        rt.compute(work::kTraversalStep);
        if (kind == NodeKind::kLeaf && leaf->cube.contains(b.pos)) {
          leaf = nullptr;  // still home: nothing to do
          break;
        }
        const void* lk = st.node_lock(leaf);
        detail::maybe_lock(rt, st.cfg, lk);
        if (leaf->is_cell(std::memory_order_relaxed)) {
          // Subdivided under us: our body was relocated to a child; re-read.
          detail::maybe_unlock(rt, st.cfg, lk);
          continue;
        }
        if (leaf->cube.contains(b.pos)) {  // re-check under the lock
          detail::maybe_unlock(rt, st.cfg, lk);
          leaf = nullptr;
          break;
        }
        remove_from_leaf(rt, leaf, bi);
        detail::maybe_unlock(rt, st.cfg, lk);
        break;
      }
      if (leaf == nullptr) continue;

      // Walk up to the first ancestor containing the new position (paper:
      // "we compare it with its parent recursively until a cell in which it
      // should belong in this time step has been found").
      Node* anc = leaf->parent;
      while (anc != nullptr) {
        rt.read(anc, 48);
        rt.compute(work::kTraversalStep);
        if (anc->cube.contains(b.pos)) break;
        anc = anc->parent;
      }
      if (anc == nullptr) anc = st.tree.root;  // safety net; root contains all
      shared_insert(rt, env, alloc, anc, bi);
    }
    rt.barrier();

    // (3) Reclaim empty leaves and childless cells, deepest level first,
    // each by its creator (no locks needed once movement has stopped).
    const int gmax2 = reduce_max_level(rt);  // includes a barrier
    auto buckets2 = bucket_by_level(p, gmax2);
    for (int lvl = gmax2; lvl >= 1; --lvl) {
      if (lvl <= gmax2) {
        for (Node* n : buckets2[static_cast<std::size_t>(lvl)]) {
          if (n->dead) continue;  // already reclaimed this sweep
          bool empty;
          if (n->is_leaf()) {
            rt.read(&n->nbodies, 8);
            empty = n->nbodies == 0;
          } else {
            rt.read(&n->child[0], sizeof(Node*) * 8);
            empty = true;
            for (int o = 0; o < 8 && empty; ++o)
              if (n->get_child(o, std::memory_order_relaxed) != nullptr) empty = false;
          }
          rt.compute(4.0);
          if (!empty) continue;
          n->parent->set_child(n->octant, nullptr);
          rt.write(&n->parent->child[n->octant], sizeof(Node*));
          free_node(alloc, n);
        }
      }
      rt.barrier();
    }
  }

  template <class RT>
  void remove_from_leaf(RT& rt, Node* leaf, std::int32_t bi) {
    int found = -1;
    for (int i = 0; i < leaf->nbodies; ++i)
      if (leaf->bodies[i] == bi) {
        found = i;
        break;
      }
    PTB_CHECK_MSG(found >= 0, "body missing from its recorded leaf");
    leaf->bodies[found] = leaf->bodies[leaf->nbodies - 1];
    --leaf->nbodies;
    rt.write(&leaf->bodies[0], 16);
    rt.compute(work::kInsertBody);
  }

  AppState* st_;
  std::vector<std::vector<Node*>> freelists_;
  bool built_ = false;
  /// The recorded root bounds, persistent across steps; grown (rarely) with
  /// hysteresis by processor 0 only.
  Cube root_cube_;
};

}  // namespace ptb
