// The five parallel tree-building algorithms studied by the paper.
#pragma once

#include <string>
#include <vector>

namespace ptb {

enum class Algorithm : int {
  kOrig = 0,     // §2.1 SPLASH: one shared cell array, per-cell locks,
                 //      global next-cell counter, shared count arrays
  kLocal = 1,    // §2.2 SPLASH-2: per-processor pools, private counters
  kUpdate = 2,   // §2.3 incremental per-step tree update
  kPartree = 3,  // §2.4 local trees merged subtree-wise into the global tree
  kSpace = 4,    // §2.5 the paper's new algorithm: separate spatial
                 //      partition for tree building; zero locks
};

inline constexpr int kNumAlgorithms = 5;

const char* algorithm_name(Algorithm a);
Algorithm algorithm_from_name(const std::string& name);
std::vector<Algorithm> all_algorithms();

}  // namespace ptb
