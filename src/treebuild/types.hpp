// The five parallel tree-building algorithms studied by the paper, plus
// RADIX — the 2020s-era Morton-sort builder the modern platforms favour.
#pragma once

#include <string>
#include <vector>

namespace ptb {

enum class Algorithm : int {
  kOrig = 0,     // §2.1 SPLASH: one shared cell array, per-cell locks,
                 //      global next-cell counter, shared count arrays
  kLocal = 1,    // §2.2 SPLASH-2: per-processor pools, private counters
  kUpdate = 2,   // §2.3 incremental per-step tree update
  kPartree = 3,  // §2.4 local trees merged subtree-wise into the global tree
  kSpace = 4,    // §2.5 the paper's new algorithm: separate spatial
                 //      partition for tree building; zero locks
  kRadix = 5,    // beyond the paper: fully-parallel Morton-key radix sort +
                 //      lock-free construction from sorted keys (Cornerstone
                 //      lineage, arXiv:2307.06345); zero locks, cheap atomics
};

inline constexpr int kNumAlgorithms = 6;

const char* algorithm_name(Algorithm a);
Algorithm algorithm_from_name(const std::string& name);
std::vector<Algorithm> all_algorithms();

/// "ORIG|LOCAL|UPDATE|PARTREE|SPACE|RADIX" — the one shared builder listing
/// for CLI help strings (ptbsim, benches); never hand-maintain a copy.
std::string algorithm_names_joined(char sep = '|');

}  // namespace ptb
