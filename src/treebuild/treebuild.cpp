#include "treebuild/types.hpp"

#include "support/check.hpp"

namespace ptb {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kOrig:
      return "ORIG";
    case Algorithm::kLocal:
      return "LOCAL";
    case Algorithm::kUpdate:
      return "UPDATE";
    case Algorithm::kPartree:
      return "PARTREE";
    case Algorithm::kSpace:
      return "SPACE";
    case Algorithm::kRadix:
      return "RADIX";
  }
  return "?";
}

Algorithm algorithm_from_name(const std::string& name) {
  for (Algorithm a : all_algorithms())
    if (name == algorithm_name(a)) return a;
  // Accept lowercase too.
  if (name == "orig") return Algorithm::kOrig;
  if (name == "local") return Algorithm::kLocal;
  if (name == "update") return Algorithm::kUpdate;
  if (name == "partree") return Algorithm::kPartree;
  if (name == "space") return Algorithm::kSpace;
  if (name == "radix") return Algorithm::kRadix;
  PTB_CHECK_MSG(false, "unknown algorithm name");
  return Algorithm::kOrig;
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kOrig,    Algorithm::kLocal, Algorithm::kUpdate,
          Algorithm::kPartree, Algorithm::kSpace, Algorithm::kRadix};
}

std::string algorithm_names_joined(char sep) {
  std::string out;
  for (Algorithm a : all_algorithms()) {
    if (!out.empty()) out.push_back(sep);
    out += algorithm_name(a);
  }
  return out;
}

}  // namespace ptb
