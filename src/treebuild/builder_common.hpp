// Helpers shared by the concrete builders.
#pragma once

#include <cstddef>

#include "harness/state.hpp"
#include "treebuild/insert.hpp"
#include "treebuild/types.hpp"

namespace ptb {

/// Sizing for node pools. Empirically a Plummer distribution with leaf_cap 8
/// uses ~0.45 nodes/body; we provision ~1.5x headroom plus a floor.
inline std::size_t global_pool_capacity(int n) {
  return static_cast<std::size_t>(n) + 8192;
}
inline std::size_t proc_pool_capacity(int n, int nprocs) {
  return global_pool_capacity(n) * 2 / static_cast<std::size_t>(nprocs) + 4096;
}

/// Publishes the root pointer/cube (processor 0) and hands every processor a
/// consistent view. Includes the barrier separating root creation from
/// concurrent insertion.
template <class RT>
Node* publish_root(RT& rt, AppState& st, const Cube& rc, Node* root_if_p0) {
  if (rt.self() == 0) {
    st.tree.root = root_if_p0;
    st.tree.root_cube = rc;
    rt.write(&st.tree.root, sizeof(Node*) + sizeof(Cube));
  }
  rt.barrier();
  rt.read(&st.tree.root, sizeof(Node*) + sizeof(Cube));
  return st.tree.root;
}

}  // namespace ptb
