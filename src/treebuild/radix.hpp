// RADIX — the 2020s answer to the paper's question (ROADMAP item 4).
//
// Cornerstone (arXiv:2307.06345) and GOTHIC-style GPU codes (arXiv:2312.06102)
// build octrees the opposite way from every 1998 algorithm: compute a Morton
// (space-filling-curve) key per body, sort the keys with a fully-parallel
// radix sort, and derive the tree bottom-up from key prefixes — no
// fine-grained locking anywhere, only barriers and one fetch&add work queue.
// The pipeline:
//
//   1. keys     — every processor quantizes its slice of bodies to 63-bit
//                 Morton keys (21 bits/axis; bh/morton.hpp).
//   2. sort     — 8-pass LSD radix sort (8-bit digits) over (key, body-id)
//                 pairs. Per pass: per-processor histogram of its slice,
//                 barrier, REPLICATED stable prefix-sum offsets (offset of
//                 digit d for processor q = all counts of smaller digits +
//                 counts of d from smaller-ranked processors — a pure
//                 function of the histograms, so the permutation is
//                 timing-independent), scatter, barrier. Histogram and
//                 scatter are unordered sections: the parallel backend and
//                 the native runtimes get a build phase that actually runs
//                 host-concurrently.
//   3. gather   — positions are permuted into Morton order (spos), turning
//                 every later body-data read into a contiguous stream
//                 (annotate::PermutationView charges them as single spans).
//   4. segment  — all processors replicate a top-down split of the sorted
//                 key range (binary searches on octant bits) until segments
//                 hold <= threshold bodies; processor 0 materializes the
//                 upper cells exactly like SPACE's partitioning tree.
//   5. build    — segments are claimed dynamically through one fetch&add
//                 cursor (largest first); each owner emits its subtree
//                 top-down from the sorted keys and attaches it to a
//                 distinct child slot. No locks: every write target is
//                 either private or a slot no other processor touches.
//
// Keys resolve 21 levels; below that (> leaf_cap bodies inside one 2^-21
// quantum) the builder falls back to geometric splitting of the (identical-
// key) run, which reproduces the reference tree's coincident-body handling.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bh/morton.hpp"
#include "mem/region_table.hpp"
#include "treebuild/annotate.hpp"
#include "treebuild/builder_common.hpp"

namespace ptb {

class RadixBuilder {
 public:
  static constexpr Algorithm kAlgorithm = Algorithm::kRadix;

  static constexpr int kPasses = 8;    // 8 digits x 8 bits cover 63-bit keys
  static constexpr int kDigits = 256;  // one pass digit

  explicit RadixBuilder(AppState& st) : st_(&st) {
    const auto n = static_cast<std::size_t>(st.cfg.n);
    const auto np = static_cast<std::size_t>(st.nprocs);
    for (auto& pool : st.storage.per_proc)
      pool.init(proc_pool_capacity(st.cfg.n, st.nprocs));
    keys_[0].assign(n, 0);
    keys_[1].assign(n, 0);
    ids_[0].assign(n, 0);
    ids_[1].assign(n, 0);
    spos_.assign(n, Vec3{});
    hist_.assign(np * kDigits, 0);
    // Identity positions for the permutation-view span charges (host-only,
    // read-shared across processors, never mutated).
    posv_.resize(n);
    for (std::size_t i = 0; i < n; ++i) posv_[i] = static_cast<std::int32_t>(i);
    cursor_ = make_aligned_array<std::atomic<std::int64_t>>(1);
  }

  template <class Ctx>
  void register_regions(Ctx& ctx) {
    const auto np = static_cast<std::size_t>(st_->nprocs);
    for (int p = 0; p < st_->nprocs; ++p) {
      auto& pool = st_->storage.per_proc[static_cast<std::size_t>(p)];
      ctx.register_region(pool.base(), pool.size_bytes(), HomePolicy::kFixed, p,
                          "radix.cells.p" + std::to_string(p));
    }
    for (int w = 0; w < 2; ++w) {
      ctx.register_region(keys_[w].data(), keys_[w].size() * sizeof(std::uint64_t),
                          HomePolicy::kProcStriped, 0, "radix.keys" + std::to_string(w));
      ctx.register_region(ids_[w].data(), ids_[w].size() * sizeof(std::int32_t),
                          HomePolicy::kProcStriped, 0, "radix.ids" + std::to_string(w));
    }
    ctx.register_region(spos_.data(), spos_.size() * sizeof(Vec3),
                        HomePolicy::kProcStriped, 0, "radix.spos");
    ctx.register_region(hist_.data(), np * kDigits * sizeof(std::int64_t),
                        HomePolicy::kProcStriped, 0, "radix.hist");
    ctx.register_region(cursor_.get(), sizeof(std::atomic<std::int64_t>),
                        HomePolicy::kFixed, 0, "radix.cursor");
  }

  void reset() {}

  template <class RT>
  void build(RT& rt) {
    AppState& st = *st_;
    const int p = rt.self();
    const int np = rt.nprocs();
    const auto pi = static_cast<std::size_t>(p);
    const std::int64_t n = st.cfg.n;
    const int threshold =
        std::max(st.cfg.effective_space_threshold(np), st.cfg.leaf_cap);
    // Fixed array slice of this processor (same split for keys and sort).
    const std::int64_t lo = n * p / np;
    const std::int64_t hi = n * (p + 1) / np;
    const std::int64_t len = hi - lo;

    const Cube rc = reduce_root_cube(rt, st);
    st.tree.created[pi].clear();
    rt.barrier();
    ProcAlloc alloc = make_alloc(p);

    Node* root = nullptr;
    if (p == 0) {
      for (auto& pool : st_->storage.per_proc) pool.reset();
      cursor_[0].store(0, std::memory_order_relaxed);
      rt.write(cursor_.get(), sizeof(std::int64_t));
      if (n > threshold) {
        // The root is the first "upper" cell (it always splits).
        root = alloc_node(rt, alloc);
        root->init_leaf(rc, nullptr, 0, 0);
        root->to_cell();
        rt.write(root, 64);
      }
    }
    if (n > threshold) {
      root = publish_root(rt, st, rc, root);
    } else {
      rt.barrier();
    }

    // --- 1. per-processor Morton keys over the id slice [lo, hi) ---
    {
      std::uint64_t* keys = keys_[0].data();
      std::int32_t* ids = ids_[0].data();
      for (std::int64_t i = lo; i < hi; ++i) ids[i] = static_cast<std::int32_t>(i);
      rt.unordered([&] {
        std::int64_t i = lo;
        annotate::read_bodies_spanned(
            rt, st, ids + lo, static_cast<std::size_t>(len), sizeof(Vec3), -1,
            [&](std::int32_t bi) {
              keys[i++] = morton_key(st.bodies[static_cast<std::size_t>(bi)].pos, rc);
            });
        rt.compute_n(work::kMortonKey, static_cast<std::uint64_t>(len));
      });
      if (len > 0) {
        rt.write(keys + lo, static_cast<std::size_t>(len) * sizeof(std::uint64_t));
        rt.write(ids + lo, static_cast<std::size_t>(len) * sizeof(std::int32_t));
      }
    }

    // --- 2. fully-parallel stable LSD radix sort ---
    for (int pass = 0; pass < kPasses; ++pass) {
      const int src = pass & 1;
      const std::uint64_t* skeys = keys_[src].data();
      const std::int32_t* sids = ids_[src].data();
      std::uint64_t* dkeys = keys_[1 - src].data();
      std::int32_t* dids = ids_[1 - src].data();
      const int shift = 8 * pass;

      // Histogram of my slice (unordered: reads my slice, fills my row).
      std::int64_t* row = hist_.data() + pi * kDigits;
      std::fill(row, row + kDigits, 0);
      rt.unordered([&] {
        if (len > 0) rt.read_shared_span(skeys + lo, 8, 8, static_cast<std::size_t>(len));
        for (std::int64_t i = lo; i < hi; ++i)
          ++row[(skeys[i] >> shift) & (kDigits - 1)];
        rt.compute_n(work::kSortStep, static_cast<std::uint64_t>(len));
      });
      rt.write(row, kDigits * sizeof(std::int64_t));
      rt.barrier();

      // Replicated stable offsets: a pure function of the histograms, so the
      // output permutation is identical no matter how execution interleaves.
      std::int64_t off[kDigits];
      {
        std::int64_t total[kDigits] = {};
        std::int64_t below[kDigits] = {};
        for (int q = 0; q < np; ++q) {
          const std::int64_t* qrow = hist_.data() + static_cast<std::size_t>(q) * kDigits;
          rt.read(qrow, kDigits * sizeof(std::int64_t));
          rt.compute(static_cast<double>(kDigits));
          for (int d = 0; d < kDigits; ++d) {
            if (q < p) below[d] += qrow[d];
            total[d] += qrow[d];
          }
        }
        std::int64_t base = 0;
        for (int d = 0; d < kDigits; ++d) {
          off[d] = base + below[d];
          base += total[d];
        }
      }

      // Scatter (unordered: reads my slice, writes processor-disjoint
      // destinations). Ordered write charges are deferred past the section
      // and coalesced into one span per digit run.
      std::int64_t run_start[kDigits];
      std::copy(off, off + kDigits, run_start);
      rt.unordered([&] {
        if (len > 0) {
          rt.read_shared_span(skeys + lo, 8, 8, static_cast<std::size_t>(len));
          rt.read_shared_span(sids + lo, 4, 4, static_cast<std::size_t>(len));
        }
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto d = static_cast<std::size_t>((skeys[i] >> shift) & (kDigits - 1));
          dkeys[off[d]] = skeys[i];
          dids[off[d]] = sids[i];
          ++off[d];
        }
        rt.compute_n(work::kSortStep, static_cast<std::uint64_t>(len));
      });
      for (int d = 0; d < kDigits; ++d) {
        const std::int64_t rl = off[d] - run_start[d];
        if (rl == 0) continue;
        rt.write(dkeys + run_start[d], static_cast<std::size_t>(rl) * sizeof(std::uint64_t));
        rt.write(dids + run_start[d], static_cast<std::size_t>(rl) * sizeof(std::int32_t));
      }
      rt.barrier();
    }
    // kPasses is even, so the sorted pairs are back in buffer 0.
    std::uint64_t* keys = keys_[0].data();
    std::int32_t* ids = ids_[0].data();

    // --- 3. permute positions into Morton order (SoA gather) ---
    {
      Vec3* spos = spos_.data();
      rt.unordered([&] {
        std::int64_t i = lo;
        annotate::read_bodies_spanned(
            rt, st, ids + lo, static_cast<std::size_t>(len), sizeof(Vec3), -1,
            [&](std::int32_t bi) {
              spos[i++] = st.bodies[static_cast<std::size_t>(bi)].pos;
            });
        rt.compute_n(work::kGatherBody, static_cast<std::uint64_t>(len));
      });
      if (len > 0) rt.write(spos + lo, static_cast<std::size_t>(len) * sizeof(Vec3));
    }
    rt.barrier();

    // --- 4. replicated segmentation of the sorted range + upper cells ---
    struct Upper {
      std::int32_t parent;  // index into uppers (-1: none; only uppers[0])
      std::int32_t octant;
      Cube cube;
      int level;
      Node* node;
    };
    struct Seg {
      std::int32_t parent;  // upper-cell index (-1: the segment IS the tree)
      std::int32_t octant;
      Cube cube;
      int level;
      std::int64_t b, e;
    };
    std::vector<Upper> uppers;
    std::vector<Seg> segs;
    {
      // First sorted index in [b, e) whose octant bits at `level` exceed o.
      auto upper_bound_octant = [&](std::int64_t b, std::int64_t e, int level, int o) {
        while (b < e) {
          const std::int64_t m = b + (e - b) / 2;
          rt.read_shared(&keys[m], sizeof(std::uint64_t));
          rt.compute(work::kSortStep);
          if (morton_octant(keys[m], level) <= o)
            b = m + 1;
          else
            e = m;
        }
        return b;
      };
      struct Todo {
        std::int32_t parent;
        std::int32_t octant;
        Cube cube;
        int level;
        std::int64_t b, e;
      };
      std::vector<Todo> stack;
      stack.push_back(Todo{-1, 0, rc, 0, 0, n});
      while (!stack.empty()) {
        const Todo t = stack.back();
        stack.pop_back();
        if (t.e - t.b > threshold && t.level < kMortonLevels) {
          const auto idx = static_cast<std::int32_t>(uppers.size());
          uppers.push_back(Upper{t.parent, t.octant, t.cube, t.level, nullptr});
          std::int64_t b = t.b;
          // Push children in reverse so they pop in octant order (the exact
          // visit order does not matter — only that it is deterministic and
          // parents precede children, which holds since idx < any child idx).
          Todo kids[8];
          int nk = 0;
          for (int o = 0; o < 8; ++o) {
            const std::int64_t e = upper_bound_octant(b, t.e, t.level, o);
            if (e > b)
              kids[nk++] = Todo{idx, o, t.cube.child(o), t.level + 1, b, e};
            b = e;
          }
          for (int k = nk - 1; k >= 0; --k) stack.push_back(kids[k]);
        } else {
          segs.push_back(Seg{t.parent, t.octant, t.cube, t.level, t.b, t.e});
        }
      }
    }
    if (!uppers.empty()) uppers[0].node = root;
    if (p == 0) {
      for (std::size_t k = 1; k < uppers.size(); ++k) {
        Upper& u = uppers[k];
        Node* parent = uppers[static_cast<std::size_t>(u.parent)].node;
        Node* cell = alloc_node(rt, alloc);
        cell->init_leaf(u.cube, parent, u.level, 0, u.octant);
        cell->to_cell();
        rt.write(cell, 64);
        parent->set_child(u.octant, cell);
        rt.write(&parent->child[u.octant], sizeof(Node*));
        u.node = cell;
      }
    }
    rt.barrier();
    if (p != 0) {
      for (std::size_t k = 1; k < uppers.size(); ++k) {
        Upper& u = uppers[k];
        Node* parent = uppers[static_cast<std::size_t>(u.parent)].node;
        rt.read(&parent->child[u.octant], sizeof(Node*));
        u.node = parent->get_child(u.octant);
        PTB_CHECK(u.node != nullptr);
      }
    }

    // --- 5. dynamic segment claiming (largest first) + lock-free build ---
    std::vector<std::size_t> order(segs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (segs[a].e - segs[a].b != segs[b].e - segs[b].b)
        return segs[a].e - segs[a].b > segs[b].e - segs[b].b;
      return a < b;
    });
    rt.compute(static_cast<double>(segs.size()) * 2.0);

    const InsertEnv env{&st.cfg, st.bodies.data(), &st, st.tree.body_leaf.get(), false};
    for (;;) {
      const std::int64_t k = rt.fetch_add(cursor_[0], 1);
      if (k >= static_cast<std::int64_t>(segs.size())) break;
      const Seg& s = segs[order[static_cast<std::size_t>(k)]];
      // The segment's keys/ids/positions are three contiguous streams — the
      // locality the sort bought. Positions go through the permutation view
      // (sorted index == charge slot, so the whole segment is one span).
      const std::int64_t sl = s.e - s.b;
      if (sl > 0) {
        rt.read_shared_span(keys + s.b, 8, 8, static_cast<std::size_t>(sl));
        const annotate::PermutationView pview{spos_.data(), sizeof(Vec3)};
        annotate::read_view_spanned(rt, pview, posv_.data() + s.b,
                                    static_cast<std::size_t>(sl), sizeof(Vec3), -1,
                                    [](std::int32_t) {});
      }
      Node* parent = s.parent >= 0 ? uppers[static_cast<std::size_t>(s.parent)].node : nullptr;
      Node* sub = build_range(rt, env, alloc, parent, s.cube, s.level, s.octant, s.b, s.e);
      if (parent == nullptr) {
        // Whole space in one segment: the subtree IS the tree.
        st.tree.root = sub;
        st.tree.root_cube = rc;
        rt.write(&st.tree.root, sizeof(Node*) + sizeof(Cube));
      } else {
        parent->set_child(s.octant, sub);
        rt.write(&parent->child[s.octant], sizeof(Node*));
      }
    }
  }

  std::vector<NodePool>& pools() { return st_->storage.per_proc; }

 private:
  ProcAlloc make_alloc(int p) {
    ProcAlloc a;
    a.proc = p;
    a.pool = &st_->storage.per_proc[static_cast<std::size_t>(p)];
    a.created = &st_->tree.created[static_cast<std::size_t>(p)];
    return a;
  }

  /// Emits the subtree over sorted range [b, e) top-down. Splits by key bits
  /// while they last, geometrically below kMortonLevels (identical keys).
  /// Matches the reference shape exactly: a node is a leaf iff its count is
  /// <= leaf_cap or it sits at max_level.
  template <class RT>
  Node* build_range(RT& rt, const InsertEnv& env, ProcAlloc& alloc, Node* parent,
                    const Cube& cube, int level, int octant, std::int64_t b,
                    std::int64_t e) {
    AppState& st = *st_;
    std::uint64_t* keys = keys_[0].data();
    std::int32_t* ids = ids_[0].data();
    Node* nd = alloc_node(rt, alloc);
    nd->init_leaf(cube, parent, level, alloc.proc, octant);
    if (e - b <= st.cfg.leaf_cap || level >= st.cfg.max_level) {
      PTB_CHECK_MSG(e - b <= kLeafCapacity,
                    "too many coincident bodies for kLeafCapacity at max_level");
      nd->nbodies = static_cast<std::int32_t>(e - b);
      for (std::int64_t i = b; i < e; ++i)
        nd->bodies[i - b] = ids[i];
      rt.write(nd, 64);
      rt.compute(work::kLeafFromKeys +
                 work::kSortStep * static_cast<double>(e - b));
      for (std::int64_t i = b; i < e; ++i) detail::note_leaf(rt, env, ids[i], nd);
      return nd;
    }
    nd->to_cell();
    rt.write(nd, 64);
    rt.compute(work::kCellFromKeys);
    std::int64_t cb[9];
    if (level < kMortonLevels) {
      // Key-bit split: children are maximal runs of equal octant bits.
      cb[0] = b;
      for (int o = 0; o < 8; ++o) {
        std::int64_t sb = cb[o], se = e;
        while (sb < se) {
          const std::int64_t m = sb + (se - sb) / 2;
          if (morton_octant(keys[m], level) <= o)
            sb = m + 1;
          else
            se = m;
        }
        cb[o + 1] = sb;
      }
    } else {
      // All keys in [b, e) are identical (coincident within one quantum):
      // stable-reorder the owner's run geometrically and keep recursing.
      std::vector<std::int32_t> bid[8];
      std::vector<Vec3> bpos[8];
      Vec3* spos = spos_.data();
      for (std::int64_t i = b; i < e; ++i) {
        const int o = cube.octant_of(spos[i]);
        bid[o].push_back(ids[i]);
        bpos[o].push_back(spos[i]);
        rt.compute(work::kSortStep);
      }
      std::int64_t w = b;
      cb[0] = b;
      for (int o = 0; o < 8; ++o) {
        for (std::size_t i = 0; i < bid[o].size(); ++i, ++w) {
          ids[w] = bid[o][i];
          spos[w] = bpos[o][i];
        }
        cb[o + 1] = w;
      }
      if (e > b) {
        rt.write(ids + b, static_cast<std::size_t>(e - b) * sizeof(std::int32_t));
        rt.write(spos_.data() + b, static_cast<std::size_t>(e - b) * sizeof(Vec3));
      }
    }
    for (int o = 0; o < 8; ++o) {
      if (cb[o + 1] == cb[o]) continue;
      Node* child = build_range(rt, env, alloc, nd, cube.child(o), level + 1, o,
                                cb[o], cb[o + 1]);
      nd->set_child(o, child, std::memory_order_relaxed);
      rt.write(&nd->child[o], sizeof(Node*));
    }
    return nd;
  }

  AppState* st_;
  AlignedVec<std::uint64_t> keys_[2];
  AlignedVec<std::int32_t> ids_[2];
  AlignedVec<Vec3> spos_;
  AlignedVec<std::int64_t> hist_;
  std::vector<std::int32_t> posv_;
  AlignedArrayPtr<std::atomic<std::int64_t>> cursor_;
};

}  // namespace ptb
