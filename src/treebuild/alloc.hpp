// Per-processor node allocation with per-algorithm bookkeeping.
//
// ORIG draws from one shared pool through a shared fetch&add counter and
// mirrors every assignment into shared pointer/count arrays (its false-sharing
// hot spots); the other builders draw from their own pool with private
// counters. UPDATE additionally recycles reclaimed nodes through a private
// free list.
#pragma once

#include <atomic>
#include <vector>

#include "bh/node.hpp"
#include "bh/pool.hpp"
#include "support/check.hpp"

namespace ptb {

struct ProcAlloc {
  int proc = 0;
  NodePool* pool = nullptr;

  /// ORIG only: shared next-index counter into the global pool.
  std::atomic<std::int64_t>* shared_counter = nullptr;
  /// ORIG only: this processor's slice of the shared cell-pointer array and
  /// its slot in the shared count array (charged writes).
  Node** ptr_slice = nullptr;
  std::size_t ptr_slice_cap = 0;
  std::int64_t* shared_count = nullptr;

  /// Creator bookkeeping (drives the moments phase).
  std::vector<Node*>* created = nullptr;
  /// UPDATE only: private list of reclaimed nodes for reuse.
  std::vector<Node*>* freelist = nullptr;
};

/// Allocates a node, recording it in the creator list. Shared-side costs
/// (counter RMW, pointer-array writes) are charged through the runtime.
template <class RT>
Node* alloc_node(RT& rt, ProcAlloc& a) {
  Node* n = nullptr;
  if (a.freelist != nullptr && !a.freelist->empty()) {
    n = a.freelist->back();
    a.freelist->pop_back();
  } else if (a.shared_counter != nullptr) {
    const std::int64_t idx = rt.fetch_add(*a.shared_counter, 1);
    n = a.pool->at(idx);
  } else {
    n = a.pool->take();
  }
  n->created_idx = static_cast<std::int32_t>(a.created->size());
  a.created->push_back(n);
  if (a.ptr_slice != nullptr) {
    rt.read(a.shared_count, sizeof(std::int64_t));
    const auto k = static_cast<std::size_t>(*a.shared_count);
    PTB_CHECK_MSG(k < a.ptr_slice_cap, "ORIG pointer slice exhausted");
    a.ptr_slice[k] = n;
    rt.write(&a.ptr_slice[k], sizeof(Node*));
    *a.shared_count = static_cast<std::int64_t>(k) + 1;
    rt.write(a.shared_count, sizeof(std::int64_t));
  }
  return n;
}

/// Removes a node from its creator's list (swap-removal) and, if a free list
/// is present, makes it reusable. Must be called by the node's creator.
inline void free_node(ProcAlloc& a, Node* n) {
  PTB_DCHECK(n->creator == a.proc);
  auto& vec = *a.created;
  const auto idx = static_cast<std::size_t>(n->created_idx);
  PTB_CHECK_MSG(idx < vec.size() && vec[idx] == n, "created-list bookkeeping corrupted");
  Node* last = vec.back();
  vec[idx] = last;
  last->created_idx = static_cast<std::int32_t>(idx);
  vec.pop_back();
  n->created_idx = -1;
  n->dead = true;
  if (a.freelist != nullptr) a.freelist->push_back(n);
}

}  // namespace ptb
