// SPACE (paper §2.5) — the paper's new, lock-free tree build.
//
// Tree building gets its OWN spatial partition, decoupled from the costzones
// partition used by the force/update phases. The space is recursively
// subdivided (counting bodies per octant each round) until every subspace
// holds at most `space_threshold` bodies; the resulting partitioning tree is
// exactly the top of the final octree and is materialized as "upper" cells.
// Subspaces are assigned to processors (greedy LPT on body counts); each
// processor gathers the bodies that fall in its subspaces (this is SPACE's
// communication/locality cost), builds one private subtree per subspace, and
// attaches it to the upper tree WITHOUT locking — no two processors ever
// touch the same child slot.
#pragma once

#include <algorithm>
#include <vector>

#include "mem/region_table.hpp"
#include "treebuild/builder_common.hpp"

namespace ptb {

class SpaceBuilder {
 public:
  static constexpr Algorithm kAlgorithm = Algorithm::kSpace;

  /// Upper-tree depth cap; the paper notes the partitioning tree is "usually
  /// below 4" levels.
  static constexpr int kMaxUpperLevels = 8;
  static constexpr std::size_t kMaxSlots = 65536;       // frontier cells * 8 per round
  static constexpr std::size_t kMaxSubspaces = 16384;

  explicit SpaceBuilder(AppState& st) : st_(&st) {
    const auto np = static_cast<std::size_t>(st.nprocs);
    for (auto& pool : st.storage.per_proc)
      pool.init(proc_pool_capacity(st.cfg.n, st.nprocs));
    counts_.assign(np * kMaxSlots, 0);
    bodybuf_.assign(np * static_cast<std::size_t>(st.cfg.n), 0);
    sub_start_.assign(kMaxSubspaces * np, 0);
    sub_len_.assign(kMaxSubspaces * np, 0);
  }

  template <class Ctx>
  void register_regions(Ctx& ctx) {
    const auto np = static_cast<std::size_t>(st_->nprocs);
    for (int p = 0; p < st_->nprocs; ++p) {
      auto& pool = st_->storage.per_proc[static_cast<std::size_t>(p)];
      ctx.register_region(pool.base(), pool.size_bytes(), HomePolicy::kFixed, p,
                          "space.cells.p" + std::to_string(p));
    }
    ctx.register_region(counts_.data(), np * kMaxSlots * sizeof(std::int64_t),
                        HomePolicy::kProcStriped, 0, "space.counts");
    ctx.register_region(bodybuf_.data(), bodybuf_.size() * sizeof(std::int32_t),
                        HomePolicy::kProcStriped, 0, "space.bodybuf");
    ctx.register_region(sub_start_.data(), sub_start_.size() * sizeof(std::int32_t),
                        HomePolicy::kInterleavedBlock, 0, "space.substart");
    ctx.register_region(sub_len_.data(), sub_len_.size() * sizeof(std::int32_t),
                        HomePolicy::kInterleavedBlock, 0, "space.sublen");
  }

  void reset() {}

  template <class RT>
  void build(RT& rt) {
    AppState& st = *st_;
    const int p = rt.self();
    const int np = rt.nprocs();
    const auto pi = static_cast<std::size_t>(p);
    const int threshold =
        std::max(st.cfg.effective_space_threshold(np), st.cfg.leaf_cap);

    const Cube rc = reduce_root_cube(rt, st);
    st.tree.created[pi].clear();
    rt.barrier();
    ProcAlloc alloc = make_alloc(p);

    // --- subdivision rounds (build the partitioning/upper tree) ---
    struct Entry {
      Node* node;  // materialized upper cell (cells only)
      Cube cube;
      int level;
    };
    struct Subspace {
      Node* parent;  // null only when the whole space is one subspace
      int octant;
      Cube cube;
      int level;
      std::int64_t total;
      std::vector<std::int32_t> mine;  // this processor's bodies inside
    };
    std::vector<Entry> frontier;
    std::vector<std::vector<std::int32_t>> lists;  // my bodies per frontier entry
    std::vector<Subspace> subs;

    Node* root = nullptr;
    if (st.cfg.n > threshold) {
      if (p == 0) {
        for (auto& pool : st_->storage.per_proc) pool.reset();
        root = alloc_node(rt, alloc);
        root->init_leaf(rc, nullptr, 0, 0);
        root->to_cell();
        rt.write(root, 64);
      }
      root = publish_root(rt, st, rc, root);
      frontier.push_back(Entry{root, rc, 0});
      lists.emplace_back(st.partition[pi].begin(), st.partition[pi].end());
    } else {
      // Degenerate: the whole space is a single subspace.
      if (p == 0)
        for (auto& pool : st_->storage.per_proc) pool.reset();
      rt.barrier();
      Subspace s{nullptr, 0, rc, 0, st.cfg.n, {}};
      s.mine.assign(st.partition[pi].begin(), st.partition[pi].end());
      subs.push_back(std::move(s));
    }

    while (!frontier.empty()) {
      const std::size_t slots = frontier.size() * 8;
      PTB_CHECK_MSG(slots <= kMaxSlots, "SPACE frontier exceeds the count buffer");
      std::int64_t* row = counts_.data() + pi * kMaxSlots;
      std::fill(row, row + slots, 0);
      std::vector<std::vector<std::int32_t>> binned(slots);

      // Count my bodies per (frontier cell, octant).
      for (std::size_t f = 0; f < frontier.size(); ++f) {
        for (std::int32_t bi : lists[f]) {
          const Body& b = st.bodies[static_cast<std::size_t>(bi)];
          rt.read(st.body_charge(bi), sizeof(Vec3));
          rt.compute(work::kBinBody);
          const int o = frontier[f].cube.octant_of(b.pos);
          ++row[f * 8 + static_cast<std::size_t>(o)];
          binned[f * 8 + static_cast<std::size_t>(o)].push_back(bi);
        }
      }
      rt.write(row, slots * sizeof(std::int64_t));
      rt.barrier();

      // Everyone reads everyone's counts and derives the identical split.
      std::vector<std::int64_t> total(slots, 0);
      for (int q = 0; q < np; ++q) {
        const std::int64_t* qrow = counts_.data() + static_cast<std::size_t>(q) * kMaxSlots;
        rt.read(qrow, slots * sizeof(std::int64_t));
        rt.compute(static_cast<double>(slots));
        for (std::size_t s = 0; s < slots; ++s) total[s] += qrow[s];
      }

      std::vector<Entry> next;
      std::vector<std::vector<std::int32_t>> next_lists;
      for (std::size_t f = 0; f < frontier.size(); ++f) {
        for (int o = 0; o < 8; ++o) {
          const std::size_t s = f * 8 + static_cast<std::size_t>(o);
          if (total[s] == 0) continue;
          const Cube ccube = frontier[f].cube.child(o);
          const int clevel = frontier[f].level + 1;
          if (total[s] > threshold && clevel < kMaxUpperLevels) {
            if (p == 0) {
              Node* cell = alloc_node(rt, alloc);
              cell->init_leaf(ccube, frontier[f].node, clevel, 0, o);
              cell->to_cell();
              rt.write(cell, 64);
              frontier[f].node->set_child(o, cell);
              rt.write(&frontier[f].node->child[o], sizeof(Node*));
            }
            next.push_back(Entry{nullptr, ccube, clevel});
            next_lists.push_back(std::move(binned[s]));
          } else {
            Subspace sub{frontier[f].node, o, ccube, clevel, total[s],
                         std::move(binned[s])};
            subs.push_back(std::move(sub));
          }
        }
      }
      rt.barrier();  // upper cells materialized by processor 0
      // Resolve the freshly created upper-cell pointers.
      {
        std::size_t k = 0;
        for (std::size_t f = 0; f < frontier.size() && k < next.size(); ++f) {
          for (int o = 0; o < 8; ++o) {
            const std::size_t s = f * 8 + static_cast<std::size_t>(o);
            if (total[s] > threshold && frontier[f].level + 1 < kMaxUpperLevels &&
                total[s] != 0) {
              rt.read(&frontier[f].node->child[o], sizeof(Node*));
              next[k].node = frontier[f].node->get_child(o);
              PTB_CHECK(next[k].node != nullptr);
              ++k;
            }
          }
        }
      }
      frontier = std::move(next);
      lists = std::move(next_lists);
    }

    // --- assign subspaces to processors: greedy LPT on body counts ---
    PTB_CHECK_MSG(subs.size() <= kMaxSubspaces, "too many SPACE subspaces");
    std::vector<int> owner(subs.size(), 0);
    {
      std::vector<std::size_t> order(subs.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (subs[a].total != subs[b].total) return subs[a].total > subs[b].total;
        return a < b;
      });
      std::vector<std::int64_t> load(static_cast<std::size_t>(np), 0);
      for (std::size_t i : order) {
        int best = 0;
        for (int q = 1; q < np; ++q)
          if (load[static_cast<std::size_t>(q)] < load[static_cast<std::size_t>(best)])
            best = q;
        owner[i] = best;
        load[static_cast<std::size_t>(best)] += subs[i].total;
      }
      rt.compute(static_cast<double>(subs.size()) * 4.0);
    }

    // --- publish my per-subspace body lists through the shared buffers ---
    {
      std::int32_t* buf = bodybuf_.data() + pi * static_cast<std::size_t>(st.cfg.n);
      std::int32_t cursor = 0;
      for (std::size_t i = 0; i < subs.size(); ++i) {
        const auto& mine = subs[i].mine;
        sub_start_[i * static_cast<std::size_t>(np) + pi] = cursor;
        sub_len_[i * static_cast<std::size_t>(np) + pi] =
            static_cast<std::int32_t>(mine.size());
        rt.write(&sub_start_[i * static_cast<std::size_t>(np) + pi], 4);
        rt.write(&sub_len_[i * static_cast<std::size_t>(np) + pi], 4);
        for (std::int32_t bi : mine) buf[cursor++] = bi;
        if (!mine.empty())
          rt.write(buf + cursor - static_cast<std::int32_t>(mine.size()),
                   mine.size() * sizeof(std::int32_t));
      }
    }
    rt.barrier();

    // --- build my subspaces' subtrees privately and attach without locks ---
    const InsertEnv env{&st.cfg, st.bodies.data(), &st, st.tree.body_leaf.get(), false};
    for (std::size_t i = 0; i < subs.size(); ++i) {
      if (owner[i] != p) continue;
      const Subspace& s = subs[i];
      Node* subroot = alloc_node(rt, alloc);
      subroot->init_leaf(s.cube, s.parent, s.level, p, s.octant);
      rt.write(subroot, 64);
      for (int q = 0; q < np; ++q) {
        const std::size_t slot = i * static_cast<std::size_t>(np) + static_cast<std::size_t>(q);
        rt.read(&sub_start_[slot], 4);
        rt.read(&sub_len_[slot], 4);
        const std::int32_t start = sub_start_[slot];
        const std::int32_t len = sub_len_[slot];
        if (len == 0) continue;
        const std::int32_t* src =
            bodybuf_.data() + static_cast<std::size_t>(q) * static_cast<std::size_t>(st.cfg.n) +
            static_cast<std::size_t>(start);
        rt.read(src, static_cast<std::size_t>(len) * sizeof(std::int32_t));
        for (std::int32_t k = 0; k < len; ++k) {
          const std::int32_t bi = src[k];
          // Bodies in my subspace generally belong to OTHER processors'
          // partitions: this read is SPACE's locality cost.
          rt.read(st.body_charge(bi), sizeof(Vec3));
          private_insert(rt, env, alloc, subroot, bi);
        }
      }
      if (s.parent == nullptr) {
        // Whole space in one subspace: the subtree IS the tree.
        st.tree.root = subroot;
        st.tree.root_cube = rc;
        rt.write(&st.tree.root, sizeof(Node*) + sizeof(Cube));
      } else {
        s.parent->set_child(s.octant, subroot);
        rt.write(&s.parent->child[s.octant], sizeof(Node*));
      }
    }
  }

  std::vector<NodePool>& pools() { return st_->storage.per_proc; }

 private:
  ProcAlloc make_alloc(int p) {
    ProcAlloc a;
    a.proc = p;
    a.pool = &st_->storage.per_proc[static_cast<std::size_t>(p)];
    a.created = &st_->tree.created[static_cast<std::size_t>(p)];
    return a;
  }

  AppState* st_;
  AlignedVec<std::int64_t> counts_;
  AlignedVec<std::int32_t> bodybuf_;
  AlignedVec<std::int32_t> sub_start_;
  AlignedVec<std::int32_t> sub_len_;
};

}  // namespace ptb
