// ORIG (paper §2.1) — the SPLASH BARNES tree build.
//
// Every cell lives in ONE contiguous shared array; a processor grabs the next
// free index with a shared fetch&add counter. Each processor also mirrors the
// cells assigned to it into a per-processor slice of a shared pointer array
// and bumps its slot in a shared count array. Processors concurrently load
// their own particles (the previous step's force-calculation assignment) into
// the single shared tree, locking any cell/leaf they modify.
//
// On CC-NUMA and especially on SVM platforms this is the pathological case:
// interleaved allocation scatters a processor's cells across remote homes and
// packs unrelated processors' cells into the same lines/pages (false
// sharing), and the shared counter is a global serialization point.
#pragma once

#include <vector>

#include "mem/region_table.hpp"
#include "treebuild/builder_common.hpp"

namespace ptb {

class OrigBuilder {
 public:
  static constexpr Algorithm kAlgorithm = Algorithm::kOrig;

  explicit OrigBuilder(AppState& st) : st_(&st) {
    const std::size_t cap = global_pool_capacity(st.cfg.n);
    st.storage.global.init(cap);
    slice_cap_ = cap * 3 / static_cast<std::size_t>(st.nprocs) + 4096;
    ptr_array_.assign(slice_cap_ * static_cast<std::size_t>(st.nprocs), nullptr);
    counts_.assign(static_cast<std::size_t>(st.nprocs), 0);
  }

  template <class Ctx>
  void register_regions(Ctx& ctx) {
    NodePool& pool = st_->storage.global;
    ctx.register_region(pool.base(), pool.size_bytes(), HomePolicy::kInterleavedBlock, 0,
                        "orig.cells");
    ctx.register_region(ptr_array_.data(), ptr_array_.size() * sizeof(Node*),
                        HomePolicy::kProcStriped, 0, "orig.cellptrs");
    // The per-processor counters sit adjacently in one shared array — the
    // false-sharing hot spot the paper's §2.2 calls out.
    ctx.register_region(counts_.data(), counts_.size() * sizeof(std::int64_t),
                        HomePolicy::kFixed, 0, "orig.counts");
  }

  void reset() {}

  template <class RT>
  void build(RT& rt) {
    AppState& st = *st_;
    const int p = rt.self();
    const auto pi = static_cast<std::size_t>(p);

    const Cube rc = reduce_root_cube(rt, st);

    // Fresh tree: everyone drops bookkeeping, then processor 0 resets the
    // shared pool and creates the root.
    st.tree.created[pi].clear();
    counts_[pi] = 0;
    rt.write(&counts_[pi], sizeof(std::int64_t));
    rt.barrier();

    ProcAlloc alloc = make_alloc(p);
    Node* root = nullptr;
    if (p == 0) {
      pool().reset();
      root = alloc_node(rt, alloc);
      root->init_leaf(rc, nullptr, 0, 0);
      rt.write(root, 64);
    }
    root = publish_root(rt, st, rc, root);

    InsertEnv env{&st.cfg, st.bodies.data(), &st, st.tree.body_leaf.get(), false};
    for (std::int32_t bi : st.partition[pi]) {
      rt.read(st.body_charge(bi), sizeof(Vec3));
      shared_insert(rt, env, alloc, root, bi);
    }
  }

  NodePool& pool() { return st_->storage.global; }

 private:
  ProcAlloc make_alloc(int p) {
    ProcAlloc a;
    a.proc = p;
    a.pool = &st_->storage.global;
    a.shared_counter = &st_->storage.global.counter();
    a.ptr_slice = ptr_array_.data() + static_cast<std::size_t>(p) * slice_cap_;
    a.ptr_slice_cap = slice_cap_;
    a.shared_count = &counts_[static_cast<std::size_t>(p)];
    a.created = &st_->tree.created[static_cast<std::size_t>(p)];
    return a;
  }

  AppState* st_;
  AlignedVec<Node*> ptr_array_;  // nprocs slices of slice_cap_ each
  std::size_t slice_cap_ = 0;
  AlignedVec<std::int64_t> counts_;
};

}  // namespace ptb
