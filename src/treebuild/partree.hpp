// PARTREE (paper §2.4) — per-processor local trees merged into the global
// tree.
//
// Each processor first builds a private tree over its own particles with NO
// synchronization at all (the local cubes are precomputed to match the global
// root, so corresponding cells in any two trees represent identical
// subspaces). The local trees are then merged: the work unit becomes a cell
// or a whole subtree instead of a particle, which slashes the number of
// global lock acquisitions at a small cost in redundant work.
#pragma once

#include <vector>

#include "mem/region_table.hpp"
#include "treebuild/builder_common.hpp"

namespace ptb {

class PartreeBuilder {
 public:
  static constexpr Algorithm kAlgorithm = Algorithm::kPartree;

  explicit PartreeBuilder(AppState& st) : st_(&st) {
    for (auto& pool : st.storage.per_proc)
      pool.init(proc_pool_capacity(st.cfg.n, st.nprocs));
  }

  template <class Ctx>
  void register_regions(Ctx& ctx) {
    for (int p = 0; p < st_->nprocs; ++p) {
      auto& pool = st_->storage.per_proc[static_cast<std::size_t>(p)];
      ctx.register_region(pool.base(), pool.size_bytes(), HomePolicy::kFixed, p,
                          "partree.cells.p" + std::to_string(p));
    }
  }

  void reset() {}

  template <class RT>
  void build(RT& rt) {
    AppState& st = *st_;
    const int p = rt.self();
    const auto pi = static_cast<std::size_t>(p);

    const Cube rc = reduce_root_cube(rt, st);
    st.tree.created[pi].clear();
    rt.barrier();

    ProcAlloc alloc = make_alloc(p);
    Node* groot = nullptr;
    if (p == 0) {
      for (auto& pool : st_->storage.per_proc) pool.reset();
      groot = alloc_node(rt, alloc);
      groot->init_leaf(rc, nullptr, 0, 0);
      groot->to_cell();  // the global root starts as an empty cell to merge into
      rt.write(groot, 64);
    }
    groot = publish_root(rt, st, rc, groot);

    // Phase 1: private local tree (no locks, no communication).
    const InsertEnv env{&st.cfg, st.bodies.data(), &st, st.tree.body_leaf.get(), false};
    Node* lroot = alloc_node(rt, alloc);
    lroot->init_leaf(rc, nullptr, 0, p);
    rt.write(lroot, 64);
    for (std::int32_t bi : st.partition[pi]) {
      rt.read(st.body_charge(bi), sizeof(Vec3));
      private_insert(rt, env, alloc, lroot, bi);
    }

    // Phase 2: merge the local tree into the global tree.
    if (lroot->is_leaf(std::memory_order_relaxed)) {
      // Few bodies: fall back to per-body insertion.
      for (int i = 0; i < lroot->nbodies; ++i)
        shared_insert(rt, env, alloc, groot, lroot->bodies[i]);
    } else {
      merge_node(rt, env, alloc, groot, lroot);
    }
    free_node(alloc, lroot);
  }

  std::vector<NodePool>& pools() { return st_->storage.per_proc; }

 private:
  ProcAlloc make_alloc(int p) {
    ProcAlloc a;
    a.proc = p;
    a.pool = &st_->storage.per_proc[static_cast<std::size_t>(p)];
    a.created = &st_->tree.created[static_cast<std::size_t>(p)];
    return a;
  }

  /// Merges local cell `l` into global cell `g` (same cube). `l` itself is
  /// not freed here — the caller disposes of it after its children have been
  /// grafted or dissolved.
  template <class RT>
  void merge_node(RT& rt, const InsertEnv& env, ProcAlloc& alloc, Node* g, Node* l) {
    for (int o = 0; o < 8; ++o) {
      Node* lc = l->get_child(o, std::memory_order_relaxed);
      if (lc == nullptr) continue;
      merge_child(rt, env, alloc, g, o, lc);
    }
  }

  template <class RT>
  void merge_child(RT& rt, const InsertEnv& env, ProcAlloc& alloc, Node* g, int o,
                   Node* lc) {
    for (;;) {
      rt.compute(work::kDescendStep);
      Node* gc = rt.ordered_load(g->child[o], &g->child[o], sizeof(Node*));
      if (gc == nullptr) {
        const void* glk = env.st->node_lock(g);
        detail::maybe_lock(rt, *env.cfg, glk);
        gc = g->get_child(o, std::memory_order_relaxed);  // safe: lock held
        if (gc == nullptr) {
          // Graft the entire local subtree: one lock for a whole subtree.
          lc->parent = g;
          rt.write(&lc->parent, sizeof(Node*));
          rt.ordered_store(g->child[o], lc, &g->child[o], sizeof(Node*));
          detail::maybe_unlock(rt, *env.cfg, glk);
          return;
        }
        detail::maybe_unlock(rt, *env.cfg, glk);
        continue;  // slot filled under us; re-examine
      }
      const NodeKind gc_kind = rt.ordered_load(gc->kind, gc, 48);
      if (gc_kind == NodeKind::kCell) {
        if (lc->is_cell(std::memory_order_relaxed)) {
          merge_node(rt, env, alloc, gc, lc);
        } else {
          for (int i = 0; i < lc->nbodies; ++i)
            shared_insert(rt, env, alloc, gc, lc->bodies[i]);
        }
        free_node(alloc, lc);
        return;
      }
      // gc read as a leaf: confirm under its lock.
      const void* lk = env.st->node_lock(gc);
      detail::maybe_lock(rt, *env.cfg, lk);
      if (gc->is_cell(std::memory_order_relaxed)) {
        detail::maybe_unlock(rt, *env.cfg, lk);
        continue;
      }
      if (lc->is_cell(std::memory_order_relaxed) ||
          (gc->nbodies + lc->nbodies > env.cfg->leaf_cap &&
           gc->level < env.cfg->max_level)) {
        // Push gc's occupants one level down, making gc a cell; then the
        // cell-side paths above apply.
        detail::subdivide_leaf(rt, env, alloc, gc);
        detail::maybe_unlock(rt, *env.cfg, lk);
        continue;
      }
      // Both leaves and they fit (or we're at max depth): combine.
      PTB_CHECK_MSG(gc->nbodies + lc->nbodies <= kLeafCapacity,
                    "too many coincident bodies for kLeafCapacity at max_level");
      for (int i = 0; i < lc->nbodies; ++i) {
        gc->bodies[gc->nbodies++] = lc->bodies[i];
        detail::note_leaf(rt, env, lc->bodies[i], gc);
      }
      rt.write(&gc->bodies[0], 32);
      rt.compute(work::kInsertBody * lc->nbodies);
      detail::maybe_unlock(rt, *env.cfg, lk);
      free_node(alloc, lc);
      return;
    }
  }

  AppState* st_;
};

}  // namespace ptb
