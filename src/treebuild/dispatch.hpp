// The one algorithm -> builder dispatch.
//
// Every driver, bench and matrix test used to keep its own six-way switch
// (and its own help-string list of names); each new algorithm meant touching
// all of them. with_builder is the single switch: it constructs the builder
// for `alg` over `st` and passes it to `f` as `auto&`. The exhaustive switch
// (no default) keeps -Werror pointing at this ONE site when the enum grows.
#pragma once

#include "support/check.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/partree.hpp"
#include "treebuild/radix.hpp"
#include "treebuild/space.hpp"
#include "treebuild/types.hpp"
#include "treebuild/update.hpp"

namespace ptb {

template <class F>
void with_builder(Algorithm alg, AppState& st, F&& f) {
  switch (alg) {
    case Algorithm::kOrig: {
      OrigBuilder b(st);
      f(b);
      return;
    }
    case Algorithm::kLocal: {
      LocalBuilder b(st);
      f(b);
      return;
    }
    case Algorithm::kUpdate: {
      UpdateBuilder b(st);
      f(b);
      return;
    }
    case Algorithm::kPartree: {
      PartreeBuilder b(st);
      f(b);
      return;
    }
    case Algorithm::kSpace: {
      SpaceBuilder b(st);
      f(b);
      return;
    }
    case Algorithm::kRadix: {
      RadixBuilder b(st);
      f(b);
      return;
    }
  }
  PTB_CHECK_MSG(false, "unknown algorithm");
}

}  // namespace ptb
