// Shared building blocks of the tree builders: the parallel root-cube
// reduction, the lock-protected insertion protocol used by ORIG/LOCAL/UPDATE
// (and PARTREE's per-body merge fallback), and the lock-free single-owner
// insertion used for private subtrees (PARTREE local trees, SPACE subspaces).
#pragma once

#include "bh/body.hpp"
#include "bh/config.hpp"
#include "bh/node.hpp"
#include "harness/state.hpp"
#include "treebuild/alloc.hpp"

namespace ptb {

/// Computes the root cell dimensions from current body positions with a
/// per-processor min/max reduction through the shared reduce slots (paper
/// §2.1: "First, the dimensions of the root cell of the tree are determined
/// from the current positions of the particles"). All processors return the
/// identical cube; includes one barrier.
template <class RT>
Cube reduce_root_cube(RT& rt, AppState& st) {
  const int p = rt.self();
  const auto pi = static_cast<std::size_t>(p);
  ReduceSlot& slot = st.tree.reduce[pi];
  Vec3 lo{1e300, 1e300, 1e300}, hi{-1e300, -1e300, -1e300};
  for (std::int32_t bi : st.partition[pi]) {
    const Body& b = st.bodies[static_cast<std::size_t>(bi)];
    rt.read(st.body_charge(bi), sizeof(Vec3));
    rt.compute(3.0);
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], b.pos[d]);
      hi[d] = std::max(hi[d], b.pos[d]);
    }
  }
  for (int d = 0; d < 3; ++d) {
    slot.min_v[d] = lo[d];
    slot.max_v[d] = hi[d];
  }
  rt.write(&slot, sizeof(ReduceSlot));
  rt.barrier();
  Vec3 glo = lo, ghi = hi;
  for (int q = 0; q < rt.nprocs(); ++q) {
    const ReduceSlot& s = st.tree.reduce[static_cast<std::size_t>(q)];
    rt.read(&s, sizeof(ReduceSlot));
    rt.compute(2.0);
    for (int d = 0; d < 3; ++d) {
      glo[d] = std::min(glo[d], s.min_v[d]);
      ghi[d] = std::max(ghi[d], s.max_v[d]);
    }
  }
  return cube_from_minmax(glo, ghi);
}

struct InsertEnv {
  const BHConfig* cfg = nullptr;
  const Body* bodies = nullptr;
  /// For body-data charge addresses (migration shadow arena).
  const AppState* st = nullptr;
  /// body index -> current leaf. Maintained for every builder (tests rely on
  /// it); only UPDATE pays for it (`charge_leaf_map`), since only UPDATE
  /// actually needs the map as a shared data structure.
  std::atomic<Node*>* body_leaf = nullptr;
  bool charge_leaf_map = false;
};

namespace detail {

/// Lock/unlock that honour BHConfig::elide_locks — the race-detector
/// fault-injection knob that turns the builders' synchronized mutations into
/// genuine data races (see bh/config.hpp). Eliding can lose bodies when a
/// subdivide and an append interleave, so only detector tests use it.
template <class RT>
void maybe_lock(RT& rt, const BHConfig& cfg, const void* lk) {
  if (!cfg.elide_locks) rt.lock(lk);
}
template <class RT>
void maybe_unlock(RT& rt, const BHConfig& cfg, const void* lk) {
  if (!cfg.elide_locks) rt.unlock(lk);
}

template <class RT>
void note_leaf(RT& rt, const InsertEnv& env, std::int32_t bi, Node* leaf) {
  if (env.body_leaf == nullptr) return;
  std::atomic<Node*>& slot = env.body_leaf[static_cast<std::size_t>(bi)];
  if (env.charge_leaf_map) {
    // UPDATE reads this map lock-free while relocating; go through the
    // ordered store so readers see a virtual-time-consistent value.
    rt.ordered_store(slot, leaf, &slot, sizeof(Node*));
  } else {
    slot.store(leaf, std::memory_order_release);
  }
}

/// Creates a leaf child of `cell` in octant `o` seeded with body `bi`.
/// Caller holds cell's lock (shared builders) or owns the subtree (private).
/// `publish_map` defers the body->leaf map update to the caller (see
/// subdivide_leaf); everywhere else the new leaf's writes are complete here,
/// so publishing immediately is safe.
template <class RT>
Node* make_seeded_leaf(RT& rt, const InsertEnv& env, ProcAlloc& alloc, Node* cell, int o,
                       std::int32_t bi, bool publish_map = true) {
  Node* leaf = alloc_node(rt, alloc);
  leaf->init_leaf(cell->cube.child(o), cell, cell->level + 1, alloc.proc, o);
  leaf->bodies[0] = bi;
  leaf->nbodies = 1;
  rt.write(leaf, 64);  // coarse: the new node's header lands in our cache
  rt.compute(work::kInsertBody);
  if (publish_map) note_leaf(rt, env, bi, leaf);
  return leaf;
}

/// Splits a full leaf in place. Caller holds the leaf's lock (or owns it).
/// New children are invisible to lock-free descents until the kind flip
/// publishes — but the body->leaf map is a second publication channel:
/// UPDATE's relocation reaches a new child through its map entry with only
/// the *child's* lock, while this subdivide keeps writing the child's bodies
/// under the *parent's* lock. So all map entries are published only after
/// the last redistribution write (the race detector caught the per-body
/// ordering as a write-write race on the children's bodies arrays).
template <class RT>
void subdivide_leaf(RT& rt, const InsertEnv& env, ProcAlloc& alloc, Node* node) {
  rt.compute(work::kSubdivide);
  std::int32_t prev[kLeafCapacity];
  Node* dest[kLeafCapacity];
  const int nprev = node->nbodies;
  for (int i = 0; i < nprev; ++i) prev[i] = node->bodies[i];
  node->nbodies = 0;
  for (int i = 0; i < nprev; ++i) {
    const std::int32_t bj = prev[i];
    const Vec3& q = env.bodies[static_cast<std::size_t>(bj)].pos;
    rt.read(env.st->body_charge(bj), sizeof(Vec3));
    const int o = node->cube.octant_of(q);
    Node* slot = node->get_child(o, std::memory_order_relaxed);
    if (slot == nullptr) {
      slot = make_seeded_leaf(rt, env, alloc, node, o, bj, /*publish_map=*/false);
      node->set_child(o, slot, std::memory_order_relaxed);
      rt.write(&node->child[o], sizeof(Node*));
    } else {
      slot->bodies[slot->nbodies++] = bj;
      rt.write(&slot->bodies[0], 16);
      rt.compute(work::kInsertBody);
    }
    dest[i] = slot;
  }
  for (int i = 0; i < nprev; ++i) note_leaf(rt, env, prev[i], dest[i]);
  // Publish: the kind flip is what makes the new children visible to
  // lock-free descents, so it goes through the ordered store.
  node->nbodies = 0;
  rt.ordered_store(node->kind, NodeKind::kCell, &node->kind, 8);
}

}  // namespace detail

/// Inserts one body into a tree that other processors are concurrently
/// building, locking cells/leaves as they are modified (paper §2.1: "when a
/// particle is actually inserted or a cell actually subdivided, a lock is
/// required"). Descent itself is lock-free.
template <class RT>
void shared_insert(RT& rt, const InsertEnv& env, ProcAlloc& alloc, Node* start,
                   std::int32_t bi) {
  const Vec3 p = env.bodies[static_cast<std::size_t>(bi)].pos;
  Node* node = start;
  for (;;) {
    PTB_DCHECK(node->cube.contains(p));
    rt.compute(work::kDescendStep);
    // Lock-free descent: kind and child slots are racy, so they are read
    // through the runtime's ordered loads (geometry is immutable once a node
    // is published and is read raw; its traffic is charged with the kind).
    const NodeKind kind = rt.ordered_load(node->kind, node, 48);
    if (kind == NodeKind::kCell) {
      const int o = node->cube.octant_of(p);
      Node* next = rt.ordered_load(node->child[o], &node->child[o], sizeof(Node*));
      if (next == nullptr) {
        const void* lk = env.st->node_lock(node);
        detail::maybe_lock(rt, *env.cfg, lk);
        next = node->get_child(o, std::memory_order_relaxed);  // safe: lock held
        if (next == nullptr) {
          Node* leaf = detail::make_seeded_leaf(rt, env, alloc, node, o, bi);
          rt.ordered_store(node->child[o], leaf, &node->child[o], sizeof(Node*));
          detail::maybe_unlock(rt, *env.cfg, lk);
          return;
        }
        detail::maybe_unlock(rt, *env.cfg, lk);  // someone else filled the slot
      }
      node = next;
      continue;
    }
    // Leaf (as of the ordered read): take its lock and re-validate. Under
    // the lock, raw accesses are race-free and deterministic (kind only
    // changes while holding this lock).
    const void* lk = env.st->node_lock(node);
    detail::maybe_lock(rt, *env.cfg, lk);
    if (node->is_cell(std::memory_order_relaxed)) {
      detail::maybe_unlock(rt, *env.cfg, lk);
      continue;  // converted under us; re-examine as a cell
    }
    PTB_DCHECK(!node->dead);
    rt.read(&node->nbodies, 8);
    if (node->nbodies < env.cfg->leaf_cap || node->level >= env.cfg->max_level) {
      PTB_CHECK_MSG(node->nbodies < kLeafCapacity,
                    "too many coincident bodies for kLeafCapacity at max_level");
      node->bodies[node->nbodies++] = bi;
      rt.write(&node->bodies[0], 16);
      rt.compute(work::kInsertBody);
      detail::note_leaf(rt, env, bi, node);
      detail::maybe_unlock(rt, *env.cfg, lk);
      return;
    }
    detail::subdivide_leaf(rt, env, alloc, node);
    detail::maybe_unlock(rt, *env.cfg, lk);
    // Loop: node is now a cell; descend with bi.
  }
}

/// Single-owner insertion into a private (sub)tree: identical structure, no
/// locks (paper §2.4: "the building of the local trees does not require any
/// communication or synchronization").
template <class RT>
void private_insert(RT& rt, const InsertEnv& env, ProcAlloc& alloc, Node* start,
                    std::int32_t bi) {
  const Vec3 p = env.bodies[static_cast<std::size_t>(bi)].pos;
  Node* node = start;
  for (;;) {
    PTB_DCHECK(node->cube.contains(p));
    rt.compute(work::kDescendStep);
    rt.read(node, 48);
    if (node->is_cell(std::memory_order_relaxed)) {
      const int o = node->cube.octant_of(p);
      Node* next = node->get_child(o, std::memory_order_relaxed);
      if (next == nullptr) {
        next = detail::make_seeded_leaf(rt, env, alloc, node, o, bi);
        node->set_child(o, next, std::memory_order_relaxed);
        rt.write(&node->child[o], sizeof(Node*));
        return;
      }
      node = next;
      continue;
    }
    if (node->nbodies < env.cfg->leaf_cap || node->level >= env.cfg->max_level) {
      PTB_CHECK_MSG(node->nbodies < kLeafCapacity,
                    "too many coincident bodies for kLeafCapacity at max_level");
      node->bodies[node->nbodies++] = bi;
      rt.write(&node->bodies[0], 16);
      rt.compute(work::kInsertBody);
      detail::note_leaf(rt, env, bi, node);
      return;
    }
    detail::subdivide_leaf(rt, env, alloc, node);
  }
}

}  // namespace ptb
