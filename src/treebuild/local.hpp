// LOCAL (paper §2.2) — the SPLASH-2 BARNES tree build.
//
// Same concurrent locked insertion into one shared tree as ORIG, but each
// processor allocates from its OWN contiguous cell/leaf arrays (so its nodes
// land in local memory and don't share lines/pages with other processors'
// nodes) and keeps its frequently-used counters in private memory. The paper
// shows these data-structure changes alone are decisive on CC-NUMA machines.
#pragma once

#include <vector>

#include "mem/region_table.hpp"
#include "treebuild/builder_common.hpp"

namespace ptb {

class LocalBuilder {
 public:
  static constexpr Algorithm kAlgorithm = Algorithm::kLocal;

  explicit LocalBuilder(AppState& st) : st_(&st) {
    for (auto& pool : st.storage.per_proc)
      pool.init(proc_pool_capacity(st.cfg.n, st.nprocs));
  }

  template <class Ctx>
  void register_regions(Ctx& ctx) {
    for (int p = 0; p < st_->nprocs; ++p) {
      auto& pool = st_->storage.per_proc[static_cast<std::size_t>(p)];
      ctx.register_region(pool.base(), pool.size_bytes(), HomePolicy::kFixed, p,
                          "local.cells.p" + std::to_string(p));
    }
  }

  void reset() {}

  template <class RT>
  void build(RT& rt) {
    AppState& st = *st_;
    const int p = rt.self();
    const auto pi = static_cast<std::size_t>(p);

    const Cube rc = reduce_root_cube(rt, st);
    st.tree.created[pi].clear();
    rt.barrier();

    ProcAlloc alloc = make_alloc(p);
    Node* root = nullptr;
    if (p == 0) {
      for (auto& pool : st_->storage.per_proc) pool.reset();
      root = alloc_node(rt, alloc);
      root->init_leaf(rc, nullptr, 0, 0);
      rt.write(root, 64);
    }
    root = publish_root(rt, st, rc, root);

    InsertEnv env{&st.cfg, st.bodies.data(), &st, st.tree.body_leaf.get(), false};
    for (std::int32_t bi : st.partition[pi]) {
      rt.read(st.body_charge(bi), sizeof(Vec3));
      shared_insert(rt, env, alloc, root, bi);
    }
  }

  std::vector<NodePool>& pools() { return st_->storage.per_proc; }

 private:
  ProcAlloc make_alloc(int p) {
    ProcAlloc a;
    a.proc = p;
    a.pool = &st_->storage.per_proc[static_cast<std::size_t>(p)];
    a.created = &st_->tree.created[static_cast<std::size_t>(p)];
    return a;
  }

  AppState* st_;
};

}  // namespace ptb
