// Span-aware annotation helpers: batching contiguous body-data charges.
//
// The shadow arena (AppState::body_arena) keeps each processor's bodies in
// consecutive slots, so the body lists the read-only phases walk — a leaf's
// claimed bodies, an ORB subset — are mostly runs of arena-adjacent
// addresses. read_bodies_spanned detects those runs and charges each with
// ONE rt.read_shared_span call instead of a read_shared per body: one
// dispatch, one region resolution and one observer snapshot per run.
//
// Accounting contract: the charge sequence is identical to the per-body
// read_shared loop (each span element is exactly one body's charge address),
// and the per-body host work runs after its run's charge instead of
// interleaved with it — legal in a read_shared-only stretch because
// unordered charges and compute() only add to the per-processor pending
// bucket and never touch the clock (docs/PERF.md). Callers must NOT issue
// ordered operations from per_body: those fold the pending bucket, and
// reordering around a fold changes virtual times.
#pragma once

#include <cstddef>
#include <cstdint>

#include "harness/state.hpp"

namespace ptb::annotate {

/// Charges `bytes` of body data for each of ids[0..count), in order,
/// skipping any id equal to `skip` (pass -1 to keep all), then calls
/// per_body(id) for each charged body. Maximal runs of arena-consecutive
/// bodies become one read_shared_span; bodies whose slots are not
/// consecutive (migration clamping, list order) fall out as runs of one,
/// i.e. plain read_shared charges.
template <class RT, class F>
void read_bodies_spanned(RT& rt, const AppState& st, const std::int32_t* ids,
                         std::size_t count, std::size_t bytes, std::int32_t skip,
                         F&& per_body) {
  std::size_t i = 0;
  while (i < count) {
    if (ids[i] == skip) {
      ++i;
      continue;
    }
    const std::int32_t slot = st.body_slot[static_cast<std::size_t>(ids[i])];
    std::size_t j = i + 1;
    while (j < count && ids[j] != skip &&
           st.body_slot[static_cast<std::size_t>(ids[j])] ==
               slot + static_cast<std::int32_t>(j - i))
      ++j;
    if (j - i == 1)  // scattered slot: most runs; skip the span wrapper
      rt.read_shared(st.body_charge(ids[i]), bytes);
    else
      rt.read_shared_span(st.body_charge(ids[i]), bytes, sizeof(Body), j - i);
    for (std::size_t k = i; k < j; ++k) per_body(ids[k]);
    i = j;
  }
}

}  // namespace ptb::annotate
