// Span-aware annotation helpers: batching contiguous body-data charges.
//
// The shadow arena (AppState::body_arena) keeps each processor's bodies in
// consecutive slots, so the body lists the read-only phases walk — a leaf's
// claimed bodies, an ORB subset — are mostly runs of arena-adjacent
// addresses. read_bodies_spanned detects those runs and charges each with
// ONE rt.read_shared_span call instead of a read_shared per body: one
// dispatch, one region resolution and one observer snapshot per run.
//
// Accounting contract: the charge sequence is identical to the per-body
// read_shared loop (each span element is exactly one body's charge address),
// and the per-body host work runs after its run's charge instead of
// interleaved with it — legal in a read_shared-only stretch because
// unordered charges and compute() only add to the per-processor pending
// bucket and never touch the clock (docs/PERF.md). Callers must NOT issue
// ordered operations from per_body: those fold the pending bucket, and
// reordering around a fold changes virtual times.
//
// Body-data *views* (DESIGN.md decision 14): the run detection and charge
// addressing are factored out into a view concept so the same coalescing
// serves both layouts the phases read:
//   * CanonicalBodyView — ids are body indices, charged at the migration
//     shadow arena via AppState::body_slot (the original behaviour);
//   * PermutationView — ids are *positions in a sort-permuted SoA array*
//     (RADIX's Morton-sorted keys/positions), charged at base + pos*stride.
//     Positions are their own slots, so a contiguous id run is by
//     construction one span — the whole point of sorting.
// A view provides slot(id) (run detection), addr(id) (charge address) and
// stride() (element distance inside a span).
#pragma once

#include <cstddef>
#include <cstdint>

#include "harness/state.hpp"

namespace ptb::annotate {

/// The default view: ids are body indices; charges land at the body's slot
/// in the migration shadow arena.
struct CanonicalBodyView {
  const AppState* st = nullptr;

  std::int32_t slot(std::int32_t id) const {
    return st->body_slot[static_cast<std::size_t>(id)];
  }
  const void* addr(std::int32_t id) const { return st->body_charge(id); }
  std::size_t stride() const { return sizeof(Body); }
};

/// View over a sort-permuted SoA array: ids are element positions, element i
/// is charged at base + i*stride. Used by RADIX for its Morton-sorted
/// position/key arrays, where a segment is one contiguous run by definition.
struct PermutationView {
  const void* base = nullptr;
  std::size_t stride_bytes = 0;

  std::int32_t slot(std::int32_t pos) const { return pos; }
  const void* addr(std::int32_t pos) const {
    return static_cast<const char*>(base) +
           static_cast<std::size_t>(pos) * stride_bytes;
  }
  std::size_t stride() const { return stride_bytes; }
};

/// Charges `bytes` of body data for each of ids[0..count), in order,
/// skipping any id equal to `skip` (pass -1 to keep all), then calls
/// per_body(id) for each charged body. Maximal runs of view-consecutive
/// ids become one read_shared_span; ids whose slots are not consecutive
/// (migration clamping, list order) fall out as runs of one, i.e. plain
/// read_shared charges.
template <class RT, class View, class F>
void read_view_spanned(RT& rt, const View& v, const std::int32_t* ids,
                       std::size_t count, std::size_t bytes, std::int32_t skip,
                       F&& per_body) {
  std::size_t i = 0;
  while (i < count) {
    if (ids[i] == skip) {
      ++i;
      continue;
    }
    const std::int32_t slot = v.slot(ids[i]);
    std::size_t j = i + 1;
    while (j < count && ids[j] != skip &&
           v.slot(ids[j]) == slot + static_cast<std::int32_t>(j - i))
      ++j;
    if (j - i == 1)  // scattered slot: most runs; skip the span wrapper
      rt.read_shared(v.addr(ids[i]), bytes);
    else
      rt.read_shared_span(v.addr(ids[i]), bytes, v.stride(), j - i);
    for (std::size_t k = i; k < j; ++k) per_body(ids[k]);
    i = j;
  }
}

/// Back-compat entry point: the canonical (shadow-arena) view.
template <class RT, class F>
void read_bodies_spanned(RT& rt, const AppState& st, const std::int32_t* ids,
                         std::size_t count, std::size_t bytes, std::int32_t skip,
                         F&& per_body) {
  read_view_spanned(rt, CanonicalBodyView{&st}, ids, count, bytes, skip,
                    static_cast<F&&>(per_body));
}

}  // namespace ptb::annotate
