// Assembles a prof::Capture into the report-facing Profile: the critical
// path with per-phase/per-object attribution, the per-lock contention table
// with tree-cell names, the depth-bucketed contention table (the paper's
// root-contention claim measured directly), and the what-if predictions.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "prof/critical_path.hpp"
#include "prof/prof.hpp"
#include "prof/whatif.hpp"
#include "support/cell_resolver.hpp"

namespace ptb::prof {

/// The address→cell mapping lives in support/ (shared with sight); the prof
/// API keeps the old name.
using ptb::CellResolver;

/// One sync object's contention totals over the whole run, joined with its
/// share of the critical path.
struct LockRow {
  std::uint32_t obj = 0;
  std::string name;  // "root", "d<depth>.o<octant>", or "other"
  int depth = -1;    // -1 = not a tree cell
  std::uint64_t acquires = 0;
  std::uint64_t contended = 0;
  std::uint64_t wait_ns = 0;
  std::uint64_t cp_edges = 0;  // critical-path handoffs through this object
  std::uint64_t cp_ns = 0;     // path time those handoffs started
};

/// Contention bucketed by tree depth over the measured tree-build phase.
struct DepthRow {
  int depth = -1;  // -1 = addresses outside known cells
  std::uint64_t acquires = 0;
  std::uint64_t contended = 0;
  std::uint64_t lock_wait_ns = 0;
  std::uint64_t remote_misses = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t mem_stall_ns = 0;
};

struct WhatIf {
  Scenario scenario = Scenario::kNone;
  std::uint64_t predicted_ns = 0;
  double speedup = 1.0;  // recorded elapsed / predicted
};

struct Profile {
  bool enabled = false;
  std::uint64_t elapsed_ns = 0;
  std::size_t events = 0;
  CriticalPath cp;
  std::vector<LockRow> locks;    // descending by wait_ns
  std::vector<DepthRow> depth;   // ascending depth, unresolved bucket last
  std::vector<WhatIf> whatifs;
};

struct ProfileOptions {
  /// Latency removed per remote miss under kRemoteLocal (platform remote
  /// minus local miss ns); 0 skips that scenario.
  std::uint64_t remote_extra_ns = 0;
  bool run_whatifs = true;
  /// Per-object rows kept in Profile::locks (all objects feed the depth
  /// table regardless).
  std::size_t max_lock_rows = 16;
};

/// Runs the analyses. Also validates the replay engine: a faithful replay
/// of `cap` must reproduce the recorded elapsed time exactly (checked).
Profile build_profile(const Capture& cap, const CellResolver& cells,
                      const ProfileOptions& opts);

/// Serializes the profile as JSON (consumed by tools/prof_report.py).
void write_profile_json(const Profile& p, std::FILE* f);
std::string profile_json(const Profile& p);

}  // namespace ptb::prof

namespace ptb::trace {
class MetricsRegistry;
}

namespace ptb::prof {
/// Publishes prof.* metrics (critical-path totals, per-depth lock waits,
/// what-if predictions) into the run's registry.
void ingest_profile_metrics(trace::MetricsRegistry& m, const Profile& p);
}  // namespace ptb::prof
