#include "prof/profile.hpp"

#include <algorithm>
#include <cinttypes>
#include <map>

#include "support/check.hpp"
#include "support/provenance.hpp"
#include "trace/metrics.hpp"

namespace ptb::prof {

using ptb::cell_name;

Profile build_profile(const Capture& cap, const CellResolver& cells,
                      const ProfileOptions& opts) {
  Profile p;
  p.enabled = true;
  p.elapsed_ns = cap.elapsed_ns();
  p.events = cap.total_events();
  p.cp = critical_path(cap);

  // Per-object lock totals (whole run) from the event logs.
  std::vector<LockRow> rows(cap.objs.size());
  for (std::size_t o = 0; o < cap.objs.size(); ++o) {
    rows[o].obj = static_cast<std::uint32_t>(o);
    const CellResolver::Cell* c = cells.empty() ? nullptr : cells.resolve(cap.objs[o]);
    rows[o].name = cell_name(c);
    rows[o].depth = c != nullptr ? c->depth : -1;
  }
  std::map<int, DepthRow> depth;
  for (const auto& log : cap.log) {
    for (const Event& e : log) {
      if (e.kind != EvKind::kLock) continue;
      LockRow& r = rows[e.obj];
      r.acquires += 1;
      if (e.waited()) {
        r.contended += 1;
        r.wait_ns += e.t1 - e.t0;
      }
      // The depth table covers the measured tree-build phase, where the
      // cell-address mapping is exact.
      if (e.phase == Phase::kTreeBuild) {
        DepthRow& d = depth[r.depth];
        d.depth = r.depth;
        d.acquires += 1;
        if (e.waited()) {
          d.contended += 1;
          d.lock_wait_ns += e.t1 - e.t0;
        }
      }
    }
  }
  for (const ObjectPath& op : p.cp.by_object) {
    rows[op.obj].cp_edges = op.edges;
    rows[op.obj].cp_ns = op.ns;
  }

  // Tree-build memory charges per 64-byte line, resolved to cells.
  // ptblint: allow(unordered-iter) -- commutative += folds into depth-keyed sums; order never escapes
  for (const auto& [line, ls] : cap.lines) {
    if (ls.tb_stall_ns == 0 && ls.tb_remote == 0 && ls.tb_inval == 0) continue;
    const CellResolver::Cell* c =
        cells.empty() ? nullptr : cells.resolve(reinterpret_cast<const void*>(line << 6));
    int d = c != nullptr ? c->depth : -1;
    DepthRow& row = depth[d];
    row.depth = d;
    row.remote_misses += ls.tb_remote;
    row.invalidations += ls.tb_inval;
    row.mem_stall_ns += ls.tb_stall_ns;
  }

  // Depth rows ascending, the unresolved bucket (-1) last.
  for (const auto& [d, row] : depth) {
    if (d >= 0) p.depth.push_back(row);
  }
  if (auto it = depth.find(-1); it != depth.end()) p.depth.push_back(it->second);

  std::sort(rows.begin(), rows.end(), [](const LockRow& a, const LockRow& b) {
    if (a.wait_ns != b.wait_ns) return a.wait_ns > b.wait_ns;
    if (a.acquires != b.acquires) return a.acquires > b.acquires;
    return a.obj < b.obj;
  });
  // Keep objects that saw lock traffic (fetch&add counters etc. intern ids
  // too but never produce kLock events).
  rows.erase(std::remove_if(rows.begin(), rows.end(),
                            [](const LockRow& r) { return r.acquires == 0; }),
             rows.end());
  if (rows.size() > opts.max_lock_rows) rows.resize(opts.max_lock_rows);
  p.locks = std::move(rows);

  if (opts.run_whatifs) {
    // A faithful replay must land exactly on the recorded elapsed time;
    // every profiled run re-validates the engine before predicting.
    std::uint64_t check = replay(cap, Scenario::kNone);
    PTB_CHECK_MSG(check == p.elapsed_ns,
                  "what-if replay of the unmodified capture diverged from the run");
    std::vector<std::pair<Scenario, std::uint64_t>> scen = {
        {Scenario::kLocksFree, 0},
        {Scenario::kBarriersFree, 0},
        {Scenario::kAtomicsFree, 0},
    };
    if (opts.remote_extra_ns > 0) scen.emplace_back(Scenario::kRemoteLocal, opts.remote_extra_ns);
    for (auto [s, extra] : scen) {
      WhatIf w;
      w.scenario = s;
      w.predicted_ns = replay(cap, s, extra);
      w.speedup = w.predicted_ns > 0
                      ? static_cast<double>(p.elapsed_ns) / static_cast<double>(w.predicted_ns)
                      : 1.0;
      p.whatifs.push_back(w);
    }
  }
  return p;
}

void write_profile_json(const Profile& p, std::FILE* f) {
  std::fprintf(f, "{\n  \"prof\": {\n");
  std::fprintf(f, "    \"provenance\": ");
  support::write_provenance_json(f, nullptr);
  std::fprintf(f, ",\n");
  std::fprintf(f, "    \"elapsed_ns\": %" PRIu64 ",\n", p.elapsed_ns);
  std::fprintf(f, "    \"events\": %zu,\n", p.events);
  std::fprintf(f, "    \"critical_path\": {\n");
  std::fprintf(f, "      \"total_ns\": %" PRIu64 ",\n", p.cp.total_ns);
  std::fprintf(f, "      \"segments\": %zu,\n", p.cp.segments.size());
  std::fprintf(f, "      \"lock_edges\": %" PRIu64 ",\n", p.cp.lock_edges);
  std::fprintf(f, "      \"barrier_edges\": %" PRIu64 ",\n", p.cp.barrier_edges);
  std::fprintf(f, "      \"via_start_ns\": %" PRIu64 ",\n", p.cp.via_start_ns);
  std::fprintf(f, "      \"via_lock_ns\": %" PRIu64 ",\n", p.cp.via_lock_ns);
  std::fprintf(f, "      \"via_barrier_ns\": %" PRIu64 ",\n", p.cp.via_barrier_ns);
  std::fprintf(f, "      \"by_phase\": [");
  for (int i = 0; i < kNumPhases; ++i) {
    auto pi = static_cast<std::size_t>(i);
    std::fprintf(f, "%s\n        {\"phase\": \"%s\", \"ns\": %" PRIu64
                    ", \"via_lock_ns\": %" PRIu64 ", \"via_barrier_ns\": %" PRIu64 "}",
                 i != 0 ? "," : "", phase_name(static_cast<Phase>(i)), p.cp.phase_ns[pi],
                 p.cp.phase_via_lock_ns[pi], p.cp.phase_via_barrier_ns[pi]);
  }
  std::fprintf(f, "\n      ]\n    },\n");
  std::fprintf(f, "    \"locks\": [");
  for (std::size_t i = 0; i < p.locks.size(); ++i) {
    const LockRow& r = p.locks[i];
    std::fprintf(f, "%s\n      {\"name\": \"%s\", \"depth\": %d, \"acquires\": %" PRIu64
                    ", \"contended\": %" PRIu64 ", \"wait_ns\": %" PRIu64
                    ", \"cp_edges\": %" PRIu64 ", \"cp_ns\": %" PRIu64 "}",
                 i != 0 ? "," : "", r.name.c_str(), r.depth, r.acquires, r.contended, r.wait_ns,
                 r.cp_edges, r.cp_ns);
  }
  std::fprintf(f, "\n    ],\n");
  std::fprintf(f, "    \"depth_contention\": [");
  for (std::size_t i = 0; i < p.depth.size(); ++i) {
    const DepthRow& d = p.depth[i];
    std::fprintf(f, "%s\n      {\"depth\": %d, \"acquires\": %" PRIu64 ", \"contended\": %" PRIu64
                    ", \"lock_wait_ns\": %" PRIu64 ", \"remote_misses\": %" PRIu64
                    ", \"invalidations\": %" PRIu64 ", \"mem_stall_ns\": %" PRIu64 "}",
                 i != 0 ? "," : "", d.depth, d.acquires, d.contended, d.lock_wait_ns,
                 d.remote_misses, d.invalidations, d.mem_stall_ns);
  }
  std::fprintf(f, "\n    ],\n");
  std::fprintf(f, "    \"whatif\": [");
  for (std::size_t i = 0; i < p.whatifs.size(); ++i) {
    const WhatIf& w = p.whatifs[i];
    std::fprintf(f, "%s\n      {\"scenario\": \"%s\", \"predicted_ns\": %" PRIu64
                    ", \"speedup\": %.4f}",
                 i != 0 ? "," : "", scenario_name(w.scenario), w.predicted_ns, w.speedup);
  }
  std::fprintf(f, "\n    ]\n  }\n}\n");
}

std::string profile_json(const Profile& p) {
  std::FILE* f = std::tmpfile();
  PTB_CHECK_MSG(f != nullptr, "prof: cannot create temporary file");
  write_profile_json(p, f);
  long size = std::ftell(f);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::rewind(f);
  std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  out.resize(got);
  return out;
}

void ingest_profile_metrics(trace::MetricsRegistry& m, const Profile& p) {
  m.set("prof.elapsed_ns", {}, static_cast<double>(p.elapsed_ns));
  m.set("prof.critical_path_ns", {}, static_cast<double>(p.cp.total_ns));
  m.set("prof.cp_lock_edges", {}, static_cast<double>(p.cp.lock_edges));
  m.set("prof.cp_barrier_edges", {}, static_cast<double>(p.cp.barrier_edges));
  m.set("prof.cp_ns", {{"via", "start"}}, static_cast<double>(p.cp.via_start_ns));
  m.set("prof.cp_ns", {{"via", "lock"}}, static_cast<double>(p.cp.via_lock_ns));
  m.set("prof.cp_ns", {{"via", "barrier"}}, static_cast<double>(p.cp.via_barrier_ns));
  for (int i = 0; i < kNumPhases; ++i) {
    auto pi = static_cast<std::size_t>(i);
    const char* ph = phase_name(static_cast<Phase>(i));
    m.set("prof.cp_phase_ns", {{"phase", ph}}, static_cast<double>(p.cp.phase_ns[pi]));
    m.set("prof.cp_phase_via_lock_ns", {{"phase", ph}},
          static_cast<double>(p.cp.phase_via_lock_ns[pi]));
  }
  for (const DepthRow& d : p.depth) {
    std::string key = d.depth >= 0 ? std::to_string(d.depth) : "other";
    m.set("prof.depth_lock_wait_ns", {{"depth", key}}, static_cast<double>(d.lock_wait_ns));
    m.set("prof.depth_contended", {{"depth", key}}, static_cast<double>(d.contended));
    m.set("prof.depth_remote_misses", {{"depth", key}}, static_cast<double>(d.remote_misses));
  }
  for (const WhatIf& w : p.whatifs) {
    m.set("prof.whatif_ns", {{"scenario", scenario_name(w.scenario)}},
          static_cast<double>(w.predicted_ns));
  }
}

}  // namespace ptb::prof
