// ptb::prof — critical-path & causal "what-if" profiling over the DES.
//
// The simulator observes every dependency edge of the virtual execution:
// which unlock granted which blocked acquire, which barrier arrival released
// which waiters, where every memory charge landed. `prof::Recorder` captures
// that structure while a run executes, and the analyses built on top of the
// capture answer questions the aggregate per-phase statistics cannot:
//
//  * critical path  — the longest chain of *dependent* virtual-time segments
//                     from run start to the last processor's finish, exact by
//                     construction (src/prof/critical_path.hpp);
//  * per-object contention — lock waits keyed by lock object and memory
//                     charges keyed by 64-byte line, resolved back to tree
//                     cells (depth/octant) by the harness
//                     (src/prof/profile.hpp);
//  * causal what-if — re-run the recorded dependency graph with one edge
//                     class zeroed ("locks free", "barriers free", "remote
//                     misses at local latency") and report the predicted
//                     completion time (src/prof/whatif.hpp).
//
// The capture is a per-processor chronological log of *synchronization*
// events only (lock, unlock, fetch&add, barrier, phase change, finish).
// Everything between two events on one processor — compute charges, ordered
// reads/writes, read_shared pending cost — advances that processor's clock
// without creating cross-processor dependencies, so it is recoverable as the
// gap between the previous event's end and the next event's start. This
// keeps the log small (thousands of events, not millions) while the replay
// remains exact: replaying an unmodified capture reproduces the recorded
// completion time bit-for-bit (checked on every profiled run).
//
// Like the tracer and the RaceModel, profiling is opt-in (--prof / PTB_PROF)
// and a pure observer: the recorder only reads simulator state, so profiled
// runs are bit-identical in virtual time to unprofiled runs, and with no
// recorder attached the hot path pays a single null-pointer branch.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rt/phase.hpp"

namespace ptb::prof {

/// Synchronization-event kinds captured per processor.
enum class EvKind : std::uint8_t {
  kLock = 0,    // lock acquisition (contended or not)
  kUnlock = 1,  // lock release
  kRmw = 2,     // fetch&add on a shared counter
  kBarrier = 3, // one barrier episode (arrive, wait, depart)
  kPhase = 4,   // begin_phase marker
  kFinish = 5,  // processor retired (final clock)
};

/// One captured synchronization event. Times are virtual nanoseconds on the
/// issuing processor's clock:
///
///   t0  op start after the pending-cost flush (lock: request time;
///       barrier: before the arrive charge)
///   ta  barriers only: arrival time (t0 + arrive protocol charge)
///   t1  wait resolved (lock: grant; barrier: release); t0 for ops that
///       cannot block
///   t2  op end, all protocol charges applied
///
/// For an event that blocked, `cause` is the processor whose operation set
/// this processor's resume time t1 (the releaser / the last barrier
/// arriver), and `cause_idx` is that operation's index in `cause`'s log —
/// the exact edge the critical-path walk follows.
struct Event {
  EvKind kind = EvKind::kPhase;
  Phase phase = Phase::kOther;   // issuing processor's phase at t0
  std::int32_t cause = -1;       // proc that resolved the wait; -1 = none
  std::uint32_t cause_idx = 0;   // index of the causing event in cause's log
  std::uint32_t obj = 0;         // interned sync object (kLock/kUnlock/kRmw)
  std::uint64_t t0 = 0;
  std::uint64_t ta = 0;
  std::uint64_t t1 = 0;
  std::uint64_t t2 = 0;
  /// Cumulative remote misses on the issuing processor when the event
  /// completed; gap deltas drive the "remote misses at local latency"
  /// what-if.
  std::uint64_t remote = 0;

  bool waited() const { return cause >= 0; }
};

/// Per-64-byte-line memory charge totals (whole run and the measured
/// tree-build phase separately), keyed by `addr >> 6`. Resolved to tree
/// cells by the harness for the depth-contention table.
struct LineStats {
  std::uint64_t accesses = 0;
  std::uint64_t stall_ns = 0;
  std::uint64_t remote = 0;
  std::uint64_t inval = 0;
  std::uint64_t tb_stall_ns = 0;  // Phase::kTreeBuild only
  std::uint64_t tb_remote = 0;
  std::uint64_t tb_inval = 0;
};

/// The complete record of one simulated run.
struct Capture {
  int nprocs = 0;
  std::vector<std::vector<Event>> log;       // one chronological log per proc
  std::vector<std::uint64_t> final_clock;    // virtual finish time per proc
  std::vector<const void*> objs;             // interned sync-object addresses
  std::unordered_map<std::uintptr_t, LineStats> lines;  // key: addr >> 6

  std::uint64_t elapsed_ns() const;
  std::size_t total_events() const;
  const void* obj_addr(std::uint32_t id) const {
    return objs[static_cast<std::size_t>(id)];
  }
};

/// Captures the dependency structure of one SimContext::run. Attach with
/// SimContext::set_profiler before run(); the simulator drives the hooks
/// below in virtual-time order (under its ordering section), so the recorder
/// needs no synchronization of its own and never perturbs the execution.
class Recorder {
 public:
  /// Called by the simulator at run start; drops any previous capture.
  void begin_run(int nprocs);

  // --- lock protocol ---
  void lock_acquired(int p, const void* lock, std::uint64_t t, std::uint64_t t_end,
                     Phase ph, std::uint64_t remote_cum);
  void lock_wait_begin(int p, const void* lock, std::uint64_t request_ns, Phase ph);
  /// The releaser `granter` handed the lock to blocked `waiter` at grant_ns.
  /// Must run after the granter's unlock event was recorded.
  void lock_grant(int waiter, int granter, std::uint64_t grant_ns);
  /// The granted waiter finished its acquire-side protocol charge.
  void lock_acquired_end(int p, std::uint64_t t_end, std::uint64_t remote_cum);
  void unlock(int p, const void* lock, std::uint64_t t, std::uint64_t t_end, Phase ph,
              std::uint64_t remote_cum);

  void fetch_add(int p, const void* ctr, std::uint64_t t, std::uint64_t t_end, Phase ph,
                 std::uint64_t remote_cum);

  // --- barrier protocol ---
  void barrier_arrive(int p, std::uint64_t t, std::uint64_t arrival_ns, Phase ph);
  /// All arrivals are in; `last` is the latest arriver (ties: smallest id).
  void barrier_release(std::uint64_t release_ns, int last);
  void barrier_depart(int p, std::uint64_t t_end, std::uint64_t remote_cum);

  void phase_begin(int p, Phase ph, std::uint64_t now, std::uint64_t remote_cum);
  void finish(int p, std::uint64_t now, std::uint64_t remote_cum);

  /// One charged ordered access of [addr, addr+n): aggregates into the
  /// per-line table (no log entry).
  void charge(int p, const void* addr, std::uint64_t cost_ns, std::uint64_t remote_delta,
              std::uint64_t inval_delta);

  const Capture& capture() const { return cap_; }
  Capture take() { return std::move(cap_); }

 private:
  std::uint32_t intern(const void* obj);
  Event& push(int p, const Event& e);

  Capture cap_;
  std::unordered_map<const void*, std::uint32_t> obj_ids_;
  std::vector<std::uint32_t> pending_;  // index of the open event per proc
  std::vector<Phase> phase_;            // live phase per proc (for charge())
  static constexpr std::uint32_t kNoPending = ~std::uint32_t{0};
};

/// Resolves the profile output path: an explicit --prof flag wins; otherwise
/// the PTB_PROF environment variable; otherwise "" (profiling off).
std::string prof_path_from(const std::string& flag_value);

/// True when PTB_PROF is set non-empty and not "0" — the environment-side
/// switch for ExperimentSpec::prof, mirroring PTB_RACE / PTB_TRACE.
bool default_prof_enabled();

}  // namespace ptb::prof
