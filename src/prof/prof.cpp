#include "prof/prof.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"

namespace ptb::prof {

std::uint64_t Capture::elapsed_ns() const {
  std::uint64_t e = 0;
  for (std::uint64_t c : final_clock) e = std::max(e, c);
  return e;
}

std::size_t Capture::total_events() const {
  std::size_t n = 0;
  for (const auto& l : log) n += l.size();
  return n;
}

void Recorder::begin_run(int nprocs) {
  PTB_CHECK(nprocs >= 1);
  cap_ = Capture{};
  cap_.nprocs = nprocs;
  cap_.log.assign(static_cast<std::size_t>(nprocs), {});
  cap_.final_clock.assign(static_cast<std::size_t>(nprocs), 0);
  obj_ids_.clear();
  pending_.assign(static_cast<std::size_t>(nprocs), kNoPending);
  phase_.assign(static_cast<std::size_t>(nprocs), Phase::kOther);
}

std::uint32_t Recorder::intern(const void* obj) {
  auto [it, inserted] = obj_ids_.emplace(obj, static_cast<std::uint32_t>(cap_.objs.size()));
  if (inserted) cap_.objs.push_back(obj);
  return it->second;
}

Event& Recorder::push(int p, const Event& e) {
  auto& l = cap_.log[static_cast<std::size_t>(p)];
  l.push_back(e);
  return l.back();
}

void Recorder::lock_acquired(int p, const void* lock, std::uint64_t t, std::uint64_t t_end,
                             Phase ph, std::uint64_t remote_cum) {
  Event e;
  e.kind = EvKind::kLock;
  e.phase = ph;
  e.obj = intern(lock);
  e.t0 = t;
  e.t1 = t;
  e.t2 = t_end;
  e.remote = remote_cum;
  push(p, e);
}

void Recorder::lock_wait_begin(int p, const void* lock, std::uint64_t request_ns, Phase ph) {
  Event e;
  e.kind = EvKind::kLock;
  e.phase = ph;
  e.obj = intern(lock);
  e.t0 = request_ns;
  e.t1 = request_ns;  // patched at grant
  e.t2 = request_ns;  // patched at acquire end
  pending_[static_cast<std::size_t>(p)] =
      static_cast<std::uint32_t>(cap_.log[static_cast<std::size_t>(p)].size());
  push(p, e);
}

void Recorder::lock_grant(int waiter, int granter, std::uint64_t grant_ns) {
  std::uint32_t idx = pending_[static_cast<std::size_t>(waiter)];
  PTB_CHECK_MSG(idx != kNoPending, "lock grant with no pending wait event");
  Event& e = cap_.log[static_cast<std::size_t>(waiter)][idx];
  e.t1 = grant_ns;
  e.cause = granter;
  // The granter's unlock event was recorded immediately before the grant.
  PTB_CHECK(!cap_.log[static_cast<std::size_t>(granter)].empty());
  e.cause_idx =
      static_cast<std::uint32_t>(cap_.log[static_cast<std::size_t>(granter)].size() - 1);
}

void Recorder::lock_acquired_end(int p, std::uint64_t t_end, std::uint64_t remote_cum) {
  std::uint32_t idx = pending_[static_cast<std::size_t>(p)];
  PTB_CHECK_MSG(idx != kNoPending, "lock acquire end with no pending wait event");
  Event& e = cap_.log[static_cast<std::size_t>(p)][idx];
  e.t2 = t_end;
  e.remote = remote_cum;
  pending_[static_cast<std::size_t>(p)] = kNoPending;
}

void Recorder::unlock(int p, const void* lock, std::uint64_t t, std::uint64_t t_end, Phase ph,
                      std::uint64_t remote_cum) {
  Event e;
  e.kind = EvKind::kUnlock;
  e.phase = ph;
  e.obj = intern(lock);
  e.t0 = t;
  e.t1 = t;
  e.t2 = t_end;
  e.remote = remote_cum;
  push(p, e);
}

void Recorder::fetch_add(int p, const void* ctr, std::uint64_t t, std::uint64_t t_end, Phase ph,
                         std::uint64_t remote_cum) {
  Event e;
  e.kind = EvKind::kRmw;
  e.phase = ph;
  e.obj = intern(ctr);
  e.t0 = t;
  e.t1 = t;
  e.t2 = t_end;
  e.remote = remote_cum;
  push(p, e);
}

void Recorder::barrier_arrive(int p, std::uint64_t t, std::uint64_t arrival_ns, Phase ph) {
  Event e;
  e.kind = EvKind::kBarrier;
  e.phase = ph;
  e.t0 = t;
  e.ta = arrival_ns;
  e.t1 = arrival_ns;  // patched at release
  e.t2 = arrival_ns;  // patched at depart
  pending_[static_cast<std::size_t>(p)] =
      static_cast<std::uint32_t>(cap_.log[static_cast<std::size_t>(p)].size());
  push(p, e);
}

void Recorder::barrier_release(std::uint64_t release_ns, int last) {
  std::uint32_t last_idx = pending_[static_cast<std::size_t>(last)];
  PTB_CHECK_MSG(last_idx != kNoPending, "barrier release without the last arriver pending");
  for (int q = 0; q < cap_.nprocs; ++q) {
    std::uint32_t idx = pending_[static_cast<std::size_t>(q)];
    if (idx == kNoPending) continue;
    Event& e = cap_.log[static_cast<std::size_t>(q)][idx];
    if (e.kind != EvKind::kBarrier) continue;  // a lock waiter is not in this barrier
    e.t1 = release_ns;
    if (q != last) {
      e.cause = last;
      e.cause_idx = last_idx;
    }
  }
}

void Recorder::barrier_depart(int p, std::uint64_t t_end, std::uint64_t remote_cum) {
  std::uint32_t idx = pending_[static_cast<std::size_t>(p)];
  PTB_CHECK_MSG(idx != kNoPending, "barrier depart with no pending barrier event");
  Event& e = cap_.log[static_cast<std::size_t>(p)][idx];
  e.t2 = t_end;
  e.remote = remote_cum;
  pending_[static_cast<std::size_t>(p)] = kNoPending;
}

void Recorder::phase_begin(int p, Phase ph, std::uint64_t now, std::uint64_t remote_cum) {
  phase_[static_cast<std::size_t>(p)] = ph;
  Event e;
  e.kind = EvKind::kPhase;
  e.phase = ph;
  e.obj = static_cast<std::uint32_t>(ph);
  e.t0 = e.t1 = e.t2 = now;
  e.remote = remote_cum;
  push(p, e);
}

void Recorder::finish(int p, std::uint64_t now, std::uint64_t remote_cum) {
  Event e;
  e.kind = EvKind::kFinish;
  e.phase = phase_[static_cast<std::size_t>(p)];
  e.t0 = e.t1 = e.t2 = now;
  e.remote = remote_cum;
  push(p, e);
  cap_.final_clock[static_cast<std::size_t>(p)] = now;
}

void Recorder::charge(int p, const void* addr, std::uint64_t cost_ns, std::uint64_t remote_delta,
                      std::uint64_t inval_delta) {
  LineStats& ls = cap_.lines[reinterpret_cast<std::uintptr_t>(addr) >> 6];
  ls.accesses += 1;
  ls.stall_ns += cost_ns;
  ls.remote += remote_delta;
  ls.inval += inval_delta;
  if (phase_[static_cast<std::size_t>(p)] == Phase::kTreeBuild) {
    ls.tb_stall_ns += cost_ns;
    ls.tb_remote += remote_delta;
    ls.tb_inval += inval_delta;
  }
}

std::string prof_path_from(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  const char* env = std::getenv("PTB_PROF");
  return env != nullptr ? std::string(env) : std::string();
}

bool default_prof_enabled() {
  const char* env = std::getenv("PTB_PROF");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

}  // namespace ptb::prof
