// Critical-path extraction over a prof::Capture.
//
// The virtual execution is a DAG: within one processor events are chained by
// program order, and across processors the only operations that *set* a
// clock forward are contended lock grants (the releaser hands its
// post-release time to the waiter) and barrier releases (the last arriver's
// time becomes everyone's). The critical path — the longest chain of
// dependent virtual time, equal by construction to the elapsed time of the
// run — is recovered by a backward walk from the last processor to finish:
//
//   stand at (proc p, time t); find p's latest recorded wait that resolved
//   at or before t; the stretch since that resolution is time p spent
//   *progressing the run's end* — emit it as a path segment — then hop to
//   the processor whose operation resolved the wait, at the resolution
//   time, and repeat until a segment reaches back to t = 0.
//
// Uncontended acquires and fetch&adds never set a clock from another
// processor's, so they add no cross-processor edges (their charges are
// inside segments); fiber/token scheduling is host-level and invisible in
// virtual time. Segment durations tile [0, elapsed] exactly — the sum of
// segments equals the run's elapsed virtual time, a checked invariant.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "prof/prof.hpp"
#include "rt/phase.hpp"

namespace ptb::prof {

/// One maximal single-processor stretch of the critical path.
struct Segment {
  /// How the path arrived at this segment's start.
  enum class Via : std::uint8_t { kStart, kLock, kBarrier };

  int proc = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  Via via = Via::kStart;
  std::uint32_t obj = 0;  // lock object id (Via::kLock only)

  std::uint64_t dur_ns() const { return end_ns - begin_ns; }
};

/// Path time entered through one sync object's contended handoffs.
struct ObjectPath {
  std::uint32_t obj = 0;
  std::uint64_t edges = 0;
  std::uint64_t ns = 0;  // duration of the segments those handoffs started
};

struct CriticalPath {
  std::uint64_t total_ns = 0;       // == Capture::elapsed_ns(), by construction
  std::vector<Segment> segments;    // chronological (run start → last finish)
  std::uint64_t lock_edges = 0;
  std::uint64_t barrier_edges = 0;
  // Segment time by the edge class that started the segment.
  std::uint64_t via_start_ns = 0;
  std::uint64_t via_lock_ns = 0;
  std::uint64_t via_barrier_ns = 0;
  // Segment time sliced by the owning processor's application phase, total
  // and by starting edge class.
  std::array<std::uint64_t, kNumPhases> phase_ns{};
  std::array<std::uint64_t, kNumPhases> phase_via_lock_ns{};
  std::array<std::uint64_t, kNumPhases> phase_via_barrier_ns{};
  std::vector<ObjectPath> by_object;  // descending by ns
};

CriticalPath critical_path(const Capture& cap);

}  // namespace ptb::prof
