// Causal "what-if" prediction over a prof::Capture (COZ-style).
//
// The capture is a complete dependency graph of the run: per-processor
// event chains, lock request→grant orders, barrier memberships, and the
// work (clock advance) between consecutive events. `replay` re-executes
// that graph as a tiny discrete-event simulation — same grant rule
// (earliest request, ties to the lower processor id), same barrier release
// rule (all live processors arrived, release at the latest arrival) — and
// returns the predicted completion time. Replaying an unmodified capture
// reproduces the recorded elapsed time *exactly*; this invariant is checked
// on every profiled run, so scenario predictions start from a validated
// baseline.
//
// Scenarios zero one edge class:
//   kLocksFree     acquires never block or charge, releases are free —
//                  mirrors the builders' --elide-locks fault injection,
//                  which skips the runtime lock call entirely;
//   kBarriersFree  arrivals never wait for the last arriver (protocol
//                  charges stay);
//   kAtomicsFree   fetch&add charges dropped;
//   kRemoteLocal   remote misses re-priced at the local-miss latency: each
//                  inter-event work gap shrinks by (misses in the gap) ×
//                  (remote − local) ns.
//
// Predictions are causal *lower-bound estimates*: removing an edge class in
// the replay cannot change which events a processor executes, whereas the
// real modified program could take different branches (e.g. eliding locks
// changes interleavings and may corrupt the tree). The validation bar — the
// kLocksFree prediction vs a real --elide-locks run — is enforced by test.
#pragma once

#include <cstdint>

#include "prof/prof.hpp"

namespace ptb::prof {

enum class Scenario : std::uint8_t {
  kNone = 0,      // faithful replay; must equal the recorded elapsed time
  kLocksFree,
  kBarriersFree,
  kAtomicsFree,
  kRemoteLocal,
};

const char* scenario_name(Scenario s);

/// Predicted elapsed virtual time of the recorded run under `s`.
/// `remote_extra_ns` (kRemoteLocal only) is the per-miss latency removed:
/// remote-miss ns minus local-miss ns on the modeled platform.
std::uint64_t replay(const Capture& cap, Scenario s, std::uint64_t remote_extra_ns = 0);

}  // namespace ptb::prof
