#include "prof/whatif.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "support/check.hpp"

namespace ptb::prof {

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kNone: return "none";
    case Scenario::kLocksFree: return "locks_free";
    case Scenario::kBarriersFree: return "barriers_free";
    case Scenario::kAtomicsFree: return "atomics_free";
    case Scenario::kRemoteLocal: return "remote_local";
  }
  return "?";
}

namespace {

struct LockQ {
  bool held = false;
  std::vector<std::pair<std::uint64_t, int>> waiters;  // (replay request time, proc)
};

}  // namespace

std::uint64_t replay(const Capture& cap, Scenario s, std::uint64_t remote_extra_ns) {
  const bool locks_free = s == Scenario::kLocksFree;
  const bool barriers_free = s == Scenario::kBarriersFree;
  const bool atomics_free = s == Scenario::kAtomicsFree;
  const std::uint64_t extra = s == Scenario::kRemoteLocal ? remote_extra_ns : 0;
  const auto n = static_cast<std::size_t>(cap.nprocs);

  std::vector<std::uint64_t> clock(n, 0);
  std::vector<std::size_t> next(n, 0);          // index of the next event to execute
  std::vector<std::uint64_t> prev_end(n, 0);    // recorded t2 of the last executed event
  std::vector<std::uint64_t> prev_remote(n, 0); // recorded remote count at that event
  std::vector<LockQ> locks(cap.objs.size());
  std::vector<std::pair<std::uint64_t, int>> arrived;  // (arrival, proc) at the barrier
  int alive = cap.nprocs;
  std::uint64_t finish = 0;

  // (arrival time at next event, proc); ties go to the lower processor id,
  // matching the simulator's (clock, proc) execution order.
  using Entry = std::pair<std::uint64_t, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;

  // Inter-event work is the recorded clock advance between the previous
  // event's end and this event's start; under kRemoteLocal each remote miss
  // in the gap is re-priced at the local latency.
  auto schedule = [&](int p) {
    auto pi = static_cast<std::size_t>(p);
    PTB_CHECK_MSG(next[pi] < cap.log[pi].size(), "processor log ended without a finish event");
    const Event& e = cap.log[pi][next[pi]];
    std::uint64_t work = e.t0 - prev_end[pi];
    if (extra > 0) {
      std::uint64_t saved = (e.remote - prev_remote[pi]) * extra;
      work = work > saved ? work - saved : 0;
    }
    ready.emplace(clock[pi] + work, p);
  };

  auto retire = [&](int p, const Event& e) {
    auto pi = static_cast<std::size_t>(p);
    prev_end[pi] = e.t2;
    prev_remote[pi] = e.remote;
    ++next[pi];
  };

  auto release_barrier_if_full = [&] {
    if (barriers_free || arrived.empty() ||
        arrived.size() != static_cast<std::size_t>(alive))
      return;
    std::uint64_t release = 0;
    for (const auto& [at, q] : arrived) release = std::max(release, at);
    for (const auto& [at, q] : arrived) {
      auto qi = static_cast<std::size_t>(q);
      const Event& e = cap.log[qi][next[qi]];
      clock[qi] = release + (e.t2 - e.t1);  // depart-side protocol charge
      retire(q, e);
      schedule(q);
    }
    arrived.clear();
  };

  for (std::size_t p = 0; p < n; ++p) {
    if (!cap.log[p].empty()) schedule(static_cast<int>(p));
  }

  while (!ready.empty()) {
    auto [t, p] = ready.top();
    ready.pop();
    auto pi = static_cast<std::size_t>(p);
    clock[pi] = t;
    const Event& e = cap.log[pi][next[pi]];
    switch (e.kind) {
      case EvKind::kLock: {
        if (locks_free) {
          retire(p, e);
          schedule(p);
          break;
        }
        LockQ& q = locks[e.obj];
        if (!q.held) {
          q.held = true;
          clock[pi] += e.t2 - e.t1;  // acquire-side protocol charge
          retire(p, e);
          schedule(p);
        } else {
          q.waiters.emplace_back(t, p);  // blocked: re-scheduled by the grant
        }
        break;
      }
      case EvKind::kUnlock: {
        if (!locks_free) {
          clock[pi] += e.t2 - e.t0;  // release-side protocol charge
          LockQ& q = locks[e.obj];
          if (!q.waiters.empty()) {
            // Grant to the earliest request (ties: lower proc), as the
            // simulator does; the lock stays held by the waiter.
            auto best = std::min_element(q.waiters.begin(), q.waiters.end());
            int w = best->second;
            auto wi = static_cast<std::size_t>(w);
            std::uint64_t grant = std::max(best->first, clock[pi]);
            q.waiters.erase(best);
            const Event& we = cap.log[wi][next[wi]];
            clock[wi] = grant + (we.t2 - we.t1);
            retire(w, we);
            schedule(w);
          } else {
            q.held = false;
          }
        }
        retire(p, e);
        schedule(p);
        break;
      }
      case EvKind::kRmw: {
        if (!atomics_free) clock[pi] += e.t2 - e.t0;
        retire(p, e);
        schedule(p);
        break;
      }
      case EvKind::kBarrier: {
        clock[pi] += e.ta - e.t0;  // arrive-side protocol charge
        if (barriers_free) {
          clock[pi] += e.t2 - e.t1;  // depart-side protocol charge
          retire(p, e);
          schedule(p);
          break;
        }
        arrived.emplace_back(clock[pi], p);
        release_barrier_if_full();
        break;
      }
      case EvKind::kPhase: {
        retire(p, e);
        schedule(p);
        break;
      }
      case EvKind::kFinish: {
        finish = std::max(finish, clock[pi]);
        --alive;
        ++next[pi];
        // A finish can complete a barrier the remaining processors wait in.
        release_barrier_if_full();
        break;
      }
    }
  }
  PTB_CHECK_MSG(alive == 0, "what-if replay deadlocked (capture inconsistent)");
  return finish;
}

}  // namespace ptb::prof
