#include "prof/critical_path.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"

namespace ptb::prof {
namespace {

// Per-processor phase timeline: (start time, phase), chronological, starting
// at (0, kOther) — warm-up work runs before the first begin_phase.
std::vector<std::pair<std::uint64_t, Phase>> phase_timeline(const std::vector<Event>& log) {
  std::vector<std::pair<std::uint64_t, Phase>> tl;
  tl.emplace_back(0, Phase::kOther);
  for (const Event& e : log) {
    if (e.kind == EvKind::kPhase) tl.emplace_back(e.t0, e.phase);
  }
  return tl;
}

// Splits [begin, end) across the timeline's phase intervals.
template <typename Fn>
void slice_by_phase(const std::vector<std::pair<std::uint64_t, Phase>>& tl, std::uint64_t begin,
                    std::uint64_t end, Fn&& fn) {
  // First interval whose start is > begin, minus one, is where begin falls.
  auto it = std::upper_bound(tl.begin(), tl.end(), begin,
                             [](std::uint64_t t, const auto& iv) { return t < iv.first; });
  PTB_CHECK(it != tl.begin());
  --it;
  std::uint64_t pos = begin;
  while (pos < end) {
    auto next = it + 1;
    std::uint64_t stop = (next != tl.end()) ? std::min(end, next->first) : end;
    if (stop > pos) fn(it->second, stop - pos);
    pos = stop;
    if (next == tl.end()) break;
    it = next;
  }
}

}  // namespace

CriticalPath critical_path(const Capture& cap) {
  CriticalPath cp;
  if (cap.nprocs == 0) return cp;

  // Latest jump event (an event that blocked) at index <= i, per proc.
  std::vector<std::vector<std::int64_t>> prev_jump(static_cast<std::size_t>(cap.nprocs));
  for (int p = 0; p < cap.nprocs; ++p) {
    const auto& log = cap.log[static_cast<std::size_t>(p)];
    auto& pj = prev_jump[static_cast<std::size_t>(p)];
    pj.resize(log.size());
    std::int64_t last = -1;
    for (std::size_t i = 0; i < log.size(); ++i) {
      if (log[i].waited()) last = static_cast<std::int64_t>(i);
      pj[i] = last;
    }
  }

  int p = 0;
  for (int q = 1; q < cap.nprocs; ++q) {
    if (cap.final_clock[static_cast<std::size_t>(q)] > cap.final_clock[static_cast<std::size_t>(p)])
      p = q;
  }
  std::uint64_t t = cap.final_clock[static_cast<std::size_t>(p)];
  cp.total_ns = t;
  PTB_CHECK_MSG(!cap.log[static_cast<std::size_t>(p)].empty(),
                "profiled run recorded no finish event");
  std::int64_t idx =
      static_cast<std::int64_t>(cap.log[static_cast<std::size_t>(p)].size()) - 1;

  // Backward walk. Each hop moves to an operation that executed strictly
  // earlier in the run's (sequentialized) virtual-order execution, so the
  // walk terminates; the explicit bound turns a logic error into a check
  // failure instead of a hang.
  std::size_t hops_left = cap.total_events() + static_cast<std::size_t>(cap.nprocs) + 1;
  for (;;) {
    PTB_CHECK_MSG(hops_left-- > 0, "critical-path walk did not terminate");
    const auto& log = cap.log[static_cast<std::size_t>(p)];
    std::int64_t j = log.empty() ? -1 : prev_jump[static_cast<std::size_t>(p)][idx];
    if (j < 0) {
      cp.segments.push_back({p, 0, t, Segment::Via::kStart, 0});
      break;
    }
    const Event& e = log[static_cast<std::size_t>(j)];
    PTB_CHECK(e.t1 <= t);
    Segment s;
    s.proc = p;
    s.begin_ns = e.t1;
    s.end_ns = t;
    s.via = e.kind == EvKind::kLock ? Segment::Via::kLock : Segment::Via::kBarrier;
    s.obj = e.kind == EvKind::kLock ? e.obj : 0;
    cp.segments.push_back(s);
    p = e.cause;
    idx = static_cast<std::int64_t>(e.cause_idx);
    t = e.t1;
  }
  std::reverse(cp.segments.begin(), cp.segments.end());

  // Attribution passes.
  std::map<std::uint32_t, ObjectPath> by_obj;
  std::vector<std::vector<std::pair<std::uint64_t, Phase>>> timelines(
      static_cast<std::size_t>(cap.nprocs));
  for (int q = 0; q < cap.nprocs; ++q)
    timelines[static_cast<std::size_t>(q)] = phase_timeline(cap.log[static_cast<std::size_t>(q)]);

  std::uint64_t sum = 0;
  for (const Segment& s : cp.segments) {
    sum += s.dur_ns();
    switch (s.via) {
      case Segment::Via::kStart:
        cp.via_start_ns += s.dur_ns();
        break;
      case Segment::Via::kLock: {
        cp.via_lock_ns += s.dur_ns();
        ++cp.lock_edges;
        ObjectPath& o = by_obj[s.obj];
        o.obj = s.obj;
        o.edges += 1;
        o.ns += s.dur_ns();
        break;
      }
      case Segment::Via::kBarrier:
        cp.via_barrier_ns += s.dur_ns();
        ++cp.barrier_edges;
        break;
    }
    slice_by_phase(timelines[static_cast<std::size_t>(s.proc)], s.begin_ns, s.end_ns,
                   [&](Phase ph, std::uint64_t ns) {
                     auto pi = static_cast<std::size_t>(ph);
                     cp.phase_ns[pi] += ns;
                     if (s.via == Segment::Via::kLock) cp.phase_via_lock_ns[pi] += ns;
                     if (s.via == Segment::Via::kBarrier) cp.phase_via_barrier_ns[pi] += ns;
                   });
  }
  PTB_CHECK_MSG(sum == cp.total_ns, "critical-path segments do not tile the run");

  cp.by_object.reserve(by_obj.size());
  for (auto& [obj, op] : by_obj) cp.by_object.push_back(op);
  std::sort(cp.by_object.begin(), cp.by_object.end(), [](const ObjectPath& a, const ObjectPath& b) {
    if (a.ns != b.ns) return a.ns > b.ns;
    return a.obj < b.obj;
  });
  return cp;
}

}  // namespace ptb::prof
