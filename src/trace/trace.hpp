// ptb::trace — low-overhead, opt-in event tracing for every runtime.
//
// A Tracer owns one ring buffer per processor and records two event shapes:
//
//  * spans   — begin/end intervals (phase execution, lock waits, barrier
//              waits), recorded once at span *end* as (ts, dur) pairs;
//  * instants — point events (cache misses, invalidations, page faults,
//              fiber switches), optionally carrying a count.
//
// Timestamps are whatever clock the producing runtime runs on: *virtual*
// nanoseconds under SimContext, wall nanoseconds since run start under the
// native/OpenMP/sequential runtimes. Event names and categories are static
// strings, so recording an event is a couple of stores — no allocation, no
// formatting, no locking (each processor writes only its own buffer, and the
// simulator serializes processors anyway).
//
// The "off" state is the design center: runtimes keep a `Tracer*` that is
// null unless the user asked for a trace (--trace / PTB_TRACE), so tracing
// compiled in but disabled costs a single predictable branch on the DES hot
// path (bench_sched_micro guards this).
//
// Buffers are bounded: once a processor's buffer is full, further events are
// dropped and counted, keeping the recorded prefix chronologically complete.
// write_chrome_json() serializes everything in the Chrome trace-event format
// (one track per processor), which Perfetto and chrome://tracing load
// directly — see docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ptb::trace {

// Canonical category names (Chrome "cat" field; used for filtering in the
// viewer). Keep in sync with docs/OBSERVABILITY.md.
inline constexpr const char* kCatPhase = "phase";
inline constexpr const char* kCatSync = "sync";
inline constexpr const char* kCatMem = "mem";
inline constexpr const char* kCatSched = "sched";
inline constexpr const char* kCatRace = "race";
inline constexpr const char* kCatSight = "sight";

struct Event {
  std::uint64_t ts_ns = 0;   // span begin / instant time
  std::uint64_t dur_ns = 0;  // spans only
  const char* name = nullptr;  // static string (phase or event name)
  const char* cat = nullptr;   // static string (kCat*)
  std::uint32_t count = 0;     // instants: event multiplicity; 0 == span
  std::uint32_t flow_id = 0;   // flow halves: nonzero pair id
  char flow_ph = 0;            // 0 = not a flow; 's' = source, 'f' = sink
};

class Tracer {
 public:
  /// `capacity_per_proc` bounds each processor's buffer (events, not bytes);
  /// 0 means unbounded.
  explicit Tracer(int nprocs, std::size_t capacity_per_proc = kDefaultCapacity);

  int nprocs() const { return nprocs_; }

  /// Clock domain label written into the trace metadata: "virtual" for the
  /// simulator, "wall" for native runtimes.
  void set_clock_domain(const char* domain) { clock_domain_ = domain; }
  const char* clock_domain() const { return clock_domain_; }

  /// Records a completed [begin, end) span on `proc`'s track. `name`/`cat`
  /// must be static strings.
  void span(int proc, const char* cat, const char* name, std::uint64_t begin_ns,
            std::uint64_t end_ns) {
    push(proc, Event{begin_ns, end_ns - begin_ns, name, cat, 0});
  }

  /// Records a point event; `count` carries multiplicity (e.g. 3 cache
  /// misses charged by one ordered operation).
  void instant(int proc, const char* cat, const char* name, std::uint64_t ts_ns,
               std::uint32_t count = 1) {
    push(proc, Event{ts_ns, 0, name, cat, count, 0, 0});
  }

  /// Records a causal arrow from (`from_proc`, from_ts) to (`to_proc`,
  /// to_ts) as a Chrome flow-event pair; Perfetto draws it between the
  /// tracks. Used for lock holder→waiter handoffs.
  void flow(int from_proc, int to_proc, const char* cat, const char* name,
            std::uint64_t from_ts, std::uint64_t to_ts) {
    const std::uint32_t id = ++next_flow_id_;
    push(from_proc, Event{from_ts, 0, name, cat, 0, id, 's'});
    push(to_proc, Event{to_ts, 0, name, cat, 0, id, 'f'});
  }

  const std::vector<Event>& events(int proc) const {
    return buffers_[static_cast<std::size_t>(proc)];
  }
  /// Events discarded on `proc` because its buffer filled up.
  std::uint64_t dropped(int proc) const {
    return dropped_[static_cast<std::size_t>(proc)];
  }
  std::uint64_t total_events() const;

  /// Drops all recorded events (buffers keep their capacity).
  void clear();

  /// Serializes as Chrome trace-event JSON ({"traceEvents": [...]}), one
  /// thread track per processor, timestamps in microseconds (ns precision
  /// kept via fractional digits).
  void write_chrome_json(std::FILE* f) const;
  /// Convenience wrapper; returns false (with a message on stderr) if the
  /// path cannot be opened.
  bool write_chrome_json(const std::string& path) const;
  /// The same serialization into a string (tests, in-memory consumers).
  std::string chrome_json() const;

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 17;

 private:
  void push(int proc, const Event& e) {
    auto& buf = buffers_[static_cast<std::size_t>(proc)];
    if (capacity_ != 0 && buf.size() >= capacity_) {
      ++dropped_[static_cast<std::size_t>(proc)];
      return;
    }
    buf.push_back(e);
  }

  int nprocs_;
  std::size_t capacity_;
  const char* clock_domain_ = "virtual";
  std::uint32_t next_flow_id_ = 0;
  std::vector<std::vector<Event>> buffers_;
  std::vector<std::uint64_t> dropped_;
};

/// Resolves the trace output path: an explicit --trace flag wins; otherwise
/// the PTB_TRACE environment variable; otherwise "" (tracing off).
std::string trace_path_from(const std::string& flag_value);

}  // namespace ptb::trace
