#include "trace/trace.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace ptb::trace {

Tracer::Tracer(int nprocs, std::size_t capacity_per_proc)
    : nprocs_(nprocs), capacity_(capacity_per_proc) {
  PTB_CHECK(nprocs >= 1);
  buffers_.resize(static_cast<std::size_t>(nprocs));
  dropped_.assign(static_cast<std::size_t>(nprocs), 0);
}

std::uint64_t Tracer::total_events() const {
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b.size();
  return n;
}

void Tracer::clear() {
  for (auto& b : buffers_) b.clear();
  dropped_.assign(dropped_.size(), 0);
  next_flow_id_ = 0;
}

void Tracer::write_chrome_json(std::FILE* f) const {
  std::fprintf(f, "{\n\"traceEvents\": [\n");
  bool first = true;
  auto sep = [&] {
    if (!first) std::fprintf(f, ",\n");
    first = false;
  };
  // Metadata: name the process after the clock domain and each track after
  // its simulated processor so Perfetto shows "proc 0..P-1" lanes.
  sep();
  std::fprintf(f,
               "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", "
               "\"args\": {\"name\": \"ptb (%s time)\"}}",
               clock_domain_);
  for (int p = 0; p < nprocs_; ++p) {
    sep();
    std::fprintf(f,
                 "{\"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"name\": \"thread_name\", "
                 "\"args\": {\"name\": \"proc %d\"}}",
                 p, p);
  }
  // Chrome trace timestamps are microseconds; emit 3 fractional digits to
  // keep nanosecond resolution.
  for (int p = 0; p < nprocs_; ++p) {
    for (const Event& e : events(p)) {
      sep();
      const double ts_us = static_cast<double>(e.ts_ns) * 1e-3;
      if (e.flow_ph != 0) {
        // Flow halves: "s" on the source track, "f" (binding to the
        // enclosing slice's end) on the sink track, joined by id.
        std::fprintf(f,
                     "{\"ph\": \"%c\", %s\"pid\": 0, \"tid\": %d, \"name\": \"%s\", "
                     "\"cat\": \"%s\", \"ts\": %.3f, \"id\": %u}",
                     e.flow_ph, e.flow_ph == 'f' ? "\"bp\": \"e\", " : "", p, e.name,
                     e.cat, ts_us, e.flow_id);
      } else if (e.count == 0) {
        std::fprintf(f,
                     "{\"ph\": \"X\", \"pid\": 0, \"tid\": %d, \"name\": \"%s\", "
                     "\"cat\": \"%s\", \"ts\": %.3f, \"dur\": %.3f}",
                     p, e.name, e.cat, ts_us, static_cast<double>(e.dur_ns) * 1e-3);
      } else {
        std::fprintf(f,
                     "{\"ph\": \"i\", \"pid\": 0, \"tid\": %d, \"name\": \"%s\", "
                     "\"cat\": \"%s\", \"ts\": %.3f, \"s\": \"t\", "
                     "\"args\": {\"count\": %u}}",
                     p, e.name, e.cat, ts_us, e.count);
      }
    }
    if (dropped(p) != 0) {
      sep();
      std::fprintf(f,
                   "{\"ph\": \"i\", \"pid\": 0, \"tid\": %d, \"name\": \"events "
                   "dropped (buffer full)\", \"cat\": \"%s\", \"ts\": 0.000, "
                   "\"s\": \"t\", \"args\": {\"count\": %llu}}",
                   p, kCatSched, static_cast<unsigned long long>(dropped(p)));
    }
  }
  std::fprintf(f, "\n],\n\"displayTimeUnit\": \"ns\",\n\"otherData\": "
                  "{\"clock_domain\": \"%s\"}\n}\n",
               clock_domain_);
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  write_chrome_json(f);
  std::fclose(f);
  return true;
}

std::string Tracer::chrome_json() const {
  // Serialize through a tmpfile so there is exactly one writer implementation.
  std::FILE* f = std::tmpfile();
  PTB_CHECK_MSG(f != nullptr, "trace: cannot create temporary file");
  write_chrome_json(f);
  const long len = std::ftell(f);
  std::string out(static_cast<std::size_t>(len), '\0');
  std::rewind(f);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  out.resize(got);
  return out;
}

std::string trace_path_from(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  const char* env = std::getenv("PTB_TRACE");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace ptb::trace
