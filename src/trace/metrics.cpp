#include "trace/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace ptb::trace {

Labels proc_label(int proc) { return {{"proc", std::to_string(proc)}}; }

Labels proc_phase_label(int proc, const char* phase) {
  return {{"phase", phase}, {"proc", std::to_string(proc)}};
}

std::string MetricsRegistry::key_of(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

bool MetricsRegistry::key_matches(const std::string& key, const std::string& name,
                                  const Labels& filter) {
  if (key.size() < name.size() + 2 || key.compare(0, name.size(), name) != 0 ||
      key[name.size()] != '{')
    return false;
  for (const Label& l : filter) {
    // Label keys/values never contain '{', ',', '=' or '}', so substring
    // search against the canonical serialization is exact.
    const std::string needle = l.first + "=" + l.second;
    const std::size_t pos = key.find(needle, name.size());
    if (pos == std::string::npos) return false;
    const char before = key[pos - 1];
    const char after = key[pos + needle.size()];
    if ((before != '{' && before != ',') || (after != '}' && after != ','))
      return false;
  }
  return true;
}

void MetricsRegistry::add(const std::string& name, const Labels& labels, double v) {
  const std::string key = key_of(name, labels);
  PTB_CHECK_MSG(dists_.find(key) == dists_.end(),
                "metric cell already registered as a distribution");
  values_[key] += v;
}

void MetricsRegistry::set(const std::string& name, const Labels& labels, double v) {
  const std::string key = key_of(name, labels);
  PTB_CHECK_MSG(dists_.find(key) == dists_.end(),
                "metric cell already registered as a distribution");
  values_[key] = v;
}

void MetricsRegistry::record(const std::string& name, const Labels& labels,
                             double sample) {
  const std::string key = key_of(name, labels);
  PTB_CHECK_MSG(values_.find(key) == values_.end(),
                "metric cell already registered as a counter/gauge");
  dists_[key].add(sample);
}

void MetricsRegistry::record_all(const std::string& name, const Labels& labels,
                                 const Distribution& d) {
  const std::string key = key_of(name, labels);
  PTB_CHECK_MSG(values_.find(key) == values_.end(),
                "metric cell already registered as a counter/gauge");
  dists_[key].merge(d);
}

double MetricsRegistry::value(const std::string& name, const Labels& labels) const {
  const auto it = values_.find(key_of(name, labels));
  return it != values_.end() ? it->second : 0.0;
}

double MetricsRegistry::sum(const std::string& name, const Labels& filter) const {
  double total = 0.0;
  for (const auto& [key, v] : values_)
    if (key_matches(key, name, filter)) total += v;
  return total;
}

double MetricsRegistry::max(const std::string& name, const Labels& filter) const {
  double mx = 0.0;
  for (const auto& [key, v] : values_)
    if (key_matches(key, name, filter)) mx = std::max(mx, v);
  return mx;
}

Distribution MetricsRegistry::merged(const std::string& name,
                                     const Labels& filter) const {
  Distribution out;
  for (const auto& [key, d] : dists_)
    if (key_matches(key, name, filter)) out.merge(d);
  return out;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::select(const std::string& name,
                                                            const Labels& filter) const {
  std::vector<Entry> out;
  for (const auto& [key, v] : values_) {
    if (!key_matches(key, name, filter)) continue;
    Entry e;
    e.name = name;
    e.value = v;
    // Parse the labels back out of the canonical key.
    std::size_t pos = name.size() + 1;
    while (pos < key.size() && key[pos] != '}') {
      const std::size_t eq = key.find('=', pos);
      std::size_t end = key.find(',', eq);
      if (end == std::string::npos) end = key.size() - 1;
      e.labels.emplace_back(key.substr(pos, eq - pos), key.substr(eq + 1, end - eq - 1));
      pos = end + (key[end] == ',' ? 1 : 0);
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::string MetricsRegistry::dump() const {
  std::string out;
  char buf[64];
  for (const auto& [key, v] : values_) {
    std::snprintf(buf, sizeof buf, " %.17g\n", v);
    out += key;
    out += buf;
  }
  for (const auto& [key, d] : dists_) {
    std::snprintf(buf, sizeof buf, " count=%llu mean=%.6g max=%.6g p95=%.6g\n",
                  static_cast<unsigned long long>(d.count()), d.stat().mean(),
                  d.stat().max(), d.p95());
    out += key;
    out += buf;
  }
  return out;
}

void MetricsRegistry::clear() {
  values_.clear();
  dists_.clear();
}

}  // namespace ptb::trace
