// ptb::trace::MetricsRegistry — named, labeled metrics for one run.
//
// The single source the harness and benches read measurements from: after a
// run, the per-processor runtime accumulators (ProcStats, MemProcStats) are
// ingested as labeled metrics, and everything downstream — ExperimentResult's
// scalar fields, ptbsim's tables, the bench_fig* breakdowns — is *derived*
// by querying the registry instead of hand-maintaining parallel fields.
//
// Naming scheme (see docs/OBSERVABILITY.md):
//
//   <subsystem>.<measurement>{label=value,...}
//
//   time.phase_ns{proc=3,phase=treebuild}      virtual/wall ns in a phase
//   time.mem_stall_ns{proc=3,phase=treebuild}  ns stalled on the memory system
//   sync.lock_wait_ns{proc=3,phase=treebuild}  ns blocked on lock queues
//   sync.lock_acquires{proc=3,phase=treebuild} counter
//   mem.page_faults{proc=3}                    counter
//
// Three metric kinds: counters (add), gauges (set), and distributions
// (record; Welford + power-of-two buckets, so mean/max/p95 survive
// aggregation). Aggregation across labels is a query-side operation:
// sum("sync.lock_acquires", {{"phase","treebuild"}}) adds every proc's
// tree-build lock count.
//
// This is a post-run structure — population happens once per run from the
// runtime's accumulators, never on the simulation hot path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/stats.hpp"

namespace ptb::trace {

using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// Convenience label builders ("proc" and "phase" are the canonical keys).
Labels proc_label(int proc);
Labels proc_phase_label(int proc, const char* phase);

class MetricsRegistry {
 public:
  /// Counter: accumulates into the (name, labels) cell, creating it at 0.
  void add(const std::string& name, const Labels& labels, double v);
  /// Gauge: overwrites the cell.
  void set(const std::string& name, const Labels& labels, double v);
  /// Distribution: records one sample into the cell's Distribution.
  void record(const std::string& name, const Labels& labels, double sample);
  /// Distribution: folds a whole pre-accumulated Distribution in.
  void record_all(const std::string& name, const Labels& labels, const Distribution& d);

  /// Exact cell lookup; 0 / empty when absent.
  double value(const std::string& name, const Labels& labels) const;

  /// Sum / max over every cell of `name` whose labels include all of
  /// `filter` (empty filter == all cells).
  double sum(const std::string& name, const Labels& filter = {}) const;
  double max(const std::string& name, const Labels& filter = {}) const;

  /// Merged distribution over matching cells.
  Distribution merged(const std::string& name, const Labels& filter = {}) const;

  struct Entry {
    std::string name;
    Labels labels;  // sorted by key
    double value = 0.0;
  };
  /// Matching value cells in deterministic (sorted-key) order.
  std::vector<Entry> select(const std::string& name, const Labels& filter = {}) const;

  /// "name{k=v,...} value" lines, sorted — debugging and golden tests.
  std::string dump() const;

  bool empty() const { return values_.empty() && dists_.empty(); }
  void clear();

 private:
  static std::string key_of(const std::string& name, Labels labels);
  static bool key_matches(const std::string& key, const std::string& name,
                          const Labels& filter);

  // Keyed by "name{k=v,...}" with labels sorted, so iteration order (and
  // therefore every dump/aggregate) is deterministic.
  std::map<std::string, double> values_;
  std::map<std::string, Distribution> dists_;
};

}  // namespace ptb::trace
