// Application phases, shared by all runtimes.
//
// A Barnes–Hut time-step is: tree build → moments (center of mass) →
// partition (costzones) → forces → update. The paper varies only the first
// phase across its five algorithms and reports time breakdowns per phase, so
// phase attribution is a first-class runtime concept here.
#pragma once

#include <array>
#include <cstdint>

#include "support/stats.hpp"

namespace ptb {

enum class Phase : int {
  kTreeBuild = 0,
  kMoments = 1,
  kPartition = 2,
  kForces = 3,
  kUpdate = 4,
  kOther = 5,
};

inline constexpr int kNumPhases = 6;

inline const char* phase_name(Phase p) {
  constexpr const char* names[kNumPhases] = {"treebuild", "moments", "partition",
                                             "forces",    "update",  "other"};
  return names[static_cast<int>(p)];
}

/// Per-processor statistics every runtime keeps. Times are nanoseconds:
/// wall-clock for NativeRT, virtual for SimRT. This struct is the hot-path
/// accumulator; after a run it is ingested into a trace::MetricsRegistry
/// (harness/experiment.cpp) that everything downstream reads from.
struct ProcStats {
  std::array<double, kNumPhases> phase_ns{};
  /// Of phase_ns, the part spent stalled on the memory system (protocol
  /// charges: misses, page faults, diffs, notices). Simulator only; native
  /// runtimes cannot separate stall time and leave it zero.
  std::array<double, kNumPhases> mem_stall_ns{};
  /// Of phase_ns, the part spent blocked on lock queues / at barriers.
  std::array<double, kNumPhases> lock_wait_phase_ns{};
  std::array<double, kNumPhases> barrier_wait_phase_ns{};
  std::array<std::uint64_t, kNumPhases> lock_acquires{};
  /// Whole-run wait totals (warm-up included), kept alongside the per-phase
  /// split because tests and the backend-equivalence checks compare them.
  double barrier_wait_ns = 0.0;
  double lock_wait_ns = 0.0;
  /// Per-event wait distributions (one sample per contended lock acquisition
  /// / per barrier episode), powering the mean/max/p95 sync columns.
  Distribution lock_wait_events;
  Distribution barrier_wait_events;
  std::uint64_t barriers = 0;
  std::uint64_t fetch_adds = 0;

  double total_ns() const {
    double t = 0.0;
    for (double v : phase_ns) t += v;
    return t;
  }
};

}  // namespace ptb
