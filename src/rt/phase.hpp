// Application phases, shared by all runtimes.
//
// A Barnes–Hut time-step is: tree build → moments (center of mass) →
// partition (costzones) → forces → update. The paper varies only the first
// phase across its five algorithms and reports time breakdowns per phase, so
// phase attribution is a first-class runtime concept here.
#pragma once

#include <array>
#include <cstdint>

namespace ptb {

enum class Phase : int {
  kTreeBuild = 0,
  kMoments = 1,
  kPartition = 2,
  kForces = 3,
  kUpdate = 4,
  kOther = 5,
};

inline constexpr int kNumPhases = 6;

inline const char* phase_name(Phase p) {
  constexpr const char* names[kNumPhases] = {"treebuild", "moments", "partition",
                                             "forces",    "update",  "other"};
  return names[static_cast<int>(p)];
}

/// Per-processor statistics every runtime keeps. Times are nanoseconds:
/// wall-clock for NativeRT, virtual for SimRT.
struct ProcStats {
  std::array<double, kNumPhases> phase_ns{};
  std::array<std::uint64_t, kNumPhases> lock_acquires{};
  double barrier_wait_ns = 0.0;
  double lock_wait_ns = 0.0;
  std::uint64_t barriers = 0;
  std::uint64_t fetch_adds = 0;

  double total_ns() const {
    double t = 0.0;
    for (double v : phase_ns) t += v;
    return t;
  }
};

}  // namespace ptb
