// Trivial single-processor runtime.
//
// Used for the sequential baseline and as the simplest instantiation of the
// runtime concept the tree builders are templated over. All shared-memory
// annotations are no-ops; phase times are wall-clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/region_table.hpp"  // HomePolicy (annotation only; no cost here)
#include "rt/phase.hpp"
#include "support/check.hpp"
#include "trace/trace.hpp"

namespace ptb {

class SeqContext;

class SeqProc {
 public:
  explicit SeqProc(SeqContext& ctx) : ctx_(&ctx) {}

  int self() const { return 0; }
  int nprocs() const { return 1; }

  void compute(double /*units*/) {}
  void compute_n(double /*units*/, std::uint64_t /*count*/) {}
  void read(const void* /*p*/, std::size_t /*n*/) {}
  void write(const void* /*p*/, std::size_t /*n*/) {}
  void read_shared(const void* /*p*/, std::size_t /*n*/) {}
  void read_shared_span(const void* /*p*/, std::size_t /*n*/, std::size_t /*stride*/,
                        std::size_t /*count*/) {}
  template <class F>
  void unordered(F&& f) {
    f();
  }

  /// Tracer access for phase code emitting its own sub-spans (wall clock).
  trace::Tracer* tracer() const;
  std::uint64_t trace_now() const;

  /// Combined charge + load/store of a shared atomic that lock-free readers
  /// race on. Outside the simulator this is a plain acquire/release access.
  template <class T>
  T ordered_load(const std::atomic<T>& a, const void* /*charge_addr*/, std::size_t /*n*/) {
    return a.load(std::memory_order_acquire);
  }
  template <class T>
  void ordered_store(std::atomic<T>& a, T v, const void* /*charge_addr*/,
                     std::size_t /*n*/) {
    a.store(v, std::memory_order_release);
  }

  void lock(const void* addr);
  void unlock(const void* addr);
  std::int64_t fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v);
  void barrier();
  void begin_phase(Phase p);

 private:
  SeqContext* ctx_;
};

class SeqContext {
 public:
  using Proc = SeqProc;

  explicit SeqContext(int nprocs = 1) : stats_(1) {
    PTB_CHECK_MSG(nprocs == 1, "SeqContext is single-processor");
  }

  int nprocs() const { return 1; }

  /// Region registration is a no-op outside the simulator; present so the
  /// application driver is runtime-generic.
  void register_region(const void*, std::size_t, HomePolicy, int, std::string) {}

  /// Attaches an event tracer (null detaches); single wall-clock track.
  void set_tracer(trace::Tracer* t) {
    tracer_ = t;
    if (t != nullptr) t->set_clock_domain("wall");
  }
  trace::Tracer* tracer() const { return tracer_; }

  /// Runs f(SeqProc&) on the (single) processor.
  template <class F>
  void run(F&& f) {
    SeqProc proc(*this);
    mark_ = Clock::now();
    epoch_ = mark_;
    f(proc);
    flush_phase();
  }

  const std::vector<ProcStats>& stats() const { return stats_; }
  void reset_stats() {
    stats_.assign(1, ProcStats{});
    mark_ = Clock::now();
  }

 private:
  friend class SeqProc;
  // ptblint: allow(wall-clock) -- native runtimes report real host time by contract; the DES virtual-time domain never reads it
  using Clock = std::chrono::steady_clock;

  void flush_phase() {
    const auto now = Clock::now();
    stats_[0].phase_ns[static_cast<int>(phase_)] +=
        std::chrono::duration<double, std::nano>(now - mark_).count();
    if (tracer_ != nullptr && now > mark_)
      tracer_->span(0, trace::kCatPhase, phase_name(phase_),
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(mark_ - epoch_)
                            .count()),
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
                            .count()));
    mark_ = now;
  }

  std::vector<ProcStats> stats_;
  Phase phase_ = Phase::kOther;
  Clock::time_point mark_ = Clock::now();
  Clock::time_point epoch_ = Clock::now();
  trace::Tracer* tracer_ = nullptr;
  int lock_depth_ = 0;
};

inline trace::Tracer* SeqProc::tracer() const { return ctx_->tracer_; }

inline std::uint64_t SeqProc::trace_now() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        SeqContext::Clock::now() - ctx_->epoch_)
                                        .count());
}

inline void SeqProc::lock(const void* /*addr*/) {
  ++ctx_->stats_[0].lock_acquires[static_cast<int>(ctx_->phase_)];
  PTB_DCHECK(++ctx_->lock_depth_ == 1);  // builders never nest cell locks
}

inline void SeqProc::unlock(const void* /*addr*/) { PTB_DCHECK(--ctx_->lock_depth_ == 0); }

inline std::int64_t SeqProc::fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v) {
  ++ctx_->stats_[0].fetch_adds;
  return ctr.fetch_add(v, std::memory_order_relaxed);
}

inline void SeqProc::barrier() { ++ctx_->stats_[0].barriers; }

inline void SeqProc::begin_phase(Phase p) {
  ctx_->flush_phase();
  ctx_->phase_ = p;
}

}  // namespace ptb
