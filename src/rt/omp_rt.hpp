// OpenMP runtime: the same SPMD contract as NativeContext, but the worker
// team is an OpenMP parallel region. Useful for codes already built around
// OpenMP and as a second independent implementation of the runtime concept
// (the test suite cross-checks it against NativeContext).
//
// Compiled only when PTB_HAVE_OPENMP is defined (see src/CMakeLists.txt).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include <omp.h>

#include "mem/region_table.hpp"  // HomePolicy (annotation only; no cost here)
#include "rt/phase.hpp"
#include "support/check.hpp"
#include "trace/trace.hpp"

namespace ptb {

class OmpContext;

class OmpProc {
 public:
  OmpProc(OmpContext& ctx, int self) : ctx_(&ctx), self_(self) {}

  int self() const { return self_; }
  int nprocs() const;

  void compute(double /*units*/) {}
  void compute_n(double /*units*/, std::uint64_t /*count*/) {}
  void read(const void* /*p*/, std::size_t /*n*/) {}
  void write(const void* /*p*/, std::size_t /*n*/) {}
  void read_shared(const void* /*p*/, std::size_t /*n*/) {}
  void read_shared_span(const void* /*p*/, std::size_t /*n*/, std::size_t /*stride*/,
                        std::size_t /*count*/) {}
  template <class F>
  void unordered(F&& f) {
    f();
  }

  /// Tracer access for phase code emitting its own sub-spans (wall clock).
  trace::Tracer* tracer() const;
  std::uint64_t trace_now() const;

  template <class T>
  T ordered_load(const std::atomic<T>& a, const void* /*charge_addr*/, std::size_t /*n*/) {
    return a.load(std::memory_order_acquire);
  }
  template <class T>
  void ordered_store(std::atomic<T>& a, T v, const void* /*charge_addr*/,
                     std::size_t /*n*/) {
    a.store(v, std::memory_order_release);
  }

  void lock(const void* addr);
  void unlock(const void* addr);
  std::int64_t fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v);
  void barrier();
  void begin_phase(Phase p);

 private:
  OmpContext* ctx_;
  int self_;
};

class OmpContext {
 public:
  using Proc = OmpProc;

  explicit OmpContext(int nprocs)
      : nprocs_(nprocs), stats_(static_cast<std::size_t>(nprocs)),
        phase_(static_cast<std::size_t>(nprocs), Phase::kOther),
        mark_(static_cast<std::size_t>(nprocs)) {
    PTB_CHECK(nprocs >= 1);
    for (auto& m : mutexes_) omp_init_lock(&m);
  }
  ~OmpContext() {
    for (auto& m : mutexes_) omp_destroy_lock(&m);
  }
  OmpContext(const OmpContext&) = delete;
  OmpContext& operator=(const OmpContext&) = delete;

  int nprocs() const { return nprocs_; }

  void register_region(const void*, std::size_t, HomePolicy, int, std::string) {}

  /// Attaches an event tracer (null detaches); wall-clock timestamps
  /// relative to run() start, as in NativeContext.
  void set_tracer(trace::Tracer* t) {
    tracer_ = t;
    if (t != nullptr) t->set_clock_domain("wall");
  }
  trace::Tracer* tracer() const { return tracer_; }

  /// Runs f(OmpProc&) on an OpenMP team of nprocs threads.
  template <class F>
  void run(F&& f) {
    const auto t0 = Clock::now();
    epoch_ = t0;
    for (auto& m : mark_) m = t0;
#pragma omp parallel num_threads(nprocs_)
    {
      const int p = omp_get_thread_num();
      OmpProc proc(*this, p);
      f(proc);
      flush_phase(p);
    }
  }

  const std::vector<ProcStats>& stats() const { return stats_; }
  void reset_stats() { stats_.assign(static_cast<std::size_t>(nprocs_), ProcStats{}); }

 private:
  friend class OmpProc;
  // ptblint: allow(wall-clock) -- native runtimes report real host time by contract; the DES virtual-time domain never reads it
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kNumMutexes = 4096;

  omp_lock_t& mutex_for(const void* addr) {
    auto h = reinterpret_cast<std::uintptr_t>(addr);
    h ^= h >> 17;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return mutexes_[h % kNumMutexes];
  }

  std::uint64_t trace_ns(Clock::time_point tp) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_).count());
  }

  void flush_phase(int p) {
    const auto now = Clock::now();
    const auto idx = static_cast<std::size_t>(p);
    stats_[idx].phase_ns[static_cast<int>(phase_[idx])] +=
        std::chrono::duration<double, std::nano>(now - mark_[idx]).count();
    if (tracer_ != nullptr && now > mark_[idx])
      tracer_->span(p, trace::kCatPhase, phase_name(phase_[idx]),
                    trace_ns(mark_[idx]), trace_ns(now));
    mark_[idx] = now;
  }

  int nprocs_;
  std::vector<ProcStats> stats_;
  std::vector<Phase> phase_;
  std::vector<Clock::time_point> mark_;
  trace::Tracer* tracer_ = nullptr;
  Clock::time_point epoch_ = Clock::now();
  omp_lock_t mutexes_[kNumMutexes];
};

inline int OmpProc::nprocs() const { return ctx_->nprocs_; }

inline trace::Tracer* OmpProc::tracer() const { return ctx_->tracer_; }

inline std::uint64_t OmpProc::trace_now() const {
  return ctx_->trace_ns(OmpContext::Clock::now());
}

inline void OmpProc::lock(const void* addr) {
  auto& st = ctx_->stats_[static_cast<std::size_t>(self_)];
  const int phase = static_cast<int>(ctx_->phase_[static_cast<std::size_t>(self_)]);
  ++st.lock_acquires[phase];
  if (ctx_->tracer_ == nullptr) {
    omp_set_lock(&ctx_->mutex_for(addr));
    return;
  }
  const auto t0 = OmpContext::Clock::now();
  omp_set_lock(&ctx_->mutex_for(addr));
  const auto t1 = OmpContext::Clock::now();
  const double waited = std::chrono::duration<double, std::nano>(t1 - t0).count();
  st.lock_wait_ns += waited;
  st.lock_wait_phase_ns[phase] += waited;
  st.lock_wait_events.add(waited);
  if (t1 > t0)
    ctx_->tracer_->span(self_, trace::kCatSync, "lock-wait", ctx_->trace_ns(t0),
                        ctx_->trace_ns(t1));
}

inline void OmpProc::unlock(const void* addr) { omp_unset_lock(&ctx_->mutex_for(addr)); }

inline std::int64_t OmpProc::fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v) {
  ++ctx_->stats_[static_cast<std::size_t>(self_)].fetch_adds;
  return ctr.fetch_add(v, std::memory_order_acq_rel);
}

inline void OmpProc::barrier() {
  auto& st = ctx_->stats_[static_cast<std::size_t>(self_)];
  ++st.barriers;
  if (ctx_->tracer_ == nullptr) {
#pragma omp barrier
    return;
  }
  const int phase = static_cast<int>(ctx_->phase_[static_cast<std::size_t>(self_)]);
  const auto t0 = OmpContext::Clock::now();
#pragma omp barrier
  const auto t1 = OmpContext::Clock::now();
  const double waited = std::chrono::duration<double, std::nano>(t1 - t0).count();
  st.barrier_wait_ns += waited;
  st.barrier_wait_phase_ns[phase] += waited;
  st.barrier_wait_events.add(waited);
  if (t1 > t0)
    ctx_->tracer_->span(self_, trace::kCatSync, "barrier-wait", ctx_->trace_ns(t0),
                        ctx_->trace_ns(t1));
}

inline void OmpProc::begin_phase(Phase p) {
  ctx_->flush_phase(self_);
  ctx_->phase_[static_cast<std::size_t>(self_)] = p;
}

}  // namespace ptb
