// Native runtime: real std::thread parallelism on the host machine.
//
// This is the runtime a downstream user of the library runs in production on
// a real shared-memory multiprocessor. Shared-memory *annotations*
// (read/write/compute) are no-ops that the optimizer deletes; locks map to a
// hashed mutex pool; the barrier is a std::barrier. Phase times are
// wall-clock per thread.
#pragma once

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mem/region_table.hpp"  // HomePolicy (annotation only; no cost here)
#include "rt/phase.hpp"
#include "support/check.hpp"
#include "trace/trace.hpp"

namespace ptb {

class NativeContext;

class NativeProc {
 public:
  NativeProc(NativeContext& ctx, int self) : ctx_(&ctx), self_(self) {}

  int self() const { return self_; }
  int nprocs() const;

  void compute(double /*units*/) {}
  void compute_n(double /*units*/, std::uint64_t /*count*/) {}
  void read(const void* /*p*/, std::size_t /*n*/) {}
  void write(const void* /*p*/, std::size_t /*n*/) {}
  void read_shared(const void* /*p*/, std::size_t /*n*/) {}
  void read_shared_span(const void* /*p*/, std::size_t /*n*/, std::size_t /*stride*/,
                        std::size_t /*count*/) {}
  /// Unordered sections are a simulator contract; real threads already
  /// overlap freely, so the body just runs inline.
  template <class F>
  void unordered(F&& f) {
    f();
  }

  /// Tracer access for phase code that emits its own sub-spans; timestamps
  /// are wall nanoseconds since run() started (the context's trace domain).
  trace::Tracer* tracer() const;
  std::uint64_t trace_now() const;

  /// Combined charge + load/store of a shared atomic that lock-free readers
  /// race on. On real threads this is a plain acquire/release access.
  template <class T>
  T ordered_load(const std::atomic<T>& a, const void* /*charge_addr*/, std::size_t /*n*/) {
    return a.load(std::memory_order_acquire);
  }
  template <class T>
  void ordered_store(std::atomic<T>& a, T v, const void* /*charge_addr*/,
                     std::size_t /*n*/) {
    a.store(v, std::memory_order_release);
  }

  void lock(const void* addr);
  void unlock(const void* addr);
  std::int64_t fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v);
  void barrier();
  void begin_phase(Phase p);

 private:
  NativeContext* ctx_;
  int self_;
};

class NativeContext {
 public:
  using Proc = NativeProc;

  explicit NativeContext(int nprocs)
      : nprocs_(nprocs), stats_(static_cast<std::size_t>(nprocs)),
        phase_(static_cast<std::size_t>(nprocs), Phase::kOther),
        mark_(static_cast<std::size_t>(nprocs)),
        lock_depth_(static_cast<std::size_t>(nprocs), 0),
        barrier_(nprocs) {
    PTB_CHECK(nprocs >= 1);
  }

  int nprocs() const { return nprocs_; }

  /// Region registration is a no-op outside the simulator; present so the
  /// application driver is runtime-generic.
  void register_region(const void*, std::size_t, HomePolicy, int, std::string) {}

  /// Attaches an event tracer (null detaches). Timestamps are wall
  /// nanoseconds since the current run() started. Lock waits are only timed
  /// (two extra clock reads) while a tracer is attached, so detached runs
  /// keep the untraced fast path.
  void set_tracer(trace::Tracer* t) {
    tracer_ = t;
    if (t != nullptr) t->set_clock_domain("wall");
  }
  trace::Tracer* tracer() const { return tracer_; }

  /// Runs f(NativeProc&) on nprocs real threads (SPMD style) and joins them.
  template <class F>
  void run(F&& f) {
    const auto t0 = Clock::now();
    epoch_ = t0;
    for (auto& m : mark_) m = t0;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs_));
    for (int p = 0; p < nprocs_; ++p) {
      threads.emplace_back([this, p, &f] {
        NativeProc proc(*this, p);
        f(proc);
        flush_phase(p);
      });
    }
    for (auto& t : threads) t.join();
  }

  const std::vector<ProcStats>& stats() const { return stats_; }
  void reset_stats() {
    stats_.assign(static_cast<std::size_t>(nprocs_), ProcStats{});
  }

 private:
  friend class NativeProc;
  // ptblint: allow(wall-clock) -- native runtimes report real host time by contract; the DES virtual-time domain never reads it
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kNumMutexes = 4096;

  std::mutex& mutex_for(const void* addr) {
    // Pointer-hash into a fixed pool. Safe because no builder ever holds two
    // cell locks at once (asserted in debug builds), so hash collisions
    // cannot deadlock.
    auto h = reinterpret_cast<std::uintptr_t>(addr);
    h ^= h >> 17;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return mutexes_[h % kNumMutexes];
  }

  /// Wall nanoseconds since the current run() started (trace timestamps).
  std::uint64_t trace_ns(Clock::time_point tp) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_).count());
  }

  void flush_phase(int p) {
    const auto now = Clock::now();
    const auto idx = static_cast<std::size_t>(p);
    stats_[idx].phase_ns[static_cast<int>(phase_[idx])] +=
        std::chrono::duration<double, std::nano>(now - mark_[idx]).count();
    if (tracer_ != nullptr && now > mark_[idx])
      tracer_->span(p, trace::kCatPhase, phase_name(phase_[idx]),
                    trace_ns(mark_[idx]), trace_ns(now));
    mark_[idx] = now;
  }

  int nprocs_;
  std::vector<ProcStats> stats_;
  std::vector<Phase> phase_;
  std::vector<Clock::time_point> mark_;
  std::vector<int> lock_depth_;
  std::barrier<> barrier_;
  trace::Tracer* tracer_ = nullptr;
  Clock::time_point epoch_ = Clock::now();
  std::mutex mutexes_[kNumMutexes];
};

inline int NativeProc::nprocs() const { return ctx_->nprocs_; }

inline trace::Tracer* NativeProc::tracer() const { return ctx_->tracer_; }

inline std::uint64_t NativeProc::trace_now() const {
  return ctx_->trace_ns(NativeContext::Clock::now());
}

inline void NativeProc::lock(const void* addr) {
  auto& st = ctx_->stats_[static_cast<std::size_t>(self_)];
  const int phase = static_cast<int>(ctx_->phase_[static_cast<std::size_t>(self_)]);
  ++st.lock_acquires[phase];
  PTB_DCHECK(++ctx_->lock_depth_[static_cast<std::size_t>(self_)] == 1);
  if (ctx_->tracer_ == nullptr) {
    ctx_->mutex_for(addr).lock();
    return;
  }
  const auto t0 = NativeContext::Clock::now();
  ctx_->mutex_for(addr).lock();
  const auto t1 = NativeContext::Clock::now();
  const double waited = std::chrono::duration<double, std::nano>(t1 - t0).count();
  st.lock_wait_ns += waited;
  st.lock_wait_phase_ns[phase] += waited;
  st.lock_wait_events.add(waited);
  if (t1 > t0)
    ctx_->tracer_->span(self_, trace::kCatSync, "lock-wait", ctx_->trace_ns(t0),
                        ctx_->trace_ns(t1));
}

inline void NativeProc::unlock(const void* addr) {
  ctx_->mutex_for(addr).unlock();
  PTB_DCHECK(--ctx_->lock_depth_[static_cast<std::size_t>(self_)] == 0);
}

inline std::int64_t NativeProc::fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v) {
  ++ctx_->stats_[static_cast<std::size_t>(self_)].fetch_adds;
  return ctr.fetch_add(v, std::memory_order_acq_rel);
}

inline void NativeProc::barrier() {
  auto& st = ctx_->stats_[static_cast<std::size_t>(self_)];
  ++st.barriers;
  const int phase = static_cast<int>(ctx_->phase_[static_cast<std::size_t>(self_)]);
  const auto t0 = NativeContext::Clock::now();
  ctx_->barrier_.arrive_and_wait();
  const auto t1 = NativeContext::Clock::now();
  const double waited = std::chrono::duration<double, std::nano>(t1 - t0).count();
  st.barrier_wait_ns += waited;
  st.barrier_wait_phase_ns[phase] += waited;
  st.barrier_wait_events.add(waited);
  if (ctx_->tracer_ != nullptr && t1 > t0)
    ctx_->tracer_->span(self_, trace::kCatSync, "barrier-wait", ctx_->trace_ns(t0),
                        ctx_->trace_ns(t1));
}

inline void NativeProc::begin_phase(Phase p) {
  ctx_->flush_phase(self_);
  ctx_->phase_[static_cast<std::size_t>(self_)] = p;
}

}  // namespace ptb
