// Page-aligned allocation for shared regions.
//
// The memory-system models key protocol state off REAL addresses. For the
// simulator to be bit-deterministic across runs (and for region traffic to be
// independent of heap layout), every registered shared region is allocated at
// a page boundary: the line/page grid then falls identically within the
// region no matter where malloc placed it.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace ptb {

inline constexpr std::size_t kRegionAlignment = 4096;

template <class T, std::size_t Align = kRegionAlignment>
struct AlignedAlloc {
  using value_type = T;

  AlignedAlloc() = default;
  template <class U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <class U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };

  friend bool operator==(const AlignedAlloc&, const AlignedAlloc&) { return true; }
};

/// std::vector with page-aligned storage.
template <class T>
using AlignedVec = std::vector<T, AlignedAlloc<T>>;

namespace detail {
struct AlignedArrayDeleter {
  std::size_t count = 0;
  template <class T>
  void operator()(T* p) const {
    for (std::size_t i = 0; i < count; ++i) p[i].~T();
    ::operator delete(static_cast<void*>(p), std::align_val_t(kRegionAlignment));
  }
};
}  // namespace detail

template <class T>
using AlignedArrayPtr = std::unique_ptr<T[], detail::AlignedArrayDeleter>;

/// Value-initialized page-aligned array (replacement for make_unique<T[]>).
template <class T>
AlignedArrayPtr<T> make_aligned_array(std::size_t n) {
  void* raw = ::operator new(n * sizeof(T), std::align_val_t(kRegionAlignment));
  T* arr = static_cast<T*>(raw);
  std::size_t built = 0;
  try {
    for (; built < n; ++built) ::new (static_cast<void*>(arr + built)) T();
  } catch (...) {
    while (built > 0) arr[--built].~T();
    ::operator delete(raw, std::align_val_t(kRegionAlignment));
    throw;
  }
  return AlignedArrayPtr<T>(arr, detail::AlignedArrayDeleter{n});
}

}  // namespace ptb
