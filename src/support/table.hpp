// Plain-text table printer used by the bench harness to emit the paper's
// tables and figure series in aligned, diffable form.
#pragma once

#include <string>
#include <vector>

namespace ptb {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cols);
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render to stdout.
  void print() const;

  /// Render as a string (used by tests).
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ptb
