#include "support/provenance.hpp"

// Stamped by the top-level CMakeLists via add_compile_definitions; the
// fallbacks keep the file compiling standalone (header self-containment
// builds, external embedders).
#ifndef PTB_GIT_SHA
#define PTB_GIT_SHA "unknown"
#endif
#ifndef PTB_BUILD_TYPE
#define PTB_BUILD_TYPE "unknown"
#endif

namespace ptb::support {

const char* git_sha() { return PTB_GIT_SHA; }

const char* build_type() { return PTB_BUILD_TYPE; }

void write_provenance_json(std::FILE* f, const RunProvenance* run) {
  std::fprintf(f, "{\"git_sha\": \"%s\", \"build_type\": \"%s\"", git_sha(),
               build_type());
  if (run != nullptr) {
    std::fprintf(f,
                 ", \"platform\": \"%s\", \"algorithm\": \"%s\", "
                 "\"nbodies\": %d, \"nprocs\": %d",
                 run->platform.c_str(), run->algorithm.c_str(), run->nbodies,
                 run->nprocs);
  }
  std::fprintf(f, "}");
}

}  // namespace ptb::support
