// Maps host addresses back to tree cells. Shared between the prof and sight
// observability layers (extracted from src/prof/ so neither depends on the
// other). The harness populates it from the builders' per-processor
// created-node bookkeeping after a run; the mapping reflects the final
// step's tree (node pools are reset and refilled deterministically each
// step, so earlier measured steps resolve to cells of the same role).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ptb {

class CellResolver {
 public:
  struct Cell {
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    std::int16_t depth = 0;
    std::int16_t octant = 0;
  };

  void add(const void* base, std::size_t bytes, int depth, int octant);
  void finalize();  // sort; call once after the last add()
  /// nullptr when the address is not inside a known cell (lock-table
  /// buckets, body arrays, counters).
  const Cell* resolve(const void* addr) const;
  bool empty() const { return cells_.empty(); }

 private:
  std::vector<Cell> cells_;
  bool finalized_ = false;
};

/// "other" for nullptr, "root" for depth 0, else "d<depth>.o<octant>".
std::string cell_name(const CellResolver::Cell* c);

}  // namespace ptb
