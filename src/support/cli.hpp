// Minimal command-line flag parser shared by benches and examples.
//
// Supports --flag=value, --flag value, and boolean --flag forms. Unknown
// flags are an error so that typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ptb {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Declare a flag with a default; returns the parsed value.
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help);
  std::int64_t get_int(const std::string& name, std::int64_t def, const std::string& help);
  double get_double(const std::string& name, double def, const std::string& help);
  bool get_bool(const std::string& name, bool def, const std::string& help);

  /// Parse a comma-separated list of integers, e.g. "8192,16384,65536".
  std::vector<std::int64_t> get_int_list(const std::string& name, const std::string& def,
                                         const std::string& help);

  /// Free-form text printed after the flag list on --help (environment
  /// variables, exit-code contract, examples). May be called repeatedly;
  /// blocks are printed in call order.
  void epilogue(std::string text);

  /// Call after all get_* declarations. Prints usage and exits on --help;
  /// aborts on unknown flags.
  void finish();

  const std::string& program() const { return program_; }

 private:
  struct HelpEntry {
    std::string name;
    std::string def;
    std::string help;
  };

  std::string program_;
  std::map<std::string, std::string> args_;   // raw --name -> value
  std::map<std::string, bool> consumed_;
  std::vector<HelpEntry> help_;
  std::string epilogue_;
  bool want_help_ = false;
};

}  // namespace ptb
