#include "support/table.hpp"

#include <cstdio>
#include <sstream>

namespace ptb {

void Table::set_header(std::vector<std::string> cols) { header_ = std::move(cols); }

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size())
        out << std::string(widths[i] - row[i].size() + 2, ' ');
    }
    out << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void Table::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace ptb
