// Lightweight assertion macros used across the library.
//
// PTB_CHECK fires in every build type (these guard invariants whose violation
// would silently corrupt a simulation result); PTB_DCHECK compiles away in
// NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ptb::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PTB_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace ptb::detail

#define PTB_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::ptb::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PTB_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) ::ptb::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define PTB_DCHECK(expr) ((void)0)
#else
#define PTB_DCHECK(expr) PTB_CHECK(expr)
#endif
