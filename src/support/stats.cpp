#include "support/stats.hpp"

#include "support/check.hpp"

namespace ptb {

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  PTB_CHECK(buckets > 0);
  PTB_CHECK(hi > lo);
  counts_.assign(static_cast<std::size_t>(buckets), 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(frac * static_cast<double>(counts_.size()));
  idx = std::max(0l, std::min(idx, static_cast<long>(counts_.size()) - 1));
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

double imbalance_factor(const std::vector<double>& per_proc) {
  if (per_proc.empty()) return 1.0;
  double sum = 0.0;
  double mx = 0.0;
  for (double v : per_proc) {
    sum += v;
    mx = std::max(mx, v);
  }
  const double mean = sum / static_cast<double>(per_proc.size());
  return mean > 0.0 ? mx / mean : 1.0;
}

}  // namespace ptb
