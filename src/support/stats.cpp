#include "support/stats.hpp"

#include <bit>

#include "support/check.hpp"

namespace ptb {

namespace {

int bucket_of(double x) {
  if (!(x >= 1.0)) return 0;  // [0,1) and any NaN/negative garbage
  const double capped = std::min(x, 9.2e18);  // below 2^63
  const int b = std::bit_width(static_cast<std::uint64_t>(capped));
  return std::min(b, Distribution::kBuckets - 1);
}

}  // namespace

void Distribution::add(double x) {
  stat_.add(x);
  ++buckets_[static_cast<std::size_t>(bucket_of(x))];
}

void Distribution::merge(const Distribution& o) {
  stat_.merge(o.stat_);
  for (int i = 0; i < kBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] += o.buckets_[static_cast<std::size_t>(i)];
}

double Distribution::quantile(double q) const {
  const std::uint64_t n = stat_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const double c = static_cast<double>(buckets_[static_cast<std::size_t>(i)]);
    if (cum + c >= target && c > 0.0) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      const double frac = (target - cum) / c;
      return std::clamp(lo + frac * (hi - lo), stat_.min(), stat_.max());
    }
    cum += c;
  }
  return stat_.max();
}

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  PTB_CHECK(buckets > 0);
  PTB_CHECK(hi > lo);
  counts_.assign(static_cast<std::size_t>(buckets), 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(frac * static_cast<double>(counts_.size()));
  idx = std::max(0l, std::min(idx, static_cast<long>(counts_.size()) - 1));
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

double imbalance_factor(const std::vector<double>& per_proc) {
  if (per_proc.empty()) return 1.0;
  double sum = 0.0;
  double mx = 0.0;
  for (double v : per_proc) {
    sum += v;
    mx = std::max(mx, v);
  }
  const double mean = sum / static_cast<double>(per_proc.size());
  return mean > 0.0 ? mx / mean : 1.0;
}

}  // namespace ptb
