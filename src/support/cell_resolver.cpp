#include "support/cell_resolver.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace ptb {

void CellResolver::add(const void* base, std::size_t bytes, int depth, int octant) {
  PTB_CHECK(!finalized_);
  Cell c;
  c.begin = reinterpret_cast<std::uintptr_t>(base);
  c.end = c.begin + bytes;
  c.depth = static_cast<std::int16_t>(depth);
  c.octant = static_cast<std::int16_t>(octant);
  cells_.push_back(c);
}

void CellResolver::finalize() {
  std::sort(cells_.begin(), cells_.end(),
            [](const Cell& a, const Cell& b) { return a.begin < b.begin; });
  finalized_ = true;
}

const CellResolver::Cell* CellResolver::resolve(const void* addr) const {
  PTB_CHECK(finalized_);
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  auto it = std::upper_bound(cells_.begin(), cells_.end(), a,
                             [](std::uintptr_t x, const Cell& c) { return x < c.begin; });
  if (it == cells_.begin()) return nullptr;
  --it;
  return a < it->end ? &*it : nullptr;
}

std::string cell_name(const CellResolver::Cell* c) {
  if (c == nullptr) return "other";
  if (c->depth == 0) return "root";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "d%d.o%d", static_cast<int>(c->depth),
                static_cast<int>(c->octant));
  return buf;
}

}  // namespace ptb
