// Small statistics accumulators used by the simulator and the benches.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ptb {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Folds another accumulator in (Chan et al. parallel update), as if every
  /// sample of `o` had been add()ed here.
  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const std::uint64_t n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    n_ = n;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Streaming distribution of nonnegative samples (wait times in ns): a
/// Welford summary plus fixed power-of-two buckets, so mean/max are exact and
/// quantiles are available without storing samples. Bucket i >= 1 covers
/// [2^(i-1), 2^i); bucket 0 covers [0, 1). Default-constructible and POD-ish
/// on purpose — it lives inside the per-processor hot-path stats structs.
class Distribution {
 public:
  void add(double x);
  void merge(const Distribution& o);

  const RunningStat& stat() const { return stat_; }
  std::uint64_t count() const { return stat_.count(); }

  /// Approximate quantile (q in [0, 1]): linear interpolation inside the
  /// containing power-of-two bucket, clamped to the observed [min, max].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  static constexpr int kBuckets = 64;

  void reset() { *this = Distribution{}; }

 private:
  RunningStat stat_;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket. Used to report per-processor distributions (e.g. the
/// paper's Figure 15 lock-count-per-processor plots).
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void add(double x);
  std::uint64_t bucket_count(int i) const { return counts_.at(static_cast<std::size_t>(i)); }
  int buckets() const { return static_cast<int>(counts_.size()); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Load-imbalance factor of a set of per-processor quantities:
/// max / mean. 1.0 is perfectly balanced.
double imbalance_factor(const std::vector<double>& per_proc);

}  // namespace ptb
