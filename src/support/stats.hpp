// Small statistics accumulators used by the simulator and the benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ptb {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket. Used to report per-processor distributions (e.g. the
/// paper's Figure 15 lock-count-per-processor plots).
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void add(double x);
  std::uint64_t bucket_count(int i) const { return counts_.at(static_cast<std::size_t>(i)); }
  int buckets() const { return static_cast<int>(counts_.size()); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Load-imbalance factor of a set of per-processor quantities:
/// max / mean. 1.0 is perfectly balanced.
double imbalance_factor(const std::vector<double>& per_proc);

}  // namespace ptb
