// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (galaxy generators, test fixtures,
// synthetic workloads) draw from these generators so that every run of every
// experiment is bit-reproducible given its seed. We deliberately avoid
// std::mt19937 + std::uniform_real_distribution because their outputs are not
// guaranteed identical across standard library implementations.
#pragma once

#include <cmath>
#include <cstdint>

namespace ptb {

/// SplitMix64: used to seed and to derive independent streams.
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

/// xoshiro256** — fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's bounded rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      std::uint64_t t = -n % n;
      while (lo < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double next_normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ptb
