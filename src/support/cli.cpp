#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/check.hpp"

namespace ptb {

Cli::Cli(int argc, char** argv) : program_(argc > 0 ? argv[0] : "ptb") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      want_help_ = true;
      continue;
    }
    PTB_CHECK_MSG(arg.rfind("--", 0) == 0, "flags must start with --");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      args_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args_[arg] = argv[++i];
    } else {
      args_[arg] = "true";  // bare boolean flag
    }
  }
}

std::string Cli::get_string(const std::string& name, const std::string& def,
                            const std::string& help) {
  help_.push_back({name, def, help});
  auto it = args_.find(name);
  if (it == args_.end()) return def;
  consumed_[name] = true;
  return it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def, const std::string& help) {
  const std::string v = get_string(name, std::to_string(def), help);
  return std::strtoll(v.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def, const std::string& help) {
  const std::string v = get_string(name, std::to_string(def), help);
  return std::strtod(v.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def, const std::string& help) {
  const std::string v = get_string(name, def ? "true" : "false", help);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name, const std::string& def,
                                            const std::string& help) {
  const std::string v = get_string(name, def, help);
  std::vector<std::int64_t> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out;
}

void Cli::epilogue(std::string text) {
  if (!epilogue_.empty()) epilogue_ += "\n";
  epilogue_ += std::move(text);
}

void Cli::finish() {
  if (want_help_) {
    std::printf("Usage: %s [flags]\n", program_.c_str());
    for (const auto& h : help_) {
      std::printf("  --%-20s (default: %s) %s\n", h.name.c_str(), h.def.c_str(),
                  h.help.c_str());
    }
    if (!epilogue_.empty()) std::printf("\n%s\n", epilogue_.c_str());
    std::exit(0);
  }
  for (const auto& [name, value] : args_) {
    (void)value;
    if (!consumed_.count(name)) {
      std::fprintf(stderr, "unknown flag: --%s (try --help)\n", name.c_str());
      std::exit(2);
    }
  }
}

}  // namespace ptb
