// Build/run provenance stamping shared by every JSON report writer
// (write_profile_json, write_sight_json, write_anatomy_json, bench --json).
// One copy of the PTB_GIT_SHA / PTB_BUILD_TYPE plumbing so the stamp format
// cannot drift between report kinds.
#pragma once

#include <cstdio>
#include <string>

namespace ptb::support {

/// Git SHA the binary was built from (top-level CMakeLists stamps it as a
/// global compile definition; "unknown" outside a CMake build).
const char* git_sha();

/// CMake build type ("RelWithDebInfo", "Debug", ...; "unknown" otherwise).
const char* build_type();

/// Run identity for reports that describe one simulated configuration.
struct RunProvenance {
  std::string platform;
  std::string algorithm;
  int nbodies = 0;
  int nprocs = 0;
};

/// Writes `{"git_sha": ..., "build_type": ..., "platform": ..., ...}` —
/// the object only, no surrounding key, comma or newline. The run fields
/// are omitted when `run` is null (reports with no single configuration).
void write_provenance_json(std::FILE* f, const RunProvenance* run);

}  // namespace ptb::support
