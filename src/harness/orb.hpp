// Orthogonal Recursive Bisection partitioning (Salmon [4]), the partitioning
// technique of the message-passing N-body world, as an alternative to
// costzones [3]. The paper's lineage (Singh et al.) found costzones both
// simpler and faster on shared-memory machines; the ORB implementation here
// lets the benches reproduce that comparison.
//
// The bisection is computed REPLICATED on every processor (deterministic and
// synchronization-free, like SPACE's counting rounds): each processor sorts
// the same body set, derives the same P boxes, and claims the bodies of its
// own box. Cost-weighted: splits equalize measured body cost, not count.
#pragma once

#include <algorithm>
#include <numeric>

#include "harness/state.hpp"
#include "treebuild/annotate.hpp"

namespace ptb {
namespace detail {

struct OrbItem {
  double key = 0.0;    // coordinate along the split axis
  double cost = 0.0;
  std::int32_t body = 0;
};

/// Recursively assigns `items[first, last)` to processors [p0, p0+nproc).
/// Splits along the widest axis of the current body subset at the
/// cost-weighted median, with processor counts divided proportionally.
template <class RT>
void orb_split(RT& rt, AppState& st, std::vector<std::int32_t>& items, std::size_t first,
               std::size_t last, int p0, int nproc, int self) {
  if (nproc == 1) {
    if (p0 == self) {
      // Claim this box: identical bookkeeping to the costzones claim.
      auto& zone = st.partition[static_cast<std::size_t>(p0)];
      const std::int32_t chunk = st.arena_chunk();
      for (std::size_t k = first; k < last; ++k) {
        const std::int32_t bi = items[k];
        Body& b = st.bodies[static_cast<std::size_t>(bi)];
        b.proc = p0;
        st.body_slot[static_cast<std::size_t>(bi)] =
            static_cast<std::int32_t>(p0) * chunk +
            std::min(static_cast<std::int32_t>(zone.size()), chunk - 1);
        zone.push_back(bi);
        rt.write(st.body_charge(bi), sizeof(Body));
      }
    }
    return;
  }

  if (last - first < 2) {
    // Degenerate: fewer bodies than processors; give what's left to p0.
    orb_split(rt, st, items, first, last, p0, 1, self);
    return;
  }

  // Widest axis of this subset's bounding box (read_shared-only stretch:
  // batch arena-consecutive charge runs).
  Vec3 lo{1e300, 1e300, 1e300}, hi{-1e300, -1e300, -1e300};
  double total_cost = 0.0;
  annotate::read_bodies_spanned(rt, st, items.data() + first, last - first, 32,
                                /*skip=*/-1, [&](std::int32_t bi) {
                                  const Body& b = st.bodies[static_cast<std::size_t>(bi)];
                                  for (int d = 0; d < 3; ++d) {
                                    lo[d] = std::min(lo[d], b.pos[d]);
                                    hi[d] = std::max(hi[d], b.pos[d]);
                                  }
                                  total_cost += std::max(1.0, b.cost);
                                });
  int axis = 0;
  for (int d = 1; d < 3; ++d)
    if (hi[d] - lo[d] > hi[axis] - lo[axis]) axis = d;

  // Sort the subset along the axis (ties broken by stable body id) and find
  // the cost-weighted split matching the processor split.
  const int left_procs = nproc / 2;
  const double want = total_cost * static_cast<double>(left_procs) / nproc;
  std::sort(items.begin() + static_cast<std::ptrdiff_t>(first),
            items.begin() + static_cast<std::ptrdiff_t>(last),
            [&](std::int32_t a, std::int32_t b) {
              const double ka = st.bodies[static_cast<std::size_t>(a)].pos[axis];
              const double kb = st.bodies[static_cast<std::size_t>(b)].pos[axis];
              if (ka != kb) return ka < kb;
              return st.bodies[static_cast<std::size_t>(a)].id <
                     st.bodies[static_cast<std::size_t>(b)].id;
            });
  rt.compute(static_cast<double>(last - first) * 4.0);  // sort pass share

  std::size_t mid = first;
  double acc = 0.0;
  while (mid < last && acc < want)
    acc += std::max(1.0, st.bodies[static_cast<std::size_t>(items[mid++])].cost);
  // Keep at least one body per side (last - first >= 2 here).
  mid = std::clamp(mid, first + 1, last - 1);

  orb_split(rt, st, items, first, mid, p0, left_procs, self);
  orb_split(rt, st, items, mid, last, p0 + left_procs, nproc - left_procs, self);
}

}  // namespace detail

/// Drop-in replacement for partition_phase() using ORB. Ends on a barrier.
template <class RT>
void partition_orb_phase(RT& rt, AppState& st) {
  const int p = rt.self();
  st.partition[static_cast<std::size_t>(p)].clear();
  // Replicated bisection: every processor derives the identical boxes.
  std::vector<std::int32_t> items(static_cast<std::size_t>(st.cfg.n));
  std::iota(items.begin(), items.end(), 0);
  detail::orb_split(rt, st, items, 0, items.size(), 0, rt.nprocs(), p);
  rt.barrier();
}

}  // namespace ptb
