// High-level experiment API used by every bench binary: run one
// (platform, algorithm, n, nprocs) configuration on the simulator and report
// the numbers the paper's tables and figures are built from.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/app.hpp"
#include "mem/model.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/types.hpp"

namespace ptb {

struct ExperimentSpec {
  std::string platform = "origin2000";
  Algorithm algorithm = Algorithm::kLocal;
  int n = 16384;
  int nprocs = 16;
  int warmup_steps = 2;
  int measured_steps = 2;
  /// Scheduler backend of the simulator (fibers by default; threads is the
  /// cross-check backend — both produce bit-identical results).
  SimBackend backend = default_sim_backend();
  BHConfig bh;  // n is overwritten from `n`
};

struct ExperimentResult {
  // Whole application (measured steps).
  double seq_seconds = 0.0;
  double par_seconds = 0.0;
  double speedup = 0.0;
  // Tree-building phase.
  double treebuild_seconds = 0.0;
  double treebuild_seq_seconds = 0.0;
  double treebuild_speedup = 0.0;
  double treebuild_fraction = 0.0;  // of total parallel time
  // Synchronization.
  double barrier_wait_seconds_avg = 0.0;  // mean per-processor barrier wait
  double lock_wait_seconds_avg = 0.0;
  std::vector<std::uint64_t> treebuild_locks_per_proc;
  std::uint64_t treebuild_locks_total = 0;
  // Memory-system event totals.
  MemProcStats mem;
  // Full per-phase breakdown.
  RunResult run;
};

/// Runs experiments, caching the sequential baselines per (platform, BH
/// parameters) so that sweeps over the five algorithms share one baseline.
class ExperimentRunner {
 public:
  ExperimentResult run(const ExperimentSpec& spec);

  /// The sequential baseline alone (paper Table 1).
  double sequential_seconds(const std::string& platform, int n, const BHConfig& bh,
                            int warmup_steps = 2, int measured_steps = 2);

 private:
  struct Baseline {
    double total_s = 0.0;
    double treebuild_s = 0.0;
  };
  Baseline baseline(const ExperimentSpec& spec);

  std::map<std::string, Baseline> baseline_cache_;
};

}  // namespace ptb
