// High-level experiment API used by every bench binary: run one
// (platform, algorithm, n, nprocs) configuration on the simulator and report
// the numbers the paper's tables and figures are built from.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "anatomy/anatomy.hpp"
#include "harness/app.hpp"
#include "mem/model.hpp"
#include "prof/profile.hpp"
#include "race/race.hpp"
#include "sight/sight.hpp"
#include "sim/sim_rt.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "treebuild/types.hpp"

namespace ptb {

struct ExperimentSpec {
  std::string platform = "origin2000";
  Algorithm algorithm = Algorithm::kLocal;
  int n = 16384;
  int nprocs = 16;
  int warmup_steps = 2;
  int measured_steps = 2;
  /// Scheduler backend of the simulator (fibers by default; threads and
  /// parallel are cross-check backends — all produce bit-identical results).
  SimBackend backend = default_sim_backend();
  /// Host worker threads for SimBackend::kParallel's unordered-section pool
  /// (0 = default_sim_workers(); ignored by the other backends).
  int sim_workers = 0;
  /// Optional event tracer attached to the parallel run (never the
  /// sequential baseline). Must outlive the run; null = tracing off.
  trace::Tracer* tracer = nullptr;
  /// Run the parallel build under the data-race detector (--race). PTB_RACE
  /// in the environment enables it regardless of this flag. Virtual times
  /// are unchanged; ExperimentResult::race carries the findings.
  bool race = false;
  /// Capture the run's dependency graph for critical-path / what-if
  /// profiling (--prof / PTB_PROF). Virtual times are unchanged;
  /// ExperimentResult::profile carries the analyses.
  bool prof = false;
  /// Observe every shared access for sharing-pattern classification,
  /// false-sharing detection and working-set attribution (--sight /
  /// PTB_SIGHT). Virtual times are unchanged; ExperimentResult::sight
  /// carries the report.
  bool sight = false;
  /// Classify every virtual cycle of every processor into the speedup-loss
  /// ledger (--anatomy / PTB_ANATOMY). Virtual times are unchanged;
  /// ExperimentResult::anatomy carries the ledger.
  bool anatomy = false;
  BHConfig bh;  // n is overwritten from `n`
};

/// Per-event wait-time statistics (merged over all processors).
struct WaitSummary {
  std::uint64_t events = 0;
  double mean_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

struct ExperimentResult {
  // Whole application (measured steps).
  double seq_seconds = 0.0;
  double par_seconds = 0.0;
  double speedup = 0.0;
  // Tree-building phase.
  double treebuild_seconds = 0.0;
  double treebuild_seq_seconds = 0.0;
  double treebuild_speedup = 0.0;
  double treebuild_fraction = 0.0;  // of total parallel time
  // Synchronization.
  double barrier_wait_seconds_avg = 0.0;  // mean per-processor barrier wait
  double lock_wait_seconds_avg = 0.0;
  WaitSummary lock_wait;     // per contended acquisition
  WaitSummary barrier_wait;  // per barrier episode
  std::vector<std::uint64_t> treebuild_locks_per_proc;
  std::uint64_t treebuild_locks_total = 0;
  // Memory-system event totals.
  MemProcStats mem;
  /// Data-race detector findings (enabled == false unless the run was under
  /// --race / PTB_RACE).
  race::RaceReport race;
  /// Critical-path / contention / what-if profile (enabled == false unless
  /// the run was under --prof / PTB_PROF).
  prof::Profile profile;
  /// Sharing-pattern / false-sharing / working-set report (enabled == false
  /// unless the run was under --sight / PTB_SIGHT).
  sight::SightReport sight;
  /// Exact per-cycle speedup-loss ledger (enabled == false unless the run
  /// was under --anatomy / PTB_ANATOMY).
  anatomy::Ledger anatomy;
  // Full per-phase breakdown.
  RunResult run;
  /// Every scalar above is derived from this registry (the single source of
  /// post-run measurements); benches query it for anything not pre-digested.
  trace::MetricsRegistry metrics;
};

/// Populates `reg` from a run's per-processor accumulators: time.*, sync.*
/// per (proc, phase) and mem.* per proc (when `mem` is non-null). The one
/// place runtime accumulators are named into the metric schema.
void ingest_run_metrics(trace::MetricsRegistry& reg, const std::vector<ProcStats>& stats,
                        const MemModel* mem);

/// Condenses a merged wait distribution into events/mean/max/p95 seconds.
WaitSummary wait_summary(const Distribution& d);

/// Runs experiments, caching the sequential baselines per (platform, BH
/// parameters) so that sweeps over the five algorithms share one baseline.
class ExperimentRunner {
 public:
  ExperimentResult run(const ExperimentSpec& spec);

  /// The sequential baseline alone (paper Table 1).
  double sequential_seconds(const std::string& platform, int n, const BHConfig& bh,
                            int warmup_steps = 2, int measured_steps = 2);

 private:
  struct Baseline {
    double total_s = 0.0;
    double treebuild_s = 0.0;
  };
  Baseline baseline(const ExperimentSpec& spec);

  std::map<std::string, Baseline> baseline_cache_;
};

}  // namespace ptb
