// Shared application state for the Barnes–Hut timestep pipeline.
//
// One AppState instance is shared by all (simulated or real) processors; the
// pieces that live in "the shared arena" of the paper's codes are registered
// with the memory model by the driver so the protocol models see them.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "bh/body.hpp"
#include "bh/config.hpp"
#include "bh/forcekernel.hpp"
#include "bh/node.hpp"
#include "bh/pool.hpp"
#include "support/aligned.hpp"

namespace ptb {

/// Per-processor scratch slots for global reductions (bounding box, max tree
/// level, total cost). Deliberately packed adjacently in one array — exactly
/// how ORIG keeps "frequently accessed variables together in shared arrays,
/// increasing the potential for false sharing" (paper §2.2); LOCAL-family
/// builders pad their way around it in the real codes, which we model by the
/// per-processor *pools* being the hot structures instead.
struct ReduceSlot {
  double min_v[3];
  double max_v[3];
  double sum;
  std::int64_t value;
};

/// Tree state shared by every builder. Page-aligned so the registered
/// "tree.globals" region (root + root_cube, the first members) starts on a
/// page boundary like every other shared region — the line/page grid must
/// not depend on where the enclosing AppState happens to live (DESIGN.md
/// decision 6).
struct alignas(kRegionAlignment) TreeShared {
  Node* root = nullptr;
  Cube root_cube;

  /// Per-processor lists of nodes created by that processor (the paper's
  /// "local arrays of cell pointers"); the moments phase walks these.
  std::vector<std::vector<Node*>> created;

  /// body index -> leaf currently holding it. Maintained by every builder;
  /// required by UPDATE, used by tests for all of them. Entries are atomic:
  /// they are published under a leaf's lock but read lock-free by the body's
  /// owner.
  AlignedArrayPtr<std::atomic<Node*>> body_leaf;
  int nbodies = 0;

  /// Reduction scratch, one slot per processor (shared region).
  AlignedVec<ReduceSlot> reduce;

  void init(int nprocs, int nbodies_in) {
    root = nullptr;
    created.assign(static_cast<std::size_t>(nprocs), {});
    for (auto& c : created) c.reserve(1024);
    nbodies = nbodies_in;
    body_leaf = make_aligned_array<std::atomic<Node*>>(static_cast<std::size_t>(nbodies_in));
    reduce.assign(static_cast<std::size_t>(nprocs), ReduceSlot{});
  }

  Node* leaf_of(std::int32_t bi) const {
    return body_leaf[static_cast<std::size_t>(bi)].load(std::memory_order_acquire);
  }
};

/// Backing storage for tree nodes. Owned by the AppState (NOT by the
/// builders) so a built tree remains valid after its builder is gone; each
/// builder initializes the layout it needs in its constructor (ORIG: the
/// single global pool; the others: one pool per processor).
struct TreeStorage {
  NodePool global;
  std::vector<NodePool> per_proc;
};

struct AppState {
  BHConfig cfg;
  int nprocs = 1;

  Bodies bodies;
  /// Force-calculation ownership: per-processor body index lists (the
  /// paper's "local arrays of body pointers"). Rewritten by costzones.
  std::vector<AlignedVec<std::int32_t>> partition;

  /// Migration shadow arena. The SPLASH-2 codes physically MOVE a body
  /// between per-processor arrays when it is reassigned (paper §2.2), so a
  /// processor's bodies are contiguous in its local memory. We keep body
  /// *indices* stable (the tree stores them) and instead model the layout:
  /// all body-data traffic is charged at a shadow address, contiguous per
  /// owner — body_slot[i] is body i's slot in the shadow arena, maintained by
  /// the partition phase exactly like the real migration.
  AlignedVec<Body> body_arena;
  std::vector<std::int32_t> body_slot;

  /// SPLASH-style ALOCK pool: when cfg.lock_buckets > 0, node locks are
  /// addresses inside this array (hashed), so distinct cells can contend on
  /// one lock. Empty when per-node locks are used.
  AlignedVec<char> lock_table;

  TreeShared tree;
  TreeStorage storage;

  /// Number of interactions each processor performed in the last force phase
  /// (diagnostics / load-balance reporting), plus the cell/body kind split
  /// (surfaced as forces.interactions{kind=...} metrics).
  std::vector<std::uint64_t> interactions;
  std::vector<std::uint64_t> interactions_cell;
  std::vector<std::uint64_t> interactions_body;

  /// Per-processor gather scratch for the batched force kernel. Host-side
  /// working memory, NOT a registered shared region: the simulated cost of
  /// an interaction is charged where its source operand lives (the tree
  /// node / the other body), exactly as in the scalar walk.
  std::vector<bh::InteractionList> force_ilist;

  /// Shadow-arena slots per processor (chunk size).
  std::int32_t arena_chunk() const {
    return static_cast<std::int32_t>((cfg.n + nprocs - 1) / nprocs);
  }
  /// Charge address for body i's data.
  const Body* body_charge(std::int32_t i) const {
    return body_arena.data() + body_slot[static_cast<std::size_t>(i)];
  }

  void init(Bodies b, int np) {
    nprocs = np;
    bodies = std::move(b);
    cfg.n = static_cast<int>(bodies.size());
    partition.assign(static_cast<std::size_t>(np), {});
    body_arena.resize(bodies.size());
    body_slot.assign(bodies.size(), 0);
    const std::int32_t chunk = arena_chunk();
    std::vector<std::int32_t> rank(static_cast<std::size_t>(np), 0);
    // Initial even assignment (paper §2.1: "for the first time step, the
    // particles are evenly assigned to processors").
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      const int p = static_cast<int>(i % static_cast<std::size_t>(np));
      bodies[i].proc = p;
      partition[static_cast<std::size_t>(p)].push_back(static_cast<std::int32_t>(i));
      body_slot[i] = static_cast<std::int32_t>(p) * chunk +
                     std::min(rank[static_cast<std::size_t>(p)]++, chunk - 1);
    }
    tree.init(np, cfg.n);
    storage.per_proc.resize(static_cast<std::size_t>(np));
    interactions.assign(static_cast<std::size_t>(np), 0);
    interactions_cell.assign(static_cast<std::size_t>(np), 0);
    interactions_body.assign(static_cast<std::size_t>(np), 0);
    force_ilist.assign(static_cast<std::size_t>(np), {});
    if (cfg.lock_buckets > 0)
      lock_table.assign(static_cast<std::size_t>(cfg.lock_buckets), 0);
  }

  /// Lock identity for a tree node: the node itself, or its ALOCK bucket.
  const void* node_lock(const Node* n) const {
    if (lock_table.empty()) return n;
    auto h = reinterpret_cast<std::uintptr_t>(n) / sizeof(Node);
    h ^= h >> 13;
    h *= 0x9e3779b97f4a7c15ull;
    return lock_table.data() + (h >> 32) % lock_table.size();
  }
};

/// Abstract work-unit charges (1 unit ≈ 1 inner-loop flop). These feed
/// RT::compute(); the platform's ns_per_work converts to virtual time.
namespace work {
inline constexpr double kBodyBodyInteraction = 60.0;
inline constexpr double kBodyCellInteraction = 60.0;
inline constexpr double kTraversalStep = 6.0;
// Insertion steps are pointer-chasing and branchy — far more cycles per
// useful flop than the force inner loop. Calibrated so the sequential tree
// build lands at the paper's "< 3%" of total time (paper §1).
inline constexpr double kDescendStep = 40.0;
inline constexpr double kInsertBody = 60.0;
inline constexpr double kSubdivide = 200.0;
inline constexpr double kMomentsPerChild = 12.0;
inline constexpr double kIntegrateBody = 35.0;
inline constexpr double kPartitionPerNode = 6.0;
inline constexpr double kBinBody = 8.0;
// RADIX builder: the sort/construct pipeline is streaming integer work, far
// cheaper per element than the pointer-chasing insertion steps above.
inline constexpr double kMortonKey = 12.0;     // quantize + 3x bit-spread
inline constexpr double kSortStep = 6.0;       // one histogram/scatter element
inline constexpr double kGatherBody = 4.0;     // one SoA position copy
inline constexpr double kCellFromKeys = 24.0;  // split a sorted range (8 searches)
inline constexpr double kLeafFromKeys = 8.0;   // emit one leaf from a key run
}  // namespace work

}  // namespace ptb
