// The phases of a Barnes–Hut time-step that are IDENTICAL across all five
// tree-building algorithms (paper: "the force calculation and update phases
// are the same in all cases"): the bottom-up center-of-mass pass, the
// costzones partitioner, the force computation and the leapfrog update.
#pragma once

#include <algorithm>

#include "bh/forcekernel.hpp"
#include "harness/state.hpp"
#include "support/check.hpp"
#include "trace/trace.hpp"
#include "treebuild/annotate.hpp"

namespace ptb {

// ---------------------------------------------------------------------------
// Moments (center of mass) — bottom-up, level by level; every processor
// computes the moments of the cells it created (paper §2.1).
// ---------------------------------------------------------------------------

namespace detail {

template <class RT>
void node_moments(RT& rt, AppState& st, Node* n) {
  Vec3 weighted{};
  double mass = 0.0;
  double cost = 0.0;
  if (n->is_leaf(std::memory_order_relaxed)) {
    rt.read(&n->nbodies, 8);
    for (int i = 0; i < n->nbodies; ++i) {
      const Body& b = st.bodies[static_cast<std::size_t>(n->bodies[i])];
      rt.read(st.body_charge(n->bodies[i]), 48);
      rt.compute(work::kMomentsPerChild);
      weighted += b.mass * b.pos;
      mass += b.mass;
      cost += std::max(1.0, b.cost);
    }
  } else {
    rt.read(&n->child[0], sizeof(Node*) * 8);
    for (int o = 0; o < 8; ++o) {
      const Node* c = n->get_child(o, std::memory_order_relaxed);
      if (c == nullptr) continue;
      rt.read(&c->com, 56);  // child's com/mass/cost
      rt.compute(work::kMomentsPerChild);
      weighted += c->mass * c->com;
      mass += c->mass;
      cost += c->cost;
    }
  }
  n->mass = mass;
  n->cost = cost;
  n->com = mass > 0.0 ? (1.0 / mass) * weighted : n->cube.center;
  rt.write(&n->com, 56);
}

}  // namespace detail

/// Level-synchronized bottom-up moments pass. Ends on a barrier.
template <class RT>
void moments_phase(RT& rt, AppState& st) {
  const auto pi = static_cast<std::size_t>(rt.self());

  // Reduce the global max level through the shared slots.
  std::int64_t local_max = 0;
  for (const Node* n : st.tree.created[pi])
    if (!n->dead && n->level > local_max) local_max = n->level;
  st.tree.reduce[pi].value = local_max;
  rt.write(&st.tree.reduce[pi].value, sizeof(std::int64_t));
  rt.barrier();
  std::int64_t gmax = 0;
  for (int q = 0; q < rt.nprocs(); ++q) {
    rt.read(&st.tree.reduce[static_cast<std::size_t>(q)].value, sizeof(std::int64_t));
    gmax = std::max(gmax, st.tree.reduce[static_cast<std::size_t>(q)].value);
  }

  // Bucket my nodes by level (host-side index; node traffic is charged where
  // nodes are read/written).
  std::vector<std::vector<Node*>> by_level(static_cast<std::size_t>(gmax) + 1);
  for (Node* n : st.tree.created[pi])
    if (!n->dead) by_level[n->level].push_back(n);

  for (std::int64_t lvl = gmax; lvl >= 0; --lvl) {
    for (Node* n : by_level[static_cast<std::size_t>(lvl)]) detail::node_moments(rt, st, n);
    rt.barrier();
  }
}

// ---------------------------------------------------------------------------
// Costzones partitioning (Singh et al.): split the in-order traversal of the
// tree into nprocs zones of equal cost; each processor walks the tree
// (read-only) and claims the bodies whose cumulative-cost midpoint falls in
// its zone.
// ---------------------------------------------------------------------------

namespace detail {

template <class RT>
void costzone_walk(RT& rt, AppState& st, Node* n, double base, double lo, double hi,
                   int p) {
  rt.read_shared(&n->cost, 8);
  rt.compute(work::kPartitionPerNode);
  if (base >= hi || base + n->cost <= lo) return;  // zone disjoint: prune
  if (n->is_leaf(std::memory_order_relaxed)) {
    double c = base;
    for (int i = 0; i < n->nbodies; ++i) {
      const std::int32_t bi = n->bodies[i];
      Body& b = st.bodies[static_cast<std::size_t>(bi)];
      rt.read_shared(st.body_charge(bi), 8);
      const double bc = std::max(1.0, b.cost);
      const double mid = c + 0.5 * bc;
      if (mid >= lo && mid < hi) {
        b.proc = p;
        // Claiming the body migrates it into this processor's slice of the
        // shadow arena (the SPLASH codes physically move the Body struct;
        // see AppState::body_arena) and pays for the copy.
        auto& zone = st.partition[static_cast<std::size_t>(p)];
        const std::int32_t chunk = st.arena_chunk();
        st.body_slot[static_cast<std::size_t>(bi)] =
            static_cast<std::int32_t>(p) * chunk +
            std::min(static_cast<std::int32_t>(zone.size()), chunk - 1);
        zone.push_back(bi);
        rt.write(st.body_charge(bi), sizeof(Body));
      }
      c += bc;
    }
    return;
  }
  double c = base;
  for (int o = 0; o < 8; ++o) {
    Node* ch = n->get_child(o, std::memory_order_relaxed);
    if (ch == nullptr) continue;
    rt.read_shared(&ch->cost, 8);
    costzone_walk(rt, st, ch, c, lo, hi, p);
    c += ch->cost;
  }
}

}  // namespace detail

/// Recomputes st.partition. Ends on a barrier.
template <class RT>
void partition_phase(RT& rt, AppState& st) {
  const int p = rt.self();
  const auto pi = static_cast<std::size_t>(p);
  Node* root = st.tree.root;
  rt.read(&st.tree.root, sizeof(Node*));
  rt.read_shared(&root->cost, 8);
  const double total = root->cost;
  const double lo = total * static_cast<double>(p) / rt.nprocs();
  const double hi = total * static_cast<double>(p + 1) / rt.nprocs();
  st.partition[pi].clear();
  detail::costzone_walk(rt, st, root, 0.0, lo, hi, p);
  rt.barrier();
}

// ---------------------------------------------------------------------------
// Force computation (Barnes–Hut walk with the s/d < theta opening criterion).
// ---------------------------------------------------------------------------

namespace detail {

inline Vec3 pair_accel(const Vec3& from, const Vec3& to, double mass, double eps2) {
  const Vec3 d = to - from;
  const double r2 = norm2(d) + eps2;
  const double inv = 1.0 / (r2 * std::sqrt(r2));
  return (mass * inv) * d;
}

/// Reference (PTB_FORCE_SLOWPATH=1) path: the classic in-walk accumulation.
/// Kept verbatim as the oracle for the gather/evaluate split below — same
/// memory charges, same compute total, same accumulation order.
template <class RT>
void force_walk(RT& rt, AppState& st, Node* n, const Vec3& pos, std::int32_t self_idx,
                double theta2, double eps2, Vec3& acc, std::uint64_t& cells,
                std::uint64_t& bodies) {
  rt.read_shared(n, 72);  // cube + com + mass
  rt.compute(work::kTraversalStep);
  if (n->is_leaf(std::memory_order_relaxed)) {
    // The leaf's claimed bodies are mostly arena-consecutive: batch their
    // charges (the whole walk is read_shared/compute-only, so the span
    // contract applies).
    annotate::read_bodies_spanned(
        rt, st, n->bodies, static_cast<std::size_t>(n->nbodies), 48, self_idx,
        [&](std::int32_t bj) {
          const Body& other = st.bodies[static_cast<std::size_t>(bj)];
          rt.compute(work::kBodyBodyInteraction);
          acc += pair_accel(pos, other.pos, other.mass, eps2);
          ++bodies;
        });
    return;
  }
  const Vec3 d = n->com - pos;
  const double side = 2.0 * n->cube.half;
  if (side * side < theta2 * norm2(d)) {
    // Far enough: the whole subtree is approximated by its center of mass.
    rt.compute(work::kBodyCellInteraction);
    acc += pair_accel(pos, n->com, n->mass, eps2);
    ++cells;
    return;
  }
  rt.read_shared(&n->child[0], sizeof(Node*) * 8);
  for (int o = 0; o < 8; ++o) {
    Node* c = n->get_child(o, std::memory_order_relaxed);
    if (c != nullptr) force_walk(rt, st, c, pos, self_idx, theta2, eps2, acc, cells, bodies);
  }
}

/// Fast-path gather: the SAME walk — every branch, every memory charge, in
/// the same order — but interaction partners go into the list instead of
/// being evaluated in place, and the per-interaction compute charges are
/// batched by the caller (compute_n; pending adds commute, docs/PERF.md).
template <class RT>
void gather_walk(RT& rt, AppState& st, Node* n, const Vec3& pos, std::int32_t self_idx,
                 double theta2, bh::InteractionList& il) {
  rt.read_shared(n, 72);  // cube + com + mass
  rt.compute(work::kTraversalStep);
  if (n->is_leaf(std::memory_order_relaxed)) {
    annotate::read_bodies_spanned(
        rt, st, n->bodies, static_cast<std::size_t>(n->nbodies), 48, self_idx,
        [&](std::int32_t bj) {
          const Body& other = st.bodies[static_cast<std::size_t>(bj)];
          il.push_body(other.pos, other.mass);
        });
    return;
  }
  const Vec3 d = n->com - pos;
  const double side = 2.0 * n->cube.half;
  if (side * side < theta2 * norm2(d)) {
    il.push_cell(n->com, n->mass);
    return;
  }
  rt.read_shared(&n->child[0], sizeof(Node*) * 8);
  for (int o = 0; o < 8; ++o) {
    Node* c = n->get_child(o, std::memory_order_relaxed);
    if (c != nullptr) gather_walk(rt, st, c, pos, self_idx, theta2, il);
  }
}

}  // namespace detail

/// Computes accelerations for this processor's bodies; stores each body's
/// interaction count as its cost for the next costzones pass. Ends on a
/// barrier in the driver (not here).
///
/// The whole per-body loop is one unordered section: it reads only the tree
/// and body data (read_shared) and writes only this processor's own bodies,
/// so the parallel backend may overlap processors for real. The ordered
/// write-back charges are deferred to a loop after the section — the store
/// buffer drains at the end of the walk, so to speak — which keeps the
/// section pure and charges exactly one ordered write of 32 bytes (acc +
/// cost) per body either way.
template <class RT>
void forces_phase(RT& rt, AppState& st) {
  const auto pi = static_cast<std::size_t>(rt.self());
  const double theta2 = st.cfg.theta * st.cfg.theta;
  const double eps2 = st.cfg.eps * st.cfg.eps;
  std::uint64_t cells = 0;
  std::uint64_t bodies = 0;
  Node* root = st.tree.root;
  const bool slow = bh::force_slowpath_enabled();
  bh::InteractionList& il = st.force_ilist[pi];
  trace::Tracer* const tr = rt.tracer();
  rt.unordered([&] {
    for (std::int32_t bi : st.partition[pi]) {
      Body& b = st.bodies[static_cast<std::size_t>(bi)];
      rt.read_shared(st.body_charge(bi), 48);
      Vec3 acc{};
      std::uint64_t nc = 0;
      std::uint64_t nb = 0;
      if (slow) {
        detail::force_walk(rt, st, root, b.pos, bi, theta2, eps2, acc, nc, nb);
      } else if (tr == nullptr) {
        il.clear();
        detail::gather_walk(rt, st, root, b.pos, bi, theta2, il);
        nc = il.cells();
        nb = il.bodies();
        rt.compute_n(work::kBodyCellInteraction, nc);
        rt.compute_n(work::kBodyBodyInteraction, nb);
        acc = bh::evaluate(il, b.pos, eps2);
      } else {
        // Traced: same work, bracketed into per-body gather/evaluate
        // sub-spans. The interaction compute is charged after the gather
        // timestamp so its cost lands in the evaluate span.
        il.clear();
        const std::uint64_t t0 = rt.trace_now();
        detail::gather_walk(rt, st, root, b.pos, bi, theta2, il);
        const std::uint64_t t1 = rt.trace_now();
        nc = il.cells();
        nb = il.bodies();
        rt.compute_n(work::kBodyCellInteraction, nc);
        rt.compute_n(work::kBodyBodyInteraction, nb);
        acc = bh::evaluate(il, b.pos, eps2);
        const std::uint64_t t2 = rt.trace_now();
        tr->span(rt.self(), trace::kCatPhase, "force-gather", t0, t1);
        tr->span(rt.self(), trace::kCatPhase, "force-evaluate", t1, t2);
      }
      b.acc = acc;
      b.cost = static_cast<double>(nc + nb);
      cells += nc;
      bodies += nb;
    }
  });
  for (std::int32_t bi : st.partition[pi]) rt.write(st.body_charge(bi), 32);
  st.interactions[pi] = cells + bodies;
  st.interactions_cell[pi] = cells;
  st.interactions_body[pi] = bodies;
}

// ---------------------------------------------------------------------------
// Update (leapfrog integration), as in SPLASH-2 BARNES.
// ---------------------------------------------------------------------------

template <class RT>
void integrate_phase(RT& rt, AppState& st) {
  const auto pi = static_cast<std::size_t>(rt.self());
  const double dt = st.cfg.dt;
  for (std::int32_t bi : st.partition[pi]) {
    Body& b = st.bodies[static_cast<std::size_t>(bi)];
    rt.read(st.body_charge(bi), 96);
    rt.compute(work::kIntegrateBody);
    b.vel += dt * b.acc;
    b.pos += dt * b.vel;
    rt.write(st.body_charge(bi), 96);
  }
}

}  // namespace ptb
