#include "harness/report.hpp"

#include <cstdio>

namespace ptb {

std::string fmt_speedup(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

std::string fmt_percent(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[32];
  if (s >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  return buf;
}

std::string summarize(const ExperimentSpec& spec, const ExperimentResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-13s %-8s n=%-7d p=%-3d seq=%s par=%s speedup=%s treebuild=%s",
                spec.platform.c_str(), algorithm_name(spec.algorithm), spec.n, spec.nprocs,
                fmt_seconds(r.seq_seconds).c_str(), fmt_seconds(r.par_seconds).c_str(),
                fmt_speedup(r.speedup).c_str(), fmt_percent(r.treebuild_fraction).c_str());
  return buf;
}

}  // namespace ptb
