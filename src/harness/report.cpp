#include "harness/report.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

#include "support/table.hpp"

namespace ptb {

std::string fmt_speedup(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

std::string fmt_percent(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[32];
  if (s >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  return buf;
}

Breakdown breakdown_from(const trace::MetricsRegistry& m, int nprocs) {
  Breakdown b;
  const double np = nprocs > 0 ? static_cast<double>(nprocs) : 1.0;
  for (int ph = 0; ph < kNumPhases; ++ph) {
    if (ph == static_cast<int>(Phase::kOther)) continue;  // warm-up
    const trace::Labels f{{"phase", phase_name(static_cast<Phase>(ph))}};
    b.total_s += m.sum("time.phase_ns", f);
    b.mem_stall_s += m.sum("time.mem_stall_ns", f);
    b.lock_wait_s += m.sum("sync.lock_wait_ns", f);
    b.barrier_wait_s += m.sum("sync.barrier_wait_ns", f);
  }
  b.total_s *= 1e-9 / np;
  b.mem_stall_s *= 1e-9 / np;
  b.lock_wait_s *= 1e-9 / np;
  b.barrier_wait_s *= 1e-9 / np;
  b.busy_s = b.total_s - b.mem_stall_s - b.lock_wait_s - b.barrier_wait_s;
  return b;
}

std::string fmt_breakdown(const Breakdown& b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "busy=%s mem=%s lock=%s barrier=%s",
                fmt_percent(b.frac(b.busy_s)).c_str(),
                fmt_percent(b.frac(b.mem_stall_s)).c_str(),
                fmt_percent(b.frac(b.lock_wait_s)).c_str(),
                fmt_percent(b.frac(b.barrier_wait_s)).c_str());
  return buf;
}

std::string fmt_wait(const WaitSummary& w) {
  if (w.events == 0) return "none";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "mean=%s p50=%s p95=%s p99=%s max=%s (x%llu)",
                fmt_seconds(w.mean_s).c_str(), fmt_seconds(w.p50_s).c_str(),
                fmt_seconds(w.p95_s).c_str(), fmt_seconds(w.p99_s).c_str(),
                fmt_seconds(w.max_s).c_str(),
                static_cast<unsigned long long>(w.events));
  return buf;
}

std::string summarize(const ExperimentSpec& spec, const ExperimentResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%-13s %-8s n=%-7d p=%-3d seq=%s par=%s speedup=%s treebuild=%s "
                "lockwait[%s] barwait[%s]",
                spec.platform.c_str(), algorithm_name(spec.algorithm), spec.n, spec.nprocs,
                fmt_seconds(r.seq_seconds).c_str(), fmt_seconds(r.par_seconds).c_str(),
                fmt_speedup(r.speedup).c_str(), fmt_percent(r.treebuild_fraction).c_str(),
                fmt_wait(r.lock_wait).c_str(), fmt_wait(r.barrier_wait).c_str());
  std::string line = buf;
  const double icell = r.metrics.sum("forces.interactions", {{"kind", "cell"}});
  const double ibody = r.metrics.sum("forces.interactions", {{"kind", "body"}});
  if (icell + ibody > 0.0) {
    std::snprintf(buf, sizeof(buf), " interactions[cell=%.0f body=%.0f]", icell, ibody);
    line += buf;
  }
  if (r.race.enabled) {
    std::snprintf(buf, sizeof(buf), " races=%llu",
                  static_cast<unsigned long long>(r.race.races));
    line += buf;
  }
  if (r.sight.enabled) {
    std::snprintf(buf, sizeof(buf), " sight[lines=%llu false-sharing=%zu/%llu]",
                  static_cast<unsigned long long>(r.sight.lines_observed),
                  r.sight.false_sharing.size(),
                  static_cast<unsigned long long>(r.sight.false_sharing_hits));
    line += buf;
  }
  return line;
}

void print_profile(const prof::Profile& p) {
  if (!p.enabled) return;
  const double total_s = p.elapsed_ns * 1e-9;
  const auto share = [&](std::uint64_t ns) {
    return fmt_percent(p.elapsed_ns > 0 ? static_cast<double>(ns) /
                                              static_cast<double>(p.elapsed_ns)
                                        : 0.0);
  };

  Table cp("critical path (longest dependent chain through virtual time)");
  cp.set_header({"entered via", "seconds", "share", "edges"});
  cp.add_row({"run start", fmt_seconds(p.cp.via_start_ns * 1e-9),
              share(p.cp.via_start_ns),
              std::to_string(p.cp.segments.empty() ? 0 : 1)});
  cp.add_row({"lock handoff", fmt_seconds(p.cp.via_lock_ns * 1e-9),
              share(p.cp.via_lock_ns), std::to_string(p.cp.lock_edges)});
  cp.add_row({"barrier release", fmt_seconds(p.cp.via_barrier_ns * 1e-9),
              share(p.cp.via_barrier_ns), std::to_string(p.cp.barrier_edges)});
  cp.add_row({"total", fmt_seconds(total_s), fmt_percent(1.0),
              std::to_string(p.cp.segments.size()) + " segs"});
  cp.print();

  Table byphase("critical path by phase");
  byphase.set_header({"phase", "seconds", "share", "via lock", "via barrier"});
  for (int ph = 0; ph < kNumPhases; ++ph) {
    const auto pi = static_cast<std::size_t>(ph);
    if (p.cp.phase_ns[pi] == 0) continue;
    byphase.add_row({phase_name(static_cast<Phase>(ph)),
                     fmt_seconds(p.cp.phase_ns[pi] * 1e-9), share(p.cp.phase_ns[pi]),
                     fmt_seconds(p.cp.phase_via_lock_ns[pi] * 1e-9),
                     fmt_seconds(p.cp.phase_via_barrier_ns[pi] * 1e-9)});
  }
  byphase.print();

  if (!p.locks.empty()) {
    Table locks("top contended locks (whole run)");
    locks.set_header(
        {"lock", "depth", "acquires", "contended", "wait", "cp edges", "cp time"});
    for (const prof::LockRow& lr : p.locks)
      locks.add_row({lr.name, lr.depth >= 0 ? std::to_string(lr.depth) : "-",
                     std::to_string(lr.acquires), std::to_string(lr.contended),
                     fmt_seconds(lr.wait_ns * 1e-9), std::to_string(lr.cp_edges),
                     fmt_seconds(lr.cp_ns * 1e-9)});
    locks.print();
  }

  if (!p.depth.empty()) {
    Table depth("contention by tree depth (measured tree-build phase)");
    depth.set_header({"depth", "acquires", "contended", "lock wait", "remote misses",
                      "invalidations", "mem stall"});
    for (const prof::DepthRow& dr : p.depth)
      depth.add_row({dr.depth >= 0 ? std::to_string(dr.depth) : "other",
                     std::to_string(dr.acquires), std::to_string(dr.contended),
                     fmt_seconds(dr.lock_wait_ns * 1e-9),
                     std::to_string(dr.remote_misses),
                     std::to_string(dr.invalidations),
                     fmt_seconds(dr.mem_stall_ns * 1e-9)});
    depth.print();
  }

  if (!p.whatifs.empty()) {
    Table wi("causal what-if predictions (lower-bound estimates)");
    wi.set_header({"scenario", "predicted", "speedup"});
    for (const prof::WhatIf& w : p.whatifs)
      wi.add_row({prof::scenario_name(w.scenario), fmt_seconds(w.predicted_ns * 1e-9),
                  fmt_speedup(w.speedup)});
    wi.print();
  }
}

void print_sight(const sight::SightReport& r) {
  if (!r.enabled) return;
  using ClassRow = std::array<std::uint64_t, sight::kNumClasses>;
  // Shared-class columns (kUntouched never appears in report rows).
  static constexpr sight::LineClass kCols[] = {
      sight::LineClass::kPrivate,        sight::LineClass::kReadShared,
      sight::LineClass::kProducerConsumer, sight::LineClass::kMigratory,
      sight::LineClass::kPingPong,
  };
  const auto class_cells = [&](const ClassRow& row, std::vector<std::string>& out) {
    std::uint64_t total = 0;
    for (sight::LineClass c : kCols) {
      const std::uint64_t v = row[static_cast<std::size_t>(c)];
      total += v;
      out.push_back(v > 0 ? std::to_string(v) : "-");
    }
    out.push_back(std::to_string(total));
  };

  // Whole-run classification per (scope, depth): the per-depth sharing
  // heatmap — tree-cell lines keyed by depth, everything else by region.
  std::map<std::pair<std::string, int>, ClassRow> scopes;
  std::map<int, ClassRow> phases;
  for (const sight::ClassCell& c : r.classes) {
    if (c.phase == -1)
      scopes[{c.scope, c.depth}][static_cast<std::size_t>(c.cls)] += c.lines;
    else
      phases[c.phase][static_cast<std::size_t>(c.cls)] += c.lines;
  }

  Table byscope("sharing classification by data structure (whole run, 64B lines)");
  byscope.set_header({"scope", "depth", "private", "read-shared", "prod-cons",
                      "migratory", "ping-pong", "lines"});
  for (const auto& [key, row] : scopes) {
    std::vector<std::string> cells{key.first,
                                   key.second >= 0 ? std::to_string(key.second) : "-"};
    class_cells(row, cells);
    byscope.add_row(cells);
  }
  byscope.print();

  Table byphase("sharing classification by phase (lines touched in phase)");
  byphase.set_header({"phase", "private", "read-shared", "prod-cons", "migratory",
                      "ping-pong", "lines"});
  for (const auto& [ph, row] : phases) {
    std::vector<std::string> cells{phase_name(static_cast<Phase>(ph))};
    class_cells(row, cells);
    byphase.add_row(cells);
  }
  byphase.print();

  if (!r.false_sharing.empty()) {
    Table fs("false sharing: distinct objects written by distinct procs within " +
             std::to_string(r.window_ns) + "ns");
    fs.set_header({"region", "line", "cell", "objects", "procs", "hits"});
    const std::size_t shown = std::min<std::size_t>(r.false_sharing.size(), 16);
    for (std::size_t i = 0; i < shown; ++i) {
      const sight::Finding& f = r.false_sharing[i];
      fs.add_row({f.region, std::to_string(f.line), f.cell.empty() ? "-" : f.cell,
                  std::to_string(f.objects.size()), std::to_string(f.procs.size()),
                  std::to_string(f.hits)});
    }
    fs.print();
    if (shown < r.false_sharing.size())
      std::printf("  ... and %zu more falsely-shared lines\n",
                  r.false_sharing.size() - shown);
  } else {
    std::printf("no false sharing detected (window %lluns)\n",
                static_cast<unsigned long long>(r.window_ns));
  }

  if (!r.working_set.empty()) {
    // Aggregate per phase: the working set is a per-processor notion, so show
    // the per-processor max alongside merged reuse-distance quantiles.
    std::map<int, std::pair<std::uint64_t, std::uint64_t>> ws;  // max lines, cold
    std::map<int, Distribution> reuse;
    for (const sight::WorkingSetRow& w : r.working_set) {
      auto& [mx, cold] = ws[w.phase];
      mx = std::max(mx, w.distinct_lines);
      cold += w.cold;
      reuse[w.phase].merge(w.reuse);
    }
    Table t("working set by phase (64B lines; distinct = max over procs)");
    t.set_header({"phase", "distinct lines", "cold", "reuse p50", "reuse p95", "samples"});
    for (const auto& [ph, v] : ws) {
      const Distribution& d = reuse[ph];
      t.add_row({phase_name(static_cast<Phase>(ph)), std::to_string(v.first),
                 std::to_string(v.second),
                 d.count() > 0 ? Table::num(d.p50(), 0) : "-",
                 d.count() > 0 ? Table::num(d.p95(), 0) : "-",
                 std::to_string(d.count())});
    }
    t.print();
  }
}

void print_anatomy(const anatomy::Ledger& led) {
  if (!led.enabled) return;
  const double pt = static_cast<double>(led.nprocs) * led.total_ns;
  const auto share = [&](double ns) { return fmt_percent(pt > 0.0 ? ns / pt : 0.0); };

  Table totals("anatomy ledger: every cycle of every processor, p*T_p total");
  totals.set_header({"category", "seconds", "share"});
  for (int c = 0; c < anatomy::kNumCategories; ++c) {
    const auto cat = static_cast<anatomy::Category>(c);
    const double ns = led.category_ns(cat);
    totals.add_row({anatomy::category_name(cat), fmt_seconds(ns * 1e-9), share(ns)});
  }
  totals.add_row({"imbalance (barrier+skew)", fmt_seconds(led.imbalance_ns() * 1e-9),
                  share(led.imbalance_ns())});
  totals.add_row({"p * T_p", fmt_seconds(pt * 1e-9), fmt_percent(1.0)});
  totals.print();

  Table grid("anatomy ledger by phase (seconds, summed over processors)");
  grid.set_header({"phase", "busy", "mem local", "mem remote", "lock", "barrier",
                   "skew", "p * phase"});
  for (int ph = 0; ph < kNumPhases; ++ph) {
    if (ph == static_cast<int>(Phase::kOther)) continue;
    const auto phase = static_cast<Phase>(ph);
    if (led.phase_ns[static_cast<std::size_t>(ph)] == 0.0) continue;
    std::vector<std::string> cells{phase_name(phase)};
    for (int c = 0; c < anatomy::kNumCategories; ++c)
      cells.push_back(fmt_seconds(
          led.phase_category_ns(phase, static_cast<anatomy::Category>(c)) * 1e-9));
    cells.push_back(fmt_seconds(static_cast<double>(led.nprocs) *
                                led.phase_ns[static_cast<std::size_t>(ph)] * 1e-9));
    grid.add_row(cells);
  }
  grid.print();
}

void print_waterfall(const anatomy::Waterfall& w) {
  if (!w.enabled) return;
  Table t("speedup-loss waterfall: p*T_p - T_1 = " + fmt_seconds(w.loss_ns * 1e-9) +
          " attributed per category (p=" + std::to_string(w.procs) + ")");
  t.set_header({"category", "delta seconds", "share of loss"});
  for (int c = 0; c < anatomy::kNumCategories; ++c) {
    const auto cat = static_cast<anatomy::Category>(c);
    const double d = w.delta[static_cast<std::size_t>(c)];
    t.add_row({anatomy::category_name(cat), fmt_seconds(d * 1e-9),
               fmt_percent(w.loss_ns != 0.0 ? d / w.loss_ns : 0.0)});
  }
  t.add_row({"total loss", fmt_seconds(w.loss_ns * 1e-9), fmt_percent(1.0)});
  t.print();
}

}  // namespace ptb
