#include "harness/report.hpp"

#include <cstdio>

namespace ptb {

std::string fmt_speedup(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

std::string fmt_percent(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[32];
  if (s >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  return buf;
}

Breakdown breakdown_from(const trace::MetricsRegistry& m, int nprocs) {
  Breakdown b;
  const double np = nprocs > 0 ? static_cast<double>(nprocs) : 1.0;
  for (int ph = 0; ph < kNumPhases; ++ph) {
    if (ph == static_cast<int>(Phase::kOther)) continue;  // warm-up
    const trace::Labels f{{"phase", phase_name(static_cast<Phase>(ph))}};
    b.total_s += m.sum("time.phase_ns", f);
    b.mem_stall_s += m.sum("time.mem_stall_ns", f);
    b.lock_wait_s += m.sum("sync.lock_wait_ns", f);
    b.barrier_wait_s += m.sum("sync.barrier_wait_ns", f);
  }
  b.total_s *= 1e-9 / np;
  b.mem_stall_s *= 1e-9 / np;
  b.lock_wait_s *= 1e-9 / np;
  b.barrier_wait_s *= 1e-9 / np;
  b.busy_s = b.total_s - b.mem_stall_s - b.lock_wait_s - b.barrier_wait_s;
  return b;
}

std::string fmt_breakdown(const Breakdown& b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "busy=%s mem=%s lock=%s barrier=%s",
                fmt_percent(b.frac(b.busy_s)).c_str(),
                fmt_percent(b.frac(b.mem_stall_s)).c_str(),
                fmt_percent(b.frac(b.lock_wait_s)).c_str(),
                fmt_percent(b.frac(b.barrier_wait_s)).c_str());
  return buf;
}

std::string fmt_wait(const WaitSummary& w) {
  if (w.events == 0) return "none";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "mean=%s max=%s p95=%s (x%llu)",
                fmt_seconds(w.mean_s).c_str(), fmt_seconds(w.max_s).c_str(),
                fmt_seconds(w.p95_s).c_str(),
                static_cast<unsigned long long>(w.events));
  return buf;
}

std::string summarize(const ExperimentSpec& spec, const ExperimentResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%-13s %-8s n=%-7d p=%-3d seq=%s par=%s speedup=%s treebuild=%s "
                "lockwait[%s] barwait[%s]",
                spec.platform.c_str(), algorithm_name(spec.algorithm), spec.n, spec.nprocs,
                fmt_seconds(r.seq_seconds).c_str(), fmt_seconds(r.par_seconds).c_str(),
                fmt_speedup(r.speedup).c_str(), fmt_percent(r.treebuild_fraction).c_str(),
                fmt_wait(r.lock_wait).c_str(), fmt_wait(r.barrier_wait).c_str());
  std::string line = buf;
  if (r.race.enabled) {
    std::snprintf(buf, sizeof(buf), " races=%llu",
                  static_cast<unsigned long long>(r.race.races));
    line += buf;
  }
  return line;
}

}  // namespace ptb
