#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "prof/prof.hpp"
#include "sim/sim_rt.hpp"
#include "support/check.hpp"
#include "treebuild/dispatch.hpp"

namespace ptb {
namespace {

BHConfig effective_bh(const ExperimentSpec& spec) {
  BHConfig bh = spec.bh;
  bh.n = spec.n;
  return bh;
}

std::string baseline_key(const ExperimentSpec& spec) {
  const BHConfig bh = effective_bh(spec);
  std::ostringstream os;
  os << spec.platform << '/' << bh.n << '/' << bh.theta << '/' << bh.leaf_cap << '/'
     << bh.seed << '/' << spec.warmup_steps << '/' << spec.measured_steps << '/'
     << static_cast<int>(bh.partitioner) << '/' << bh.lock_buckets << '/'
     << to_string(spec.backend);
  return os.str();
}

/// Sequential baseline platform: same processor speed and LOCAL memory
/// behaviour (cache size + memory latency), but no coherence protocol — a
/// uniprocessor pays cache misses to its own memory and nothing else.
PlatformSpec sequential_variant(const PlatformSpec& spec) {
  PlatformSpec s = PlatformSpec::ideal();
  s.name = spec.name + "-seq";
  s.ns_per_work = spec.ns_per_work;
  s.protocol = Protocol::kBus;  // uniform-miss machine
  s.block_bytes = 64;
  s.read_hit_ns = spec.read_hit_ns;
  s.local_miss_ns = spec.local_miss_ns;
  s.remote_miss_ns = spec.local_miss_ns;
  s.dirty_miss_ns = spec.local_miss_ns;
  s.cache_bytes = spec.cache_bytes;
  s.cache_ways = spec.cache_ways;
  return s;
}

}  // namespace

void ingest_run_metrics(trace::MetricsRegistry& reg, const std::vector<ProcStats>& stats,
                        const MemModel* mem) {
  for (int p = 0; p < static_cast<int>(stats.size()); ++p) {
    const ProcStats& ps = stats[static_cast<std::size_t>(p)];
    for (int ph = 0; ph < kNumPhases; ++ph) {
      const trace::Labels l = trace::proc_phase_label(p, phase_name(static_cast<Phase>(ph)));
      reg.add("time.phase_ns", l, ps.phase_ns[ph]);
      reg.add("time.mem_stall_ns", l, ps.mem_stall_ns[ph]);
      reg.add("sync.lock_wait_ns", l, ps.lock_wait_phase_ns[ph]);
      reg.add("sync.barrier_wait_ns", l, ps.barrier_wait_phase_ns[ph]);
      reg.add("sync.lock_acquires", l, static_cast<double>(ps.lock_acquires[ph]));
    }
    const trace::Labels lp = trace::proc_label(p);
    reg.add("sync.barriers", lp, static_cast<double>(ps.barriers));
    reg.add("sync.fetch_adds", lp, static_cast<double>(ps.fetch_adds));
    reg.record_all("sync.lock_wait_event_ns", lp, ps.lock_wait_events);
    reg.record_all("sync.barrier_wait_event_ns", lp, ps.barrier_wait_events);
    if (mem != nullptr) {
      const MemProcStats& ms = mem->proc_stats(p);
      for (const MemCounterDesc& c : kMemCounters)
        reg.add(std::string("mem.") + c.metric, lp, static_cast<double>(ms.*c.field));
    }
  }
}

WaitSummary wait_summary(const Distribution& d) {
  WaitSummary w;
  w.events = d.count();
  if (w.events == 0) return w;
  w.mean_s = d.stat().mean() * 1e-9;
  w.max_s = d.stat().max() * 1e-9;
  w.p50_s = d.p50() * 1e-9;
  w.p95_s = d.p95() * 1e-9;
  w.p99_s = d.p99() * 1e-9;
  return w;
}

ExperimentRunner::Baseline ExperimentRunner::baseline(const ExperimentSpec& spec) {
  const std::string key = baseline_key(spec);
  auto it = baseline_cache_.find(key);
  if (it != baseline_cache_.end()) return it->second;

  const PlatformSpec platform = sequential_variant(PlatformSpec::by_name(spec.platform));
  AppState st = make_app_state(effective_bh(spec), 1);
  SimContext ctx(platform, 1, spec.backend);
  SeqBuilder builder(st);
  const RunConfig rc{spec.warmup_steps, spec.measured_steps};
  const RunResult res = run_simulation(ctx, st, builder, rc);

  Baseline b;
  b.total_s = res.total_ns * 1e-9;
  b.treebuild_s = res.phase(Phase::kTreeBuild) * 1e-9;
  baseline_cache_[key] = b;
  return b;
}

double ExperimentRunner::sequential_seconds(const std::string& platform, int n,
                                            const BHConfig& bh, int warmup_steps,
                                            int measured_steps) {
  ExperimentSpec spec;
  spec.platform = platform;
  spec.n = n;
  spec.bh = bh;
  spec.warmup_steps = warmup_steps;
  spec.measured_steps = measured_steps;
  return baseline(spec).total_s;
}

ExperimentResult ExperimentRunner::run(const ExperimentSpec& spec) {
  const PlatformSpec platform = PlatformSpec::by_name(spec.platform);

  AppState st = make_app_state(effective_bh(spec), spec.nprocs);
  SimContext ctx(platform, spec.nprocs, spec.backend,
                 spec.race || default_race_detection(),
                 spec.sight || sight::default_sight_enabled());
  if (spec.sim_workers > 0) ctx.set_workers(spec.sim_workers);
  if (sight::SightModel* sm = ctx.sight_model()) {
    // Opt the element-structured regions into false-sharing detection; the
    // remaining regions (counts, index buffers, globals) have no object
    // identity finer than the region itself and are never flagged.
    sm->set_object_granule("bodies", sizeof(Body));
    sm->set_object_granule("reduce", sizeof(ReduceSlot));
    for (const char* pool : {"seq.cells", "orig.cells", "local.cells",
                             "partree.cells", "space.cells", "update.cells",
                             "radix.cells"})
      sm->set_object_granule(pool, sizeof(Node));
    sm->set_object_granule("radix.spos", sizeof(Vec3));
    // ALOCK bucket words are scheduler objects the protocol never charges;
    // register them observer-only so contended lock lines still classify.
    if (!st.lock_table.empty())
      sm->add_observed_region(st.lock_table.data(), st.lock_table.size(), "locks");
  }
  if (spec.tracer != nullptr) {
    spec.tracer->set_clock_domain("virtual");
    ctx.set_tracer(spec.tracer);
  }
  prof::Recorder recorder;
  const bool profiling = spec.prof || prof::default_prof_enabled();
  if (profiling) ctx.set_profiler(&recorder);
  anatomy::Collector collector;
  const bool ledgering = spec.anatomy || anatomy::default_anatomy_enabled();
  if (ledgering) ctx.set_anatomy(&collector);

  ExperimentResult out;
  {
    const RunConfig rc{spec.warmup_steps, spec.measured_steps};
    with_builder(spec.algorithm, st,
                 [&](auto& b) { out.run = run_simulation(ctx, st, b, rc); });
  }

  const Baseline base = baseline(spec);
  out.seq_seconds = base.total_s;
  out.par_seconds = out.run.total_ns * 1e-9;
  out.speedup = out.par_seconds > 0.0 ? out.seq_seconds / out.par_seconds : 0.0;
  out.treebuild_seconds = out.run.phase(Phase::kTreeBuild) * 1e-9;
  out.treebuild_seq_seconds = base.treebuild_s;
  out.treebuild_speedup =
      out.treebuild_seconds > 0.0 ? out.treebuild_seq_seconds / out.treebuild_seconds : 0.0;
  out.treebuild_fraction = out.run.treebuild_fraction();
  if (const race::RaceReport* rr = ctx.race_report()) out.race = *rr;

  // Everything below is *derived* from the metrics registry — the scalar
  // fields are conveniences over the same data benches can query directly.
  ingest_run_metrics(out.metrics, out.run.proc_stats, &ctx.mem());
  if (ledgering) {
    out.anatomy = anatomy::build_ledger(out.run.proc_stats, collector, platform);
    // The ledger's phase-max sum must reproduce the run's measured total —
    // both are exact sums of the same integer-valued clocks.
    PTB_CHECK_MSG(out.anatomy.total_ns == out.run.total_ns,
                  "anatomy: ledger T_p disagrees with RunResult::total_ns");
    anatomy::ingest_anatomy_metrics(out.metrics, out.anatomy);
  }
  // Force-phase interaction counts (last measured step), split by partner
  // kind: cell = subtree approximated by its center of mass, body = direct.
  for (int p = 0; p < spec.nprocs; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    trace::Labels lc = trace::proc_label(p);
    lc.emplace_back("kind", "cell");
    out.metrics.add("forces.interactions", lc,
                    static_cast<double>(st.interactions_cell[pi]));
    trace::Labels lb = trace::proc_label(p);
    lb.emplace_back("kind", "body");
    out.metrics.add("forces.interactions", lb,
                    static_cast<double>(st.interactions_body[pi]));
  }
  const char* tb = phase_name(Phase::kTreeBuild);
  for (int p = 0; p < static_cast<int>(out.run.proc_stats.size()); ++p) {
    const double acq =
        out.metrics.value("sync.lock_acquires", trace::proc_phase_label(p, tb));
    out.treebuild_locks_per_proc.push_back(static_cast<std::uint64_t>(acq));
    out.treebuild_locks_total += static_cast<std::uint64_t>(acq);
  }
  const double np = static_cast<double>(out.run.proc_stats.size());
  out.barrier_wait_seconds_avg = out.metrics.sum("sync.barrier_wait_ns") * 1e-9 / np;
  out.lock_wait_seconds_avg = out.metrics.sum("sync.lock_wait_ns") * 1e-9 / np;
  out.lock_wait = wait_summary(out.metrics.merged("sync.lock_wait_event_ns"));
  out.barrier_wait = wait_summary(out.metrics.merged("sync.barrier_wait_event_ns"));
  for (const MemCounterDesc& c : kMemCounters)
    out.mem.*c.field = static_cast<std::uint64_t>(
        out.metrics.sum(std::string("mem.") + c.metric));

  if (spec.tracer != nullptr) {
    std::uint64_t dropped_total = 0;
    for (int p = 0; p < spec.tracer->nprocs(); ++p) {
      const std::uint64_t d = spec.tracer->dropped(p);
      dropped_total += d;
      out.metrics.add("trace.dropped_events", trace::proc_label(p), static_cast<double>(d));
    }
    if (dropped_total != 0)
      std::fprintf(stderr,
                   "trace: %llu events dropped (buffers full) — the trace is a "
                   "chronological prefix; raise capacity_per_proc for long runs\n",
                   static_cast<unsigned long long>(dropped_total));
  }

  if (profiling || ctx.sight_model() != nullptr) {
    // Resolve tree-cell addresses from the builders' allocation bookkeeping.
    // The lists describe the final step's tree; pools refill deterministically
    // each step, so addresses keep their role across the measured steps.
    CellResolver cells;
    for (const auto& lst : st.tree.created) {
      for (const Node* nd : lst)
        cells.add(nd, sizeof(Node), nd->level, nd->octant);
    }
    cells.finalize();
    if (profiling) {
      prof::ProfileOptions popts;
      if (platform.remote_miss_ns > platform.local_miss_ns)
        popts.remote_extra_ns = static_cast<std::uint64_t>(
            std::llround(platform.remote_miss_ns - platform.local_miss_ns));
      out.profile = prof::build_profile(recorder.capture(), cells, popts);
      prof::ingest_profile_metrics(out.metrics, out.profile);
    }
    if (sight::SightModel* sm = ctx.sight_model()) {
      out.sight = sm->build_report(cells);
      out.sight.platform = spec.platform;
      out.sight.algorithm = algorithm_name(spec.algorithm);
      out.sight.nbodies = effective_bh(spec).n;
      out.sight.nprocs = spec.nprocs;
      sight::ingest_sight_metrics(out.metrics, out.sight);
    }
  }
  return out;
}

}  // namespace ptb
