// The application driver: runs the full Barnes–Hut timestep pipeline on any
// runtime (SeqContext / NativeContext / SimContext) with any tree builder.
//
// Per the paper's methodology, timing begins after `warmup_steps` time-steps
// ("to eliminate unrepresentative cold-start and let the partitioning scheme
// settle down"): warm-up work is attributed to Phase::kOther and excluded
// from the reported totals.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "bh/generate.hpp"
#include "bh/verify.hpp"
#include "harness/orb.hpp"
#include "harness/phases.hpp"
#include "harness/state.hpp"
#include "mem/region_table.hpp"
#include "rt/phase.hpp"
#include "treebuild/builder_common.hpp"

namespace ptb {

struct RunConfig {
  int warmup_steps = 2;
  int measured_steps = 2;
};

struct RunResult {
  /// Per-phase time (ns) of the measured steps: max over processors (phases
  /// are barrier-aligned, so this is the phase's wall/virtual duration).
  std::array<double, kNumPhases> phase_ns{};
  /// Sum of the measured phases (the whole-application time).
  double total_ns = 0.0;
  /// Per-processor runtime statistics (locks, barrier waits, ...).
  std::vector<ProcStats> proc_stats;

  double treebuild_fraction() const {
    return total_ns > 0.0 ? phase_ns[static_cast<int>(Phase::kTreeBuild)] / total_ns : 0.0;
  }
  double phase(Phase p) const { return phase_ns[static_cast<int>(p)]; }
};

/// The "best sequential version" tree build: straight private insertion with
/// none of the parallel machinery (baseline for all speedups, paper Table 1).
class SeqBuilder {
 public:
  static constexpr Algorithm kAlgorithm = Algorithm::kLocal;  // closest shape

  explicit SeqBuilder(AppState& st) : st_(&st) {
    pool_.init(global_pool_capacity(st.cfg.n));
  }

  template <class Ctx>
  void register_regions(Ctx& ctx) {
    ctx.register_region(pool_.base(), pool_.size_bytes(), HomePolicy::kFixed, 0,
                        "seq.cells");
  }

  void reset() {}

  template <class RT>
  void build(RT& rt) {
    PTB_CHECK_MSG(rt.nprocs() == 1, "SeqBuilder is the uniprocessor baseline");
    AppState& st = *st_;
    const Cube rc = reduce_root_cube(rt, st);
    st.tree.created[0].clear();
    pool_.reset();

    ProcAlloc alloc;
    alloc.proc = 0;
    alloc.pool = &pool_;
    alloc.created = &st.tree.created[0];

    Node* root = alloc_node(rt, alloc);
    root->init_leaf(rc, nullptr, 0, 0);
    rt.write(root, 64);
    st.tree.root = root;
    st.tree.root_cube = rc;

    const InsertEnv env{&st.cfg, st.bodies.data(), &st, st.tree.body_leaf.get(), false};
    for (std::int32_t bi : st.partition[0]) {
      rt.read(st.body_charge(bi), sizeof(Vec3));
      private_insert(rt, env, alloc, root, bi);
    }
  }

 private:
  AppState* st_;
  NodePool pool_;
};

/// Registers the regions every run shares (bodies, reduction slots, the tree
/// root globals, the per-processor partition arrays).
template <class Ctx>
void register_common_regions(Ctx& ctx, AppState& st) {
  // Body data traffic is charged at the migration shadow arena (per-owner
  // contiguous, like the real codes' per-processor body arrays).
  ctx.register_region(st.body_arena.data(), st.body_arena.size() * sizeof(Body),
                      HomePolicy::kProcStriped, 0, "bodies");
  ctx.register_region(st.tree.reduce.data(), st.tree.reduce.size() * sizeof(ReduceSlot),
                      HomePolicy::kFixed, 0, "reduce");
  ctx.register_region(&st.tree.root, sizeof(Node*) + sizeof(Cube), HomePolicy::kFixed, 0,
                      "tree.globals");
  for (int p = 0; p < st.nprocs; ++p) {
    auto& part = st.partition[static_cast<std::size_t>(p)];
    part.reserve(st.bodies.size());  // stable address for the region table
    ctx.register_region(part.data(), st.bodies.size() * sizeof(std::int32_t),
                        HomePolicy::kFixed, p, "partition.p" + std::to_string(p));
  }
}

/// One SPMD time-step pipeline (called from inside ctx.run()).
template <class RT, class Builder>
void timestep(RT& rt, AppState& st, Builder& builder, bool measured) {
  rt.begin_phase(measured ? Phase::kTreeBuild : Phase::kOther);
  builder.build(rt);
  rt.barrier();
  rt.begin_phase(measured ? Phase::kMoments : Phase::kOther);
  moments_phase(rt, st);  // ends on a barrier
  rt.begin_phase(measured ? Phase::kPartition : Phase::kOther);
  if (st.cfg.partitioner == Partitioner::kOrb)
    partition_orb_phase(rt, st);  // ends on a barrier
  else
    partition_phase(rt, st);  // ends on a barrier
  rt.begin_phase(measured ? Phase::kForces : Phase::kOther);
  forces_phase(rt, st);
  rt.barrier();
  rt.begin_phase(measured ? Phase::kUpdate : Phase::kOther);
  integrate_phase(rt, st);
  rt.barrier();
  rt.begin_phase(Phase::kOther);
}

/// Runs the whole simulation and collects per-phase timing.
template <class Ctx, class Builder>
RunResult run_simulation(Ctx& ctx, AppState& st, Builder& builder, const RunConfig& rc) {
  register_common_regions(ctx, st);
  builder.register_regions(ctx);
  builder.reset();
  ctx.reset_stats();

  const int steps = rc.warmup_steps + rc.measured_steps;
  ctx.run([&](typename Ctx::Proc& rt) {
    for (int s = 0; s < steps; ++s) timestep(rt, st, builder, s >= rc.warmup_steps);
  });

  RunResult res;
  res.proc_stats = ctx.stats();
  for (int ph = 0; ph < kNumPhases; ++ph) {
    double mx = 0.0;
    for (const auto& ps : res.proc_stats) mx = std::max(mx, ps.phase_ns[ph]);
    res.phase_ns[static_cast<std::size_t>(ph)] = mx;
    if (ph != static_cast<int>(Phase::kOther)) res.total_ns += mx;
  }
  return res;
}

/// Convenience: a fully initialized AppState over a Plummer galaxy.
AppState make_app_state(const BHConfig& cfg, int nprocs);

}  // namespace ptb
