// Shared result-formatting helpers for the bench binaries.
#pragma once

#include <string>

#include "harness/experiment.hpp"
#include "support/table.hpp"

namespace ptb {

/// "12.4" style speedup cell.
std::string fmt_speedup(double s);
/// "37.2%" style percentage cell.
std::string fmt_percent(double frac);
/// "1.234s" / "12.3ms" adaptive duration cell.
std::string fmt_seconds(double s);

/// Paper-style execution-time decomposition of the measured phases,
/// averaged per processor. busy is the remainder of phase time after the
/// memory-system stalls and sync waits are taken out.
struct Breakdown {
  double busy_s = 0.0;
  double mem_stall_s = 0.0;
  double lock_wait_s = 0.0;
  double barrier_wait_s = 0.0;
  double total_s = 0.0;

  double frac(double part) const { return total_s > 0.0 ? part / total_s : 0.0; }
};

/// Derives the breakdown from a run's metrics registry (time.* and sync.*
/// cells over every phase except "other", summed across processors and
/// divided by `nprocs`).
Breakdown breakdown_from(const trace::MetricsRegistry& m, int nprocs);

/// "busy=62.1% mem=30.0% lock=5.2% barrier=2.7%" cell group.
std::string fmt_breakdown(const Breakdown& b);

/// "mean=1.2ms max=8.0ms p95=4.1ms (x123)" wait-statistics cell.
std::string fmt_wait(const WaitSummary& w);

/// One-line summary of a run (used by examples and debugging).
std::string summarize(const ExperimentSpec& spec, const ExperimentResult& r);

/// Prints the profiling tables (critical path with per-phase attribution,
/// top contended locks, depth-bucketed contention, what-if predictions) to
/// stdout. No-op when the profile is disabled.
void print_profile(const prof::Profile& p);

/// Prints the sight tables (sharing classification by data structure and
/// tree depth, per-phase class mix, false-sharing findings, per-phase
/// working sets) to stdout. No-op when the report is disabled.
void print_sight(const sight::SightReport& r);

/// Prints the speedup-loss ledger (per-category totals with shares, plus
/// the per-phase category grid) to stdout. No-op when the ledger is
/// disabled.
void print_anatomy(const anatomy::Ledger& led);

/// Prints the speedup-loss waterfall p·T_p − T_1 attributed per category.
/// No-op when the waterfall is disabled.
void print_waterfall(const anatomy::Waterfall& w);

}  // namespace ptb
