// Shared result-formatting helpers for the bench binaries.
#pragma once

#include <string>

#include "harness/experiment.hpp"
#include "support/table.hpp"

namespace ptb {

/// "12.4" style speedup cell.
std::string fmt_speedup(double s);
/// "37.2%" style percentage cell.
std::string fmt_percent(double frac);
/// "1.234s" / "12.3ms" adaptive duration cell.
std::string fmt_seconds(double s);

/// One-line summary of a run (used by examples and debugging).
std::string summarize(const ExperimentSpec& spec, const ExperimentResult& r);

}  // namespace ptb
