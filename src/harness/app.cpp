#include "harness/app.hpp"

namespace ptb {

AppState make_app_state(const BHConfig& cfg, int nprocs) {
  AppState st;
  st.cfg = cfg;
  st.init(make_plummer(cfg.n, cfg.seed), nprocs);
  st.cfg = cfg;  // init() overwrote n from the body count; restore the rest
  return st;
}

}  // namespace ptb
