// Physics diagnostics for validating simulations: energy, momentum, angular
// momentum, virial ratio, and center-of-mass drift. The energy computation is
// the exact O(N^2) sum (use on modest N or on samples).
#pragma once

#include <span>

#include "bh/body.hpp"

namespace ptb {

struct EnergyReport {
  double kinetic = 0.0;
  double potential = 0.0;
  double total() const { return kinetic + potential; }
  /// |2T / U| — ~1 for a virialized system.
  double virial_ratio() const {
    return potential != 0.0 ? std::abs(2.0 * kinetic / potential) : 0.0;
  }
};

/// Exact energies with Plummer softening eps (matches the force law used by
/// the force phase).
EnergyReport total_energy(std::span<const Body> bodies, double eps);

/// Total linear momentum (conserved exactly by leapfrog up to force error).
Vec3 total_momentum(std::span<const Body> bodies);

/// Total angular momentum about the origin.
Vec3 total_angular_momentum(std::span<const Body> bodies);

/// Mass-weighted center of mass.
Vec3 center_of_mass(std::span<const Body> bodies);

/// Relative drift |a - b| / max(|a|, floor): convenience for test tolerances.
double relative_drift(double a, double b, double floor = 1e-12);

}  // namespace ptb
