// Batched interaction-list force kernel.
//
// The classic Barnes–Hut force loop computes each acceleration term *inside*
// the tree walk, so the expensive r^-3 math is interleaved with pointer
// chasing and per-node simulator charges. The fast path splits the two
// halves: the walk only *gathers* the interaction partners (approximated
// cells and direct bodies) into a flat structure-of-arrays list — issuing
// exactly the same memory charges, in exactly the same order, as the scalar
// walk — and `evaluate` then burns through the list with a blocked,
// vectorizable loop.
//
// Oracle contract (docs/PERF.md "The interaction-list oracle"): with
// PTB_FORCE_SLOWPATH=1 the force phase falls back to the scalar in-walk
// accumulation, and the two paths must agree bit-for-bit on interaction
// counts, every memory charge and every virtual time — and, on default
// builds, on the accelerations themselves. `evaluate` folds terms into the
// accumulator sequentially in list (= walk) order, so the only codegen
// freedom left is FMA contraction, which applies to both paths alike; under
// -DPTB_NATIVE_OPT the last ulp is compiler's choice either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bh/vec3.hpp"
#include "support/aligned.hpp"

namespace ptb::bh {

/// True when PTB_FORCE_SLOWPATH selects the scalar in-walk reference path.
/// Deliberately not cached in a static: equivalence tests flip the variable
/// between runs within one process (same contract as mem_slowpath_enabled).
bool force_slowpath_enabled();

/// One body's gathered interaction partners, in tree-walk order. Cells and
/// direct bodies share the list (a partner is just a point mass once the
/// opening criterion has spoken); the kind split is kept only for the
/// `forces.interactions{kind=...}` metrics. Capacity is retained across
/// clear(), so steady-state gathering never allocates.
class InteractionList {
 public:
  void clear() {
    n_ = 0;
    cells_ = 0;
    bodies_ = 0;
  }

  void push_cell(const Vec3& com, double mass) {
    push(com, mass);
    ++cells_;
  }
  void push_body(const Vec3& pos, double mass) {
    push(pos, mass);
    ++bodies_;
  }

  std::size_t size() const { return n_; }
  std::uint64_t cells() const { return cells_; }
  std::uint64_t bodies() const { return bodies_; }

  const double* x() const { return x_.data(); }
  const double* y() const { return y_.data(); }
  const double* z() const { return z_.data(); }
  const double* m() const { return m_.data(); }

 private:
  void push(const Vec3& p, double mass) {
    if (n_ == x_.size()) grow();
    x_[n_] = p.x;
    y_[n_] = p.y;
    z_[n_] = p.z;
    m_[n_] = mass;
    ++n_;
  }
  void grow();

  AlignedVec<double> x_, y_, z_, m_;
  std::size_t n_ = 0;
  std::uint64_t cells_ = 0;
  std::uint64_t bodies_ = 0;
};

/// Evaluates the list against a body at `pos`: blocks of 8 independent
/// lanes for the subtract/square/rsqrt math, then a sequential fold in list
/// order so the accumulation order matches the scalar walk exactly.
Vec3 evaluate(const InteractionList& il, const Vec3& pos, double eps2);

}  // namespace ptb::bh
