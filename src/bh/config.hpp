// Simulation configuration shared by all phases and runtimes.
#pragma once

#include <cstdint>

namespace ptb {

/// Which partitioner assigns bodies to processors for the force/update
/// phases: costzones (Singh et al. [3], the paper's choice) or orthogonal
/// recursive bisection (Salmon [4], the message-passing lineage).
enum class Partitioner : int { kCostzones = 0, kOrb = 1 };

struct BHConfig {
  /// Number of bodies.
  int n = 16384;
  /// Barnes–Hut opening criterion: a cell of side s at distance d is accepted
  /// when s/d < theta.
  double theta = 1.0;
  /// Plummer softening length.
  double eps = 0.05;
  /// Integration step.
  double dt = 0.025;
  /// Leaf subdivision threshold k (paper §2.1: "whenever the number of
  /// particles in a cell exceeds a fixed number k"). Must be <= kLeafCapacity.
  int leaf_cap = 8;
  /// SPACE builder: a subspace is recursively subdivided while it holds more
  /// than this many bodies (paper §2.5). <= 0 means "auto": choose
  /// max(leaf_cap, n / (8 * nproc)) at run time, which keeps the partitioning
  /// tree "usually below 4" levels as in the paper while giving each
  /// processor several subspaces for load balance.
  int space_threshold = 0;
  /// Hard recursion depth limit (coincident bodies guard).
  int max_level = 48;
  /// Cell-lock pool size, as in the SPLASH codes' ALOCK arrays: node locks
  /// are hashed into this many buckets, so distinct cells can contend on the
  /// same lock (false lock contention). <= 0 means one lock per node (the
  /// default; what modern codes would do).
  int lock_buckets = 0;
  /// Fault-injection knob for the race detector: when true, tree-build
  /// builders skip their lock/unlock pairs entirely, turning the
  /// intentionally-synchronized shared-tree mutations into genuine data
  /// races. Exists so tests and CI can prove the detector actually fires;
  /// never set it for measurement runs.
  bool elide_locks = false;
  /// RNG seed for the galaxy generator.
  std::uint64_t seed = 12345;
  /// Body-to-processor partitioning scheme for the compute phases.
  Partitioner partitioner = Partitioner::kCostzones;

  int effective_space_threshold(int nproc) const {
    if (space_threshold > 0) return space_threshold;
    const int auto_thresh = n / (8 * nproc > 0 ? 8 * nproc : 8);
    return auto_thresh > leaf_cap ? auto_thresh : leaf_cap;
  }
};

}  // namespace ptb
