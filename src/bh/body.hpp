// Body (particle) representation.
#pragma once

#include <cstdint>
#include <vector>

#include "bh/vec3.hpp"
#include "support/aligned.hpp"

namespace ptb {

/// One simulated particle. Layout mirrors the SPLASH codes: an array of Body
/// lives in the shared arena; per-processor "body pointer" arrays hold indices
/// into it, and reassignment across time-steps only rewrites the index arrays.
struct Body {
  Vec3 pos;
  Vec3 vel;
  Vec3 acc;
  double mass = 0.0;
  /// Work done for this body in the previous force phase (interaction count);
  /// drives the costzones partitioner. Starts at 1 so that step 0 partitions
  /// evenly.
  double cost = 1.0;
  /// Processor that owns this body for force-calculation/update (and, for the
  /// ORIG/LOCAL/UPDATE/PARTREE builders, for tree building).
  std::int32_t proc = 0;
  /// Stable identity; bodies are permuted across phases and tests need to
  /// track them.
  std::int32_t id = 0;
};

using Bodies = AlignedVec<Body>;

}  // namespace ptb
