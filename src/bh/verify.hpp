// Octree invariant checking and structural canonicalization.
//
// Every parallel builder is validated against these invariants in the test
// suite, and rebuild-style builders (ORIG/LOCAL/PARTREE/SPACE) are checked to
// be structurally identical to the sequential reference via canonical hashes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bh/body.hpp"
#include "bh/config.hpp"
#include "bh/node.hpp"

namespace ptb {

struct TreeCheckResult {
  bool ok = true;
  std::string error;            // first violated invariant, human readable
  int node_count = 0;
  int leaf_count = 0;
  int max_depth = 0;
  std::int64_t body_count = 0;  // total bodies found in leaves
};

/// Verifies structural invariants of a built tree:
///  * every body index appears in exactly one leaf;
///  * every body lies inside its leaf's cube;
///  * each leaf holds <= leaf_cap bodies (unless at max_level);
///  * child cubes are the correct octants of their parents;
///  * parent pointers and levels are consistent;
///  * no dead (reclaimed) node is reachable.
/// If `check_moments`, also verifies mass/COM/cost roll-ups to tolerance.
TreeCheckResult check_tree(const Node* root, std::span<const Body> bodies,
                           const BHConfig& cfg, bool check_moments = false);

/// Canonical serialization of the tree shape: a pre-order walk emitting, for
/// every node, its kind/octant-path and (for leaves) the sorted list of body
/// *ids*. Two trees over the same bodies serialize identically iff they are
/// the same octree. Useful both for equivalence checks and as a cheap hash.
std::vector<std::uint64_t> canonical_serialization(const Node* root,
                                                   std::span<const Body> bodies);

/// FNV-1a hash of the canonical serialization.
std::uint64_t canonical_hash(const Node* root, std::span<const Body> bodies);

}  // namespace ptb
