#include "bh/forcekernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace ptb::bh {

bool force_slowpath_enabled() {
  const char* env = std::getenv("PTB_FORCE_SLOWPATH");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

void InteractionList::grow() {
  const std::size_t cap = x_.empty() ? 1024 : x_.size() * 2;
  x_.resize(cap);
  y_.resize(cap);
  z_.resize(cap);
  m_.resize(cap);
}

Vec3 evaluate(const InteractionList& il, const Vec3& pos, double eps2) {
  constexpr std::size_t kBlock = 8;
  alignas(64) double dx[kBlock];
  alignas(64) double dy[kBlock];
  alignas(64) double dz[kBlock];
  alignas(64) double inv[kBlock];
  const double* x = il.x();
  const double* y = il.y();
  const double* z = il.z();
  const double* m = il.m();
  const std::size_t n = il.size();
  Vec3 acc{};
  for (std::size_t i = 0; i < n; i += kBlock) {
    const std::size_t blk = std::min(kBlock, n - i);
    // Independent lanes: the subtracts, squares and the dominant
    // divide+sqrt vectorize without any reassociation.
    for (std::size_t j = 0; j < blk; ++j) {
      const double ddx = x[i + j] - pos.x;
      const double ddy = y[i + j] - pos.y;
      const double ddz = z[i + j] - pos.z;
      const double r2 = ddx * ddx + ddy * ddy + ddz * ddz + eps2;
      dx[j] = ddx;
      dy[j] = ddy;
      dz[j] = ddz;
      inv[j] = 1.0 / (r2 * std::sqrt(r2));
    }
    // Sequential fold in list (= walk) order; the multiply-add shape per
    // component is the same as the scalar walk's `acc += (mass*inv)*d`, so
    // any FMA contraction the compiler applies hits both paths identically.
    for (std::size_t j = 0; j < blk; ++j) {
      const double s = m[i + j] * inv[j];
      acc.x += dx[j] * s;
      acc.y += dy[j] * s;
      acc.z += dz[j] * s;
    }
  }
  return acc;
}

}  // namespace ptb::bh
