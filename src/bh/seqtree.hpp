// Sequential reference octree builder.
//
// This is the ground truth for the test suite: an independent, simple
// recursive implementation against which all five parallel builders are
// checked for structural equivalence. It is also the "best sequential
// version" used as the speedup baseline (paper §4, Table 1) — tree building
// with no locks, no pointer-array indirection, plus the shared sequential
// force/COM/update phases.
#pragma once

#include <span>

#include "bh/body.hpp"
#include "bh/config.hpp"
#include "bh/node.hpp"
#include "bh/pool.hpp"

namespace ptb {

class SeqTree {
 public:
  /// Builds an octree over all bodies. The pool is reset first.
  /// `creator_of_all` is recorded as the creator of every node.
  static Node* build(std::span<const Body> bodies, const BHConfig& cfg, NodePool& pool,
                     int creator_of_all = 0);

  /// Inserts one body (by index) into the tree rooted at `root`.
  /// Shared by the reference builder and by tests.
  static void insert(Node* root, std::span<const Body> bodies, std::int32_t body_idx,
                     const BHConfig& cfg, NodePool& pool, int creator);

  /// Sequential bottom-up center-of-mass/cost pass.
  static void compute_moments(Node* root, std::span<const Body> bodies);
};

}  // namespace ptb
