// Canonical octree node.
//
// All five tree-building algorithms produce trees made of this node type; the
// algorithms differ in *where* nodes are allocated (one global pool vs.
// per-processor pools), *who* may touch a node during construction (locks vs.
// spatial ownership) and *when* the tree is (re)built. Keeping one layout lets
// the force/COM/update phases and the equivalence tests be shared, exactly
// matching the paper's methodology ("we keep the other two phases the same").
//
// Concurrency contract (parallel builders):
//  * `kind` and `child[]` are atomics: the lock-free descent reads them with
//    acquire loads; writers publish with release stores while holding the
//    node's lock. A leaf's conversion to a cell (to_cell) is the publication
//    point for its freshly built children.
//  * `bodies[]`, `nbodies` and `dead` are only accessed under the node's lock
//    during mutation phases, or freely in read-only phases.
#pragma once

#include <atomic>
#include <cstdint>

#include "bh/aabb.hpp"
#include "bh/vec3.hpp"

namespace ptb {

/// Compile-time capacity of a leaf. The runtime subdivision threshold
/// (`BHConfig::leaf_cap`) must be <= this. SPLASH-2 uses 10; we default to 8.
inline constexpr int kLeafCapacity = 16;

enum class NodeKind : std::uint8_t { kCell = 0, kLeaf = 1 };

struct Node {
  // --- geometry (read on every traversal step) ---
  Cube cube;

  // --- summary, filled by the center-of-mass phase ---
  Vec3 com;
  double mass = 0.0;
  /// Total force-phase cost of the bodies below this node (previous step);
  /// used by the costzones partitioner.
  double cost = 0.0;

  // --- structure ---
  std::atomic<Node*> child[8] = {};  // valid for cells
  Node* parent = nullptr;
  std::int32_t bodies[kLeafCapacity] = {};  // body indices, valid for leaves
  std::int32_t nbodies = 0;                 // valid for leaves
  std::atomic<NodeKind> kind{NodeKind::kLeaf};
  /// Processor that created this node; it computes the node's COM. For
  /// UPDATE, ownership persists across time-steps.
  std::int16_t creator = 0;
  std::uint8_t level = 0;
  /// Which octant of the parent this node occupies (UPDATE re-derives cubes
  /// from a fresh root cube through these).
  std::uint8_t octant = 0;
  /// Scratch flag used by UPDATE to mark reclaimed nodes.
  bool dead = false;
  /// Position in the creator's created-node list (swap-removal on reclaim).
  std::int32_t created_idx = -1;

  bool is_leaf(std::memory_order mo = std::memory_order_acquire) const {
    return kind.load(mo) == NodeKind::kLeaf;
  }
  bool is_cell(std::memory_order mo = std::memory_order_acquire) const {
    return kind.load(mo) == NodeKind::kCell;
  }

  Node* get_child(int o, std::memory_order mo = std::memory_order_acquire) const {
    return child[o].load(mo);
  }
  void set_child(int o, Node* c, std::memory_order mo = std::memory_order_release) {
    child[o].store(c, mo);
  }

  void init_leaf(const Cube& c, Node* p, int lvl, int creator_proc, int oct = 0) {
    cube = c;
    com = Vec3{};
    mass = 0.0;
    cost = 0.0;
    for (auto& ch : child) ch.store(nullptr, std::memory_order_relaxed);
    parent = p;
    nbodies = 0;
    kind.store(NodeKind::kLeaf, std::memory_order_relaxed);
    creator = static_cast<std::int16_t>(creator_proc);
    level = static_cast<std::uint8_t>(lvl);
    octant = static_cast<std::uint8_t>(oct);
    dead = false;
  }

  /// Converts a leaf into an (empty) internal cell, publishing any children
  /// the caller prepared beforehand. The caller redistributes the previous
  /// occupants first.
  void to_cell() {
    nbodies = 0;
    kind.store(NodeKind::kCell, std::memory_order_release);
  }
};

}  // namespace ptb
