// 3-D Morton (Z-order) keys.
//
// Used by the costzones partitioner's traversal ordering tests and by the
// canonicalizer to give bodies within a leaf a platform-independent order.
#pragma once

#include <cstdint>

#include "bh/aabb.hpp"
#include "bh/vec3.hpp"

namespace ptb {

/// Interleave the low 21 bits of x, y, z into a 63-bit Morton key.
std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z);

/// Inverse of morton_encode.
void morton_decode(std::uint64_t key, std::uint32_t& x, std::uint32_t& y, std::uint32_t& z);

/// Morton key of a point inside a bounding cube, quantized to 21 bits/axis.
std::uint64_t morton_key(const Vec3& p, const Cube& root);

/// Tree levels a 63-bit key can resolve: 21 octant triplets below the root.
inline constexpr int kMortonLevels = 21;

/// Octant (bit 0 = x high, matching Cube::octant_of) that a key descends
/// into at `level` (0 = the root's children). Valid for level < kMortonLevels.
inline int morton_octant(std::uint64_t key, int level) {
  return static_cast<int>((key >> (3 * (kMortonLevels - 1 - level))) & 7u);
}

/// The key prefix (top 3*(level+1) bits, right-aligned) identifying the cell
/// that contains `key` at `level`. Two bodies share a cell at `level` iff
/// their prefixes are equal — the cell-boundary test of the RADIX builder.
inline std::uint64_t morton_prefix(std::uint64_t key, int level) {
  return key >> (3 * (kMortonLevels - 1 - level));
}

namespace detail {

constexpr std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffull;
  v = (v | (v << 16)) & 0x1f0000ff0000ffull;
  v = (v | (v << 8)) & 0x100f00f00f00f00full;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ull;
  v = (v | (v << 2)) & 0x1249249249249249ull;
  return v;
}

constexpr std::uint64_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ull;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ull;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00full;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffull;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffull;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return v;
}

}  // namespace detail

inline std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return detail::spread3(x) | (detail::spread3(y) << 1) | (detail::spread3(z) << 2);
}

inline void morton_decode(std::uint64_t key, std::uint32_t& x, std::uint32_t& y,
                          std::uint32_t& z) {
  x = static_cast<std::uint32_t>(detail::compact3(key));
  y = static_cast<std::uint32_t>(detail::compact3(key >> 1));
  z = static_cast<std::uint32_t>(detail::compact3(key >> 2));
}

inline std::uint64_t morton_key(const Vec3& p, const Cube& root) {
  const double scale = 2097152.0;  // 2^21
  auto quant = [&](double v, double c) {
    double f = (v - (c - root.half)) / (2.0 * root.half);
    if (f < 0.0) f = 0.0;
    if (f >= 1.0) f = 0x1.fffffep-1;
    return static_cast<std::uint32_t>(f * scale) & 0x1fffff;
  };
  return morton_encode(quant(p.x, root.center.x), quant(p.y, root.center.y),
                       quant(p.z, root.center.z));
}

}  // namespace ptb
