#include "bh/diagnostics.hpp"

#include <cmath>

namespace ptb {

EnergyReport total_energy(std::span<const Body> bodies, double eps) {
  EnergyReport r;
  const double eps2 = eps * eps;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    r.kinetic += 0.5 * bodies[i].mass * norm2(bodies[i].vel);
    for (std::size_t j = i + 1; j < bodies.size(); ++j) {
      const double d = std::sqrt(norm2(bodies[i].pos - bodies[j].pos) + eps2);
      r.potential -= bodies[i].mass * bodies[j].mass / d;
    }
  }
  return r;
}

Vec3 total_momentum(std::span<const Body> bodies) {
  Vec3 p{};
  for (const Body& b : bodies) p += b.mass * b.vel;
  return p;
}

Vec3 total_angular_momentum(std::span<const Body> bodies) {
  Vec3 l{};
  for (const Body& b : bodies) {
    // L += m * (r x v)
    l.x += b.mass * (b.pos.y * b.vel.z - b.pos.z * b.vel.y);
    l.y += b.mass * (b.pos.z * b.vel.x - b.pos.x * b.vel.z);
    l.z += b.mass * (b.pos.x * b.vel.y - b.pos.y * b.vel.x);
  }
  return l;
}

Vec3 center_of_mass(std::span<const Body> bodies) {
  Vec3 c{};
  double m = 0.0;
  for (const Body& b : bodies) {
    c += b.mass * b.pos;
    m += b.mass;
  }
  return m > 0.0 ? (1.0 / m) * c : c;
}

double relative_drift(double a, double b, double floor) {
  const double scale = std::max(floor, std::max(std::abs(a), std::abs(b)));
  return std::abs(a - b) / scale;
}

}  // namespace ptb
