#include "bh/verify.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ptb {
namespace {

struct Checker {
  std::span<const Body> bodies;
  const BHConfig* cfg = nullptr;
  bool check_moments = false;
  TreeCheckResult res;
  std::vector<char> seen;  // per body index

  void fail(const std::string& msg) {
    if (res.ok) {
      res.ok = false;
      res.error = msg;
    }
  }

  void walk(const Node* n, const Node* parent, int level) {
    if (!res.ok) return;
    ++res.node_count;
    res.max_depth = std::max(res.max_depth, level);
    if (n->dead) return fail("reachable node is marked dead");
    if (n->parent != parent) return fail("bad parent pointer");
    if (n->level != level) return fail("bad level");
    if (parent != nullptr) {
      const int o = parent->cube.octant_of(n->cube.center);
      const Cube expect = parent->cube.child(o);
      if (std::abs(expect.half - n->cube.half) > 1e-9 * expect.half ||
          norm(expect.center - n->cube.center) > 1e-9 * expect.half)
        return fail("child cube is not an octant of its parent");
    }
    if (n->is_leaf()) {
      ++res.leaf_count;
      if (n->nbodies < 0 || n->nbodies > kLeafCapacity) return fail("leaf count out of range");
      if (n->nbodies > cfg->leaf_cap && level < cfg->max_level)
        return fail("overfull leaf below max_level");
      for (int i = 0; i < n->nbodies; ++i) {
        const std::int32_t bi = n->bodies[i];
        if (bi < 0 || static_cast<std::size_t>(bi) >= bodies.size())
          return fail("leaf references invalid body index");
        if (seen[static_cast<std::size_t>(bi)]) return fail("body appears in two leaves");
        seen[static_cast<std::size_t>(bi)] = 1;
        ++res.body_count;
        if (!n->cube.contains(bodies[static_cast<std::size_t>(bi)].pos))
          return fail("body outside its leaf cube");
      }
      if (check_moments) check_leaf_moments(n);
      return;
    }
    if (n->nbodies != 0) return fail("cell has nbodies != 0");
    bool any = false;
    Vec3 weighted{};
    double mass = 0.0;
    for (int o = 0; o < 8; ++o) {
      const Node* c = n->get_child(o, std::memory_order_relaxed);
      if (c == nullptr) continue;
      any = true;
      walk(c, n, level + 1);
      weighted += c->mass * c->com;
      mass += c->mass;
    }
    if (!any && parent != nullptr) return fail("internal cell with no children");
    if (check_moments && res.ok && mass > 0.0) {
      const Vec3 com = (1.0 / mass) * weighted;
      if (std::abs(mass - n->mass) > 1e-9 * std::max(1.0, mass) ||
          norm(com - n->com) > 1e-7)
        return fail("cell moments do not match children");
    }
  }

  void check_leaf_moments(const Node* n) {
    Vec3 weighted{};
    double mass = 0.0;
    for (int i = 0; i < n->nbodies; ++i) {
      const Body& b = bodies[static_cast<std::size_t>(n->bodies[i])];
      weighted += b.mass * b.pos;
      mass += b.mass;
    }
    if (std::abs(mass - n->mass) > 1e-12 + 1e-9 * mass) return fail("leaf mass mismatch");
    if (mass > 0.0 && norm((1.0 / mass) * weighted - n->com) > 1e-7)
      fail("leaf COM mismatch");
  }
};

void serialize(const Node* n, std::span<const Body> bodies, std::vector<std::uint64_t>& out) {
  if (n->is_leaf()) {
    out.push_back(0x1eaf0000ull + static_cast<std::uint64_t>(n->nbodies));
    std::vector<std::uint64_t> ids;
    ids.reserve(static_cast<std::size_t>(n->nbodies));
    for (int i = 0; i < n->nbodies; ++i)
      ids.push_back(static_cast<std::uint64_t>(
          bodies[static_cast<std::size_t>(n->bodies[i])].id));
    std::sort(ids.begin(), ids.end());
    out.insert(out.end(), ids.begin(), ids.end());
    return;
  }
  out.push_back(0xce110000ull);
  for (int o = 0; o < 8; ++o) {
    const Node* c = n->get_child(o, std::memory_order_relaxed);
    if (c == nullptr) {
      out.push_back(0xe3b70000ull);  // empty slot marker
    } else {
      out.push_back(0xc41d0000ull + static_cast<std::uint64_t>(o));
      serialize(c, bodies, out);
    }
  }
}

}  // namespace

TreeCheckResult check_tree(const Node* root, std::span<const Body> bodies,
                           const BHConfig& cfg, bool check_moments) {
  // Field-by-field init: brace-initializing TreeCheckResult in the aggregate
  // trips gcc-12's -Wmaybe-uninitialized on the error string.
  Checker c;
  c.bodies = bodies;
  c.cfg = &cfg;
  c.check_moments = check_moments;
  c.seen.assign(bodies.size(), 0);
  if (root == nullptr) {
    c.fail("null root");
    return c.res;
  }
  c.walk(root, nullptr, 0);
  if (c.res.ok && c.res.body_count != static_cast<std::int64_t>(bodies.size())) {
    std::ostringstream os;
    os << "tree holds " << c.res.body_count << " bodies, expected " << bodies.size();
    c.fail(os.str());
  }
  return c.res;
}

std::vector<std::uint64_t> canonical_serialization(const Node* root,
                                                   std::span<const Body> bodies) {
  std::vector<std::uint64_t> out;
  out.reserve(bodies.size() * 2);
  serialize(root, bodies, out);
  return out;
}

std::uint64_t canonical_hash(const Node* root, std::span<const Body> bodies) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t w : canonical_serialization(root, bodies)) {
    h ^= w;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace ptb
