// Node pools.
//
// ORIG allocates every cell from one contiguous shared array with a global
// next-index counter (paper Fig. 1); LOCAL/UPDATE/PARTREE/SPACE give each
// processor its own contiguous pool (paper Fig. 2). The pool is deliberately
// dumb — a bump allocator over a pre-sized array — because the *addresses*
// matter to the memory-system models: interleaved allocation from a shared
// pool is precisely what creates ORIG's false sharing and remote misses.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "support/aligned.hpp"

#include "bh/node.hpp"
#include "support/check.hpp"

namespace ptb {

class NodePool {
 public:
  NodePool() = default;

  // Movable so pools can live in std::vector (the atomic counter is copied
  // by value; moves only happen during single-threaded setup).
  NodePool(NodePool&& o) noexcept
      : nodes_(std::move(o.nodes_)), capacity_(o.capacity_),
        next_(o.next_.load(std::memory_order_relaxed)) {
    o.capacity_ = 0;
    o.next_.store(0, std::memory_order_relaxed);
  }
  NodePool& operator=(NodePool&& o) noexcept {
    nodes_ = std::move(o.nodes_);
    capacity_ = o.capacity_;
    next_.store(o.next_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    o.capacity_ = 0;
    o.next_.store(0, std::memory_order_relaxed);
    return *this;
  }

  /// Allocates backing storage for `capacity` nodes. Must be called before
  /// any take(); re-calling reallocates and resets the pool.
  void init(std::size_t capacity) {
    nodes_ = make_aligned_array<Node>(capacity);
    capacity_ = capacity;
    next_.store(0, std::memory_order_relaxed);
  }

  /// Resets the bump pointer without releasing storage (start of a rebuild).
  void reset() { next_.store(0, std::memory_order_relaxed); }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const {
    return static_cast<std::size_t>(next_.load(std::memory_order_relaxed));
  }

  Node* base() { return nodes_.get(); }
  const Node* base() const { return nodes_.get(); }
  std::size_t size_bytes() const { return capacity_ * sizeof(Node); }

  /// The shared next-index counter (ORIG fetch&adds this through the runtime
  /// so the coherence models see the contention on its cache line).
  std::atomic<std::int64_t>& counter() { return next_; }

  /// Node at a previously reserved index.
  Node* at(std::int64_t idx) {
    PTB_CHECK_MSG(idx >= 0 && static_cast<std::size_t>(idx) < capacity_,
                  "node pool exhausted — raise pool capacity");
    return &nodes_[static_cast<std::size_t>(idx)];
  }

  /// Single-owner allocation (per-processor pools; no atomicity needed).
  Node* take() {
    const std::int64_t idx = next_.load(std::memory_order_relaxed);
    next_.store(idx + 1, std::memory_order_relaxed);
    return at(idx);
  }

 private:
  AlignedArrayPtr<Node> nodes_;
  std::size_t capacity_ = 0;
  std::atomic<std::int64_t> next_{0};
};

}  // namespace ptb
