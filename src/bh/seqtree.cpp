#include "bh/seqtree.hpp"

#include <vector>

#include "support/check.hpp"

namespace ptb {
namespace {

// Single-threaded child access: relaxed is sufficient.
constexpr auto kSeq = std::memory_order_relaxed;

}  // namespace

Node* SeqTree::build(std::span<const Body> bodies, const BHConfig& cfg, NodePool& pool,
                     int creator_of_all) {
  PTB_CHECK(cfg.leaf_cap >= 1 && cfg.leaf_cap <= kLeafCapacity);
  pool.reset();
  std::vector<Vec3> pos(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) pos[i] = bodies[i].pos;
  const Cube root_cube = bounding_cube(pos);

  Node* root = pool.take();
  root->init_leaf(root_cube, nullptr, 0, creator_of_all);
  for (std::size_t i = 0; i < bodies.size(); ++i)
    insert(root, bodies, static_cast<std::int32_t>(i), cfg, pool, creator_of_all);
  return root;
}

void SeqTree::insert(Node* node, std::span<const Body> bodies, std::int32_t body_idx,
                     const BHConfig& cfg, NodePool& pool, int creator) {
  const Vec3& p = bodies[static_cast<std::size_t>(body_idx)].pos;
  for (;;) {
    PTB_DCHECK(node->cube.contains(p));
    if (node->is_cell(kSeq)) {
      const int o = node->cube.octant_of(p);
      Node* next = node->get_child(o, kSeq);
      if (next == nullptr) {
        next = pool.take();
        next->init_leaf(node->cube.child(o), node, node->level + 1, creator, o);
        node->set_child(o, next, kSeq);
      }
      node = next;
      continue;
    }
    // Leaf: append, subdividing on overflow.
    if (node->nbodies < cfg.leaf_cap || node->level >= cfg.max_level) {
      PTB_CHECK_MSG(node->nbodies < kLeafCapacity,
                    "too many coincident bodies for kLeafCapacity at max_level");
      node->bodies[node->nbodies++] = body_idx;
      return;
    }
    // Subdivide: the node becomes a cell and its occupants are re-inserted
    // one level down (they cannot overflow a fresh child past leaf_cap).
    std::int32_t prev[kLeafCapacity];
    const int nprev = node->nbodies;
    for (int i = 0; i < nprev; ++i) prev[i] = node->bodies[i];
    node->to_cell();
    for (int i = 0; i < nprev; ++i) {
      const Vec3& q = bodies[static_cast<std::size_t>(prev[i])].pos;
      const int o = node->cube.octant_of(q);
      Node* slot = node->get_child(o, kSeq);
      if (slot == nullptr) {
        slot = pool.take();
        slot->init_leaf(node->cube.child(o), node, node->level + 1, creator, o);
        node->set_child(o, slot, kSeq);
      }
      PTB_DCHECK(slot->is_leaf(kSeq));
      slot->bodies[slot->nbodies++] = prev[i];
    }
    // Loop continues: descend with the new body.
  }
}

void SeqTree::compute_moments(Node* node, std::span<const Body> bodies) {
  if (node->is_leaf(kSeq)) {
    Vec3 weighted{};
    double mass = 0.0;
    double cost = 0.0;
    for (int i = 0; i < node->nbodies; ++i) {
      const Body& b = bodies[static_cast<std::size_t>(node->bodies[i])];
      weighted += b.mass * b.pos;
      mass += b.mass;
      cost += b.cost;
    }
    node->mass = mass;
    node->cost = cost;
    node->com = mass > 0.0 ? (1.0 / mass) * weighted : node->cube.center;
    return;
  }
  Vec3 weighted{};
  double mass = 0.0;
  double cost = 0.0;
  for (int o = 0; o < 8; ++o) {
    Node* c = node->get_child(o, kSeq);
    if (c == nullptr) continue;
    compute_moments(c, bodies);
    weighted += c->mass * c->com;
    mass += c->mass;
    cost += c->cost;
  }
  node->mass = mass;
  node->cost = cost;
  node->com = mass > 0.0 ? (1.0 / mass) * weighted : node->cube.center;
}

}  // namespace ptb
