#include "bh/generate.hpp"

#include <cmath>

#include "bh/aabb.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ptb {
namespace {

constexpr double kMFrac = 0.999;  // mass cut-off fraction (SPLASH-2)

Vec3 pick_shell(Rng& rng, double rad) {
  // Uniform direction on the sphere of radius rad (rejection from the cube).
  for (;;) {
    Vec3 v{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const double rsq = norm2(v);
    if (rsq > 0.0 && rsq <= 1.0) {
      const double scale = rad / std::sqrt(rsq);
      return v * scale;
    }
  }
}

Bodies plummer_core(int n, Rng& rng) {
  PTB_CHECK(n > 0);
  const double rsc = 3.0 * M_PI / 16.0;           // radius scale (virial units)
  const double vsc = std::sqrt(1.0 / rsc);        // velocity scale
  Bodies bodies(static_cast<std::size_t>(n));

  for (int i = 0; i < n; ++i) {
    Body& b = bodies[static_cast<std::size_t>(i)];
    b.id = i;
    b.mass = 1.0 / static_cast<double>(n);

    // Radius from the cumulative mass profile, with the SPLASH mass cut.
    const double m = kMFrac * rng.next_double();
    const double r = 1.0 / std::sqrt(std::pow(m, -2.0 / 3.0) - 1.0);
    b.pos = pick_shell(rng, rsc * r);

    // Speed via von Neumann rejection from g(x) = x^2 (1 - x^2)^3.5.
    double x, y;
    do {
      x = rng.next_double();
      y = 0.1 * rng.next_double();
    } while (y > x * x * std::pow(1.0 - x * x, 3.5));
    const double v = x * std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    b.vel = pick_shell(rng, vsc * v);
  }

  // Zero the centre of mass and the mean momentum.
  Vec3 cm_pos{}, cm_vel{};
  for (const Body& b : bodies) {
    cm_pos += b.mass * b.pos;
    cm_vel += b.mass * b.vel;
  }
  for (Body& b : bodies) {
    b.pos -= cm_pos;
    b.vel -= cm_vel;
  }
  return bodies;
}

}  // namespace

Bodies make_plummer(int n, std::uint64_t seed) {
  Rng rng(seed);
  return plummer_core(n, rng);
}

Bodies make_uniform_cube(int n, std::uint64_t seed) {
  PTB_CHECK(n > 0);
  Rng rng(seed);
  Bodies bodies(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Body& b = bodies[static_cast<std::size_t>(i)];
    b.id = i;
    b.mass = 1.0 / static_cast<double>(n);
    b.pos = Vec3{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};
    b.vel = Vec3{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05)};
  }
  return bodies;
}

Bodies make_colliding_pair(int n, std::uint64_t seed) {
  PTB_CHECK(n >= 2);
  Rng rng(seed);
  const int n1 = n / 2;
  const int n2 = n - n1;
  Bodies a = plummer_core(n1, rng);
  Bodies b = plummer_core(n2, rng);
  const Vec3 offset{1.5, 0.2, 0.0};
  const Vec3 approach{0.5, 0.0, 0.0};
  for (Body& body : a) {
    body.pos -= offset;
    body.vel += approach;
    body.mass *= 0.5;
  }
  for (Body& body : b) {
    body.pos += offset;
    body.vel -= approach;
    body.mass *= 0.5;
    body.id += n1;
  }
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

Cube cube_from_minmax(const Vec3& lo, const Vec3& hi) {
  const Vec3 center = 0.5 * (lo + hi);
  double half = 0.0;
  half = std::max(half, hi.x - center.x);
  half = std::max(half, hi.y - center.y);
  half = std::max(half, hi.z - center.z);
  half = half * 1.01 + 1e-12;  // pad so boundary bodies are strictly inside
  return Cube{center, half};
}

Cube bounding_cube(std::span<const Vec3> positions) {
  PTB_CHECK(!positions.empty());
  Vec3 lo{positions[0]}, hi{positions[0]};
  for (const Vec3& p : positions) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  return cube_from_minmax(lo, hi);
}

}  // namespace ptb
