// Axis-aligned cubic bounding volumes for octree cells.
//
// Cells are always cubes (center + half-width); the root cube is the smallest
// cube enclosing the bounding box of all bodies, expanded slightly so bodies
// on the boundary fall strictly inside (mirrors SPLASH-2 `setbound`).
#pragma once

#include <algorithm>
#include <limits>
#include <span>

#include "bh/vec3.hpp"

namespace ptb {

struct Cube {
  Vec3 center;
  double half = 0.0;  // half of the side length

  bool contains(const Vec3& p) const {
    return p.x >= center.x - half && p.x < center.x + half && p.y >= center.y - half &&
           p.y < center.y + half && p.z >= center.z - half && p.z < center.z + half;
  }

  /// Octant index of p relative to the center: bit 0 = x high, bit 1 = y high,
  /// bit 2 = z high. This ordering is shared by every tree builder so that
  /// trees built by different algorithms are structurally comparable.
  int octant_of(const Vec3& p) const {
    int o = 0;
    if (p.x >= center.x) o |= 1;
    if (p.y >= center.y) o |= 2;
    if (p.z >= center.z) o |= 4;
    return o;
  }

  /// The sub-cube for a given octant index.
  Cube child(int octant) const {
    const double q = half * 0.5;
    return Cube{Vec3{center.x + ((octant & 1) ? q : -q), center.y + ((octant & 2) ? q : -q),
                     center.z + ((octant & 4) ? q : -q)},
                q};
  }
};

/// Smallest cube (with 1% padding) enclosing all positions. The padding keeps
/// boundary bodies strictly inside so `contains` semantics are unambiguous.
Cube bounding_cube(std::span<const Vec3> positions);

/// Cube from a min/max corner pair (the same padding rule as bounding_cube;
/// the parallel builders reduce per-processor bounds and must arrive at a
/// bit-identical cube to the sequential reference).
Cube cube_from_minmax(const Vec3& lo, const Vec3& hi);

}  // namespace ptb
