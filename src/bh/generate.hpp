// Initial-condition generators.
//
// The paper runs a 3-D Barnes–Hut galaxy simulation on Plummer-model initial
// conditions (the SPLASH-2 BARNES default). We implement the classic Aarseth
// construction, plus a uniform cube and a colliding two-cluster variant used
// by the examples and tests to exercise non-centrally-condensed and strongly
// irregular distributions.
#pragma once

#include <cstdint>

#include "bh/body.hpp"

namespace ptb {

/// Plummer sphere with total mass 1, scaled to virial units (Aarseth et al.,
/// as in SPLASH-2 BARNES testdata.C). Deterministic in `seed`.
Bodies make_plummer(int n, std::uint64_t seed);

/// Uniform random positions in a unit cube centered at the origin, small
/// random velocities.
Bodies make_uniform_cube(int n, std::uint64_t seed);

/// Two Plummer spheres of n/2 bodies each, separated along x and approaching
/// each other — a strongly time-varying distribution that stresses UPDATE.
Bodies make_colliding_pair(int n, std::uint64_t seed);

}  // namespace ptb
