// Sealed dispatch over the three protocol models.
//
// The simulator charges millions of annotated accesses per simulated second;
// paying an indirect virtual call for each is measurable. All three protocol
// models are `final`, so a call through a pointer of the CONCRETE type
// devirtualizes into a direct (and, for header-defined models, inlinable)
// call. MemDispatch snapshots the model's MemModelKind once at bind time and
// routes each hot-path operation through a switch on that tag.
//
// Anything the switch cannot prove — the RaceModel decorator (kind() ==
// kOther) and the PTB_MEM_SLOWPATH=1 oracle (bound with force_virtual) —
// falls through to the plain virtual call, which keeps decorator hooks and
// the reference path semantics intact. Bit-identity of the two routes is
// asserted by tests/test_mem_equiv.cpp.
#pragma once

#include "mem/hlrc_model.hpp"
#include "mem/ideal_model.hpp"
#include "mem/invalidation_model.hpp"
#include "mem/model.hpp"

namespace ptb {

class MemDispatch {
 public:
  /// Binds to `m` (must outlive this). With force_virtual (the slow-path
  /// oracle) every call takes the virtual route regardless of the model.
  void bind(MemModel* m, bool force_virtual) {
    base_ = m;
    kind_ = force_virtual ? MemModelKind::kOther : m->kind();
    ideal_ = kind_ == MemModelKind::kIdeal ? static_cast<IdealModel*>(m) : nullptr;
    inval_ = kind_ == MemModelKind::kInvalidation ? static_cast<InvalidationModel*>(m)
                                                  : nullptr;
    hlrc_ = kind_ == MemModelKind::kHlrc ? static_cast<HlrcModel*>(m) : nullptr;
  }

  MemModelKind kind() const { return kind_; }

  std::uint64_t on_read_shared(int proc, const void* p, std::size_t n) const {
    switch (kind_) {
      case MemModelKind::kIdeal:
        return ideal_->on_read_shared(proc, p, n);
      case MemModelKind::kInvalidation:
        return inval_->on_read_shared(proc, p, n);
      case MemModelKind::kHlrc:
        return hlrc_->on_read_shared(proc, p, n);
      case MemModelKind::kOther:
        break;
    }
    return base_->on_read_shared(proc, p, n);
  }

  std::uint64_t on_read_shared_span(int proc, const void* p, std::size_t n,
                                    std::size_t stride, std::size_t count) const {
    switch (kind_) {
      case MemModelKind::kIdeal:
        return ideal_->on_read_shared_span(proc, p, n, stride, count);
      case MemModelKind::kInvalidation:
        return inval_->on_read_shared_span(proc, p, n, stride, count);
      case MemModelKind::kHlrc:
        return hlrc_->on_read_shared_span(proc, p, n, stride, count);
      case MemModelKind::kOther:
        break;
    }
    return base_->on_read_shared_span(proc, p, n, stride, count);
  }

  std::uint64_t on_read(int proc, const void* p, std::size_t n, std::uint64_t now) const {
    switch (kind_) {
      case MemModelKind::kIdeal:
        return ideal_->on_read(proc, p, n, now);
      case MemModelKind::kInvalidation:
        return inval_->on_read(proc, p, n, now);
      case MemModelKind::kHlrc:
        return hlrc_->on_read(proc, p, n, now);
      case MemModelKind::kOther:
        break;
    }
    return base_->on_read(proc, p, n, now);
  }

  std::uint64_t on_write(int proc, const void* p, std::size_t n, std::uint64_t now) const {
    switch (kind_) {
      case MemModelKind::kIdeal:
        return ideal_->on_write(proc, p, n, now);
      case MemModelKind::kInvalidation:
        return inval_->on_write(proc, p, n, now);
      case MemModelKind::kHlrc:
        return hlrc_->on_write(proc, p, n, now);
      case MemModelKind::kOther:
        break;
    }
    return base_->on_write(proc, p, n, now);
  }

 private:
  MemModel* base_ = nullptr;
  MemModelKind kind_ = MemModelKind::kOther;
  IdealModel* ideal_ = nullptr;
  InvalidationModel* inval_ = nullptr;
  HlrcModel* hlrc_ = nullptr;
};

}  // namespace ptb
