#include "mem/region_table.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ptb {

void RegionTable::set_block_bytes(std::size_t b) {
  PTB_CHECK_MSG(b > 0 && (b & (b - 1)) == 0, "block size must be a power of two");
  block_bytes_ = b;
  block_shift_ = 0;
  while ((std::size_t{1} << block_shift_) < b) ++block_shift_;
}

void RegionTable::add(const void* base, std::size_t bytes, HomePolicy policy, int fixed_home,
                      std::string name, int nprocs) {
  PTB_CHECK(bytes > 0);
  Region r;
  r.base = reinterpret_cast<std::uintptr_t>(base);
  r.bytes = bytes;
  r.policy = policy;
  r.fixed_home = fixed_home;
  r.name = std::move(name);
  // Align the block grid to absolute addresses so two regions that happen to
  // share a block boundary behave like real memory would.
  const std::uintptr_t first_addr = r.base >> block_shift_;
  const std::uintptr_t last_addr = (r.base + bytes - 1) >> block_shift_;
  r.num_blocks = static_cast<std::size_t>(last_addr - first_addr + 1);
  r.first_block = total_blocks_;
  total_blocks_ += r.num_blocks;
  // CacheModel packs (block index + 1) and the fill epoch into one 64-bit
  // tag, and the HLRC local cache keys 64 B lines over the virtual-offset
  // space (total_blocks * block_bytes / 64). Both fit comfortably below
  // 2^32 for any simulatable problem size; enforce it where blocks are
  // minted rather than on the per-access hot path.
  PTB_CHECK_MSG(total_blocks_ < (std::size_t{1} << 32) &&
                    (total_blocks_ << block_shift_) / 64 < (std::size_t{1} << 32),
                "too many shared blocks for packed cache tags");
  (void)nprocs;

  // Overlap would double-count protocol state; forbid it.
  for (const Region& other : regions_) {
    const bool disjoint =
        r.base + r.bytes <= other.base || other.base + other.bytes <= r.base;
    PTB_CHECK_MSG(disjoint, "overlapping shared regions");
  }
  PTB_CHECK_MSG(regions_.size() < 32767, "too many shared regions for packed lookaside entries");
  regions_.push_back(std::move(r));
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });
  block_order_.resize(regions_.size());
  for (std::uint32_t i = 0; i < block_order_.size(); ++i) block_order_[i] = i;
  std::sort(block_order_.begin(), block_order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return regions_[a].first_block < regions_[b].first_block;
            });
}

void RegionTable::clear() {
  regions_.clear();
  block_order_.clear();
  total_blocks_ = 0;
}

const Region* RegionTable::find(std::uintptr_t a) const {
  // Binary search over the (few) sorted regions.
  auto it = std::upper_bound(regions_.begin(), regions_.end(), a,
                             [](std::uintptr_t addr, const Region& r) { return addr < r.base; });
  if (it == regions_.begin()) return nullptr;
  --it;
  if (a < it->base + it->bytes) return &*it;
  return nullptr;
}

BlockRef RegionTable::resolve(const void* p, int nprocs) const {
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  const Region* r = find(a);
  if (r == nullptr) return BlockRef{};
  const std::size_t block_in_region = (a >> block_shift_) - (r->base >> block_shift_);
  BlockRef ref;
  ref.shared = true;
  ref.block = r->first_block + block_in_region;
  ref.home = home_of(*r, block_in_region, nprocs);
  ref.region = static_cast<std::uint32_t>(r - regions_.data());
  return ref;
}

bool RegionTable::virtual_offset(const void* p, std::size_t& off) const {
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  const Region* r = find(a);
  if (r == nullptr) return false;
  const std::size_t block_in_region = (a >> block_shift_) - (r->base >> block_shift_);
  off = ((r->first_block + block_in_region) << block_shift_) +
        static_cast<std::size_t>(a & (block_bytes_ - 1));
  return true;
}

bool RegionTable::resolve_range(const void* p, std::size_t n, int nprocs, std::size_t& first,
                                std::size_t& last, int& home_of_first) const {
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  const Region* r = find(a);
  if (r == nullptr) return false;
  const std::uintptr_t end = std::min(a + (n > 0 ? n : 1), r->base + r->bytes);
  const std::size_t b0 = (a >> block_shift_) - (r->base >> block_shift_);
  const std::size_t b1 = ((end - 1) >> block_shift_) - (r->base >> block_shift_);
  first = r->first_block + b0;
  last = r->first_block + b1;
  home_of_first = home_of(*r, b0, nprocs);
  return true;
}

void RegionTable::fill_lookaside(LineLookaside::Entry& e, std::uintptr_t a,
                                 std::uintptr_t line, int nprocs) const {
  e.tag = line + 1;
  const Region* r = find(a);
  if (r == nullptr) {
    e.region = LineLookaside::kNotShared;
    return;
  }
  const std::size_t block_in_region = line - (r->base >> block_shift_);
  e.block = static_cast<std::uint32_t>(r->first_block + block_in_region);
  e.home = static_cast<std::uint16_t>(home_of(*r, block_in_region, nprocs));
  e.region = static_cast<std::int16_t>(r - regions_.data());
}

int RegionTable::block_home(std::size_t global_block, int nprocs) const {
  // Last region whose first_block <= global_block.
  auto it = std::upper_bound(block_order_.begin(), block_order_.end(), global_block,
                             [this](std::size_t b, std::uint32_t i) {
                               return b < regions_[i].first_block;
                             });
  if (it == block_order_.begin()) return 0;
  const Region& r = regions_[*std::prev(it)];
  if (global_block < r.first_block + r.num_blocks)
    return home_of(r, global_block - r.first_block, nprocs);
  return 0;
}

}  // namespace ptb
