// Zero-cost shared memory: used to validate scheduler logic and as a PRAM
// reference in tests (speedups under kIdeal should track the critical path).
// Public (not an implementation detail of the factory) so the simulator's
// sealed dispatch (mem/dispatch.hpp) can call it directly.
#pragma once

#include "mem/model.hpp"

namespace ptb {

class IdealModel final : public MemModel {
 public:
  IdealModel(const PlatformSpec& spec, int nprocs) : MemModel(spec, nprocs) {
    regions_.set_block_bytes(spec.block_bytes);
  }

  MemModelKind kind() const override { return MemModelKind::kIdeal; }

  std::uint64_t on_read(int proc, const void*, std::size_t, std::uint64_t) override {
    ++stats_[static_cast<std::size_t>(proc)].reads;
    return 0;
  }
  std::uint64_t on_write(int proc, const void*, std::size_t, std::uint64_t) override {
    ++stats_[static_cast<std::size_t>(proc)].writes;
    return 0;
  }
  std::uint64_t on_rmw(int proc, const void*, std::uint64_t) override {
    ++stats_[static_cast<std::size_t>(proc)].rmws;
    return 0;
  }
  std::uint64_t on_acquire(int, const void*, std::uint64_t) override { return 0; }
  std::uint64_t on_release(int, const void*, std::uint64_t) override { return 0; }
  std::uint64_t on_barrier_arrive(int, std::uint64_t) override { return 0; }
  std::uint64_t on_barrier_depart(int, std::uint64_t) override { return 0; }
  std::uint64_t on_read_shared(int proc, const void*, std::size_t) override {
    ++stats_[static_cast<std::size_t>(proc)].reads;
    return 0;
  }
  // Per-element accounting is one read counter bump and zero cost; the span
  // collapses to a single add.
  std::uint64_t on_read_shared_span(int proc, const void*, std::size_t, std::size_t,
                                    std::size_t count) override {
    stats_[static_cast<std::size_t>(proc)].reads += count;
    return 0;
  }
};

}  // namespace ptb
