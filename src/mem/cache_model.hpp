// Per-processor set-associative LRU cache model with epoch-based coherence.
//
// Invalidation is *lazy*: the protocol model keeps a monotonically increasing
// epoch per memory block and bumps it whenever a write makes existing copies
// stale; a cached entry only counts as a hit if its fill epoch matches the
// block's current epoch. This lets the force-phase fast path probe caches
// with no cross-thread mutation at all.
#pragma once

#include <cstdint>
#include <vector>

namespace ptb {

class CacheModel {
 public:
  /// cache_bytes == 0 disables capacity modeling: every block is resident
  /// once touched (infinite cache), subject only to epoch staleness.
  void init(std::size_t cache_bytes, std::size_t block_bytes, int ways);

  /// Probes (and on miss, fills) the cache. Returns true on hit.
  /// Header-inline: this is the innermost step of every charged access, and
  /// the simulator's sealed dispatch is built so the whole chain from
  /// SimProc::read_shared down to here inlines into one code path.
  bool touch(std::size_t block, std::uint32_t epoch) {
    if (infinite_) {
      if (resident_epoch_.size() <= block) resident_epoch_.resize(block + 1, 0);
      const bool hit = resident_epoch_[block] == epoch + 1;
      resident_epoch_[block] = epoch + 1;
      return hit;
    }
    Entry* set = &entries_[set_of(block) * ways_];
    const std::uint64_t key = (static_cast<std::uint64_t>(block) + 1) << 32;
    ++tick_;
    Entry* victim = set;
    for (std::size_t w = 0; w < ways_; ++w) {
      Entry& e = set[w];
      if ((e.tag & kKeyMask) == key) {
        e.stamp = tick_;
        if (e.tag == (key | epoch)) return true;
        e.tag = key | epoch;  // stale copy: refill in place
        return false;
      }
      if (e.stamp < victim->stamp) victim = &e;
    }
    if (victim->tag != 0) ++evictions_;
    victim->tag = key | epoch;
    victim->stamp = tick_;
    return false;
  }

  /// Epoch-free probe for the serialized (eager-invalidation) mode: a hit is
  /// "entry present and marked valid". The protocol model calls mark_stale()
  /// on every OTHER processor's cache when it bumps a block's epoch, so
  /// validity here is exactly "fill epoch == current epoch" in the lazy
  /// scheme — same hits, same misses, same refill ways, same stamps — while
  /// the read path no longer loads the shared per-block epoch at all. Only
  /// sound when execution is serialized (fiber backend): the sweep writes
  /// into other processors' entries.
  bool touch_nv(std::size_t block) {
    if (infinite_) {
      if (resident_epoch_.size() <= block) resident_epoch_.resize(block + 1, 0);
      const bool hit = resident_epoch_[block] == kNvResident;
      resident_epoch_[block] = kNvResident;
      return hit;
    }
    Entry* set = &entries_[set_of(block) * ways_];
    const std::uint64_t key = (static_cast<std::uint64_t>(block) + 1) << 32;
    ++tick_;
    Entry* victim = set;
    for (std::size_t w = 0; w < ways_; ++w) {
      Entry& e = set[w];
      if ((e.tag & kKeyMask) == key) {
        e.stamp = tick_;
        if (e.tag == (key | kNvValid)) return true;
        e.tag = key | kNvValid;  // stale copy: refill in place
        return false;
      }
      if (e.stamp < victim->stamp) victim = &e;
    }
    if (victim->tag != 0) ++evictions_;
    victim->tag = key | kNvValid;
    victim->stamp = tick_;
    return false;
  }

  /// Eager counterpart of an epoch bump for ONE remote cache: the entry (if
  /// any) keeps its way and stamp but stops matching as valid, so the next
  /// touch_nv refills it in place — exactly what the lazy epoch mismatch
  /// would do. Does NOT advance tick_ (the lazy scheme never touches a
  /// remote cache on a bump).
  void mark_stale(std::size_t block) {
    if (infinite_) {
      if (block < resident_epoch_.size() && resident_epoch_[block] == kNvResident)
        resident_epoch_[block] = 0;
      return;
    }
    Entry* set = &entries_[set_of(block) * ways_];
    const std::uint64_t key = (static_cast<std::uint64_t>(block) + 1) << 32;
    for (std::size_t w = 0; w < ways_; ++w) {
      if ((set[w].tag & kKeyMask) == key) {
        set[w].tag = key | kNvStale;
        return;
      }
    }
  }

  /// Re-touch of a block the caller has PROVEN is resident with a current
  /// epoch (the span fast path's duplicate block visits: the block was
  /// touched at most ways()-1 distinct fills ago and nothing ran in between
  /// that could bump its epoch). Performs exactly the tick/stamp updates the
  /// equivalent touch() hit would, so LRU decisions stay bit-identical to
  /// the per-element reference path, without reloading protocol state.
  void restamp(std::size_t block) {
    if (infinite_) return;  // touch() mutates nothing on an infinite-mode hit
    Entry* set = &entries_[set_of(block) * ways_];
    const std::uint64_t key = (static_cast<std::uint64_t>(block) + 1) << 32;
    ++tick_;
    for (std::size_t w = 0; w < ways_; ++w) {
      if ((set[w].tag & kKeyMask) == key) {
        set[w].stamp = tick_;
        return;
      }
    }
  }

  /// Probe without filling.
  bool present(std::size_t block, std::uint32_t epoch) const {
    if (infinite_) {
      return block < resident_epoch_.size() && resident_epoch_[block] == epoch + 1;
    }
    const Entry* set = &entries_[set_of(block) * ways_];
    const std::uint64_t tag =
        ((static_cast<std::uint64_t>(block) + 1) << 32) | epoch;
    for (std::size_t w = 0; w < ways_; ++w) {
      if ((set[w].tag & kKeyMask) == (tag & kKeyMask)) return set[w].tag == tag;
    }
    return false;
  }

  /// Drops all contents (start of a run).
  void clear();

  std::uint64_t evictions() const { return evictions_; }

  bool infinite() const { return infinite_; }
  std::size_t ways() const { return ways_; }

 private:
  /// 16 bytes so a 4-way set is exactly one 64 B host cache line: the whole
  /// LRU scan of a set touches one line instead of two (the old 24-byte
  /// entry padded a set to 96+ bytes). Block index and fill epoch share one
  /// word — RegionTable::add() guarantees block indices fit in 32 bits.
  struct Entry {
    std::uint64_t tag = 0;  // ((block + 1) << 32) | epoch; 0 == empty
    std::uint64_t stamp = 0;
  };
  static constexpr std::uint64_t kKeyMask = 0xffffffff00000000ull;
  // Epoch-field markers for the epoch-free (touch_nv) mode. Real epochs are
  // bump counts and never come within 2^32 of these.
  static constexpr std::uint64_t kNvValid = 0xffffffffull;
  static constexpr std::uint64_t kNvStale = 0xfffffffeull;
  static constexpr std::uint32_t kNvResident = 0xffffffffu;  // infinite mode

  std::size_t set_of(std::size_t block) const {
    // Cheap mix so consecutive blocks spread over sets, then mask.
    std::uint64_t h = block * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> 40) & (nsets_ - 1);
  }

  bool infinite_ = true;
  std::size_t nsets_ = 0;
  std::size_t ways_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
  std::vector<Entry> entries_;                 // nsets_ * ways_ (finite mode)
  std::vector<std::uint32_t> resident_epoch_;  // infinite mode: epoch+1 or 0
};

}  // namespace ptb
