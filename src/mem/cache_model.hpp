// Per-processor set-associative LRU cache model with epoch-based coherence.
//
// Invalidation is *lazy*: the protocol model keeps a monotonically increasing
// epoch per memory block and bumps it whenever a write makes existing copies
// stale; a cached entry only counts as a hit if its fill epoch matches the
// block's current epoch. This lets the force-phase fast path probe caches
// with no cross-thread mutation at all.
#pragma once

#include <cstdint>
#include <vector>

namespace ptb {

class CacheModel {
 public:
  /// cache_bytes == 0 disables capacity modeling: every block is resident
  /// once touched (infinite cache), subject only to epoch staleness.
  void init(std::size_t cache_bytes, std::size_t block_bytes, int ways);

  /// Probes (and on miss, fills) the cache. Returns true on hit.
  bool touch(std::size_t block, std::uint32_t epoch);

  /// Probe without filling.
  bool present(std::size_t block, std::uint32_t epoch) const;

  /// Drops all contents (start of a run).
  void clear();

  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::uint64_t key = 0;  // block index + 1; 0 == empty
    std::uint64_t stamp = 0;
    std::uint32_t epoch = 0;
  };

  std::size_t set_of(std::size_t block) const {
    // Cheap mix so consecutive blocks spread over sets, then mask.
    std::uint64_t h = block * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> 40) & (nsets_ - 1);
  }

  bool infinite_ = true;
  std::size_t nsets_ = 0;
  std::size_t ways_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
  std::vector<Entry> entries_;                 // nsets_ * ways_ (finite mode)
  std::vector<std::uint32_t> resident_epoch_;  // infinite mode: epoch+1 or 0
};

}  // namespace ptb
