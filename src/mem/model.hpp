// Memory-system model interface.
//
// The simulator is execution-driven: the real algorithm code runs and its
// annotated shared-memory operations are fed to one of these protocol models,
// which returns the latency (in virtual nanoseconds) the issuing processor
// pays. Models keep per-line/per-page protocol state keyed by *real*
// addresses inside registered shared regions, so allocation-policy effects
// (false sharing of ORIG's interleaved arrays, locality of LOCAL's
// per-processor pools) emerge from the genuine address stream.
//
// Thread-safety contract: on_read/on_write/on_rmw/on_acquire/on_release/
// on_barrier are called under the simulator's global ordering lock (one call
// at a time, in virtual-time order). on_read_shared is the force-phase fast
// path: it may be called concurrently from all processors, but only during
// phases in which no ordered writes to the same regions occur; models must
// restrict themselves to per-processor state plus commutative atomics there.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/region_table.hpp"
#include "platform/spec.hpp"

namespace ptb {

namespace trace {
class Tracer;
}

enum class Phase;  // rt/phase.hpp (scoped enum, int underlying type)

/// Per-processor memory-event counters (diagnostics, tests, Fig. 15-style
/// reporting).
struct MemProcStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t remote_misses = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t twins = 0;
  std::uint64_t diffs = 0;
  std::uint64_t notices_received = 0;
  std::uint64_t rmws = 0;
};

/// The one place the MemProcStats field list lives: each counter's metrics
/// name (`mem.<metric>` in the registry), its trace instant-event name
/// (nullptr for raw access counters too noisy to trace), and its field.
struct MemCounterDesc {
  const char* metric;
  const char* event;
  std::uint64_t MemProcStats::*field;
};
inline constexpr MemCounterDesc kMemCounters[] = {
    {"reads", nullptr, &MemProcStats::reads},
    {"writes", nullptr, &MemProcStats::writes},
    {"read_misses", "read-miss", &MemProcStats::read_misses},
    {"write_misses", "write-miss", &MemProcStats::write_misses},
    {"remote_misses", "remote-miss", &MemProcStats::remote_misses},
    {"invalidations_sent", "invalidation", &MemProcStats::invalidations_sent},
    {"page_faults", "page-fault", &MemProcStats::page_faults},
    {"twins", "twin", &MemProcStats::twins},
    {"diffs", "diff", &MemProcStats::diffs},
    {"notices_received", "write-notice", &MemProcStats::notices_received},
    {"rmws", nullptr, &MemProcStats::rmws},
};

/// Emits one trace instant per counter that advanced between `before` and
/// `after` (count = delta), timestamped `ts_ns` on `proc`'s track. The
/// simulator snapshots stats around each protocol-model call when tracing is
/// enabled, so memory events appear in the trace without any hook inside the
/// models' hot paths.
void trace_mem_events(trace::Tracer& tracer, int proc, const MemProcStats& before,
                      const MemProcStats& after, std::uint64_t ts_ns);

class MemModel {
 public:
  explicit MemModel(const PlatformSpec& spec, int nprocs)
      : spec_(spec), nprocs_(nprocs), stats_(static_cast<std::size_t>(nprocs)) {}
  virtual ~MemModel() = default;

  MemModel(const MemModel&) = delete;
  MemModel& operator=(const MemModel&) = delete;

  /// Registers a shared region; accesses outside registered regions are
  /// treated as private (their cost is the processor's compute charge).
  virtual void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                               int fixed_home, std::string name);

  /// Drops all regions and protocol state (between experiment runs).
  virtual void reset();

  // --- ordered operations (called under the global ordering lock) ---
  virtual std::uint64_t on_read(int proc, const void* p, std::size_t n,
                                std::uint64_t now) = 0;
  virtual std::uint64_t on_write(int proc, const void* p, std::size_t n,
                                 std::uint64_t now) = 0;
  /// Atomic read-modify-write (e.g. ORIG's shared next-cell counter).
  virtual std::uint64_t on_rmw(int proc, const void* p, std::uint64_t now) = 0;
  /// Protocol work at lock acquisition, *excluding* queueing (the scheduler
  /// models waiting). For SVM protocols this is where write notices are
  /// applied (pages invalidated). `lock` identifies the lock object (the
  /// protocol models ignore it; analysis decorators key sync state by it).
  virtual std::uint64_t on_acquire(int proc, const void* lock, std::uint64_t now) = 0;
  /// Protocol work at lock release (HLRC: diff the interval's written pages
  /// to their homes and post write notices).
  virtual std::uint64_t on_release(int proc, const void* lock, std::uint64_t now) = 0;
  /// Barrier protocol, split so release-side work (flushing the interval)
  /// happens at arrival and acquire-side work (applying everyone's write
  /// notices) happens at departure, after all processors arrived.
  virtual std::uint64_t on_barrier_arrive(int proc, std::uint64_t now) = 0;
  virtual std::uint64_t on_barrier_depart(int proc, std::uint64_t now) = 0;

  /// Ordered access to a shared atomic (SimProc::ordered_load /
  /// ordered_store): `sync` is the atomic object's address, [p, p+n) the
  /// charged range. Protocol models keep the default (atomics cost the same
  /// as the plain access they charge); analysis decorators override to see
  /// the release/acquire structure.
  virtual std::uint64_t on_atomic(int proc, const void* sync, bool is_write,
                                  const void* p, std::size_t n, std::uint64_t now) {
    (void)sync;
    return is_write ? on_write(proc, p, n, now) : on_read(proc, p, n, now);
  }

  /// The issuing processor entered application phase `ph`. Pure metadata —
  /// protocol models ignore it; the race detector stamps it into reports.
  virtual void on_phase(int proc, Phase ph) {
    (void)proc;
    (void)ph;
  }

  // --- concurrent fast path (read-only phases) ---
  virtual std::uint64_t on_read_shared(int proc, const void* p, std::size_t n) = 0;

  const PlatformSpec& spec() const { return spec_; }
  int nprocs() const { return nprocs_; }
  virtual const MemProcStats& proc_stats(int p) const {
    return stats_[static_cast<std::size_t>(p)];
  }
  virtual MemProcStats total_stats() const;
  virtual void reset_stats();

 protected:
  PlatformSpec spec_;
  int nprocs_;
  RegionTable regions_;
  std::vector<MemProcStats> stats_;
};

/// Factory: builds the protocol model the spec asks for.
std::unique_ptr<MemModel> make_mem_model(const PlatformSpec& spec, int nprocs);

}  // namespace ptb
