// Memory-system model interface.
//
// The simulator is execution-driven: the real algorithm code runs and its
// annotated shared-memory operations are fed to one of these protocol models,
// which returns the latency (in virtual nanoseconds) the issuing processor
// pays. Models keep per-line/per-page protocol state keyed by *real*
// addresses inside registered shared regions, so allocation-policy effects
// (false sharing of ORIG's interleaved arrays, locality of LOCAL's
// per-processor pools) emerge from the genuine address stream.
//
// Thread-safety contract: on_read/on_write/on_rmw/on_acquire/on_release/
// on_barrier are called under the simulator's global ordering lock (one call
// at a time, in virtual-time order). on_read_shared is the force-phase fast
// path: it may be called concurrently from all processors, but only during
// phases in which no ordered writes to the same regions occur; models must
// restrict themselves to per-processor state plus commutative atomics there.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/region_table.hpp"
#include "platform/spec.hpp"

namespace ptb {

namespace trace {
class Tracer;
}

enum class Phase;  // rt/phase.hpp (scoped enum, int underlying type)

/// Identifies the concrete protocol model behind a MemModel* so the
/// simulator can dispatch the per-access hot path with a switch on this tag
/// (a direct, devirtualizable call into the `final` class — see
/// mem/dispatch.hpp) instead of a virtual hop. kOther covers decorators
/// (RaceModel) and the PTB_MEM_SLOWPATH oracle, which stay on the virtual
/// path.
enum class MemModelKind : std::uint8_t { kIdeal, kInvalidation, kHlrc, kOther };

/// True when PTB_MEM_SLOWPATH is set (non-empty, non-"0") in the
/// environment: the simulator and the protocol models fall back to the
/// reference per-access path — virtual dispatch, no line lookasides, span
/// charges decayed to per-element calls. Read from the environment on every
/// call (models sample it at construction), so tests can toggle it between
/// SimContext constructions; it is the oracle the fast path is proven
/// bit-identical against (tests/test_mem_equiv.cpp, docs/PERF.md).
bool mem_slowpath_enabled();

/// Per-processor memory-event counters (diagnostics, tests, Fig. 15-style
/// reporting).
struct MemProcStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t remote_misses = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t twins = 0;
  std::uint64_t diffs = 0;
  std::uint64_t notices_received = 0;
  std::uint64_t rmws = 0;
};

/// The one place the MemProcStats field list lives: each counter's metrics
/// name (`mem.<metric>` in the registry), its trace instant-event name
/// (nullptr for raw access counters too noisy to trace), and its field.
struct MemCounterDesc {
  const char* metric;
  const char* event;
  std::uint64_t MemProcStats::*field;
};
inline constexpr MemCounterDesc kMemCounters[] = {
    {"reads", nullptr, &MemProcStats::reads},
    {"writes", nullptr, &MemProcStats::writes},
    {"read_misses", "read-miss", &MemProcStats::read_misses},
    {"write_misses", "write-miss", &MemProcStats::write_misses},
    {"remote_misses", "remote-miss", &MemProcStats::remote_misses},
    {"invalidations_sent", "invalidation", &MemProcStats::invalidations_sent},
    {"page_faults", "page-fault", &MemProcStats::page_faults},
    {"twins", "twin", &MemProcStats::twins},
    {"diffs", "diff", &MemProcStats::diffs},
    {"notices_received", "write-notice", &MemProcStats::notices_received},
    {"rmws", nullptr, &MemProcStats::rmws},
};

/// Emits one trace instant per counter that advanced between `before` and
/// `after` (count = delta), timestamped `ts_ns` on `proc`'s track. The
/// simulator snapshots stats around each protocol-model call when tracing is
/// enabled, so memory events appear in the trace without any hook inside the
/// models' hot paths.
void trace_mem_events(trace::Tracer& tracer, int proc, const MemProcStats& before,
                      const MemProcStats& after, std::uint64_t ts_ns);

class MemModel {
 public:
  explicit MemModel(const PlatformSpec& spec, int nprocs)
      : spec_(spec),
        nprocs_(nprocs),
        stats_(static_cast<std::size_t>(nprocs)),
        fast_(!mem_slowpath_enabled()),
        la_(static_cast<std::size_t>(nprocs)) {}
  virtual ~MemModel() = default;

  MemModel(const MemModel&) = delete;
  MemModel& operator=(const MemModel&) = delete;

  /// Registers a shared region; accesses outside registered regions are
  /// treated as private (their cost is the processor's compute charge).
  virtual void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                               int fixed_home, std::string name);

  /// Drops all regions and protocol state (between experiment runs).
  virtual void reset();

  // --- ordered operations (called under the global ordering lock) ---
  virtual std::uint64_t on_read(int proc, const void* p, std::size_t n,
                                std::uint64_t now) = 0;
  virtual std::uint64_t on_write(int proc, const void* p, std::size_t n,
                                 std::uint64_t now) = 0;
  /// Atomic read-modify-write (e.g. ORIG's shared next-cell counter).
  virtual std::uint64_t on_rmw(int proc, const void* p, std::uint64_t now) = 0;
  /// Protocol work at lock acquisition, *excluding* queueing (the scheduler
  /// models waiting). For SVM protocols this is where write notices are
  /// applied (pages invalidated). `lock` identifies the lock object (the
  /// protocol models ignore it; analysis decorators key sync state by it).
  virtual std::uint64_t on_acquire(int proc, const void* lock, std::uint64_t now) = 0;
  /// Protocol work at lock release (HLRC: diff the interval's written pages
  /// to their homes and post write notices).
  virtual std::uint64_t on_release(int proc, const void* lock, std::uint64_t now) = 0;
  /// Barrier protocol, split so release-side work (flushing the interval)
  /// happens at arrival and acquire-side work (applying everyone's write
  /// notices) happens at departure, after all processors arrived.
  virtual std::uint64_t on_barrier_arrive(int proc, std::uint64_t now) = 0;
  virtual std::uint64_t on_barrier_depart(int proc, std::uint64_t now) = 0;

  /// Ordered access to a shared atomic (SimProc::ordered_load /
  /// ordered_store): `sync` is the atomic object's address, [p, p+n) the
  /// charged range. Protocol models keep the default (atomics cost the same
  /// as the plain access they charge); analysis decorators override to see
  /// the release/acquire structure.
  virtual std::uint64_t on_atomic(int proc, const void* sync, bool is_write,
                                  const void* p, std::size_t n, std::uint64_t now) {
    (void)sync;
    return is_write ? on_write(proc, p, n, now) : on_read(proc, p, n, now);
  }

  /// The issuing processor entered application phase `ph`. Pure metadata —
  /// protocol models ignore it; the race detector stamps it into reports.
  virtual void on_phase(int proc, Phase ph) {
    (void)proc;
    (void)ph;
  }

  // --- concurrent fast path (read-only phases) ---
  virtual std::uint64_t on_read_shared(int proc, const void* p, std::size_t n) = 0;

  /// Span form of on_read_shared: charges `count` elements of `n` bytes,
  /// element i at `p + i*stride`, in one call. The accounting contract is
  /// strict equivalence with the per-element loop below — same summed
  /// latency, same MemProcStats deltas, same protocol/cache state
  /// transitions in the same order — so annotation layers may batch
  /// contiguous runs freely without perturbing virtual time (docs/PERF.md).
  /// Protocol models override this with a single-resolution implementation;
  /// this default IS the contract.
  virtual std::uint64_t on_read_shared_span(int proc, const void* p, std::size_t n,
                                            std::size_t stride, std::size_t count) {
    const char* a = static_cast<const char*>(p);
    std::uint64_t cost = 0;
    for (std::size_t i = 0; i < count; ++i) cost += on_read_shared(proc, a + i * stride, n);
    return cost;
  }

  /// Concrete-model tag for sealed dispatch (mem/dispatch.hpp). Decorators
  /// keep the default: they must stay on the virtual path.
  /// Execution-serialization promise from the simulator: under the fiber
  /// backend an unordered stretch is host-atomic, which licenses the
  /// eager-invalidation cache mode (see CacheModel::touch_nv). Default off:
  /// the threads backend overlaps unordered stretches, where sweeping other
  /// processors' cache entries would race with their probes.
  virtual void set_serialized(bool) {}

  virtual MemModelKind kind() const { return MemModelKind::kOther; }

  const PlatformSpec& spec() const { return spec_; }
  int nprocs() const { return nprocs_; }
  virtual const MemProcStats& proc_stats(int p) const {
    return stats_[static_cast<std::size_t>(p)];
  }
  virtual MemProcStats total_stats() const;
  virtual void reset_stats();

 protected:
  /// Address resolution shared by the protocol models: lookaside-accelerated
  /// (per-processor LineLookaside — safe on the concurrent read_shared path)
  /// unless PTB_MEM_SLOWPATH, in which case it is exactly
  /// RegionTable::resolve_range. Both routes return bit-identical results.
  /// `region` reports the containing region's index (LineLookaside::kNotShared
  /// when unknown or unregistered) for cheap per-block home lookup.
  bool resolve_blocks(int proc, const void* p, std::size_t n, std::size_t& first,
                      std::size_t& last, int& home_first, std::int32_t& region) {
    if (fast_)
      return regions_.resolve_range_cached(p, n, nprocs_,
                                           la_[static_cast<std::size_t>(proc)], first,
                                           last, home_first, region);
    region = LineLookaside::kNotShared;
    return regions_.resolve_range(p, n, nprocs_, first, last, home_first);
  }
  /// Home of a non-first block of a resolved range: region arithmetic when
  /// the region is known, the block_home binary search otherwise.
  int later_block_home(std::int32_t region, std::size_t block) const {
    return region != LineLookaside::kNotShared ? regions_.home_in(region, block, nprocs_)
                                               : regions_.block_home(block, nprocs_);
  }
  /// register_region()/reset() call this: region registration re-sorts the
  /// table (region indices shift) and can turn a cached not-shared line into
  /// a shared one. Protocol transitions never require a flush — the memoized
  /// mapping is a pure function of the region list.
  void flush_lookasides() {
    for (auto& la : la_) la.flush();
  }

  PlatformSpec spec_;
  int nprocs_;
  RegionTable regions_;
  std::vector<MemProcStats> stats_;
  const bool fast_;  // !PTB_MEM_SLOWPATH, sampled at construction
  std::vector<LineLookaside> la_;  // per processor
};

/// Factory: builds the protocol model the spec asks for.
std::unique_ptr<MemModel> make_mem_model(const PlatformSpec& spec, int nprocs);

}  // namespace ptb
