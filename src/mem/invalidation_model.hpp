// Invalidation-based hardware/fine-grain coherence cost model.
//
// One implementation covers three of the paper's platforms, differing only in
// constants (PlatformSpec):
//   * kBus (SGI Challenge): uniform miss cost, snooping invalidation, optional
//     bus-occupancy serialization;
//   * kDirectory (SGI Origin2000): local/remote/3-hop miss asymmetry,
//     per-sharer invalidation cost;
//   * kFineGrainSC (Typhoon-0 SC): identical protocol structure, but miss
//     costs include the software protocol handlers on both ends.
//
// Per-block state: a sharer bitmask, a dirty owner, and a coherence *epoch*
// (bumped on every ownership change) that lazily invalidates other caches —
// see cache_model.hpp.
#pragma once

#include <atomic>
#include <memory>

#include "mem/cache_model.hpp"
#include "mem/model.hpp"

namespace ptb {

class InvalidationModel final : public MemModel {
 public:
  InvalidationModel(const PlatformSpec& spec, int nprocs);

  void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                       int fixed_home, std::string name) override;
  void reset() override;

  std::uint64_t on_read(int proc, const void* p, std::size_t n, std::uint64_t now) override;
  std::uint64_t on_write(int proc, const void* p, std::size_t n, std::uint64_t now) override;
  std::uint64_t on_rmw(int proc, const void* p, std::uint64_t now) override;
  std::uint64_t on_acquire(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_release(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_barrier_arrive(int proc, std::uint64_t now) override;
  std::uint64_t on_barrier_depart(int proc, std::uint64_t now) override;
  std::uint64_t on_read_shared(int proc, const void* p, std::size_t n) override;

  /// Test hook: coherence state of a block resolved from an address.
  struct BlockState {
    bool shared_region = false;
    std::uint64_t sharers = 0;
    int owner = -1;
    std::uint32_t epoch = 0;
    int home = 0;
  };
  BlockState block_state(const void* p);

 private:
  struct Line {
    std::atomic<std::uint64_t> sharers{0};
    std::atomic<std::int32_t> owner{-1};
    std::atomic<std::uint32_t> epoch{0};
  };

  void ensure_capacity();
  double miss_cost(int proc, int home, std::int32_t owner) const;
  std::uint64_t read_one(int proc, std::size_t block, int home, bool ordered);

  bool uniform_;  // bus: every miss costs the same regardless of home
  std::unique_ptr<Line[]> lines_;
  std::size_t nlines_ = 0;
  std::vector<CacheModel> caches_;
};

}  // namespace ptb
