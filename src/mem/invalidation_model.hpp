// Invalidation-based hardware/fine-grain coherence cost model.
//
// One implementation covers three of the paper's platforms, differing only in
// constants (PlatformSpec):
//   * kBus (SGI Challenge): uniform miss cost, snooping invalidation, optional
//     bus-occupancy serialization;
//   * kDirectory (SGI Origin2000): local/remote/3-hop miss asymmetry,
//     per-sharer invalidation cost;
//   * kFineGrainSC (Typhoon-0 SC): identical protocol structure, but miss
//     costs include the software protocol handlers on both ends.
//
// Per-block state: a sharer bitmask, a dirty owner, and a coherence *epoch*
// (bumped on every ownership change) that lazily invalidates other caches —
// see cache_model.hpp.
#pragma once

#include <atomic>
#include <memory>

#include "mem/cache_model.hpp"
#include "mem/model.hpp"

namespace ptb {

class InvalidationModel final : public MemModel {
 public:
  InvalidationModel(const PlatformSpec& spec, int nprocs);

  void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                       int fixed_home, std::string name) override;
  void reset() override;

  std::uint64_t on_read(int proc, const void* p, std::size_t n, std::uint64_t now) override;
  std::uint64_t on_write(int proc, const void* p, std::size_t n, std::uint64_t now) override;
  std::uint64_t on_rmw(int proc, const void* p, std::uint64_t now) override;
  std::uint64_t on_acquire(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_release(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_barrier_arrive(int proc, std::uint64_t now) override;
  std::uint64_t on_barrier_depart(int proc, std::uint64_t now) override;

  // The unordered force-phase path is header-inline: through the sealed
  // dispatch (mem/dispatch.hpp) the whole charge — resolution, per-line
  // coherence probe, cost — compiles into one direct code path under
  // SimProc::read_shared / read_shared_span.
  std::uint64_t on_read_shared(int proc, const void* p, std::size_t n) override {
    std::size_t first, last;
    int home;
    std::int32_t region;
    if (!resolve_blocks(proc, p, n, first, last, home, region)) return 0;
    std::uint64_t cost = 0;
    for (std::size_t b = first; b <= last; ++b) {
      cost += read_one(proc, b, b == first ? home : later_block_home(region, b),
                       /*ordered=*/false);
    }
    return cost;
  }

  // One resolution for the whole run when it stays inside a single region
  // (the annotation layer's contiguous-slot runs always do); otherwise the
  // base-class per-element loop IS the accounting contract.
  //
  // Within an eligible run, duplicate block visits collapse: element
  // addresses are nondecreasing, so a revisited block was last probed at
  // most (blocks-per-element - 1) distinct fills ago. When that bound is
  // below the cache associativity (or the cache is infinite) the block is
  // provably still resident — it held the newest LRU stamp at its probe and
  // fewer than `ways` fills intervened — and its epoch cannot have moved,
  // because an unordered stretch is host-atomic under the simulator's turn
  // serialization (no other processor runs mid-span). Each duplicate
  // therefore charges exactly the hit cost and re-stamps the LRU entry
  // (CacheModel::restamp), skipping the epoch load, the Line state and the
  // per-visit counter write; `reads` is batched once per span. Per (element,
  // line) the accounting is bit-identical to the scalar loop.
  std::uint64_t on_read_shared_span(int proc, const void* p, std::size_t n,
                                    std::size_t stride, std::size_t count) override {
    if (count == 0) return 0;
    std::size_t first, last;
    int home;
    std::int32_t region;
    if (!fast_ || !resolve_blocks(proc, p, 0, first, last, home, region) ||
        region == LineLookaside::kNotShared)
      return MemModel::on_read_shared_span(proc, p, n, stride, count);
    const Region& r = regions_.regions()[static_cast<std::size_t>(region)];
    const auto a0 = reinterpret_cast<std::uintptr_t>(p);
    const std::size_t nn = n > 0 ? n : 1;
    if (a0 + (count - 1) * stride + nn > r.base + r.bytes)
      return MemModel::on_read_shared_span(proc, p, n, stride, count);
    const unsigned sh = regions_.block_shift();
    const std::uintptr_t region_line = r.base >> sh;
    auto& st = stats_[static_cast<std::size_t>(proc)];
    auto& cache = caches_[static_cast<std::size_t>(proc)];
    const std::size_t max_bpe =
        ((nn + regions_.block_bytes() - 2) >> sh) + 1;  // worst-case blocks/element
    const bool collapse = cache.infinite() || max_bpe <= cache.ways();
    const auto hit_ns = static_cast<std::uint64_t>(spec_.read_hit_ns);
    std::uint64_t cost = 0;
    std::uint64_t visits = 0;
    std::size_t done = 0;  // highest block already visited this span, +1
    for (std::size_t i = 0; i < count; ++i) {
      const std::uintptr_t a = a0 + i * stride;
      std::size_t b0 = r.first_block + ((a >> sh) - region_line);
      const std::size_t b1 = r.first_block + (((a + nn - 1) >> sh) - region_line);
      visits += b1 - b0 + 1;
      if (collapse && b0 < done) {
        const std::size_t dup_last = b1 < done - 1 ? b1 : done - 1;
        for (std::size_t b = b0; b <= dup_last; ++b) {
          cache.restamp(b);
          cost += hit_ns;
        }
        b0 = dup_last + 1;
      }
      for (std::size_t b = b0; b <= b1; ++b)
        cost += probe_one(st, proc, b, regions_.home_in(region, b, nprocs_));
      done = b1 + 1;
    }
    st.reads += visits;
    return cost;
  }

  MemModelKind kind() const override { return MemModelKind::kInvalidation; }

  /// Serialized execution (fiber backend) switches the caches to eager
  /// invalidation: epoch bumps sweep the other processors' entries stale on
  /// the spot (CacheModel::mark_stale), so every read probe skips the shared
  /// per-block epoch load. Provably the same hits/misses/LRU decisions as
  /// the lazy scheme — "entry valid" and "fill epoch == current epoch" are
  /// equivalent by induction over the bump sites (docs/PERF.md). The threads
  /// backend stays lazy: there, unordered stretches overlap in host time and
  /// a sweep would race with the owning processor's probes.
  void set_serialized(bool s) override { serialized_ = s; }

  /// Test hook: coherence state of a block resolved from an address.
  struct BlockState {
    bool shared_region = false;
    std::uint64_t sharers = 0;
    int owner = -1;
    std::uint32_t epoch = 0;
    int home = 0;
  };
  BlockState block_state(const void* p);

 private:
  struct Line {
    std::atomic<std::uint64_t> sharers{0};
    std::atomic<std::int32_t> owner{-1};
    std::atomic<std::uint32_t> epoch{0};
  };

  void ensure_capacity();

  double miss_cost(int proc, int home, std::int32_t owner) const {
    if (owner >= 0 && owner != proc) return spec_.dirty_miss_ns;  // intervention
    if (uniform_ || home == proc) return spec_.local_miss_ns;
    return spec_.remote_miss_ns;
  }

  /// Unordered probe: everything read_one does except the `reads` counter,
  /// which the span path batches. The concurrent-read rules (no owner
  /// downgrade, no bus occupancy) apply.
  std::uint64_t probe_one(MemProcStats& st, int proc, std::size_t block, int home) {
    Line& line = lines_[block];
    if (serialized_) {
      if (caches_[static_cast<std::size_t>(proc)].touch_nv(block))
        return static_cast<std::uint64_t>(spec_.read_hit_ns);
    } else {
      const std::uint32_t epoch = line.epoch.load(std::memory_order_acquire);
      if (caches_[static_cast<std::size_t>(proc)].touch(block, epoch))
        return static_cast<std::uint64_t>(spec_.read_hit_ns);
    }
    ++st.read_misses;
    const std::int32_t owner = line.owner.load(std::memory_order_relaxed);
    const double cost = miss_cost(proc, home, owner);
    if (!uniform_ && home != proc) ++st.remote_misses;
    line.sharers.fetch_or(1ull << proc, std::memory_order_relaxed);
    return static_cast<std::uint64_t>(cost);
  }

  std::uint64_t read_one(int proc, std::size_t block, int home, bool ordered) {
    auto& st = stats_[static_cast<std::size_t>(proc)];
    ++st.reads;
    if (!ordered) return probe_one(st, proc, block, home);
    Line& line = lines_[block];
    if (serialized_) {
      if (caches_[static_cast<std::size_t>(proc)].touch_nv(block))
        return static_cast<std::uint64_t>(spec_.read_hit_ns);
    } else {
      const std::uint32_t epoch = line.epoch.load(std::memory_order_acquire);
      if (caches_[static_cast<std::size_t>(proc)].touch(block, epoch))
        return static_cast<std::uint64_t>(spec_.read_hit_ns);
    }

    ++st.read_misses;
    const std::int32_t owner = line.owner.load(std::memory_order_relaxed);
    double cost = miss_cost(proc, home, owner);
    if (!uniform_ && home != proc) ++st.remote_misses;
    if (owner >= 0 && owner != proc) {
      // Dirty elsewhere: the read downgrades the owner to shared (write-back).
      // Only the globally ordered path mutates this — on the concurrent
      // read-shared fast path every reader pays the intervention cost and the
      // owner is left for the next ordered write to reset, which keeps the
      // fast path deterministic under any host interleaving.
      line.owner.store(-1, std::memory_order_relaxed);
    }
    line.sharers.fetch_or(1ull << proc, std::memory_order_relaxed);
    if (spec_.bus_occupancy_ns > 0.0) {
      // Bus serialization is only modeled on the globally ordered path, where
      // virtual time is coherent across processors.
      cost += spec_.bus_occupancy_ns;
    }
    return static_cast<std::uint64_t>(cost);
  }

  bool uniform_;  // bus: every miss costs the same regardless of home
  bool serialized_ = false;  // eager-invalidation mode (see set_serialized)
  std::unique_ptr<Line[]> lines_;
  std::size_t nlines_ = 0;
  std::vector<CacheModel> caches_;
};

}  // namespace ptb
