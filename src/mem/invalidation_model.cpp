#include "mem/invalidation_model.hpp"

#include <bit>

#include "support/check.hpp"

namespace ptb {

InvalidationModel::InvalidationModel(const PlatformSpec& spec, int nprocs)
    : MemModel(spec, nprocs), uniform_(spec.protocol == Protocol::kBus) {
  PTB_CHECK_MSG(nprocs <= 64, "sharer bitmask holds at most 64 processors");
  regions_.set_block_bytes(spec.block_bytes);
  caches_.resize(static_cast<std::size_t>(nprocs));
  for (auto& c : caches_)
    c.init(spec.cache_bytes, spec.block_bytes, spec.cache_ways);
}

void InvalidationModel::register_region(const void* base, std::size_t bytes,
                                        HomePolicy policy, int fixed_home,
                                        std::string name) {
  MemModel::register_region(base, bytes, policy, fixed_home, std::move(name));
  ensure_capacity();
}

void InvalidationModel::ensure_capacity() {
  const std::size_t need = regions_.total_blocks();
  if (need <= nlines_) return;
  auto fresh = std::make_unique<Line[]>(need);
  // Region registration happens before parallel execution; state for already
  // existing blocks is carried over.
  for (std::size_t i = 0; i < nlines_; ++i) {
    fresh[i].sharers.store(lines_[i].sharers.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    fresh[i].owner.store(lines_[i].owner.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    fresh[i].epoch.store(lines_[i].epoch.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  lines_ = std::move(fresh);
  nlines_ = need;
}

void InvalidationModel::reset() {
  MemModel::reset();
  lines_.reset();
  nlines_ = 0;
  for (auto& c : caches_) c.clear();
}

std::uint64_t InvalidationModel::on_read(int proc, const void* p, std::size_t n,
                                         std::uint64_t /*now*/) {
  std::size_t first, last;
  int home;
  std::int32_t region;
  if (!resolve_blocks(proc, p, n, first, last, home, region)) return 0;
  std::uint64_t cost = 0;
  for (std::size_t b = first; b <= last; ++b) {
    cost += read_one(proc, b, b == first ? home : later_block_home(region, b),
                     /*ordered=*/true);
  }
  return cost;
}

std::uint64_t InvalidationModel::on_write(int proc, const void* p, std::size_t n,
                                          std::uint64_t /*now*/) {
  std::size_t first, last;
  int home;
  std::int32_t region;
  if (!resolve_blocks(proc, p, n, first, last, home, region)) return 0;
  auto& st = stats_[static_cast<std::size_t>(proc)];
  std::uint64_t cost = 0;
  const std::uint64_t self_bit = 1ull << proc;
  for (std::size_t b = first; b <= last; ++b) {
    ++st.writes;
    const int h = b == first ? home : later_block_home(region, b);
    Line& line = lines_[b];
    std::uint32_t epoch = line.epoch.load(std::memory_order_relaxed);
    const std::uint64_t sharers = line.sharers.load(std::memory_order_relaxed);
    const std::int32_t owner = line.owner.load(std::memory_order_relaxed);
    const bool cached =
        serialized_ ? caches_[static_cast<std::size_t>(proc)].touch_nv(b)
                    : caches_[static_cast<std::size_t>(proc)].touch(b, epoch);
    if (cached && owner == proc && (sharers & ~self_bit) == 0) {
      continue;  // already exclusive-modified: free
    }
    ++st.write_misses;
    const int others = std::popcount(sharers & ~self_bit);
    double c = miss_cost(proc, h, owner) +
               static_cast<double>(others) * spec_.inval_per_sharer_ns;
    if (!uniform_ && h != proc) ++st.remote_misses;
    st.invalidations_sent += static_cast<std::uint64_t>(others);
    if (spec_.bus_occupancy_ns > 0.0) c += spec_.bus_occupancy_ns;
    // Ownership change: bump the epoch so every other copy goes stale, then
    // refresh our own copy at the new epoch.
    ++epoch;
    line.epoch.store(epoch, std::memory_order_release);
    line.sharers.store(self_bit, std::memory_order_relaxed);
    line.owner.store(proc, std::memory_order_relaxed);
    if (serialized_) {
      // Eager mode: the bump invalidates the other copies NOW instead of at
      // their next probe. Own copy refreshes exactly like the lazy re-touch.
      for (int q = 0; q < nprocs_; ++q)
        if (q != proc) caches_[static_cast<std::size_t>(q)].mark_stale(b);
      caches_[static_cast<std::size_t>(proc)].touch_nv(b);
    } else {
      caches_[static_cast<std::size_t>(proc)].touch(b, epoch);
    }
    cost += static_cast<std::uint64_t>(c);
  }
  return cost;
}

std::uint64_t InvalidationModel::on_rmw(int proc, const void* p, std::uint64_t now) {
  auto& st = stats_[static_cast<std::size_t>(proc)];
  ++st.rmws;
  // Atomic RMW: behaves like a write that always goes to the interconnect
  // (LL/SC or fetch&op bypasses the cache's silent-hit path).
  const BlockRef ref = regions_.resolve(p, nprocs_);
  if (!ref.shared) return static_cast<std::uint64_t>(spec_.local_miss_ns);
  Line& line = lines_[ref.block];
  const std::uint64_t self_bit = 1ull << proc;
  const std::uint64_t sharers = line.sharers.load(std::memory_order_relaxed);
  const std::int32_t owner = line.owner.load(std::memory_order_relaxed);
  const int others = std::popcount(sharers & ~self_bit);
  double c = miss_cost(proc, ref.home, owner) +
             static_cast<double>(others) * spec_.inval_per_sharer_ns;
  st.invalidations_sent += static_cast<std::uint64_t>(others);
  std::uint32_t epoch = line.epoch.load(std::memory_order_relaxed) + 1;
  line.epoch.store(epoch, std::memory_order_release);
  line.sharers.store(self_bit, std::memory_order_relaxed);
  line.owner.store(proc, std::memory_order_relaxed);
  if (serialized_) {
    for (int q = 0; q < nprocs_; ++q)
      if (q != proc) caches_[static_cast<std::size_t>(q)].mark_stale(ref.block);
    caches_[static_cast<std::size_t>(proc)].touch_nv(ref.block);
  } else {
    caches_[static_cast<std::size_t>(proc)].touch(ref.block, epoch);
  }
  (void)now;
  return static_cast<std::uint64_t>(c);
}

std::uint64_t InvalidationModel::on_acquire(int proc, const void* /*lock*/, std::uint64_t /*now*/) {
  (void)proc;
  return static_cast<std::uint64_t>(spec_.lock_ns);
}

std::uint64_t InvalidationModel::on_release(int proc, const void* /*lock*/, std::uint64_t /*now*/) {
  (void)proc;
  return static_cast<std::uint64_t>(spec_.lock_ns * 0.25);
}

std::uint64_t InvalidationModel::on_barrier_arrive(int /*proc*/, std::uint64_t /*now*/) {
  return 0;  // hardware barriers have no release-side protocol work
}

std::uint64_t InvalidationModel::on_barrier_depart(int /*proc*/, std::uint64_t /*now*/) {
  return static_cast<std::uint64_t>(spec_.barrier_base_ns);
}

InvalidationModel::BlockState InvalidationModel::block_state(const void* p) {
  BlockState out;
  const BlockRef ref = regions_.resolve(p, nprocs_);
  if (!ref.shared) return out;
  out.shared_region = true;
  Line& line = lines_[ref.block];
  out.sharers = line.sharers.load(std::memory_order_relaxed);
  out.owner = line.owner.load(std::memory_order_relaxed);
  out.epoch = line.epoch.load(std::memory_order_relaxed);
  out.home = ref.home;
  return out;
}

}  // namespace ptb
