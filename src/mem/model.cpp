#include "mem/model.hpp"

#include <cstdlib>

#include "mem/hlrc_model.hpp"
#include "mem/ideal_model.hpp"
#include "mem/invalidation_model.hpp"
#include "support/check.hpp"
#include "trace/trace.hpp"

namespace ptb {

bool mem_slowpath_enabled() {
  // Deliberately NOT cached in a static: equivalence tests flip the variable
  // between SimContext constructions within one process.
  const char* env = std::getenv("PTB_MEM_SLOWPATH");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

void MemModel::register_region(const void* base, std::size_t bytes, HomePolicy policy,
                               int fixed_home, std::string name) {
  PTB_CHECK(fixed_home >= 0 && fixed_home < nprocs_);
  regions_.add(base, bytes, policy, fixed_home, std::move(name), nprocs_);
  flush_lookasides();
}

void MemModel::reset() {
  regions_.clear();
  reset_stats();
  flush_lookasides();
}

void MemModel::reset_stats() {
  stats_.assign(static_cast<std::size_t>(nprocs_), MemProcStats{});
}

MemProcStats MemModel::total_stats() const {
  MemProcStats t;
  for (const auto& s : stats_)
    for (const MemCounterDesc& c : kMemCounters) t.*c.field += s.*c.field;
  return t;
}

void trace_mem_events(trace::Tracer& tracer, int proc, const MemProcStats& before,
                      const MemProcStats& after, std::uint64_t ts_ns) {
  for (const MemCounterDesc& c : kMemCounters) {
    if (c.event == nullptr) continue;
    const std::uint64_t delta = after.*c.field - before.*c.field;
    if (delta != 0)
      tracer.instant(proc, trace::kCatMem, c.event, ts_ns,
                     static_cast<std::uint32_t>(delta));
  }
}

std::unique_ptr<MemModel> make_mem_model(const PlatformSpec& spec, int nprocs) {
  switch (spec.protocol) {
    case Protocol::kIdeal:
      return std::make_unique<IdealModel>(spec, nprocs);
    case Protocol::kBus:
    case Protocol::kDirectory:
    case Protocol::kFineGrainSC:
      return std::make_unique<InvalidationModel>(spec, nprocs);
    case Protocol::kHlrc:
      return std::make_unique<HlrcModel>(spec, nprocs);
  }
  PTB_CHECK_MSG(false, "unhandled protocol");
  return nullptr;
}

}  // namespace ptb
