#include "mem/model.hpp"

#include "mem/hlrc_model.hpp"
#include "mem/invalidation_model.hpp"
#include "support/check.hpp"
#include "trace/trace.hpp"

namespace ptb {
namespace {

/// Zero-cost shared memory: used to validate scheduler logic and as a PRAM
/// reference in tests (speedups under kIdeal should track the critical path).
class IdealModel final : public MemModel {
 public:
  IdealModel(const PlatformSpec& spec, int nprocs) : MemModel(spec, nprocs) {
    regions_.set_block_bytes(spec.block_bytes);
  }

  std::uint64_t on_read(int proc, const void*, std::size_t, std::uint64_t) override {
    ++stats_[static_cast<std::size_t>(proc)].reads;
    return 0;
  }
  std::uint64_t on_write(int proc, const void*, std::size_t, std::uint64_t) override {
    ++stats_[static_cast<std::size_t>(proc)].writes;
    return 0;
  }
  std::uint64_t on_rmw(int proc, const void*, std::uint64_t) override {
    ++stats_[static_cast<std::size_t>(proc)].rmws;
    return 0;
  }
  std::uint64_t on_acquire(int, const void*, std::uint64_t) override { return 0; }
  std::uint64_t on_release(int, const void*, std::uint64_t) override { return 0; }
  std::uint64_t on_barrier_arrive(int, std::uint64_t) override { return 0; }
  std::uint64_t on_barrier_depart(int, std::uint64_t) override { return 0; }
  std::uint64_t on_read_shared(int proc, const void*, std::size_t) override {
    ++stats_[static_cast<std::size_t>(proc)].reads;
    return 0;
  }
};

}  // namespace

void MemModel::register_region(const void* base, std::size_t bytes, HomePolicy policy,
                               int fixed_home, std::string name) {
  PTB_CHECK(fixed_home >= 0 && fixed_home < nprocs_);
  regions_.add(base, bytes, policy, fixed_home, std::move(name), nprocs_);
}

void MemModel::reset() {
  regions_.clear();
  reset_stats();
}

void MemModel::reset_stats() {
  stats_.assign(static_cast<std::size_t>(nprocs_), MemProcStats{});
}

MemProcStats MemModel::total_stats() const {
  MemProcStats t;
  for (const auto& s : stats_)
    for (const MemCounterDesc& c : kMemCounters) t.*c.field += s.*c.field;
  return t;
}

void trace_mem_events(trace::Tracer& tracer, int proc, const MemProcStats& before,
                      const MemProcStats& after, std::uint64_t ts_ns) {
  for (const MemCounterDesc& c : kMemCounters) {
    if (c.event == nullptr) continue;
    const std::uint64_t delta = after.*c.field - before.*c.field;
    if (delta != 0)
      tracer.instant(proc, trace::kCatMem, c.event, ts_ns,
                     static_cast<std::uint32_t>(delta));
  }
}

std::unique_ptr<MemModel> make_mem_model(const PlatformSpec& spec, int nprocs) {
  switch (spec.protocol) {
    case Protocol::kIdeal:
      return std::make_unique<IdealModel>(spec, nprocs);
    case Protocol::kBus:
    case Protocol::kDirectory:
    case Protocol::kFineGrainSC:
      return std::make_unique<InvalidationModel>(spec, nprocs);
    case Protocol::kHlrc:
      return std::make_unique<HlrcModel>(spec, nprocs);
  }
  PTB_CHECK_MSG(false, "unhandled protocol");
  return nullptr;
}

}  // namespace ptb
