#include "mem/cache_model.hpp"

#include "support/check.hpp"

namespace ptb {
namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void CacheModel::init(std::size_t cache_bytes, std::size_t block_bytes, int ways) {
  tick_ = 0;
  evictions_ = 0;
  if (cache_bytes == 0) {
    infinite_ = true;
    entries_.clear();
    resident_epoch_.clear();
    return;
  }
  PTB_CHECK(block_bytes > 0 && ways > 0);
  infinite_ = false;
  ways_ = static_cast<std::size_t>(ways);
  const std::size_t blocks = cache_bytes / block_bytes;
  nsets_ = round_up_pow2(blocks / ways_ > 0 ? blocks / ways_ : 1);
  entries_.assign(nsets_ * ways_, Entry{});
  resident_epoch_.clear();
}

void CacheModel::clear() {
  tick_ = 0;
  evictions_ = 0;
  if (infinite_) {
    resident_epoch_.assign(resident_epoch_.size(), 0);
  } else {
    entries_.assign(entries_.size(), Entry{});
  }
}

bool CacheModel::touch(std::size_t block, std::uint32_t epoch) {
  if (infinite_) {
    if (resident_epoch_.size() <= block) resident_epoch_.resize(block + 1, 0);
    const bool hit = resident_epoch_[block] == epoch + 1;
    resident_epoch_[block] = epoch + 1;
    return hit;
  }
  Entry* set = &entries_[set_of(block) * ways_];
  const std::uint64_t key = static_cast<std::uint64_t>(block) + 1;
  ++tick_;
  Entry* victim = set;
  for (std::size_t w = 0; w < ways_; ++w) {
    Entry& e = set[w];
    if (e.key == key) {
      e.stamp = tick_;
      if (e.epoch == epoch) return true;
      e.epoch = epoch;  // stale copy: refill in place
      return false;
    }
    if (e.stamp < victim->stamp) victim = &e;
  }
  if (victim->key != 0) ++evictions_;
  victim->key = key;
  victim->stamp = tick_;
  victim->epoch = epoch;
  return false;
}

bool CacheModel::present(std::size_t block, std::uint32_t epoch) const {
  if (infinite_) {
    return block < resident_epoch_.size() && resident_epoch_[block] == epoch + 1;
  }
  const Entry* set = &entries_[set_of(block) * ways_];
  const std::uint64_t key = static_cast<std::uint64_t>(block) + 1;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (set[w].key == key) return set[w].epoch == epoch;
  }
  return false;
}

}  // namespace ptb
