#include "mem/cache_model.hpp"

#include "support/check.hpp"

namespace ptb {
namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void CacheModel::init(std::size_t cache_bytes, std::size_t block_bytes, int ways) {
  tick_ = 0;
  evictions_ = 0;
  if (cache_bytes == 0) {
    infinite_ = true;
    entries_.clear();
    resident_epoch_.clear();
    return;
  }
  PTB_CHECK(block_bytes > 0 && ways > 0);
  infinite_ = false;
  ways_ = static_cast<std::size_t>(ways);
  const std::size_t blocks = cache_bytes / block_bytes;
  nsets_ = round_up_pow2(blocks / ways_ > 0 ? blocks / ways_ : 1);
  entries_.assign(nsets_ * ways_, Entry{});
  resident_epoch_.clear();
}

void CacheModel::clear() {
  tick_ = 0;
  evictions_ = 0;
  if (infinite_) {
    resident_epoch_.assign(resident_epoch_.size(), 0);
  } else {
    entries_.assign(entries_.size(), Entry{});
  }
}

}  // namespace ptb
