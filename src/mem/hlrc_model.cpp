#include "mem/hlrc_model.hpp"

#include "support/check.hpp"

namespace ptb {

HlrcModel::HlrcModel(const PlatformSpec& spec, int nprocs) : MemModel(spec, nprocs) {
  PTB_CHECK_MSG(nprocs <= 64, "writer bitmask holds at most 64 processors");
  regions_.set_block_bytes(spec.block_bytes);
  wset_.resize(static_cast<std::size_t>(nprocs));
  log_pos_.assign(static_cast<std::size_t>(nprocs), 0);
  local_cache_.resize(static_cast<std::size_t>(nprocs));
  for (auto& c : local_cache_) c.init(spec.cache_bytes, 64, spec.cache_ways);
}

void HlrcModel::register_region(const void* base, std::size_t bytes, HomePolicy policy,
                                int fixed_home, std::string name) {
  MemModel::register_region(base, bytes, policy, fixed_home, std::move(name));
  ensure_capacity();
}

void HlrcModel::ensure_capacity() {
  const std::size_t need = regions_.total_blocks();
  if (need <= npages_) return;
  // Regions must all be registered before simulation starts: the per-proc
  // arrays are re-laid-out here, which would lose in-flight protocol state.
  PTB_CHECK_MSG(notices_.empty(), "register all regions before simulating");
  npages_ = need;
  std::vector<std::atomic<std::uint32_t>> fresh(npages_);
  version_.swap(fresh);
  copy_version_.assign(static_cast<std::size_t>(nprocs_) * npages_, 0);
  required_version_.assign(static_cast<std::size_t>(nprocs_) * npages_, 0);
  wmask_.assign(npages_, 0);
}

void HlrcModel::reset() {
  MemModel::reset();
  for (auto& c : local_cache_) c.clear();
  npages_ = 0;
  version_.clear();
  copy_version_.clear();
  required_version_.clear();
  wmask_.clear();
  for (auto& w : wset_) w.clear();
  notices_.clear();
  log_pos_.assign(static_cast<std::size_t>(nprocs_), 0);
}

std::uint64_t HlrcModel::track_write(int proc, std::size_t page, int home) {
  const std::uint64_t bit = 1ull << proc;
  if (wmask_[page] & bit) return 0;  // already tracked this interval
  wmask_[page] |= bit;
  wset_[static_cast<std::size_t>(proc)].push_back(static_cast<std::uint32_t>(page));
  if (proc == home) return 0;  // the home writes its copy in place: no twin
  ++stats_[static_cast<std::size_t>(proc)].twins;
  return static_cast<std::uint64_t>(spec_.twin_ns);
}

std::uint64_t HlrcModel::on_write(int proc, const void* p, std::size_t n,
                                  std::uint64_t /*now*/) {
  std::size_t first, last;
  int home;
  std::int32_t region;
  if (!resolve_blocks(proc, p, n, first, last, home, region)) return 0;
  auto& st = stats_[static_cast<std::size_t>(proc)];
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  const std::size_t bb = regions_.block_bytes();
  std::uint64_t cost = local_touch_at(proc, first * bb + a % bb, n);
  for (std::size_t b = first; b <= last; ++b) {
    const int h = b == first ? home : later_block_home(region, b);
    ++st.writes;
    cost += maybe_fault(proc, b, h);  // write fault fetches the page too
    cost += track_write(proc, b, h);
  }
  return cost;
}

std::uint64_t HlrcModel::on_rmw(int proc, const void* p, std::uint64_t now) {
  // An atomic fetch&op on SVM is a miniature acquire/write/release through
  // the synchronization manager: this is why ORIG's shared next-cell counter
  // is so damaging on these platforms.
  auto& st = stats_[static_cast<std::size_t>(proc)];
  ++st.rmws;
  std::uint64_t cost = static_cast<std::uint64_t>(spec_.svm_lock_ns);
  cost += apply_notices(proc);
  const BlockRef ref = regions_.resolve(p, nprocs_);
  if (ref.shared) {
    cost += maybe_fault(proc, ref.block, ref.home);
    cost += track_write(proc, ref.block, ref.home);
    // Release the counter page immediately so other processors see it.
    const std::uint32_t v = version_[ref.block].load(std::memory_order_relaxed) + 1;
    version_[ref.block].store(v, std::memory_order_release);
    notices_.push_back(Notice{static_cast<std::uint32_t>(ref.block), v, proc});
    // Our own copy stays valid at the new version.
    copy_version_[static_cast<std::size_t>(proc) * npages_ + ref.block] = v + 1;
    // The page leaves the interval write set (it was just flushed); the
    // pending wset entry is skipped at release via the cleared mask bit.
    wmask_[ref.block] &= ~(1ull << proc);
    cost += static_cast<std::uint64_t>(spec_.diff_per_page_ns);
    ++st.diffs;
  }
  (void)now;
  return cost;
}

std::uint64_t HlrcModel::flush_interval(int proc) {
  auto& st = stats_[static_cast<std::size_t>(proc)];
  auto& ws = wset_[static_cast<std::size_t>(proc)];
  std::uint64_t cost = 0;
  const std::uint64_t bit = 1ull << proc;
  for (std::uint32_t page : ws) {
    if (!(wmask_[page] & bit)) continue;  // flushed by an interleaved rmw path
    wmask_[page] &= ~bit;
    const std::uint32_t v = version_[page].load(std::memory_order_relaxed) + 1;
    version_[page].store(v, std::memory_order_release);
    notices_.push_back(Notice{page, v, proc});
    // The writer's own copy incorporates its writes at the new version.
    copy_version_[static_cast<std::size_t>(proc) * npages_ + page] = v + 1;
    if (regions_.block_home(page, nprocs_) == proc) {
      // Home pages are written in place: only the write notice is posted.
      cost += static_cast<std::uint64_t>(spec_.notice_ns);
    } else {
      cost += static_cast<std::uint64_t>(spec_.diff_per_page_ns);
      ++st.diffs;
    }
  }
  ws.clear();
  return cost;
}

std::uint64_t HlrcModel::apply_notices(int proc) {
  auto& st = stats_[static_cast<std::size_t>(proc)];
  std::size_t& pos = log_pos_[static_cast<std::size_t>(proc)];
  std::uint64_t cost = 0;
  for (; pos < notices_.size(); ++pos) {
    const Notice& nt = notices_[pos];
    if (nt.writer == proc) continue;
    std::uint32_t& req =
        required_version_[static_cast<std::size_t>(proc) * npages_ + nt.page];
    if (nt.version > req) req = nt.version;
    ++st.notices_received;
    cost += static_cast<std::uint64_t>(spec_.notice_ns);
  }
  return cost;
}

std::uint64_t HlrcModel::on_acquire(int proc, const void* /*lock*/, std::uint64_t /*now*/) {
  return static_cast<std::uint64_t>(spec_.svm_lock_ns) + apply_notices(proc);
}

std::uint64_t HlrcModel::on_release(int proc, const void* /*lock*/, std::uint64_t /*now*/) {
  return flush_interval(proc);
}

std::uint64_t HlrcModel::on_barrier_arrive(int proc, std::uint64_t /*now*/) {
  return flush_interval(proc);
}

std::uint64_t HlrcModel::on_barrier_depart(int proc, std::uint64_t /*now*/) {
  return static_cast<std::uint64_t>(spec_.svm_barrier_ns) + apply_notices(proc);
}

HlrcModel::PageState HlrcModel::page_state(const void* p, int proc) {
  PageState out;
  const BlockRef ref = regions_.resolve(p, nprocs_);
  if (!ref.shared) return out;
  out.shared_region = true;
  out.version = version_[ref.block].load(std::memory_order_relaxed);
  out.valid_for_proc = copy_valid(proc, ref.block, ref.home);
  out.home = ref.home;
  return out;
}

}  // namespace ptb
