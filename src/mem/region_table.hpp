// Registered shared-memory regions and address → (region, block) resolution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ptb {

/// Where the blocks (lines or pages) of a region live.
enum class HomePolicy {
  kFixed,             // all blocks homed on one processor (per-proc pools)
  kInterleavedBlock,  // round-robin by block (ORIG's single shared array,
                      // SGI-style interleaved/striped placement)
  kProcStriped,       // region divided into nprocs equal chunks, chunk i
                      // homed on processor i (per-proc slices of one array)
};

struct Region {
  std::uintptr_t base = 0;
  std::size_t bytes = 0;
  HomePolicy policy = HomePolicy::kInterleavedBlock;
  int fixed_home = 0;
  std::string name;
  /// Index of this region's first block in the model's state arrays.
  std::size_t first_block = 0;
  std::size_t num_blocks = 0;
};

/// Resolution of one address.
struct BlockRef {
  bool shared = false;       // false => private memory, not modeled
  std::size_t block = 0;     // global block index into model state arrays
  int home = 0;              // home processor of the block
  std::uint32_t region = 0;  // region index
};

class RegionTable {
 public:
  /// Configure the block size (coherence granularity) before registering.
  void set_block_bytes(std::size_t b) { block_bytes_ = b; }
  std::size_t block_bytes() const { return block_bytes_; }

  void add(const void* base, std::size_t bytes, HomePolicy policy, int fixed_home,
           std::string name, int nprocs);
  void clear();

  /// Total blocks across all regions (size protocol state arrays to this).
  std::size_t total_blocks() const { return total_blocks_; }

  /// Resolves an address. Returns shared=false for unregistered memory.
  BlockRef resolve(const void* p, int nprocs) const;

  /// Stable byte offset of a registered address: the region's block span
  /// mapped to registration-ordered virtual bytes, preserving the offset
  /// within each block. Use this instead of the raw address wherever a
  /// finer-than-block grid is needed (e.g. the HLRC local cache's 64 B
  /// lines), so results do not depend on where the allocator/ASLR placed
  /// the region. Returns false for unregistered memory.
  bool virtual_offset(const void* p, std::size_t& off) const;

  /// Range of global block indices [first, last] covered by [p, p+n).
  /// Returns false if the address is not in a registered region.
  bool resolve_range(const void* p, std::size_t n, int nprocs, std::size_t& first,
                     std::size_t& last, int& home_of_first) const;

  /// Home processor of a global block index (binary search over the regions
  /// ordered by first_block; hit on every block of a multi-block access that
  /// spans interleaved homes).
  int block_home(std::size_t global_block, int nprocs) const;

  const std::vector<Region>& regions() const { return regions_; }

 private:
  const Region* find(std::uintptr_t a) const;
  int home_of(const Region& r, std::size_t block_in_region, int nprocs) const;

  std::size_t block_bytes_ = 128;
  std::size_t total_blocks_ = 0;
  std::vector<Region> regions_;  // sorted by base
  // regions_ indices ordered by first_block: global block indices are assigned
  // in registration order, which the sort by base permutes, so block_home
  // needs its own sorted view to binary-search.
  std::vector<std::uint32_t> block_order_;
};

}  // namespace ptb
