// Registered shared-memory regions and address → (region, block) resolution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ptb {

/// Where the blocks (lines or pages) of a region live.
enum class HomePolicy {
  kFixed,             // all blocks homed on one processor (per-proc pools)
  kInterleavedBlock,  // round-robin by block (ORIG's single shared array,
                      // SGI-style interleaved/striped placement)
  kProcStriped,       // region divided into nprocs equal chunks, chunk i
                      // homed on processor i (per-proc slices of one array)
};

struct Region {
  std::uintptr_t base = 0;
  std::size_t bytes = 0;
  HomePolicy policy = HomePolicy::kInterleavedBlock;
  int fixed_home = 0;
  std::string name;
  /// Index of this region's first block in the model's state arrays.
  std::size_t first_block = 0;
  std::size_t num_blocks = 0;
};

/// Resolution of one address.
struct BlockRef {
  bool shared = false;       // false => private memory, not modeled
  std::size_t block = 0;     // global block index into model state arrays
  int home = 0;              // home processor of the block
  std::uint32_t region = 0;  // region index
};

/// Per-processor direct-mapped memoization of the line → (block, home,
/// region) resolution, so hot repeated accesses skip the RegionTable binary
/// search entirely. Pure cache of a pure function: an entry never goes stale
/// from protocol activity (the address→block mapping does not change on
/// coherence transitions); the ONLY invalidation events are region
/// registration (region indices shift when the table re-sorts by base, and a
/// previously-unregistered address may become shared) and table clear — the
/// owning model flushes there. Unregistered lines are cached too
/// (region == kNotShared), which is safe for the same reason.
class LineLookaside {
 public:
  static constexpr std::int32_t kNotShared = -1;
  /// 16 bytes, so four entries share a host cache line. block fits 32 bits
  /// and the region/home indices 16 each (RegionTable::add() enforces the
  /// bounds where blocks and regions are minted).
  struct Entry {
    std::uintptr_t tag = 0;      // line number + 1; 0 == empty
    std::uint32_t block = 0;     // global block index of the line
    std::int16_t region = -1;    // kNotShared, or index into regions()
    std::uint16_t home = 0;
  };

  Entry& slot(std::uintptr_t line) {
    return slots_[static_cast<std::size_t>(line) & (kEntries - 1)];
  }
  void flush() { slots_.assign(kEntries, Entry{}); }

 private:
  // A force walk touches on the order of a thousand distinct lines per body
  // (tree nodes + interaction-list bodies); direct-mapped at 1024 entries
  // that working set conflict-thrashes and every miss re-pays the region
  // binary search. 4096 × 16 B = 64 KiB per processor keeps the whole walk
  // resident while staying comfortably inside the host L2. Direct-mapped on
  // the low line bits (lines are sequential).
  static constexpr std::size_t kEntries = 4096;
  std::vector<Entry> slots_ = std::vector<Entry>(kEntries);
};

class RegionTable {
 public:
  /// Configure the block size (coherence granularity) before registering.
  /// Must be a power of two (every real machine's is): the per-access path
  /// turns every /, % by the block size into shift/mask — a hardware divide
  /// by a runtime divisor costs more than the rest of a charged hit.
  void set_block_bytes(std::size_t b);
  std::size_t block_bytes() const { return block_bytes_; }
  /// log2(block_bytes()).
  unsigned block_shift() const { return block_shift_; }

  void add(const void* base, std::size_t bytes, HomePolicy policy, int fixed_home,
           std::string name, int nprocs);
  void clear();

  /// Total blocks across all regions (size protocol state arrays to this).
  std::size_t total_blocks() const { return total_blocks_; }

  /// Resolves an address. Returns shared=false for unregistered memory.
  BlockRef resolve(const void* p, int nprocs) const;

  /// Stable byte offset of a registered address: the region's block span
  /// mapped to registration-ordered virtual bytes, preserving the offset
  /// within each block. Use this instead of the raw address wherever a
  /// finer-than-block grid is needed (e.g. the HLRC local cache's 64 B
  /// lines), so results do not depend on where the allocator/ASLR placed
  /// the region. Returns false for unregistered memory.
  bool virtual_offset(const void* p, std::size_t& off) const;

  /// Range of global block indices [first, last] covered by [p, p+n).
  /// Returns false if the address is not in a registered region.
  bool resolve_range(const void* p, std::size_t n, int nprocs, std::size_t& first,
                     std::size_t& last, int& home_of_first) const;

  /// resolve_range with the first line's resolution served from (and filled
  /// into) `la`. Produces bit-identical results to resolve_range — the
  /// lookaside memoizes a pure mapping — and additionally reports the region
  /// index (kNotShared on failure) so callers can resolve the remaining
  /// lines of a multi-line access with home_in() instead of the block_home
  /// binary search. The owner of `la` must flush it on add()/clear().
  /// Header-inline: the lookaside-hit path is a handful of instructions and
  /// sits under every charged access; only the miss (find + memoize) goes
  /// out of line.
  bool resolve_range_cached(const void* p, std::size_t n, int nprocs, LineLookaside& la,
                            std::size_t& first, std::size_t& last, int& home_of_first,
                            std::int32_t& region) const {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t line = a >> block_shift_;
    LineLookaside::Entry& e = la.slot(line);
    if (e.tag != line + 1) fill_lookaside(e, a, line, nprocs);
    region = e.region;
    if (e.region == LineLookaside::kNotShared) return false;
    const Region& r = regions_[static_cast<std::size_t>(e.region)];
    first = e.block;
    home_of_first = e.home;
    // Same clamp as resolve_range: the range never crosses into an adjacent
    // region.
    const std::uintptr_t end = a + (n > 0 ? n : 1);
    const std::uintptr_t cend = end < r.base + r.bytes ? end : r.base + r.bytes;
    last = r.first_block + (((cend - 1) >> block_shift_) - (r.base >> block_shift_));
    return true;
  }

  /// Home of a global block known to lie inside `region` (all blocks of one
  /// resolve_range result do: the range is clamped to its region). Same
  /// value block_home() would compute, without the binary search.
  int home_in(std::int32_t region, std::size_t global_block, int nprocs) const {
    const Region& r = regions_[static_cast<std::size_t>(region)];
    return home_of(r, global_block - r.first_block, nprocs);
  }

  /// Home processor of a global block index (binary search over the regions
  /// ordered by first_block; hit on every block of a multi-block access that
  /// spans interleaved homes).
  int block_home(std::size_t global_block, int nprocs) const;

  const std::vector<Region>& regions() const { return regions_; }

 private:
  const Region* find(std::uintptr_t a) const;
  /// Lookaside-miss slow path of resolve_range_cached: one full resolution,
  /// memoized (negative results too) for the next access to this line.
  void fill_lookaside(LineLookaside::Entry& e, std::uintptr_t a, std::uintptr_t line,
                      int nprocs) const;
  int home_of(const Region& r, std::size_t block_in_region, int nprocs) const {
    switch (r.policy) {
      case HomePolicy::kFixed:
        return r.fixed_home;
      case HomePolicy::kInterleavedBlock:
        return static_cast<int>(block_in_region % static_cast<std::size_t>(nprocs));
      case HomePolicy::kProcStriped: {
        const std::size_t chunk = (r.num_blocks + static_cast<std::size_t>(nprocs) - 1) /
                                  static_cast<std::size_t>(nprocs);
        const std::size_t c = block_in_region / chunk;
        const auto np1 = static_cast<std::size_t>(nprocs) - 1;
        return static_cast<int>(c < np1 ? c : np1);
      }
    }
    return 0;
  }

  std::size_t block_bytes_ = 128;
  unsigned block_shift_ = 7;
  std::size_t total_blocks_ = 0;
  std::vector<Region> regions_;  // sorted by base
  // regions_ indices ordered by first_block: global block indices are assigned
  // in registration order, which the sort by base permutes, so block_home
  // needs its own sorted view to binary-search.
  std::vector<std::uint32_t> block_order_;
};

}  // namespace ptb
