// Home-based Lazy Release Consistency (HLRC) shared-virtual-memory model.
//
// This is the protocol the paper runs on the Intel Paragon and on Typhoon-0
// (Zhou, Iftode & Li, OSDI'96). Coherence is at page granularity and ALL
// protocol activity happens at synchronization points:
//   * A processor's writes within an interval are tracked (first write to a
//     page creates a twin).
//   * At a RELEASE (lock release or barrier arrival) the processor diffs each
//     written page against its twin, sends the diff to the page's home (which
//     bumps the page version), and posts write notices.
//   * At an ACQUIRE (lock acquire or barrier departure) the processor applies
//     the write notices it has not yet seen: every page another processor has
//     released a newer version of becomes invalid locally.
//   * Touching an invalid page faults: the whole page is fetched from home.
//
// The paper's headline effect falls out mechanically: lock acquires are
// expensive (3-hop + notices), and page faults *inside critical sections*
// dilate lock hold times in virtual time, serializing lock-heavy tree builds.
//
// Laziness is modeled faithfully: a stale copy stays readable (no cost) until
// the reader itself passes an acquire that covers the writer's release — the
// valid test is copy_version >= required_version, and required_version only
// advances when notices are applied at the reader's own synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "mem/cache_model.hpp"
#include "mem/model.hpp"

namespace ptb {

class HlrcModel final : public MemModel {
 public:
  HlrcModel(const PlatformSpec& spec, int nprocs);

  void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                       int fixed_home, std::string name) override;
  void reset() override;

  // The read path is header-inline (see invalidation_model.hpp: the sealed
  // dispatch turns SimProc::read_shared into one direct code path down to
  // the page-validity check).
  std::uint64_t on_read(int proc, const void* p, std::size_t n,
                        std::uint64_t /*now*/) override {
    std::size_t first, last;
    int home;
    std::int32_t region;
    if (!resolve_blocks(proc, p, n, first, last, home, region)) return 0;
    auto& st = stats_[static_cast<std::size_t>(proc)];
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    const unsigned sh = regions_.block_shift();
    std::uint64_t cost = local_touch_at(
        proc, (first << sh) + (a & (regions_.block_bytes() - 1)), n);
    for (std::size_t b = first; b <= last; ++b) {
      ++st.reads;
      cost += maybe_fault(proc, b, b == first ? home : later_block_home(region, b));
    }
    return cost;
  }
  std::uint64_t on_write(int proc, const void* p, std::size_t n, std::uint64_t now) override;
  std::uint64_t on_rmw(int proc, const void* p, std::uint64_t now) override;
  std::uint64_t on_acquire(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_release(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_barrier_arrive(int proc, std::uint64_t now) override;
  std::uint64_t on_barrier_depart(int proc, std::uint64_t now) override;
  std::uint64_t on_read_shared(int proc, const void* p, std::size_t n) override {
    // Safe concurrently: touches only this processor's copy_version_ slice
    // and atomically loads version_. required_version_ changes only at this
    // processor's own synchronizations.
    return on_read(proc, p, n, 0);
  }

  // One region resolution for the whole run. Per (element, page, line) the
  // accounting is bit-identical to the per-element scalar loop (the base
  // implementation, used as fallback whenever the run is not provably inside
  // a single region). Two collapses ride on the span's monotonicity — the
  // virtual offset is (element address + constant), so pages and 64 B lines
  // are visited in nondecreasing order, and an unordered stretch is
  // host-atomic under turn serialization:
  //   * a revisited PAGE is provably valid (the first visit either found it
  //     valid or faulted it in, and required/home versions only move at this
  //     processor's own synchronizations), so maybe_fault — a pure check — is
  //     skipped and only the batched `reads` counter records the visit;
  //   * a revisited LINE is provably still cached when lines-per-element is
  //     below the local cache's associativity (newest-stamp entries survive
  //     fewer-than-ways intervening fills), so it re-stamps via
  //     CacheModel::restamp at zero cost, exactly like the touch() hit the
  //     reference path performs.
  std::uint64_t on_read_shared_span(int proc, const void* p, std::size_t n,
                                    std::size_t stride, std::size_t count) override {
    if (count == 0) return 0;
    std::size_t first, last;
    int home;
    std::int32_t region;
    if (!fast_ || !resolve_blocks(proc, p, 0, first, last, home, region) ||
        region == LineLookaside::kNotShared)
      return MemModel::on_read_shared_span(proc, p, n, stride, count);
    const Region& r = regions_.regions()[static_cast<std::size_t>(region)];
    const auto a0 = reinterpret_cast<std::uintptr_t>(p);
    const std::size_t nn = n > 0 ? n : 1;
    if (a0 + (count - 1) * stride + nn > r.base + r.bytes)
      return MemModel::on_read_shared_span(proc, p, n, stride, count);
    const unsigned sh = regions_.block_shift();
    const std::size_t bmask = regions_.block_bytes() - 1;
    const std::uintptr_t region_page = r.base >> sh;
    auto& st = stats_[static_cast<std::size_t>(proc)];
    auto& cache = local_cache_[static_cast<std::size_t>(proc)];
    const bool lines_on = spec_.cache_bytes > 0 && spec_.local_miss_ns > 0.0;
    const std::size_t max_lpe = ((nn + 62) >> 6) + 1;  // worst-case lines/element
    const bool collapse_lines = cache.infinite() || max_lpe <= cache.ways();
    const auto local_ns = static_cast<std::uint64_t>(spec_.local_miss_ns);
    std::uint64_t cost = 0;
    std::uint64_t visits = 0;
    std::size_t done_pg = 0;  // region-relative page already visited, +1
    std::size_t done_ln = 0;  // virtual-grid 64 B line already visited, +1
    for (std::size_t i = 0; i < count; ++i) {
      const std::uintptr_t a = a0 + i * stride;
      const std::size_t p0 = ((a >> sh) - region_page);
      const std::size_t p1 = (((a + nn - 1) >> sh) - region_page);
      visits += p1 - p0 + 1;
      if (lines_on) {
        const std::size_t off = ((r.first_block + p0) << sh) + (a & bmask);
        std::size_t l0 = off / 64;
        const std::size_t l1 = (off + nn - 1) / 64;
        if (collapse_lines && l0 < done_ln) {
          const std::size_t dup = l1 < done_ln - 1 ? l1 : done_ln - 1;
          for (std::size_t b = l0; b <= dup; ++b) cache.restamp(b);
          l0 = dup + 1;
        }
        for (std::size_t b = l0; b <= l1; ++b)
          if (!cache.touch(b, 0)) cost += local_ns;
        if (collapse_lines && l1 + 1 > done_ln) done_ln = l1 + 1;
      }
      for (std::size_t pg = p0 < done_pg ? done_pg : p0; pg <= p1; ++pg)
        cost += maybe_fault(proc, r.first_block + pg,
                            regions_.home_in(region, r.first_block + pg, nprocs_));
      done_pg = p1 + 1;
    }
    st.reads += visits;
    return cost;
  }

  MemModelKind kind() const override { return MemModelKind::kHlrc; }

  /// Test hooks.
  struct PageState {
    bool shared_region = false;
    std::uint32_t version = 0;
    bool valid_for_proc = false;
    int home = 0;
  };
  PageState page_state(const void* p, int proc);
  std::size_t notice_log_size() const { return notices_.size(); }

 private:
  struct Notice {
    std::uint32_t page;
    std::uint32_t version;
    std::int32_t writer;
  };

  void ensure_capacity();
  bool copy_valid(int proc, std::size_t page, int home) const {
    // The home node's copy IS the page: it is always valid (home-based LRC
    // applies remote diffs to it; local reads/writes never fault). This is the
    // reason per-processor pools (LOCAL/PARTREE/SPACE) are cheap on SVM while
    // ORIG's interleaved global array is not.
    if (proc == home) return true;
    const std::size_t idx = static_cast<std::size_t>(proc) * npages_ + page;
    const std::uint32_t cv = copy_version_[idx];
    return cv != 0 && cv - 1 >= required_version_[idx];
  }
  /// Fault + fetch if the processor's copy is invalid. Returns cost.
  std::uint64_t maybe_fault(int proc, std::size_t page, int home) {
    if (copy_valid(proc, page, home)) return 0;
    auto& st = stats_[static_cast<std::size_t>(proc)];
    ++st.page_faults;
    const std::size_t idx = static_cast<std::size_t>(proc) * npages_ + page;
    // Fetch the current home copy; the copy is stamped version+1 so that
    // version v satisfies any required_version <= v.
    copy_version_[idx] = version_[page].load(std::memory_order_acquire) + 1;
    return static_cast<std::uint64_t>(spec_.page_fault_ns);
  }
  /// First-write-in-interval twin bookkeeping. Returns cost (ordered only).
  std::uint64_t track_write(int proc, std::size_t page, int home);
  /// Release-side: diff written pages to home, post notices. Returns cost.
  std::uint64_t flush_interval(int proc);
  /// Acquire-side: apply unseen notices. Returns cost.
  std::uint64_t apply_notices(int proc);

  std::size_t npages_ = 0;
  std::vector<std::atomic<std::uint32_t>> version_;  // per page, home copy
  // Per proc × page, linearized p * npages_ + page:
  std::vector<std::uint32_t> copy_version_;      // 0 == no copy
  std::vector<std::uint32_t> required_version_;  // staleness bound from notices
  std::vector<std::uint64_t> wmask_;             // per page: bitmask of writers this interval
  std::vector<std::vector<std::uint32_t>> wset_;  // per proc: pages written this interval
  std::vector<Notice> notices_;                   // global write-notice log
  std::vector<std::size_t> log_pos_;              // per proc: first unseen notice
  /// Per-processor LOCAL cache model: a valid page's data still costs a
  /// local memory miss when it is not in the processor's cache (at 64 B
  /// lines, independent of the 4 KB coherence grain). Keeps the machine's
  /// sequential memory behaviour consistent with the parallel runs.
  std::vector<CacheModel> local_cache_;
  /// Core of the local-cache charge, keyed by the access's stable virtual
  /// offset (global block × block bytes + offset within the block). Callers
  /// derive the offset from their already-resolved first block, so no second
  /// region lookup is paid.
  std::uint64_t local_touch_at(int proc, std::size_t off, std::size_t n) {
    if (spec_.cache_bytes == 0 || spec_.local_miss_ns <= 0.0) return 0;
    // 64 B line grid over the region's virtual offset (coherence is per page;
    // this is the node's own cache, so no epochs are involved). The virtual
    // offset — not the raw address — keys the lines so the cache's set mapping
    // does not depend on where the allocator/ASLR placed the region.
    const std::size_t first = off / 64;
    const std::size_t last = (off + (n > 0 ? n : 1) - 1) / 64;
    std::uint64_t cost = 0;
    auto& cache = local_cache_[static_cast<std::size_t>(proc)];
    for (std::size_t b = first; b <= last; ++b)
      if (!cache.touch(b, 0)) cost += static_cast<std::uint64_t>(spec_.local_miss_ns);
    return cost;
  }
};

}  // namespace ptb
