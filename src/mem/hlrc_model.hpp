// Home-based Lazy Release Consistency (HLRC) shared-virtual-memory model.
//
// This is the protocol the paper runs on the Intel Paragon and on Typhoon-0
// (Zhou, Iftode & Li, OSDI'96). Coherence is at page granularity and ALL
// protocol activity happens at synchronization points:
//   * A processor's writes within an interval are tracked (first write to a
//     page creates a twin).
//   * At a RELEASE (lock release or barrier arrival) the processor diffs each
//     written page against its twin, sends the diff to the page's home (which
//     bumps the page version), and posts write notices.
//   * At an ACQUIRE (lock acquire or barrier departure) the processor applies
//     the write notices it has not yet seen: every page another processor has
//     released a newer version of becomes invalid locally.
//   * Touching an invalid page faults: the whole page is fetched from home.
//
// The paper's headline effect falls out mechanically: lock acquires are
// expensive (3-hop + notices), and page faults *inside critical sections*
// dilate lock hold times in virtual time, serializing lock-heavy tree builds.
//
// Laziness is modeled faithfully: a stale copy stays readable (no cost) until
// the reader itself passes an acquire that covers the writer's release — the
// valid test is copy_version >= required_version, and required_version only
// advances when notices are applied at the reader's own synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "mem/cache_model.hpp"
#include "mem/model.hpp"

namespace ptb {

class HlrcModel final : public MemModel {
 public:
  HlrcModel(const PlatformSpec& spec, int nprocs);

  void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                       int fixed_home, std::string name) override;
  void reset() override;

  std::uint64_t on_read(int proc, const void* p, std::size_t n, std::uint64_t now) override;
  std::uint64_t on_write(int proc, const void* p, std::size_t n, std::uint64_t now) override;
  std::uint64_t on_rmw(int proc, const void* p, std::uint64_t now) override;
  std::uint64_t on_acquire(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_release(int proc, const void* lock, std::uint64_t now) override;
  std::uint64_t on_barrier_arrive(int proc, std::uint64_t now) override;
  std::uint64_t on_barrier_depart(int proc, std::uint64_t now) override;
  std::uint64_t on_read_shared(int proc, const void* p, std::size_t n) override;

  /// Test hooks.
  struct PageState {
    bool shared_region = false;
    std::uint32_t version = 0;
    bool valid_for_proc = false;
    int home = 0;
  };
  PageState page_state(const void* p, int proc);
  std::size_t notice_log_size() const { return notices_.size(); }

 private:
  struct Notice {
    std::uint32_t page;
    std::uint32_t version;
    std::int32_t writer;
  };

  void ensure_capacity();
  bool copy_valid(int proc, std::size_t page, int home) const;
  /// Fault + fetch if the processor's copy is invalid. Returns cost.
  std::uint64_t maybe_fault(int proc, std::size_t page, int home);
  /// First-write-in-interval twin bookkeeping. Returns cost (ordered only).
  std::uint64_t track_write(int proc, std::size_t page, int home);
  /// Release-side: diff written pages to home, post notices. Returns cost.
  std::uint64_t flush_interval(int proc);
  /// Acquire-side: apply unseen notices. Returns cost.
  std::uint64_t apply_notices(int proc);

  std::size_t npages_ = 0;
  std::vector<std::atomic<std::uint32_t>> version_;  // per page, home copy
  // Per proc × page, linearized p * npages_ + page:
  std::vector<std::uint32_t> copy_version_;      // 0 == no copy
  std::vector<std::uint32_t> required_version_;  // staleness bound from notices
  std::vector<std::uint64_t> wmask_;             // per page: bitmask of writers this interval
  std::vector<std::vector<std::uint32_t>> wset_;  // per proc: pages written this interval
  std::vector<Notice> notices_;                   // global write-notice log
  std::vector<std::size_t> log_pos_;              // per proc: first unseen notice
  /// Per-processor LOCAL cache model: a valid page's data still costs a
  /// local memory miss when it is not in the processor's cache (at 64 B
  /// lines, independent of the 4 KB coherence grain). Keeps the machine's
  /// sequential memory behaviour consistent with the parallel runs.
  std::vector<CacheModel> local_cache_;
  std::uint64_t local_touch(int proc, const void* p, std::size_t n);
};

}  // namespace ptb
