#include "sim/sim_rt.hpp"

#include <algorithm>
#include <thread>

#include "support/check.hpp"

namespace ptb {

SimContext::SimContext(const PlatformSpec& spec, int nprocs)
    : spec_(spec), nprocs_(nprocs), mem_(make_mem_model(spec, nprocs)) {
  PTB_CHECK(nprocs >= 1 && nprocs <= 64);
  const auto np = static_cast<std::size_t>(nprocs);
  clock_.assign(np, 0);
  status_.assign(np, Status::kDone);
  pending_.assign(np, 0);
  phase_.assign(np, Phase::kOther);
  phase_mark_.assign(np, 0);
  stats_.assign(np, ProcStats{});
  lock_granted_.assign(np, 0);
  barrier_arrival_.assign(np, 0);
  turn_cv_ = std::make_unique<std::condition_variable[]>(np);
}

SimContext::~SimContext() = default;

void SimContext::wake_min() {
  int best = -1;
  for (int q = 0; q < nprocs_; ++q) {
    if (status_[static_cast<std::size_t>(q)] != Status::kActive) continue;
    if (best < 0 ||
        clock_[static_cast<std::size_t>(q)] < clock_[static_cast<std::size_t>(best)])
      best = q;
  }
  if (best >= 0) turn_cv_[static_cast<std::size_t>(best)].notify_one();
}

void SimContext::wake_all() {
  for (int q = 0; q < nprocs_; ++q) turn_cv_[static_cast<std::size_t>(q)].notify_one();
}

void SimContext::register_region(const void* base, std::size_t bytes, HomePolicy policy,
                                 int fixed_home, std::string name) {
  mem_->register_region(base, bytes, policy, fixed_home, std::move(name));
}

void SimContext::reset_stats() {
  stats_.assign(static_cast<std::size_t>(nprocs_), ProcStats{});
}

std::uint64_t SimContext::elapsed_ns() const {
  std::uint64_t mx = 0;
  for (std::uint64_t c : clock_) mx = std::max(mx, c);
  return mx;
}

void SimContext::run_impl(const std::function<void(SimProc&)>& f) {
  {
    std::lock_guard<std::mutex> g(m_);
    const auto np = static_cast<std::size_t>(nprocs_);
    clock_.assign(np, 0);
    status_.assign(np, Status::kActive);
    pending_.assign(np, 0);
    phase_.assign(np, Phase::kOther);
    phase_mark_.assign(np, 0);
    lock_granted_.assign(np, 0);
    barrier_arrival_.assign(np, 0);
    locks_.clear();
    barrier_arrived_ = 0;
    barrier_release_ns_ = 0;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (int p = 0; p < nprocs_; ++p) {
    threads.emplace_back([this, p, &f] {
      SimProc proc(*this, p);
      f(proc);
      std::unique_lock<std::mutex> l(m_);
      flush_pending(p);
      // Final phase attribution.
      const auto idx = static_cast<std::size_t>(p);
      stats_[idx].phase_ns[static_cast<int>(phase_[idx])] +=
          static_cast<double>(clock_[idx] - phase_mark_[idx]);
      phase_mark_[idx] = clock_[idx];
      status_[idx] = Status::kDone;
      maybe_release_barrier();
      wake_all();
    });
  }
  for (auto& t : threads) t.join();
}

bool SimContext::is_min_active(int p) const {
  const std::uint64_t my = clock_[static_cast<std::size_t>(p)];
  for (int q = 0; q < nprocs_; ++q) {
    if (q == p || status_[static_cast<std::size_t>(q)] != Status::kActive) continue;
    const std::uint64_t other = clock_[static_cast<std::size_t>(q)];
    if (other < my || (other == my && q < p)) return false;
  }
  return true;
}

void SimContext::wait_for_turn(std::unique_lock<std::mutex>& l, int p) {
  turn_cv_[static_cast<std::size_t>(p)].wait(l, [this, p] { return is_min_active(p); });
}

void SimContext::flush_pending(int p) {
  const auto idx = static_cast<std::size_t>(p);
  if (pending_[idx] != 0) {
    clock_[idx] += pending_[idx];
    pending_[idx] = 0;
    // Raising our clock can make another processor the minimum.
    wake_min();
  }
}

void SimContext::advance(int p, std::uint64_t cost) {
  clock_[static_cast<std::size_t>(p)] += cost;
}

void SimContext::op_ordered(int p,
                            std::uint64_t (MemModel::*fn)(int, const void*, std::size_t,
                                                          std::uint64_t),
                            const void* addr, std::size_t n) {
  std::unique_lock<std::mutex> l(m_);
  flush_pending(p);
  wait_for_turn(l, p);
  advance(p, (mem_.get()->*fn)(p, addr, n, clock_[static_cast<std::size_t>(p)]));
  wake_min();
}

void SimContext::op_lock(int p, const void* addr) {
  const auto idx = static_cast<std::size_t>(p);
  std::unique_lock<std::mutex> l(m_);
  flush_pending(p);
  ++stats_[idx].lock_acquires[static_cast<int>(phase_[idx])];
  wait_for_turn(l, p);
  LockState& ls = locks_[addr];
  if (!ls.held) {
    ls.held = true;
    ls.holder = p;
    advance(p, mem_->on_acquire(p, clock_[idx]));
    wake_min();
    return;
  }
  const std::uint64_t request_ns = clock_[idx];
  ls.waiters.emplace_back(request_ns, p);
  status_[idx] = Status::kBlockedLock;
  wake_min();  // leaving the Active set may unblock someone's turn
  turn_cv_[idx].wait(l, [this, idx] { return lock_granted_[idx] != 0; });
  lock_granted_[idx] = 0;
  stats_[idx].lock_wait_ns += static_cast<double>(clock_[idx] - request_ns);
  // The releaser set our clock to the grant time and made us Active again;
  // run the acquire-side protocol in global virtual-time order.
  wait_for_turn(l, p);
  advance(p, mem_->on_acquire(p, clock_[idx]));
  wake_min();
}

void SimContext::op_unlock(int p, const void* addr) {
  const auto idx = static_cast<std::size_t>(p);
  std::unique_lock<std::mutex> l(m_);
  flush_pending(p);
  wait_for_turn(l, p);
  auto it = locks_.find(addr);
  PTB_CHECK_MSG(it != locks_.end() && it->second.held && it->second.holder == p,
                "unlock of a lock not held by this processor");
  LockState& ls = it->second;
  advance(p, mem_->on_release(p, clock_[idx]));
  if (ls.waiters.empty()) {
    ls.held = false;
    ls.holder = -1;
  } else {
    // Grant to the earliest request in virtual time (ties by processor id).
    auto best = std::min_element(ls.waiters.begin(), ls.waiters.end());
    const int w = best->second;
    ls.waiters.erase(best);
    ls.holder = w;
    const auto widx = static_cast<std::size_t>(w);
    clock_[widx] = std::max(clock_[widx], clock_[idx]);
    status_[widx] = Status::kActive;
    lock_granted_[widx] = 1;
    turn_cv_[widx].notify_one();
  }
  wake_min();
}

int SimContext::alive_count() const {
  int n = 0;
  for (Status s : status_)
    if (s != Status::kDone) ++n;
  return n;
}

bool SimContext::maybe_release_barrier() {
  if (barrier_arrived_ == 0 || barrier_arrived_ < alive_count()) return false;
  std::uint64_t release = 0;
  for (int q = 0; q < nprocs_; ++q) {
    if (status_[static_cast<std::size_t>(q)] == Status::kInBarrier)
      release = std::max(release, barrier_arrival_[static_cast<std::size_t>(q)]);
  }
  for (int q = 0; q < nprocs_; ++q) {
    const auto qi = static_cast<std::size_t>(q);
    if (status_[qi] != Status::kInBarrier) continue;
    stats_[qi].barrier_wait_ns += static_cast<double>(release - barrier_arrival_[qi]);
    clock_[qi] = release;
    status_[qi] = Status::kActive;
  }
  barrier_arrived_ = 0;
  ++barrier_generation_;
  return true;
}

void SimContext::op_barrier(int p) {
  const auto idx = static_cast<std::size_t>(p);
  std::unique_lock<std::mutex> l(m_);
  flush_pending(p);
  ++stats_[idx].barriers;
  wait_for_turn(l, p);
  advance(p, mem_->on_barrier_arrive(p, clock_[idx]));
  barrier_arrival_[idx] = clock_[idx];
  status_[idx] = Status::kInBarrier;
  ++barrier_arrived_;
  const std::uint64_t gen = barrier_generation_;
  if (maybe_release_barrier()) {
    wake_all();
  } else {
    wake_min();
    turn_cv_[idx].wait(l, [this, gen] { return barrier_generation_ != gen; });
  }
  // Departure protocol in deterministic order (all clocks equal, id breaks
  // the tie).
  wait_for_turn(l, p);
  advance(p, mem_->on_barrier_depart(p, clock_[idx]));
  wake_min();
}

void SimContext::op_begin_phase(int p, Phase ph) {
  const auto idx = static_cast<std::size_t>(p);
  std::unique_lock<std::mutex> l(m_);
  flush_pending(p);
  stats_[idx].phase_ns[static_cast<int>(phase_[idx])] +=
      static_cast<double>(clock_[idx] - phase_mark_[idx]);
  phase_mark_[idx] = clock_[idx];
  phase_[idx] = ph;
}

// --- SimProc forwarding ---

void SimProc::compute(double units) {
  ctx_->pending_[static_cast<std::size_t>(self_)] +=
      static_cast<std::uint64_t>(units * ctx_->spec_.ns_per_work);
}

void SimProc::read(const void* p, std::size_t n) {
  ctx_->op_ordered(self_, &MemModel::on_read, p, n);
}

void SimProc::write(const void* p, std::size_t n) {
  ctx_->op_ordered(self_, &MemModel::on_write, p, n);
}

void SimProc::read_shared(const void* p, std::size_t n) {
  ctx_->pending_[static_cast<std::size_t>(self_)] +=
      ctx_->mem_->on_read_shared(self_, p, n);
}

void SimProc::lock(const void* addr) { ctx_->op_lock(self_, addr); }

void SimProc::unlock(const void* addr) { ctx_->op_unlock(self_, addr); }

std::int64_t SimProc::fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v) {
  std::unique_lock<std::mutex> l(ctx_->m_);
  ctx_->flush_pending(self_);
  ++ctx_->stats_[static_cast<std::size_t>(self_)].fetch_adds;
  ctx_->wait_for_turn(l, self_);
  ctx_->advance(self_, ctx_->mem_->on_rmw(self_, &ctr,
                                          ctx_->clock_[static_cast<std::size_t>(self_)]));
  const std::int64_t old = ctr.fetch_add(v, std::memory_order_relaxed);
  ctx_->wake_min();
  return old;
}

void SimProc::barrier() { ctx_->op_barrier(self_); }

void SimProc::begin_phase(Phase p) { ctx_->op_begin_phase(self_, p); }

}  // namespace ptb
