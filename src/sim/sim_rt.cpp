#include "sim/sim_rt.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "anatomy/anatomy.hpp"
#include "prof/prof.hpp"
#include "race/race.hpp"
#include "sight/sight.hpp"
#include "support/check.hpp"
#include "trace/trace.hpp"

namespace ptb {

namespace {

// Lazily committed (mmap) — plenty for the recursive tree walks, and costs
// only the pages actually touched, like a host thread's stack.
constexpr std::size_t kFiberStackBytes = std::size_t{8} << 20;

}  // namespace

SimBackend default_sim_backend() {
  static const SimBackend b = [] {
    const char* env = std::getenv("PTB_SIM_BACKEND");
    if (env != nullptr && env[0] != '\0') return sim_backend_from_string(env);
    return SimBackend::kFibers;
  }();
  return b;
}

const char* to_string(SimBackend b) {
  if (b == SimBackend::kFibers) return "fibers";
  return b == SimBackend::kThreads ? "threads" : "parallel";
}

SimBackend sim_backend_from_string(const std::string& s) {
  if (s == "fibers") return SimBackend::kFibers;
  if (s == "threads") return SimBackend::kThreads;
  if (s == "parallel") return SimBackend::kParallel;
  PTB_CHECK_MSG(false,
                "unknown simulator backend (want \"fibers\", \"threads\" or \"parallel\")");
  return SimBackend::kFibers;
}

int default_sim_workers() {
  static const int w = [] {
    const char* env = std::getenv("PTB_SIM_WORKERS");
    if (env != nullptr && env[0] != '\0') {
      const int v = std::atoi(env);
      if (v >= 1) return std::min(v, 64);
    }
    const auto hw = static_cast<int>(std::thread::hardware_concurrency());
    return std::clamp(hw / 2, 1, 16);
  }();
  return w;
}

bool default_race_detection() { return race::default_race_enabled(); }

SimContext::SimContext(const PlatformSpec& spec, int nprocs, SimBackend backend,
                       bool race_detect, bool sight_observe)
    : spec_(spec), nprocs_(nprocs), backend_(backend), mem_(make_mem_model(spec, nprocs)) {
  PTB_CHECK(nprocs >= 1 && nprocs <= 64);
  if (race_detect) {
    auto rm = std::make_unique<race::RaceModel>(std::move(mem_));
    race_model_ = rm.get();
    mem_ = std::move(rm);
  }
  if (sight_observe) {
    // Outermost, so it observes every access the dispatch layer sees
    // (including what the race decorator forwards).
    auto sm = std::make_unique<sight::SightModel>(std::move(mem_));
    sight_model_ = sm.get();
    mem_ = std::move(sm);
  }
  mem_slowpath_ = mem_slowpath_enabled();
  mem_fast_.bind(mem_.get(), /*force_virtual=*/mem_slowpath_);
  // The fiber backend serializes unordered stretches in host time, which
  // licenses the model's eager-invalidation cache mode (same virtual results,
  // no shared epoch loads on the read path). Forwards through the race
  // decorator when one is installed. The slow-path oracle deliberately stays
  // on lazy epochs so a PTB_MEM_SLOWPATH run re-checks the eager/lazy
  // equivalence end to end, not just the span coalescing.
  if (backend_ == SimBackend::kFibers && !mem_slowpath_)
    mem_->set_serialized(true);
  const auto np = static_cast<std::size_t>(nprocs);
  clock_.assign(np, 0);
  status_.assign(np, Status::kDone);
  pending_.assign(np, PaddedCost{});
  in_free_.assign(np, 0);
  phase_.assign(np, Phase::kOther);
  phase_mark_.assign(np, 0);
  stats_.assign(np, ProcStats{});
  lock_granted_.assign(np, 0);
  barrier_arrival_.assign(np, 0);
  heap_.init(nprocs);
  if (backend_ == SimBackend::kThreads)
    turn_cv_ = std::make_unique<std::condition_variable[]>(np);
}

SimContext::~SimContext() = default;

const race::RaceReport* SimContext::race_report() const {
  return race_model_ != nullptr ? &race_model_->report() : nullptr;
}

void SimContext::set_tracer(trace::Tracer* t) {
  tracer_ = t;
  if (race_model_ != nullptr) race_model_->set_tracer(t);
  if (sight_model_ != nullptr) sight_model_->set_tracer(t);
}

void SimContext::register_region(const void* base, std::size_t bytes, HomePolicy policy,
                                 int fixed_home, std::string name) {
  mem_->register_region(base, bytes, policy, fixed_home, std::move(name));
}

void SimContext::reset_stats() {
  stats_.assign(static_cast<std::size_t>(nprocs_), ProcStats{});
}

std::uint64_t SimContext::elapsed_ns() const {
  std::uint64_t mx = 0;
  for (std::uint64_t c : clock_) mx = std::max(mx, c);
  return mx;
}

// --- run loop ---

void SimContext::reset_run_state() {
  const auto np = static_cast<std::size_t>(nprocs_);
  clock_.assign(np, 0);
  status_.assign(np, Status::kActive);
  pending_.assign(np, PaddedCost{});
  in_free_.assign(np, 0);
  phase_.assign(np, Phase::kOther);
  phase_mark_.assign(np, 0);
  lock_granted_.assign(np, 0);
  barrier_arrival_.assign(np, 0);
  locks_.clear();
  barrier_arrived_ = 0;
  heap_.init(nprocs_);
  for (int p = 0; p < nprocs_; ++p) heap_.push(p, 0);
  if (prof_ != nullptr) prof_->begin_run(nprocs_);
  if (anatomy_ != nullptr) anatomy_->begin_run(nprocs_);
}

void SimContext::prof_note_charge(int p, const void* addr, const MemProcStats& before,
                                  std::uint64_t clock_before) {
  const MemProcStats& after = mem_->proc_stats(p);
  prof_->charge(p, addr, clock_[static_cast<std::size_t>(p)] - clock_before,
                after.remote_misses - before.remote_misses,
                after.invalidations_sent - before.invalidations_sent);
}

void SimContext::prof_note_unordered(int p, const void* addr, std::uint64_t cost,
                                     const MemProcStats& before,
                                     const MemProcStats& after) {
  prof_->charge(p, addr, cost, after.remote_misses - before.remote_misses,
                after.invalidations_sent - before.invalidations_sent);
}

void SimContext::run_impl(const std::function<void(SimProc&)>& f) {
  reset_run_state();
  if (backend_ == SimBackend::kFibers)
    run_fibers(f);
  else if (backend_ == SimBackend::kThreads)
    run_threads(f);
  else
    run_parallel(f);
}

void SimContext::finish_proc(int p) {
  flush_pending(p);
  const auto idx = static_cast<std::size_t>(p);
  if (tracer_ != nullptr && clock_[idx] > phase_mark_[idx])
    tracer_->span(p, trace::kCatPhase, phase_name(phase_[idx]), phase_mark_[idx],
                  clock_[idx]);
  stats_[idx].phase_ns[static_cast<int>(phase_[idx])] +=
      static_cast<double>(clock_[idx] - phase_mark_[idx]);
  phase_mark_[idx] = clock_[idx];
  if (prof_ != nullptr)
    prof_->finish(p, clock_[idx], mem_->proc_stats(p).remote_misses);
  if (anatomy_ != nullptr) anatomy_->phase_close(p, phase_[idx], mem_->proc_stats(p));
  leave_active(p, Status::kDone);
  maybe_release_barrier();
}

void SimContext::run_threads(const std::function<void(SimProc&)>& f) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (int p = 0; p < nprocs_; ++p) {
    threads.emplace_back([this, p, &f] {
      {
        // Wait for the run token before executing any host code, so the
        // thread interleaving is exactly the fiber backend's.
        std::unique_lock<std::mutex> lk(m_);
        turn_cv_[static_cast<std::size_t>(p)].wait(lk, [this, p] { return running_ == p; });
      }
      SimProc proc(*this, p);
      f(proc);
      std::lock_guard<std::mutex> g(m_);
      finish_proc(p);
      pass_token(p);
    });
  }
  {
    std::lock_guard<std::mutex> g(m_);
    running_ = kHostContext;
    pass_token(kHostContext);  // start the virtual-time minimum (processor 0)
  }
  for (auto& t : threads) t.join();
  PTB_CHECK(alive_count() == 0);
}

void SimContext::fiber_entry(void* arg) {
  auto* fa = static_cast<FiberArg*>(arg);
  fa->ctx->fiber_body(fa->proc);
}

void SimContext::fiber_body(int p) {
  SimProc proc(*this, p);
  (*body_)(proc);
  finish_proc(p);
  // Hand off to the next runnable processor (or the host when everyone is
  // done). A Done processor is never in the heap, so this fiber is never
  // resumed; if it somehow were, the entry shim aborts.
  fiber_reschedule();
}

void SimContext::fiber_reschedule() {
  const int me = running_;
  int next = heap_.top();
  // Parallel backend: an empty Active set with sections in flight just means
  // everyone runnable is out on the pool — wait for a completion to refill
  // the heap rather than declaring deadlock.
  while (next < 0 && free_running_ > 0) {
    drain_sections(/*block=*/true);
    next = heap_.top();
  }
  // Our own just-launched section may have been drained back in above; then
  // it is simply our turn again and the fiber continues past the launch.
  if (next == me) return;
  Fiber& from = me == kHostContext ? host_ctx_ : *fibers_[static_cast<std::size_t>(me)];
  if (next < 0) {
    // Nobody is runnable. At end of run every processor is Done and control
    // returns to the host; otherwise the simulated program deadlocked
    // (a lock cycle or mismatched barriers).
    PTB_CHECK_MSG(alive_count() == 0,
                  "simulated deadlock: every processor is blocked");
    running_ = kHostContext;
    Fiber::switch_to(from, host_ctx_);
    return;
  }
  if (tracer_ != nullptr)
    tracer_->instant(next, trace::kCatSched, "fiber-switch",
                     clock_[static_cast<std::size_t>(next)]);
  running_ = next;
  Fiber::switch_to(from, *fibers_[static_cast<std::size_t>(next)]);
}

void SimContext::run_fibers(const std::function<void(SimProc&)>& f) {
  body_ = &f;
  const auto np = static_cast<std::size_t>(nprocs_);
  fibers_.clear();
  fibers_.resize(np);
  fiber_args_.resize(np);
  for (int p = 0; p < nprocs_; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    fiber_args_[pi] = FiberArg{this, p};
    fibers_[pi] = std::make_unique<Fiber>();
    fibers_[pi]->start(&SimContext::fiber_entry, &fiber_args_[pi], kFiberStackBytes);
  }
  running_ = kHostContext;
  fiber_reschedule();  // resumes the virtual-time minimum; returns when all done
  PTB_CHECK(alive_count() == 0);
  fibers_.clear();
  body_ = nullptr;
}

// --- parallel backend ---

void SimContext::section_worker() {
  std::unique_lock<std::mutex> lk(pool_m_);
  for (;;) {
    pool_cv_.wait(lk, [this] { return pool_shutdown_ || !section_queue_.empty(); });
    if (section_queue_.empty()) return;  // shutdown with a drained queue
    const int p = section_queue_.front();
    section_queue_.erase(section_queue_.begin());
    lk.unlock();
    const auto idx = static_cast<std::size_t>(p);
    section_fn_[idx]();           // the unordered stretch
    section_fn_[idx] = nullptr;   // drop captures before reporting done
    in_free_[idx] = 0;
    lk.lock();
    section_done_.push_back(p);
    done_cv_.notify_one();
  }
}

void SimContext::drain_sections(bool block) {
  std::vector<int> done;
  {
    std::unique_lock<std::mutex> lk(pool_m_);
    if (block) done_cv_.wait(lk, [this] { return !section_done_.empty(); });
    done.swap(section_done_);
  }
  // Re-admission order is irrelevant for the schedule (the heap orders by
  // (clock, id)); sort by id anyway so the walk is deterministic.
  std::sort(done.begin(), done.end());
  for (int p : done) {
    flush_pending(p);  // fold the section's cost into the clock key
    --free_running_;
    set_active(p);
  }
}

void SimContext::op_unordered_run(int p, std::function<void()> fn) {
  const auto idx = static_cast<std::size_t>(p);
  if (backend_ != SimBackend::kParallel || !overlap_ok_) {
    // Fibers/threads (and observed kParallel runs, which must reproduce the
    // serial host order for the tracer/profiler/race detector): run inline.
    // The flag arms the ordered-op-inside-section contract check.
    in_free_[idx] = 1;
    fn();
    in_free_[idx] = 0;
    return;
  }
  // Glued launch: we are on the scheduler thread, immediately after this
  // processor's last ordered operation — nothing can interleave between that
  // operation and the section start, exactly as in the fiber backend.
  flush_pending(p);
  section_fn_[idx] = std::move(fn);
  in_free_[idx] = 1;
  leave_active(p, Status::kInSection);
  ++free_running_;
  {
    std::lock_guard<std::mutex> g(pool_m_);
    section_queue_.push_back(p);
  }
  pool_cv_.notify_one();
  // Hand the scheduler to the next runnable processor; drain_sections
  // re-admits us once the closure has run, and the fiber resumes here.
  fiber_reschedule();
}

void SimContext::run_parallel(const std::function<void(SimProc&)>& f) {
  // One scheduler thread (this one) + a closure pool. Observed runs get no
  // pool: sections run inline, reproducing the fiber host order exactly.
  overlap_ok_ = tracer_ == nullptr && prof_ == nullptr && race_model_ == nullptr &&
                sight_model_ == nullptr;
  free_running_ = 0;
  section_fn_.assign(static_cast<std::size_t>(nprocs_), nullptr);
  pool_width_ = overlap_ok_ ? std::clamp(workers_, 1, nprocs_) : 0;
  pool_shutdown_ = false;
  section_queue_.clear();
  section_done_.clear();
  pool_.reserve(static_cast<std::size_t>(pool_width_));
  for (int w = 0; w < pool_width_; ++w)
    pool_.emplace_back([this] { section_worker(); });
  run_fibers(f);
  PTB_CHECK(free_running_ == 0);
  {
    std::lock_guard<std::mutex> g(pool_m_);
    pool_shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (auto& t : pool_) t.join();
  pool_.clear();
}

// --- scheduling core ---

void SimContext::yield_turn(OpLock& l, int p) {
  if (backend_ != SimBackend::kThreads) {
    fiber_reschedule();
    return;
  }
  pass_token(p);
  turn_cv_[static_cast<std::size_t>(p)].wait(l.l, [this, p] { return running_ == p; });
}

void SimContext::pass_token(int me) {
  const int next = heap_.top();
  if (next < 0) {
    // Nobody is runnable: either the run is over, or the simulated program
    // deadlocked (a lock cycle or mismatched barriers).
    PTB_CHECK_MSG(alive_count() == 0,
                  "simulated deadlock: every processor is blocked");
    running_ = kHostContext;
    return;
  }
  if (next != me) {
    if (tracer_ != nullptr)
      tracer_->instant(next, trace::kCatSched, "token-pass",
                       clock_[static_cast<std::size_t>(next)]);
    running_ = next;
    turn_cv_[static_cast<std::size_t>(next)].notify_one();
  }
}

void SimContext::wait_for_turn(OpLock& l, int p, bool allow_sections) {
  // p is Active (in the heap), so the heap is never empty here; yield to the
  // minimum until the minimum is us AND (unless the operation is
  // section-tolerant) no unordered section is in flight. free_running_ is
  // nonzero only in the parallel backend.
  for (;;) {
    if (heap_.top() == p) {
      if (free_running_ == 0 || allow_sections) return;
      drain_sections(/*block=*/true);  // our turn, blocked only on sections
      continue;
    }
    yield_turn(l, p);
  }
}

void SimContext::wait_lock_grant(OpLock& l, int p) {
  const auto idx = static_cast<std::size_t>(p);
  while (lock_granted_[idx] == 0) yield_turn(l, p);
}

void SimContext::wait_barrier_release(OpLock& l, int p, std::uint64_t gen) {
  while (barrier_generation_ == gen) yield_turn(l, p);
}

void SimContext::flush_pending(int p) {
  const auto idx = static_cast<std::size_t>(p);
  PTB_CHECK_MSG(in_free_[idx] == 0,
                "ordered operation inside an unordered_begin/end section");
  if (pending_[idx].v != 0) {
    clock_[idx] += pending_[idx].v;
    pending_[idx].v = 0;
    if (heap_.contains(p)) heap_.update(p, clock_[idx]);
  }
}

void SimContext::advance(int p, std::uint64_t cost) {
  const auto idx = static_cast<std::size_t>(p);
  clock_[idx] += cost;
  heap_.update(p, clock_[idx]);
}

void SimContext::set_active(int p) {
  status_[static_cast<std::size_t>(p)] = Status::kActive;
  heap_.push(p, clock_[static_cast<std::size_t>(p)]);
}

void SimContext::leave_active(int p, Status s) {
  status_[static_cast<std::size_t>(p)] = s;
  heap_.remove(p);
}

int SimContext::alive_count() const {
  int n = 0;
  for (Status s : status_)
    if (s != Status::kDone) ++n;
  return n;
}

bool SimContext::maybe_release_barrier() {
  if (barrier_arrived_ == 0 || barrier_arrived_ < alive_count()) return false;
  std::uint64_t release = 0;
  for (int q = 0; q < nprocs_; ++q) {
    if (status_[static_cast<std::size_t>(q)] == Status::kInBarrier)
      release = std::max(release, barrier_arrival_[static_cast<std::size_t>(q)]);
  }
  if (prof_ != nullptr) {
    // The last arriver (earliest id on ties) is the release's cause.
    int last = -1;
    for (int q = 0; q < nprocs_ && last < 0; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (status_[qi] == Status::kInBarrier && barrier_arrival_[qi] == release) last = q;
    }
    prof_->barrier_release(release, last);
  }
  for (int q = 0; q < nprocs_; ++q) {
    const auto qi = static_cast<std::size_t>(q);
    if (status_[qi] != Status::kInBarrier) continue;
    const std::uint64_t waited = release - barrier_arrival_[qi];
    stats_[qi].barrier_wait_ns += static_cast<double>(waited);
    stats_[qi].barrier_wait_phase_ns[static_cast<int>(phase_[qi])] +=
        static_cast<double>(waited);
    stats_[qi].barrier_wait_events.add(static_cast<double>(waited));
    if (tracer_ != nullptr && waited != 0)
      tracer_->span(q, trace::kCatSync, "barrier-wait", barrier_arrival_[qi], release);
    clock_[qi] = release;
    set_active(q);
  }
  barrier_arrived_ = 0;
  ++barrier_generation_;
  return true;
}

// --- operations ---

void SimContext::op_lock(int p, const void* addr) {
  const auto idx = static_cast<std::size_t>(p);
  OpLock l(*this);
  flush_pending(p);
  ++stats_[idx].lock_acquires[static_cast<int>(phase_[idx])];
  wait_for_turn(l, p);
  LockState& ls = locks_[addr];
  if (!ls.held) {
    ls.held = true;
    ls.holder = p;
    const std::uint64_t t0 = clock_[idx];
    charge_model(p,
                 [&](MemModel& m, std::uint64_t now) { return m.on_acquire(p, addr, now); });
    if (prof_ != nullptr)
      prof_->lock_acquired(p, addr, t0, clock_[idx], phase_[idx],
                           mem_->proc_stats(p).remote_misses);
    return;
  }
  const std::uint64_t request_ns = clock_[idx];
  if (prof_ != nullptr) prof_->lock_wait_begin(p, addr, request_ns, phase_[idx]);
  ls.waiters.emplace_back(request_ns, p);
  leave_active(p, Status::kBlockedLock);
  wait_lock_grant(l, p);
  lock_granted_[idx] = 0;
  const std::uint64_t waited = clock_[idx] - request_ns;
  stats_[idx].lock_wait_ns += static_cast<double>(waited);
  stats_[idx].lock_wait_phase_ns[static_cast<int>(phase_[idx])] +=
      static_cast<double>(waited);
  stats_[idx].lock_wait_events.add(static_cast<double>(waited));
  if (tracer_ != nullptr)
    tracer_->span(p, trace::kCatSync, "lock-wait", request_ns, clock_[idx]);
  // The releaser set our clock to the grant time and made us Active again;
  // run the acquire-side protocol in global virtual-time order.
  wait_for_turn(l, p);
  charge_model(p,
               [&](MemModel& m, std::uint64_t now) { return m.on_acquire(p, addr, now); });
  if (prof_ != nullptr)
    prof_->lock_acquired_end(p, clock_[idx], mem_->proc_stats(p).remote_misses);
}

void SimContext::op_unlock(int p, const void* addr) {
  const auto idx = static_cast<std::size_t>(p);
  OpLock l(*this);
  flush_pending(p);
  wait_for_turn(l, p);
  auto it = locks_.find(addr);
  PTB_CHECK_MSG(it != locks_.end() && it->second.held && it->second.holder == p,
                "unlock of a lock not held by this processor");
  LockState& ls = it->second;
  const std::uint64_t u0 = clock_[idx];
  charge_model(p,
               [&](MemModel& m, std::uint64_t now) { return m.on_release(p, addr, now); });
  if (prof_ != nullptr)
    prof_->unlock(p, addr, u0, clock_[idx], phase_[idx],
                  mem_->proc_stats(p).remote_misses);
  if (ls.waiters.empty()) {
    ls.held = false;
    ls.holder = -1;
  } else {
    // Grant to the earliest request in virtual time (ties by processor id).
    auto best = std::min_element(ls.waiters.begin(), ls.waiters.end());
    const int w = best->second;
    ls.waiters.erase(best);
    ls.holder = w;
    const auto widx = static_cast<std::size_t>(w);
    clock_[widx] = std::max(clock_[widx], clock_[idx]);
    // Record the handoff edge (after the unlock event above, whose log
    // index the edge references).
    if (prof_ != nullptr) prof_->lock_grant(w, p, clock_[widx]);
    if (tracer_ != nullptr)
      tracer_->flow(p, w, trace::kCatSync, "lock-handoff", clock_[idx], clock_[widx]);
    set_active(w);
    lock_granted_[widx] = 1;
  }
}

void SimContext::op_barrier(int p) {
  const auto idx = static_cast<std::size_t>(p);
  OpLock l(*this);
  flush_pending(p);
  ++stats_[idx].barriers;
  wait_for_turn(l, p);
  const std::uint64_t b0 = clock_[idx];
  charge_model(p,
               [&](MemModel& m, std::uint64_t now) { return m.on_barrier_arrive(p, now); });
  barrier_arrival_[idx] = clock_[idx];
  if (prof_ != nullptr) prof_->barrier_arrive(p, b0, clock_[idx], phase_[idx]);
  leave_active(p, Status::kInBarrier);
  ++barrier_arrived_;
  const std::uint64_t gen = barrier_generation_;
  if (!maybe_release_barrier()) wait_barrier_release(l, p, gen);
  // Departure protocol in deterministic order (all clocks equal, id breaks
  // the tie). Departures are section-tolerant in the parallel backend: the
  // depart charge touches only the departing processor's own model state, and
  // letting it run while earlier departers sit in their unordered sections is
  // what lets those sections overlap at all.
  wait_for_turn(l, p, /*allow_sections=*/true);
  charge_model(p,
               [&](MemModel& m, std::uint64_t now) { return m.on_barrier_depart(p, now); });
  if (prof_ != nullptr)
    prof_->barrier_depart(p, clock_[idx], mem_->proc_stats(p).remote_misses);
}

void SimContext::op_begin_phase(int p, Phase ph) {
  const auto idx = static_cast<std::size_t>(p);
  OpLock l(*this);
  flush_pending(p);
  if (tracer_ != nullptr && clock_[idx] > phase_mark_[idx])
    tracer_->span(p, trace::kCatPhase, phase_name(phase_[idx]), phase_mark_[idx],
                  clock_[idx]);
  stats_[idx].phase_ns[static_cast<int>(phase_[idx])] +=
      static_cast<double>(clock_[idx] - phase_mark_[idx]);
  phase_mark_[idx] = clock_[idx];
  // The collector reads only processor p's own counters inside p's own
  // ordered operation (always on the scheduler thread — begin_phase is never
  // an overlappable unordered section), so it needs no overlap_ok_ entry.
  if (anatomy_ != nullptr) anatomy_->phase_close(p, phase_[idx], mem_->proc_stats(p));
  phase_[idx] = ph;
  if (prof_ != nullptr)
    prof_->phase_begin(p, ph, clock_[idx], mem_->proc_stats(p).remote_misses);
  mem_->on_phase(p, ph);  // report metadata only; a no-op for protocol models
}

// --- SimProc forwarding ---

void SimProc::read(const void* p, std::size_t n) {
  SimContext::OpLock l(*ctx_);
  ctx_->flush_pending(self_);
  ctx_->wait_for_turn(l, self_);
  ctx_->ordered_charge(self_, p, n, /*is_write=*/false);
}

void SimProc::write(const void* p, std::size_t n) {
  SimContext::OpLock l(*ctx_);
  ctx_->flush_pending(self_);
  ctx_->wait_for_turn(l, self_);
  ctx_->ordered_charge(self_, p, n, /*is_write=*/true);
}

void SimProc::lock(const void* addr) { ctx_->op_lock(self_, addr); }

void SimProc::unlock(const void* addr) { ctx_->op_unlock(self_, addr); }

std::int64_t SimProc::fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v) {
  SimContext::OpLock l(*ctx_);
  const auto idx = static_cast<std::size_t>(self_);
  ctx_->flush_pending(self_);
  ++ctx_->stats_[idx].fetch_adds;
  ctx_->wait_for_turn(l, self_);
  const std::uint64_t t0 = ctx_->clock_[idx];
  ctx_->charge_model(self_, [&](MemModel& m, std::uint64_t now) {
    return m.on_rmw(self_, &ctr, now);
  });
  if (ctx_->prof_ != nullptr)
    ctx_->prof_->fetch_add(self_, &ctr, t0, ctx_->clock_[idx], ctx_->phase_[idx],
                           ctx_->mem_->proc_stats(self_).remote_misses);
  return ctr.fetch_add(v, std::memory_order_relaxed);
}

void SimProc::barrier() { ctx_->op_barrier(self_); }

void SimProc::begin_phase(Phase p) { ctx_->op_begin_phase(self_, p); }

}  // namespace ptb
