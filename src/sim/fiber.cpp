#include "sim/fiber.hpp"

#include <cstdlib>
#include <cstring>

#include "support/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define PTB_FIBER_MMAP 1
#endif

// Hand-rolled context switch only on x86-64 SysV; everything else goes
// through ucontext.
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
#define PTB_FIBER_ASM_X86_64 1
#else
#include <ucontext.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define PTB_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PTB_ASAN 1
#endif
#endif

#ifdef PTB_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace ptb {

namespace {

std::size_t page_size() {
#ifdef PTB_FIBER_MMAP
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
#else
  return 4096;
#endif
}

std::size_t round_up(std::size_t v, std::size_t to) { return (v + to - 1) / to * to; }

}  // namespace

// First-resume landing pad shared by both backends: announce the stack switch
// to ASan, then run the user entry, which must never return.
void fiber_entry_shim(Fiber* f) {
#ifdef PTB_ASAN
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  f->entry_(f->arg_);
  PTB_CHECK_MSG(false, "fiber entry function returned instead of switching away");
}

#ifdef PTB_FIBER_ASM_X86_64

// ptb_fiber_swap(void** from_sp, void** to_sp)
//
// SysV x86-64 context switch: spill the callee-saved GPRs plus the x87/SSE
// control words onto the current stack, save rsp into *from_sp, adopt
// *to_sp and unspill. Caller-saved state needs no treatment because this is
// an ordinary function call from the compiler's point of view.
asm(R"(
        .text
        .align 16
        .globl ptb_fiber_swap
#if !defined(__APPLE__)
        .type ptb_fiber_swap, @function
#endif
ptb_fiber_swap:
        pushq %rbp
        pushq %rbx
        pushq %r12
        pushq %r13
        pushq %r14
        pushq %r15
        subq  $8, %rsp
        stmxcsr 4(%rsp)
        fnstcw  (%rsp)
        movq  %rsp, (%rdi)
        movq  (%rsi), %rsp
        fldcw   (%rsp)
        ldmxcsr 4(%rsp)
        addq  $8, %rsp
        popq  %r15
        popq  %r14
        popq  %r13
        popq  %r12
        popq  %rbx
        popq  %rbp
        ret
)");

// First-resume trampoline: ptb_fiber_swap "returns" here with the Fiber*
// parked in r12 by Fiber::start(). Clear the frame chain, realign the stack
// to the ABI contract and enter the C++ shim.
asm(R"(
        .text
        .align 16
        .globl ptb_fiber_boot
#if !defined(__APPLE__)
        .type ptb_fiber_boot, @function
#endif
ptb_fiber_boot:
        movq  %r12, %rdi
        xorl  %ebp, %ebp
        andq  $-16, %rsp
        call  ptb_fiber_boot_c
        ud2
)");

extern "C" {
void ptb_fiber_swap(void** from_sp, void** to_sp);
void ptb_fiber_boot();
void ptb_fiber_boot_c(void* f) { fiber_entry_shim(static_cast<Fiber*>(f)); }
}

#endif  // PTB_FIBER_ASM_X86_64

void Fiber::start(Entry entry, void* arg, std::size_t stack_bytes) {
  PTB_CHECK_MSG(stack_ == nullptr, "Fiber::start on an already-started fiber");
  entry_ = entry;
  arg_ = arg;

  const std::size_t ps = page_size();
  stack_bytes_ = round_up(stack_bytes, ps);
  stack_total_ = stack_bytes_ + ps;  // + low guard page
#ifdef PTB_FIBER_MMAP
  void* mem = mmap(nullptr, stack_total_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  PTB_CHECK_MSG(mem != MAP_FAILED, "fiber stack mmap failed");
  PTB_CHECK(mprotect(mem, ps, PROT_NONE) == 0);
#else
  void* mem = std::malloc(stack_total_);
  PTB_CHECK_MSG(mem != nullptr, "fiber stack allocation failed");
#endif
  stack_ = mem;
  stack_lo_ = static_cast<char*>(mem) + ps;
#ifdef PTB_ASAN
  // The allocator may hand back an address range a dead fiber's stack (or any
  // poisoned allocation) previously occupied, and ASan shadow is not cleared
  // by munmap/free. Stale redzones on a fresh stack break the runtime's own
  // stack walks (e.g. __asan_handle_no_return at fiber boot), so scrub them.
  __asan_unpoison_memory_region(stack_lo_, stack_bytes_);
#endif

#ifdef PTB_FIBER_ASM_X86_64
  // Craft the initial frame ptb_fiber_swap will unspill (see the asm above):
  // control words at the bottom, then r15..rbp, then the ptb_fiber_boot
  // return address at the 16-aligned stack top.
  auto top = reinterpret_cast<std::uintptr_t>(stack_lo_) + stack_bytes_;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* frame = reinterpret_cast<std::uint64_t*>(top) - 8;
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  frame[0] = static_cast<std::uint64_t>(fcw) |
             (static_cast<std::uint64_t>(mxcsr) << 32);
  frame[1] = 0;                                       // r15
  frame[2] = 0;                                       // r14
  frame[3] = 0;                                       // r13
  frame[4] = reinterpret_cast<std::uint64_t>(this);   // r12 -> boot arg
  frame[5] = 0;                                       // rbx
  frame[6] = 0;                                       // rbp
  frame[7] = reinterpret_cast<std::uint64_t>(&ptb_fiber_boot);
  sp_ = frame;
#else
  auto* uc = new ucontext_t;
  ucontext_ = uc;
  PTB_CHECK(getcontext(uc) == 0);
  uc->uc_stack.ss_sp = stack_lo_;
  uc->uc_stack.ss_size = stack_bytes_;
  uc->uc_link = nullptr;
  // makecontext only forwards ints; smuggle the Fiber* through two halves.
  const auto bits = reinterpret_cast<std::uintptr_t>(this);
  makecontext(
      uc,
      reinterpret_cast<void (*)()>(+[](unsigned hi, unsigned lo) {
        const auto p = (static_cast<std::uintptr_t>(hi) << 32) |
                       static_cast<std::uintptr_t>(lo);
        fiber_entry_shim(reinterpret_cast<Fiber*>(p));
      }),
      2, static_cast<unsigned>(bits >> 32), static_cast<unsigned>(bits & 0xffffffffu));
#endif
}

void Fiber::switch_to(Fiber& from, Fiber& to) {
#ifdef PTB_ASAN
  __sanitizer_start_switch_fiber(&from.asan_fake_stack_, to.stack_lo_, to.stack_bytes_);
#endif
#ifdef PTB_FIBER_ASM_X86_64
  ptb_fiber_swap(&from.sp_, &to.sp_);
#else
  auto* fu = static_cast<ucontext_t*>(from.ucontext_);
  if (fu == nullptr) {
    fu = new ucontext_t;
    from.ucontext_ = fu;
  }
  PTB_CHECK(swapcontext(fu, static_cast<ucontext_t*>(to.ucontext_)) == 0);
#endif
#ifdef PTB_ASAN
  // We are back in `from` — complete the switch that resumed us.
  __sanitizer_finish_switch_fiber(from.asan_fake_stack_, nullptr, nullptr);
#endif
}

void Fiber::destroy() {
  if (stack_ != nullptr) {
#ifdef PTB_ASAN
    // Leave no shadow poison behind for the next occupant of this range.
    __asan_unpoison_memory_region(stack_lo_, stack_bytes_);
#endif
#ifdef PTB_FIBER_MMAP
    munmap(stack_, stack_total_);
#else
    std::free(stack_);
#endif
    stack_ = nullptr;
    stack_lo_ = nullptr;
    stack_bytes_ = 0;
    stack_total_ = 0;
    sp_ = nullptr;
  }
#ifndef PTB_FIBER_ASM_X86_64
  delete static_cast<ucontext_t*>(ucontext_);
  ucontext_ = nullptr;
#endif
}

Fiber::~Fiber() { destroy(); }

}  // namespace ptb
