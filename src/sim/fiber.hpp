// Stackful cooperative fibers for the single-host-thread DES backend.
//
// A started Fiber owns an mmap'd stack (with a PROT_NONE guard page at the
// low end) and a saved machine context. switch_to() transfers control
// synchronously: it saves the callee-saved state of the calling context into
// `from` and resumes `to` where it last suspended (or at its entry function
// on the first resume). A default-constructed Fiber has no stack of its own
// and represents the host thread's context — SimContext uses one as the
// scheduler anchor that run() suspends into.
//
// Nothing here is thread-safe, by design: all fibers of one SimContext run
// on the single host thread that called run(), which is the whole point —
// the OS scheduler, mutexes and condition variables drop out of the
// simulator's ordered-operation hot path entirely.
//
// On x86-64 SysV the switch is ~20 ns of hand-rolled assembly (six
// callee-saved GPRs, the x87/SSE control words and the stack pointer — see
// fiber.cpp); elsewhere it falls back to POSIX ucontext, which is correct
// but pays a sigprocmask syscall per switch. Under AddressSanitizer the
// switch is annotated with the __sanitizer_*_switch_fiber API so stack
// poisoning follows the fiber, not the host thread.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ptb {

class Fiber {
 public:
  using Entry = void (*)(void* arg);

  Fiber() = default;
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Allocates a stack and arranges for entry(arg) to run on it at the first
  /// switch_to() targeting this fiber. The entry function must never return:
  /// when its work is done it must switch away one final time (to the fiber
  /// that owns the run loop) and never be resumed.
  void start(Entry entry, void* arg, std::size_t stack_bytes);

  /// Releases the stack (no-op for the host-context fiber). The fiber must
  /// not be the currently running one and must never be resumed again.
  void destroy();

  bool started() const { return stack_ != nullptr; }

  /// Saves the current context into `from` and resumes `to`. Returns when
  /// some other fiber switches back to `from`.
  static void switch_to(Fiber& from, Fiber& to);

 private:
  void* sp_ = nullptr;          // saved stack pointer (asm backend)
  void* ucontext_ = nullptr;    // ucontext_t* (portable backend)
  Entry entry_ = nullptr;
  void* arg_ = nullptr;
  void* stack_ = nullptr;       // mmap base (guard page + usable stack)
  std::size_t stack_total_ = 0; // total mapping size including the guard
  void* stack_lo_ = nullptr;    // usable stack bottom (above the guard)
  std::size_t stack_bytes_ = 0; // usable stack size
  void* asan_fake_stack_ = nullptr;  // handle saved while this fiber sleeps

  friend void fiber_entry_shim(Fiber* f);
};

}  // namespace ptb
