// SimRT: execution-driven discrete-event simulation runtime.
//
// The same algorithm code that runs under NativeRT runs here, but every
// annotated shared-memory operation is (a) charged to a per-processor
// *virtual clock* by the platform's protocol model and (b) globally ordered:
// a processor may only perform its next ordered operation when its virtual
// clock is the minimum over all processors that could still act
// (conservative PDES). Locks queue in virtual time, so lock contention,
// critical-section dilation by page faults, and barrier imbalance all emerge
// mechanically rather than being scripted.
//
// Two interchangeable backends execute the SPMD body (SimBackend):
//
//  * kFibers (default): every simulated processor is a stackful fiber on ONE
//    host thread; the scheduler resumes exactly the fiber whose clock is the
//    virtual-time minimum (an indexed min-heap keyed by (clock, proc)), so
//    an ordered operation costs a user-space context switch at worst and a
//    heap update at best — no mutex, no condition variables, no OS scheduler
//    in the loop, and determinism by construction.
//  * kThreads: one host thread per simulated processor, kept as a
//    cross-check. The same scheduling discipline is enforced with a run
//    token: a thread executes (host code included) only while it holds the
//    token, and every wait point hands the token to the heap top with a
//    mutex + condition-variable signal. Serializing the host execution is
//    not just about the ordering ops: algorithm code legitimately reads
//    shared tree state outside any simulated lock (races resolved in
//    *virtual* time), and letting host threads overlap for real would let
//    the OS scheduler pick which side of such a race each run observes.
//  * kParallel: the fiber scheduler runs unchanged on one host thread — the
//    ordered path pays not a single atomic more than kFibers — but an
//    unordered section (rt.unordered(fn): a stretch the application declares
//    to contain only read_shared/compute work on its own partition, e.g. one
//    body's force gather + evaluate loop) is shipped as a closure to a small
//    pool of host worker threads and genuinely overlaps other sections and
//    the scheduler. The section is glued to the processor's preceding
//    ordered operation: it is enqueued synchronously from the fiber, so
//    nothing can interleave between that operation and the section start,
//    exactly as in the fiber backend's run-to-wait-point order. While
//    sections are in flight, ordered operations stall — except barrier
//    departures, which touch no state a section reads and are what lets the
//    next processor reach its own section. docs/MODEL.md ("The lookahead
//    window") argues why this cannot change a single virtual time.
//
// All backends implement the same virtual-time state machine with the same
// (clock, processor-id) tie-break and the same run-to-wait-point execution
// order, so they produce bit-identical virtual times, lock counts and
// per-phase statistics; the test suite asserts this
// (tests/test_sim_backend_equiv.cpp).
//
// Determinism: given a fixed platform, processor count and input, repeated
// runs produce bit-identical virtual times and statistics (ties in virtual
// time break by processor id). The test suite asserts this.
//
// Fast path: read_shared() skips global ordering — it is only legal in phases
// where the touched data is not written (the force phase reading the tree),
// and the protocol models confine themselves to per-processor state plus
// commutative atomics there. Its cost accumulates in a per-processor
// "pending" bucket that is folded into the virtual clock at the next ordered
// operation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <thread>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/dispatch.hpp"
#include "mem/model.hpp"
#include "platform/spec.hpp"
#include "rt/phase.hpp"
#include "sim/fiber.hpp"
#include "sim/turn_heap.hpp"

namespace ptb {

namespace race {
class RaceModel;
struct RaceReport;
}  // namespace race

namespace prof {
class Recorder;
}  // namespace prof

namespace sight {
class SightModel;
bool default_sight_enabled();
}  // namespace sight

namespace anatomy {
class Collector;
}  // namespace anatomy

/// How SimContext::run executes the simulated processors.
enum class SimBackend { kFibers, kThreads, kParallel };

/// Reads PTB_RACE from the environment (non-empty, non-"0" enables the
/// data-race detector); the default for SimContext's `race_detect` argument,
/// so whole test-suite/bench sweeps can turn detection on without touching
/// construction sites.
bool default_race_detection();

/// Reads PTB_SIM_BACKEND ("fibers" | "threads" | "parallel") from the
/// environment; defaults to kFibers. Lets CI sweep the whole test suite
/// across backends without touching every construction site.
SimBackend default_sim_backend();

/// Reads PTB_SIM_WORKERS (host threads for the kParallel backend); defaults
/// to half the hardware threads, clamped to [1, 16].
int default_sim_workers();

const char* to_string(SimBackend b);

/// Parses "fibers" / "threads" / "parallel" (aborts on anything else).
SimBackend sim_backend_from_string(const std::string& s);

class SimContext;

class SimProc {
 public:
  SimProc(SimContext& ctx, int self) : ctx_(&ctx), self_(self) {}

  int self() const { return self_; }
  int nprocs() const;

  void compute(double units);
  /// Charges `count` repetitions of compute(units) in one call: the cost of
  /// a single call is computed (with its truncation) and multiplied, so the
  /// pending-bucket total is bit-identical to the loop. The batched force
  /// kernel uses this to charge a whole interaction list at once.
  void compute_n(double units, std::uint64_t count);
  void read(const void* p, std::size_t n);
  void write(const void* p, std::size_t n);
  void read_shared(const void* p, std::size_t n);

  /// Charges `count` unordered shared reads of `n` bytes, element i at
  /// `p + i*stride`, in one runtime call: one dispatch, one region
  /// resolution, one observer snapshot — instead of `count` of each.
  /// Accounting is bit-identical to the equivalent read_shared loop (the
  /// protocol models' span contract, mem/model.hpp), so annotation layers
  /// may use it on any contiguous run of read_shared calls with no ordered
  /// operation in between. Ordered operations must NOT be batched this way:
  /// their fold points define virtual-time order.
  void read_shared_span(const void* p, std::size_t n, std::size_t stride,
                        std::size_t count);

  /// Combined charge + ACTUAL load/store of a shared atomic, executed at
  /// this processor's virtual-time turn. This is what makes data-dependent
  /// control flow on racy fields (a cell's kind, child slots, the body->leaf
  /// map) deterministic: the value read is exactly the state after all
  /// operations with earlier virtual time.
  template <class T>
  T ordered_load(const std::atomic<T>& a, const void* charge_addr, std::size_t n);
  template <class T>
  void ordered_store(std::atomic<T>& a, T v, const void* charge_addr, std::size_t n);

  void lock(const void* addr);
  void unlock(const void* addr);
  std::int64_t fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v);
  void barrier();
  void begin_phase(Phase p);

  /// Runs `fn` as an unordered section: a stretch that issues only
  /// read_shared/read_shared_span/compute work, touches no state another
  /// processor writes, and whose host side-effects are confined to this
  /// processor's own slots. Under kFibers/kThreads it is an inline call
  /// (plus the contract flag); under kParallel it is the unit of real host
  /// overlap — the closure runs on a pool worker while the scheduler keeps
  /// going (see the kParallel notes above). Ordered operations inside a
  /// section abort the run.
  void unordered(std::function<void()> fn);

  /// The attached tracer (null when tracing is off) and the current virtual
  /// time (clock + unfolded pending cost) — lets phase code emit its own
  /// sub-spans at one null-check of cost when tracing is disabled. Uniform
  /// across runtimes: NativeRT/OmpRT/SeqRT expose the same pair with wall
  ///-clock timestamps.
  trace::Tracer* tracer() const;
  std::uint64_t trace_now() const;

 private:
  SimContext* ctx_;
  int self_;
};

class SimContext {
 public:
  using Proc = SimProc;

  SimContext(const PlatformSpec& spec, int nprocs,
             SimBackend backend = default_sim_backend(),
             bool race_detect = default_race_detection(),
             bool sight_observe = sight::default_sight_enabled());
  ~SimContext();

  int nprocs() const { return nprocs_; }
  SimBackend backend() const { return backend_; }
  const PlatformSpec& spec() const { return spec_; }
  MemModel& mem() { return *mem_; }

  /// Host worker threads for the kParallel backend (ignored elsewhere).
  /// Clamped to [1, nprocs] at run time. Call before run().
  void set_workers(int w) { workers_ = w; }
  int workers() const { return workers_; }

  /// The data-race detector's findings, or null when detection is off. With
  /// detection on, `mem()` is the RaceModel decorator wrapping the platform's
  /// protocol model (virtual times are unchanged either way).
  const race::RaceReport* race_report() const;

  /// The sharing-pattern observer, or null when --sight is off. With it on,
  /// `mem()` is the SightModel decorator wrapping RaceModel/protocol model
  /// (outermost, so it observes every access; virtual times unchanged).
  sight::SightModel* sight_model() { return sight_model_; }

  /// Registers a shared region with the protocol model. Call before run().
  void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                       int fixed_home, std::string name);

  /// Attaches an event tracer (null detaches). Virtual-time spans (phases,
  /// lock/barrier waits), scheduler switches and memory instant events are
  /// recorded on it; with no tracer attached the hot path pays a single
  /// branch per operation. The tracer must outlive the context and have at
  /// least nprocs() tracks. Never affects virtual results.
  void set_tracer(trace::Tracer* t);
  trace::Tracer* tracer() const { return tracer_; }

  /// Attaches a profiling recorder (null detaches). The recorder captures
  /// the run's dependency graph — lock request→grant handoffs, barrier
  /// releases, fetch&adds, phase changes, per-line memory charges — for
  /// critical-path and what-if analysis (src/prof/). Pure observer: it only
  /// reads virtual times the simulator already computed, so profiled runs
  /// are bit-identical to unprofiled ones, and with no recorder attached
  /// the hot path pays a single branch per operation. Must outlive the
  /// context.
  void set_profiler(prof::Recorder* r) { prof_ = r; }
  prof::Recorder* profiler() const { return prof_; }

  /// Attaches an anatomy collector (null detaches). The collector snapshots
  /// each processor's protocol counters when that processor closes a phase
  /// span — on the processor's own ordered operation, touching only its own
  /// slots — so it stays off the kParallel overlap blacklist and anatomy
  /// runs are bit-identical in virtual time. Must outlive the context.
  void set_anatomy(anatomy::Collector* c) { anatomy_ = c; }
  anatomy::Collector* anatomy_collector() const { return anatomy_; }

  /// Runs f(SimProc&) SPMD on nprocs simulated processors, returning when
  /// all of them finish.
  template <class F>
  void run(F&& f) {
    run_impl([&f](SimProc& proc) { f(proc); });
  }

  /// Charges a read/write of [addr, addr+n) at processor p's turn and runs
  /// `f()` inside the ordering section (see SimProc::ordered_load).
  template <class F>
  auto ordered_apply(int p, const void* addr, std::size_t n, bool is_write, F&& f) {
    OpLock l(*this);
    flush_pending(p);
    wait_for_turn(l, p);
    ordered_charge(p, addr, n, is_write);
    return f();
  }

  /// ordered_apply for an atomic object at `sync`: routed through the
  /// model's on_atomic hook so decorators can see the release/acquire
  /// structure (protocol models default it to a plain read/write charge).
  template <class F>
  auto ordered_apply_sync(int p, const void* sync, const void* addr, std::size_t n,
                          bool is_write, F&& f) {
    OpLock l(*this);
    flush_pending(p);
    wait_for_turn(l, p);
    // on_atomic stays a virtual call: decorators key sync state off it, and
    // it is far off the hot path.
    charge_model_prof(p, addr, [&](MemModel& m, std::uint64_t now) {
      return m.on_atomic(p, sync, is_write, addr, n, now);
    });
    return f();
  }

  // --- results ---
  const std::vector<ProcStats>& stats() const { return stats_; }
  /// Virtual nanoseconds on processor p's clock.
  std::uint64_t clock_ns(int p) const {
    return clock_[static_cast<std::size_t>(p)];
  }
  /// Virtual completion time of the whole run (max over processors).
  std::uint64_t elapsed_ns() const;
  void reset_stats();

 private:
  friend class SimProc;

  enum class Status : std::uint8_t {
    kActive,
    kBlockedLock,
    kInBarrier,
    kInSection,  // kParallel: section in flight on a pool worker
    kDone,
  };

  struct LockState {
    bool held = false;
    int holder = -1;
    // Waiters with their virtual request times; the earliest request is
    // granted at release (FIFO in virtual time, ties by processor id).
    std::vector<std::pair<std::uint64_t, int>> waiters;
  };

  /// Scoped ordering-section guard: takes the global mutex in the threads
  /// backend, is free in the fiber AND parallel backends — kParallel runs
  /// the whole ordered path on the scheduler thread; pool workers touch only
  /// their processor's own slots and the pool queues (pool_m_).
  struct OpLock {
    explicit OpLock(SimContext& c) {
      if (c.backend_ == SimBackend::kThreads) l = std::unique_lock<std::mutex>(c.m_);
    }
    std::unique_lock<std::mutex> l;
  };

  void run_impl(const std::function<void(SimProc&)>& f);
  void run_threads(const std::function<void(SimProc&)>& f);
  void run_fibers(const std::function<void(SimProc&)>& f);
  void run_parallel(const std::function<void(SimProc&)>& f);
  void reset_run_state();
  /// End-of-body bookkeeping shared by both backends: fold pending cost,
  /// close the phase attribution, retire the processor.
  void finish_proc(int p);

  // --- scheduling core (requires the ordering section) ---
  /// Blocks processor p until it is the (clock, id) minimum of the Active
  /// set, yielding to the heap top meanwhile. Unless `allow_sections`, also
  /// waits for every in-flight unordered section to fold (kParallel; the
  /// count is always zero elsewhere). `allow_sections` is only legal for
  /// operations whose model charge touches no state an unordered section
  /// reads (the barrier departure).
  void wait_for_turn(OpLock& l, int p, bool allow_sections = false);
  /// Waits until lock_granted_[p] is set by a releaser.
  void wait_lock_grant(OpLock& l, int p);
  /// Waits until the barrier generation moves past `gen`.
  void wait_barrier_release(OpLock& l, int p, std::uint64_t gen);
  /// Hands execution to the heap top and blocks until p is resumed: fiber
  /// switch in the fiber backend, token handoff + condvar sleep in the
  /// threads backend. The single yield primitive under all three waits.
  void yield_turn(OpLock& l, int p);
  /// Threads backend: transfers the run token to the heap top (or back to
  /// the host context when everyone is done) and signals the new owner.
  void pass_token(int me);
  void flush_pending(int p);
  void advance(int p, std::uint64_t cost);
  /// Re-admits p to the Active set (lock grant, barrier release).
  void set_active(int p);
  /// Removes p from the Active set with the given blocked/done status.
  void leave_active(int p, Status s);
  int alive_count() const;
  bool maybe_release_barrier();

  // --- fiber backend ---
  static constexpr int kHostContext = -1;
  static void fiber_entry(void* arg);
  void fiber_body(int p);
  /// Switches from the currently running fiber to the heap top (or, with an
  /// empty heap at end of run, back to the host context).
  void fiber_reschedule();

  // --- parallel backend (scheduler thread unless noted) ---
  /// Launches `fn` as processor p's unordered section. kFibers/kThreads (or
  /// kParallel with an observer attached): runs it inline. kParallel: folds
  /// p's pending cost, removes p from the Active set, enqueues the closure
  /// for the pool and reschedules; p's fiber resumes after drain_sections
  /// has folded the section's cost and re-admitted p.
  void op_unordered_run(int p, std::function<void()> fn);
  /// Folds completed sections back into the schedule (clock fold +
  /// re-admission, in processor-id order). With `block`, sleeps until at
  /// least one section completes — the only place the scheduler ever waits.
  void drain_sections(bool block);
  /// Pool worker body: run queued sections until shutdown (pool_m_ only).
  void section_worker();

  // Operation implementations (called by SimProc).
  /// Charges `cost` virtual ns of memory-system stall to p's current phase.
  void note_mem_stall(int p, std::uint64_t cost) {
    const auto idx = static_cast<std::size_t>(p);
    stats_[idx].mem_stall_ns[static_cast<int>(phase_[idx])] +=
        static_cast<double>(cost);
  }
  /// Requires the ordering section and p's turn. Runs one protocol-model
  /// call (`call(mem, now) -> cost`), advances p's clock by the cost,
  /// attributes the memory stall to p's current phase, and — when tracing —
  /// emits instant events for the memory-event counters the call advanced.
  template <class F>
  void charge_model(int p, F&& call) {
    const auto idx = static_cast<std::size_t>(p);
    MemProcStats snap;
    if (tracer_ != nullptr) snap = mem_->proc_stats(p);
    const std::uint64_t now = clock_[idx];
    const std::uint64_t cost = call(*mem_, now);
    advance(p, cost);
    note_mem_stall(p, cost);
    if (tracer_ != nullptr)
      trace_mem_events(*tracer_, p, snap, mem_->proc_stats(p), now);
  }
  /// charge_model plus, when profiling, the before/after bracketing
  /// prof_note_charge needs. The ONE place that bracketing lives — every
  /// ordered charged access (plain and atomic) goes through here, so the
  /// profiled and unprofiled paths cannot drift.
  template <class F>
  void charge_model_prof(int p, const void* addr, F&& call) {
    if (prof_ == nullptr) {
      charge_model(p, call);
      return;
    }
    const MemProcStats before = mem_->proc_stats(p);
    const std::uint64_t c0 = clock_[static_cast<std::size_t>(p)];
    charge_model(p, call);
    prof_note_charge(p, addr, before, c0);
  }
  /// charge_model for a plain ordered read/write of [addr, addr+n), routed
  /// through the sealed dispatch (a direct call for the three protocol
  /// models, the virtual path for decorators and the slow-path oracle).
  void ordered_charge(int p, const void* addr, std::size_t n, bool is_write) {
    charge_model_prof(p, addr, [&](MemModel&, std::uint64_t now) {
      return is_write ? mem_fast_.on_write(p, addr, n, now)
                      : mem_fast_.on_read(p, addr, n, now);
    });
  }
  /// The unordered (read_shared) counterpart of charge_model: runs one
  /// protocol-model call (`call() -> cost`) with the observer
  /// snapshot-and-diff around it when a tracer or profiler is attached.
  /// Timestamps are approximate (the pending bucket has not been folded into
  /// the clock yet); both backends serialize host execution, so the
  /// observers need no locking. The ONE copy of this block — the scalar and
  /// span fast paths share it, so they cannot drift.
  template <class F>
  std::uint64_t observed_unordered_call(int p, const void* addr, F&& call) {
    if (tracer_ == nullptr && prof_ == nullptr) return call();
    const auto idx = static_cast<std::size_t>(p);
    const MemProcStats snap = mem_->proc_stats(p);
    const std::uint64_t cost = call();
    const MemProcStats& after = mem_->proc_stats(p);
    if (tracer_ != nullptr)
      trace_mem_events(*tracer_, p, snap, after, clock_[idx] + pending_[idx].v);
    if (prof_ != nullptr) prof_note_unordered(p, addr, cost, snap, after);
    return cost;
  }
  /// Profiling on: records one charged access (cost and remote-miss /
  /// invalidation deltas) into the recorder's per-line table.
  void prof_note_charge(int p, const void* addr, const MemProcStats& before,
                        std::uint64_t clock_before);
  /// Same, for the unordered path (the cost is known directly; no clock
  /// bracketing, as read_shared never touches the clock).
  void prof_note_unordered(int p, const void* addr, std::uint64_t cost,
                           const MemProcStats& before, const MemProcStats& after);
  void op_lock(int p, const void* addr);
  void op_unlock(int p, const void* addr);
  void op_barrier(int p);
  void op_begin_phase(int p, Phase ph);

  PlatformSpec spec_;
  int nprocs_;
  SimBackend backend_;
  std::unique_ptr<MemModel> mem_;
  /// Sealed dispatch bound to mem_ (mem/dispatch.hpp): the hot per-access
  /// path. Falls back to the virtual route for decorators and under
  /// PTB_MEM_SLOWPATH.
  MemDispatch mem_fast_;
  /// PTB_MEM_SLOWPATH sampled at construction: the reference-path oracle.
  /// Gates span coalescing (spans decay to per-element scalar calls).
  bool mem_slowpath_ = false;
  /// Non-null iff race detection is on: then mem_ IS this decorator (kept
  /// separately typed for report access and tracer forwarding).
  race::RaceModel* race_model_ = nullptr;
  /// Non-null iff sight observation is on: then mem_ IS this decorator,
  /// wrapped outside the race model when both are enabled.
  sight::SightModel* sight_model_ = nullptr;
  /// Opt-in observability (null = disabled; the common case).
  trace::Tracer* tracer_ = nullptr;
  /// Opt-in dependency-graph capture for ptb::prof (null = disabled).
  prof::Recorder* prof_ = nullptr;
  /// Opt-in per-phase counter snapshots for ptb::anatomy (null = disabled).
  anatomy::Collector* anatomy_ = nullptr;

  /// The Active set ordered by (virtual clock, processor id): top() is the
  /// one processor allowed past its next ordering point. Maintained by every
  /// clock/status mutation in both backends.
  TurnHeap heap_;

  // Threads backend: the global ordering mutex and per-processor condition
  // variables; running_ doubles as the run token (only its owner executes).
  std::mutex m_;
  std::unique_ptr<std::condition_variable[]> turn_cv_;

  // Fiber backend: one stackful fiber per simulated processor plus the host
  // thread's anchor context; running_ is the processor currently executing
  // (shared with the threads backend as the token).
  struct FiberArg {
    SimContext* ctx;
    int proc;
  };
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<FiberArg> fiber_args_;
  Fiber host_ctx_;
  int running_ = kHostContext;
  const std::function<void(SimProc&)>* body_ = nullptr;

  // Parallel backend: a pool of host threads that runs unordered-section
  // closures. The scheduler (fiber loop) never shares its state with the
  // pool; the only cross-thread traffic is the two queues below.
  int workers_ = default_sim_workers();
  int pool_width_ = 0;     // workers actually spawned this run (0 = no pool)
  int free_running_ = 0;   // sections currently in flight (scheduler-private)
  /// True when unordered sections may genuinely overlap on the host. Off
  /// when a tracer/profiler/race detector is attached: observers assume the
  /// serial host schedule, so sections then run inline in the fiber (still
  /// bit-identical, just not concurrent).
  bool overlap_ok_ = false;
  std::vector<std::uint8_t> in_free_;  // processor is inside a section
  std::vector<std::function<void()>> section_fn_;  // per-proc section closure
  std::vector<std::thread> pool_;
  std::mutex pool_m_;                  // guards the two queues + shutdown flag
  std::condition_variable pool_cv_;    // workers: "work or shutdown"
  std::condition_variable done_cv_;    // scheduler: "a section completed"
  std::vector<int> section_queue_;
  std::vector<int> section_done_;
  bool pool_shutdown_ = false;

  /// One cache line per processor: pending_ is hammered by every unordered
  /// charge, and in the parallel backend different processors write their
  /// slots from different host threads at once.
  struct alignas(64) PaddedCost {
    std::uint64_t v = 0;
  };

  std::vector<std::uint64_t> clock_;
  std::vector<Status> status_;
  std::vector<PaddedCost> pending_;  // written only by the owning processor
  std::vector<std::uint8_t> lock_granted_;
  std::unordered_map<const void*, LockState> locks_;

  // Barrier state.
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::vector<std::uint64_t> barrier_arrival_;

  // Phase accounting.
  std::vector<Phase> phase_;
  std::vector<std::uint64_t> phase_mark_;
  std::vector<ProcStats> stats_;
};

inline int SimProc::nprocs() const { return ctx_->nprocs_; }

// The three unordered hot-path operations are header-inline: together with
// the sealed dispatch this turns the common-case charge into a direct call
// chain the compiler can see end to end (docs/PERF.md).

inline void SimProc::compute(double units) {
  ctx_->pending_[static_cast<std::size_t>(self_)].v +=
      static_cast<std::uint64_t>(units * ctx_->spec_.ns_per_work);
}

inline void SimProc::compute_n(double units, std::uint64_t count) {
  // One call's truncated cost, multiplied: bit-identical to `count`
  // compute(units) calls (pending adds commute and truncate per call).
  ctx_->pending_[static_cast<std::size_t>(self_)].v +=
      count * static_cast<std::uint64_t>(units * ctx_->spec_.ns_per_work);
}

inline trace::Tracer* SimProc::tracer() const { return ctx_->tracer_; }

inline std::uint64_t SimProc::trace_now() const {
  const auto idx = static_cast<std::size_t>(self_);
  return ctx_->clock_[idx] + ctx_->pending_[idx].v;
}

inline void SimProc::read_shared(const void* p, std::size_t n) {
  SimContext& ctx = *ctx_;
  const std::uint64_t cost = ctx.observed_unordered_call(
      self_, p, [&] { return ctx.mem_fast_.on_read_shared(self_, p, n); });
  ctx.pending_[static_cast<std::size_t>(self_)].v += cost;
  ctx.note_mem_stall(self_, cost);
}

inline void SimProc::read_shared_span(const void* p, std::size_t n, std::size_t stride,
                                      std::size_t count) {
  if (count == 0) return;
  SimContext& ctx = *ctx_;
  if (ctx.mem_slowpath_ || ctx.prof_ != nullptr) {
    // The oracle charges per element by definition. Profiled runs also stay
    // per element so the recorder attributes each element's cost to its own
    // address — identical attribution fast path vs oracle.
    const char* a = static_cast<const char*>(p);
    for (std::size_t i = 0; i < count; ++i) read_shared(a + i * stride, n);
    return;
  }
  if (count == 1) {
    // Singleton spans are the common case in the force walk (interaction
    // lists hit scattered slots); the scalar path charges them identically
    // without the span setup.
    read_shared(p, n);
    return;
  }
  const std::uint64_t cost = ctx.observed_unordered_call(self_, p, [&] {
    return ctx.mem_fast_.on_read_shared_span(self_, p, n, stride, count);
  });
  ctx.pending_[static_cast<std::size_t>(self_)].v += cost;
  ctx.note_mem_stall(self_, cost);
}

inline void SimProc::unordered(std::function<void()> fn) {
  ctx_->op_unordered_run(self_, std::move(fn));
}

template <class T>
T SimProc::ordered_load(const std::atomic<T>& a, const void* charge_addr, std::size_t n) {
  return ctx_->ordered_apply_sync(self_, &a, charge_addr, n, /*is_write=*/false,
                                  [&] { return a.load(std::memory_order_relaxed); });
}

template <class T>
void SimProc::ordered_store(std::atomic<T>& a, T v, const void* charge_addr,
                            std::size_t n) {
  ctx_->ordered_apply_sync(self_, &a, charge_addr, n, /*is_write=*/true, [&] {
    a.store(v, std::memory_order_relaxed);
    return 0;
  });
}

}  // namespace ptb
