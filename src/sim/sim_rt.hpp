// SimRT: execution-driven discrete-event simulation runtime.
//
// The same algorithm code that runs under NativeRT runs here on real host
// threads, but every annotated shared-memory operation is (a) charged to a
// per-processor *virtual clock* by the platform's protocol model and
// (b) globally ordered: a processor may only perform its next ordered
// operation when its virtual clock is the minimum over all processors that
// could still act (conservative PDES). Locks queue in virtual time, so lock
// contention, critical-section dilation by page faults, and barrier imbalance
// all emerge mechanically rather than being scripted.
//
// Determinism: given a fixed platform, processor count and input, repeated
// runs produce bit-identical virtual times and statistics (ties in virtual
// time break by processor id). The test suite asserts this.
//
// Fast path: read_shared() skips global ordering — it is only legal in phases
// where the touched data is not written (the force phase reading the tree),
// and the protocol models confine themselves to per-processor state plus
// commutative atomics there. Its cost accumulates in a thread-local "pending"
// bucket that is folded into the virtual clock at the next ordered operation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mem/model.hpp"
#include "platform/spec.hpp"
#include "rt/phase.hpp"

namespace ptb {

class SimContext;

class SimProc {
 public:
  SimProc(SimContext& ctx, int self) : ctx_(&ctx), self_(self) {}

  int self() const { return self_; }
  int nprocs() const;

  void compute(double units);
  void read(const void* p, std::size_t n);
  void write(const void* p, std::size_t n);
  void read_shared(const void* p, std::size_t n);

  /// Combined charge + ACTUAL load/store of a shared atomic, executed under
  /// the global ordering lock at this processor's virtual-time turn. This is
  /// what makes data-dependent control flow on racy fields (a cell's kind,
  /// child slots, the body->leaf map) deterministic: the value read is
  /// exactly the state after all operations with earlier virtual time.
  template <class T>
  T ordered_load(const std::atomic<T>& a, const void* charge_addr, std::size_t n);
  template <class T>
  void ordered_store(std::atomic<T>& a, T v, const void* charge_addr, std::size_t n);

  void lock(const void* addr);
  void unlock(const void* addr);
  std::int64_t fetch_add(std::atomic<std::int64_t>& ctr, std::int64_t v);
  void barrier();
  void begin_phase(Phase p);

 private:
  SimContext* ctx_;
  int self_;
};

class SimContext {
 public:
  using Proc = SimProc;

  SimContext(const PlatformSpec& spec, int nprocs);
  ~SimContext();

  int nprocs() const { return nprocs_; }
  const PlatformSpec& spec() const { return spec_; }
  MemModel& mem() { return *mem_; }

  /// Registers a shared region with the protocol model. Call before run().
  void register_region(const void* base, std::size_t bytes, HomePolicy policy,
                       int fixed_home, std::string name);

  /// Runs f(SimProc&) SPMD on nprocs host threads, joining them all.
  template <class F>
  void run(F&& f) {
    run_impl([&f](SimProc& proc) { f(proc); });
  }

  /// Charges a read/write of [addr, addr+n) at processor p's turn and runs
  /// `f()` under the ordering lock (see SimProc::ordered_load).
  template <class F>
  auto ordered_apply(int p, const void* addr, std::size_t n, bool is_write, F&& f) {
    std::unique_lock<std::mutex> l(m_);
    flush_pending(p);
    wait_for_turn(l, p);
    const auto now = clock_[static_cast<std::size_t>(p)];
    advance(p, is_write ? mem_->on_write(p, addr, n, now) : mem_->on_read(p, addr, n, now));
    auto result = f();
    wake_min();
    return result;
  }

  // --- results ---
  const std::vector<ProcStats>& stats() const { return stats_; }
  /// Virtual nanoseconds on processor p's clock.
  std::uint64_t clock_ns(int p) const {
    return clock_[static_cast<std::size_t>(p)];
  }
  /// Virtual completion time of the whole run (max over processors).
  std::uint64_t elapsed_ns() const;
  void reset_stats();

 private:
  friend class SimProc;

  enum class Status : std::uint8_t { kActive, kBlockedLock, kInBarrier, kDone };

  struct LockState {
    bool held = false;
    int holder = -1;
    // Waiters with their virtual request times; the earliest request is
    // granted at release (FIFO in virtual time, ties by processor id).
    std::vector<std::pair<std::uint64_t, int>> waiters;
    std::uint64_t granted_to = 0;  // generation counter for wakeups
  };

  void run_impl(const std::function<void(SimProc&)>& f);

  // All of the below require m_ held.
  bool is_min_active(int p) const;
  void wait_for_turn(std::unique_lock<std::mutex>& l, int p);
  void flush_pending(int p);
  void advance(int p, std::uint64_t cost);
  int alive_count() const;
  bool maybe_release_barrier();
  /// Wakes the processor that is now the minimum over Active clocks (no-op if
  /// it isn't sleeping). Must be called after any clock_/status_ mutation.
  void wake_min();
  /// Wakes every processor (barrier release, completion).
  void wake_all();

  // Operation implementations (called by SimProc).
  void op_ordered(int p, std::uint64_t (MemModel::*fn)(int, const void*, std::size_t,
                                                       std::uint64_t),
                  const void* addr, std::size_t n);
  void op_lock(int p, const void* addr);
  void op_unlock(int p, const void* addr);
  void op_barrier(int p);
  void op_begin_phase(int p, Phase ph);

  PlatformSpec spec_;
  int nprocs_;
  std::unique_ptr<MemModel> mem_;

  std::mutex m_;
  /// Barrier-generation / lock-grant wakeups go through per-processor
  /// condition variables plus directed wake_min() signalling: on any state
  /// change only the processor that is now the virtual-time minimum is woken,
  /// instead of a notify_all stampede over every sleeping thread.
  std::unique_ptr<std::condition_variable[]> turn_cv_;
  std::vector<std::uint64_t> clock_;
  std::vector<Status> status_;
  std::vector<std::uint64_t> pending_;  // written only by the owning thread
  std::vector<std::uint8_t> lock_granted_;
  std::unordered_map<const void*, LockState> locks_;

  // Barrier state.
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::uint64_t barrier_release_ns_ = 0;
  std::vector<std::uint64_t> barrier_arrival_;

  // Phase accounting.
  std::vector<Phase> phase_;
  std::vector<std::uint64_t> phase_mark_;
  std::vector<ProcStats> stats_;
};

inline int SimProc::nprocs() const { return ctx_->nprocs_; }

template <class T>
T SimProc::ordered_load(const std::atomic<T>& a, const void* charge_addr, std::size_t n) {
  return ctx_->ordered_apply(self_, charge_addr, n, /*is_write=*/false,
                             [&] { return a.load(std::memory_order_relaxed); });
}

template <class T>
void SimProc::ordered_store(std::atomic<T>& a, T v, const void* charge_addr,
                            std::size_t n) {
  ctx_->ordered_apply(self_, charge_addr, n, /*is_write=*/true, [&] {
    a.store(v, std::memory_order_relaxed);
    return 0;
  });
}

}  // namespace ptb
