// Indexed binary min-heap over processor ids, keyed by (virtual clock, id).
//
// The conservative DES scheduler's inner question — "which Active processor
// holds the virtual-time minimum?" — was an O(P) scan per ordered operation
// (the old is_min_active/wake_min pair). This heap answers top() in O(1) and
// absorbs every clock advance, block and unblock in O(log P). Ties break
// toward the smaller processor id, which is the simulator's documented
// determinism rule, so the heap order IS the execution order.
//
// The heap contains exactly the processors in Status::kActive; blocked and
// finished processors are removed and re-pushed on wakeup.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace ptb {

class TurnHeap {
 public:
  /// Empties the heap and sizes it for processors [0, nprocs).
  void init(int nprocs) {
    key_.assign(static_cast<std::size_t>(nprocs), 0);
    pos_.assign(static_cast<std::size_t>(nprocs), -1);
    heap_.clear();
    heap_.reserve(static_cast<std::size_t>(nprocs));
  }

  bool empty() const { return heap_.empty(); }
  int size() const { return static_cast<int>(heap_.size()); }

  /// Processor with the minimum (clock, id), or -1 if the heap is empty.
  int top() const { return heap_.empty() ? -1 : heap_[0]; }

  bool contains(int p) const { return pos_[static_cast<std::size_t>(p)] >= 0; }

  std::uint64_t key_of(int p) const { return key_[static_cast<std::size_t>(p)]; }

  void push(int p, std::uint64_t key) {
    const auto pi = static_cast<std::size_t>(p);
    PTB_DCHECK(pos_[pi] < 0);
    key_[pi] = key;
    pos_[pi] = static_cast<int>(heap_.size());
    heap_.push_back(p);
    sift_up(heap_.size() - 1);
  }

  /// Re-keys processor p in place (clock advances only ever grow the key,
  /// but both directions are handled).
  void update(int p, std::uint64_t key) {
    const auto pi = static_cast<std::size_t>(p);
    PTB_DCHECK(pos_[pi] >= 0);
    key_[pi] = key;
    const auto i = static_cast<std::size_t>(pos_[pi]);
    if (!sift_down(i)) sift_up(i);
  }

  void remove(int p) {
    const auto pi = static_cast<std::size_t>(p);
    PTB_DCHECK(pos_[pi] >= 0);
    const auto i = static_cast<std::size_t>(pos_[pi]);
    const int last = heap_.back();
    heap_.pop_back();
    pos_[pi] = -1;
    if (i < heap_.size()) {
      heap_[i] = last;
      pos_[static_cast<std::size_t>(last)] = static_cast<int>(i);
      if (!sift_down(i)) sift_up(i);
    }
  }

 private:
  bool before(int a, int b) const {
    const auto ka = key_[static_cast<std::size_t>(a)];
    const auto kb = key_[static_cast<std::size_t>(b)];
    return ka != kb ? ka < kb : a < b;
  }

  void place(std::size_t i, int p) {
    heap_[i] = p;
    pos_[static_cast<std::size_t>(p)] = static_cast<int>(i);
  }

  void sift_up(std::size_t i) {
    const int p = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(p, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, p);
  }

  /// Returns true if the element moved down.
  bool sift_down(std::size_t i) {
    const int p = heap_[i];
    const std::size_t n = heap_.size();
    bool moved = false;
    for (;;) {
      std::size_t kid = 2 * i + 1;
      if (kid >= n) break;
      if (kid + 1 < n && before(heap_[kid + 1], heap_[kid])) ++kid;
      if (!before(heap_[kid], p)) break;
      place(i, heap_[kid]);
      i = kid;
      moved = true;
    }
    place(i, p);
    return moved;
  }

  std::vector<std::uint64_t> key_;  // key per processor id
  std::vector<int> heap_;           // heap of processor ids
  std::vector<int> pos_;            // processor id -> heap index, -1 if absent
};

}  // namespace ptb
