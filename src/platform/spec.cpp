#include "platform/spec.hpp"

#include "support/check.hpp"

namespace ptb {

// Provenance of constants
// -----------------------
// Paper §3 gives most figures directly; the scraped text dropped trailing
// digits of several numbers, which we restore from the machines' published
// specifications (SGI POWERpath-2 and Origin2000 papers, Paragon NX/2 and
// HLRC/OSDI'96 measurements, Typhoon-zero ISCA'94/'96 papers):
//   * Challenge: 150 MHz R4400 ("15MHz R44"), 1.2 GB/s POWERpath-2 bus,
//     secondary-cache miss penalty ~1100 ns ("about 11ns").
//   * Origin2000: 200 MHz R10000, 4 MB L2, local miss 313 ns ("313ns"),
//     remote miss up to 703 ns ("73ns" with a digit eaten), 128 B lines.
//   * Paragon: 50 MHz i860, 4-byte NX/2 one-way latency ~50 us, HLRC at
//     4 KB pages; SVM page fault costs are dominated by software protocol
//     handling (Zhou/Iftode/Li OSDI'96 report ~1 ms-class fault costs).
//   * Typhoon-0: 66 MHz HyperSPARC, Myrinet; fine-grain access control in
//     hardware, protocols in software on the second processor.
// ns_per_work calibrates the relative single-processor speed of the four
// machines (paper Table 1): Origin < Challenge < Typhoon-0 < Paragon.

PlatformSpec PlatformSpec::ideal() {
  PlatformSpec s;
  s.name = "ideal";
  s.protocol = Protocol::kIdeal;
  s.ns_per_work = 1.0;
  s.block_bytes = 64;
  return s;
}

PlatformSpec PlatformSpec::challenge() {
  PlatformSpec s;
  s.name = "challenge";
  s.protocol = Protocol::kBus;
  s.ns_per_work = 7.0;         // 150 MHz R4400
  s.block_bytes = 128;         // POWERpath-2 coherence granularity
  s.read_hit_ns = 0.0;
  s.local_miss_ns = 1100.0;    // centralized memory: every miss costs the same
  s.remote_miss_ns = 1100.0;
  s.dirty_miss_ns = 1400.0;    // cache-to-cache intervention
  s.inval_per_sharer_ns = 0.0; // snooping broadcast: no per-sharer cost
  s.bus_occupancy_ns = 120.0;  // 128 B at ~1.2 GB/s including arbitration
  s.lock_ns = 1200.0;          // LL/SC pair, roughly one bus transaction
  s.barrier_base_ns = 4000.0;
  s.cache_bytes = 1u << 20;    // 1 MB secondary cache
  s.cache_ways = 4;
  return s;
}

PlatformSpec PlatformSpec::origin2000() {
  PlatformSpec s;
  s.name = "origin2000";
  s.protocol = Protocol::kDirectory;
  s.ns_per_work = 2.5;         // 200 MHz R10000, superscalar
  s.block_bytes = 128;
  s.read_hit_ns = 0.0;
  s.local_miss_ns = 313.0;     // paper §3.2
  s.remote_miss_ns = 703.0;    // paper §3.2 (max remote access time)
  s.dirty_miss_ns = 1000.0;    // 3-hop intervention
  s.inval_per_sharer_ns = 160.0;
  s.bus_occupancy_ns = 0.0;
  s.lock_ns = 800.0;           // uncontended LL/SC on a remote line
  s.barrier_base_ns = 5000.0;
  s.cache_bytes = 4u << 20;    // 4 MB L2 per processor
  s.cache_ways = 2;
  return s;
}

PlatformSpec PlatformSpec::paragon() {
  PlatformSpec s;
  s.name = "paragon";
  s.protocol = Protocol::kHlrc;
  s.ns_per_work = 20.0;        // 50 MHz i860 running compiled C
  s.block_bytes = 4096;        // SVM page
  s.page_fault_ns = 1'000'000.0;  // trap + request + 4 KB over the mesh +
                                  // software handlers on both ends (HLRC
                                  // papers report ~1 ms-class faults here)
  s.twin_ns = 90'000.0;           // 4 KB copy at memory speed + bookkeeping
  s.diff_per_page_ns = 250'000.0;
  s.notice_ns = 20'000.0;         // applying a notice mprotects a page:
                                  // a syscall on a 50 MHz i860
  s.svm_lock_ns = 550'000.0;      // 3 one-way NX/2 messages + manager handler
  s.svm_barrier_ns = 600'000.0;
  s.lock_ns = 0.0;             // unused under HLRC (svm_lock_ns applies)
  s.barrier_base_ns = 0.0;
  // Local (non-protocol) memory behaviour: the i860 XP has only a 16 KB
  // data cache and no L2, so the Paragon is strongly memory-bound even
  // sequentially (the paper's Table 1 shows it far slower than its clock
  // ratio alone explains). Valid pages still pay these local misses.
  s.local_miss_ns = 350.0;
  s.cache_bytes = 64u << 10;   // 16 KB D-cache + stream buffers, modeled as 64 KB
  s.cache_ways = 2;
  return s;
}

PlatformSpec PlatformSpec::typhoon0_hlrc() {
  PlatformSpec s;
  s.name = "typhoon0_hlrc";
  s.protocol = Protocol::kHlrc;
  s.ns_per_work = 11.0;        // 66 MHz HyperSPARC
  s.block_bytes = 4096;
  s.page_fault_ns = 650'000.0;  // Myrinet is faster than the Paragon mesh
                                // but the SBus limits transfer bandwidth
  s.twin_ns = 60'000.0;
  s.diff_per_page_ns = 150'000.0;
  s.notice_ns = 12'000.0;       // mprotect-per-invalidated-page on a 66 MHz
                                // HyperSPARC
  s.svm_lock_ns = 300'000.0;
  s.svm_barrier_ns = 400'000.0;
  // Local memory behaviour of the HyperSPARC node (1 MB external cache).
  s.local_miss_ns = 500.0;
  s.cache_bytes = 1u << 20;
  s.cache_ways = 4;
  return s;
}

PlatformSpec PlatformSpec::typhoon0_sc() {
  PlatformSpec s;
  s.name = "typhoon0_sc";
  s.protocol = Protocol::kFineGrainSC;
  s.ns_per_work = 11.0;
  s.block_bytes = 64;          // fine-grain access control granularity
  s.read_hit_ns = 0.0;
  // Misses are serviced by the software protocol running on the second
  // processor plus a Myrinet round trip; no page faults, no diffs.
  s.local_miss_ns = 2'000.0;   // local access-control check + memory
  s.remote_miss_ns = 26'000.0; // request/response through both coprocessors
  s.dirty_miss_ns = 38'000.0;
  s.inval_per_sharer_ns = 8'000.0;
  s.lock_ns = 14'000.0;        // uncached RMW round trip, no protocol entry
  s.barrier_base_ns = 60'000.0;
  s.cache_bytes = 1u << 20;    // 1 MB HyperSPARC external cache
  s.cache_ways = 4;
  return s;
}

// 2020s platform models (ROADMAP item 4)
// --------------------------------------
// The paper's question, re-asked 25 years later, needs machines from 25 years
// later. Constants are order-of-magnitude figures from the literature the
// RADIX builder is grounded in, not one specific SKU:
//   * numa2020: a ~64-core server CC-NUMA node of the kind Cornerstone
//     (arXiv:2307.06345) uses as its CPU baseline. ~3 GHz superscalar cores
//     (ns_per_work 0.3 ≈ 20x Challenge's R4400 per abstract work unit), 64 B
//     lines, ~90 ns local DRAM, ~140 ns cross-socket, ~200 ns dirty 3-hop
//     (cf. published EPYC/Xeon NUMA latency measurements), atomics resolved
//     in the cache hierarchy (~120 ns uncontended remote CAS — ~7x cheaper
//     relative to a miss than Origin2000's LL/SC), hundreds-of-ns tree
//     barriers, ~4 MB effective cache per core (shared L3 slice).
//   * simt2020: a GPU-like wide-SIMT device in the style of Tokuue &
//     Ishiyama's tree-code timings (arXiv:2312.06102) and Cornerstone's GPU
//     path. One "processor" models an SM-class throughput engine: enormous
//     arithmetic rate (ns_per_work 0.05), uniform high-latency device memory
//     (~400 ns to HBM, modeled as a flat bus protocol), 128 B coalescing
//     granularity, NEAR-FREE atomics (~40 ns: resolved at the memory-side L2
//     without stalling the pipe — the single biggest change from 1998), fast
//     hardware grid barriers, and only ~128 KB of close storage per SM.
// Both keep read_hit at 0 like the 1998 entries; only relative shapes are
// claimed, exactly as for the paper's own machines.

PlatformSpec PlatformSpec::numa2020() {
  PlatformSpec s;
  s.name = "numa2020";
  s.protocol = Protocol::kDirectory;
  s.ns_per_work = 0.3;
  s.block_bytes = 64;
  s.read_hit_ns = 0.0;
  s.local_miss_ns = 90.0;
  s.remote_miss_ns = 140.0;
  s.dirty_miss_ns = 200.0;
  s.inval_per_sharer_ns = 30.0;
  s.bus_occupancy_ns = 0.0;
  s.lock_ns = 120.0;
  s.barrier_base_ns = 2000.0;
  s.cache_bytes = 4u << 20;
  s.cache_ways = 8;
  return s;
}

PlatformSpec PlatformSpec::simt2020() {
  PlatformSpec s;
  s.name = "simt2020";
  s.protocol = Protocol::kBus;  // uniform-latency device memory
  s.ns_per_work = 0.05;
  s.block_bytes = 128;          // coalesced transaction granularity
  s.read_hit_ns = 0.0;
  s.local_miss_ns = 400.0;
  s.remote_miss_ns = 400.0;
  s.dirty_miss_ns = 450.0;
  s.inval_per_sharer_ns = 0.0;
  s.bus_occupancy_ns = 1.0;     // HBM-class bandwidth: contention is light
  s.lock_ns = 40.0;             // memory-side atomics, no pipeline stall
  s.barrier_base_ns = 1000.0;
  s.cache_bytes = 128u << 10;   // SM-local L1/shared storage
  s.cache_ways = 8;
  return s;
}

PlatformSpec PlatformSpec::by_name(const std::string& name) {
  if (name == "ideal") return ideal();
  if (name == "challenge") return challenge();
  if (name == "origin2000") return origin2000();
  if (name == "paragon") return paragon();
  if (name == "typhoon0_hlrc") return typhoon0_hlrc();
  if (name == "typhoon0_sc") return typhoon0_sc();
  if (name == "numa2020") return numa2020();
  if (name == "simt2020") return simt2020();
  PTB_CHECK_MSG(false, "unknown platform name");
  return ideal();
}

std::vector<std::string> PlatformSpec::all_names() {
  return {"ideal",         "challenge", "origin2000", "paragon",
          "typhoon0_hlrc", "typhoon0_sc", "numa2020",  "simt2020"};
}

std::string PlatformSpec::names_joined(char sep) {
  std::string out;
  for (const std::string& n : all_names()) {
    if (!out.empty()) out.push_back(sep);
    out += n;
  }
  return out;
}

}  // namespace ptb
