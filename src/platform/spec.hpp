// Platform parameter sets.
//
// One PlatformSpec per machine in the paper's §3, plus an "ideal" PRAM-like
// machine used by tests. Constants carry provenance comments in spec.cpp;
// where the paper's scraped text lost digits we use era-accurate published
// values and calibrate against the paper's Table 1 ratios (see DESIGN.md §5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ptb {

enum class Protocol {
  kIdeal,        // zero-cost shared memory (tests)
  kBus,          // snooping bus, uniform miss cost (SGI Challenge)
  kDirectory,    // CC-NUMA invalidation directory (SGI Origin2000)
  kHlrc,         // page-grain home-based lazy release consistency (SVM)
  kFineGrainSC,  // fine-grain access control, SC, software protocol
};

struct PlatformSpec {
  std::string name;
  Protocol protocol = Protocol::kIdeal;

  /// Nanoseconds per abstract work unit (≈ one floating-point operation of
  /// the N-body inner loop, including its share of integer overhead).
  double ns_per_work = 1.0;

  /// Coherence granularity in bytes (cache line or SVM page).
  std::size_t block_bytes = 128;

  // --- hardware-coherent parameters ---
  double read_hit_ns = 0.0;
  double local_miss_ns = 0.0;    // miss satisfied by local memory
  double remote_miss_ns = 0.0;   // miss satisfied by a remote home
  double dirty_miss_ns = 0.0;    // 3-hop: remote and dirty in a third cache
  double inval_per_sharer_ns = 0.0;
  double bus_occupancy_ns = 0.0;  // per bus transaction (Challenge contention)
  double lock_ns = 0.0;           // uncontended lock acquire/release transfer
  double barrier_base_ns = 0.0;   // latency of the barrier primitive itself

  // --- cache model (per processor, used by hardware-coherent platforms) ---
  std::size_t cache_bytes = 0;  // 0 => infinite cache (SVM platforms)
  int cache_ways = 2;

  // --- SVM (HLRC) parameters ---
  double page_fault_ns = 0.0;    // full fault: trap + request + page + map
  double twin_ns = 0.0;          // copy-on-first-write twin creation
  double diff_per_page_ns = 0.0; // diff computation + transfer to home
  double notice_ns = 0.0;        // apply one write notice (invalidate a page)
  double svm_lock_ns = 0.0;      // 3-hop lock acquire through the manager
  double svm_barrier_ns = 0.0;   // barrier message round + protocol entry

  // --- fine-grain software-coherence parameters (Typhoon-0 SC) ---
  // Reuses local/remote/dirty miss fields, which then include the software
  // access-control handler cost on both ends.

  static PlatformSpec ideal();
  static PlatformSpec challenge();
  static PlatformSpec origin2000();
  static PlatformSpec paragon();
  static PlatformSpec typhoon0_hlrc();
  static PlatformSpec typhoon0_sc();
  // 2020s additions (ROADMAP item 4): the machines the RADIX builder was
  // designed for. Parameter provenance in spec.cpp and docs/MODEL.md §2.3.
  static PlatformSpec numa2020();  // modern many-core CC-NUMA node
  static PlatformSpec simt2020();  // GPU-like wide-SIMT device

  /// Lookup by name ("ideal", "challenge", "origin2000", "paragon",
  /// "typhoon0_hlrc", "typhoon0_sc", "numa2020", "simt2020"); aborts on
  /// unknown names.
  static PlatformSpec by_name(const std::string& name);
  static std::vector<std::string> all_names();
  /// "ideal|challenge|..." — the one shared platform listing for CLI help.
  static std::string names_joined(char sep = '|');
};

}  // namespace ptb
