// ptbsim — the kitchen-sink experiment driver.
//
// Runs one fully-specified configuration (platform, algorithm, workload,
// partitioner, tuning knobs) on the platform simulator and reports speedup,
// per-phase breakdown, synchronization and memory-system statistics. With
// --csv the result is emitted as a single machine-readable line (with a
// header via --csv-header), so sweeps can be scripted:
//
//   for a in ORIG LOCAL UPDATE PARTREE SPACE RADIX; do
//     ./examples/ptbsim --platform typhoon0_hlrc --algorithm $a --n 16384 --csv
//   done
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "anatomy/sweep.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  Cli cli(argc, argv);
  ExperimentSpec spec;
  // Help strings enumerate from the same tables the lookups use, so a new
  // platform or algorithm can never be missing from --help.
  const std::string platform_help = PlatformSpec::names_joined();
  const std::string algorithm_help = algorithm_names_joined();
  spec.platform = cli.get_string("platform", "typhoon0_hlrc", platform_help.c_str());
  spec.algorithm = algorithm_from_name(
      cli.get_string("algorithm", "SPACE", algorithm_help.c_str()));
  spec.n = static_cast<int>(cli.get_int("n", 16384, "number of bodies"));
  spec.nprocs = static_cast<int>(cli.get_int("procs", 16, "simulated processors"));
  spec.warmup_steps = static_cast<int>(cli.get_int("warmup", 2, "untimed steps"));
  spec.measured_steps = static_cast<int>(cli.get_int("steps", 2, "timed steps"));
  spec.bh.theta = cli.get_double("theta", 1.0, "opening criterion");
  spec.bh.leaf_cap = static_cast<int>(cli.get_int("leaf-cap", 8, "bodies per leaf"));
  spec.bh.space_threshold = static_cast<int>(
      cli.get_int("space-threshold", 0, "SPACE subdivision threshold (0 = auto)"));
  spec.bh.lock_buckets = static_cast<int>(
      cli.get_int("lock-buckets", 0, "ALOCK pool size (0 = per-cell locks)"));
  spec.bh.seed = static_cast<std::uint64_t>(cli.get_int("seed", 12345, "RNG seed"));
  spec.bh.partitioner = cli.get_string("partitioner", "costzones", "costzones|orb") == "orb"
                            ? Partitioner::kOrb
                            : Partitioner::kCostzones;
  const std::string backend =
      cli.get_string("backend", to_string(default_sim_backend()),
                     "scheduler backend: fibers|threads|parallel (or PTB_SIM_BACKEND)");
  if (backend != "fibers" && backend != "threads" && backend != "parallel") {
    std::fprintf(stderr, "ptbsim: bad --backend '%s' (want fibers|threads|parallel)\n",
                 backend.c_str());
    return 2;
  }
  spec.backend = sim_backend_from_string(backend);
  spec.sim_workers = static_cast<int>(cli.get_int(
      "workers", 0, "host workers for --backend=parallel (0 = auto / PTB_SIM_WORKERS)"));
  spec.race = cli.get_bool("race", false,
                           "run under the data-race detector (or set PTB_RACE); "
                           "exits 2 if any race is found");
  spec.bh.elide_locks = cli.get_bool(
      "elide-locks", false, "skip tree-build lock acquisitions (race-detector demo)");
  const bool csv = cli.get_bool("csv", false, "emit one CSV line instead of tables");
  const bool csv_header = cli.get_bool("csv-header", false, "print the CSV header line");
  const std::string trace_path = trace::trace_path_from(cli.get_string(
      "trace", "", "write a Chrome trace-event JSON here (or set PTB_TRACE)"));
  const std::string prof_path = prof::prof_path_from(cli.get_string(
      "prof", "", "profile the run and write prof JSON here (or set PTB_PROF)"));
  const std::string sight_path = sight::sight_path_from(cli.get_string(
      "sight", "",
      "observe sharing patterns / false sharing / working sets and write the "
      "sight JSON here (or set PTB_SIGHT)"));
  const std::string anatomy_path = anatomy::anatomy_path_from(cli.get_string(
      "anatomy", "",
      "ledger every virtual cycle into the speedup-loss categories and write "
      "the anatomy JSON (with a p=1 reference run and waterfall) here (or set "
      "PTB_ANATOMY)"));
  cli.epilogue(
      "Environment variables (each pairs with a flag; the flag wins):\n"
      "  PTB_TRACE=<path>        --trace          Chrome trace-event JSON output\n"
      "  PTB_RACE=1              --race           data-race detector\n"
      "  PTB_PROF=<path>         --prof           critical-path / what-if profile JSON\n"
      "  PTB_SIGHT=<path>        --sight          sharing / false-sharing / working-set JSON\n"
      "  PTB_ANATOMY=<path>      --anatomy        speedup-loss ledger / waterfall JSON\n"
      "  PTB_SIGHT_WINDOW_NS=<n> (no flag)        false-sharing invalidation window override\n"
      "  PTB_MEM_SLOWPATH=1      (no flag)        force the memory model's virtual-dispatch path\n"
      "  PTB_FORCE_SLOWPATH=1    (no flag)        force the scalar force-interaction path\n"
      "  PTB_SIM_BACKEND=<name>  --backend        scheduler backend (fibers|threads|parallel)\n"
      "  PTB_SIM_WORKERS=<n>     --workers        host worker threads for --backend=parallel\n"
      "\n"
      "Exit codes: 0 = run completed (observers may have written reports);\n"
      "            2 = data races found under --race/PTB_RACE, or bad flags.");
  cli.finish();

  // Open output files up front so a bad path fails before the simulation
  // runs, not after minutes of work.
  const auto open_output = [](const std::string& path, const char* what) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ptbsim: cannot open %s output '%s': %s\n", what,
                   path.c_str(), std::strerror(errno));
      std::exit(1);
    }
    return f;
  };
  std::FILE* trace_out = trace_path.empty() ? nullptr : open_output(trace_path, "trace");
  std::FILE* prof_out = prof_path.empty() ? nullptr : open_output(prof_path, "prof");
  std::FILE* sight_out = sight_path.empty() ? nullptr : open_output(sight_path, "sight");
  std::FILE* anatomy_out =
      anatomy_path.empty() ? nullptr : open_output(anatomy_path, "anatomy");

  std::unique_ptr<trace::Tracer> tracer;
  if (trace_out != nullptr) {
    tracer = std::make_unique<trace::Tracer>(spec.nprocs);
    spec.tracer = tracer.get();
  }
  spec.prof = prof_out != nullptr;
  spec.sight = sight_out != nullptr;
  spec.anatomy = anatomy_out != nullptr;

  if (csv_header) {
    std::printf("platform,algorithm,n,procs,seq_s,par_s,speedup,treebuild_s,"
                "treebuild_frac,treebuild_speedup,locks,lock_wait_s,barrier_wait_s,"
                "page_faults,remote_misses,invalidations\n");
    if (!csv) return 0;
  }

  ExperimentRunner runner;
  const ExperimentResult r = runner.run(spec);
  // Race findings go to stderr (csv mode keeps stdout machine-readable);
  // any race turns the exit status into 2 so CI can gate on it.
  const int exit_code = r.race.enabled && r.race.races > 0 ? 2 : 0;
  if (r.race.enabled)
    std::fprintf(stderr, "%s", race::format_race_report(r.race).c_str());

  if (tracer != nullptr) {
    tracer->write_chrome_json(trace_out);
    std::fclose(trace_out);
    std::fprintf(stderr, "wrote %llu trace events to %s (load in Perfetto)\n",
                 static_cast<unsigned long long>(tracer->total_events()),
                 trace_path.c_str());
  }
  if (prof_out != nullptr) {
    prof::write_profile_json(r.profile, prof_out);
    std::fclose(prof_out);
    std::fprintf(stderr, "wrote profile (%llu sync events) to %s\n",
                 static_cast<unsigned long long>(r.profile.events),
                 prof_path.c_str());
  }
  if (sight_out != nullptr) {
    sight::write_sight_json(r.sight, sight_out);
    std::fclose(sight_out);
    std::fprintf(stderr, "wrote sight report (%llu lines observed) to %s\n",
                 static_cast<unsigned long long>(r.sight.lines_observed),
                 sight_path.c_str());
  }
  anatomy::Waterfall anatomy_wf;
  if (anatomy_out != nullptr) {
    anatomy::SweepResult sr;
    sr.prov.platform = spec.platform;
    sr.prov.algorithm = algorithm_name(spec.algorithm);
    sr.prov.nbodies = spec.n;
    sr.prov.nprocs = spec.nprocs;
    anatomy::SweepPoint pt;
    pt.procs = spec.nprocs;
    pt.speedup = r.speedup;
    pt.ledger = r.anatomy;
    if (spec.nprocs > 1) {
      // One extra p=1 reference run of the same configuration turns the
      // ledger into a speedup-loss waterfall; observers stay off it.
      ExperimentSpec ref = spec;
      ref.nprocs = 1;
      ref.tracer = nullptr;
      ref.race = ref.prof = ref.sight = false;
      const ExperimentResult r1 = runner.run(ref);
      anatomy::SweepPoint p1;
      p1.procs = 1;
      p1.speedup = r1.speedup;
      p1.ledger = r1.anatomy;
      anatomy_wf = anatomy::build_waterfall(p1.ledger, pt.ledger);
      pt.waterfall = anatomy_wf;
      sr.points.push_back(std::move(p1));
    }
    sr.points.push_back(std::move(pt));
    anatomy::write_anatomy_json(sr, anatomy_out);
    std::fclose(anatomy_out);
    std::fprintf(stderr, "wrote anatomy ledger (%d categories, p=%d vs p=1) to %s\n",
                 anatomy::kNumCategories, spec.nprocs, anatomy_path.c_str());
  }

  if (csv) {
    std::printf("%s,%s,%d,%d,%.6f,%.6f,%.3f,%.6f,%.4f,%.3f,%llu,%.6f,%.6f,%llu,%llu,%llu\n",
                spec.platform.c_str(), algorithm_name(spec.algorithm), spec.n,
                spec.nprocs, r.seq_seconds, r.par_seconds, r.speedup,
                r.treebuild_seconds, r.treebuild_fraction, r.treebuild_speedup,
                static_cast<unsigned long long>(r.treebuild_locks_total),
                r.lock_wait_seconds_avg, r.barrier_wait_seconds_avg,
                static_cast<unsigned long long>(r.mem.page_faults),
                static_cast<unsigned long long>(r.mem.remote_misses),
                static_cast<unsigned long long>(r.mem.invalidations_sent));
    return exit_code;
  }

  std::printf("%s\n\n", summarize(spec, r).c_str());

  Table phases("per-phase virtual time (measured steps)");
  phases.set_header({"phase", "seconds", "share"});
  for (int ph = 0; ph < kNumPhases; ++ph) {
    if (ph == static_cast<int>(Phase::kOther)) continue;
    const double s = r.run.phase_ns[static_cast<std::size_t>(ph)] * 1e-9;
    phases.add_row({phase_name(static_cast<Phase>(ph)), Table::num(s, 4),
                    fmt_percent(s / (r.par_seconds > 0 ? r.par_seconds : 1.0))});
  }
  phases.print();

  const Breakdown bd = breakdown_from(r.metrics, spec.nprocs);
  Table breakdown("execution-time breakdown (per-processor average, measured steps)");
  breakdown.set_header({"component", "seconds", "share"});
  breakdown.add_row({"busy", Table::num(bd.busy_s, 4), fmt_percent(bd.frac(bd.busy_s))});
  breakdown.add_row(
      {"memory stall", Table::num(bd.mem_stall_s, 4), fmt_percent(bd.frac(bd.mem_stall_s))});
  breakdown.add_row(
      {"lock wait", Table::num(bd.lock_wait_s, 4), fmt_percent(bd.frac(bd.lock_wait_s))});
  breakdown.add_row({"barrier wait", Table::num(bd.barrier_wait_s, 4),
                     fmt_percent(bd.frac(bd.barrier_wait_s))});
  breakdown.print();

  Table sync("synchronization & memory-system events (whole run)");
  sync.set_header({"metric", "value"});
  sync.add_row({"tree-build lock acquisitions", std::to_string(r.treebuild_locks_total)});
  sync.add_row({"mean lock wait / proc", fmt_seconds(r.lock_wait_seconds_avg)});
  sync.add_row({"mean barrier wait / proc", fmt_seconds(r.barrier_wait_seconds_avg)});
  sync.add_row({"lock wait / event", fmt_wait(r.lock_wait)});
  sync.add_row({"barrier wait / episode", fmt_wait(r.barrier_wait)});
  sync.add_row({"page faults", std::to_string(r.mem.page_faults)});
  sync.add_row({"twins / diffs", std::to_string(r.mem.twins) + " / " +
                                     std::to_string(r.mem.diffs)});
  sync.add_row({"write notices received", std::to_string(r.mem.notices_received)});
  sync.add_row({"read misses (hw)", std::to_string(r.mem.read_misses)});
  sync.add_row({"remote misses (hw)", std::to_string(r.mem.remote_misses)});
  sync.add_row({"invalidations sent (hw)", std::to_string(r.mem.invalidations_sent)});
  sync.print();

  print_profile(r.profile);
  print_sight(r.sight);
  print_anatomy(r.anatomy);
  print_waterfall(anatomy_wf);
  return exit_code;
}
