// Performance portability explorer: run one problem configuration across all
// five simulated platforms x all five tree-building algorithms and print the
// portability matrix the paper's conclusions are about ("no single version
// always delivers absolutely the best performance on all platforms").
//
//   ./examples/platform_explorer --n 8192 --procs 16
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 8192, "number of bodies"));
  const int np = static_cast<int>(cli.get_int("procs", 16, "simulated processors"));
  const int steps = static_cast<int>(cli.get_int("steps", 2, "measured time-steps"));
  cli.finish();

  std::printf("platform_explorer: n=%d, %d simulated processors, %d measured steps\n\n",
              n, np, steps);

  ExperimentRunner runner;
  const std::vector<std::string> platforms = {"challenge", "origin2000", "typhoon0_sc",
                                              "typhoon0_hlrc", "paragon"};

  Table t("whole-application speedup (rows: platform, columns: algorithm)");
  t.set_header({"platform", "ORIG", "LOCAL", "UPDATE", "PARTREE", "SPACE", "best"});
  for (const auto& platform : platforms) {
    std::vector<std::string> row = {platform};
    double best = 0.0;
    std::string best_name;
    for (Algorithm alg : all_algorithms()) {
      ExperimentSpec spec;
      spec.platform = platform;
      spec.algorithm = alg;
      spec.n = n;
      spec.nprocs = np;
      spec.warmup_steps = 1;
      spec.measured_steps = steps;
      const ExperimentResult r = runner.run(spec);
      row.push_back(fmt_speedup(r.speedup));
      if (r.speedup > best) {
        best = r.speedup;
        best_name = algorithm_name(alg);
      }
    }
    row.push_back(best_name);
    t.add_row(row);
  }
  t.print();

  std::printf(
      "\nReading guide: on the hardware-coherent machines (top rows) the\n"
      "algorithms are close; on the SVM machines (bottom rows) only SPACE —\n"
      "the paper's contribution — delivers a real speedup. SPACE is the most\n"
      "performance-portable choice overall.\n");
  return 0;
}
