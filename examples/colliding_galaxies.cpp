// Colliding galaxies: a strongly time-varying workload that stresses the
// UPDATE builder — as the clusters interpenetrate, many bodies cross their
// leaf bounds each step, so the cost of incremental maintenance grows.
// Prints, per step, how many lock acquisitions UPDATE needed (a proxy for the
// number of relocations) versus a full LOCAL rebuild.
//
//   ./examples/colliding_galaxies --n 16384 --threads 4 --steps 12
#include <cstdio>

#include "bh/generate.hpp"
#include "bh/verify.hpp"
#include "harness/app.hpp"
#include "rt/native_rt.hpp"
#include "support/cli.hpp"
#include "treebuild/local.hpp"
#include "treebuild/update.hpp"

namespace {

template <class Builder>
std::vector<std::uint64_t> per_step_locks(ptb::AppState& st, int threads, int steps) {
  using namespace ptb;
  NativeContext ctx(threads);
  Builder builder(st);
  std::vector<std::uint64_t> locks;
  for (int s = 0; s < steps; ++s) {
    ctx.reset_stats();
    ctx.run([&](NativeProc& rt) {
      rt.begin_phase(Phase::kTreeBuild);
      timestep(rt, st, builder, true);
    });
    std::uint64_t step_locks = 0;
    for (const auto& ps : ctx.stats())
      step_locks += ps.lock_acquires[static_cast<int>(Phase::kTreeBuild)];
    locks.push_back(step_locks);
  }
  return locks;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptb;
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 16384, "number of bodies"));
  const int threads = static_cast<int>(cli.get_int("threads", 4, "worker threads"));
  const int steps = static_cast<int>(cli.get_int("steps", 12, "time-steps"));
  cli.finish();

  BHConfig cfg;
  cfg.n = n;
  cfg.dt = 0.05;

  AppState update_st;
  update_st.cfg = cfg;
  update_st.init(make_colliding_pair(n, cfg.seed), threads);
  update_st.cfg = cfg;
  AppState local_st;
  local_st.cfg = cfg;
  local_st.init(make_colliding_pair(n, cfg.seed), threads);
  local_st.cfg = cfg;

  std::printf("colliding_galaxies: two Plummer spheres of %d bodies approaching\n\n",
              n / 2);
  const auto update_locks = per_step_locks<UpdateBuilder>(update_st, threads, steps);
  const auto local_locks = per_step_locks<LocalBuilder>(local_st, threads, steps);

  std::printf("%-6s %18s %18s\n", "step", "UPDATE locks", "LOCAL (rebuild) locks");
  for (int s = 0; s < steps; ++s) {
    std::printf("%-6d %18llu %18llu\n", s,
                static_cast<unsigned long long>(update_locks[static_cast<std::size_t>(s)]),
                static_cast<unsigned long long>(local_locks[static_cast<std::size_t>(s)]));
  }
  std::printf(
      "\nStep 0 is the initial build (UPDATE == a full locked build). From\n"
      "step 1 on, UPDATE only locks for bodies that crossed leaf bounds —\n"
      "watch the count rise as the collision gets violent.\n");

  // Both trajectories must agree: the physics does not depend on the builder.
  double drift = 0.0;
  for (int i = 0; i < n; ++i)
    drift = std::max(drift, norm(update_st.bodies[static_cast<std::size_t>(i)].pos -
                                 local_st.bodies[static_cast<std::size_t>(i)].pos));
  std::printf("\nmax position divergence UPDATE vs rebuild: %.2e (theta-level noise)\n",
              drift);
  return 0;
}
