// Quickstart: the smallest useful program against the public API.
//
// Generates a Plummer galaxy, builds the Barnes–Hut octree in parallel with
// the lock-free SPACE algorithm on real threads, runs one force computation,
// and prints a few summary numbers.
//
//   ./examples/quickstart [--n 16384] [--threads 4]
#include <cstdio>

#include "bh/verify.hpp"
#include "harness/app.hpp"
#include "rt/native_rt.hpp"
#include "support/cli.hpp"
#include "treebuild/space.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 16384, "number of bodies"));
  const int threads = static_cast<int>(cli.get_int("threads", 4, "worker threads"));
  cli.finish();

  // 1. Problem setup: a Plummer-model galaxy and a shared application state.
  BHConfig cfg;
  cfg.n = n;
  AppState st = make_app_state(cfg, threads);

  // 2. One full time-step on real threads: tree build (SPACE: no locks at
  //    all) -> center of mass -> costzones partition -> forces -> update.
  //    The update phase moves the bodies, which would make the tree stale
  //    against the NEW positions, so rebuild once at the end for inspection.
  NativeContext ctx(threads);
  SpaceBuilder builder(st);
  ctx.run([&](NativeProc& rt) {
    timestep(rt, st, builder, /*measured=*/true);
    builder.build(rt);
    rt.barrier();
  });

  // 3. Inspect the results.
  const TreeCheckResult check = check_tree(st.tree.root, st.bodies, st.cfg);
  std::uint64_t interactions = 0;
  for (auto v : st.interactions) interactions += v;
  std::printf("bodies:        %d\n", n);
  std::printf("threads:       %d\n", threads);
  std::printf("tree nodes:    %d (%d leaves, depth %d)\n", check.node_count,
              check.leaf_count, check.max_depth);
  std::printf("tree valid:    %s\n", check.ok ? "yes" : check.error.c_str());
  std::printf("interactions:  %llu (%.1f per body)\n",
              static_cast<unsigned long long>(interactions),
              static_cast<double>(interactions) / n);
  double wall_ms = 0.0;
  for (const auto& ps : ctx.stats()) wall_ms = std::max(wall_ms, ps.total_ns() * 1e-6);
  std::printf("step time:     %.1f ms\n", wall_ms);
  return check.ok ? 0 : 1;
}
