// A full galaxy simulation driver on native threads: choose a tree-building
// algorithm, run many time-steps, and watch the per-phase time breakdown —
// the downstream-user view of this library.
//
//   ./examples/galaxy_sim --n 32768 --threads 8 --steps 10 --algorithm SPACE
#include <cstdio>

#include "bh/diagnostics.hpp"
#include "bh/verify.hpp"
#include "harness/app.hpp"
#include "harness/report.hpp"
#include "rt/native_rt.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/partree.hpp"
#include "treebuild/radix.hpp"
#include "treebuild/space.hpp"
#include "treebuild/update.hpp"

namespace {

template <class Builder>
void run(ptb::AppState& st, int threads, int steps) {
  using namespace ptb;
  NativeContext ctx(threads);
  Builder builder(st);
  ctx.run([&](NativeProc& rt) {
    for (int s = 0; s < steps; ++s) timestep(rt, st, builder, true);
  });

  Table t("per-phase wall time (max over threads)");
  t.set_header({"phase", "seconds", "share"});
  double total = 0.0;
  std::array<double, kNumPhases> phase_s{};
  for (int ph = 0; ph < kNumPhases; ++ph) {
    for (const auto& ps : ctx.stats())
      phase_s[static_cast<std::size_t>(ph)] =
          std::max(phase_s[static_cast<std::size_t>(ph)], ps.phase_ns[ph] * 1e-9);
    if (ph != static_cast<int>(Phase::kOther))
      total += phase_s[static_cast<std::size_t>(ph)];
  }
  for (int ph = 0; ph < kNumPhases; ++ph) {
    if (ph == static_cast<int>(Phase::kOther)) continue;
    t.add_row({phase_name(static_cast<Phase>(ph)),
               Table::num(phase_s[static_cast<std::size_t>(ph)], 3),
               fmt_percent(phase_s[static_cast<std::size_t>(ph)] / total)});
  }
  t.add_row({"TOTAL", Table::num(total, 3), ""});
  t.print();

  std::uint64_t locks = 0;
  for (const auto& ps : ctx.stats())
    locks += ps.lock_acquires[static_cast<int>(Phase::kTreeBuild)];
  std::printf("tree-build lock acquisitions: %llu\n",
              static_cast<unsigned long long>(locks));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptb;
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 32768, "number of bodies"));
  const int threads = static_cast<int>(cli.get_int("threads", 4, "worker threads"));
  const int steps = static_cast<int>(cli.get_int("steps", 8, "time-steps"));
  const std::string alg = cli.get_string("algorithm", "SPACE",
                                         algorithm_names_joined().c_str());
  const double theta = cli.get_double("theta", 1.0, "opening criterion");
  cli.finish();

  BHConfig cfg;
  cfg.n = n;
  cfg.theta = theta;
  AppState st = make_app_state(cfg, threads);
  std::printf("galaxy_sim: n=%d threads=%d steps=%d algorithm=%s theta=%.2f\n\n", n,
              threads, steps, alg.c_str(), theta);
  const EnergyReport e0 = total_energy(st.bodies, cfg.eps);
  std::printf("initial energy: T=%.4f U=%.4f E=%.4f (virial ratio %.2f)\n\n", e0.kinetic,
              e0.potential, e0.total(), e0.virial_ratio());

  switch (algorithm_from_name(alg)) {
    case Algorithm::kOrig:
      run<OrigBuilder>(st, threads, steps);
      break;
    case Algorithm::kLocal:
      run<LocalBuilder>(st, threads, steps);
      break;
    case Algorithm::kUpdate:
      run<UpdateBuilder>(st, threads, steps);
      break;
    case Algorithm::kPartree:
      run<PartreeBuilder>(st, threads, steps);
      break;
    case Algorithm::kSpace:
      run<SpaceBuilder>(st, threads, steps);
      break;
    case Algorithm::kRadix:
      run<RadixBuilder>(st, threads, steps);
      break;
  }

  // Physics sanity: energy drift over the run.
  const EnergyReport e1 = total_energy(st.bodies, st.cfg.eps);
  std::printf("\nfinal energy:   T=%.4f U=%.4f E=%.4f (drift %.2f%%)\n", e1.kinetic,
              e1.potential, e1.total(),
              100.0 * relative_drift(e0.total(), e1.total()));
  return 0;
}
