# Empty dependencies file for ptb_tests.
# This may be replaced when dependencies are built.
