
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aligned_pool.cpp" "tests/CMakeFiles/ptb_tests.dir/test_aligned_pool.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_aligned_pool.cpp.o.d"
  "/root/repo/tests/test_app.cpp" "tests/CMakeFiles/ptb_tests.dir/test_app.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_app.cpp.o.d"
  "/root/repo/tests/test_builders.cpp" "tests/CMakeFiles/ptb_tests.dir/test_builders.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_builders.cpp.o.d"
  "/root/repo/tests/test_cache_model.cpp" "tests/CMakeFiles/ptb_tests.dir/test_cache_model.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_cache_model.cpp.o.d"
  "/root/repo/tests/test_diagnostics.cpp" "tests/CMakeFiles/ptb_tests.dir/test_diagnostics.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_diagnostics.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/ptb_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_generate.cpp" "tests/CMakeFiles/ptb_tests.dir/test_generate.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_generate.cpp.o.d"
  "/root/repo/tests/test_hlrc_home.cpp" "tests/CMakeFiles/ptb_tests.dir/test_hlrc_home.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_hlrc_home.cpp.o.d"
  "/root/repo/tests/test_hlrc_model.cpp" "tests/CMakeFiles/ptb_tests.dir/test_hlrc_model.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_hlrc_model.cpp.o.d"
  "/root/repo/tests/test_invalidation_model.cpp" "tests/CMakeFiles/ptb_tests.dir/test_invalidation_model.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_invalidation_model.cpp.o.d"
  "/root/repo/tests/test_lock_buckets.cpp" "tests/CMakeFiles/ptb_tests.dir/test_lock_buckets.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_lock_buckets.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/ptb_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_native_rt.cpp" "tests/CMakeFiles/ptb_tests.dir/test_native_rt.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_native_rt.cpp.o.d"
  "/root/repo/tests/test_omp_rt.cpp" "tests/CMakeFiles/ptb_tests.dir/test_omp_rt.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_omp_rt.cpp.o.d"
  "/root/repo/tests/test_orb.cpp" "tests/CMakeFiles/ptb_tests.dir/test_orb.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_orb.cpp.o.d"
  "/root/repo/tests/test_phases.cpp" "tests/CMakeFiles/ptb_tests.dir/test_phases.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_phases.cpp.o.d"
  "/root/repo/tests/test_portability.cpp" "tests/CMakeFiles/ptb_tests.dir/test_portability.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_portability.cpp.o.d"
  "/root/repo/tests/test_region_table.cpp" "tests/CMakeFiles/ptb_tests.dir/test_region_table.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_region_table.cpp.o.d"
  "/root/repo/tests/test_seqtree.cpp" "tests/CMakeFiles/ptb_tests.dir/test_seqtree.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_seqtree.cpp.o.d"
  "/root/repo/tests/test_sim_ordered.cpp" "tests/CMakeFiles/ptb_tests.dir/test_sim_ordered.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_sim_ordered.cpp.o.d"
  "/root/repo/tests/test_sim_reference.cpp" "tests/CMakeFiles/ptb_tests.dir/test_sim_reference.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_sim_reference.cpp.o.d"
  "/root/repo/tests/test_sim_rt.cpp" "tests/CMakeFiles/ptb_tests.dir/test_sim_rt.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_sim_rt.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/ptb_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_update_builder.cpp" "tests/CMakeFiles/ptb_tests.dir/test_update_builder.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_update_builder.cpp.o.d"
  "/root/repo/tests/test_vec_aabb_morton.cpp" "tests/CMakeFiles/ptb_tests.dir/test_vec_aabb_morton.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_vec_aabb_morton.cpp.o.d"
  "/root/repo/tests/test_verify_negative.cpp" "tests/CMakeFiles/ptb_tests.dir/test_verify_negative.cpp.o" "gcc" "tests/CMakeFiles/ptb_tests.dir/test_verify_negative.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
