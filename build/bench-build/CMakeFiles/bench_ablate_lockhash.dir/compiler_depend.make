# Empty compiler generated dependencies file for bench_ablate_lockhash.
# This may be replaced when dependencies are built.
