file(REMOVE_RECURSE
  "../bench/bench_ablate_lockhash"
  "../bench/bench_ablate_lockhash.pdb"
  "CMakeFiles/bench_ablate_lockhash.dir/bench_ablate_lockhash.cpp.o"
  "CMakeFiles/bench_ablate_lockhash.dir/bench_ablate_lockhash.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_lockhash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
