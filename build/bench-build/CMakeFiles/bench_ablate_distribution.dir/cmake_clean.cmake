file(REMOVE_RECURSE
  "../bench/bench_ablate_distribution"
  "../bench/bench_ablate_distribution.pdb"
  "CMakeFiles/bench_ablate_distribution.dir/bench_ablate_distribution.cpp.o"
  "CMakeFiles/bench_ablate_distribution.dir/bench_ablate_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
