# Empty compiler generated dependencies file for bench_ablate_distribution.
# This may be replaced when dependencies are built.
