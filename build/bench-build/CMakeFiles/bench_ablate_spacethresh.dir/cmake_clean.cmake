file(REMOVE_RECURSE
  "../bench/bench_ablate_spacethresh"
  "../bench/bench_ablate_spacethresh.pdb"
  "CMakeFiles/bench_ablate_spacethresh.dir/bench_ablate_spacethresh.cpp.o"
  "CMakeFiles/bench_ablate_spacethresh.dir/bench_ablate_spacethresh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_spacethresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
