# Empty compiler generated dependencies file for bench_ablate_spacethresh.
# This may be replaced when dependencies are built.
