file(REMOVE_RECURSE
  "../bench/bench_ablate_partitioner"
  "../bench/bench_ablate_partitioner.pdb"
  "CMakeFiles/bench_ablate_partitioner.dir/bench_ablate_partitioner.cpp.o"
  "CMakeFiles/bench_ablate_partitioner.dir/bench_ablate_partitioner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
