file(REMOVE_RECURSE
  "../bench/bench_ablate_leafcap"
  "../bench/bench_ablate_leafcap.pdb"
  "CMakeFiles/bench_ablate_leafcap.dir/bench_ablate_leafcap.cpp.o"
  "CMakeFiles/bench_ablate_leafcap.dir/bench_ablate_leafcap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_leafcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
