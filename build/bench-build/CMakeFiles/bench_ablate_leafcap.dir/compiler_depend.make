# Empty compiler generated dependencies file for bench_ablate_leafcap.
# This may be replaced when dependencies are built.
