# Empty dependencies file for bench_native_micro.
# This may be replaced when dependencies are built.
