file(REMOVE_RECURSE
  "../bench/bench_native_micro"
  "../bench/bench_native_micro.pdb"
  "CMakeFiles/bench_native_micro.dir/bench_native_micro.cpp.o"
  "CMakeFiles/bench_native_micro.dir/bench_native_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
