# Empty dependencies file for bench_ablate_lockcost.
# This may be replaced when dependencies are built.
