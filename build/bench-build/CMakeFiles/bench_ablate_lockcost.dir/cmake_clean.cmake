file(REMOVE_RECURSE
  "../bench/bench_ablate_lockcost"
  "../bench/bench_ablate_lockcost.pdb"
  "CMakeFiles/bench_ablate_lockcost.dir/bench_ablate_lockcost.cpp.o"
  "CMakeFiles/bench_ablate_lockcost.dir/bench_ablate_lockcost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_lockcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
