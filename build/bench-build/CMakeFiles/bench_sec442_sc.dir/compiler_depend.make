# Empty compiler generated dependencies file for bench_sec442_sc.
# This may be replaced when dependencies are built.
