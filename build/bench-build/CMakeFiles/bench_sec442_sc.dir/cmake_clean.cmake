file(REMOVE_RECURSE
  "../bench/bench_sec442_sc"
  "../bench/bench_sec442_sc.pdb"
  "CMakeFiles/bench_sec442_sc.dir/bench_sec442_sc.cpp.o"
  "CMakeFiles/bench_sec442_sc.dir/bench_sec442_sc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec442_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
