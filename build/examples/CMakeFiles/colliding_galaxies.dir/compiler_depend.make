# Empty compiler generated dependencies file for colliding_galaxies.
# This may be replaced when dependencies are built.
