file(REMOVE_RECURSE
  "CMakeFiles/colliding_galaxies.dir/colliding_galaxies.cpp.o"
  "CMakeFiles/colliding_galaxies.dir/colliding_galaxies.cpp.o.d"
  "colliding_galaxies"
  "colliding_galaxies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colliding_galaxies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
