# Empty dependencies file for galaxy_sim.
# This may be replaced when dependencies are built.
