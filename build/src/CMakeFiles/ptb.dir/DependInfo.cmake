
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bh/diagnostics.cpp" "src/CMakeFiles/ptb.dir/bh/diagnostics.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/bh/diagnostics.cpp.o.d"
  "/root/repo/src/bh/generate.cpp" "src/CMakeFiles/ptb.dir/bh/generate.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/bh/generate.cpp.o.d"
  "/root/repo/src/bh/seqtree.cpp" "src/CMakeFiles/ptb.dir/bh/seqtree.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/bh/seqtree.cpp.o.d"
  "/root/repo/src/bh/verify.cpp" "src/CMakeFiles/ptb.dir/bh/verify.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/bh/verify.cpp.o.d"
  "/root/repo/src/harness/app.cpp" "src/CMakeFiles/ptb.dir/harness/app.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/harness/app.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/ptb.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/ptb.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/harness/report.cpp.o.d"
  "/root/repo/src/mem/cache_model.cpp" "src/CMakeFiles/ptb.dir/mem/cache_model.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/mem/cache_model.cpp.o.d"
  "/root/repo/src/mem/hlrc_model.cpp" "src/CMakeFiles/ptb.dir/mem/hlrc_model.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/mem/hlrc_model.cpp.o.d"
  "/root/repo/src/mem/invalidation_model.cpp" "src/CMakeFiles/ptb.dir/mem/invalidation_model.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/mem/invalidation_model.cpp.o.d"
  "/root/repo/src/mem/model.cpp" "src/CMakeFiles/ptb.dir/mem/model.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/mem/model.cpp.o.d"
  "/root/repo/src/mem/region_table.cpp" "src/CMakeFiles/ptb.dir/mem/region_table.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/mem/region_table.cpp.o.d"
  "/root/repo/src/platform/spec.cpp" "src/CMakeFiles/ptb.dir/platform/spec.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/platform/spec.cpp.o.d"
  "/root/repo/src/sim/sim_rt.cpp" "src/CMakeFiles/ptb.dir/sim/sim_rt.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/sim/sim_rt.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/ptb.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/ptb.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/ptb.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/support/table.cpp.o.d"
  "/root/repo/src/treebuild/treebuild.cpp" "src/CMakeFiles/ptb.dir/treebuild/treebuild.cpp.o" "gcc" "src/CMakeFiles/ptb.dir/treebuild/treebuild.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
