# Empty dependencies file for ptb.
# This may be replaced when dependencies are built.
