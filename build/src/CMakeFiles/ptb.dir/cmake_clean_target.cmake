file(REMOVE_RECURSE
  "libptb.a"
)
