// Shared scaffolding for the per-table/per-figure bench binaries.
//
// Every binary reproduces one table or figure of the paper. By default the
// sweeps run scaled-down body counts so the whole bench suite completes in
// minutes on a laptop; pass --full to run the paper's largest sizes
// (hundreds of thousands of bodies — slow on the execution-driven simulator).
// Pass --procs / --sizes / --steps to override any sweep dimension.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "treebuild/types.hpp"

namespace ptb::bench {

struct BenchOptions {
  std::vector<std::int64_t> sizes;
  std::vector<std::int64_t> procs;
  int warmup = 1;
  int measured = 2;
  bool full = false;
};

/// Parses the standard flags. `default_sizes`/`default_procs` are the quick
/// defaults; `full_sizes` replaces the sizes when --full is given.
inline BenchOptions parse_options(int argc, char** argv, const std::string& default_sizes,
                                  const std::string& full_sizes,
                                  const std::string& default_procs) {
  Cli cli(argc, argv);
  BenchOptions opt;
  opt.full = cli.get_bool("full", false, "run the paper-scale problem sizes (slow)");
  const std::string sizes =
      cli.get_string("sizes", opt.full ? full_sizes : default_sizes,
                     "comma-separated body counts");
  const std::string procs = cli.get_string("procs", default_procs,
                                           "comma-separated processor counts");
  opt.warmup = static_cast<int>(cli.get_int("warmup", 1, "warm-up steps (untimed)"));
  opt.measured = static_cast<int>(cli.get_int("steps", 2, "measured time-steps"));
  cli.finish();
  // Parse the comma-separated lists.
  auto parse_list = [](const std::string& v) {
    std::vector<std::int64_t> out;
    std::size_t pos = 0;
    while (pos < v.size()) {
      std::size_t next = v.find(',', pos);
      if (next == std::string::npos) next = v.size();
      out.push_back(std::strtoll(v.substr(pos, next - pos).c_str(), nullptr, 10));
      pos = next + 1;
    }
    return out;
  };
  opt.sizes = parse_list(sizes);
  opt.procs = parse_list(procs);
  return opt;
}

inline ExperimentSpec make_spec(const std::string& platform, Algorithm alg, int n, int np,
                                const BenchOptions& opt) {
  ExperimentSpec s;
  s.platform = platform;
  s.algorithm = alg;
  s.n = n;
  s.nprocs = np;
  s.warmup_steps = opt.warmup;
  s.measured_steps = opt.measured;
  return s;
}

inline std::string size_label(std::int64_t n) {
  if (n % 1024 == 0) return std::to_string(n / 1024) + "k";
  return std::to_string(n);
}

/// Header banner shared by all bench binaries.
inline void banner(const std::string& id, const std::string& what) {
  std::printf("### %s — %s\n", id.c_str(), what.c_str());
  std::printf("### (paper: Shan & Singh, IPPS'98; shapes, not absolute times, "
              "are the reproduction target)\n\n");
}

}  // namespace ptb::bench
