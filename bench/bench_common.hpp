// Shared scaffolding for the per-table/per-figure bench binaries.
//
// Every binary reproduces one table or figure of the paper. By default the
// sweeps run scaled-down body counts so the whole bench suite completes in
// minutes on a laptop; pass --full to run the paper's largest sizes
// (hundreds of thousands of bodies — slow on the execution-driven simulator).
// Pass --procs / --sizes / --steps to override any sweep dimension.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "sim/sim_rt.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/provenance.hpp"
#include "support/table.hpp"
#include "treebuild/types.hpp"

namespace ptb::bench {

/// Machine-readable result sink behind the --json=<path> flag: every
/// measured cell is appended as one flat object (config strings + numeric
/// measurements), and save() writes the whole array. The files accumulate
/// the perf trajectory across PRs (e.g. BENCH_sched.json), so each row
/// carries a provenance prefix (git SHA, build type, backend, sweep shape)
/// set once via context() and prepended to every row at save().
class JsonReport {
 public:
  /// Exits (2) if the path is not writable — fail before the (possibly
  /// hours-long) run, not at save() after it.
  void set_path(std::string path) {
    if (!path.empty()) {
      std::FILE* f = std::fopen(path.c_str(), "a");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open --json path for writing: %s\n", path.c_str());
        std::exit(2);
      }
      std::fclose(f);
    }
    path_ = std::move(path);
  }
  bool enabled() const { return !path_.empty(); }

  /// Run-wide provenance key; prepended (in insertion order) to every row.
  JsonReport& context(const std::string& key, const std::string& v) {
    context_.emplace_back(key, quoted(v));
    return *this;
  }

  JsonReport& row() {
    rows_.emplace_back();
    return *this;
  }
  JsonReport& field(const std::string& key, const std::string& v) {
    rows_.back().emplace_back(key, quoted(v));
    return *this;
  }
  JsonReport& field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    rows_.back().emplace_back(key, buf);
    return *this;
  }
  JsonReport& field(const std::string& key, std::int64_t v) {
    rows_.back().emplace_back(key, std::to_string(v));
    return *this;
  }

  /// Writes the accumulated rows; no-op unless --json was given.
  void save() const {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    PTB_CHECK_MSG(f != nullptr, "cannot open --json output path");
    std::fprintf(f, "[\n");
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "  {");
      std::size_t col = 0;
      for (const auto& kv : context_)
        std::fprintf(f, "%s\"%s\": %s", col++ == 0 ? "" : ", ", kv.first.c_str(),
                     kv.second.c_str());
      for (const auto& kv : rows_[r])
        std::fprintf(f, "%s\"%s\": %s", col++ == 0 ? "" : ", ", kv.first.c_str(),
                     kv.second.c_str());
      std::fprintf(f, "}%s\n", r + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("\nwrote %zu JSON rows to %s\n", rows_.size(), path_.c_str());
  }

 private:
  // Builds the quoted JSON string in one buffer; the chained operator+ form
  // trips gcc-12's -Wrestrict on the temporary self-append.
  static std::string quoted(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  }

  std::string path_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

struct BenchOptions {
  std::vector<std::int64_t> sizes;
  std::vector<std::int64_t> procs;
  int warmup = 1;
  int measured = 2;
  bool full = false;
  /// Run every cell under the data-race detector (--race / PTB_RACE). Virtual
  /// times are unchanged; race counts land in each ExperimentResult.
  bool race = false;
  /// Run every cell under the sharing observer (--sight / PTB_SIGHT). Virtual
  /// times are unchanged; the report lands in each ExperimentResult.
  bool sight = false;
  SimBackend backend = default_sim_backend();
  /// Host worker threads for the parallel backend (0 = default).
  int workers = 0;
  JsonReport json;
};

/// Parses the standard flags. `default_sizes`/`default_procs` are the quick
/// defaults; `full_sizes` replaces the sizes when --full is given.
inline BenchOptions parse_options(int argc, char** argv, const std::string& default_sizes,
                                  const std::string& full_sizes,
                                  const std::string& default_procs) {
  Cli cli(argc, argv);
  BenchOptions opt;
  opt.full = cli.get_bool("full", false, "run the paper-scale problem sizes (slow)");
  const std::string sizes =
      cli.get_string("sizes", opt.full ? full_sizes : default_sizes,
                     "comma-separated body counts");
  const std::string procs = cli.get_string("procs", default_procs,
                                           "comma-separated processor counts");
  opt.warmup = static_cast<int>(cli.get_int("warmup", 1, "warm-up steps (untimed)"));
  opt.measured = static_cast<int>(cli.get_int("steps", 2, "measured time-steps"));
  const std::string backend =
      cli.get_string("backend", to_string(default_sim_backend()),
                     "scheduler backend: fibers | threads | parallel");
  if (backend != "fibers" && backend != "threads" && backend != "parallel") {
    std::fprintf(stderr, "bad --backend: %s (want fibers | threads | parallel)\n",
                 backend.c_str());
    std::exit(2);
  }
  opt.backend = sim_backend_from_string(backend);
  opt.workers = static_cast<int>(
      cli.get_int("workers", 0, "host workers for --backend=parallel (0 = auto)"));
  opt.race = cli.get_bool("race", false,
                          "run under the data-race detector (or set PTB_RACE)");
  opt.sight = cli.get_bool("sight", false,
                           "run under the sharing observer (or set PTB_SIGHT)");
  const std::string json_path =
      cli.get_string("json", "", "also write results to this JSON file");
  opt.json.set_path(json_path);
  cli.finish();
  opt.json.context("git_sha", support::git_sha())
      .context("build_type", support::build_type())
      .context("backend", to_string(opt.backend))
      .context("sizes", sizes)
      .context("procs", procs);
  // Parse the comma-separated lists.
  auto parse_list = [](const std::string& v) {
    std::vector<std::int64_t> out;
    std::size_t pos = 0;
    while (pos < v.size()) {
      std::size_t next = v.find(',', pos);
      if (next == std::string::npos) next = v.size();
      out.push_back(std::strtoll(v.substr(pos, next - pos).c_str(), nullptr, 10));
      pos = next + 1;
    }
    return out;
  };
  opt.sizes = parse_list(sizes);
  opt.procs = parse_list(procs);
  return opt;
}

inline ExperimentSpec make_spec(const std::string& platform, Algorithm alg, int n, int np,
                                const BenchOptions& opt) {
  ExperimentSpec s;
  s.platform = platform;
  s.algorithm = alg;
  s.n = n;
  s.nprocs = np;
  s.warmup_steps = opt.warmup;
  s.measured_steps = opt.measured;
  s.backend = opt.backend;
  s.sim_workers = opt.workers;
  s.race = opt.race;
  s.sight = opt.sight;
  return s;
}

/// Wall-clock timer for host-side cost of a measured cell.
class WallTimer {
 public:
  WallTimer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

inline std::string size_label(std::int64_t n) {
  if (n % 1024 == 0) return std::to_string(n / 1024) + "k";
  return std::to_string(n);
}

/// Header banner shared by all bench binaries.
inline void banner(const std::string& id, const std::string& what) {
  std::printf("### %s — %s\n", id.c_str(), what.c_str());
  std::printf("### (paper: Shan & Singh, IPPS'98; shapes, not absolute times, "
              "are the reproduction target)\n\n");
}

}  // namespace ptb::bench
