// Ablation: leaf capacity k.
// The paper's §5 recounts that allowing MULTIPLE bodies per leaf "essentially
// eliminated the difference between tree-building algorithms" on CC-NUMA
// machines (which is why PARTREE was shelved), while k=1 resurrects it. This
// bench sweeps k on the Origin2000 and on Typhoon-0/HLRC and reports the
// ORIG-vs-SPACE gap as a function of k.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "8192", "65536", "16");
  banner("Ablation: leaf capacity k",
         "tree-build cost vs k (paper §5: multiple bodies per leaf)");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  const int n = static_cast<int>(opt.sizes[0]);
  for (const std::string platform : {"origin2000", "typhoon0_hlrc"}) {
    Table t("leaf-capacity ablation, " + platform + ", n=" + size_label(n) + ", " +
            std::to_string(np) + "p — treebuild seconds (speedup)");
    t.set_header({"k", "ORIG", "LOCAL", "PARTREE", "SPACE"});
    for (int k : {1, 2, 4, 8, 16}) {
      std::vector<std::string> row = {std::to_string(k)};
      for (Algorithm alg : {Algorithm::kOrig, Algorithm::kLocal, Algorithm::kPartree,
                            Algorithm::kSpace}) {
        ExperimentSpec spec = make_spec(platform, alg, n, np, opt);
        spec.bh.leaf_cap = k;
        const auto r = runner.run(spec);
        row.push_back(Table::num(r.treebuild_seconds, 3) + " (" +
                      fmt_speedup(r.speedup) + ")");
      }
      t.add_row(row);
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
