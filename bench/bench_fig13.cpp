// Figure 13: speedups and tree-build share on Typhoon-0 under the page-based
// HLRC SVM protocol (16 processors), all five algorithms.
// Paper shape: SPACE vastly outperforms; PARTREE second; ORIG/LOCAL/UPDATE
// deliver SLOWDOWNS (down to ~16x slower than sequential at 64k); with the
// lock-heavy algorithms nearly all time goes to tree building.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt =
      parse_options(argc, argv, "8192,16384", "8192,16384,32768,65536", "16");
  banner("Figure 13", "speedups + tree-build share on Typhoon-0 (HLRC SVM)");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  Table t("Fig 13: typhoon0 (HLRC), " + std::to_string(np) +
          " processors — speedup | treebuild%");
  std::vector<std::string> header = {"algorithm"};
  for (auto n : opt.sizes) header.push_back(size_label(n));
  t.set_header(header);
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto n : opt.sizes) {
      const auto r =
          runner.run(make_spec("typhoon0_hlrc", alg, static_cast<int>(n), np, opt));
      row.push_back(fmt_speedup(r.speedup) + " | " + fmt_percent(r.treebuild_fraction));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
