// Ablation: sensitivity of the algorithm ranking to synchronization cost.
// The paper's thesis is that the BEST algorithm depends on how expensive
// synchronization is on the platform. This bench sweeps a synthetic lock
// cost on an otherwise Origin-like machine and reports where the crossover
// from LOCAL-best to SPACE-best falls.
#include "bench_common.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/partree.hpp"
#include "treebuild/space.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "8192", "65536", "16");
  banner("Ablation: lock cost",
         "algorithm ranking vs synchronization latency (crossover hunt)");

  const int np = static_cast<int>(opt.procs[0]);
  const int n = static_cast<int>(opt.sizes[0]);
  Table t("lock-cost ablation, origin-like machine, n=" + size_label(n) + ", " +
          std::to_string(np) + "p — whole-app virtual seconds");
  t.set_header({"lock cost", "ORIG", "LOCAL", "PARTREE", "SPACE", "winner"});
  for (double lock_us : {0.8, 4.0, 20.0, 100.0, 500.0}) {
    std::vector<std::string> row = {Table::num(lock_us, 1) + "us"};
    double best = 1e300;
    const char* winner = "";
    for (Algorithm alg : {Algorithm::kOrig, Algorithm::kLocal, Algorithm::kPartree,
                          Algorithm::kSpace}) {
      PlatformSpec spec = PlatformSpec::origin2000();
      spec.lock_ns = lock_us * 1000.0;
      BHConfig bh;
      bh.n = n;
      AppState st = make_app_state(bh, np);
      SimContext ctx(spec, np);
      const RunConfig rc{opt.warmup, opt.measured};
      RunResult res;
      switch (alg) {
        case Algorithm::kOrig: {
          OrigBuilder b(st);
          res = run_simulation(ctx, st, b, rc);
          break;
        }
        case Algorithm::kLocal: {
          LocalBuilder b(st);
          res = run_simulation(ctx, st, b, rc);
          break;
        }
        case Algorithm::kPartree: {
          PartreeBuilder b(st);
          res = run_simulation(ctx, st, b, rc);
          break;
        }
        default: {
          SpaceBuilder b(st);
          res = run_simulation(ctx, st, b, rc);
          break;
        }
      }
      const double s = res.total_ns * 1e-9;
      row.push_back(Table::num(s, 3));
      if (s < best) {
        best = s;
        winner = algorithm_name(alg);
      }
    }
    row.push_back(winner);
    t.add_row(row);
  }
  t.print();
  return 0;
}
