// Figure 6: whole-application speedups on the SGI Challenge (16 processors)
// for the five tree-building algorithms across problem sizes.
// Paper shape: all five between ~12 and ~15; LOCAL best, ORIG worst.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "8192,16384",
                                   "8192,16384,32768,65536,131072", "16");
  banner("Figure 6", "speedups on SGI Challenge, 16 processors");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  Table t("Fig 6: speedup on challenge, " + std::to_string(np) + " processors");
  std::vector<std::string> header = {"algorithm"};
  for (auto n : opt.sizes) header.push_back(size_label(n));
  t.set_header(header);
  // Paper-style busy / memory / sync decomposition (per-processor average,
  // derived from the run's metrics registry) at the largest size.
  Table bdt("Fig 6: execution-time breakdown, n=" + size_label(opt.sizes.back()));
  bdt.set_header({"algorithm", "busy", "memory", "lock", "barrier"});
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto n : opt.sizes) {
      WallTimer wall;
      const auto r = runner.run(make_spec("challenge", alg, static_cast<int>(n), np, opt));
      row.push_back(fmt_speedup(r.speedup));
      const Breakdown bd = breakdown_from(r.metrics, np);
      if (n == opt.sizes.back())
        bdt.add_row({algorithm_name(alg), fmt_percent(bd.frac(bd.busy_s)),
                     fmt_percent(bd.frac(bd.mem_stall_s)),
                     fmt_percent(bd.frac(bd.lock_wait_s)),
                     fmt_percent(bd.frac(bd.barrier_wait_s))});
      opt.json.row()
          .field("figure", std::string("fig6"))
          .field("platform", std::string("challenge"))
          .field("algorithm", std::string(algorithm_name(alg)))
          .field("n", n)
          .field("procs", static_cast<std::int64_t>(np))
          .field("backend", to_string(opt.backend))
          .field("speedup", r.speedup)
          .field("virtual_ns", r.run.total_ns)
          .field("busy_s", bd.busy_s)
          .field("mem_stall_s", bd.mem_stall_s)
          .field("lock_wait_s", bd.lock_wait_s)
          .field("barrier_wait_s", bd.barrier_wait_s)
          .field("host_seconds", wall.seconds());
    }
    t.add_row(row);
  }
  t.print();
  std::printf("\n");
  bdt.print();
  opt.json.save();
  return 0;
}
