// Figure 6: whole-application speedups on the SGI Challenge (16 processors)
// for the five tree-building algorithms across problem sizes.
// Paper shape: all five between ~12 and ~15; LOCAL best, ORIG worst.
//
// The execution-time breakdown comes from the anatomy ledger (every cell runs
// with the ledger enabled — virtual times are unchanged), cross-checked
// exactly against the metrics-registry sums the table used to be derived
// from.
#include "anatomy/anatomy.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "8192,16384",
                                   "8192,16384,32768,65536,131072", "16");
  banner("Figure 6", "speedups on SGI Challenge, 16 processors");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  Table t("Fig 6: speedup on challenge, " + std::to_string(np) + " processors");
  std::vector<std::string> header = {"algorithm"};
  for (auto n : opt.sizes) header.push_back(size_label(n));
  t.set_header(header);
  // Paper-style busy / memory / sync decomposition at the largest size, from
  // the anatomy ledger summed over processors (skew folded into barrier: it
  // is imbalance seen at the next phase boundary rather than a barrier).
  Table bdt("Fig 6: execution-time breakdown, n=" + size_label(opt.sizes.back()));
  bdt.set_header({"algorithm", "busy", "memory", "lock", "barrier"});
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto n : opt.sizes) {
      WallTimer wall;
      ExperimentSpec spec = make_spec("challenge", alg, static_cast<int>(n), np, opt);
      spec.anatomy = true;
      const auto r = runner.run(spec);
      row.push_back(fmt_speedup(r.speedup));

      const anatomy::Ledger& led = r.anatomy;
      const double busy_ns = led.category_ns(anatomy::Category::kBusy);
      const double mem_local_ns = led.category_ns(anatomy::Category::kMemLocal);
      const double mem_remote_ns = led.category_ns(anatomy::Category::kMemRemote);
      const double mem_ns = mem_local_ns + mem_remote_ns;
      const double lock_ns = led.category_ns(anatomy::Category::kLockWait);
      const double barrier_ns = led.category_ns(anatomy::Category::kBarrierWait);
      const double skew_ns = led.category_ns(anatomy::Category::kPhaseSkew);
      // Exact cross-check against the old metrics-derived decomposition:
      // both sides are sums of the same integer-valued per-(proc, phase)
      // accumulators, so they must agree to the last bit (in ns — the
      // seconds-scaled Breakdown would round).
      double phase_ns = 0.0, m_mem_ns = 0.0, m_lock_ns = 0.0, m_barrier_ns = 0.0;
      for (int ph = 0; ph < kNumPhases; ++ph) {
        if (ph == static_cast<int>(Phase::kOther)) continue;
        const trace::Labels f{{"phase", phase_name(static_cast<Phase>(ph))}};
        phase_ns += r.metrics.sum("time.phase_ns", f);
        m_mem_ns += r.metrics.sum("time.mem_stall_ns", f);
        m_lock_ns += r.metrics.sum("sync.lock_wait_ns", f);
        m_barrier_ns += r.metrics.sum("sync.barrier_wait_ns", f);
      }
      const bool consistent =
          mem_ns == m_mem_ns && lock_ns == m_lock_ns && barrier_ns == m_barrier_ns &&
          busy_ns == phase_ns - m_mem_ns - m_lock_ns - m_barrier_ns;
      PTB_CHECK_MSG(consistent,
                    "fig6: anatomy ledger disagrees with the metrics-derived breakdown");

      const double pt_ns = static_cast<double>(np) * led.total_ns;
      const auto frac = [&](double ns) { return pt_ns > 0.0 ? ns / pt_ns : 0.0; };
      if (n == opt.sizes.back())
        bdt.add_row({algorithm_name(alg), fmt_percent(frac(busy_ns)),
                     fmt_percent(frac(mem_ns)), fmt_percent(frac(lock_ns)),
                     fmt_percent(frac(barrier_ns + skew_ns))});
      opt.json.row()
          .field("figure", std::string("fig6"))
          .field("platform", std::string("challenge"))
          .field("algorithm", std::string(algorithm_name(alg)))
          .field("n", n)
          .field("procs", static_cast<std::int64_t>(np))
          .field("backend", to_string(opt.backend))
          .field("speedup", r.speedup)
          .field("virtual_ns", r.run.total_ns)
          .field("busy_s", busy_ns * 1e-9 / np)
          .field("mem_stall_s", mem_ns * 1e-9 / np)
          .field("mem_local_s", mem_local_ns * 1e-9 / np)
          .field("mem_remote_s", mem_remote_ns * 1e-9 / np)
          .field("lock_wait_s", lock_ns * 1e-9 / np)
          .field("barrier_wait_s", barrier_ns * 1e-9 / np)
          .field("skew_s", skew_ns * 1e-9 / np)
          .field("ledger_consistent", std::string(consistent ? "yes" : "no"))
          .field("host_seconds", wall.seconds());
    }
    t.add_row(row);
  }
  t.print();
  std::printf("\n");
  bdt.print();
  opt.json.save();
  return 0;
}
