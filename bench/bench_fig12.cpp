// Figure 12: speedups and tree-build share on the Intel Paragon (HLRC shared
// virtual memory, 16 processors).
// The paper could only afford to run PARTREE and SPACE (the other three were
// "almost intolerably long" — substantial slowdowns); we report all five by
// default at reduced sizes so the slowdowns are visible, matching the text.
// Paper shape: SPACE clearly best (the only one with real speedup; tree build
// <20% of time); PARTREE second (~50% of time in tree build).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt =
      parse_options(argc, argv, "8192,16384", "8192,16384,32768,65536", "16");
  banner("Figure 12", "speedups + tree-build share on Intel Paragon (HLRC SVM)");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  Table t("Fig 12: paragon (HLRC), " + std::to_string(np) +
          " processors — speedup | treebuild%");
  std::vector<std::string> header = {"algorithm"};
  for (auto n : opt.sizes) header.push_back(size_label(n));
  t.set_header(header);
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto n : opt.sizes) {
      const auto r = runner.run(make_spec("paragon", alg, static_cast<int>(n), np, opt));
      row.push_back(fmt_speedup(r.speedup) + " | " + fmt_percent(r.treebuild_fraction));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
