// Scheduler microbenchmark: host-side cost of the DES turn-taking hot path.
//
// Every ordered operation (here: fetch_add on a shared counter) must wait
// until its processor's virtual clock is the minimum over all active
// processors. This binary drives a synthetic workload of ordered ops +
// periodic barriers through all three scheduler backends and reports
// host-side ordered-ops/second. The fiber backend replaces the mutex/condvar
// handoff with a user-space context switch, so it should be several times
// faster; the parallel backend runs the same fiber scheduler (its section
// pool is idle here — this workload is all ordered ops) so it must track
// fibers closely; all backends must agree bit-for-bit on every virtual
// result.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace {

using namespace ptb;
using namespace ptb::bench;

struct MicroResult {
  double seconds = 0.0;
  std::uint64_t ordered_ops = 0;
  std::int64_t counter = 0;
  std::vector<std::uint64_t> clocks;
};

MicroResult run_backend(SimBackend backend, int nprocs, int ops_per_proc) {
  SimContext ctx(PlatformSpec::ideal(), nprocs, backend);
  std::atomic<std::int64_t> counter{0};
  WallTimer wall;
  ctx.run([&](SimProc& rt) {
    for (int i = 0; i < ops_per_proc; ++i) {
      rt.compute(1.0 + (rt.self() % 4));  // skewed clocks keep the heap busy
      rt.fetch_add(counter, 1);
      if (i % 1024 == 1023) rt.barrier();
    }
    rt.barrier();
  });
  MicroResult r;
  r.seconds = wall.seconds();
  r.ordered_ops = static_cast<std::uint64_t>(nprocs) * static_cast<std::uint64_t>(ops_per_proc);
  r.counter = counter.load();
  for (int p = 0; p < nprocs; ++p) r.clocks.push_back(ctx.clock_ns(p));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  Cli cli(argc, argv);
  const int nprocs =
      static_cast<int>(cli.get_int("procs", 16, "simulated processor count"));
  const int ops = static_cast<int>(
      cli.get_int("ops", 20000, "ordered operations per simulated processor"));
  const int reps = static_cast<int>(cli.get_int("reps", 3, "repetitions (best kept)"));
  const std::string json_path =
      cli.get_string("json", "BENCH_sched.json", "JSON output path (empty disables)");
  cli.finish();

  banner("sched micro", "host-side ordered-ops/sec of the scheduler backends");
  std::printf("%d simulated processors, %d ordered ops each, best of %d reps\n\n",
              nprocs, ops, reps);

  JsonReport json;
  json.set_path(json_path);
  json.context("git_sha", support::git_sha()).context("build_type", support::build_type());

  MicroResult best[3];
  const SimBackend backends[3] = {SimBackend::kFibers, SimBackend::kThreads,
                                  SimBackend::kParallel};
  for (int b = 0; b < 3; ++b) {
    run_backend(backends[b], nprocs, ops / 10 + 1);  // warm-up
    for (int rep = 0; rep < reps; ++rep) {
      MicroResult r = run_backend(backends[b], nprocs, ops);
      if (rep == 0 || r.seconds < best[b].seconds) best[b] = r;
    }
    const double rate = static_cast<double>(best[b].ordered_ops) / best[b].seconds;
    std::printf("%-8s %10.3f ms   %12.0f ordered ops/s\n", to_string(backends[b]),
                best[b].seconds * 1e3, rate);
    json.row()
        .field("bench", std::string("sched_micro"))
        .field("backend", to_string(backends[b]))
        .field("procs", static_cast<std::int64_t>(nprocs))
        .field("ops_per_proc", static_cast<std::int64_t>(ops))
        .field("host_seconds", best[b].seconds)
        .field("ordered_ops_per_sec", rate);
  }

  // Cross-backend agreement: virtual results must be bit-identical.
  bool identical = best[0].clocks == best[1].clocks && best[0].counter == best[1].counter &&
                   best[0].clocks == best[2].clocks && best[0].counter == best[2].counter;
  const double speedup = best[1].seconds / best[0].seconds;
  std::printf("\nfibers vs threads: %.1fx ordered-op throughput, virtual results %s\n",
              speedup, identical ? "identical" : "DIVERGED");
  json.row()
      .field("bench", std::string("sched_micro_summary"))
      .field("procs", static_cast<std::int64_t>(nprocs))
      .field("fiber_speedup", speedup)
      .field("virtual_results_identical", std::string(identical ? "yes" : "no"));
  json.save();

  if (!identical) {
    std::fprintf(stderr, "FAIL: backends disagree on virtual results\n");
    return 1;
  }
  return 0;
}
