// Force-kernel microbenchmark: host-side cost of the force phase's two
// layers, and the end-to-end payoff of the fast paths.
//
// Part 1 (micro): synthetic interaction lists at three body counts, each
// evaluated by the reference scalar loop (the in-walk accumulation shape)
// and by the blocked 8-wide kernel (bh::evaluate) — best-of-3 timed passes,
// reporting interactions/second. The two must agree bit-for-bit on the
// accumulated acceleration (the kernel folds in list order; see
// docs/PERF.md "The interaction-list oracle").
//
// Part 2 (e2e): one full ptbsim-shaped experiment (challenge, SPACE) timed
// four ways — {walk, kernel} × {fibers, parallel} — asserting that every
// virtual time and memory counter is bit-identical across all four, and
// reporting the kernel, parallel-backend and combined host-time speedups.
// The combined number is the tracked headline in BENCH_force.json
// (tools/check_regression.py force).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bh/forcekernel.hpp"
#include "support/cli.hpp"

namespace {

using namespace ptb;
using namespace ptb::bench;

struct ScopedForceSlowpath {
  explicit ScopedForceSlowpath(bool on) {
    if (on)
      ::setenv("PTB_FORCE_SLOWPATH", "1", 1);
    else
      ::unsetenv("PTB_FORCE_SLOWPATH");
  }
  ~ScopedForceSlowpath() { ::unsetenv("PTB_FORCE_SLOWPATH"); }
};

/// The in-walk accumulation shape: one fused subtract/square/rsqrt/fold per
/// partner, exactly what detail::force_walk does per interaction.
Vec3 scalar_evaluate(const bh::InteractionList& il, const Vec3& pos, double eps2) {
  Vec3 acc{};
  for (std::size_t i = 0; i < il.size(); ++i) {
    const double dx = il.x()[i] - pos.x;
    const double dy = il.y()[i] - pos.y;
    const double dz = il.z()[i] - pos.z;
    const double r2 = dx * dx + dy * dy + dz * dz + eps2;
    const double inv = 1.0 / (r2 * std::sqrt(r2));
    const double s = il.m()[i] * inv;
    acc.x += dx * s;
    acc.y += dy * s;
    acc.z += dz * s;
  }
  return acc;
}

struct MicroResult {
  double seconds = 0.0;
  std::uint64_t interactions = 0;
  Vec3 acc{};  // checksum: both paths must produce the same bits
};

MicroResult run_micro(const bh::InteractionList& il, bool batched, int reps) {
  const Vec3 pos{0.1, -0.2, 0.3};
  const double eps2 = 0.05 * 0.05;
  MicroResult best;
  // One untimed warm-up pass, then best-of-3 timed passes.
  for (int pass = -1; pass < 3; ++pass) {
    WallTimer wall;
    Vec3 acc{};
    for (int rep = 0; rep < reps; ++rep)
      acc += batched ? bh::evaluate(il, pos, eps2) : scalar_evaluate(il, pos, eps2);
    const double s = wall.seconds();
    if (pass < 0) continue;
    best.acc = acc;
    if (best.seconds == 0.0 || s < best.seconds) best.seconds = s;
  }
  best.interactions = static_cast<std::uint64_t>(il.size()) * static_cast<std::uint64_t>(reps);
  return best;
}

struct E2eResult {
  double host_seconds = 0.0;
  ExperimentResult res;
};

E2eResult run_e2e(int n, int nprocs, bool slowpath, SimBackend backend, int workers) {
  ScopedForceSlowpath env(slowpath);
  ExperimentRunner runner;  // fresh runner: no cross-path baseline cache
  ExperimentSpec spec;
  spec.platform = "challenge";
  spec.algorithm = Algorithm::kSpace;
  spec.n = n;
  spec.nprocs = nprocs;
  spec.warmup_steps = 1;
  spec.measured_steps = 1;
  spec.backend = backend;
  spec.sim_workers = workers;
  E2eResult out;
  WallTimer wall;
  out.res = runner.run(spec);
  out.host_seconds = wall.seconds();
  return out;
}

bool virtually_identical(const ExperimentResult& a, const ExperimentResult& b) {
  return a.par_seconds == b.par_seconds && a.seq_seconds == b.seq_seconds &&
         a.treebuild_seconds == b.treebuild_seconds && a.mem.reads == b.mem.reads &&
         a.mem.read_misses == b.mem.read_misses &&
         a.mem.remote_misses == b.mem.remote_misses &&
         a.mem.invalidations_sent == b.mem.invalidations_sent &&
         a.mem.page_faults == b.mem.page_faults &&
         a.metrics.sum("forces.interactions") == b.metrics.sum("forces.interactions");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 2000, "micro-loop repetitions"));
  const int n = static_cast<int>(cli.get_int("n", 16384, "e2e body count"));
  const int nprocs = static_cast<int>(cli.get_int("procs", 16, "e2e processor count"));
  const int workers = static_cast<int>(
      cli.get_int("workers", 0, "host workers for the parallel backend (0 = auto)"));
  const bool skip_e2e = cli.get_bool("micro-only", false, "skip the e2e experiments");
  const std::string json_path =
      cli.get_string("json", "BENCH_force.json", "JSON output path (empty disables)");
  cli.finish();

  banner("force micro", "host-side interactions/sec of the force-evaluation hot path");

  JsonReport json;
  json.set_path(json_path);
  json.context("git_sha", support::git_sha()).context("build_type", support::build_type());

  // Deterministic synthetic partner cloud (xorshift), the same across paths.
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<double>(rng % 100000) / 50000.0 - 1.0;
  };

  std::printf("%-10s %9s %14s %16s %9s\n", "list_len", "path", "host_ms",
              "interactions/s", "speedup");
  for (const std::size_t len : {std::size_t{1024}, std::size_t{8192}, std::size_t{65536}}) {
    bh::InteractionList il;
    for (std::size_t i = 0; i < len; ++i)
      il.push_body(Vec3{next(), next(), next()}, 1.0 + 0.5 * next());
    // Scale reps down with list length so each cell does similar total work.
    const int cell_reps = std::max(1, static_cast<int>(
                                          static_cast<std::size_t>(reps) * 1024 / len));
    const MicroResult scalar = run_micro(il, /*batched=*/false, cell_reps);
    const MicroResult batched = run_micro(il, /*batched=*/true, cell_reps);
    if (scalar.acc.x != batched.acc.x || scalar.acc.y != batched.acc.y ||
        scalar.acc.z != batched.acc.z) {
      std::fprintf(stderr, "FAIL: scalar and batched evaluation disagree at len=%zu\n",
                   len);
      return 1;
    }
    const double scalar_rate = static_cast<double>(scalar.interactions) / scalar.seconds;
    const double batched_rate =
        static_cast<double>(batched.interactions) / batched.seconds;
    for (const char* path : {"scalar", "batched"}) {
      const MicroResult& r = std::string(path) == "batched" ? batched : scalar;
      const double rate = std::string(path) == "batched" ? batched_rate : scalar_rate;
      std::printf("%-10zu %9s %14.3f %16.0f %8.2fx\n", len, path, r.seconds * 1e3, rate,
                  rate / scalar_rate);
      json.row()
          .field("bench", std::string("force_micro"))
          .field("list_len", static_cast<std::int64_t>(len))
          .field("path", std::string(path))
          .field("host_seconds", r.seconds)
          .field("interactions_per_sec", rate);
    }
  }

  if (!skip_e2e) {
    std::printf("\ne2e: challenge / SPACE / n=%d / p=%d — {walk,kernel} x {fibers,parallel}\n",
                n, nprocs);
    // Slowest first so later runs are not flattered by host warm-up.
    const E2eResult walk_fib = run_e2e(n, nprocs, /*slowpath=*/true, SimBackend::kFibers, 0);
    const E2eResult kern_fib = run_e2e(n, nprocs, /*slowpath=*/false, SimBackend::kFibers, 0);
    const E2eResult kern_par =
        run_e2e(n, nprocs, /*slowpath=*/false, SimBackend::kParallel, workers);
    const bool identical = virtually_identical(walk_fib.res, kern_fib.res) &&
                           virtually_identical(walk_fib.res, kern_par.res);
    const double speedup_kernel = walk_fib.host_seconds / kern_fib.host_seconds;
    const double speedup_parallel = kern_fib.host_seconds / kern_par.host_seconds;
    const double speedup_combined = walk_fib.host_seconds / kern_par.host_seconds;
    std::printf("  walk+fibers    %8.3fs   (reference)\n", walk_fib.host_seconds);
    std::printf("  kernel+fibers  %8.3fs   %5.2fx vs walk\n", kern_fib.host_seconds,
                speedup_kernel);
    std::printf("  kernel+parallel%8.3fs   %5.2fx vs kernel+fibers, %5.2fx combined\n",
                kern_par.host_seconds, speedup_parallel, speedup_combined);
    std::printf("  virtual results %s\n", identical ? "identical" : "DIVERGED");
    struct Row {
      const char* path;
      const char* backend;
      const E2eResult* r;
    };
    for (const Row row : {Row{"walk", "fibers", &walk_fib}, Row{"kernel", "fibers", &kern_fib},
                          Row{"kernel", "parallel", &kern_par}}) {
      json.row()
          .field("bench", std::string("force_e2e"))
          .field("platform", std::string("challenge"))
          .field("algorithm", std::string("SPACE"))
          .field("n", static_cast<std::int64_t>(n))
          .field("procs", static_cast<std::int64_t>(nprocs))
          .field("path", std::string(row.path))
          .field("backend", std::string(row.backend))
          .field("host_seconds", row.r->host_seconds);
    }
    json.row()
        .field("bench", std::string("force_e2e_summary"))
        .field("n", static_cast<std::int64_t>(n))
        .field("procs", static_cast<std::int64_t>(nprocs))
        .field("workers", static_cast<std::int64_t>(workers))
        .field("host_cpus", static_cast<std::int64_t>(std::thread::hardware_concurrency()))
        .field("speedup_kernel", speedup_kernel)
        .field("speedup_parallel", speedup_parallel)
        .field("speedup_combined", speedup_combined)
        .field("virtual_results_identical", std::string(identical ? "yes" : "no"));
    if (!identical) {
      json.save();
      std::fprintf(stderr,
                   "FAIL: walk/kernel or fibers/parallel disagree on virtual results\n");
      return 1;
    }
  }

  json.save();
  return 0;
}
