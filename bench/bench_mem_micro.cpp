// Memory-system microbenchmark: host-side cost of the per-access charge path.
//
// Part 1 (micro): drives each protocol model directly with the access shapes
// the force phase produces — hot scalar re-reads (tree nodes), strided span
// walks over a body arena (leaf interaction lists) — and reports host-side
// charges/second for the fast path and for the PTB_MEM_SLOWPATH=1 reference
// path (virtual dispatch, no line lookasides, spans decayed to per-element
// calls).
//
// Part 2 (e2e): one full ptbsim-shaped experiment (challenge, SPACE) timed
// on both paths, asserting that every virtual time and memory counter is
// bit-identical — the equivalence the fast path is licensed by (see
// tests/test_mem_equiv.cpp for the exhaustive matrix) — and reporting the
// host-time speedup. The slow path is architecturally the pre-optimization
// charge path, so this speedup is the tracked number in BENCH_mem.json.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mem/model.hpp"
#include "platform/spec.hpp"
#include "support/cli.hpp"

namespace {

using namespace ptb;
using namespace ptb::bench;

struct ScopedSlowpath {
  explicit ScopedSlowpath(bool on) {
    if (on)
      ::setenv("PTB_MEM_SLOWPATH", "1", 1);
    else
      ::unsetenv("PTB_MEM_SLOWPATH");
  }
  ~ScopedSlowpath() { ::unsetenv("PTB_MEM_SLOWPATH"); }
};

struct MicroResult {
  double seconds = 0.0;
  std::uint64_t charges = 0;  // model calls issued
  std::uint64_t reads = 0;    // accesses the model accounted (checksum)
  std::uint64_t cost = 0;     // summed virtual cost (checksum)
};

/// Body-arena shaped region: 16k 96-byte records, ~1.5 MB (bigger than the
/// challenge cache, so the miss path stays exercised).
constexpr std::size_t kRecord = 96;
constexpr std::size_t kRecords = 16384;

/// Hot scalar re-reads: the tree-node pattern. A small working set of
/// addresses read over and over — lookaside hits, cache hits.
MicroResult run_scalar(MemModel& m, const char* arena, int reps) {
  MicroResult r;
  WallTimer wall;
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < 512; ++i)
      r.cost += m.on_read_shared(0, arena + i * kRecord, 72);
  }
  r.seconds = wall.seconds();
  r.charges = static_cast<std::uint64_t>(reps) * 512;
  r.reads = m.proc_stats(0).reads;
  return r;
}

/// Strided span walks: the leaf interaction-list pattern. Each call charges
/// a contiguous run of records in one span.
MicroResult run_span(MemModel& m, const char* arena, int reps) {
  MicroResult r;
  constexpr std::size_t kRun = 32;  // records per span (typical leaf run)
  WallTimer wall;
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t start = 0; start + kRun <= kRecords; start += kRun)
      r.cost += m.on_read_shared_span(0, arena + start * kRecord, 48, kRecord, kRun);
  }
  r.seconds = wall.seconds();
  r.charges = static_cast<std::uint64_t>(reps) * (kRecords / kRun) * kRun;
  r.reads = m.proc_stats(0).reads;
  return r;
}

MicroResult run_shape(const PlatformSpec& spec, const std::vector<char>& arena,
                      const std::string& shape, bool slowpath, int reps) {
  ScopedSlowpath env(slowpath);
  std::unique_ptr<MemModel> m = make_mem_model(spec, 16);
  // The fast configuration matches what the simulator's fiber backend runs:
  // serialized execution → eager-invalidation caches (sim_rt.cpp).
  if (!slowpath) m->set_serialized(true);
  m->register_region(arena.data(), arena.size(), HomePolicy::kInterleavedBlock, 0,
                     "bodies");
  auto* fn = shape == "scalar" ? &run_scalar : &run_span;
  // Warm the protocol state and host caches once, untimed; then best-of-3
  // timed passes — single passes are only a few milliseconds and at the
  // mercy of scheduler preemption. Checksums accumulate over every pass so
  // the fast/slow comparison still covers all the work done.
  (*fn)(*m, arena.data(), 1);
  MicroResult best;
  for (int pass = 0; pass < 3; ++pass) {
    MicroResult r = (*fn)(*m, arena.data(), reps);
    best.cost += r.cost;
    best.charges = r.charges;
    if (best.seconds == 0.0 || r.seconds < best.seconds) best.seconds = r.seconds;
  }
  best.reads = m->proc_stats(0).reads;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 200, "micro-loop repetitions"));
  const int n = static_cast<int>(cli.get_int("n", 16384, "e2e body count"));
  const int nprocs = static_cast<int>(cli.get_int("procs", 16, "e2e processor count"));
  const bool skip_e2e = cli.get_bool("micro-only", false, "skip the e2e experiment");
  const std::string json_path =
      cli.get_string("json", "BENCH_mem.json", "JSON output path (empty disables)");
  cli.finish();

  banner("mem micro", "host-side charges/sec of the memory-system hot path");

  JsonReport json;
  json.set_path(json_path);
  json.context("git_sha", support::git_sha()).context("build_type", support::build_type());

  std::vector<char> arena(kRecords * kRecord, 1);

  std::printf("%-14s %-7s %9s %14s %14s %9s\n", "platform", "shape", "path",
              "host_ms", "charges/s", "speedup");
  for (const char* platform : {"ideal", "challenge", "typhoon0_hlrc"}) {
    const PlatformSpec spec = PlatformSpec::by_name(platform);
    for (const char* shape : {"scalar", "span"}) {
      MicroResult fast;
      MicroResult slow;
      // Slow first so the fast numbers are not flattered by host warm-up.
      slow = run_shape(spec, arena, shape, /*slowpath=*/true, reps);
      fast = run_shape(spec, arena, shape, /*slowpath=*/false, reps);
      if (fast.reads != slow.reads || fast.cost != slow.cost) {
        std::fprintf(stderr,
                     "FAIL: %s/%s fast and slow paths disagree "
                     "(reads %llu vs %llu, cost %llu vs %llu)\n",
                     platform, shape, (unsigned long long)fast.reads,
                     (unsigned long long)slow.reads, (unsigned long long)fast.cost,
                     (unsigned long long)slow.cost);
        return 1;
      }
      const double fast_rate = static_cast<double>(fast.charges) / fast.seconds;
      const double slow_rate = static_cast<double>(slow.charges) / slow.seconds;
      for (const char* path : {"fast", "slowpath"}) {
        const MicroResult& r = std::string(path) == "fast" ? fast : slow;
        const double rate = std::string(path) == "fast" ? fast_rate : slow_rate;
        std::printf("%-14s %-7s %9s %14.3f %14.0f %8.2fx\n", platform, shape, path,
                    r.seconds * 1e3, rate,
                    std::string(path) == "fast" ? fast_rate / slow_rate : 1.0);
        json.row()
            .field("bench", std::string("mem_micro"))
            .field("platform", std::string(platform))
            .field("shape", std::string(shape))
            .field("path", std::string(path))
            .field("host_seconds", r.seconds)
            .field("charges_per_sec", rate)
            .field("accesses_accounted", static_cast<std::int64_t>(r.reads));
      }
    }
  }

  if (!skip_e2e) {
    std::printf("\ne2e: challenge / SPACE / n=%d / p=%d (tree build + force phases)\n",
                n, nprocs);
    double host_fast = 0.0;
    double host_slow = 0.0;
    ExperimentResult res_fast;
    ExperimentResult res_slow;
    for (const bool slow : {true, false}) {  // slow first: same warm-up logic
      ScopedSlowpath env(slow);
      ExperimentRunner runner;  // fresh runner: no cross-path baseline cache
      ExperimentSpec spec;
      spec.platform = "challenge";
      spec.algorithm = Algorithm::kSpace;
      spec.n = n;
      spec.nprocs = nprocs;
      spec.warmup_steps = 1;
      spec.measured_steps = 1;
      WallTimer wall;
      ExperimentResult r = runner.run(spec);
      (slow ? host_slow : host_fast) = wall.seconds();
      (slow ? res_slow : res_fast) = std::move(r);
    }
    const bool identical =
        res_fast.par_seconds == res_slow.par_seconds &&
        res_fast.seq_seconds == res_slow.seq_seconds &&
        res_fast.treebuild_seconds == res_slow.treebuild_seconds &&
        res_fast.mem.reads == res_slow.mem.reads &&
        res_fast.mem.read_misses == res_slow.mem.read_misses &&
        res_fast.mem.remote_misses == res_slow.mem.remote_misses &&
        res_fast.mem.invalidations_sent == res_slow.mem.invalidations_sent &&
        res_fast.mem.page_faults == res_slow.mem.page_faults;
    const double speedup = host_slow / host_fast;
    std::printf("  fast %.3fs   slowpath %.3fs   speedup %.2fx   virtual results %s\n",
                host_fast, host_slow, speedup, identical ? "identical" : "DIVERGED");
    std::printf("  charged accesses: %llu reads (%llu misses), %llu writes\n",
                (unsigned long long)res_fast.mem.reads,
                (unsigned long long)res_fast.mem.read_misses,
                (unsigned long long)res_fast.mem.writes);
    json.row()
        .field("bench", std::string("mem_e2e"))
        .field("platform", std::string("challenge"))
        .field("algorithm", std::string("SPACE"))
        .field("n", static_cast<std::int64_t>(n))
        .field("procs", static_cast<std::int64_t>(nprocs))
        .field("host_seconds_fast", host_fast)
        .field("host_seconds_slowpath", host_slow)
        .field("speedup", speedup)
        .field("virtual_results_identical", std::string(identical ? "yes" : "no"));
    if (!identical) {
      json.save();
      std::fprintf(stderr, "FAIL: fast and slow paths disagree on virtual results\n");
      return 1;
    }
  }

  json.save();
  return 0;
}
