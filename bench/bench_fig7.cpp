// Figure 7: tree-building cost as a percentage of total execution time on
// the SGI Challenge (paper: 128k bodies; 4, 8, 16 processors).
// Paper shape: small (<~10%) for the good algorithms, largest for ORIG.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "16384", "131072", "4,8,16");
  banner("Figure 7", "tree-build share of total time on SGI Challenge");

  ExperimentRunner runner;
  const int n = static_cast<int>(opt.sizes[0]);
  Table t("Fig 7: tree-build % of total time, challenge, n=" + size_label(n));
  std::vector<std::string> header = {"algorithm"};
  for (auto p : opt.procs) header.push_back(std::to_string(p) + "p");
  t.set_header(header);
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto p : opt.procs) {
      const auto r = runner.run(make_spec("challenge", alg, n, static_cast<int>(p), opt));
      row.push_back(fmt_percent(r.treebuild_fraction));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
