// Figure 14: tree-building-phase speedups on Typhoon-0 under HLRC SVM
// (16 processors).
// Paper shape: poor everywhere — SPACE reaches ~1.5x; every other algorithm
// is a slowdown (<1x) in the tree-build phase itself.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt =
      parse_options(argc, argv, "8192,16384", "8192,16384,32768,65536", "16");
  banner("Figure 14", "tree-build-phase speedups on Typhoon-0 (HLRC SVM)");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  Table t("Fig 14: tree-build phase speedup, typhoon0 (HLRC), " + std::to_string(np) +
          " processors");
  std::vector<std::string> header = {"algorithm"};
  for (auto n : opt.sizes) header.push_back(size_label(n));
  t.set_header(header);
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto n : opt.sizes) {
      const auto r =
          runner.run(make_spec("typhoon0_hlrc", alg, static_cast<int>(n), np, opt));
      row.push_back(fmt_speedup(r.treebuild_speedup));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
