// Anatomy micro/identity bench: cost and bit-identity of the speedup-loss
// ledger.
//
// For every algorithm the same (challenge, n, p) cell is run with the ledger
// off and on: the virtual results must be bit-identical (the ledger is a
// pure observer — that identity is the license for leaving it attachable to
// every run), and the host-side throughput of ledgered runs is the gated
// perf metric. A p-sweep per algorithm then prints the speedup-loss
// waterfall the ledger exists for.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "anatomy/sweep.hpp"
#include "bench_common.hpp"
#include "support/cli.hpp"

namespace {

using namespace ptb;
using namespace ptb::bench;

bool same_virtual_results(const RunResult& a, const RunResult& b) {
  if (a.total_ns != b.total_ns) return false;
  if (a.proc_stats.size() != b.proc_stats.size()) return false;
  for (std::size_t p = 0; p < a.proc_stats.size(); ++p) {
    const ProcStats& x = a.proc_stats[p];
    const ProcStats& y = b.proc_stats[p];
    for (int ph = 0; ph < kNumPhases; ++ph) {
      if (x.phase_ns[ph] != y.phase_ns[ph]) return false;
      if (x.mem_stall_ns[ph] != y.mem_stall_ns[ph]) return false;
      if (x.lock_wait_phase_ns[ph] != y.lock_wait_phase_ns[ph]) return false;
      if (x.barrier_wait_phase_ns[ph] != y.barrier_wait_phase_ns[ph]) return false;
      if (x.lock_acquires[ph] != y.lock_acquires[ph]) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 2048, "bodies per cell"));
  const int np = static_cast<int>(cli.get_int("procs", 4, "sweep endpoint processors"));
  const int reps = static_cast<int>(cli.get_int("reps", 3, "repetitions (best kept)"));
  const std::string json_path =
      cli.get_string("json", "BENCH_anatomy.json", "JSON output path (empty disables)");
  cli.finish();

  banner("anatomy micro", "speedup-loss ledger: overhead and bit-identity");
  std::printf("challenge, n=%d, p=%d vs p=1, best of %d reps\n\n", n, np, reps);

  JsonReport json;
  json.set_path(json_path);
  json.context("git_sha", support::git_sha()).context("build_type", support::build_type());

  ExperimentRunner runner;
  bool identical = true;
  Table t("ledgered runs (anatomy on; identity checked against anatomy off)");
  t.set_header({"algorithm", "virtual total", "busy share", "loss attributed",
                "runs/s (host)", "identical"});
  for (Algorithm alg : all_algorithms()) {
    ExperimentSpec spec;
    spec.platform = "challenge";
    spec.algorithm = alg;
    spec.n = n;
    spec.nprocs = np;
    spec.warmup_steps = 1;
    spec.measured_steps = 2;

    spec.anatomy = false;
    const ExperimentResult off = runner.run(spec);
    spec.anatomy = true;
    ExperimentResult on;
    double best_s = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      WallTimer wall;
      on = runner.run(spec);
      const double s = wall.seconds();
      if (rep == 0 || s < best_s) best_s = s;
    }
    const bool same = same_virtual_results(off.run, on.run);
    identical = identical && same;

    // The waterfall against a p=1 reference: its category deltas must
    // attribute the whole loss (asserted inside build_waterfall).
    ExperimentSpec ref = spec;
    ref.nprocs = 1;
    const ExperimentResult r1 = runner.run(ref);
    const anatomy::Waterfall wf = anatomy::build_waterfall(r1.anatomy, on.anatomy);

    const double pt = static_cast<double>(np) * on.anatomy.total_ns;
    const double busy_share =
        pt > 0.0 ? on.anatomy.category_ns(anatomy::Category::kBusy) / pt : 0.0;
    const double rate = best_s > 0.0 ? 1.0 / best_s : 0.0;
    t.add_row({algorithm_name(alg), fmt_seconds(on.run.total_ns * 1e-9),
               fmt_percent(busy_share), fmt_seconds(wf.loss_ns * 1e-9),
               Table::num(rate, 2), same ? "yes" : "NO"});

    json.row()
        .field("bench", std::string("anatomy_sweep"))
        .field("platform", std::string("challenge"))
        .field("algorithm", std::string(algorithm_name(alg)))
        .field("n", static_cast<std::int64_t>(n))
        .field("procs", static_cast<std::int64_t>(np))
        .field("virtual_total_ns", on.run.total_ns)
        .field("loss_ns", wf.loss_ns)
        .field("busy_share", busy_share)
        .field("imbalance_ns", on.anatomy.imbalance_ns())
        .field("lock_wait_ns", on.anatomy.category_ns(anatomy::Category::kLockWait))
        .field("host_seconds", best_s)
        .field("ledgered_runs_per_sec", rate);
  }
  t.print();

  std::printf("\nanatomy on vs off: virtual results %s\n",
              identical ? "identical" : "DIVERGED");
  json.row()
      .field("bench", std::string("anatomy_summary"))
      .field("procs", static_cast<std::int64_t>(np))
      .field("virtual_results_identical", std::string(identical ? "yes" : "no"));
  json.save();

  if (!identical) {
    std::fprintf(stderr, "FAIL: the anatomy ledger perturbed virtual results\n");
    return 1;
  }
  return 0;
}
