// Native (google-benchmark) micro-benchmarks: real wall-clock throughput of
// the tree builders and phases on the host machine with std::thread.
// These complement the platform simulations — they measure the library as a
// production parallel library on commodity multicore hardware.
#include <benchmark/benchmark.h>

#include "bh/seqtree.hpp"
#include "harness/app.hpp"
#include "rt/native_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/partree.hpp"
#include "treebuild/space.hpp"
#include "treebuild/update.hpp"

namespace ptb {
namespace {

template <class Builder>
void BM_NativeBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int np = static_cast<int>(state.range(1));
  BHConfig cfg;
  cfg.n = n;
  AppState st = make_app_state(cfg, np);
  NativeContext ctx(np);
  Builder builder(st);
  for (auto _ : state) {
    ctx.run([&](NativeProc& rt) {
      builder.build(rt);
      rt.barrier();
    });
    benchmark::DoNotOptimize(st.tree.root);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SeqReferenceBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BHConfig cfg;
  cfg.n = n;
  const Bodies bodies = make_plummer(n, cfg.seed);
  NodePool pool;
  pool.init(static_cast<std::size_t>(n) * 2 + 1024);
  for (auto _ : state) {
    Node* root = SeqTree::build(bodies, cfg, pool);
    benchmark::DoNotOptimize(root);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ForcePhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BHConfig cfg;
  cfg.n = n;
  AppState st = make_app_state(cfg, 1);
  NativeContext ctx(1);
  LocalBuilder builder(st);
  ctx.run([&](NativeProc& rt) {
    builder.build(rt);
    rt.barrier();
    moments_phase(rt, st);
  });
  for (auto _ : state) {
    NativeContext fctx(1);
    fctx.run([&](NativeProc& rt) { forces_phase(rt, st); });
    benchmark::DoNotOptimize(st.bodies.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_SeqReferenceBuild)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForcePhase)->Arg(8192)->Unit(benchmark::kMillisecond);

BENCHMARK_TEMPLATE(BM_NativeBuild, OrigBuilder)
    ->Args({16384, 2})
    ->Unit(benchmark::kMillisecond)
    ->Name("BM_NativeBuild<ORIG>");
BENCHMARK_TEMPLATE(BM_NativeBuild, LocalBuilder)
    ->Args({16384, 2})
    ->Unit(benchmark::kMillisecond)
    ->Name("BM_NativeBuild<LOCAL>");
BENCHMARK_TEMPLATE(BM_NativeBuild, PartreeBuilder)
    ->Args({16384, 2})
    ->Unit(benchmark::kMillisecond)
    ->Name("BM_NativeBuild<PARTREE>");
BENCHMARK_TEMPLATE(BM_NativeBuild, SpaceBuilder)
    ->Args({16384, 2})
    ->Unit(benchmark::kMillisecond)
    ->Name("BM_NativeBuild<SPACE>");

}  // namespace
}  // namespace ptb

BENCHMARK_MAIN();
