// Ablation: particle-distribution sensitivity.
// The paper's workload is a (centrally condensed) Plummer galaxy. This bench
// compares the five algorithms on a uniform distribution and on a colliding
// cluster pair, on the SVM platform where tree-build costs dominate: the
// uniform case has a shallow, balanced tree (less lock contention, fewer
// subdivision chains); the colliding pair stresses UPDATE's incremental
// maintenance.
#include "bench_common.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/partree.hpp"
#include "treebuild/space.hpp"
#include "treebuild/update.hpp"

namespace {

using namespace ptb;

template <class Builder>
RunResult run_with(AppState& st, int np, int warm, int measured) {
  SimContext ctx(PlatformSpec::typhoon0_hlrc(), np);
  Builder b(st);
  return run_simulation(ctx, st, b, RunConfig{warm, measured});
}

AppState make_state(const std::string& dist, int n, int np) {
  BHConfig cfg;
  cfg.n = n;
  AppState st;
  st.cfg = cfg;
  if (dist == "plummer")
    st.init(make_plummer(n, cfg.seed), np);
  else if (dist == "uniform")
    st.init(make_uniform_cube(n, cfg.seed), np);
  else
    st.init(make_colliding_pair(n, cfg.seed), np);
  st.cfg = cfg;
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "8192", "32768", "16");
  banner("Ablation: particle distribution",
         "tree-build cost vs workload shape, typhoon0 (HLRC)");

  const int np = static_cast<int>(opt.procs[0]);
  const int n = static_cast<int>(opt.sizes[0]);
  Table t("distribution ablation, n=" + size_label(n) + ", " + std::to_string(np) +
          "p — treebuild seconds (whole-app virtual s)");
  t.set_header({"algorithm", "plummer", "uniform", "colliding"});
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (const std::string dist : {"plummer", "uniform", "colliding"}) {
      AppState st = make_state(dist, n, np);
      RunResult r;
      switch (alg) {
        case Algorithm::kOrig:
          r = run_with<OrigBuilder>(st, np, opt.warmup, opt.measured);
          break;
        case Algorithm::kLocal:
          r = run_with<LocalBuilder>(st, np, opt.warmup, opt.measured);
          break;
        case Algorithm::kUpdate:
          r = run_with<UpdateBuilder>(st, np, opt.warmup, opt.measured);
          break;
        case Algorithm::kPartree:
          r = run_with<PartreeBuilder>(st, np, opt.warmup, opt.measured);
          break;
        case Algorithm::kSpace:
          r = run_with<SpaceBuilder>(st, np, opt.warmup, opt.measured);
          break;
      }
      row.push_back(Table::num(r.phase(Phase::kTreeBuild) * 1e-9, 3) + " (" +
                    Table::num(r.total_ns * 1e-9, 2) + ")");
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
