// Ablation: SPACE subdivision threshold.
// Paper §2.5: "the trade-off between load imbalance and partitioning time is
// influenced by the value of the threshold used in subdividing cells". Small
// thresholds give fine load balance but a deeper partitioning pass (more
// counting rounds, more subspaces, more cross-processor body gathering);
// large thresholds give few subspaces and imbalance.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "8192", "65536", "16");
  banner("Ablation: SPACE threshold", "load balance vs partitioning cost (paper §2.5)");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  const int n = static_cast<int>(opt.sizes[0]);
  for (const std::string platform : {"typhoon0_hlrc", "origin2000"}) {
    Table t("SPACE threshold ablation, " + platform + ", n=" + size_label(n) + ", " +
            std::to_string(np) + "p");
    t.set_header({"threshold", "treebuild(s)", "app speedup", "tb speedup"});
    for (int thresh : {n / 256, n / 64, n / 16, n / 4, n}) {
      if (thresh < 8) continue;
      ExperimentSpec spec = make_spec(platform, Algorithm::kSpace, n, np, opt);
      spec.bh.space_threshold = thresh;
      const auto r = runner.run(spec);
      t.add_row({std::to_string(thresh), Table::num(r.treebuild_seconds, 3),
                 fmt_speedup(r.speedup), fmt_speedup(r.treebuild_speedup)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
