// Figure 10: whole-application speedups on the SGI Origin2000 for 16, 24 and
// 30 processors at the paper's largest size (512k; scaled down by default).
// Paper shape: LOCAL/UPDATE/PARTREE scale well, LOCAL best; ORIG flat.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "16384", "524288", "16,24,30");
  banner("Figure 10", "speedup vs processor count on SGI Origin2000");

  ExperimentRunner runner;
  const int n = static_cast<int>(opt.sizes[0]);
  Table t("Fig 10: speedup on origin2000, n=" + size_label(n));
  std::vector<std::string> header = {"algorithm"};
  for (auto p : opt.procs) header.push_back(std::to_string(p) + "p");
  t.set_header(header);
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto p : opt.procs) {
      const auto r = runner.run(make_spec("origin2000", alg, n, static_cast<int>(p), opt));
      row.push_back(fmt_speedup(r.speedup));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
