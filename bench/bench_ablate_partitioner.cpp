// Ablation: costzones vs. orthogonal recursive bisection (ORB).
// The paper's lineage (Singh et al. [3]) replaced Salmon's ORB with costzones
// on shared-memory machines. This bench compares the two partitioners under
// the LOCAL and SPACE builders on the Origin2000 and the SVM Typhoon-0:
// costzones partitions in tree order (cheap, cache-friendly); ORB pays a
// replicated O(n log n) bisection each step.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "8192", "65536", "16");
  banner("Ablation: partitioner", "costzones [3] vs ORB [4]");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  const int n = static_cast<int>(opt.sizes[0]);
  for (const std::string platform : {"origin2000", "typhoon0_hlrc"}) {
    Table t("partitioner ablation, " + platform + ", n=" + size_label(n) + ", " +
            std::to_string(np) + "p — speedup (partition phase s)");
    t.set_header({"algorithm", "costzones", "ORB"});
    for (Algorithm alg : {Algorithm::kLocal, Algorithm::kSpace}) {
      std::vector<std::string> row = {algorithm_name(alg)};
      for (Partitioner part : {Partitioner::kCostzones, Partitioner::kOrb}) {
        ExperimentSpec spec = make_spec(platform, alg, n, np, opt);
        spec.bh.partitioner = part;
        const auto r = runner.run(spec);
        row.push_back(fmt_speedup(r.speedup) + " (" +
                      Table::num(r.run.phase(Phase::kPartition) * 1e-9, 3) + ")");
      }
      t.add_row(row);
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
