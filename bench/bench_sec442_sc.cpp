// Section 4.4.2: Typhoon-0 under fine-grained SEQUENTIAL CONSISTENCY
// (64-byte access control, software protocol), 16 processors.
// Paper shape: the gap between algorithms compresses dramatically compared to
// HLRC on the same hardware. LOCAL best (~7x at 16k), ORIG worst (false
// sharing at 64 B is expensive when every miss is a software handler),
// UPDATE/PARTREE/SPACE clustered around ~4x.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt =
      parse_options(argc, argv, "8192,16384", "8192,16384,32768,65536", "16");
  banner("Section 4.4.2", "speedups on Typhoon-0 under fine-grain SC");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  Table t("Sec 4.4.2: typhoon0 (fine-grain SC), " + std::to_string(np) +
          " processors — speedup | treebuild%");
  std::vector<std::string> header = {"algorithm"};
  for (auto n : opt.sizes) header.push_back(size_label(n));
  t.set_header(header);
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto n : opt.sizes) {
      const auto r =
          runner.run(make_spec("typhoon0_sc", alg, static_cast<int>(n), np, opt));
      row.push_back(fmt_speedup(r.speedup) + " | " + fmt_percent(r.treebuild_fraction));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
