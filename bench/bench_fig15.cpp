// Figure 15: number of lock acquisitions per processor during the tree-build
// phase (two timed steps, 16 processors; paper: 64k bodies) on Typhoon-0
// (HLRC) and on the Origin2000.
// Paper shape: lock counts fall off very quickly from ORIG to SPACE (which is
// zero); HLRC requires additional synchronization vs. the Origin.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "16384", "65536", "16");
  banner("Figure 15", "tree-build lock acquisitions per processor");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  const int n = static_cast<int>(opt.sizes[0]);
  for (const std::string platform : {"typhoon0_hlrc", "origin2000"}) {
    Table t("Fig 15: locks per processor, " + platform + ", n=" + size_label(n) + ", " +
            std::to_string(opt.measured) + " steps");
    std::vector<std::string> header = {"algorithm", "total"};
    for (int p = 0; p < np; ++p) header.push_back("P" + std::to_string(p));
    t.set_header(header);
    for (Algorithm alg : all_algorithms()) {
      const auto r = runner.run(make_spec(platform, alg, n, np, opt));
      std::vector<std::string> row = {algorithm_name(alg),
                                      std::to_string(r.treebuild_locks_total)};
      for (auto locks : r.treebuild_locks_per_proc) row.push_back(std::to_string(locks));
      t.add_row(row);
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
