// Figure 15: number of lock acquisitions per processor during the tree-build
// phase (two timed steps, 16 processors; paper: 64k bodies) on Typhoon-0
// (HLRC) and on the Origin2000.
// Paper shape: lock counts fall off very quickly from ORIG to SPACE (which is
// zero); HLRC requires additional synchronization vs. the Origin.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "16384", "65536", "16");
  banner("Figure 15", "tree-build lock acquisitions per processor");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  const int n = static_cast<int>(opt.sizes[0]);
  constexpr int kHistBuckets = 8;
  for (const std::string platform : {"typhoon0_hlrc", "origin2000"}) {
    Table t("Fig 15: locks per processor, " + platform + ", n=" + size_label(n) + ", " +
            std::to_string(opt.measured) + " steps");
    std::vector<std::string> header = {"algorithm", "total"};
    for (int p = 0; p < np; ++p) header.push_back("P" + std::to_string(p));
    t.set_header(header);
    struct Row {
      Algorithm alg;
      std::vector<std::uint64_t> locks;
      WaitSummary wait;
    };
    std::vector<Row> rows;
    std::uint64_t max_locks = 0;
    for (Algorithm alg : all_algorithms()) {
      const auto r = runner.run(make_spec(platform, alg, n, np, opt));
      std::vector<std::string> row = {algorithm_name(alg),
                                      std::to_string(r.treebuild_locks_total)};
      for (auto locks : r.treebuild_locks_per_proc) {
        row.push_back(std::to_string(locks));
        max_locks = std::max(max_locks, locks);
      }
      t.add_row(row);
      rows.push_back({alg, r.treebuild_locks_per_proc, r.lock_wait});
    }
    t.print();
    std::printf("\n");

    // Lock-wait latency view: the acquisition *counts* above drive waiting
    // only through contention, so show the per-event wait quantiles too.
    Table wt("Fig 15: per-event lock wait, " + platform);
    wt.set_header({"algorithm", "events", "mean", "p50", "p95", "p99", "max"});
    for (const Row& row : rows)
      wt.add_row({algorithm_name(row.alg), std::to_string(row.wait.events),
                  fmt_seconds(row.wait.mean_s), fmt_seconds(row.wait.p50_s),
                  fmt_seconds(row.wait.p95_s), fmt_seconds(row.wait.p99_s),
                  fmt_seconds(row.wait.max_s)});
    wt.print();
    std::printf("\n");

    // Distribution view: how evenly the lock traffic spreads over the
    // processors (a shared histogram range so algorithms are comparable).
    const double hi = static_cast<double>(max_locks) + 1.0;
    Table ht("Fig 15: locks-per-processor distribution, " + platform);
    std::vector<std::string> hh = {"algorithm"};
    {
      const Histogram edges(0.0, hi, kHistBuckets);
      for (int b = 0; b < kHistBuckets; ++b)
        hh.push_back("[" + std::to_string(static_cast<std::uint64_t>(edges.bucket_lo(b))) +
                     "," + std::to_string(static_cast<std::uint64_t>(edges.bucket_hi(b))) +
                     ")");
    }
    ht.set_header(hh);
    for (const Row& row : rows) {
      Histogram h(0.0, hi, kHistBuckets);
      for (auto locks : row.locks) h.add(static_cast<double>(locks));
      std::vector<std::string> cells = {algorithm_name(row.alg)};
      for (int b = 0; b < kHistBuckets; ++b)
        cells.push_back(std::to_string(h.bucket_count(b)));
      ht.add_row(cells);

      std::uint64_t total = 0;
      for (auto locks : row.locks) total += locks;
      auto& jr = opt.json.row()
                     .field("figure", std::string("fig15"))
                     .field("platform", platform)
                     .field("algorithm", std::string(algorithm_name(row.alg)))
                     .field("n", static_cast<std::int64_t>(n))
                     .field("procs", static_cast<std::int64_t>(np))
                     .field("locks_total", static_cast<std::int64_t>(total));
      for (int b = 0; b < kHistBuckets; ++b)
        jr.field("hist_b" + std::to_string(b),
                 static_cast<std::int64_t>(h.bucket_count(b)));
    }
    ht.print();
    std::printf("\n");
  }
  opt.json.save();
  return 0;
}
