// Figure 11: tree-build share of total execution time on the SGI Origin2000
// as the processor count grows (paper: 512k bodies, up to 30 processors).
// Paper shape: ORIG's share climbs to ~60% at 30p; the others stay small.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "16384", "524288", "1,8,16,24,30");
  banner("Figure 11", "tree-build share vs processor count on SGI Origin2000");

  ExperimentRunner runner;
  const int n = static_cast<int>(opt.sizes[0]);
  Table t("Fig 11: tree-build % of total, origin2000, n=" + size_label(n));
  std::vector<std::string> header = {"algorithm"};
  for (auto p : opt.procs) header.push_back(std::to_string(p) + "p");
  t.set_header(header);
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto p : opt.procs) {
      const auto r = runner.run(make_spec("origin2000", alg, n, static_cast<int>(p), opt));
      row.push_back(fmt_percent(r.treebuild_fraction));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
