// Ablation: SPLASH-style ALOCK lock pools.
// The original SPLASH/SPLASH-2 codes do not allocate one lock per cell: cell
// locks are hashed into a fixed lock array, so unrelated cells contend on the
// same lock. This bench sweeps the pool size for the LOCAL builder and shows
// the false-lock-contention cost (virtual lock-wait time per processor) and
// its effect on application speedup.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "8192", "65536", "16");
  banner("Ablation: ALOCK pool size", "false lock contention (SPLASH lock hashing)");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  const int n = static_cast<int>(opt.sizes[0]);
  for (const std::string platform : {"origin2000", "typhoon0_hlrc"}) {
    Table t("ALOCK ablation (LOCAL builder), " + platform + ", n=" + size_label(n) +
            ", " + std::to_string(np) + "p");
    t.set_header({"lock pool", "speedup", "treebuild(s)", "lock wait(s)/proc"});
    for (int buckets : {8, 64, 512, 2048, 0}) {
      ExperimentSpec spec = make_spec(platform, Algorithm::kLocal, n, np, opt);
      spec.bh.lock_buckets = buckets;
      const auto r = runner.run(spec);
      t.add_row({buckets == 0 ? "per-cell" : std::to_string(buckets),
                 fmt_speedup(r.speedup), Table::num(r.treebuild_seconds, 3),
                 Table::num(r.lock_wait_seconds_avg, 4)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
