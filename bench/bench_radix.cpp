// RADIX headline bench: the paper's question re-asked 25 years later.
//
// Part 1 sweeps ORIG (the 1998 baseline), SPACE (the paper's winner) and
// RADIX (the lock-free Morton-sort builder) across the four 1998 machines
// and the two 2020s models (numa2020, simt2020), reporting whole-app and
// tree-build speedups — the (platform, algorithm) speedup rows are the gated
// regression metric. Part 2 prints the anatomy waterfalls that ATTRIBUTE the
// SPACE-vs-RADIX difference, one 1998 config and one 2020s config. Part 3 is
// the identity license + honest host numbers: RADIX's virtual results must
// be bit-identical across the fiber/thread/parallel backends (its sort
// phases are unordered sections, so kParallel genuinely overlaps them on
// host threads), and the measured host-side wall time of the parallel
// backend under --workers is reported as-is.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "anatomy/anatomy.hpp"
#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "support/cli.hpp"
#include "treebuild/radix.hpp"

namespace {

using namespace ptb;
using namespace ptb::bench;

bool same_virtual_results(const RunResult& a, const RunResult& b) {
  if (a.total_ns != b.total_ns) return false;
  if (a.proc_stats.size() != b.proc_stats.size()) return false;
  for (std::size_t p = 0; p < a.proc_stats.size(); ++p) {
    const ProcStats& x = a.proc_stats[p];
    const ProcStats& y = b.proc_stats[p];
    for (int ph = 0; ph < kNumPhases; ++ph) {
      if (x.phase_ns[ph] != y.phase_ns[ph]) return false;
      if (x.mem_stall_ns[ph] != y.mem_stall_ns[ph]) return false;
      if (x.lock_wait_phase_ns[ph] != y.lock_wait_phase_ns[ph]) return false;
      if (x.barrier_wait_phase_ns[ph] != y.barrier_wait_phase_ns[ph]) return false;
      if (x.lock_acquires[ph] != y.lock_acquires[ph]) return false;
    }
  }
  return true;
}

// Virtual times are a function of region addresses, so the backend-identity
// runs share one AppState (same discipline as test_sim_backend_equiv.cpp).
struct StateSnapshot {
  Bodies bodies;
  std::vector<AlignedVec<std::int32_t>> partition;
  std::vector<std::int32_t> body_slot;
};

StateSnapshot take_snapshot(const AppState& st) {
  return StateSnapshot{st.bodies, st.partition, st.body_slot};
}

void restore_snapshot(AppState& st, const StateSnapshot& snap) {
  std::copy(snap.bodies.begin(), snap.bodies.end(), st.bodies.begin());
  for (std::size_t p = 0; p < st.partition.size(); ++p)
    st.partition[p].assign(snap.partition[p].begin(), snap.partition[p].end());
  std::copy(snap.body_slot.begin(), snap.body_slot.end(), st.body_slot.begin());
  st.tree.root = nullptr;
  for (auto& c : st.tree.created) c.clear();
  for (int i = 0; i < st.tree.nbodies; ++i)
    st.tree.body_leaf[static_cast<std::size_t>(i)].store(nullptr, std::memory_order_relaxed);
  std::fill(st.tree.reduce.begin(), st.tree.reduce.end(), ReduceSlot{});
  std::fill(st.interactions.begin(), st.interactions.end(), 0);
  std::fill(st.interactions_cell.begin(), st.interactions_cell.end(), 0);
  std::fill(st.interactions_body.begin(), st.interactions_body.end(), 0);
  st.storage.global.reset();
  for (auto& pool : st.storage.per_proc) pool.reset();
}

void print_waterfall_line(const char* tag, const anatomy::Waterfall& wf) {
  std::printf("  %-28s loss %8.1f us:", tag, wf.loss_ns * 1e-3);
  for (int c = 0; c < anatomy::kNumCategories; ++c)
    std::printf(" %s=%.1f", anatomy::category_name(static_cast<anatomy::Category>(c)),
                wf.delta[static_cast<std::size_t>(c)] * 1e-3);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 16384, "number of bodies"));
  const int np = static_cast<int>(cli.get_int("procs", 8, "simulated processors"));
  const int reps = static_cast<int>(cli.get_int("reps", 3, "host-time repetitions"));
  const int workers =
      static_cast<int>(cli.get_int("workers", 4, "host workers for the parallel backend"));
  const std::string json_path =
      cli.get_string("json", "BENCH_radix.json", "JSON output path (empty disables)");
  cli.finish();

  banner("radix", "lock-free Morton builder vs SPACE, 1998 and 2020s machines");
  std::printf("n=%d, p=%d\n\n", n, np);

  JsonReport json;
  json.set_path(json_path);
  json.context("git_sha", support::git_sha()).context("build_type", support::build_type());

  // --- Part 1: the (platform, algorithm) speedup matrix ---------------------
  const std::vector<std::string> platforms = {
      "challenge", "origin2000",   "paragon", "typhoon0_hlrc",
      "typhoon0_sc", "numa2020", "simt2020"};
  const Algorithm algos[] = {Algorithm::kOrig, Algorithm::kSpace, Algorithm::kRadix};

  ExperimentRunner runner;
  // Ledgers saved for the waterfall section: [platform][algorithm] at p=np
  // and the p=1 references.
  struct Cell {
    anatomy::Ledger at_p;
    anatomy::Ledger at_1;
    double treebuild_speedup = 0.0;
  };
  std::vector<std::vector<Cell>> cells(platforms.size(), std::vector<Cell>(3));

  Table t("speedup at p=" + std::to_string(np) + " (whole app / tree build)");
  t.set_header({"platform", "ORIG", "SPACE", "RADIX", "tb ORIG", "tb SPACE", "tb RADIX"});
  for (std::size_t pi = 0; pi < platforms.size(); ++pi) {
    std::vector<std::string> row{platforms[pi]};
    std::vector<std::string> tb_cols;
    for (int ai = 0; ai < 3; ++ai) {
      ExperimentSpec spec;
      spec.platform = platforms[pi];
      spec.algorithm = algos[ai];
      spec.n = n;
      spec.nprocs = np;
      spec.warmup_steps = 1;
      spec.measured_steps = 1;
      spec.anatomy = true;
      const ExperimentResult r = runner.run(spec);
      ExperimentSpec ref = spec;
      ref.nprocs = 1;
      const ExperimentResult r1 = runner.run(ref);
      cells[pi][static_cast<std::size_t>(ai)] =
          Cell{r.anatomy, r1.anatomy, r.treebuild_speedup};
      row.push_back(Table::num(r.speedup, 2));
      tb_cols.push_back(Table::num(r.treebuild_speedup, 2));
      json.row()
          .field("bench", std::string("radix_matrix"))
          .field("platform", platforms[pi])
          .field("algorithm", std::string(algorithm_name(algos[ai])))
          .field("n", static_cast<std::int64_t>(n))
          .field("procs", static_cast<std::int64_t>(np))
          .field("speedup", r.speedup)
          .field("treebuild_speedup", r.treebuild_speedup)
          .field("treebuild_frac", r.treebuild_fraction)
          .field("virtual_total_ns", r.run.total_ns)
          .field("treebuild_locks", static_cast<std::int64_t>(r.treebuild_locks_total))
          .field("lock_wait_ns", r.anatomy.category_ns(anatomy::Category::kLockWait))
          .field("imbalance_ns", r.anatomy.imbalance_ns());
    }
    for (auto& c : tb_cols) row.push_back(std::move(c));
    t.add_row(row);
  }
  t.print();

  // --- Part 2: anatomy waterfalls attributing SPACE vs RADIX ----------------
  // One 1998 config and one 2020s config, as ledger-category deltas of the
  // p-processor run against its own p=1 reference (deltas in us).
  for (const char* plat : {"challenge", "numa2020", "simt2020"}) {
    const auto pi = static_cast<std::size_t>(
        std::find(platforms.begin(), platforms.end(), plat) - platforms.begin());
    std::printf("\n%s, p=%d — where the cycles went (vs p=1):\n", plat, np);
    for (int ai = 1; ai < 3; ++ai) {  // SPACE, RADIX
      const Cell& c = cells[pi][static_cast<std::size_t>(ai)];
      const anatomy::Waterfall wf = anatomy::build_waterfall(c.at_1, c.at_p);
      print_waterfall_line(algorithm_name(algos[ai]), wf);
    }
  }

  // --- Part 3: backend identity + honest host time --------------------------
  // RADIX on the two eras' flagship machines across all three backends. Any
  // divergence fails the bench (and the regression gate reads the row).
  bool identical = true;
  std::printf("\nbackend identity + host wall time (RADIX, %d reps best):\n", reps);
  for (const char* plat : {"challenge", "numa2020"}) {
    BHConfig bh;
    bh.n = n;
    AppState st = make_app_state(bh, np);
    const StateSnapshot snap = take_snapshot(st);
    RadixBuilder builder(st);
    const RunConfig rc{/*warmup_steps=*/0, /*measured_steps=*/1};
    RunResult ref_run;
    for (const SimBackend backend :
         {SimBackend::kFibers, SimBackend::kThreads, SimBackend::kParallel}) {
      double best_s = 0.0;
      RunResult run;
      for (int rep = 0; rep < reps; ++rep) {
        restore_snapshot(st, snap);
        SimContext ctx(PlatformSpec::by_name(plat), np, backend);
        if (backend == SimBackend::kParallel && workers > 0) ctx.set_workers(workers);
        WallTimer wall;
        run = run_simulation(ctx, st, builder, rc);
        const double s = wall.seconds();
        if (rep == 0 || s < best_s) best_s = s;
      }
      if (backend == SimBackend::kFibers)
        ref_run = run;
      else
        identical = identical && same_virtual_results(ref_run, run);
      std::printf("  %-10s %-8s %8.4f s host\n", plat, to_string(backend), best_s);
      json.row()
          .field("bench", std::string("radix_host"))
          .field("platform", std::string(plat))
          .field("backend", std::string(to_string(backend)))
          .field("workers", static_cast<std::int64_t>(
                                backend == SimBackend::kParallel ? workers : 1))
          .field("n", static_cast<std::int64_t>(n))
          .field("procs", static_cast<std::int64_t>(np))
          .field("host_seconds", best_s);
    }
  }
  std::printf("backends: virtual results %s\n", identical ? "identical" : "DIVERGED");
  json.row()
      .field("bench", std::string("radix_summary"))
      .field("procs", static_cast<std::int64_t>(np))
      .field("virtual_results_identical", std::string(identical ? "yes" : "no"));
  json.save();

  if (!identical) {
    std::fprintf(stderr, "FAIL: RADIX virtual results diverged across backends\n");
    return 1;
  }
  return 0;
}
