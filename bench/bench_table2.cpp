// Table 2: time spent in BARRIER operations on the SGI Origin2000 with 16
// processors (paper: 64k and 512k bodies).
// Paper shape: ORIG's barrier time ~15x LOCAL's (load imbalance from remote
// misses and false sharing accumulates at barriers); UPDATE distant second.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "16384,32768", "65536,524288", "16");
  banner("Table 2", "BARRIER time (s, mean per processor) on SGI Origin2000");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  Table t("Table 2: barrier time (s), origin2000, " + std::to_string(np) + " processors");
  std::vector<std::string> header = {"algorithm"};
  for (auto n : opt.sizes) header.push_back(size_label(n));
  t.set_header(header);
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto n : opt.sizes) {
      const auto r =
          runner.run(make_spec("origin2000", alg, static_cast<int>(n), np, opt));
      row.push_back(Table::num(r.barrier_wait_seconds_avg, 4));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
