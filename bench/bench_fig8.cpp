// Figure 8: whole-application speedups on the SGI Origin2000 (30 processors)
// across problem sizes.
// Paper shape: LOCAL/UPDATE/PARTREE close together and best, SPACE slightly
// behind (locality/load balance), ORIG far behind (false sharing + remote
// misses), gap growing with problem size.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt = parse_options(argc, argv, "8192,16384",
                                   "8192,16384,32768,65536,131072,524288", "30");
  banner("Figure 8", "speedups on SGI Origin2000, 30 processors");

  ExperimentRunner runner;
  const int np = static_cast<int>(opt.procs[0]);
  Table t("Fig 8: speedup on origin2000, " + std::to_string(np) + " processors");
  std::vector<std::string> header = {"algorithm"};
  for (auto n : opt.sizes) header.push_back(size_label(n));
  t.set_header(header);
  for (Algorithm alg : all_algorithms()) {
    std::vector<std::string> row = {algorithm_name(alg)};
    for (auto n : opt.sizes) {
      const auto r =
          runner.run(make_spec("origin2000", alg, static_cast<int>(n), np, opt));
      row.push_back(fmt_speedup(r.speedup));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
