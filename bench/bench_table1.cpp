// Table 1: best sequential execution time on each of the four platforms,
// across problem sizes.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  using namespace ptb::bench;
  BenchOptions opt =
      parse_options(argc, argv, "8192,16384,32768", "8192,16384,32768,65536,131072,524288",
                    "1");
  banner("Table 1", "best sequential time (seconds) on the four platforms");

  ExperimentRunner runner;
  const std::vector<std::string> platforms = {"origin2000", "challenge", "typhoon0_hlrc",
                                              "paragon"};
  Table t("Table 1: sequential execution time (s), " + std::to_string(opt.measured) +
          " timed steps");
  std::vector<std::string> header = {"platform"};
  for (auto n : opt.sizes) header.push_back(size_label(n));
  t.set_header(header);
  for (const auto& platform : platforms) {
    std::vector<std::string> row = {platform};
    for (auto n : opt.sizes) {
      BHConfig bh;
      const double s = runner.sequential_seconds(platform, static_cast<int>(n), bh,
                                                 opt.warmup, opt.measured);
      row.push_back(Table::num(s, 2));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
