#!/usr/bin/env python3
"""Compare a fresh bench_mem_micro JSON against a checked-in baseline.

Usage: check_mem_regression.py BASELINE.json NEW.json [--tolerance FRAC]

Micro rows are matched on (bench, platform, shape, path) and the
charges_per_sec throughput of each matched pair is compared; the check fails
if any charge path regresses by more than --tolerance (fractional, default
0.30 — generous because shared CI runners are noisy; the tracked number is
the checked-in BENCH_mem.json regenerated on a quiet machine).

The mem_e2e row is the headline: it times a full challenge/SPACE experiment
on the fast path and on the PTB_MEM_SLOWPATH=1 reference path. The check
fails if the new e2e speedup falls below (baseline speedup) * (1 - tolerance)
or if the run reports virtual_results_identical != "yes" — bit-identical
virtual results are the license for every fast-path shortcut (see
docs/PERF.md).
"""

import argparse
import json
import sys


def row_key(row):
    return (
        row.get("bench"),
        row.get("platform"),
        row.get("shape"),
        row.get("path"),
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="maximum allowed fractional drop (default 0.30)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base_rows = json.load(f)
    with open(args.new) as f:
        new_rows = json.load(f)

    baseline = {row_key(r): r for r in base_rows if r.get("bench") == "mem_micro"}
    base_e2e = next((r for r in base_rows if r.get("bench") == "mem_e2e"), None)

    failed = False
    compared = 0
    for row in new_rows:
        if row.get("bench") == "mem_e2e":
            if row.get("virtual_results_identical") != "yes":
                print("FAIL: fast path and PTB_MEM_SLOWPATH oracle diverged")
                return 1
            cur = row["speedup"]
            status = "ok"
            if base_e2e is not None:
                old = base_e2e["speedup"]
                if cur < old * (1.0 - args.tolerance):
                    status = "REGRESSION"
                    failed = True
                print(f"     e2e: {old:12.2f} -> {cur:12.2f} x fast-path speedup "
                      f"{status}")
            else:
                print(f"     e2e: {cur:12.2f}x fast-path speedup (no baseline row)")
            compared += 1
        if row.get("bench") != "mem_micro":
            continue
        base = baseline.get(row_key(row))
        if base is None:
            print(f"skip (no baseline row): {row_key(row)}")
            continue
        compared += 1
        old = base["charges_per_sec"]
        cur = row["charges_per_sec"]
        change = (cur - old) / old
        status = "ok"
        if row.get("path") == "fast" and change < -args.tolerance:
            status = "REGRESSION"
            failed = True
        print(f"{row['platform']:>14}/{row['shape']:<6} {row['path']:>8}: "
              f"{old:12.0f} -> {cur:12.0f} charges/s ({change:+.1%}) {status}")

    if compared == 0:
        print("FAIL: no comparable mem rows found")
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
