#!/usr/bin/env python3
"""Compare a fresh bench JSON against a checked-in baseline.

Usage: check_regression.py {anatomy,radix,sched,mem,force} BASELINE.json NEW.json [--tolerance FRAC]

One driver for every perf-regression gate; the per-bench differences (which
micro rows to match, which throughput metric to compare, which rows are
gated vs. informational, the e2e headline row) live in the CONFIGS table.

Micro rows are matched on the bench's key fields and the throughput of each
matched pair is compared; the check fails if a gated row regresses by more
than --tolerance (fractional, default 0.30 — generous because shared CI
runners are noisy; the tracked numbers are the checked-in BENCH_*.json files
regenerated on a quiet machine).

Every bench also carries an identity row: bit-identical virtual results are
the license for each fast path (see docs/PERF.md), so the check fails hard
when virtual_results_identical != "yes". Benches with an e2e headline row
(mem, force) additionally gate the end-to-end speedup against the baseline.
"""

import argparse
import json
import sys

CONFIGS = {
    "sched": {
        "micro_bench": "sched_micro",
        "key_fields": ("backend", "procs", "ops_per_proc"),
        "metric": "ordered_ops_per_sec",
        "unit": "ordered ops/s",
        # Every backend's ordered-op throughput is gated.
        "gated": lambda row: True,
        "label": lambda row: f"{row['backend']:>8}",
        "identity_bench": "sched_micro_summary",
        "identity_message": "scheduler backends diverged on virtual results",
        "e2e": None,
    },
    "mem": {
        "micro_bench": "mem_micro",
        "key_fields": ("platform", "shape", "path"),
        "metric": "charges_per_sec",
        "unit": "charges/s",
        # The slowpath oracle is informational; only the fast path is gated.
        "gated": lambda row: row.get("path") == "fast",
        "label": lambda row: (f"{row['platform']:>14}/{row['shape']:<6} "
                              f"{row['path']:>8}"),
        "identity_bench": "mem_e2e",
        "identity_message": "fast path and PTB_MEM_SLOWPATH oracle diverged",
        "e2e": {
            "bench": "mem_e2e",
            "speedup_field": "speedup",
            "describe": lambda row: "fast-path speedup",
        },
    },
    "anatomy": {
        "micro_bench": "anatomy_sweep",
        "key_fields": ("algorithm", "procs"),
        "metric": "ledgered_runs_per_sec",
        "unit": "ledgered runs/s",
        # Every algorithm's ledgered-run throughput is gated.
        "gated": lambda row: True,
        "label": lambda row: f"{row['algorithm']:>8}/p{row['procs']}",
        "identity_bench": "anatomy_summary",
        "identity_message": "anatomy ledger perturbed virtual results (on vs off)",
        "e2e": None,
    },
    "radix": {
        "micro_bench": "radix_matrix",
        "key_fields": ("platform", "algorithm"),
        "metric": "speedup",
        "unit": "x speedup",
        # Virtual speedups are deterministic, so every cell is gated; the
        # tolerance only absorbs intentional model retunes.
        "gated": lambda row: True,
        "label": lambda row: f"{row['platform']:>14}/{row['algorithm']:<6}",
        "identity_bench": "radix_summary",
        "identity_message": "RADIX virtual results diverged across scheduler backends",
        "e2e": None,
    },
    "force": {
        "micro_bench": "force_micro",
        "key_fields": ("list_len", "path"),
        "metric": "interactions_per_sec",
        "unit": "interactions/s",
        # The scalar walk is the oracle; only the batched kernel is gated.
        "gated": lambda row: row.get("path") == "batched",
        "label": lambda row: f"{row['list_len']:>10}/{row['path']:<8}",
        "identity_bench": "force_e2e_summary",
        "identity_message": "fast paths and their oracles diverged",
        "e2e": {
            "bench": "force_e2e_summary",
            "speedup_field": "speedup_combined",
            "describe": lambda row: (f"combined speedup "
                                     f"(kernel {row['speedup_kernel']:.2f}x, "
                                     f"parallel {row['speedup_parallel']:.2f}x)"),
        },
    },
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench", choices=sorted(CONFIGS))
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="maximum allowed fractional drop (default 0.30)")
    args = ap.parse_args()
    cfg = CONFIGS[args.bench]

    def row_key(row):
        return tuple(row.get(f) for f in cfg["key_fields"])

    with open(args.baseline) as f:
        base_rows = json.load(f)
    with open(args.new) as f:
        new_rows = json.load(f)

    baseline = {row_key(r): r for r in base_rows
                if r.get("bench") == cfg["micro_bench"]}
    base_e2e = None
    if cfg["e2e"] is not None:
        base_e2e = next(
            (r for r in base_rows if r.get("bench") == cfg["e2e"]["bench"]), None)

    failed = False
    compared = 0
    for row in new_rows:
        if row.get("bench") == cfg["identity_bench"]:
            if row.get("virtual_results_identical") != "yes":
                print(f"FAIL: {cfg['identity_message']}")
                return 1
        if cfg["e2e"] is not None and row.get("bench") == cfg["e2e"]["bench"]:
            cur = row[cfg["e2e"]["speedup_field"]]
            what = cfg["e2e"]["describe"](row)
            status = "ok"
            if base_e2e is not None:
                old = base_e2e[cfg["e2e"]["speedup_field"]]
                if cur < old * (1.0 - args.tolerance):
                    status = "REGRESSION"
                    failed = True
                print(f"     e2e: {old:12.2f} -> {cur:12.2f} x {what} {status}")
            else:
                print(f"     e2e: {cur:12.2f}x {what} (no baseline row)")
            compared += 1
        if row.get("bench") != cfg["micro_bench"]:
            continue
        base = baseline.get(row_key(row))
        if base is None:
            print(f"skip (no baseline row): {row_key(row)}")
            continue
        compared += 1
        old = base[cfg["metric"]]
        cur = row[cfg["metric"]]
        change = (cur - old) / old
        status = "ok"
        if cfg["gated"](row) and change < -args.tolerance:
            status = "REGRESSION"
            failed = True
        print(f"{cfg['label'](row)}: {old:14.0f} -> {cur:14.0f} "
              f"{cfg['unit']} ({change:+.1%}) {status}")

    if compared == 0:
        print(f"FAIL: no comparable {args.bench} rows found")
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
