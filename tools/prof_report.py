#!/usr/bin/env python3
"""Render a ptb profile JSON (ptbsim --prof / PTB_PROF) as a human report,
optionally asserting structural claims for CI.

Usage: prof_report.py PROFILE.json [--expect-lock-dominated]
                                   [--expect-zero-lock-edges]

--expect-lock-dominated   fail (exit 1) unless the tree-build slice of the
                          critical path is majority lock-handoff time and the
                          path crosses at least one lock edge — the shape a
                          lock-based builder (ORIG) must show.
--expect-zero-lock-edges  fail unless the critical path crosses no lock edge
                          at all — the shape a lock-free builder (SPACE)
                          must show.
"""

import argparse
import json
import sys


def fmt_ns(ns):
    s = ns * 1e-9
    if s >= 1.0:
        return f"{s:.3f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.1f}us"


def share(part, total):
    return f"{100.0 * part / total:.1f}%" if total else "0.0%"


def print_table(title, header, rows):
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    print(f"== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("profile")
    ap.add_argument("--expect-lock-dominated", action="store_true")
    ap.add_argument("--expect-zero-lock-edges", action="store_true")
    args = ap.parse_args()

    with open(args.profile) as f:
        prof = json.load(f)["prof"]
    cp = prof["critical_path"]
    total = cp["total_ns"]

    print(f"profile: {args.profile}")
    print(f"elapsed {fmt_ns(prof['elapsed_ns'])}, {prof['events']} sync events, "
          f"critical path {cp['segments']} segments\n")

    print_table(
        "critical path",
        ["entered via", "time", "share", "edges"],
        [
            ["run start", fmt_ns(cp["via_start_ns"]), share(cp["via_start_ns"], total), 1],
            ["lock handoff", fmt_ns(cp["via_lock_ns"]), share(cp["via_lock_ns"], total),
             cp["lock_edges"]],
            ["barrier release", fmt_ns(cp["via_barrier_ns"]),
             share(cp["via_barrier_ns"], total), cp["barrier_edges"]],
        ],
    )

    phases = [p for p in cp["by_phase"] if p["ns"] > 0]
    print_table(
        "critical path by phase",
        ["phase", "time", "share", "via lock", "via barrier"],
        [[p["phase"], fmt_ns(p["ns"]), share(p["ns"], total),
          fmt_ns(p["via_lock_ns"]), fmt_ns(p["via_barrier_ns"])] for p in phases],
    )

    if prof["locks"]:
        print_table(
            "top contended locks",
            ["lock", "depth", "acquires", "contended", "wait", "cp edges", "cp time"],
            [[r["name"], r["depth"] if r["depth"] >= 0 else "-", r["acquires"],
              r["contended"], fmt_ns(r["wait_ns"]), r["cp_edges"], fmt_ns(r["cp_ns"])]
             for r in prof["locks"]],
        )

    if prof["depth_contention"]:
        print_table(
            "contention by tree depth (measured tree-build phase)",
            ["depth", "acquires", "contended", "lock wait", "remote", "inval", "mem stall"],
            [[d["depth"] if d["depth"] >= 0 else "other", d["acquires"], d["contended"],
              fmt_ns(d["lock_wait_ns"]), d["remote_misses"], d["invalidations"],
              fmt_ns(d["mem_stall_ns"])] for d in prof["depth_contention"]],
        )

    if prof["whatif"]:
        print_table(
            "causal what-if predictions (lower bounds)",
            ["scenario", "predicted", "speedup"],
            [[w["scenario"], fmt_ns(w["predicted_ns"]), f"{w['speedup']:.2f}"]
             for w in prof["whatif"]],
        )

    failures = []
    if args.expect_lock_dominated:
        tb = next((p for p in cp["by_phase"] if p["phase"] == "treebuild"), None)
        if cp["lock_edges"] == 0:
            failures.append("expected lock edges on the critical path, found none")
        elif tb is None or tb["ns"] == 0:
            failures.append("no tree-build time on the critical path")
        elif tb["via_lock_ns"] * 2 < tb["ns"]:
            failures.append(
                f"tree-build critical path is not lock-dominated: "
                f"{fmt_ns(tb['via_lock_ns'])} via locks of {fmt_ns(tb['ns'])}")
    if args.expect_zero_lock_edges:
        if cp["lock_edges"] != 0:
            failures.append(
                f"expected a lock-free critical path, found {cp['lock_edges']} lock edges")
        if cp["via_lock_ns"] != 0:
            failures.append(
                f"expected zero lock-handoff path time, found {fmt_ns(cp['via_lock_ns'])}")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    if args.expect_lock_dominated or args.expect_zero_lock_edges:
        print("expectations satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
