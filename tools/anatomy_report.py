#!/usr/bin/env python3
"""Render a ptb anatomy JSON (ptbsim --anatomy / PTB_ANATOMY) as a human
report, optionally asserting speedup-loss claims for CI.

Usage: anatomy_report.py ANATOMY.json [--expect-exact]
                                      [--expect-dominant-loss GROUPS]
                                      [--expect-zero-lock-loss] [--procs P]

Categories are grouped for assertions:
  busy -> extra-work, mem_local+mem_remote -> mem, lock_wait -> lock,
  barrier_wait+phase_skew -> imbalance.

--expect-exact               fail (exit 1) unless every run's ledger carries
                             invariant_exact == true (sum of categories ==
                             p * T_p, bit-exact).
--expect-dominant-loss G     comma-separated groups (e.g. "lock,imbalance");
                             fail unless their combined share of the loss
                             p*T_p - T_1 exceeds one half, in every waterfall
                             (or the one selected with --procs).
--expect-zero-lock-loss      fail if any run ledgers a nonzero lock_wait
                             cycle (the SPACE guarantee: no tree locks).
--procs P                    restrict waterfall expectations to one p.
"""

import argparse
import json
import sys

GROUPS = {
    "extra-work": ["busy"],
    "mem": ["mem_local", "mem_remote"],
    "lock": ["lock_wait"],
    "imbalance": ["barrier_wait", "phase_skew"],
}


def print_table(title, header, rows):
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    print(f"== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def cats(entries):
    return {c["category"]: c["ns"] for c in entries}


def fmt_ms(ns):
    return f"{ns * 1e-6:.3f}ms"


def group_deltas(deltas):
    by_cat = cats(deltas)
    return {g: sum(by_cat[c] for c in members) for g, members in GROUPS.items()}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("anatomy")
    ap.add_argument("--expect-exact", action="store_true")
    ap.add_argument("--expect-dominant-loss", default=None,
                    help='comma-separated groups, e.g. "lock,imbalance"')
    ap.add_argument("--expect-zero-lock-loss", action="store_true")
    ap.add_argument("--procs", type=int, default=None,
                    help="restrict waterfall expectations to one processor count")
    args = ap.parse_args()

    with open(args.anatomy) as f:
        anatomy = json.load(f)["anatomy"]
    prov = anatomy["provenance"]
    print(f"anatomy: {prov['algorithm']} on {prov['platform']}, "
          f"n={prov['nbodies']}, up to p={prov['nprocs']} "
          f"[{prov['git_sha']} {prov['build_type']}]\n")

    failures = []

    rows = []
    for run in anatomy["runs"]:
        by_cat = cats(run["categories"])
        pt = run["procs"] * run["total_ns"]
        rows.append([run["procs"], fmt_ms(run["total_ns"]),
                     f"{run['speedup']:.2f}x"]
                    + [f"{by_cat[c] / pt:.1%}" if pt else "-" for c in
                       ("busy", "mem_local", "mem_remote", "lock_wait",
                        "barrier_wait", "phase_skew")]
                    + ["yes" if run["invariant_exact"] else "NO"])
        if args.expect_exact and not run["invariant_exact"]:
            failures.append(f"p={run['procs']}: ledger invariant not exact")
        if args.expect_zero_lock_loss and by_cat["lock_wait"] != 0:
            failures.append(
                f"p={run['procs']}: expected zero lock-loss cycles, "
                f"ledgered {by_cat['lock_wait']:.0f}ns")
    print_table("ledger per run (share of p * T_p)",
                ["p", "T_p", "speedup", "busy", "mem local", "mem remote",
                 "lock", "barrier", "skew", "exact"], rows)

    expected = None
    if args.expect_dominant_loss:
        expected = [g.strip() for g in args.expect_dominant_loss.split(",")]
        unknown = [g for g in expected if g not in GROUPS]
        if unknown:
            sys.exit(f"unknown loss groups {unknown}; choose from {sorted(GROUPS)}")

    rows = []
    for wf in anatomy["waterfall"]:
        loss = wf["loss_ns"]
        groups = group_deltas(wf["deltas"])
        rows.append([wf["procs"], fmt_ms(wf["t1_ns"]), fmt_ms(wf["tp_ns"]),
                     fmt_ms(loss)]
                    + [f"{groups[g] / loss:.1%}" if loss else "-"
                       for g in GROUPS])
        if expected is not None and (args.procs is None or wf["procs"] == args.procs):
            share = sum(groups[g] for g in expected) / loss if loss else 0.0
            if share <= 0.5:
                failures.append(
                    f"p={wf['procs']}: {'+'.join(expected)} explain only "
                    f"{share:.1%} of the loss (need > 50%)")
    if rows:
        print_table("speedup-loss waterfall p*T_p - T_1 (share of loss)",
                    ["p", "T_1", "T_p", "loss"] + list(GROUPS), rows)
    elif expected is not None:
        failures.append("--expect-dominant-loss given but no waterfall in the JSON")

    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("all expectations satisfied" if (
        args.expect_exact or expected is not None or args.expect_zero_lock_loss)
        else "(no expectations asserted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
