#!/usr/bin/env python3
"""Diff two ptb observability JSONs (anatomy, prof or sight) and flag
composition shifts beyond a threshold.

Usage: compare_runs.py OLD.json NEW.json [--threshold F] [--fail-on-shift]

Both files must be the same kind (their top-level key: "anatomy", "prof" or
"sight"); the kind is detected automatically. Compared compositions:

  anatomy  per-run ledger category shares of p*T_p (runs matched on p) and
           waterfall category shares of the loss
  prof     critical-path entry shares (run start / lock handoff / barrier
           release) of the elapsed time, and what-if speedups
  sight    whole-run sharing-class line shares and false-sharing line counts

A shift is a share that moved by more than --threshold (absolute, default
0.05 = five percentage points; what-if speedups compare relatively). With
--fail-on-shift the exit status is 1 when any shift was flagged, so CI can
gate cross-run drift.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if len(doc) != 1:
        sys.exit(f"{path}: not a ptb observability JSON (one top-level key expected)")
    kind = next(iter(doc))
    if kind not in ("anatomy", "prof", "sight"):
        sys.exit(f"{path}: unknown kind '{kind}' (want anatomy, prof or sight)")
    return kind, doc[kind]


def provenance_line(doc):
    p = doc.get("provenance", {})
    parts = [f"{k}={p[k]}" for k in ("platform", "algorithm", "nbodies", "nprocs")
             if k in p]
    parts.append(f"git={p.get('git_sha', '?')}")
    return " ".join(parts)


class Differ:
    def __init__(self, threshold):
        self.threshold = threshold
        self.shifts = 0

    def share(self, label, old, new):
        """Compare two absolute shares (fractions of a whole)."""
        delta = new - old
        flag = abs(delta) > self.threshold
        self.shifts += flag
        print(f"  {label:<42} {old:8.1%} -> {new:8.1%}  ({delta:+.1%})"
              f"{'  SHIFT' if flag else ''}")

    def ratio(self, label, old, new):
        """Compare two positive quantities relatively."""
        if old == 0 and new == 0:
            return
        rel = (new - old) / old if old else float("inf")
        flag = abs(rel) > self.threshold
        self.shifts += flag
        print(f"  {label:<42} {old:10.3f} -> {new:10.3f}  ({rel:+.1%})"
              f"{'  SHIFT' if flag else ''}")


def cats(entries):
    return {c["category"]: c["ns"] for c in entries}


def diff_anatomy(old, new, d):
    old_runs = {r["procs"]: r for r in old["runs"]}
    for run in new["runs"]:
        base = old_runs.get(run["procs"])
        if base is None:
            print(f"  p={run['procs']}: no matching run in OLD")
            continue
        print(f" ledger shares of p*T_p, p={run['procs']}:")
        oc, nc = cats(base["categories"]), cats(run["categories"])
        opt = base["procs"] * base["total_ns"] or 1.0
        npt = run["procs"] * run["total_ns"] or 1.0
        for c in oc:
            d.share(c, oc[c] / opt, nc.get(c, 0.0) / npt)
    old_wf = {w["procs"]: w for w in old.get("waterfall", [])}
    for wf in new.get("waterfall", []):
        base = old_wf.get(wf["procs"])
        if base is None:
            continue
        print(f" waterfall shares of the loss, p={wf['procs']}:")
        oc, nc = cats(base["deltas"]), cats(wf["deltas"])
        ol, nl = base["loss_ns"] or 1.0, wf["loss_ns"] or 1.0
        for c in oc:
            d.share(c, oc[c] / ol, nc.get(c, 0.0) / nl)


def diff_prof(old, new, d):
    print(" critical-path entry shares of elapsed time:")
    oe, ne = old["elapsed_ns"] or 1, new["elapsed_ns"] or 1
    for key, label in (("via_start_ns", "run start"), ("via_lock_ns", "lock handoff"),
                       ("via_barrier_ns", "barrier release")):
        d.share(label, old["critical_path"][key] / oe, new["critical_path"][key] / ne)
    old_wi = {w["scenario"]: w for w in old.get("whatif", [])}
    new_wi = {w["scenario"]: w for w in new.get("whatif", [])}
    if old_wi and new_wi:
        print(" what-if predicted speedups:")
        for name in old_wi:
            if name in new_wi:
                d.ratio(name, old_wi[name]["speedup"], new_wi[name]["speedup"])


def diff_sight(old, new, d):
    print(" sharing-class line shares (whole run):")
    oc = {c["class"]: c["lines"] for c in old["total_classes"]}
    nc = {c["class"]: c["lines"] for c in new["total_classes"]}
    ot, nt = sum(oc.values()) or 1, sum(nc.values()) or 1
    for cls in oc:
        d.share(cls, oc[cls] / ot, nc.get(cls, 0) / nt)
    print(" false sharing:")
    d.ratio("falsely-shared lines", len(old.get("false_sharing", [])),
            len(new.get("false_sharing", [])))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=0.05,
                    help="flag shifts beyond this (absolute share / relative "
                         "ratio, default 0.05)")
    ap.add_argument("--fail-on-shift", action="store_true",
                    help="exit 1 when any shift exceeds the threshold")
    args = ap.parse_args()

    old_kind, old = load(args.old)
    new_kind, new = load(args.new)
    if old_kind != new_kind:
        sys.exit(f"cannot compare a {old_kind} JSON against a {new_kind} JSON")

    print(f"comparing {old_kind} reports (threshold {args.threshold:.0%}):")
    print(f"  OLD {provenance_line(old)}")
    print(f"  NEW {provenance_line(new)}")
    d = Differ(args.threshold)
    {"anatomy": diff_anatomy, "prof": diff_prof, "sight": diff_sight}[old_kind](
        old, new, d)

    if d.shifts:
        print(f"\n{d.shifts} composition shift(s) beyond the threshold")
        return 1 if args.fail_on_shift else 0
    print("\nno composition shifts beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
