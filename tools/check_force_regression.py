#!/usr/bin/env python3
"""Compare a fresh bench_force_micro JSON against a checked-in baseline.

Usage: check_force_regression.py BASELINE.json NEW.json [--tolerance FRAC]

Micro rows are matched on (bench, list_len, path) and the
interactions_per_sec throughput of each matched pair is compared; the check
fails if the batched kernel regresses by more than --tolerance (fractional,
default 0.30 — generous because shared CI runners are noisy; the tracked
number is the checked-in BENCH_force.json regenerated on a quiet machine).

The force_e2e_summary row is the headline: it times the full challenge/SPACE
experiment as {walk,kernel} x {fibers,parallel} and reports the kernel,
parallel-backend and combined host-time speedups. The check fails if the new
combined speedup falls below (baseline) * (1 - tolerance) or if the run
reports virtual_results_identical != "yes" — bit-identical virtual results
are the license for both fast paths (see docs/PERF.md and docs/MODEL.md).
"""

import argparse
import json
import sys


def row_key(row):
    return (
        row.get("bench"),
        row.get("list_len"),
        row.get("path"),
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="maximum allowed fractional drop (default 0.30)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base_rows = json.load(f)
    with open(args.new) as f:
        new_rows = json.load(f)

    baseline = {row_key(r): r for r in base_rows if r.get("bench") == "force_micro"}
    base_e2e = next(
        (r for r in base_rows if r.get("bench") == "force_e2e_summary"), None)

    failed = False
    compared = 0
    for row in new_rows:
        if row.get("bench") == "force_e2e_summary":
            if row.get("virtual_results_identical") != "yes":
                print("FAIL: fast paths and their oracles diverged")
                return 1
            cur = row["speedup_combined"]
            status = "ok"
            if base_e2e is not None:
                old = base_e2e["speedup_combined"]
                if cur < old * (1.0 - args.tolerance):
                    status = "REGRESSION"
                    failed = True
                print(f"     e2e: {old:12.2f} -> {cur:12.2f} x combined speedup "
                      f"(kernel {row['speedup_kernel']:.2f}x, "
                      f"parallel {row['speedup_parallel']:.2f}x) {status}")
            else:
                print(f"     e2e: {cur:12.2f}x combined speedup (no baseline row)")
            compared += 1
        if row.get("bench") != "force_micro":
            continue
        base = baseline.get(row_key(row))
        if base is None:
            print(f"skip (no baseline row): {row_key(row)}")
            continue
        compared += 1
        old = base["interactions_per_sec"]
        cur = row["interactions_per_sec"]
        change = (cur - old) / old
        status = "ok"
        if row.get("path") == "batched" and change < -args.tolerance:
            status = "REGRESSION"
            failed = True
        print(f"{row['list_len']:>10}/{row['path']:<8}: "
              f"{old:14.0f} -> {cur:14.0f} interactions/s ({change:+.1%}) {status}")

    if compared == 0:
        print("FAIL: no comparable force rows found")
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
