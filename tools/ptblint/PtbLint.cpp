// ptblint — Clang AST engine.
//
// Static enforcement of the simulator's determinism and observer-purity
// invariants (see docs/LINT.md and the check catalogue in ptblint.py, which
// is the portable reference engine). This binary implements the same checks
// on the real AST instead of a lexical scan: types are resolved, so
// `for (auto& kv : waiters)` is flagged because `waiters` *is* an
// std::unordered_map, not because its name appeared near one.
//
// Both engines share:
//   - the check ids and directory policy,
//   - the suppression syntax  // ptblint: allow(<check>) -- <reason>
//     (a reasonless allow suppresses nothing and is itself a finding),
//   - the fixture policy override  // ptblint-path: <virtual path>,
//   - the JSON schema (schema_version 1); "engine" distinguishes them.
//
// tests/lint/run_lint_tests.py runs the same fixture oracle against either
// engine, so the two cannot drift silently.
//
// Build: -DPTB_BUILD_LINT=ON with the Clang CMake packages installed
// (llvm-dev + libclang-dev on Debian/Ubuntu). Tested against LLVM/Clang 14;
// only stable LibTooling API is used.

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/Diagnostic.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/FormatVariadic.h"
#include "llvm/Support/JSON.h"
#include "llvm/Support/MemoryBuffer.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

using namespace clang;
using namespace clang::ast_matchers;
using clang::tooling::ClangTool;
using clang::tooling::FixedCompilationDatabase;

namespace {

// --- policy (keep in sync with ptblint.py) ---------------------------------

const char *kDeterministicDirs[] = {"src/sim", "src/mem", "src/treebuild",
                                    "src/bh", "src/rt", "src/platform"};
const char *kObserverDirs[] = {"src/trace", "src/race", "src/prof",
                               "src/sight", "src/anatomy"};
const char *kBuilderDirs[] = {"src/treebuild"};
const char *kMemDir = "src/mem";

const std::pair<const char *, const char *> kChecks[] = {
    {"addr-stream", "host address formatted into observable output"},
    {"decorator-latency", "MemModel decorator perturbs the forwarded latency"},
    {"observer-mutation", "observer layer mutates simulation state"},
    {"ptr-key-order",
     "pointer-keyed ordered container (address-order iteration)"},
    {"raw-lock", "builder lock site bypasses detail::maybe_lock"},
    {"suppress-reason", "suppression without a reason string"},
    {"suppress-unknown", "suppression names an unknown check"},
    {"unordered-iter", "iteration over an unordered container"},
    {"wall-clock", "host time/entropy source in deterministic code"},
};

const char *kLatencyHooks[] = {
    "on_read",          "on_write",       "on_rmw",
    "on_acquire",       "on_release",     "on_barrier_arrive",
    "on_barrier_depart", "on_atomic",     "on_read_shared",
    "on_read_shared_span",
};

bool isKnownCheck(llvm::StringRef Name) {
  for (const auto &C : kChecks)
    if (Name == C.first)
      return true;
  return false;
}

bool isLatencyHook(llvm::StringRef Name) {
  for (const char *H : kLatencyHooks)
    if (Name == H)
      return true;
  return false;
}

bool pathInDirs(llvm::StringRef Path, llvm::ArrayRef<const char *> Dirs) {
  for (const char *D : Dirs)
    if (Path == D || Path.startswith((llvm::Twine(D) + "/").str()))
      return true;
  return false;
}

// --- findings & per-file lexical context -----------------------------------

struct Finding {
  std::string Check;
  std::string File; // repo-relative real path (not the policy override)
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Message;
  bool Suppressed = false;
  std::string Reason;
};

struct Suppression {
  std::vector<std::string> Checks;
  std::string Reason; // empty == reasonless
  unsigned Line = 0;   // line carrying the directive
  unsigned Target = 0; // line the suppression applies to
};

struct FileCtx {
  std::string RealPath;
  std::string RelPath;
  std::string PolicyPath; // RelPath unless a ptblint-path override is present
  std::vector<Suppression> Sups;
};

// Comment/string stripper: mirrors strip_code() in ptblint.py. Only used to
// decide whether a directive line carries real code (same-line suppression)
// or is comment-only (applies to the next code line).
std::string stripCode(llvm::StringRef Text) {
  enum State { Normal, Line, Block, Str, Chr, Raw };
  std::string Out(Text.begin(), Text.end());
  State S = Normal;
  std::string RawDelim;
  size_t N = Text.size();
  for (size_t I = 0; I < N; ++I) {
    char C = Text[I];
    char Nxt = I + 1 < N ? Text[I + 1] : '\0';
    switch (S) {
    case Normal:
      if (C == '/' && Nxt == '/') {
        S = Line;
        Out[I] = Out[I + 1] = ' ';
        ++I;
      } else if (C == '/' && Nxt == '*') {
        S = Block;
        Out[I] = Out[I + 1] = ' ';
        ++I;
      } else if (C == 'R' && Nxt == '"' &&
                 (I == 0 || (!isalnum(Text[I - 1]) && Text[I - 1] != '_'))) {
        size_t P = I + 2;
        RawDelim.clear();
        while (P < N && Text[P] != '(' && P - I - 2 < 16)
          RawDelim += Text[P++];
        if (P < N && Text[P] == '(') {
          for (size_t J = I; J <= P; ++J)
            Out[J] = ' ';
          I = P;
          S = Raw;
        }
      } else if (C == '"') {
        S = Str;
        Out[I] = ' ';
      } else if (C == '\'') {
        S = Chr;
        Out[I] = ' ';
      }
      break;
    case Line:
      if (C == '\n')
        S = Normal;
      else
        Out[I] = ' ';
      break;
    case Block:
      if (C == '*' && Nxt == '/') {
        Out[I] = Out[I + 1] = ' ';
        ++I;
        S = Normal;
      } else if (C != '\n')
        Out[I] = ' ';
      break;
    case Str:
      if (C == '\\' && Nxt != '\0') {
        Out[I] = ' ';
        if (Nxt != '\n')
          Out[I + 1] = ' ';
        ++I;
      } else if (C == '"')
        S = Normal, Out[I] = ' ';
      else if (C != '\n')
        Out[I] = ' ';
      break;
    case Chr:
      if (C == '\\' && Nxt != '\0') {
        Out[I] = ' ';
        if (Nxt != '\n')
          Out[I + 1] = ' ';
        ++I;
      } else if (C == '\'')
        S = Normal, Out[I] = ' ';
      else if (C != '\n')
        Out[I] = ' ';
      break;
    case Raw: {
      std::string End = ")" + RawDelim + "\"";
      if (Text.substr(I).startswith(End)) {
        for (size_t J = I; J < I + End.size(); ++J)
          Out[J] = ' ';
        I += End.size() - 1;
        S = Normal;
      } else if (C != '\n')
        Out[I] = ' ';
      break;
    }
    }
  }
  return Out;
}

void splitLines(llvm::StringRef Text, std::vector<llvm::StringRef> &Out) {
  Text.split(Out, '\n', /*MaxSplit=*/-1, /*KeepEmpty=*/true);
}

// Parses // ptblint: allow(...) -- reason  and  // ptblint-path: <p>
// directives out of the raw text. Mirrors parse_directives() in ptblint.py.
void parseDirectives(llvm::StringRef Text, FileCtx &Ctx) {
  std::string Code = stripCode(Text);
  std::vector<llvm::StringRef> RawLines, CodeLines;
  splitLines(Text, RawLines);
  splitLines(Code, CodeLines);

  for (size_t I = 0; I < RawLines.size(); ++I) {
    llvm::StringRef L = RawLines[I];

    size_t P = L.find("ptblint-path:");
    if (P != llvm::StringRef::npos) {
      llvm::StringRef Rest = L.substr(P + strlen("ptblint-path:")).ltrim();
      size_t End = Rest.find_first_of(" \t\r");
      Ctx.PolicyPath = Rest.substr(0, End).str();
    }

    size_t A = L.find("ptblint:");
    if (A == llvm::StringRef::npos)
      continue;
    llvm::StringRef Rest = L.substr(A + strlen("ptblint:")).ltrim();
    if (!Rest.startswith("allow("))
      continue;
    Rest = Rest.drop_front(strlen("allow("));
    size_t Close = Rest.find(')');
    if (Close == llvm::StringRef::npos)
      continue;

    Suppression Sup;
    llvm::SmallVector<llvm::StringRef, 4> Names;
    Rest.take_front(Close).split(Names, ',', -1, /*KeepEmpty=*/false);
    for (llvm::StringRef Nm : Names)
      if (!Nm.trim().empty())
        Sup.Checks.push_back(Nm.trim().str());

    llvm::StringRef Tail = Rest.drop_front(Close + 1).ltrim();
    if (Tail.startswith("--")) {
      llvm::StringRef R = Tail.drop_front(2).trim();
      if (!R.empty())
        Sup.Reason = R.str();
    }

    Sup.Line = static_cast<unsigned>(I + 1);
    Sup.Target = Sup.Line;
    if (I < CodeLines.size() && CodeLines[I].trim().empty()) {
      // Comment-only line: the suppression applies to the next code line.
      for (size_t J = I + 1; J < CodeLines.size(); ++J) {
        if (!CodeLines[J].trim().empty()) {
          Sup.Target = static_cast<unsigned>(J + 1);
          break;
        }
      }
    }
    Ctx.Sups.push_back(std::move(Sup));
  }
}

// --- the match callback -----------------------------------------------------

class Checker : public MatchFinder::MatchCallback {
public:
  Checker(std::vector<Finding> &Findings) : Findings(Findings) {}

  FileCtx *Ctx = nullptr; // the file currently being scanned

  void run(const MatchFinder::MatchResult &R) override {
    SM = R.SourceManager;
    AC = R.Context;

    if (const auto *TL = R.Nodes.getNodeAs<TypeLoc>("wc-type"))
      wallClockType(R, *TL);
    else if (const auto *CE = R.Nodes.getNodeAs<CallExpr>("wc-now"))
      wallClockNow(R, CE);
    else if (const auto *CE = R.Nodes.getNodeAs<CallExpr>("wc-call"))
      wallClockCall(R, CE);
    else if (const auto *TL = R.Nodes.getNodeAs<TypeLoc>("ptrkey"))
      ptrKey(R, *TL);
    else if (const auto *FR = R.Nodes.getNodeAs<CXXForRangeStmt>("uo-range"))
      unorderedRange(FR);
    else if (const auto *MC = R.Nodes.getNodeAs<CXXMemberCallExpr>("uo-begin"))
      unorderedBegin(MC);
    else if (const auto *CC = R.Nodes.getNodeAs<CXXConstCastExpr>("obs-cast"))
      observerCast(CC);
    else if (const auto *DD = R.Nodes.getNodeAs<DeclaratorDecl>("obs-decl"))
      observerDecl(DD);
    else if (const auto *MD = R.Nodes.getNodeAs<CXXMethodDecl>("deco"))
      decorator(MD);
    else if (const auto *DE =
                 R.Nodes.getNodeAs<CXXDependentScopeMemberExpr>("lock-dep"))
      rawLock(DE->getMemberLoc(), DE->getMember().getAsString());
    else if (const auto *MC = R.Nodes.getNodeAs<CXXMemberCallExpr>("lock-mem"))
      resolvedLock(MC);
    else if (const auto *SL = R.Nodes.getNodeAs<StringLiteral>("addr-plit"))
      addrLiteral(SL);
    else if (const auto *OC =
                 R.Nodes.getNodeAs<CXXOperatorCallExpr>("addr-stream"))
      addrStream(R, OC);
  }

private:
  std::vector<Finding> &Findings;
  const SourceManager *SM = nullptr;
  ASTContext *AC = nullptr;
  // Instantiations and sugared/desugared TypeLocs revisit the same written
  // source; one (check, line, detail) key per site keeps counts identical to
  // the reference engine.
  std::set<std::tuple<std::string, std::string, unsigned, std::string>> Seen;

  bool mainFileLoc(SourceLocation Loc, unsigned &Line, unsigned &Col) {
    if (Loc.isInvalid())
      return false;
    SourceLocation E = SM->getExpansionLoc(Loc);
    if (!SM->isInMainFile(E))
      return false;
    Line = SM->getExpansionLineNumber(E);
    Col = SM->getExpansionColumnNumber(E);
    return true;
  }

  void report(llvm::StringRef Check, SourceLocation Loc, llvm::StringRef Msg,
              llvm::StringRef DedupDetail = "") {
    unsigned Line = 0, Col = 0;
    if (!mainFileLoc(Loc, Line, Col))
      return;
    if (!Seen.insert({Check.str(), Ctx->RelPath, Line, DedupDetail.str()})
             .second)
      return;
    Findings.push_back(
        {Check.str(), Ctx->RelPath, Line, Col, Msg.str(), false, ""});
  }

  bool inDet() const {
    return pathInDirs(Ctx->PolicyPath, kDeterministicDirs);
  }
  bool inObs() const { return pathInDirs(Ctx->PolicyPath, kObserverDirs); }
  bool inBuilder() const { return pathInDirs(Ctx->PolicyPath, kBuilderDirs); }

  static llvm::StringRef stdRecordName(QualType T) {
    if (T.isNull())
      return "";
    const auto *RD = T.getNonReferenceType()
                         .getCanonicalType()
                         ->getAsCXXRecordDecl();
    if (!RD || !RD->isInStdNamespace())
      return "";
    return RD->getName();
  }

  // wall-clock ---------------------------------------------------------------

  void wallClockType(const MatchFinder::MatchResult &R, TypeLoc TL) {
    if (!inDet())
      return;
    const auto *ND = R.Nodes.getNodeAs<NamedDecl>("clock");
    if (!ND)
      return;
    std::string Name = ND->getNameAsString();
    report("wall-clock", TL.getBeginLoc(),
           "std::" + (Name == "random_device"
                          ? Name + " is host entropy"
                          : "chrono::" + Name + " is host wall time") +
               "; deterministic code must take time from the virtual clock "
               "and entropy from ptb::Rng(seed)",
           Name);
  }

  void wallClockNow(const MatchFinder::MatchResult &R, const CallExpr *CE) {
    if (!inDet())
      return;
    const auto *MD = R.Nodes.getNodeAs<CXXMethodDecl>("clockfn");
    if (!MD)
      return;
    // Dedup key is the clock class name: `steady_clock::now()` also fires
    // the typeLoc matcher on the qualifier, and must count once.
    std::string Name = MD->getParent()->getNameAsString();
    report("wall-clock", CE->getBeginLoc(),
           "std::chrono::" + Name + "::now() is host wall time; "
               "deterministic code must take time from the virtual clock",
           Name);
  }

  void wallClockCall(const MatchFinder::MatchResult &R, const CallExpr *CE) {
    if (!inDet())
      return;
    const auto *FD = R.Nodes.getNodeAs<FunctionDecl>("hostfn");
    if (!FD)
      return;
    std::string Name = FD->getNameAsString();
    report("wall-clock", CE->getBeginLoc(),
           Name + "() reads host time/state; deterministic code must take "
                  "time from the virtual clock and entropy from "
                  "ptb::Rng(seed)",
           Name);
  }

  // ptr-key-order ------------------------------------------------------------

  void ptrKey(const MatchFinder::MatchResult &R, TypeLoc TL) {
    if (!inDet())
      return;
    const auto *Spec =
        R.Nodes.getNodeAs<ClassTemplateSpecializationDecl>("spec");
    if (!Spec)
      return;
    const TemplateArgumentList &Args = Spec->getTemplateArgs();
    if (Args.size() == 0 || Args[0].getKind() != TemplateArgument::Type)
      return;
    QualType Key = Args[0].getAsType();
    if (!Key->isPointerType() || Key->isFunctionPointerType())
      return;
    llvm::StringRef Container = Spec->getName(); // "map" or "set"
    unsigned CmpIdx = Container == "map" ? 2 : 1;
    if (Args.size() > CmpIdx &&
        Args[CmpIdx].getKind() == TemplateArgument::Type) {
      // Explicit deterministic comparator => fine. The AST always carries
      // the defaulted std::less<Key>, so "default" means exactly that type.
      QualType Cmp = Args[CmpIdx].getAsType();
      const auto *CmpSpec = llvm::dyn_cast_or_null<
          ClassTemplateSpecializationDecl>(Cmp->getAsCXXRecordDecl());
      bool DefaultLess = CmpSpec && CmpSpec->isInStdNamespace() &&
                         CmpSpec->getName() == "less" &&
                         CmpSpec->getTemplateArgs().size() == 1 &&
                         CmpSpec->getTemplateArgs()[0].getKind() ==
                             TemplateArgument::Type &&
                         AC->hasSameType(
                             CmpSpec->getTemplateArgs()[0].getAsType(), Key);
      if (!DefaultLess)
        return;
    }
    report("ptr-key-order", TL.getBeginLoc(),
           ("std::" + Container + " keyed by a raw pointer iterates in "
                                  "allocation-address order, which varies "
                                  "run to run; key by a stable id or pass an "
                                  "explicit deterministic comparator")
               .str(),
           Container);
  }

  // unordered-iter -----------------------------------------------------------

  void unorderedRange(const CXXForRangeStmt *FR) {
    if (!inDet() && !inObs())
      return;
    const Expr *Range = FR->getRangeInit();
    if (!Range)
      return;
    llvm::StringRef Name = stdRecordName(Range->getType());
    if (!Name.startswith("unordered_"))
      return;
    report("unordered-iter", FR->getBeginLoc(),
           ("range-for over a std::" + Name + ": iteration order is "
                                              "hash/rehash dependent; sort "
                                              "into a total order first, or "
                                              "suppress with a reason proving "
                                              "the fold is order-insensitive")
               .str());
  }

  void unorderedBegin(const CXXMemberCallExpr *MC) {
    if (!inDet() && !inObs())
      return;
    const Expr *Obj = MC->getImplicitObjectArgument();
    if (!Obj)
      return;
    llvm::StringRef Name = stdRecordName(Obj->getType());
    if (!Name.startswith("unordered_"))
      return;
    report("unordered-iter", MC->getExprLoc(),
           ("iterator over a std::" + Name + ": order is hash/rehash "
                                             "dependent")
               .str());
  }

  // observer-mutation ----------------------------------------------------------

  void observerCast(const CXXConstCastExpr *CC) {
    if (!inObs())
      return;
    report("observer-mutation", CC->getBeginLoc(),
           "const_cast in an observer layer: the hook arguments are const "
           "because observers must not write into simulation-owned memory");
  }

  void observerDecl(const DeclaratorDecl *DD) {
    if (!inObs())
      return;
    QualType T = DD->getType();
    QualType Pointee;
    if (T->isPointerType())
      Pointee = T->getPointeeType();
    else if (T->isLValueReferenceType())
      Pointee = T.getNonReferenceType();
    else
      return;
    if (Pointee.isNull() || Pointee.isConstQualified())
      return;
    const auto *RD = Pointee->getAsCXXRecordDecl();
    if (!RD)
      return;
    llvm::StringRef Name = RD->getName();
    if (Name != "SimContext" && Name != "SimProc")
      return;
    SourceLocation Loc = DD->getTypeSpecStartLoc();
    if (Loc.isInvalid())
      Loc = DD->getLocation();
    report("observer-mutation", Loc,
           "non-const SimContext/SimProc handle in an observer layer: "
           "observers are pure — they may only read state the simulator "
           "already computed (take `const SimContext&`)",
           DD->getNameAsString());
  }

  // decorator-latency ----------------------------------------------------------

  // getName() asserts on non-identifier names (constructors, destructors,
  // operators); every name probe below goes through this instead.
  static llvm::StringRef identName(const NamedDecl *ND) {
    if (!ND || !ND->getDeclName().isIdentifier())
      return "";
    return ND->getName();
  }

  static void collectStmts(const Stmt *S,
                           llvm::SmallVectorImpl<const Stmt *> &Out) {
    if (!S)
      return;
    Out.push_back(S);
    for (const Stmt *C : S->children())
      collectStmts(C, Out);
  }

  // Does this expression name the decorator's inner-model handle? Handles a
  // raw `MemModel* inner_`, a smart pointer (`inner_->` goes through
  // operator->), and a plain member or local named inner_/inner.
  static bool namesInner(const Expr *E) {
    if (!E)
      return false;
    E = E->IgnoreParenImpCasts();
    if (const auto *ME = llvm::dyn_cast<MemberExpr>(E))
      return identName(ME->getMemberDecl()) == "inner_" ||
             identName(ME->getMemberDecl()) == "inner";
    if (const auto *DR = llvm::dyn_cast<DeclRefExpr>(E))
      return identName(DR->getDecl()) == "inner_" ||
             identName(DR->getDecl()) == "inner";
    if (const auto *OC = llvm::dyn_cast<CXXOperatorCallExpr>(E))
      if (OC->getOperator() == OO_Arrow && OC->getNumArgs() >= 1)
        return namesInner(OC->getArg(0));
    return false;
  }

  const Stmt *semanticParent(const Stmt *S, const VarDecl *&VD) {
    VD = nullptr;
    DynTypedNode Node = DynTypedNode::create(*S);
    for (int Depth = 0; Depth < 32; ++Depth) {
      auto Parents = AC->getParents(Node);
      if (Parents.empty())
        return nullptr;
      const DynTypedNode &P = Parents[0];
      if (const auto *V = P.get<VarDecl>()) {
        VD = V;
        return nullptr;
      }
      if (const auto *PS = P.get<Stmt>()) {
        if (llvm::isa<ImplicitCastExpr>(PS) || llvm::isa<ParenExpr>(PS) ||
            llvm::isa<ExprWithCleanups>(PS) ||
            llvm::isa<MaterializeTemporaryExpr>(PS) ||
            llvm::isa<CXXBindTemporaryExpr>(PS) ||
            llvm::isa<ConstantExpr>(PS) || llvm::isa<DeclStmt>(PS)) {
          if (const auto *DS = llvm::dyn_cast<DeclStmt>(PS)) {
            if (DS->isSingleDecl())
              if (const auto *V = llvm::dyn_cast<VarDecl>(DS->getSingleDecl())) {
                VD = V;
                return nullptr;
              }
            return PS;
          }
          Node = P;
          continue;
        }
        return PS;
      }
      return nullptr;
    }
    return nullptr;
  }

  static bool refersToVar(const Stmt *S, const VarDecl *VD) {
    if (!S)
      return false;
    llvm::SmallVector<const Stmt *, 32> All;
    collectStmts(S, All);
    for (const Stmt *X : All)
      if (const auto *DR = llvm::dyn_cast<DeclRefExpr>(X))
        if (DR->getDecl() == VD)
          return true;
    return false;
  }

  void decorator(const CXXMethodDecl *MD) {
    if (Ctx->PolicyPath.rfind(std::string(kMemDir) + "/", 0) == 0)
      return;
    if (!llvm::StringRef(Ctx->PolicyPath).startswith("src/"))
      return;
    if (!isLatencyHook(identName(MD)))
      return;
    const Stmt *Body = MD->getBody();
    if (!Body)
      return;

    llvm::SmallVector<const Stmt *, 64> All;
    collectStmts(Body, All);

    llvm::SmallVector<const CXXMemberCallExpr *, 4> Forwards;
    bool HasReturn = false;
    for (const Stmt *S : All) {
      if (llvm::isa<ReturnStmt>(S))
        HasReturn = true;
      const auto *MC = llvm::dyn_cast<CXXMemberCallExpr>(S);
      if (!MC)
        continue;
      const auto *Callee =
          llvm::dyn_cast_or_null<MemberExpr>(MC->getCallee()->IgnoreParens());
      if (!Callee || !identName(Callee->getMemberDecl()).startswith("on_"))
        continue;
      if (namesInner(Callee->getBase()))
        Forwards.push_back(MC);
    }

    if (Forwards.empty()) {
      report("decorator-latency", MD->getBeginLoc(),
             (MD->getName() + " in a MemModel decorator never forwards to "
                              "the inner model: every access path must "
                              "return the inner latency unmodified "
                              "(synthesizing latency perturbs virtual time)")
                 .str(),
             MD->getNameAsString());
      return;
    }

    for (const CXXMemberCallExpr *Call : Forwards) {
      const VarDecl *VD = nullptr;
      const Stmt *Parent = semanticParent(Call, VD);

      if (VD) {
        checkTrackedVar(MD, Call, VD, All);
        continue;
      }
      if (!Parent)
        continue;
      if (llvm::isa<ReturnStmt>(Parent))
        continue; // `return inner_->on_x(...);` — the pure-forward idiom
      if (const auto *BO = llvm::dyn_cast<BinaryOperator>(Parent)) {
        if (BO->isAssignmentOp() && !BO->isCompoundAssignmentOp()) {
          // `lat = inner_->on_x(...)`: same tracking as an init.
          if (const auto *DR = llvm::dyn_cast<DeclRefExpr>(
                  BO->getLHS()->IgnoreParenImpCasts()))
            if (const auto *V = llvm::dyn_cast<VarDecl>(DR->getDecl())) {
              checkTrackedVar(MD, Call, V, All, BO);
              continue;
            }
        }
        report("decorator-latency", Call->getBeginLoc(),
               "arithmetic on the latency forwarded from the inner model: "
               "decorators must return it unmodified");
        continue;
      }
      if (llvm::isa<CompoundStmt>(Parent) && HasReturn) {
        report("decorator-latency", Call->getBeginLoc(),
               "result of the inner-model hook is discarded while the hook "
               "returns something else: the inner latency must be the "
               "returned value");
        continue;
      }
      // Anything else (passed as an argument, folded into a recorder call,
      // ...) is out of scope for this check, as in the reference engine.
    }
  }

  void checkTrackedVar(const CXXMethodDecl *MD, const CXXMemberCallExpr *Call,
                       const VarDecl *VD,
                       llvm::ArrayRef<const Stmt *> All,
                       const Stmt *InitAssign = nullptr) {
    (void)Call;
    for (const Stmt *S : All) {
      if (S == InitAssign)
        continue;
      if (const auto *BO = llvm::dyn_cast<BinaryOperator>(S)) {
        if (!BO->isAssignmentOp())
          continue;
        const auto *DR =
            llvm::dyn_cast<DeclRefExpr>(BO->getLHS()->IgnoreParenImpCasts());
        if (DR && DR->getDecl() == VD) {
          report("decorator-latency", BO->getBeginLoc(),
                 ("`" + VD->getName() + "` holds the latency forwarded from "
                                        "the inner model but is modified "
                                        "before being returned")
                     .str(),
                 VD->getNameAsString());
          return;
        }
      } else if (const auto *UO = llvm::dyn_cast<UnaryOperator>(S)) {
        if (!UO->isIncrementDecrementOp())
          continue;
        const auto *DR = llvm::dyn_cast<DeclRefExpr>(
            UO->getSubExpr()->IgnoreParenImpCasts());
        if (DR && DR->getDecl() == VD) {
          report("decorator-latency", UO->getBeginLoc(),
                 ("`" + VD->getName() + "` holds the latency forwarded from "
                                        "the inner model but is modified "
                                        "before being returned")
                     .str(),
                 VD->getNameAsString());
          return;
        }
      }
    }
    // Unmodified; any return mentioning the variable must be exactly it.
    for (const Stmt *S : All) {
      const auto *RS = llvm::dyn_cast<ReturnStmt>(S);
      if (!RS || !RS->getRetValue())
        continue;
      const Expr *RV = RS->getRetValue()->IgnoreParenImpCasts();
      if (const auto *DR = llvm::dyn_cast<DeclRefExpr>(RV))
        if (DR->getDecl() == VD)
          continue;
      if (refersToVar(RV, VD)) {
        report("decorator-latency", RS->getBeginLoc(),
               ("return applies arithmetic to `" + VD->getName() + "`, the "
                                                                   "latency "
                                                                   "forwarded "
                                                                   "from the "
                                                                   "inner "
                                                                   "model")
                   .str(),
               VD->getNameAsString());
        return;
      }
    }
    (void)MD;
  }

  // raw-lock -------------------------------------------------------------------

  void rawLock(SourceLocation Loc, const std::string &Member) {
    if (!inBuilder())
      return;
    report("raw-lock", Loc,
           "direct ." + Member + "() in a builder: go through "
                                 "detail::maybe_lock/maybe_unlock so "
                                 "--elide-locks fault injection covers every "
                                 "synchronization site",
           Member);
  }

  void resolvedLock(const CXXMemberCallExpr *MC) {
    const auto *Callee =
        llvm::dyn_cast_or_null<MemberExpr>(MC->getCallee()->IgnoreParens());
    if (!Callee)
      return;
    rawLock(Callee->getMemberLoc(), Callee->getMemberDecl()->getNameAsString());
  }

  // addr-stream ----------------------------------------------------------------

  void addrLiteral(const StringLiteral *SL) {
    if (!inDet() && !inObs())
      return;
    if (SL->getCharByteWidth() != 1)
      return;
    if (!SL->getString().contains("%p"))
      return;
    report("addr-stream", SL->getBeginLoc(),
           "%p formats a host address into output; report a region+offset "
           "or a virtual-time intern id instead",
           "%p");
  }

  void addrStream(const MatchFinder::MatchResult &R,
                  const CXXOperatorCallExpr *OC) {
    if (!inDet() && !inObs())
      return;
    if (OC->getNumArgs() < 2)
      return;
    const Expr *Arg = OC->getArg(1)->IgnoreParenImpCasts();

    if (const auto *RC = llvm::dyn_cast<CXXReinterpretCastExpr>(Arg)) {
      std::string Dest = RC->getTypeAsWritten().getAsString();
      if (Dest.find("intptr_t") != std::string::npos) {
        report("addr-stream", Arg->getBeginLoc(),
               "streaming a pointer cast to an integer publishes a host "
               "address; report a region+offset or an intern id instead",
               "cast");
      }
      return;
    }

    QualType T = Arg->getType();
    if (!T->isPointerType())
      return;
    QualType Pointee = T->getPointeeType();
    if (Pointee->isAnyCharacterType() || Pointee->isFunctionType())
      return; // string data and iostream manipulators are not addresses
    report("addr-stream", Arg->getBeginLoc(),
           "a host pointer value is streamed into output and varies across "
           "processes under ASLR; report a region+offset or an intern id "
           "instead",
           "ptr");
    (void)R;
  }
};

void addMatchers(MatchFinder &Finder, Checker &CB) {
  // wall-clock: clock/entropy types by name, their ::now(), and the C-level
  // host time/state calls.
  Finder.addMatcher(
      typeLoc(loc(qualType(hasDeclaration(
                  namedDecl(hasAnyName("::std::chrono::steady_clock",
                                       "::std::chrono::system_clock",
                                       "::std::chrono::high_resolution_clock",
                                       "::std::random_device"))
                      .bind("clock")))),
              isExpansionInMainFile())
          .bind("wc-type"),
      &CB);
  Finder.addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("::std::chrono::steady_clock",
                                      "::std::chrono::system_clock",
                                      "::std::chrono::high_resolution_clock")))
                   .bind("clockfn")),
               isExpansionInMainFile())
          .bind("wc-now"),
      &CB);
  Finder.addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand",
                                              "::std::rand", "::std::srand",
                                              "::time", "::std::time",
                                              "::gettimeofday",
                                              "::clock_gettime", "::getrusage"))
                   .bind("hostfn")),
               isExpansionInMainFile())
          .bind("wc-call"),
      &CB);

  // ptr-key-order
  Finder.addMatcher(
      typeLoc(loc(qualType(hasDeclaration(
                  classTemplateSpecializationDecl(
                      hasAnyName("::std::map", "::std::set"))
                      .bind("spec")))),
              isExpansionInMainFile())
          .bind("ptrkey"),
      &CB);

  // unordered-iter
  Finder.addMatcher(
      cxxForRangeStmt(isExpansionInMainFile()).bind("uo-range"), &CB);
  Finder.addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
                        isExpansionInMainFile())
          .bind("uo-begin"),
      &CB);

  // observer-mutation
  Finder.addMatcher(cxxConstCastExpr(isExpansionInMainFile()).bind("obs-cast"),
                    &CB);
  Finder.addMatcher(declaratorDecl(isExpansionInMainFile()).bind("obs-decl"),
                    &CB);

  // decorator-latency: latency hooks of MemModel subclasses. The directory
  // policy (decorators live outside src/mem) is applied in the callback.
  Finder.addMatcher(
      cxxMethodDecl(isDefinition(),
                    ofClass(cxxRecordDecl(
                        isDerivedFrom(cxxRecordDecl(hasName("MemModel"))))),
                    isExpansionInMainFile())
          .bind("deco"),
      &CB);

  // raw-lock: both dependent (template builder code) and resolved member
  // calls; the maybe_lock/maybe_unlock gate bodies are the sanctioned sites.
  auto NotInGate = unless(
      hasAncestor(functionDecl(hasAnyName("maybe_lock", "maybe_unlock"))));
  Finder.addMatcher(
      cxxDependentScopeMemberExpr(
          anyOf(hasMemberName("lock"), hasMemberName("unlock")), NotInGate,
          isExpansionInMainFile())
          .bind("lock-dep"),
      &CB);
  Finder.addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("lock", "unlock"))),
                        NotInGate, isExpansionInMainFile())
          .bind("lock-mem"),
      &CB);

  // addr-stream
  Finder.addMatcher(
      stringLiteral(hasAncestor(callExpr()), isExpansionInMainFile())
          .bind("addr-plit"),
      &CB);
  Finder.addMatcher(cxxOperatorCallExpr(hasOverloadedOperatorName("<<"),
                                        isExpansionInMainFile())
                        .bind("addr-stream"),
                    &CB);
}

// --- driver -----------------------------------------------------------------

llvm::cl::OptionCategory Cat("ptblint options");
llvm::cl::opt<std::string> Root("root", llvm::cl::desc("repo root"),
                                llvm::cl::init(""), llvm::cl::cat(Cat));
llvm::cl::opt<std::string> JsonOut(
    "json", llvm::cl::desc("write machine-readable findings (\"-\" = stdout)"),
    llvm::cl::init(""), llvm::cl::cat(Cat));
llvm::cl::opt<bool> Quiet("quiet",
                          llvm::cl::desc("suppress the per-finding report"),
                          llvm::cl::init(false), llvm::cl::cat(Cat));
llvm::cl::opt<bool> ListChecks("list-checks", llvm::cl::desc("list check ids"),
                               llvm::cl::init(false), llvm::cl::cat(Cat));
llvm::cl::list<std::string>
    Inputs(llvm::cl::Positional, llvm::cl::desc("[files or directories...]"),
           llvm::cl::ZeroOrMore, llvm::cl::cat(Cat));

bool hasSourceExt(llvm::StringRef Path) {
  return Path.endswith(".cpp") || Path.endswith(".hpp") ||
         Path.endswith(".h") || Path.endswith(".cc");
}

int collectFiles(const std::string &RootPath,
                 std::vector<std::string> &Files) {
  std::vector<std::string> Paths(Inputs.begin(), Inputs.end());
  if (Paths.empty())
    Paths.push_back(RootPath + "/src");
  for (const std::string &P : Paths) {
    if (llvm::sys::fs::is_directory(P)) {
      std::error_code EC;
      for (llvm::sys::fs::recursive_directory_iterator It(P, EC), End;
           It != End && !EC; It.increment(EC)) {
        if (llvm::sys::fs::is_regular_file(It->path()) &&
            hasSourceExt(It->path()))
          Files.push_back(It->path());
      }
      if (EC) {
        llvm::errs() << "ptblint: cannot walk " << P << ": " << EC.message()
                     << "\n";
        return 2;
      }
    } else if (llvm::sys::fs::exists(P)) {
      Files.push_back(P);
    } else {
      llvm::errs() << "ptblint: no such path: " << P << "\n";
      return 2;
    }
  }
  std::sort(Files.begin(), Files.end());
  Files.erase(std::unique(Files.begin(), Files.end()), Files.end());
  return 0;
}

std::string relTo(const std::string &RootPath, const std::string &Path) {
  llvm::SmallString<256> AbsRoot(RootPath), Abs(Path);
  llvm::sys::fs::make_absolute(AbsRoot);
  llvm::sys::fs::make_absolute(Abs);
  llvm::sys::path::remove_dots(AbsRoot, /*remove_dot_dot=*/true);
  llvm::sys::path::remove_dots(Abs, /*remove_dot_dot=*/true);
  llvm::StringRef R(AbsRoot), A(Abs);
  if (A.startswith(R) && A.size() > R.size() && A[R.size()] == '/')
    return A.drop_front(R.size() + 1).str();
  return Path;
}

} // namespace

int main(int argc, const char **argv) {
  llvm::cl::HideUnrelatedOptions(Cat);
  llvm::cl::ParseCommandLineOptions(
      argc, argv,
      "ptblint (clang engine) — determinism/observer-purity lint for ptb\n");

  if (ListChecks) {
    for (const auto &C : kChecks)
      llvm::outs() << llvm::formatv("{0,-20} {1}\n", C.first, C.second);
    return 0;
  }

  std::string RootPath = Root.empty() ? "." : Root.getValue();
  std::vector<std::string> Files;
  if (int RC = collectFiles(RootPath, Files))
    return RC;
  if (Files.empty()) {
    llvm::errs() << "ptblint: no input files\n";
    return 2;
  }

  std::vector<std::string> Args = {"-std=c++20", "-xc++",
                                   "-I" + RootPath + "/src",
                                   "-Wno-everything", "-ferror-limit=0"};
  FixedCompilationDatabase DB(".", Args);

  std::vector<Finding> Findings;
  Checker CB(Findings);
  MatchFinder Finder;
  addMatchers(Finder, CB);
  IgnoringDiagConsumer Silencer;

  std::vector<FileCtx> Ctxs(Files.size());
  for (size_t I = 0; I < Files.size(); ++I) {
    FileCtx &Ctx = Ctxs[I];
    Ctx.RealPath = Files[I];
    Ctx.RelPath = relTo(RootPath, Files[I]);
    Ctx.PolicyPath = Ctx.RelPath;

    auto Buf = llvm::MemoryBuffer::getFile(Files[I]);
    if (!Buf) {
      llvm::errs() << "ptblint: cannot read " << Files[I] << "\n";
      return 2;
    }
    parseDirectives(Buf.get()->getBuffer(), Ctx);

    CB.Ctx = &Ctx;
    ClangTool Tool(DB, {Files[I]});
    Tool.setDiagnosticConsumer(&Silencer);
    // Parse errors are tolerated: fixtures and headers are scanned as
    // standalone TUs and the matchers run over whatever the recovering
    // parser produced. The python engine is the availability baseline; this
    // engine adds precision where the code parses.
    (void)Tool.run(clang::tooling::newFrontendActionFactory(&Finder).get());

    // Suppressions + the suppression meta-checks for this file.
    for (const Suppression &Sup : Ctx.Sups) {
      for (const std::string &C : Sup.Checks)
        if (!isKnownCheck(C))
          Findings.push_back({"suppress-unknown", Ctx.RelPath, Sup.Line, 1,
                              "allow(" + C + ") names an unknown check",
                              false, ""});
      if (Sup.Reason.empty()) {
        Findings.push_back(
            {"suppress-reason", Ctx.RelPath, Sup.Line, 1,
             "suppression without a reason: write `// ptblint: "
             "allow(<check>) -- <why this site is safe>` (a reasonless allow "
             "suppresses nothing)",
             false, ""});
        continue;
      }
      for (Finding &F : Findings) {
        if (F.File == Ctx.RelPath && F.Line == Sup.Target &&
            std::find(Sup.Checks.begin(), Sup.Checks.end(), F.Check) !=
                Sup.Checks.end()) {
          F.Suppressed = true;
          F.Reason = Sup.Reason;
        }
      }
    }
  }

  std::sort(Findings.begin(), Findings.end(),
            [](const Finding &A, const Finding &B) {
              return std::tie(A.File, A.Line, A.Check) <
                     std::tie(B.File, B.Line, B.Check);
            });
  size_t NumSup = 0;
  for (const Finding &F : Findings)
    NumSup += F.Suppressed ? 1 : 0;
  size_t NumUnsup = Findings.size() - NumSup;

  if (!Quiet) {
    for (const Finding &F : Findings)
      if (!F.Suppressed)
        llvm::outs() << F.File << ":" << F.Line << ":" << F.Col << ": ["
                     << F.Check << "] " << F.Message << "\n";
    llvm::outs() << "ptblint: " << Files.size() << " files, "
                 << Findings.size() << " findings (" << NumSup
                 << " suppressed, " << NumUnsup << " unsuppressed)\n";
  }

  if (!JsonOut.empty()) {
    llvm::json::Array Checks;
    for (const auto &C : kChecks)
      Checks.push_back(C.first);
    llvm::json::Array Items;
    llvm::json::Object ByCheck;
    for (const Finding &F : Findings) {
      Items.push_back(llvm::json::Object{
          {"check", F.Check},
          {"file", F.File},
          {"line", static_cast<int64_t>(F.Line)},
          {"col", static_cast<int64_t>(F.Col)},
          {"message", F.Message},
          {"suppressed", F.Suppressed},
          {"reason", F.Suppressed ? llvm::json::Value(F.Reason)
                                  : llvm::json::Value(nullptr)},
      });
      llvm::json::Object *Slot = ByCheck.getObject(F.Check);
      if (!Slot) {
        ByCheck[F.Check] =
            llvm::json::Object{{"total", 0}, {"suppressed", 0}};
        Slot = ByCheck.getObject(F.Check);
      }
      (*Slot)["total"] = Slot->getInteger("total").getValueOr(0) + 1;
      if (F.Suppressed)
        (*Slot)["suppressed"] =
            Slot->getInteger("suppressed").getValueOr(0) + 1;
    }
    llvm::json::Object Doc{
        {"tool", "ptblint"},
        {"schema_version", 1},
        {"engine", "clang"},
        {"root", RootPath},
        {"files_scanned", static_cast<int64_t>(Files.size())},
        {"checks", std::move(Checks)},
        {"findings", std::move(Items)},
        {"counts",
         llvm::json::Object{
             {"total", static_cast<int64_t>(Findings.size())},
             {"suppressed", static_cast<int64_t>(NumSup)},
             {"unsuppressed", static_cast<int64_t>(NumUnsup)},
             {"by_check", std::move(ByCheck)},
         }},
    };
    std::string Payload;
    llvm::raw_string_ostream SS(Payload);
    SS << llvm::formatv("{0:2}", llvm::json::Value(std::move(Doc)));
    SS.flush();
    Payload += "\n";
    if (JsonOut == "-") {
      llvm::outs() << Payload;
    } else {
      std::error_code EC;
      llvm::raw_fd_ostream OS(JsonOut, EC);
      if (EC) {
        llvm::errs() << "ptblint: cannot write " << JsonOut << ": "
                     << EC.message() << "\n";
        return 2;
      }
      OS << Payload;
    }
  }

  return NumUnsup ? 1 : 0;
}
