#!/usr/bin/env python3
"""ptblint — static enforcement of the simulator's determinism and
observer-purity invariants.

The repo's core contract is that virtual times and observer reports are
bit-identical across backends, processes, and platforms (docs/MODEL.md,
docs/PERF.md). This tool enforces the invariant catalogue at lint time
instead of waiting for the 5x6 equivalence matrix to diverge:

  wall-clock         deterministic code must not read host time or host
                     entropy (std::chrono::*_clock, rand, random_device, ...)
  ptr-key-order      ordered containers keyed by raw pointers iterate in
                     allocation-address order, which differs across runs
  unordered-iter     iteration over std::unordered_{map,set} feeds results in
                     hash/rehash order; every site must prove (in a
                     suppression reason) that the fold is order-insensitive
                     or re-sorted by a total key
  observer-mutation  observer layers (trace/race/prof/sight) are pure: no
                     const_cast, no non-const SimContext/SimProc access
  decorator-latency  MemModel decorators outside src/mem/ must return the
                     inner model's latency unmodified on every hook
  raw-lock           builder lock sites must go through detail::maybe_lock so
                     --elide-locks fault injection stays total
  suppress-reason    a suppression without a reason string is itself a finding
  suppress-unknown   a suppression naming an unknown check is a finding

Suppression syntax (same line, or a comment line directly above):

    // ptblint: allow(unordered-iter) -- commutative += fold into sums

A reasonless allow() does NOT suppress — it is reported, and so is the
finding it failed to suppress.

This is the portable engine (stdlib Python, lexical but comment/string-aware
with real scope tracking). `tools/ptblint/PtbLint.cpp` is the Clang
AST-matcher implementation of the same catalogue, built with
-DPTB_BUILD_LINT=ON where Clang dev packages exist; both emit the same JSON
schema and honour the same suppressions, so CI and the fixture tests can use
whichever is available (see docs/LINT.md).

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

# --- policy: which checks apply where (paths relative to the repo root) -----

DETERMINISTIC_DIRS = ("src/sim", "src/mem", "src/treebuild", "src/bh", "src/rt",
                      "src/platform")
OBSERVER_DIRS = ("src/trace", "src/race", "src/prof", "src/sight", "src/anatomy")
BUILDER_DIRS = ("src/treebuild",)
MEM_DIR = "src/mem"  # protocol models live here; decorators must not

CHECKS = {
    "wall-clock": "host time/entropy source in deterministic code",
    "ptr-key-order": "pointer-keyed ordered container (address-order iteration)",
    "unordered-iter": "iteration over an unordered container",
    "observer-mutation": "observer layer mutates simulation state",
    "decorator-latency": "MemModel decorator perturbs the forwarded latency",
    "raw-lock": "builder lock site bypasses detail::maybe_lock",
    "addr-stream": "host address formatted into observable output",
    "suppress-reason": "suppression without a reason string",
    "suppress-unknown": "suppression names an unknown check",
}

LATENCY_HOOKS = {
    "on_read", "on_write", "on_rmw", "on_acquire", "on_release",
    "on_barrier_arrive", "on_barrier_depart", "on_atomic",
    "on_read_shared", "on_read_shared_span",
}

WALLCLOCK_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?chrono\s*::\s*(system_clock|steady_clock|high_resolution_clock)\b"),
     "std::chrono::{0} is host wall time"),
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"),
     "{0}::now() is host wall time"),
    (re.compile(r"\b(?:std\s*::\s*)?(random_device)\b"), "std::{0} is host entropy"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?(rand)\s*\(\s*\)"),
     "C {0}() draws from hidden global state"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?(srand|gettimeofday|clock_gettime|getrusage)\s*\("),
     "{0} reads host time/state"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?(time)\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "{0}() is host wall time"),
]

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else"}


# --- comment/string-aware preprocessing -------------------------------------

def strip_code(text):
    """Returns `code`: text with comments, string and char literals replaced
    by spaces (newlines preserved), so pattern checks never fire on prose."""
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, STR, CHAR, RAW = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                # R"delim( ... )delim"
                j = i - 1
                while j >= 0 and text[j].isalnum():
                    j -= 1
                if i > 0 and text[i - 1] == "R" and (j < 0 or not text[j] == '"'):
                    m = re.match(r'R"([^(\s]*)\(', text[i - 1:i + 20])
                    if m:
                        state = RAW
                        raw_delim = ")" + m.group(1) + '"'
                        out[i] = " "
                        i += 1
                        continue
                state = STR
                out[i] = " "
                i += 1
                continue
            if c == "'":
                state = CHAR
                out[i] = " "
                i += 1
                continue
            i += 1
            continue
        if state == LINE:
            if c == "\n":
                state = NORMAL
            else:
                out[i] = " "
            i += 1
            continue
        if state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == STR:
            if c == "\\":
                out[i] = " "
                if nxt and nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                out[i] = " "
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == CHAR:
            if c == "\\":
                out[i] = " "
                if nxt and nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == "'":
                out[i] = " "
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == RAW:
            if text.startswith(raw_delim, i):
                for k in range(len(raw_delim)):
                    out[i + k] = " "
                i += len(raw_delim)
                state = NORMAL
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
    return "".join(out)


# --- scope tracking ---------------------------------------------------------

class Scope:
    __slots__ = ("name", "kind", "qualifier", "start", "end", "derives_memmodel")

    def __init__(self, name, kind, qualifier, start, derives_memmodel=False):
        self.name = name       # function/class name, or None for plain blocks
        self.kind = kind       # "function" | "class" | "block"
        self.qualifier = qualifier  # Foo for `Foo::bar(...)`, else None
        self.start = start     # offset of the opening brace
        self.end = None        # offset of the closing brace
        self.derives_memmodel = derives_memmodel

    def contains(self, offset):
        end = self.end if self.end is not None else 1 << 62
        return self.start <= offset <= end


QUAL_NAME_RE = re.compile(r"(?:([A-Za-z_]\w*)\s*::\s*)?([A-Za-z_~]\w*)\s*$")
CLASS_HEADER_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)")


def scan_scopes(code):
    """Brace-matching pass over comment-stripped code: records function and
    class scopes with their brace spans."""
    scopes = []
    stack = []
    header_start = 0
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c in ";}":
            header_start = i + 1
            if c == "}" and stack:
                sc = stack.pop()
                sc.end = i
            i += 1
            continue
        if c == "{":
            sc = classify_header(code[header_start:i], i)
            if sc.kind in ("function", "class"):
                scopes.append(sc)
            stack.append(sc)
            header_start = i + 1
            i += 1
            continue
        i += 1
    return scopes


def classify_header(header, brace_offset):
    """Decides what the brace following `header` opens."""
    h = header.strip()
    block = Scope(None, "block", None, brace_offset)
    if not h:
        return block
    # Aggregate/array initializers and braced return values.
    if re.search(r"[=]\s*$", h) or re.search(r"\breturn\b", h):
        return block
    if re.search(r"\b(?:class|struct|union|enum|namespace)\b", h) \
            and "(" not in h.split("::")[-1]:
        cm = CLASS_HEADER_RE.search(h)
        if cm and not re.search(r"\benum\b|\bnamespace\b", h):
            derives = re.search(r":\s*[^;{]*\bMemModel\b", h) is not None
            return Scope(cm.group(1), "class", None, brace_offset, derives)
        return block
    if "(" not in h:
        return block
    # Find the identifier (and optional Foo:: qualifier) before the first
    # top-level '(' — angle brackets from template headers are skipped.
    depth = 0
    first_paren = -1
    k = 0
    while k < len(h):
        ch = h[k]
        if ch in "<([":
            if ch == "(" and depth == 0:
                first_paren = k
                break
            depth += 1
        elif ch in ">)]":
            depth = max(0, depth - 1)
        k += 1
    if first_paren < 0:
        return block
    name_m = QUAL_NAME_RE.search(h[:first_paren])
    if not name_m:
        return block  # lambda `[...](...)` or similar
    qualifier, name = name_m.group(1), name_m.group(2)
    if name in CONTROL_KEYWORDS:
        return block
    return Scope(name, "function", qualifier, brace_offset)


def enclosing_scope(scopes, offset, kind):
    best = None
    for sc in scopes:
        if sc.kind == kind and sc.contains(offset):
            if best is None or sc.start > best.start:
                best = sc
    return best


def enclosing_function(scopes, offset):
    sc = enclosing_scope(scopes, offset, "function")
    return sc.name if sc else None


# --- suppression directives -------------------------------------------------

ALLOW_RE = re.compile(r"ptblint:\s*allow\(([^)]*)\)\s*(?:--\s*(\S.*))?")
PATH_RE = re.compile(r"ptblint-path:\s*(\S+)")


class Suppression:
    __slots__ = ("checks", "reason", "line", "target_line")

    def __init__(self, checks, reason, line, target_line):
        self.checks = checks
        self.reason = reason
        self.line = line              # 1-based line of the directive
        self.target_line = target_line  # 1-based line it suppresses


def parse_directives(raw_lines, code_lines):
    """Finds ptblint directives. A directive on a line with code applies to
    that line; a directive on a comment-only line applies to the next line
    carrying code."""
    sups = []
    vpath = None
    for idx, raw in enumerate(raw_lines):
        pm = PATH_RE.search(raw)
        if pm:
            vpath = pm.group(1)
        m = ALLOW_RE.search(raw)
        if not m:
            continue
        checks = [c.strip() for c in m.group(1).split(",") if c.strip()]
        reason = m.group(2).strip() if m.group(2) else None
        lineno = idx + 1
        if code_lines[idx].strip():
            target = lineno
        else:
            target = lineno
            for j in range(idx + 1, len(code_lines)):
                if code_lines[j].strip():
                    target = j + 1
                    break
        sups.append(Suppression(checks, reason, lineno, target))
    return sups, vpath


# --- the check engine -------------------------------------------------------

class Finding:
    def __init__(self, check, file, line, col, message):
        self.check = check
        self.file = file
        self.line = line
        self.col = col
        self.message = message
        self.suppressed = False
        self.reason = None

    def as_json(self):
        return {
            "check": self.check,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


class FileContext:
    def __init__(self, real_path, rel_path, text):
        self.real_path = real_path
        self.text = text
        self.code = strip_code(text)
        self.raw_lines = text.splitlines()
        self.code_lines = self.code.splitlines()
        self.sups, vpath = parse_directives(self.raw_lines, self.code_lines)
        self.policy_path = vpath if vpath else rel_path
        self.rel_path = rel_path
        self.scopes = scan_scopes(self.code)
        # Classes declared in THIS file as deriving from MemModel. Whether a
        # class is a decorator (outside src/mem) is decided by the policy
        # path of its declaration, so the global set carries that bit.
        self.memmodel_classes = {
            sc.name for sc in self.scopes
            if sc.kind == "class" and sc.derives_memmodel}
        # offset of the start of each line, for offset->line mapping
        self.line_offsets = []
        off = 0
        for ln in self.code.splitlines(keepends=True):
            self.line_offsets.append(off)
            off += len(ln)

    def in_dirs(self, dirs):
        return any(self.policy_path.startswith(d.rstrip("/") + "/")
                   or self.policy_path == d for d in dirs)

    def line_of_offset(self, off):
        lo, hi = 0, len(self.line_offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_offsets[mid] <= off:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1


def unordered_decl_names(ctx):
    """Identifiers declared with an unordered container type in this file."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(ctx.code):
        # angle-match from the '<'
        i = m.end() - 1
        depth = 0
        n = len(ctx.code)
        while i < n:
            c = ctx.code[i]
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = ctx.code[i + 1:i + 120]
        nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)", tail)
        if nm:
            names.add(nm.group(1))
    return names


def template_args(s):
    """Splits the inside of one <...> at top-level commas."""
    args, depth, cur = [], 0, []
    for c in s:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    if cur:
        args.append("".join(cur).strip())
    return args


def check_wall_clock(ctx, out):
    if not ctx.in_dirs(DETERMINISTIC_DIRS):
        return
    for idx, line in enumerate(ctx.code_lines):
        seen_spans = []
        for pat, msg in WALLCLOCK_PATTERNS:
            for m in pat.finditer(line):
                # `std::chrono::steady_clock::now()` matches both the type
                # and the ::now patterns: report each source once.
                if any(m.start() < e and s < m.end() for s, e in seen_spans):
                    continue
                seen_spans.append((m.start(), m.end()))
                out.append(Finding(
                    "wall-clock", ctx.rel_path, idx + 1, m.start() + 1,
                    msg.format(m.group(1)) +
                    "; deterministic code must take time from the virtual "
                    "clock and entropy from ptb::Rng(seed)"))


def check_ptr_key(ctx, out):
    if not ctx.in_dirs(DETERMINISTIC_DIRS):
        return
    for m in re.finditer(r"\bstd\s*::\s*(map|set)\s*<", ctx.code):
        i = m.end() - 1
        depth, n = 0, len(ctx.code)
        start = i + 1
        while i < n:
            c = ctx.code[i]
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        args = template_args(ctx.code[start:i])
        if not args:
            continue
        key = args[0]
        comparator_given = (m.group(1) == "map" and len(args) >= 3) or \
                           (m.group(1) == "set" and len(args) >= 2)
        if key.endswith("*") and not comparator_given:
            line = ctx.line_of_offset(m.start())
            out.append(Finding(
                "ptr-key-order", ctx.rel_path, line,
                m.start() - ctx.line_offsets[line - 1] + 1,
                f"std::{m.group(1)} keyed by a raw pointer iterates in "
                "allocation-address order, which varies run to run; key by a "
                "stable id or pass an explicit deterministic comparator"))


def check_unordered_iter(ctx, out, global_names):
    if not (ctx.in_dirs(DETERMINISTIC_DIRS) or ctx.in_dirs(OBSERVER_DIRS)):
        return
    names = global_names | unordered_decl_names(ctx)
    for idx, line in enumerate(ctx.code_lines):
        for fm in RANGE_FOR_RE.finditer(line):
            rest = line[fm.end():]
            cm = re.search(r":\s*([^)]*)", rest)
            if not cm:
                continue
            range_expr = cm.group(1)
            hit = None
            if "unordered_" in range_expr:
                hit = "an unordered container"
            else:
                for nm in names:
                    if re.search(r"(?:\.|->|\b)" + re.escape(nm) + r"\b", range_expr):
                        hit = f"`{nm}` (declared std::unordered_*)"
                        break
            if hit:
                out.append(Finding(
                    "unordered-iter", ctx.rel_path, idx + 1, fm.start() + 1,
                    f"range-for over {hit}: iteration order is hash/rehash "
                    "dependent; sort into a total order first, or suppress "
                    "with a reason proving the fold is order-insensitive"))
        for nm in names:
            bm = re.search(r"\b" + re.escape(nm) + r"\s*\.\s*(?:begin|cbegin)\s*\(", line)
            if bm:
                out.append(Finding(
                    "unordered-iter", ctx.rel_path, idx + 1, bm.start() + 1,
                    f"iterator over `{nm}` (declared std::unordered_*): order "
                    "is hash/rehash dependent"))


def check_observer(ctx, out):
    if not ctx.in_dirs(OBSERVER_DIRS):
        return
    for idx, line in enumerate(ctx.code_lines):
        m = re.search(r"\bconst_cast\b", line)
        if m:
            out.append(Finding(
                "observer-mutation", ctx.rel_path, idx + 1, m.start() + 1,
                "const_cast in an observer layer: the hook arguments are "
                "const because observers must not write into simulation-owned "
                "memory"))
        for m in re.finditer(r"\bSim(?:Context|Proc)\b", line):
            tail = line[m.end():]
            tm = re.match(r"\s*[&*]", tail)
            if not tm:
                continue
            before = line[:m.start()].rstrip()
            if before.endswith("const"):
                continue
            out.append(Finding(
                "observer-mutation", ctx.rel_path, idx + 1, m.start() + 1,
                "non-const SimContext/SimProc handle in an observer layer: "
                "observers are pure — they may only read state the simulator "
                "already computed (take `const SimContext&`)"))


def body_of(ctx, scope):
    end = scope.end if scope.end is not None else len(ctx.code)
    return ctx.code[scope.start + 1:end], scope.start + 1


INNER_CALL_RE = re.compile(r"\binner_?\s*->\s*(on_\w+)\s*\(")


def check_decorator(ctx, out, decorator_classes):
    if ctx.policy_path.startswith(MEM_DIR.rstrip("/") + "/"):
        return
    if not ctx.policy_path.startswith("src/"):
        return
    for sc in ctx.scopes:
        if sc.name not in LATENCY_HOOKS:
            continue
        # Whose hook is this? An explicit `Foo::on_x` qualifier (out-of-line
        # definition) or the enclosing class body. Only classes known to
        # derive from MemModel outside src/mem/ are decorators; a free
        # function that happens to be called on_read is not.
        owner = sc.qualifier
        if owner is None:
            cls = enclosing_scope(ctx.scopes, sc.start, "class")
            owner = cls.name if cls else None
        body, base = body_of(ctx, sc)
        inner_calls = list(INNER_CALL_RE.finditer(body))
        if owner not in decorator_classes and not inner_calls:
            continue
        line = ctx.line_of_offset(sc.start)
        if not inner_calls:
            out.append(Finding(
                "decorator-latency", ctx.rel_path, line, 1,
                f"{sc.name} in a MemModel decorator never forwards to the "
                "inner model: every access path must return the inner "
                "latency unmodified (synthesizing latency perturbs virtual "
                "time)"))
            continue
        for call in inner_calls:
            # Span of the full call expression.
            i = call.end() - 1
            depth = 0
            while i < len(body):
                if body[i] == "(":
                    depth += 1
                elif body[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            after = body[i + 1:i + 8].lstrip()
            before = body[:call.start()].rstrip()
            call_line = ctx.line_of_offset(base + call.start())
            if after[:2] in ("+=", "-=", "*=", "/=", "%="):
                pass  # handled by variable rules below
            elif after[:1] in "+-*/%":
                out.append(Finding(
                    "decorator-latency", ctx.rel_path, call_line, 1,
                    f"arithmetic on the latency forwarded from inner->"
                    f"{call.group(1)}: decorators must return it unmodified"))
                continue
            if before.endswith(("+", "-", "*", "/", "%")):
                out.append(Finding(
                    "decorator-latency", ctx.rel_path, call_line, 1,
                    f"arithmetic on the latency forwarded from inner->"
                    f"{call.group(1)}: decorators must return it unmodified"))
                continue
            # Discarded result: statement-position call in a latency hook.
            if (before.endswith((";", "{", "}")) or before == "") and \
                    re.search(r"\breturn\b", body):
                stmt_ret = re.match(r"\s*;", body[i + 1:])
                if stmt_ret:
                    out.append(Finding(
                        "decorator-latency", ctx.rel_path, call_line, 1,
                        f"result of inner->{call.group(1)} is discarded while "
                        "the hook returns something else: the inner latency "
                        "must be the returned value"))
                    continue
            # Assigned to a variable: that variable must not be modified.
            am = re.search(r"([A-Za-z_]\w*)\s*=\s*$", before)
            if am:
                var = am.group(1)
                rest = body[i + 1:]
                mod = re.search(
                    r"\b" + re.escape(var) + r"\s*(?:[+\-*/%]=|=(?!=)\s*(?!"
                    + re.escape(var) + r"\s*;))", rest)
                if mod:
                    out.append(Finding(
                        "decorator-latency", ctx.rel_path,
                        ctx.line_of_offset(base + i + 1 + mod.start()), 1,
                        f"`{var}` holds the latency forwarded from inner->"
                        f"{call.group(1)} but is modified before being "
                        "returned"))
                    continue
                ret = re.search(r"\breturn\b([^;]*)\b" + re.escape(var) + r"\b([^;]*);", rest)
                if ret and re.search(r"[+\-*/%]", ret.group(1) + ret.group(2)):
                    out.append(Finding(
                        "decorator-latency", ctx.rel_path,
                        ctx.line_of_offset(base + i + 1 + ret.start()), 1,
                        f"return applies arithmetic to `{var}`, the latency "
                        f"forwarded from inner->{call.group(1)}"))


def check_addr_stream(ctx, out):
    """Host addresses printed into reports/JSON vary across processes under
    ASLR, breaking the bit-identical-output contract (the class of bug PR 1
    fixed in HLRC addressing and the race reports' lock@0x fallback had)."""
    if not (ctx.in_dirs(DETERMINISTIC_DIRS) or ctx.in_dirs(OBSERVER_DIRS)):
        return
    for idx, raw in enumerate(ctx.raw_lines):
        code = ctx.code_lines[idx] if idx < len(ctx.code_lines) else ""
        if "(" in code:
            m = re.search(r'"(?:[^"\\]|\\.)*%p', raw)
            if m:
                out.append(Finding(
                    "addr-stream", ctx.rel_path, idx + 1, m.start() + 1,
                    "%p formats a host address into output; report a "
                    "region+offset or a virtual-time intern id instead"))
        m = re.search(r"<<\s*reinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\s*>", code)
        if m:
            out.append(Finding(
                "addr-stream", ctx.rel_path, idx + 1, m.start() + 1,
                "streaming a pointer cast to an integer publishes a host "
                "address; report a region+offset or an intern id instead"))
        for m in re.finditer(r"std\s*::\s*hex\s*<<\s*([A-Za-z_]\w*)\b", code):
            var = m.group(1)
            if re.search(r"\*\s*(?:const\s+)?" + re.escape(var) + r"\b", ctx.code) or \
                    re.search(r"\b" + re.escape(var) + r"\s*=\s*reinterpret_cast", ctx.code):
                out.append(Finding(
                    "addr-stream", ctx.rel_path, idx + 1, m.start() + 1,
                    f"`{var}` is pointer-derived and streamed in hex: host "
                    "addresses vary across processes under ASLR; report a "
                    "region+offset or an intern id instead"))


def check_raw_lock(ctx, out):
    if not ctx.in_dirs(BUILDER_DIRS):
        return
    for m in re.finditer(r"(?:\.|->)\s*(lock|unlock)\s*\(", ctx.code):
        fn = enclosing_function(ctx.scopes, m.start())
        if fn in ("maybe_lock", "maybe_unlock"):
            continue
        line = ctx.line_of_offset(m.start())
        out.append(Finding(
            "raw-lock", ctx.rel_path, line,
            m.start() - ctx.line_offsets[line - 1] + 1,
            f"direct .{m.group(1)}() in a builder: go through "
            "detail::maybe_lock/maybe_unlock so --elide-locks fault "
            "injection covers every synchronization site"))


def apply_suppressions(ctx, findings, out):
    """Marks findings suppressed, and emits the meta findings for bad
    suppressions."""
    for sup in ctx.sups:
        unknown = [c for c in sup.checks if c not in CHECKS]
        for c in unknown:
            out.append(Finding(
                "suppress-unknown", ctx.rel_path, sup.line, 1,
                f"allow({c}) names an unknown check; known checks: "
                + ", ".join(sorted(CHECKS))))
        if sup.reason is None:
            out.append(Finding(
                "suppress-reason", ctx.rel_path, sup.line, 1,
                "suppression without a reason: write `// ptblint: "
                "allow(<check>) -- <why this site is safe>` (a reasonless "
                "allow suppresses nothing)"))
            continue
        for f in findings:
            if f.file == ctx.rel_path and f.line == sup.target_line \
                    and f.check in sup.checks:
                f.suppressed = True
                f.reason = sup.reason


def collect_files(root, paths):
    files = []
    if not paths:
        paths = [os.path.join(root, "src")]
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _dirnames, filenames in os.walk(p):
                for fn in sorted(filenames):
                    if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                        files.append(os.path.join(dirpath, fn))
        else:
            files.append(p)
    files.sort()
    return files


def main(argv):
    ap = argparse.ArgumentParser(
        prog="ptblint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: <root>/src)")
    ap.add_argument("--root", default=None,
                    help="repo root for path policy (default: auto-detected "
                         "from this script's location)")
    ap.add_argument("--json", metavar="OUT", default=None,
                    help="write machine-readable findings (\"-\" for stdout)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-finding text report")
    args = ap.parse_args(argv)

    if args.list_checks:
        for k in sorted(CHECKS):
            print(f"{k:20s} {CHECKS[k]}")
        return 0

    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    files = collect_files(root, args.paths)

    # First pass: gather cross-file facts. (a) unordered-container member
    # names declared anywhere in the scanned set, so iteration over a member
    # declared in a sibling header is still caught in the .cpp; (b) MemModel
    # subclasses declared outside src/mem/ — their out-of-line `Foo::on_x`
    # definitions are decorator hooks wherever they appear.
    global_unordered = set()
    decorator_classes = set()
    ctxs = []
    for f in files:
        rel = os.path.relpath(f, root)
        try:
            with open(f, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as e:
            print(f"ptblint: cannot read {f}: {e}", file=sys.stderr)
            return 2
        ctx = FileContext(f, rel, text)
        ctxs.append(ctx)
        if ctx.in_dirs(DETERMINISTIC_DIRS) or ctx.in_dirs(OBSERVER_DIRS):
            global_unordered |= unordered_decl_names(ctx)
        if ctx.policy_path.startswith("src/") and \
                not ctx.policy_path.startswith(MEM_DIR.rstrip("/") + "/"):
            decorator_classes |= ctx.memmodel_classes

    findings = []
    for ctx in ctxs:
        fs = []
        check_wall_clock(ctx, fs)
        check_ptr_key(ctx, fs)
        check_unordered_iter(ctx, fs, global_unordered)
        check_observer(ctx, fs)
        check_decorator(ctx, fs, decorator_classes)
        check_addr_stream(ctx, fs)
        check_raw_lock(ctx, fs)
        meta = []
        apply_suppressions(ctx, fs, meta)
        findings.extend(fs + meta)

    findings.sort(key=lambda f: (f.file, f.line, f.check))
    unsuppressed = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    if not args.quiet:
        for f in unsuppressed:
            print(f"{f.file}:{f.line}:{f.col}: [{f.check}] {f.message}")
        print(f"ptblint: {len(files)} files, {len(findings)} findings "
              f"({len(suppressed)} suppressed, {len(unsuppressed)} unsuppressed)")

    if args.json:
        by_check = {}
        for f in findings:
            d = by_check.setdefault(f.check, {"total": 0, "suppressed": 0})
            d["total"] += 1
            d["suppressed"] += 1 if f.suppressed else 0
        doc = {
            "tool": "ptblint",
            "schema_version": 1,
            "engine": "python",
            "root": root,
            "files_scanned": len(files),
            "checks": sorted(CHECKS),
            "findings": [f.as_json() for f in findings],
            "counts": {
                "total": len(findings),
                "suppressed": len(suppressed),
                "unsuppressed": len(unsuppressed),
                "by_check": by_check,
            },
        }
        if args.json == "-":
            json.dump(doc, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")

    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
