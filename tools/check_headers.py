#!/usr/bin/env python3
"""Header self-containment check: compiles every src/**/*.hpp as a
standalone translation unit.

run-clang-tidy's HeaderFilterRegex only analyzes headers that some scanned
.cpp happens to include, and a header that free-rides on its includers'
includes breaks the first new TU that includes it alone. This check catches
that at CI time: for each header H, compile `#include "H"` with
-fsyntax-only and the library's include directory.

Usage: check_headers.py [--root DIR] [--compiler CXX] [--jobs N] [headers...]
Exit 0 when every header compiles standalone, 1 otherwise (with the
compiler's diagnostics), 2 on usage error.
"""

import argparse
import concurrent.futures
import os
import shutil
import subprocess
import sys
import tempfile


def find_headers(src_dir):
    out = []
    for dirpath, _dirnames, filenames in os.walk(src_dir):
        for fn in sorted(filenames):
            if fn.endswith((".hpp", ".h")):
                out.append(os.path.join(dirpath, fn))
    return sorted(out)


def check_one(cxx, root, header, extra_flags):
    rel = os.path.relpath(header, os.path.join(root, "src"))
    with tempfile.TemporaryDirectory() as td:
        tu = os.path.join(td, "tu.cpp")
        with open(tu, "w", encoding="utf-8") as fh:
            fh.write(f'#include "{rel}"\n')
        cmd = [cxx, "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
               "-I", os.path.join(root, "src")] + extra_flags + [tu]
        proc = subprocess.run(cmd, capture_output=True, text=True)
    return rel, proc.returncode, proc.stderr


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("headers", nargs="*",
                    help="headers to check (default: all of <root>/src)")
    ap.add_argument("--root", default=None)
    ap.add_argument("--compiler", default=os.environ.get("CXX") or "c++")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if shutil.which(args.compiler) is None:
        print(f"check_headers: compiler not found: {args.compiler}", file=sys.stderr)
        return 2

    headers = [os.path.abspath(h) for h in args.headers] or \
        find_headers(os.path.join(root, "src"))
    if not headers:
        print("check_headers: no headers found", file=sys.stderr)
        return 2

    # rt/omp_rt.hpp legitimately needs the OpenMP toolchain flag; everything
    # else must compile without special treatment.
    def flags_for(h):
        return ["-fopenmp", "-DPTB_HAVE_OPENMP=1"] if h.endswith("omp_rt.hpp") else []

    failures = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as ex:
        futs = [ex.submit(check_one, args.compiler, root, h, flags_for(h))
                for h in headers]
        for fut in concurrent.futures.as_completed(futs):
            rel, rc, err = fut.result()
            if rc != 0:
                failures.append((rel, err))

    if failures:
        print(f"check_headers: {len(failures)}/{len(headers)} headers are not "
              "self-contained:")
        for rel, err in sorted(failures):
            print(f"\n=== src/{rel} ===")
            sys.stdout.write(err)
        return 1
    print(f"check_headers: {len(headers)} headers compile standalone "
          f"({args.compiler})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
