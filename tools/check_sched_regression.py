#!/usr/bin/env python3
"""Compare a fresh bench_sched_micro JSON against a checked-in baseline.

Usage: check_sched_regression.py BASELINE.json NEW.json [--tolerance FRAC]

Rows are matched on (bench, backend, procs, ops_per_proc) and the
ordered_ops_per_sec throughput of each matched pair is compared; the check
fails if any backend regresses by more than --tolerance (fractional, default
0.30 — generous because shared CI runners are noisy; the tracked number is
the checked-in BENCH_sched.json regenerated on a quiet machine, where the
tracing-disabled overhead budget is <2%).

Also fails if the new run reports virtual_results_identical != "yes".
"""

import argparse
import json
import sys


def row_key(row):
    return (
        row.get("bench"),
        row.get("backend"),
        row.get("procs"),
        row.get("ops_per_proc"),
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="maximum allowed fractional throughput drop (default 0.30)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = {row_key(r): r for r in json.load(f) if r.get("bench") == "sched_micro"}
    with open(args.new) as f:
        new_rows = json.load(f)

    for row in new_rows:
        if row.get("bench") == "sched_micro_summary":
            if row.get("virtual_results_identical") != "yes":
                print("FAIL: scheduler backends diverged on virtual results")
                return 1

    failed = False
    compared = 0
    for row in new_rows:
        if row.get("bench") != "sched_micro":
            continue
        base = baseline.get(row_key(row))
        if base is None:
            print(f"skip (no baseline row): {row_key(row)}")
            continue
        compared += 1
        old = base["ordered_ops_per_sec"]
        cur = row["ordered_ops_per_sec"]
        change = (cur - old) / old
        status = "ok"
        if change < -args.tolerance:
            status = "REGRESSION"
            failed = True
        print(f"{row['backend']:>8}: {old:12.0f} -> {cur:12.0f} ordered ops/s "
              f"({change:+.1%}) {status}")

    if compared == 0:
        print("FAIL: no comparable sched_micro rows found")
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
