#!/usr/bin/env python3
"""Render a ptb sight JSON (ptbsim --sight / PTB_SIGHT) as a human report,
optionally asserting data-centric claims for CI.

Usage: sight_report.py SIGHT.json [--expect-no-false-sharing] [--phase PH]
                                  [--expect-private-fraction F] [--scope S]

--expect-no-false-sharing    fail (exit 1) if the detector reported any
                             falsely-shared line (with --phase PH: any line
                             whose window-qualified hits land in that phase).
--expect-private-fraction F  fail unless at least fraction F of the selected
                             classification rows' lines classify private.
                             --phase selects a phase's rows (default: the
                             whole-run classification); --scope filters by
                             scope ("cells", "bodies", "space.cells.p*", ...).
"""

import argparse
import json
import sys


def print_table(title, header, rows):
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    print(f"== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


CLASSES = ["private", "read-shared", "producer-consumer", "migratory", "ping-pong"]


def class_table(rows, key):
    """Aggregates classification rows into {key(row): {class: lines}}."""
    out = {}
    for r in rows:
        cell = out.setdefault(key(r), dict.fromkeys(CLASSES, 0))
        cell[r["class"]] += r["lines"]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("sight")
    ap.add_argument("--expect-no-false-sharing", action="store_true")
    ap.add_argument("--expect-private-fraction", type=float, default=None)
    ap.add_argument("--phase", default=None,
                    help="restrict expectations to one phase (e.g. treebuild)")
    ap.add_argument("--scope", default=None,
                    help="restrict --expect-private-fraction to one scope")
    args = ap.parse_args()

    with open(args.sight) as f:
        sight = json.load(f)["sight"]
    prov = sight["provenance"]

    print(f"sight: {args.sight}")
    print(f"{prov['platform']} {prov['algorithm']} n={prov['nbodies']} "
          f"p={prov['nprocs']}: {sight['lines_observed']} lines observed, "
          f"{sight['reads']} reads / {sight['writes']} writes, "
          f"false-sharing window {sight['window_ns']}ns\n")

    total_lines = sum(c["lines"] for c in sight["total_classes"])
    print_table(
        "whole-run sharing classes",
        ["class", "lines", "share"],
        [[c["class"], c["lines"],
          f"{100.0 * c['lines'] / total_lines:.1f}%" if total_lines else "0.0%"]
         for c in sight["total_classes"]],
    )

    run_rows = [c for c in sight["classes"] if c["phase"] == "run"]
    by_scope = class_table(run_rows, lambda r: (r["scope"], r["depth"]))
    print_table(
        "sharing by data structure (whole run; cells keyed by tree depth)",
        ["scope", "depth"] + CLASSES,
        [[scope, depth if depth >= 0 else "-"] +
         [cell[c] or "-" for c in CLASSES]
         for (scope, depth), cell in sorted(by_scope.items())],
    )

    phase_rows = [c for c in sight["classes"] if c["phase"] != "run"]
    by_phase = class_table(phase_rows, lambda r: r["phase"])
    print_table(
        "sharing by phase (lines touched in phase)",
        ["phase"] + CLASSES,
        [[ph] + [cell[c] or "-" for c in CLASSES]
         for ph, cell in sorted(by_phase.items())],
    )

    if sight["false_sharing"]:
        print_table(
            f"false sharing ({sight['false_sharing_hits']} hits)",
            ["region", "line", "cell", "objects", "procs", "hits", "phases"],
            [[f["region"], f["line"], f["cell"] or "-", len(f["objects"]),
              len(f["procs"]), f["hits"],
              " ".join(f"{p['phase']}:{p['hits']}" for p in f["phase_hits"])]
             for f in sight["false_sharing"][:20]],
        )
    else:
        print(f"no false sharing detected (window {sight['window_ns']}ns)\n")

    if sight["working_set"]:
        per_phase = {}
        for w in sight["working_set"]:
            mx, cold, samples = per_phase.get(w["phase"], (0, 0, 0))
            per_phase[w["phase"]] = (max(mx, w["distinct_lines"]),
                                     cold + w["cold"],
                                     samples + w["reuse_samples"])
        print_table(
            "working set by phase (64B lines; distinct = max over procs)",
            ["phase", "distinct lines", "cold", "reuse samples"],
            [[ph, mx, cold, samples]
             for ph, (mx, cold, samples) in sorted(per_phase.items())],
        )

    failures = []
    if args.expect_no_false_sharing:
        if args.phase is None:
            if sight["false_sharing"]:
                failures.append(
                    f"expected no false sharing, found "
                    f"{len(sight['false_sharing'])} lines "
                    f"({sight['false_sharing_hits']} hits)")
        else:
            for f in sight["false_sharing"]:
                hits = sum(p["hits"] for p in f["phase_hits"]
                           if p["phase"] == args.phase)
                if hits:
                    failures.append(
                        f"false sharing in phase {args.phase}: {f['region']} "
                        f"line {f['line']} ({hits} hits)")
    if args.expect_private_fraction is not None:
        want_phase = args.phase if args.phase is not None else "run"
        rows = [c for c in sight["classes"] if c["phase"] == want_phase
                and (args.scope is None or c["scope"] == args.scope)]
        lines = sum(c["lines"] for c in rows)
        private = sum(c["lines"] for c in rows if c["class"] == "private")
        where = f"phase={want_phase}" + (f" scope={args.scope}" if args.scope else "")
        if lines == 0:
            failures.append(f"no classification rows match {where}")
        elif private < args.expect_private_fraction * lines:
            failures.append(
                f"private fraction {private}/{lines} = {private / lines:.3f} "
                f"below {args.expect_private_fraction} ({where})")
        else:
            print(f"private fraction {private}/{lines} = {private / lines:.3f} "
                  f"({where})")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    if args.expect_no_false_sharing or args.expect_private_fraction is not None:
        print("expectations satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
