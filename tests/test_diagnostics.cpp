// Physics diagnostics and conservation laws over full simulations.
#include <gtest/gtest.h>

#include "bh/diagnostics.hpp"
#include "bh/generate.hpp"
#include "harness/app.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/space.hpp"

namespace ptb {
namespace {

TEST(Diagnostics, PlummerIsRoughlyVirialized) {
  const Bodies b = make_plummer(4096, 7);
  const EnergyReport e = total_energy(b, 0.05);
  EXPECT_LT(e.potential, 0.0);
  EXPECT_GT(e.kinetic, 0.0);
  EXPECT_NEAR(e.virial_ratio(), 1.0, 0.35);
  EXPECT_LT(e.total(), 0.0);  // bound system
}

TEST(Diagnostics, MomentumZeroAfterGeneration) {
  const Bodies b = make_plummer(2048, 9);
  EXPECT_NEAR(norm(total_momentum(b)), 0.0, 1e-10);
  EXPECT_NEAR(norm(center_of_mass(b)), 0.0, 1e-10);
}

TEST(Diagnostics, TwoBodyEnergyByHand) {
  Bodies b(2);
  b[0].mass = 1.0;
  b[1].mass = 2.0;
  b[0].pos = Vec3{0, 0, 0};
  b[1].pos = Vec3{3, 4, 0};  // distance 5
  b[0].vel = Vec3{1, 0, 0};
  const EnergyReport e = total_energy(b, 0.0);
  EXPECT_DOUBLE_EQ(e.kinetic, 0.5);
  EXPECT_DOUBLE_EQ(e.potential, -2.0 / 5.0);
}

TEST(Diagnostics, AngularMomentumByHand) {
  Bodies b(1);
  b[0].mass = 2.0;
  b[0].pos = Vec3{1, 0, 0};
  b[0].vel = Vec3{0, 3, 0};
  const Vec3 l = total_angular_momentum(b);
  EXPECT_DOUBLE_EQ(l.z, 6.0);
  EXPECT_DOUBLE_EQ(l.x, 0.0);
}

TEST(Diagnostics, ConservationOverSimulation) {
  BHConfig cfg;
  cfg.n = 800;
  cfg.theta = 0.5;
  cfg.dt = 0.0125;
  AppState st = make_app_state(cfg, 4);
  const EnergyReport e0 = total_energy(st.bodies, cfg.eps);
  const Vec3 p0 = total_momentum(st.bodies);
  SimContext ctx(PlatformSpec::ideal(), 4);
  register_common_regions(ctx, st);
  SpaceBuilder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) {
    for (int s = 0; s < 10; ++s) timestep(rt, st, builder, true);
  });
  const EnergyReport e1 = total_energy(st.bodies, cfg.eps);
  EXPECT_LT(relative_drift(e0.total(), e1.total()), 0.05);
  // Momentum drift is bounded by the theta-approximation asymmetry.
  EXPECT_LT(norm(total_momentum(st.bodies) - p0), 0.02);
}

TEST(Diagnostics, RelativeDriftBehaves) {
  EXPECT_DOUBLE_EQ(relative_drift(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_drift(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_LT(relative_drift(0.0, 1e-15), 1.0);  // floor guards division
}

}  // namespace
}  // namespace ptb
