// Negative tests for the tree checker: every invariant it claims to enforce
// must actually fire on a hand-corrupted tree.
#include <gtest/gtest.h>

#include "bh/generate.hpp"
#include "bh/seqtree.hpp"
#include "bh/verify.hpp"

namespace ptb {
namespace {

struct CorruptFixture : ::testing::Test {
  void SetUp() override {
    cfg.n = 512;
    bodies = make_plummer(cfg.n, 77);
    pool.init(4096);
    root = SeqTree::build(bodies, cfg, pool);
    SeqTree::compute_moments(root, bodies);
    ASSERT_TRUE(check_tree(root, bodies, cfg, true).ok);
  }

  Node* find_leaf(Node* n) {
    if (n->is_leaf(std::memory_order_relaxed)) return n->nbodies > 0 ? n : nullptr;
    for (int o = 0; o < 8; ++o)
      if (Node* c = n->get_child(o, std::memory_order_relaxed))
        if (Node* l = find_leaf(c)) return l;
    return nullptr;
  }
  Node* find_cell(Node* n) {
    if (n->is_cell(std::memory_order_relaxed)) return n;
    return nullptr;
  }

  BHConfig cfg;
  Bodies bodies;
  NodePool pool;
  Node* root = nullptr;
};

TEST_F(CorruptFixture, DetectsDuplicateBody) {
  Node* leaf = find_leaf(root);
  ASSERT_NE(leaf, nullptr);
  ASSERT_LT(leaf->nbodies, kLeafCapacity);
  leaf->bodies[leaf->nbodies++] = leaf->bodies[0];  // body appears twice
  const auto res = check_tree(root, bodies, cfg);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("two leaves"), std::string::npos);
}

TEST_F(CorruptFixture, DetectsBadParentPointer) {
  Node* leaf = find_leaf(root);
  ASSERT_NE(leaf, nullptr);
  Node* old = leaf->parent;
  leaf->parent = leaf;
  EXPECT_FALSE(check_tree(root, bodies, cfg).ok);
  leaf->parent = old;
  EXPECT_TRUE(check_tree(root, bodies, cfg).ok);
}

TEST_F(CorruptFixture, DetectsBadLevel) {
  Node* leaf = find_leaf(root);
  ASSERT_NE(leaf, nullptr);
  leaf->level = static_cast<std::uint8_t>(leaf->level + 3);
  EXPECT_FALSE(check_tree(root, bodies, cfg).ok);
}

TEST_F(CorruptFixture, DetectsGeometryViolation) {
  Node* leaf = find_leaf(root);
  ASSERT_NE(leaf, nullptr);
  leaf->cube.half *= 2.0;  // no longer an octant of the parent
  EXPECT_FALSE(check_tree(root, bodies, cfg).ok);
}

TEST_F(CorruptFixture, DetectsReachableDeadNode) {
  Node* leaf = find_leaf(root);
  ASSERT_NE(leaf, nullptr);
  leaf->dead = true;
  const auto res = check_tree(root, bodies, cfg);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("dead"), std::string::npos);
}

TEST_F(CorruptFixture, DetectsMomentCorruption) {
  root->mass += 0.5;
  EXPECT_FALSE(check_tree(root, bodies, cfg, /*check_moments=*/true).ok);
  // Structure-only check still passes.
  EXPECT_TRUE(check_tree(root, bodies, cfg, /*check_moments=*/false).ok);
}

TEST_F(CorruptFixture, DetectsMissingBody) {
  Node* leaf = find_leaf(root);
  ASSERT_NE(leaf, nullptr);
  --leaf->nbodies;  // drop one body from the tree
  const auto res = check_tree(root, bodies, cfg);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("expected"), std::string::npos);
}

TEST_F(CorruptFixture, DetectsCellWithBodyCount) {
  Node* cell = find_cell(root);
  ASSERT_NE(cell, nullptr);
  cell->nbodies = 3;
  EXPECT_FALSE(check_tree(root, bodies, cfg).ok);
}

TEST_F(CorruptFixture, CanonicalHashChangesOnAnyMove) {
  const auto h0 = canonical_hash(root, bodies);
  Node* leaf = find_leaf(root);
  ASSERT_NE(leaf, nullptr);
  ASSERT_GE(leaf->nbodies, 1);
  // Swap one body between this leaf and another leaf: hash must change.
  Node* other = nullptr;
  for (int o = 0; o < 8 && other == nullptr; ++o) {
    if (Node* c = root->get_child(o, std::memory_order_relaxed)) {
      Node* l = find_leaf(c);
      if (l != nullptr && l != leaf) other = l;
    }
  }
  ASSERT_NE(other, nullptr);
  std::swap(leaf->bodies[0], other->bodies[0]);
  EXPECT_NE(canonical_hash(root, bodies), h0);
}

}  // namespace
}  // namespace ptb
