// NativeRT: the same builders under REAL std::thread concurrency. These are
// stress tests of the lock/atomic protocol (the simulator serializes shared
// operations, so only native runs exercise true interleavings).
#include <gtest/gtest.h>

#include "bh/seqtree.hpp"
#include "bh/verify.hpp"
#include "harness/app.hpp"
#include "rt/native_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/partree.hpp"
#include "treebuild/space.hpp"
#include "treebuild/update.hpp"

namespace ptb {
namespace {

std::uint64_t reference_hash(const AppState& st) {
  NodePool pool;
  pool.init(static_cast<std::size_t>(st.cfg.n) * 2 + 1024);
  Node* root = SeqTree::build(st.bodies, st.cfg, pool);
  return canonical_hash(root, st.bodies);
}

template <class Builder>
void stress_build(int n, int np, int repeats, std::uint64_t seed) {
  BHConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  for (int r = 0; r < repeats; ++r) {
    AppState st = make_app_state(cfg, np);
    NativeContext ctx(np);
    Builder builder(st);
    builder.register_regions(ctx);  // no-op, but part of the contract
    ctx.run([&](NativeProc& rt) {
      builder.build(rt);
      rt.barrier();
    });
    const TreeCheckResult res = check_tree(st.tree.root, st.bodies, st.cfg);
    ASSERT_TRUE(res.ok) << res.error << " (repeat " << r << ")";
    ASSERT_EQ(res.body_count, n);
    ASSERT_EQ(canonical_hash(st.tree.root, st.bodies), reference_hash(st))
        << "native parallel tree differs from reference (repeat " << r << ")";
  }
}

TEST(NativeRt, OrigStress) { stress_build<OrigBuilder>(5000, 8, 3, 101); }
TEST(NativeRt, LocalStress) { stress_build<LocalBuilder>(5000, 8, 3, 102); }
TEST(NativeRt, PartreeStress) { stress_build<PartreeBuilder>(5000, 8, 3, 103); }
TEST(NativeRt, SpaceStress) { stress_build<SpaceBuilder>(5000, 8, 3, 104); }
TEST(NativeRt, UpdateInitialStress) { stress_build<UpdateBuilder>(5000, 8, 3, 105); }

TEST(NativeRt, FullPipelineSeveralSteps) {
  BHConfig cfg;
  cfg.n = 3000;
  AppState st = make_app_state(cfg, 8);
  NativeContext ctx(8);
  LocalBuilder builder(st);
  ctx.run([&](NativeProc& rt) {
    for (int s = 0; s < 3; ++s) timestep(rt, st, builder, true);
    builder.build(rt);
    rt.barrier();
  });
  const TreeCheckResult res = check_tree(st.tree.root, st.bodies, st.cfg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.body_count, cfg.n);
}

TEST(NativeRt, UpdateIncrementalUnderThreads) {
  BHConfig cfg;
  cfg.n = 2500;
  cfg.dt = 0.05;
  AppState st = make_app_state(cfg, 8);
  NativeContext ctx(8);
  UpdateBuilder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](NativeProc& rt) {
    for (int s = 0; s < 4; ++s) timestep(rt, st, builder, true);
    rt.begin_phase(Phase::kTreeBuild);
    builder.build(rt);
    rt.barrier();
  });
  const TreeCheckResult res = check_tree(st.tree.root, st.bodies, st.cfg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.body_count, cfg.n);
}

TEST(NativeRt, ForcesMatchSimulatorRun) {
  // Physics must not depend on the runtime: native threads and the DES
  // produce bit-identical accelerations (same tree, same traversal).
  BHConfig cfg;
  cfg.n = 1000;
  AppState native_st = make_app_state(cfg, 4);
  {
    NativeContext ctx(4);
    LocalBuilder builder(native_st);
    ctx.run([&](NativeProc& rt) { timestep(rt, native_st, builder, true); });
  }
  AppState seq_st = make_app_state(cfg, 1);
  {
    NativeContext ctx(1);
    LocalBuilder builder(seq_st);
    ctx.run([&](NativeProc& rt) { timestep(rt, seq_st, builder, true); });
  }
  for (std::size_t i = 0; i < native_st.bodies.size(); ++i) {
    // Leaf-internal body order differs with thread count, so summation order
    // (and the last ulp) may differ; positions agree to reassociation noise.
    ASSERT_LT(norm(native_st.bodies[i].pos - seq_st.bodies[i].pos), 1e-12);
  }
}

TEST(NativeRt, StatsTrackLocksAndBarriers) {
  BHConfig cfg;
  cfg.n = 2000;
  AppState st = make_app_state(cfg, 4);
  NativeContext ctx(4);
  OrigBuilder builder(st);
  ctx.run([&](NativeProc& rt) {
    rt.begin_phase(Phase::kTreeBuild);
    builder.build(rt);
    rt.barrier();
    rt.begin_phase(Phase::kOther);
  });
  std::uint64_t locks = 0, barriers = 0;
  for (const auto& ps : ctx.stats()) {
    locks += ps.lock_acquires[static_cast<int>(Phase::kTreeBuild)];
    barriers += ps.barriers;
  }
  EXPECT_GT(locks, 1000u);  // ORIG locks per inserted body
  EXPECT_GE(barriers, 4u * 3u);
}

}  // namespace
}  // namespace ptb
