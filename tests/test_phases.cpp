// The shared phases: force accuracy against direct summation, costzones
// completeness/balance/determinism, parallel moments correctness, leapfrog.
#include <gtest/gtest.h>

#include <cmath>

#include "bh/seqtree.hpp"
#include "harness/app.hpp"
#include "sim/sim_rt.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "treebuild/local.hpp"

namespace ptb {
namespace {

Vec3 direct_accel(const Bodies& bodies, std::size_t i, double eps2) {
  Vec3 acc{};
  for (std::size_t j = 0; j < bodies.size(); ++j) {
    if (j == i) continue;
    const Vec3 d = bodies[j].pos - bodies[i].pos;
    const double r2 = norm2(d) + eps2;
    acc += (bodies[j].mass / (r2 * std::sqrt(r2))) * d;
  }
  return acc;
}

/// Runs build + moments + partition + forces on the simulator and returns the
/// state (accelerations filled in).
AppState run_through_forces(const BHConfig& cfg, int np) {
  AppState st = make_app_state(cfg, np);
  SimContext ctx(PlatformSpec::ideal(), np);
  register_common_regions(ctx, st);
  LocalBuilder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) {
    builder.build(rt);
    rt.barrier();
    moments_phase(rt, st);
    partition_phase(rt, st);
    forces_phase(rt, st);
    rt.barrier();
  });
  return st;
}

TEST(Forces, CloseToDirectSummation) {
  BHConfig cfg;
  cfg.n = 1200;
  cfg.theta = 0.6;
  AppState st = run_through_forces(cfg, 4);
  // Normalize by the RMS acceleration: bodies near the cluster center have
  // near-zero net force, which makes per-body relative error ill-conditioned.
  double rms = 0.0;
  for (const Body& b : st.bodies) rms += norm2(b.acc);
  rms = std::sqrt(rms / static_cast<double>(st.bodies.size()));
  double err_sum = 0.0;
  int samples = 0;
  for (std::size_t i = 0; i < st.bodies.size(); i += 7) {
    const Vec3 exact = direct_accel(st.bodies, i, cfg.eps * cfg.eps);
    const double e = norm(exact - st.bodies[i].acc) / rms;
    err_sum += e;
    ++samples;
    EXPECT_LT(e, 0.2) << "body " << i;
  }
  EXPECT_LT(err_sum / samples, 0.02)
      << "mean normalized force error too large for theta=0.6";
}

TEST(Forces, ThetaControlsAccuracyAndCost) {
  BHConfig tight;
  tight.n = 1500;
  tight.theta = 0.3;
  BHConfig loose = tight;
  loose.theta = 1.2;
  AppState a = run_through_forces(tight, 2);
  AppState b = run_through_forces(loose, 2);
  std::uint64_t ia = 0, ib = 0;
  for (auto v : a.interactions) ia += v;
  for (auto v : b.interactions) ib += v;
  EXPECT_GT(ia, 2 * ib) << "smaller theta must do more interactions";

  double err_a = 0, err_b = 0;
  for (std::size_t i = 0; i < a.bodies.size(); i += 11) {
    const Vec3 exact = direct_accel(a.bodies, i, tight.eps * tight.eps);
    err_a += norm(exact - a.bodies[i].acc) / std::max(1e-12, norm(exact));
    err_b += norm(exact - b.bodies[i].acc) / std::max(1e-12, norm(exact));
  }
  EXPECT_LT(err_a, err_b) << "smaller theta must be more accurate";
}

TEST(Forces, IndependentOfProcessorCount) {
  // The tree SHAPE is identical for any processor count, but the order of
  // bodies within a leaf depends on insertion interleaving, so per-body
  // accumulation order (and hence the last ulp) may differ. Forces must
  // agree to floating-point-reassociation accuracy.
  BHConfig cfg;
  cfg.n = 800;
  AppState a = run_through_forces(cfg, 1);
  AppState b = run_through_forces(cfg, 8);
  for (std::size_t i = 0; i < a.bodies.size(); ++i) {
    const double scale = std::max(1.0, norm(a.bodies[i].acc));
    EXPECT_LT(norm(a.bodies[i].acc - b.bodies[i].acc) / scale, 1e-12)
        << "body " << i;
  }
}

TEST(Forces, NewtonThirdLawApproximately) {
  // Total momentum change should be ~0 (exact for direct sum; approximate
  // under Barnes-Hut, bounded by the theta error).
  BHConfig cfg;
  cfg.n = 2000;
  cfg.theta = 0.7;
  AppState st = run_through_forces(cfg, 4);
  Vec3 total{};
  for (const Body& b : st.bodies) total += b.mass * b.acc;
  double mag = 0.0;
  for (const Body& b : st.bodies) mag += b.mass * norm(b.acc);
  EXPECT_LT(norm(total) / mag, 0.02);
}

TEST(Costzones, EveryBodyAssignedExactlyOnce) {
  BHConfig cfg;
  cfg.n = 3000;
  AppState st = run_through_forces(cfg, 8);
  std::vector<int> owner_count(static_cast<std::size_t>(cfg.n), 0);
  for (int p = 0; p < st.nprocs; ++p)
    for (std::int32_t bi : st.partition[static_cast<std::size_t>(p)]) {
      ++owner_count[static_cast<std::size_t>(bi)];
      EXPECT_EQ(st.bodies[static_cast<std::size_t>(bi)].proc, p);
    }
  for (int c : owner_count) ASSERT_EQ(c, 1);
}

TEST(Costzones, BalancesCostNotJustCount) {
  BHConfig cfg;
  cfg.n = 4000;
  // Two force phases so the second partition uses measured interaction costs.
  AppState st = make_app_state(cfg, 8);
  SimContext ctx(PlatformSpec::ideal(), 8);
  register_common_regions(ctx, st);
  LocalBuilder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) {
    for (int s = 0; s < 2; ++s) timestep(rt, st, builder, true);
    builder.build(rt);
    rt.barrier();
    moments_phase(rt, st);
    partition_phase(rt, st);
  });
  std::vector<double> zone_cost(8, 0.0);
  for (int p = 0; p < 8; ++p)
    for (std::int32_t bi : st.partition[static_cast<std::size_t>(p)])
      zone_cost[static_cast<std::size_t>(p)] +=
          std::max(1.0, st.bodies[static_cast<std::size_t>(bi)].cost);
  EXPECT_LT(imbalance_factor(zone_cost), 1.10)
      << "costzones must balance measured cost within ~10%";
}

TEST(Costzones, ZonesAreSpatiallyCoherent) {
  // Costzones assigns tree-contiguous runs: bodies of one processor should be
  // clustered, i.e. the mean intra-zone distance is well below the global
  // mean pair distance.
  BHConfig cfg;
  cfg.n = 2000;
  AppState st = run_through_forces(cfg, 8);
  Rng rng(5);
  auto mean_dist = [&](auto pick_pair) {
    double sum = 0;
    for (int k = 0; k < 2000; ++k) {
      auto [a, b] = pick_pair();
      sum += norm(st.bodies[a].pos - st.bodies[b].pos);
    }
    return sum / 2000;
  };
  const double global = mean_dist([&]() {
    return std::pair<std::size_t, std::size_t>{rng.next_below(st.bodies.size()),
                                               rng.next_below(st.bodies.size())};
  });
  const double intra = mean_dist([&]() {
    const auto& zone =
        st.partition[static_cast<std::size_t>(rng.next_below(8))];
    const auto i = static_cast<std::size_t>(zone[rng.next_below(zone.size())]);
    const auto j = static_cast<std::size_t>(zone[rng.next_below(zone.size())]);
    return std::pair<std::size_t, std::size_t>{i, j};
  });
  EXPECT_LT(intra, 0.95 * global);
}

TEST(Moments, ParallelMatchesSequential) {
  BHConfig cfg;
  cfg.n = 2500;
  AppState st = run_through_forces(cfg, 8);  // parallel moments inside
  // Sequential reference over the same tree content.
  NodePool pool;
  pool.init(8192);
  Node* ref = SeqTree::build(st.bodies, st.cfg, pool);
  SeqTree::compute_moments(ref, st.bodies);
  EXPECT_NEAR(st.tree.root->mass, ref->mass, 1e-12);
  EXPECT_NEAR(norm(st.tree.root->com - ref->com), 0.0, 1e-9);
  // The parallel moments ran BEFORE the force phase, when every body cost was
  // still the initial 1.0 — so the root's cost must be exactly n.
  EXPECT_NEAR(st.tree.root->cost, static_cast<double>(cfg.n), 1e-9);
}

TEST(Integrate, LeapfrogMovesBodies) {
  BHConfig cfg;
  cfg.n = 500;
  cfg.dt = 0.05;
  AppState st = make_app_state(cfg, 2);
  const Bodies before = st.bodies;
  SimContext ctx(PlatformSpec::ideal(), 2);
  register_common_regions(ctx, st);
  LocalBuilder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) { timestep(rt, st, builder, true); });
  int moved = 0;
  for (std::size_t i = 0; i < st.bodies.size(); ++i)
    if (!(st.bodies[i].pos == before[i].pos)) ++moved;
  EXPECT_EQ(moved, cfg.n);
}

TEST(Integrate, EnergyDriftBounded) {
  // A few leapfrog steps of a virialized Plummer sphere should conserve
  // total energy to a few percent.
  BHConfig cfg;
  cfg.n = 600;
  cfg.theta = 0.5;
  cfg.dt = 0.0125;
  AppState st = make_app_state(cfg, 4);
  auto energy = [&](const Bodies& bodies) {
    double kin = 0, pot = 0;
    for (const Body& b : bodies) kin += 0.5 * b.mass * norm2(b.vel);
    for (std::size_t i = 0; i < bodies.size(); ++i)
      for (std::size_t j = i + 1; j < bodies.size(); ++j) {
        const double r = std::sqrt(norm2(bodies[i].pos - bodies[j].pos) +
                                   cfg.eps * cfg.eps);
        pot -= bodies[i].mass * bodies[j].mass / r;
      }
    return kin + pot;
  };
  const double e0 = energy(st.bodies);
  SimContext ctx(PlatformSpec::ideal(), 4);
  register_common_regions(ctx, st);
  LocalBuilder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) {
    for (int s = 0; s < 8; ++s) timestep(rt, st, builder, true);
  });
  const double e1 = energy(st.bodies);
  EXPECT_LT(std::abs(e1 - e0) / std::abs(e0), 0.05);
}

}  // namespace
}  // namespace ptb
