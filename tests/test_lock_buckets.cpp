// SPLASH-style ALOCK lock pools (BHConfig::lock_buckets).
#include <gtest/gtest.h>

#include "bh/seqtree.hpp"
#include "bh/verify.hpp"
#include "harness/app.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"

namespace ptb {
namespace {

std::uint64_t reference_hash(const AppState& st) {
  NodePool pool;
  pool.init(static_cast<std::size_t>(st.cfg.n) * 2 + 1024);
  Node* root = SeqTree::build(st.bodies, st.cfg, pool);
  return canonical_hash(root, st.bodies);
}

template <class Builder>
double lock_wait_with_buckets(int buckets, std::uint64_t* hash_out = nullptr) {
  BHConfig cfg;
  cfg.n = 3000;
  cfg.lock_buckets = buckets;
  AppState st = make_app_state(cfg, 8);
  SimContext ctx(PlatformSpec::origin2000(), 8);
  register_common_regions(ctx, st);
  Builder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) {
    builder.build(rt);
    rt.barrier();
  });
  if (hash_out != nullptr) *hash_out = canonical_hash(st.tree.root, st.bodies);
  double wait = 0;
  for (const auto& ps : ctx.stats()) wait += ps.lock_wait_ns;
  const TreeCheckResult res = check_tree(st.tree.root, st.bodies, st.cfg);
  EXPECT_TRUE(res.ok) << res.error;
  return wait;
}

TEST(LockBuckets, TreeUnaffectedByBucketing) {
  std::uint64_t h_percell = 0, h_bucketed = 0, h_tiny = 0;
  lock_wait_with_buckets<LocalBuilder>(0, &h_percell);
  lock_wait_with_buckets<LocalBuilder>(2048, &h_bucketed);
  lock_wait_with_buckets<LocalBuilder>(4, &h_tiny);
  BHConfig cfg;
  cfg.n = 3000;
  AppState st = make_app_state(cfg, 8);
  const std::uint64_t ref = reference_hash(st);
  EXPECT_EQ(h_percell, ref);
  EXPECT_EQ(h_bucketed, ref);
  EXPECT_EQ(h_tiny, ref) << "even brutal lock sharing must not corrupt the tree";
}

TEST(LockBuckets, FalseContentionGrowsAsPoolShrinks) {
  const double per_cell = lock_wait_with_buckets<OrigBuilder>(0);
  const double few = lock_wait_with_buckets<OrigBuilder>(4);
  EXPECT_GT(few, 2.0 * std::max(per_cell, 1.0))
      << "4 lock buckets for the whole tree must serialize inserts";
}

TEST(LockBuckets, LargePoolApproachesPerCell) {
  const double per_cell = lock_wait_with_buckets<LocalBuilder>(0);
  const double big_pool = lock_wait_with_buckets<LocalBuilder>(1 << 16);
  // With 64k buckets for ~1.3k nodes, collisions are rare.
  EXPECT_LT(big_pool, 2.0 * std::max(per_cell, 1e5));
}

TEST(LockBuckets, NodeLockMapsIntoTable) {
  BHConfig cfg;
  cfg.n = 64;
  cfg.lock_buckets = 16;
  AppState st = make_app_state(cfg, 2);
  Node n1, n2;
  const char* base = st.lock_table.data();
  for (const Node* n : {&n1, &n2}) {
    const void* lk = st.node_lock(n);
    EXPECT_GE(static_cast<const char*>(lk), base);
    EXPECT_LT(static_cast<const char*>(lk), base + 16);
  }
  // Per-node mode returns the node itself.
  cfg.lock_buckets = 0;
  AppState st2 = make_app_state(cfg, 2);
  EXPECT_EQ(st2.node_lock(&n1), &n1);
}

}  // namespace
}  // namespace ptb
