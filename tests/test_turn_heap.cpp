// The indexed min-heap that orders the DES scheduler's Active set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/turn_heap.hpp"
#include "support/rng.hpp"

namespace ptb {
namespace {

TEST(TurnHeap, TopIsMinimumWithIdTieBreak) {
  TurnHeap h;
  h.init(4);
  h.push(2, 100);
  h.push(0, 100);
  h.push(3, 50);
  h.push(1, 100);
  EXPECT_EQ(h.top(), 3);
  h.remove(3);
  EXPECT_EQ(h.top(), 0);  // 0, 1, 2 tie at 100 — smallest id wins
  h.update(0, 200);
  EXPECT_EQ(h.top(), 1);
  h.remove(1);
  EXPECT_EQ(h.top(), 2);
  h.remove(2);
  EXPECT_EQ(h.top(), 0);
  h.remove(0);
  EXPECT_EQ(h.top(), -1);
  EXPECT_TRUE(h.empty());
}

TEST(TurnHeap, ContainsTracksMembership) {
  TurnHeap h;
  h.init(3);
  EXPECT_FALSE(h.contains(1));
  h.push(1, 7);
  EXPECT_TRUE(h.contains(1));
  EXPECT_EQ(h.key_of(1), 7u);
  h.remove(1);
  EXPECT_FALSE(h.contains(1));
}

TEST(TurnHeap, MatchesNaiveScanUnderRandomOperations) {
  constexpr int kProcs = 16;
  TurnHeap h;
  h.init(kProcs);
  std::vector<bool> in(kProcs, false);
  std::vector<std::uint64_t> key(kProcs, 0);
  Rng rng(0x5eedu);

  auto naive_top = [&] {
    int best = -1;
    for (int p = 0; p < kProcs; ++p) {
      if (!in[static_cast<std::size_t>(p)]) continue;
      if (best < 0 || key[static_cast<std::size_t>(p)] < key[static_cast<std::size_t>(best)])
        best = p;
    }
    return best;
  };

  for (int step = 0; step < 20000; ++step) {
    const int p = static_cast<int>(rng.next_u64() % kProcs);
    const auto pi = static_cast<std::size_t>(p);
    const std::uint64_t k = rng.next_u64() % 1000;
    if (!in[pi]) {
      h.push(p, k);
      in[pi] = true;
      key[pi] = k;
    } else if (rng.next_u64() % 3 == 0) {
      h.remove(p);
      in[pi] = false;
    } else {
      // The scheduler only ever grows a key (clocks advance), but exercise
      // both directions anyway.
      h.update(p, k);
      key[pi] = k;
    }
    ASSERT_EQ(h.top(), naive_top()) << "step " << step;
  }
}

}  // namespace
}  // namespace ptb
