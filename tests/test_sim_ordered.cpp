// ordered_load / ordered_store: virtual-time-consistent values and charging.
#include <gtest/gtest.h>

#include <atomic>

#include "sim/sim_rt.hpp"

namespace ptb {
namespace {

TEST(SimOrdered, LoadSeesEarlierVirtualWrites) {
  // Proc 0 stores 42 at t=100; proc 1 loads at t=200: must observe 42
  // regardless of host scheduling. Repeat to shake out interleavings.
  for (int trial = 0; trial < 20; ++trial) {
    SimContext ctx(PlatformSpec::ideal(), 2);
    std::atomic<int> x{0};
    int seen = -1;
    ctx.run([&](SimProc& rt) {
      if (rt.self() == 0) {
        rt.compute(100.0);
        rt.ordered_store(x, 42, &x, sizeof(x));
      } else {
        rt.compute(200.0);
        seen = rt.ordered_load(x, &x, sizeof(x));
      }
    });
    ASSERT_EQ(seen, 42) << "trial " << trial;
  }
}

TEST(SimOrdered, LoadDoesNotSeeLaterVirtualWrites) {
  for (int trial = 0; trial < 20; ++trial) {
    SimContext ctx(PlatformSpec::ideal(), 2);
    std::atomic<int> x{0};
    int seen = -1;
    ctx.run([&](SimProc& rt) {
      if (rt.self() == 0) {
        rt.compute(300.0);  // store at t=300
        rt.ordered_store(x, 42, &x, sizeof(x));
      } else {
        rt.compute(100.0);  // load at t=100 < 300
        seen = rt.ordered_load(x, &x, sizeof(x));
      }
    });
    ASSERT_EQ(seen, 0) << "trial " << trial;
  }
}

TEST(SimOrdered, ChargesLikeReadsAndWrites) {
  PlatformSpec spec = PlatformSpec::origin2000();
  SimContext ctx(spec, 2);
  static std::atomic<int> shared_x{0};
  ctx.register_region(const_cast<std::atomic<int>*>(&shared_x), sizeof(shared_x),
                      HomePolicy::kFixed, 0, "x");
  ctx.run([&](SimProc& rt) {
    if (rt.self() == 1) {
      (void)rt.ordered_load(shared_x, &shared_x, sizeof(shared_x));  // remote miss
    }
    rt.barrier();
  });
  EXPECT_GE(ctx.clock_ns(1), static_cast<std::uint64_t>(spec.remote_miss_ns));
}

TEST(SimOrdered, TieBreakIsById) {
  // Both procs load-modify at the same virtual time; proc 0 must win the tie
  // and proc 1 must observe proc 0's store.
  for (int trial = 0; trial < 10; ++trial) {
    SimContext ctx(PlatformSpec::ideal(), 2);
    std::atomic<int> x{-1};
    int seen0 = -2, seen1 = -2;
    ctx.run([&](SimProc& rt) {
      if (rt.self() == 0) {
        seen0 = rt.ordered_load(x, &x, sizeof(x));
        rt.ordered_store(x, 0, &x, sizeof(x));
      } else {
        seen1 = rt.ordered_load(x, &x, sizeof(x));
        rt.ordered_store(x, 1, &x, sizeof(x));
      }
    });
    // Proc 0's whole sequence runs first (all ops at t=0, id tie-break),
    // then proc 1's: so proc 0 sees the initial value and proc 1 sees 0.
    ASSERT_EQ(seen0, -1);
    ASSERT_EQ(seen1, 0);
    ASSERT_EQ(x.load(), 1);
  }
}

TEST(SimOrdered, StressManyProcsCountdown) {
  // 8 procs chained by compute offsets each append their id through an
  // ordered RMW-like sequence; the result must be in virtual-time order.
  SimContext ctx(PlatformSpec::ideal(), 8);
  std::atomic<int> cursor{0};
  int order[8] = {};
  ctx.run([&](SimProc& rt) {
    rt.compute(100.0 * (8 - rt.self()));  // reverse order arrival
    const int k = rt.ordered_load(cursor, &cursor, 4);
    order[k] = rt.self();
    rt.ordered_store(cursor, k + 1, &cursor, 4);
  });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], 7 - i);
}

}  // namespace
}  // namespace ptb
