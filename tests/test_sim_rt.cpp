// Discrete-event simulator runtime: virtual clocks, conservative ordering,
// queued locks, barriers, phase attribution, determinism.
#include <gtest/gtest.h>

#include <atomic>

#include "sim/sim_rt.hpp"

namespace ptb {
namespace {

PlatformSpec ideal() { return PlatformSpec::ideal(); }

TEST(SimRt, ComputeAdvancesClock) {
  PlatformSpec spec = ideal();
  spec.ns_per_work = 2.0;
  SimContext ctx(spec, 1);
  ctx.run([](SimProc& rt) { rt.compute(100.0); });
  EXPECT_EQ(ctx.clock_ns(0), 200u);
}

TEST(SimRt, BarrierAlignsClocks) {
  SimContext ctx(ideal(), 4);
  ctx.run([](SimProc& rt) {
    rt.compute(100.0 * (rt.self() + 1));  // clocks 100..400
    rt.barrier();
  });
  for (int p = 0; p < 4; ++p) EXPECT_EQ(ctx.clock_ns(p), 400u);
  // Barrier wait recorded for the early arrivers.
  EXPECT_DOUBLE_EQ(ctx.stats()[0].barrier_wait_ns, 300.0);
  EXPECT_DOUBLE_EQ(ctx.stats()[3].barrier_wait_ns, 0.0);
}

TEST(SimRt, LockSerializesInVirtualTime) {
  // All four processors arrive at the lock at the same virtual time and hold
  // it for 100 ns of compute each: releases at 100, 200, 300, 400.
  SimContext ctx(ideal(), 4);
  int shared = 0;
  ctx.run([&shared](SimProc& rt) {
    rt.lock(&shared);
    ++shared;
    rt.compute(100.0);
    rt.unlock(&shared);
  });
  EXPECT_EQ(shared, 4);
  std::vector<std::uint64_t> clocks;
  for (int p = 0; p < 4; ++p) clocks.push_back(ctx.clock_ns(p));
  std::sort(clocks.begin(), clocks.end());
  EXPECT_EQ(clocks, (std::vector<std::uint64_t>{100, 200, 300, 400}));
}

TEST(SimRt, LockGrantsFifoByRequestTime) {
  // Proc 0 grabs the lock at t=0 and holds it until 1000. Procs 1..3 request
  // at t = 300, 200, 100: grants must follow request order 3, 2, 1.
  SimContext ctx(ideal(), 4);
  int lock_obj = 0;
  std::vector<int> grant_order;
  ctx.run([&](SimProc& rt) {
    if (rt.self() == 0) {
      rt.lock(&lock_obj);
      rt.compute(1000.0);
      rt.unlock(&lock_obj);
      return;
    }
    rt.compute(100.0 * (4 - rt.self()));  // p1:300 p2:200 p3:100
    rt.lock(&lock_obj);
    grant_order.push_back(rt.self());  // safe: mutual exclusion via the lock
    rt.compute(10.0);
    rt.unlock(&lock_obj);
  });
  EXPECT_EQ(grant_order, (std::vector<int>{3, 2, 1}));
}

TEST(SimRt, LockWaitTimeRecorded) {
  SimContext ctx(ideal(), 2);
  int lock_obj = 0;
  ctx.run([&](SimProc& rt) {
    if (rt.self() == 0) {
      rt.lock(&lock_obj);
      rt.compute(500.0);
      rt.unlock(&lock_obj);
    } else {
      rt.compute(100.0);  // request at 100, granted at 500
      rt.lock(&lock_obj);
      rt.unlock(&lock_obj);
    }
  });
  EXPECT_DOUBLE_EQ(ctx.stats()[1].lock_wait_ns, 400.0);
}

TEST(SimRt, OrderedOpsExecuteInVirtualTimeOrder) {
  // Two processors hit a shared counter at virtual times 50 (proc 1) and 100
  // (proc 0): the min-clock rule must hand proc 1 the first ticket.
  SimContext ctx(ideal(), 2);
  std::atomic<std::int64_t> counter{0};
  std::int64_t ticket[2] = {-1, -1};
  ctx.run([&](SimProc& rt) {
    rt.compute(rt.self() == 0 ? 100.0 : 50.0);
    ticket[rt.self()] = rt.fetch_add(counter, 1);
    rt.barrier();
  });
  EXPECT_EQ(ticket[1], 0);
  EXPECT_EQ(ticket[0], 1);
}

TEST(SimRt, FetchAddReturnsSequencedValues) {
  SimContext ctx(ideal(), 8);
  std::atomic<std::int64_t> counter{0};
  std::vector<std::int64_t> got(8);
  ctx.run([&](SimProc& rt) {
    got[static_cast<std::size_t>(rt.self())] = rt.fetch_add(counter, 1);
  });
  std::sort(got.begin(), got.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(SimRt, PhaseAttribution) {
  SimContext ctx(ideal(), 2);
  ctx.run([](SimProc& rt) {
    rt.begin_phase(Phase::kTreeBuild);
    rt.compute(100.0);
    rt.barrier();
    rt.begin_phase(Phase::kForces);
    rt.compute(200.0);
    rt.barrier();
    rt.begin_phase(Phase::kOther);
  });
  for (int p = 0; p < 2; ++p) {
    EXPECT_DOUBLE_EQ(ctx.stats()[static_cast<std::size_t>(p)]
                         .phase_ns[static_cast<int>(Phase::kTreeBuild)],
                     100.0);
    EXPECT_DOUBLE_EQ(ctx.stats()[static_cast<std::size_t>(p)]
                         .phase_ns[static_cast<int>(Phase::kForces)],
                     200.0);
  }
}

TEST(SimRt, ReadSharedAccumulatesIntoPending) {
  PlatformSpec spec = PlatformSpec::origin2000();
  SimContext ctx(spec, 2);
  static char buf[4096];
  ctx.register_region(buf, sizeof(buf), HomePolicy::kFixed, 0, "buf");
  ctx.run([&](SimProc& rt) {
    if (rt.self() == 1) rt.read_shared(buf, 8);  // remote miss: 703 ns
    rt.barrier();
  });
  EXPECT_GE(ctx.clock_ns(1), 703u);
}

TEST(SimRt, DeterministicAcrossRuns) {
  // A contended mixed workload must produce bit-identical virtual clocks on
  // repeated runs.
  auto run_once = [](std::vector<std::uint64_t>& clocks, std::uint64_t& locks) {
    PlatformSpec spec = PlatformSpec::origin2000();
    SimContext ctx(spec, 8);
    static char buf[1 << 16];
    ctx.register_region(buf, sizeof(buf), HomePolicy::kInterleavedBlock, 0, "buf");
    int lock_obj = 0;
    ctx.run([&](SimProc& rt) {
      for (int i = 0; i < 50; ++i) {
        rt.compute(10.0 + rt.self());
        rt.read(buf + (i * 131 + rt.self() * 7) % 60000, 8);
        if (i % 5 == rt.self() % 5) {
          rt.lock(&lock_obj);
          rt.compute(5.0);
          rt.write(buf + (i * 17) % 60000, 8);
          rt.unlock(&lock_obj);
        }
        if (i % 10 == 9) rt.barrier();
      }
      rt.barrier();
    });
    clocks.clear();
    locks = 0;
    for (int p = 0; p < 8; ++p) {
      clocks.push_back(ctx.clock_ns(p));
      for (auto l : ctx.stats()[static_cast<std::size_t>(p)].lock_acquires) locks += l;
    }
  };
  std::vector<std::uint64_t> c1, c2;
  std::uint64_t l1 = 0, l2 = 0;
  run_once(c1, l1);
  run_once(c2, l2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(l1, l2);
  EXPECT_GT(l1, 0u);
}

TEST(SimRt, ElapsedIsMaxClock) {
  SimContext ctx(ideal(), 3);
  ctx.run([](SimProc& rt) { rt.compute(100.0 * (rt.self() + 1)); });
  EXPECT_EQ(ctx.elapsed_ns(), 300u);
}

TEST(SimRt, HlrcLockAcquireChargesProtocol) {
  const PlatformSpec spec = PlatformSpec::paragon();
  SimContext ctx(spec, 2);
  int lock_obj = 0;
  ctx.run([&](SimProc& rt) {
    if (rt.self() == 0) {
      rt.lock(&lock_obj);
      rt.unlock(&lock_obj);
    }
    rt.barrier();
  });
  // Acquire cost is the 3-hop SVM lock latency.
  EXPECT_GE(ctx.clock_ns(0), static_cast<std::uint64_t>(spec.svm_lock_ns));
}

TEST(SimRt, CriticalSectionDilationSerializesHlrcLocks) {
  // The paper's key SVM effect: a page fault INSIDE a critical section
  // dilates the lock hold time for everyone queued behind it.
  const PlatformSpec spec = PlatformSpec::paragon();
  SimContext ctx(spec, 4);
  static char page[4096 * 8];
  ctx.register_region(page, sizeof(page), HomePolicy::kFixed, 0, "p");
  int lock_obj = 0;
  ctx.run([&](SimProc& rt) {
    rt.lock(&lock_obj);
    rt.write(page + rt.self() * 16, 8);  // cold fault inside the CS
    rt.unlock(&lock_obj);
    rt.barrier();
  });
  // Last processor's finish time >= 4 acquires + 4 faults, serialized.
  const double serial = 4 * spec.svm_lock_ns + 4 * (spec.page_fault_ns + spec.twin_ns);
  EXPECT_GE(static_cast<double>(ctx.elapsed_ns()), serial * 0.9);
}

}  // namespace
}  // namespace ptb
