// ptb::race — vector-clock/epoch/lockset unit tests, synthetic detector
// scenarios on the simulator, and the end-to-end claims: every builder is
// race-free on every paper platform, SPACE acquires no locks, and eliding
// the insertion locks produces detectable races.
#include <gtest/gtest.h>

#include <atomic>

#include "harness/experiment.hpp"
#include "race/race.hpp"
#include "sim/sim_rt.hpp"

namespace ptb {
namespace {

using race::LocksetTable;
using race::RaceReport;
using race::VectorClock;

// --- epochs -----------------------------------------------------------------

TEST(RaceEpoch, PackRoundtrip) {
  const std::uint64_t e = race::epoch::pack(12345, Phase::kTreeBuild, 63);
  EXPECT_EQ(race::epoch::clock_of(e), 12345u);
  EXPECT_EQ(race::epoch::phase_of(e), Phase::kTreeBuild);
  EXPECT_EQ(race::epoch::proc_of(e), 63);
  EXPECT_NE(e, race::epoch::kNone);
}

TEST(RaceEpoch, NoneIsNotAValidFirstClock) {
  // Clocks start at 1, so a packed epoch never collides with kNone.
  EXPECT_NE(race::epoch::pack(1, Phase::kOther, 0), race::epoch::kNone);
}

// --- vector clocks ----------------------------------------------------------

TEST(RaceVectorClock, IncrementIsPerComponent) {
  VectorClock c(4);
  c.increment(2);
  c.increment(2);
  EXPECT_EQ(c.get(2), 2u);
  EXPECT_EQ(c.get(0), 0u);
}

TEST(RaceVectorClock, JoinIsComponentwiseMax) {
  VectorClock a(3), b(3);
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 7);
  b.set(2, 2);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 7u);
  EXPECT_EQ(a.get(2), 2u);
  // Join is idempotent.
  VectorClock before = a;
  a.join(b);
  for (int p = 0; p < 3; ++p) EXPECT_EQ(a.get(p), before.get(p));
}

TEST(RaceVectorClock, CoversIsTheHappensBeforeTest) {
  VectorClock c(2);
  c.set(0, 3);
  EXPECT_TRUE(c.covers(3, 0));
  EXPECT_TRUE(c.covers(1, 0));
  EXPECT_FALSE(c.covers(4, 0));
  EXPECT_FALSE(c.covers(1, 1));  // nothing of proc 1 seen yet
}

// --- locksets ---------------------------------------------------------------

TEST(RaceLockset, AddIsIdempotentAndInterned) {
  LocksetTable t;
  int a = 0, b = 0;
  const std::uint32_t s1 = t.add(LocksetTable::kEmpty, reinterpret_cast<std::uintptr_t>(&a));
  EXPECT_NE(s1, LocksetTable::kEmpty);
  EXPECT_EQ(t.add(s1, reinterpret_cast<std::uintptr_t>(&a)), s1);
  // Insertion order does not matter: {a,b} == {b,a}.
  const std::uint32_t ab = t.add(s1, reinterpret_cast<std::uintptr_t>(&b));
  const std::uint32_t ba = t.add(t.add(LocksetTable::kEmpty, reinterpret_cast<std::uintptr_t>(&b)),
                                 reinterpret_cast<std::uintptr_t>(&a));
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(t.contents(ab).size(), 2u);
}

TEST(RaceLockset, RemoveEdgeCases) {
  LocksetTable t;
  int a = 0, b = 0;
  const auto la = reinterpret_cast<std::uintptr_t>(&a);
  const auto lb = reinterpret_cast<std::uintptr_t>(&b);
  // Removing from the empty set and removing a non-member are no-ops.
  EXPECT_EQ(t.remove(LocksetTable::kEmpty, la), LocksetTable::kEmpty);
  const std::uint32_t sa = t.add(LocksetTable::kEmpty, la);
  EXPECT_EQ(t.remove(sa, lb), sa);
  EXPECT_EQ(t.remove(sa, la), LocksetTable::kEmpty);
}

TEST(RaceLockset, IntersectEdgeCases) {
  LocksetTable t;
  int a = 0, b = 0, c = 0;
  const auto la = reinterpret_cast<std::uintptr_t>(&a);
  const auto lb = reinterpret_cast<std::uintptr_t>(&b);
  const auto lc = reinterpret_cast<std::uintptr_t>(&c);
  const std::uint32_t ab = t.add(t.add(LocksetTable::kEmpty, la), lb);
  const std::uint32_t bc = t.add(t.add(LocksetTable::kEmpty, lb), lc);
  const std::uint32_t sa = t.add(LocksetTable::kEmpty, la);
  // Anything ∩ {} == {}.
  EXPECT_EQ(t.intersect(ab, LocksetTable::kEmpty), LocksetTable::kEmpty);
  EXPECT_EQ(t.intersect(LocksetTable::kEmpty, ab), LocksetTable::kEmpty);
  // Identity.
  EXPECT_EQ(t.intersect(ab, ab), ab);
  // Overlap and disjoint.
  EXPECT_EQ(t.contents(t.intersect(ab, bc)), std::vector<std::uintptr_t>{lb});
  EXPECT_EQ(t.intersect(sa, bc), LocksetTable::kEmpty);
}

// --- synthetic simulator scenarios ------------------------------------------

/// A 2..4-processor SimContext on the ideal platform with the detector on.
struct RaceHarness {
  explicit RaceHarness(int nprocs)
      : ctx(PlatformSpec::ideal(), nprocs, default_sim_backend(), /*race_detect=*/true) {}

  const RaceReport& report() const {
    const RaceReport* r = ctx.race_report();
    EXPECT_NE(r, nullptr);
    return *r;
  }

  SimContext ctx;
};

TEST(RaceDetect, WriteWriteRaceDetected) {
  RaceHarness h(2);
  int x = 0;
  h.ctx.register_region(&x, sizeof x, HomePolicy::kFixed, 0, "x");
  h.ctx.run([&](SimProc& rt) {
    rt.compute(10.0 * (rt.self() + 1));  // distinct virtual times, no sync
    x = rt.self();
    rt.write(&x, sizeof x);
  });
  const RaceReport& r = h.report();
  EXPECT_TRUE(r.enabled);
  ASSERT_EQ(r.races, 1u);
  ASSERT_EQ(r.top.size(), 1u);
  EXPECT_EQ(r.top[0].region, "x");
  EXPECT_EQ(r.top[0].offset, 0u);
  EXPECT_EQ(r.top[0].first_proc, 0);
  EXPECT_EQ(r.top[0].second_proc, 1);
  EXPECT_TRUE(r.top[0].first_write);
  EXPECT_TRUE(r.top[0].second_write);
  EXPECT_TRUE(r.top[0].held_locks.empty());
  EXPECT_FALSE(r.top[0].lockset_consistent);
}

TEST(RaceDetect, ReadWriteRaceDetected) {
  RaceHarness h(2);
  int x = 0;
  h.ctx.register_region(&x, sizeof x, HomePolicy::kFixed, 0, "x");
  h.ctx.run([&](SimProc& rt) {
    if (rt.self() == 0) {
      rt.read(&x, sizeof x);
    } else {
      rt.compute(50.0);
      x = 1;
      rt.write(&x, sizeof x);
    }
  });
  const RaceReport& r = h.report();
  ASSERT_EQ(r.races, 1u);
  EXPECT_FALSE(r.top[0].first_write);
  EXPECT_TRUE(r.top[0].second_write);
}

TEST(RaceDetect, EachGranuleReportsAtMostOnce) {
  RaceHarness h(2);
  int arr[2] = {0, 0};
  h.ctx.register_region(arr, sizeof arr, HomePolicy::kFixed, 0, "arr");
  h.ctx.run([&](SimProc& rt) {
    rt.compute(10.0 * (rt.self() + 1));
    for (int i = 0; i < 3; ++i) rt.write(&arr[0], sizeof(int));  // same granule
    rt.write(&arr[1], sizeof(int));                              // second granule
  });
  // Repeated racy accesses to arr[0] fold into one report; arr[1] is its own.
  EXPECT_EQ(h.report().races, 2u);
}

TEST(RaceDetect, LockOrdersCriticalSections) {
  RaceHarness h(4);
  int x = 0;
  int lk = 0;
  h.ctx.register_region(&x, sizeof x, HomePolicy::kFixed, 0, "x");
  h.ctx.run([&](SimProc& rt) {
    rt.lock(&lk);
    ++x;
    rt.write(&x, sizeof x);
    rt.compute(25.0);
    rt.unlock(&lk);
  });
  const RaceReport& r = h.report();
  EXPECT_EQ(r.races, 0u);
  EXPECT_EQ(r.lock_acquires, 4u);
  EXPECT_EQ(r.lock_releases, 4u);
  EXPECT_EQ(x, 4);
}

TEST(RaceDetect, BarrierOrdersPhases) {
  RaceHarness h(4);
  int x = 0;
  h.ctx.register_region(&x, sizeof x, HomePolicy::kFixed, 0, "x");
  h.ctx.run([&](SimProc& rt) {
    if (rt.self() == 0) {
      x = 1;
      rt.write(&x, sizeof x);
    }
    rt.barrier();
    rt.read(&x, sizeof x);
    rt.barrier();
    if (rt.self() == 3) {
      x = 2;
      rt.write(&x, sizeof x);
    }
  });
  const RaceReport& r = h.report();
  EXPECT_EQ(r.races, 0u);
  EXPECT_EQ(r.barriers, 8u);  // 4 procs x 2 barriers
}

TEST(RaceDetect, ConsecutiveBarrierGenerationsStayOrdered) {
  // Alternating writer across several barrier generations: every pair of
  // accesses is separated by at least one barrier, so zero races even though
  // the writer changes each round (exercises the two-slot generation logic).
  RaceHarness h(3);
  int x = 0;
  h.ctx.register_region(&x, sizeof x, HomePolicy::kFixed, 0, "x");
  h.ctx.run([&](SimProc& rt) {
    for (int round = 0; round < 6; ++round) {
      if (rt.self() == round % 3) {
        x = round;
        rt.write(&x, sizeof x);
      }
      rt.compute(1.0 + rt.self());  // skew arrivals
      rt.barrier();
    }
  });
  EXPECT_EQ(h.report().races, 0u);
}

TEST(RaceDetect, OrderedStorePublishes) {
  // The shared_insert publish pattern: plain-write the payload, then
  // ordered_store the flag; the reader ordered_loads the flag and only then
  // plain-reads the payload. Release/acquire on the atomic orders the plain
  // accesses.
  RaceHarness h(2);
  int payload = 0;
  std::atomic<int> flag{0};
  h.ctx.register_region(&payload, sizeof payload, HomePolicy::kFixed, 0, "payload");
  h.ctx.register_region(&flag, sizeof flag, HomePolicy::kFixed, 0, "flag");
  h.ctx.run([&](SimProc& rt) {
    if (rt.self() == 0) {
      payload = 42;
      rt.write(&payload, sizeof payload);
      rt.ordered_store(flag, 1, &flag, sizeof flag);
    } else {
      while (rt.ordered_load(flag, &flag, sizeof flag) == 0) rt.compute(10.0);
      rt.read(&payload, sizeof payload);
      EXPECT_EQ(payload, 42);
    }
  });
  const RaceReport& r = h.report();
  EXPECT_EQ(r.races, 0u);
  EXPECT_GT(r.atomics, 0u);
}

TEST(RaceDetect, FetchAddIsAcquireRelease) {
  // ORIG's shared-counter pattern: the processor that increments second
  // inherits the first's history through the acq_rel RMW.
  RaceHarness h(2);
  int x = 0;
  std::atomic<std::int64_t> ctr{0};
  h.ctx.register_region(&x, sizeof x, HomePolicy::kFixed, 0, "x");
  h.ctx.run([&](SimProc& rt) {
    if (rt.self() == 0) {
      x = 7;
      rt.write(&x, sizeof x);
      rt.fetch_add(ctr, 1);
    } else {
      rt.compute(100.0);  // increments strictly after proc 0's
      rt.fetch_add(ctr, 1);
      rt.read(&x, sizeof x);
    }
  });
  EXPECT_EQ(h.report().races, 0u);
}

TEST(RaceDetect, SharedReadersThenUnorderedWriterRaces) {
  // Two processors read concurrently (no race among reads — the shadow
  // inflates to shared-read state), then a third writes with no sync: the
  // write must race against the reads.
  RaceHarness h(3);
  int x = 0;
  h.ctx.register_region(&x, sizeof x, HomePolicy::kFixed, 0, "x");
  h.ctx.run([&](SimProc& rt) {
    if (rt.self() < 2) {
      rt.compute(10.0 * (rt.self() + 1));
      rt.read(&x, sizeof x);
    } else {
      rt.compute(100.0);
      x = 1;
      rt.write(&x, sizeof x);
    }
  });
  const RaceReport& r = h.report();
  ASSERT_EQ(r.races, 1u);
  EXPECT_FALSE(r.top[0].first_write);
  EXPECT_EQ(r.top[0].second_proc, 2);
}

TEST(RaceDetect, ReadSharedFastPathIsNotChecked) {
  // read_shared is the documented escape hatch (see race.hpp): concurrent
  // with a plain write it must NOT report.
  RaceHarness h(2);
  int x = 0;
  h.ctx.register_region(&x, sizeof x, HomePolicy::kFixed, 0, "x");
  h.ctx.run([&](SimProc& rt) {
    if (rt.self() == 0) {
      rt.read_shared(&x, sizeof x);
    } else {
      rt.compute(10.0);
      x = 1;
      rt.write(&x, sizeof x);
    }
  });
  EXPECT_EQ(h.report().races, 0u);
}

TEST(RaceDetect, UnregisteredAddressesArePrivate) {
  RaceHarness h(2);
  int x = 0;  // never registered
  h.ctx.run([&](SimProc& rt) {
    rt.compute(10.0 * (rt.self() + 1));
    x = rt.self();
    rt.write(&x, sizeof x);
  });
  EXPECT_EQ(h.report().races, 0u);
}

TEST(RaceDetect, DetectorDoesNotPerturbVirtualTime) {
  // Same program with the detector on and off: identical per-processor
  // virtual clocks (the decorator forwards the inner model's latencies).
  PlatformSpec spec = PlatformSpec::by_name("challenge");
  auto program = [](SimProc& rt, int* x, int* lk) {
    rt.lock(lk);
    ++*x;
    rt.write(x, sizeof *x);
    rt.compute(50.0);
    rt.unlock(lk);
    rt.barrier();
    rt.read(x, sizeof *x);
  };
  std::vector<std::uint64_t> clocks_off, clocks_on;
  for (bool detect : {false, true}) {
    SimContext ctx(spec, 4, default_sim_backend(), detect);
    int x = 0, lk = 0;
    ctx.register_region(&x, sizeof x, HomePolicy::kFixed, 0, "x");
    ctx.run([&](SimProc& rt) { program(rt, &x, &lk); });
    for (int p = 0; p < 4; ++p)
      (detect ? clocks_on : clocks_off).push_back(ctx.clock_ns(p));
  }
  EXPECT_EQ(clocks_on, clocks_off);
}

TEST(RaceDetect, DisabledByDefault) {
  SimContext ctx(PlatformSpec::ideal(), 2);
  EXPECT_EQ(ctx.race_report(), nullptr);
}

// --- end-to-end: the paper's synchronization claims -------------------------

class RaceMatrix : public ::testing::Test {
 protected:
  static ExperimentResult run_spec(const std::string& platform, Algorithm alg,
                                   bool elide = false) {
    ExperimentSpec spec;
    spec.platform = platform;
    spec.algorithm = alg;
    // The elided config is chosen to finish: lock elision really corrupts
    // the tree (lost bodies, dangling children), and many (n, procs) pairs
    // crash outright before the run completes. The DES is deterministic, so
    // this pair reliably survives long enough to report its races.
    spec.n = elide ? 512 : 1024;
    spec.nprocs = elide ? 2 : 4;
    spec.warmup_steps = 1;
    spec.measured_steps = 1;
    spec.race = true;
    spec.bh.elide_locks = elide;
    ExperimentRunner runner;
    return runner.run(spec);
  }
};

TEST_F(RaceMatrix, AllBuildersRaceFreeOnAllPlatforms) {
  for (const char* platform :
       {"challenge", "origin2000", "paragon", "typhoon0_hlrc", "typhoon0_sc"}) {
    for (Algorithm alg : all_algorithms()) {
      const ExperimentResult r = run_spec(platform, alg);
      ASSERT_TRUE(r.race.enabled);
      EXPECT_EQ(r.race.races, 0u)
          << platform << "/" << algorithm_name(alg) << "\n"
          << race::format_race_report(r.race);
      EXPECT_GT(r.race.checked_writes, 0u);
    }
  }
}

TEST_F(RaceMatrix, SpaceBuildsWithZeroTreeLocks) {
  // Paper §2.5: SPACE partitions space so "no synchronization is needed"
  // during tree building. The detector proves it: not one lock acquisition
  // in the tree-build phase, and still zero races.
  const ExperimentResult r = run_spec("origin2000", Algorithm::kSpace);
  EXPECT_EQ(r.race.races, 0u) << race::format_race_report(r.race);
  EXPECT_EQ(r.treebuild_locks_total, 0u);
}

TEST_F(RaceMatrix, ElidedLocksProduceRaces) {
  // Negative control: remove ORIG's insertion locks and the detector must
  // fire (otherwise the 0-race results above prove nothing).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "deliberate lock elision corrupts the tree under real "
                  "data races; sanitizers rightly abort on it";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "deliberate lock elision corrupts the tree under real "
                  "data races; sanitizers rightly abort on it";
#endif
#endif
  const ExperimentResult r = run_spec("challenge", Algorithm::kOrig, /*elide=*/true);
  ASSERT_TRUE(r.race.enabled);
  EXPECT_GE(r.race.races, 1u);
  ASSERT_FALSE(r.race.top.empty());
  EXPECT_FALSE(r.race.top[0].region.empty());
}

}  // namespace
}  // namespace ptb
