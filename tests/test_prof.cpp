// Tests for ptb::prof — recorder event patching, critical-path exactness
// (segments tile the run; p=1 degenerates to one segment), what-if replay
// fidelity (faithful replay == recorded elapsed; locks-free prediction vs a
// real --elide-locks run), cell resolution, profile JSON, and the paper's
// depth-contention claim measured end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "harness/experiment.hpp"
#include "json_checker.hpp"
#include "prof/critical_path.hpp"
#include "prof/prof.hpp"
#include "prof/profile.hpp"
#include "prof/whatif.hpp"
#include "trace/metrics.hpp"

namespace ptb {
namespace {

using prof::Capture;
using prof::CellResolver;
using prof::CriticalPath;
using prof::EvKind;
using prof::Recorder;
using prof::Scenario;
using testutil::JsonChecker;

// Two processors, one contended lock:
//   P0: acquires L at 0 (done 10), works, unlocks at 50 (done 60), finishes 80
//   P1: requests L at 5, blocks, granted 60, acquire done 70, unlocks
//       100..110, finishes 120
int lock_dummy;
Capture lock_handoff_capture() {
  Recorder r;
  r.begin_run(2);
  r.lock_acquired(0, &lock_dummy, 0, 10, Phase::kTreeBuild, 0);
  r.lock_wait_begin(1, &lock_dummy, 5, Phase::kTreeBuild);
  r.unlock(0, &lock_dummy, 50, 60, Phase::kTreeBuild, 0);
  r.lock_grant(/*waiter=*/1, /*granter=*/0, /*grant_ns=*/60);
  r.lock_acquired_end(1, 70, 0);
  r.unlock(1, &lock_dummy, 100, 110, Phase::kTreeBuild, 0);
  r.finish(0, 80, 0);
  r.finish(1, 120, 0);
  return r.take();
}

// Two processors, one barrier; P1 arrives last (release = 22), P0 departs
// and finishes later (50) so the path crosses the barrier edge.
Capture barrier_capture() {
  Recorder r;
  r.begin_run(2);
  r.barrier_arrive(0, 10, 12, Phase::kForces);
  r.barrier_arrive(1, 20, 22, Phase::kForces);
  r.barrier_release(/*release_ns=*/22, /*last=*/1);
  r.barrier_depart(0, 25, 0);
  r.barrier_depart(1, 25, 0);
  r.finish(0, 50, 0);
  r.finish(1, 40, 0);
  return r.take();
}

TEST(Recorder, PatchesGrantIntoThePendingLockEvent) {
  const Capture cap = lock_handoff_capture();
  ASSERT_EQ(cap.nprocs, 2);
  EXPECT_EQ(cap.elapsed_ns(), 120u);
  ASSERT_EQ(cap.log[1].size(), 3u);  // lock, unlock, finish
  const prof::Event& e = cap.log[1][0];
  EXPECT_EQ(e.kind, EvKind::kLock);
  EXPECT_TRUE(e.waited());
  EXPECT_EQ(e.cause, 0);
  EXPECT_EQ(e.t0, 5u);
  EXPECT_EQ(e.t1, 60u);
  EXPECT_EQ(e.t2, 70u);
  // cause_idx points at P0's unlock, the event that resolved the wait.
  EXPECT_EQ(cap.log[0][e.cause_idx].kind, EvKind::kUnlock);
}

TEST(Recorder, BarrierReleasePatchesEveryWaiterButNotTheLastArriver) {
  const Capture cap = barrier_capture();
  const prof::Event& w = cap.log[0][0];
  const prof::Event& last = cap.log[1][0];
  EXPECT_TRUE(w.waited());
  EXPECT_EQ(w.cause, 1);
  EXPECT_EQ(w.t1, 22u);
  EXPECT_FALSE(last.waited());  // the last arriver never blocked on anyone
  EXPECT_EQ(last.t1, 22u);
}

TEST(CriticalPathTest, LockHandoffChainTilesTheRun) {
  const Capture cap = lock_handoff_capture();
  const CriticalPath cp = critical_path(cap);
  EXPECT_EQ(cp.total_ns, 120u);
  EXPECT_EQ(cp.lock_edges, 1u);
  EXPECT_EQ(cp.barrier_edges, 0u);
  ASSERT_EQ(cp.segments.size(), 2u);
  // [0,60] on P0 entered via run start, then [60,120] on P1 via the handoff.
  EXPECT_EQ(cp.segments[0].proc, 0);
  EXPECT_EQ(cp.segments[0].end_ns, 60u);
  EXPECT_EQ(cp.segments[1].proc, 1);
  EXPECT_EQ(cp.segments[1].via, prof::Segment::Via::kLock);
  EXPECT_EQ(cp.via_start_ns + cp.via_lock_ns + cp.via_barrier_ns, cp.total_ns);
  ASSERT_EQ(cp.by_object.size(), 1u);
  EXPECT_EQ(cp.by_object[0].edges, 1u);
  EXPECT_EQ(cp.by_object[0].ns, 60u);
}

TEST(CriticalPathTest, BarrierEdgeHopsToTheLastArriver) {
  const Capture cap = barrier_capture();
  const CriticalPath cp = critical_path(cap);
  EXPECT_EQ(cp.total_ns, 50u);
  EXPECT_EQ(cp.barrier_edges, 1u);
  EXPECT_EQ(cp.lock_edges, 0u);
  ASSERT_EQ(cp.segments.size(), 2u);
  EXPECT_EQ(cp.segments[0].proc, 1);  // last arriver carries the path to 22
  EXPECT_EQ(cp.segments[0].end_ns, 22u);
  EXPECT_EQ(cp.segments[1].proc, 0);
  EXPECT_EQ(cp.segments[1].via, prof::Segment::Via::kBarrier);
  EXPECT_EQ(cp.via_barrier_ns, 28u);
}

TEST(WhatIfTest, FaithfulReplayReproducesTheRecordedElapsedTime) {
  EXPECT_EQ(prof::replay(lock_handoff_capture(), Scenario::kNone), 120u);
  EXPECT_EQ(prof::replay(barrier_capture(), Scenario::kNone), 50u);
}

TEST(WhatIfTest, ZeroingAnEdgeClassOnlyEverHelps) {
  const Capture lk = lock_handoff_capture();
  EXPECT_LT(prof::replay(lk, Scenario::kLocksFree), 120u);
  EXPECT_EQ(prof::replay(lk, Scenario::kBarriersFree), 120u);  // no barriers
  const Capture br = barrier_capture();
  EXPECT_LT(prof::replay(br, Scenario::kBarriersFree), 50u);
  EXPECT_EQ(prof::replay(br, Scenario::kLocksFree), 50u);  // no locks
}

TEST(CellResolverTest, ResolvesInsideRangesAndRejectsOutside) {
  alignas(64) static char arena[256];
  CellResolver cells;
  cells.add(arena, 64, /*depth=*/0, /*octant=*/0);
  cells.add(arena + 128, 64, /*depth=*/3, /*octant=*/5);
  cells.finalize();
  ASSERT_NE(cells.resolve(arena + 10), nullptr);
  EXPECT_EQ(cells.resolve(arena + 10)->depth, 0);
  ASSERT_NE(cells.resolve(arena + 128), nullptr);
  EXPECT_EQ(cells.resolve(arena + 128)->octant, 5);
  EXPECT_EQ(cells.resolve(arena + 64), nullptr);   // gap between cells
  EXPECT_EQ(cells.resolve(arena + 192), nullptr);  // past the end
}

TEST(ProfPath, FlagBeatsEnvAndEnvEnables) {
  ::setenv("PTB_PROF", "/tmp/env_prof.json", 1);
  EXPECT_EQ(prof::prof_path_from("/tmp/flag.json"), "/tmp/flag.json");
  EXPECT_EQ(prof::prof_path_from(""), "/tmp/env_prof.json");
  EXPECT_TRUE(prof::default_prof_enabled());
  ::setenv("PTB_PROF", "0", 1);
  EXPECT_FALSE(prof::default_prof_enabled());
  ::unsetenv("PTB_PROF");
  EXPECT_EQ(prof::prof_path_from(""), "");
  EXPECT_FALSE(prof::default_prof_enabled());
}

// --- end to end over the simulator ---

ExperimentSpec prof_spec(const char* platform, Algorithm alg, int n, int nprocs) {
  ExperimentSpec spec;
  spec.platform = platform;
  spec.algorithm = alg;
  spec.n = n;
  spec.nprocs = nprocs;
  spec.warmup_steps = 1;
  spec.measured_steps = 1;
  spec.prof = true;
  return spec;
}

TEST(ProfEndToEnd, SingleProcCriticalPathIsTheWholeRun) {
  ExperimentRunner runner;
  const ExperimentResult r = runner.run(prof_spec("challenge", Algorithm::kOrig, 600, 1));
  ASSERT_TRUE(r.profile.enabled);
  EXPECT_EQ(r.profile.cp.total_ns, r.profile.elapsed_ns);
  ASSERT_EQ(r.profile.cp.segments.size(), 1u);
  EXPECT_EQ(r.profile.cp.segments[0].via, prof::Segment::Via::kStart);
  EXPECT_EQ(r.profile.cp.via_start_ns, r.profile.elapsed_ns);
  EXPECT_EQ(r.profile.cp.lock_edges, 0u);
  EXPECT_EQ(r.profile.cp.barrier_edges, 0u);
}

TEST(ProfEndToEnd, ProfilingIsBitIdenticalAndThePathTilesTheRun) {
  ExperimentSpec spec = prof_spec("typhoon0_hlrc", Algorithm::kOrig, 1500, 4);

  spec.prof = false;
  ExperimentRunner plain_runner;
  const ExperimentResult plain = plain_runner.run(spec);

  spec.prof = true;
  ExperimentRunner prof_runner;
  const ExperimentResult profiled = prof_runner.run(spec);

  // Profiling must be a pure observer of the virtual execution.
  EXPECT_EQ(profiled.run.total_ns, plain.run.total_ns);
  EXPECT_EQ(profiled.treebuild_locks_total, plain.treebuild_locks_total);
  EXPECT_EQ(profiled.mem.page_faults, plain.mem.page_faults);
  EXPECT_FALSE(plain.profile.enabled);

  const prof::Profile& p = profiled.profile;
  ASSERT_TRUE(p.enabled);
  EXPECT_GT(p.events, 0u);

  // Exactness: chronological segments tile [0, elapsed] with no gaps.
  EXPECT_EQ(p.cp.total_ns, p.elapsed_ns);
  std::uint64_t sum = 0, cursor = 0;
  for (const prof::Segment& s : p.cp.segments) {
    EXPECT_EQ(s.begin_ns, cursor);
    cursor = s.end_ns;
    sum += s.dur_ns();
  }
  EXPECT_EQ(sum, p.elapsed_ns);
  std::uint64_t phase_sum = 0;
  for (int i = 0; i < kNumPhases; ++i)
    phase_sum += p.cp.phase_ns[static_cast<std::size_t>(i)];
  EXPECT_EQ(phase_sum, p.elapsed_ns);

  // ORIG under contention: locks appear both in the table and on the path.
  EXPECT_FALSE(p.locks.empty());
  EXPECT_GT(p.cp.lock_edges, 0u);
  ASSERT_GE(p.whatifs.size(), 3u);
  for (const prof::WhatIf& w : p.whatifs) {
    EXPECT_LE(w.predicted_ns, p.elapsed_ns) << prof::scenario_name(w.scenario);
    EXPECT_GE(w.speedup, 1.0);
  }

  // The JSON side of the same profile is well-formed and complete.
  const std::string json = prof::profile_json(p);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  for (const char* key : {"critical_path", "locks", "depth_contention", "whatif",
                          "lock_edges", "locks_free"})
    EXPECT_NE(json.find(key), std::string::npos) << key;

  // And the registry carries the same numbers.
  EXPECT_DOUBLE_EQ(profiled.metrics.value("prof.critical_path_ns", {}),
                   static_cast<double>(p.cp.total_ns));
  EXPECT_DOUBLE_EQ(profiled.metrics.value("prof.cp_ns", {{"via", "lock"}}),
                   static_cast<double>(p.cp.via_lock_ns));
}

TEST(ProfEndToEnd, SpaceHasNoLockEdgesOnTheCriticalPath) {
  ExperimentRunner runner;
  const ExperimentResult r = runner.run(prof_spec("challenge", Algorithm::kSpace, 1500, 4));
  ASSERT_TRUE(r.profile.enabled);
  EXPECT_EQ(r.profile.cp.lock_edges, 0u);
  EXPECT_GT(r.profile.cp.barrier_edges, 0u);
  EXPECT_EQ(r.profile.cp.via_lock_ns, 0u);
}

// The paper's root-contention claim, measured directly: under ORIG every
// insertion passes through the root, so lock waiting concentrates at the
// top of the tree and falls off with depth.
TEST(ProfEndToEnd, OrigLockWaitDecreasesWithTreeDepth) {
  ExperimentRunner runner;
  const ExperimentResult r = runner.run(prof_spec("challenge", Algorithm::kOrig, 4096, 8));
  ASSERT_TRUE(r.profile.enabled);
  const auto& depth = r.profile.depth;
  ASSERT_GE(depth.size(), 3u);
  ASSERT_EQ(depth[0].depth, 0);
  ASSERT_EQ(depth[1].depth, 1);
  ASSERT_EQ(depth[2].depth, 2);
  EXPECT_GT(depth[0].contended, 0u);
  EXPECT_GT(depth[0].lock_wait_ns, depth[1].lock_wait_ns);
  EXPECT_GT(depth[1].lock_wait_ns, depth[2].lock_wait_ns);
  // The root also dominates the per-object table.
  ASSERT_FALSE(r.profile.locks.empty());
  EXPECT_EQ(r.profile.locks[0].name, "root");
}

// Validates the causal claim against reality: the locks-free prediction from
// a locked run's capture vs the virtual time of a real --elide-locks run.
// Both profiles cover the same window (warm-up + measured steps), so the
// elapsed times are directly comparable. n=2048/p=4 is the largest challenge
// config where lock elision's genuine tree corruption does not crash the
// run (see docs/ANALYSIS.md); larger ones (e.g. n=4096/p=8) segfault.
TEST(ProfEndToEnd, LocksFreePredictionMatchesRealLockElision) {
  ExperimentSpec spec = prof_spec("challenge", Algorithm::kOrig, 2048, 4);
  ExperimentRunner locked_runner;
  const ExperimentResult locked = locked_runner.run(spec);
  ASSERT_TRUE(locked.profile.enabled);

  spec.bh.elide_locks = true;
  ExperimentRunner elided_runner;
  const ExperimentResult elided = elided_runner.run(spec);
  ASSERT_TRUE(elided.profile.enabled);

  std::uint64_t predicted = 0;
  for (const prof::WhatIf& w : locked.profile.whatifs)
    if (w.scenario == Scenario::kLocksFree) predicted = w.predicted_ns;
  ASSERT_GT(predicted, 0u);
  const double real = static_cast<double>(elided.profile.elapsed_ns);
  const double rel_err = std::abs(static_cast<double>(predicted) - real) / real;
  EXPECT_LE(rel_err, 0.15) << "predicted=" << predicted << " real=" << real;
}

}  // namespace
}  // namespace ptb
