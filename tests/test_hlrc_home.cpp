// Home-based LRC home-page semantics: the home's copy is the page.
#include <gtest/gtest.h>

#include <memory>

#include "mem/hlrc_model.hpp"

namespace ptb {
namespace {

class HlrcHomeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = PlatformSpec::typhoon0_hlrc();
    spec_.cache_bytes = 0;  // isolate protocol costs from the local cache
    model_ = std::make_unique<HlrcModel>(spec_, 4);
    // Home is processor 2 for the whole region.
    model_->register_region(buf_, sizeof(buf_), HomePolicy::kFixed, 2, "buf");
  }

  PlatformSpec spec_;
  std::unique_ptr<HlrcModel> model_;
  alignas(4096) char buf_[4096 * 2];
};

TEST_F(HlrcHomeTest, HomeNeverFaults) {
  EXPECT_EQ(model_->on_read(2, buf_, 8, 0), 0u);
  EXPECT_EQ(model_->proc_stats(2).page_faults, 0u);
  // Even after another processor writes and releases, and the home acquires.
  model_->on_write(1, buf_, 8, 0);
  model_->on_release(1, nullptr, 0);
  model_->on_acquire(2, nullptr, 0);
  EXPECT_EQ(model_->on_read(2, buf_, 8, 0), 0u);
  EXPECT_EQ(model_->proc_stats(2).page_faults, 0u);
}

TEST_F(HlrcHomeTest, HomeWritesInPlaceNoTwin) {
  EXPECT_EQ(model_->on_write(2, buf_, 8, 0), 0u);
  EXPECT_EQ(model_->proc_stats(2).twins, 0u);
}

TEST_F(HlrcHomeTest, HomeReleasePostsNoticeNotDiff) {
  model_->on_write(2, buf_, 8, 0);
  const auto c = model_->on_release(2, nullptr, 0);
  EXPECT_EQ(c, static_cast<std::uint64_t>(spec_.notice_ns));
  EXPECT_EQ(model_->proc_stats(2).diffs, 0u);
  EXPECT_EQ(model_->notice_log_size(), 1u);
}

TEST_F(HlrcHomeTest, HomeWriteInvalidatesRemoteCopiesLazily) {
  model_->on_read(0, buf_, 8, 0);  // proc 0 caches the page (fault)
  model_->on_write(2, buf_, 8, 0);
  model_->on_release(2, nullptr, 0);
  EXPECT_EQ(model_->on_read(0, buf_, 8, 0), 0u);  // still lazy-valid
  model_->on_acquire(0, nullptr, 0);
  EXPECT_EQ(model_->on_read(0, buf_, 8, 0),
            static_cast<std::uint64_t>(spec_.page_fault_ns));
}

TEST_F(HlrcHomeTest, NonHomeStillPaysFull) {
  const auto c = model_->on_write(3, buf_ + 4096, 8, 0);
  EXPECT_EQ(c, static_cast<std::uint64_t>(spec_.page_fault_ns + spec_.twin_ns));
  EXPECT_EQ(model_->on_release(3, nullptr, 0),
            static_cast<std::uint64_t>(spec_.diff_per_page_ns));
}

TEST(HlrcStriped, PerProcPoolsAreCheapForOwners) {
  // kProcStriped: each processor's slice of a region is homed on it.
  PlatformSpec spec = PlatformSpec::typhoon0_hlrc();
  spec.cache_bytes = 0;  // isolate protocol costs from the local cache
  HlrcModel model(spec, 2);
  alignas(4096) static char buf[4096 * 4];  // 2 pages per processor
  model.register_region(buf, sizeof(buf), HomePolicy::kProcStriped, 0, "buf");
  EXPECT_EQ(model.on_write(0, buf, 8, 0), 0u);               // own slice
  EXPECT_EQ(model.on_write(1, buf + 4096 * 2, 8, 0), 0u);    // own slice
  EXPECT_GT(model.on_write(1, buf, 8, 0), 0u);               // other's slice
}

}  // namespace
}  // namespace ptb
// ---------------------------------------------------------------------------
// Local (non-protocol) cache layer: a VALID page's data still costs local
// memory misses when cold in the node's own cache.
// ---------------------------------------------------------------------------
#include "support/aligned.hpp"

namespace ptb {
namespace {

TEST(HlrcLocalCache, ValidPagePaysLocalMissesOnce) {
  PlatformSpec spec = PlatformSpec::typhoon0_hlrc();  // 1 MB local cache
  HlrcModel model(spec, 2);
  alignas(4096) static char buf[4096];
  model.register_region(buf, sizeof(buf), HomePolicy::kFixed, 0, "buf");
  // Home processor: no faults, but a cold local cache line costs a miss.
  const auto first = model.on_read(0, buf, 8, 0);
  EXPECT_EQ(first, static_cast<std::uint64_t>(spec.local_miss_ns));
  EXPECT_EQ(model.on_read(0, buf, 8, 0), 0u);  // now cached locally
  // A different line of the same (valid) page misses again.
  EXPECT_EQ(model.on_read(0, buf + 512, 8, 0),
            static_cast<std::uint64_t>(spec.local_miss_ns));
}

TEST(HlrcLocalCache, CapacityBoundedLikeTheRealCache) {
  PlatformSpec spec = PlatformSpec::paragon();  // tiny i860 cache
  HlrcModel model(spec, 1);
  static AlignedVec<char> big(1 << 21);  // 2 MB >> 64 KB modeled cache
  model.register_region(big.data(), big.size(), HomePolicy::kFixed, 0, "big");
  // Stream through: every 64 B line misses.
  std::uint64_t cost = 0;
  for (std::size_t off = 0; off < big.size(); off += 64)
    cost += model.on_read(0, big.data() + off, 8, 0);
  EXPECT_GE(cost, static_cast<std::uint64_t>((big.size() / 64) * spec.local_miss_ns));
  // Re-reading the start misses again (evicted).
  EXPECT_GT(model.on_read(0, big.data(), 8, 0), 0u);
}

}  // namespace
}  // namespace ptb
