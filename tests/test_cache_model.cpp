// Set-associative LRU cache model with epoch-based (lazy) invalidation and
// its eager (touch_nv/mark_stale) twin used under serialized execution.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "mem/cache_model.hpp"

namespace ptb {
namespace {

TEST(CacheModel, MissThenHit) {
  CacheModel c;
  c.init(64 * 1024, 64, 2);
  EXPECT_FALSE(c.touch(7, 0));
  EXPECT_TRUE(c.touch(7, 0));
}

TEST(CacheModel, EpochBumpInvalidates) {
  CacheModel c;
  c.init(64 * 1024, 64, 2);
  c.touch(7, 0);
  EXPECT_FALSE(c.touch(7, 1));  // stale epoch: coherence miss
  EXPECT_TRUE(c.touch(7, 1));   // refilled at the new epoch
}

TEST(CacheModel, PresentDoesNotFill) {
  CacheModel c;
  c.init(64 * 1024, 64, 2);
  EXPECT_FALSE(c.present(9, 0));
  EXPECT_FALSE(c.touch(9, 0));
  EXPECT_TRUE(c.present(9, 0));
  EXPECT_FALSE(c.present(9, 3));  // wrong epoch
}

TEST(CacheModel, CapacityEviction) {
  // 2 sets x 1 way = 2 blocks capacity: touching many distinct blocks evicts.
  CacheModel c;
  c.init(2 * 64, 64, 1);
  for (std::size_t b = 0; b < 64; ++b) c.touch(b, 0);
  EXPECT_GT(c.evictions(), 0u);
  // With 64 recently-touched blocks and 2 slots, block 0 is long gone.
  EXPECT_FALSE(c.present(0, 0));
}

TEST(CacheModel, LruPrefersRecent) {
  // Force a single set (1 set of 2 ways) to exercise LRU order.
  CacheModel c;
  c.init(2 * 64, 64, 2);
  // Find three blocks mapping to the same set by brute force.
  // With one set, all blocks collide by construction.
  c.touch(1, 0);
  c.touch(2, 0);
  c.touch(1, 0);      // 1 is now most recent
  c.touch(3, 0);      // evicts 2 (LRU), not 1
  EXPECT_TRUE(c.present(1, 0));
  EXPECT_FALSE(c.present(2, 0));
}

TEST(CacheModel, InfiniteModeNeverEvicts) {
  CacheModel c;
  c.init(0, 4096, 1);
  for (std::size_t b = 0; b < 10000; ++b) c.touch(b, 0);
  EXPECT_EQ(c.evictions(), 0u);
  EXPECT_TRUE(c.present(0, 0));
  EXPECT_FALSE(c.present(0, 1));  // epochs still apply
}

TEST(CacheModel, ClearDropsContents) {
  CacheModel c;
  c.init(64 * 1024, 64, 2);
  c.touch(5, 0);
  c.clear();
  EXPECT_FALSE(c.present(5, 0));
}


TEST(CacheModel, EagerMatchesLazyOnRandomTraffic) {
  // The simulator's fiber backend runs the caches in eager-invalidation mode
  // (touch_nv probes, mark_stale sweeps at epoch bumps) while the threads
  // backend and the PTB_MEM_SLOWPATH oracle stay on lazy epochs. The two
  // must agree access for access: same hits, same evictions. Drive a pair of
  // per-processor cache sets with identical random traffic — reads by any
  // processor, writes (epoch bump + own refill) by any processor — and
  // compare every outcome.
  constexpr int kProcs = 3;
  constexpr std::size_t kBlocks = 96;  // > capacity: evictions happen
  std::vector<CacheModel> lazy(kProcs);
  std::vector<CacheModel> eager(kProcs);
  for (int q = 0; q < kProcs; ++q) {
    lazy[static_cast<std::size_t>(q)].init(16 * 64, 64, 2);  // 8 sets x 2 ways
    eager[static_cast<std::size_t>(q)].init(16 * 64, 64, 2);
  }
  std::vector<std::uint32_t> epoch(kBlocks, 0);
  std::mt19937 rng(123);
  for (int op = 0; op < 20000; ++op) {
    const auto q = static_cast<std::size_t>(rng() % kProcs);
    const std::size_t b = rng() % kBlocks;
    if (rng() % 4 == 0) {  // write: bump epoch, sweep others, refill own copy
      ++epoch[b];
      lazy[q].touch(b, epoch[b]);
      for (std::size_t o = 0; o < kProcs; ++o)
        if (o != q) eager[o].mark_stale(b);
      eager[q].touch_nv(b);
    } else {
      const bool hl = lazy[q].touch(b, epoch[b]);
      const bool he = eager[q].touch_nv(b);
      ASSERT_EQ(hl, he) << "op " << op << " proc " << q << " block " << b;
    }
  }
  for (std::size_t q = 0; q < kProcs; ++q)
    EXPECT_EQ(lazy[q].evictions(), eager[q].evictions());
}

TEST(CacheModel, EagerMatchesLazyInfiniteMode) {
  CacheModel lazy;
  CacheModel eager;
  lazy.init(0, 64, 2);
  eager.init(0, 64, 2);
  EXPECT_EQ(lazy.touch(5, 0), eager.touch_nv(5));  // miss
  EXPECT_EQ(lazy.touch(5, 0), eager.touch_nv(5));  // hit
  eager.mark_stale(5);                             // epoch bump elsewhere
  EXPECT_EQ(lazy.touch(5, 1), eager.touch_nv(5));  // coherence miss
  EXPECT_EQ(lazy.touch(5, 1), eager.touch_nv(5));  // hit again
}

}  // namespace
}  // namespace ptb
