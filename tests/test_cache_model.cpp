// Set-associative LRU cache model with epoch-based (lazy) invalidation.
#include <gtest/gtest.h>

#include "mem/cache_model.hpp"

namespace ptb {
namespace {

TEST(CacheModel, MissThenHit) {
  CacheModel c;
  c.init(64 * 1024, 64, 2);
  EXPECT_FALSE(c.touch(7, 0));
  EXPECT_TRUE(c.touch(7, 0));
}

TEST(CacheModel, EpochBumpInvalidates) {
  CacheModel c;
  c.init(64 * 1024, 64, 2);
  c.touch(7, 0);
  EXPECT_FALSE(c.touch(7, 1));  // stale epoch: coherence miss
  EXPECT_TRUE(c.touch(7, 1));   // refilled at the new epoch
}

TEST(CacheModel, PresentDoesNotFill) {
  CacheModel c;
  c.init(64 * 1024, 64, 2);
  EXPECT_FALSE(c.present(9, 0));
  EXPECT_FALSE(c.touch(9, 0));
  EXPECT_TRUE(c.present(9, 0));
  EXPECT_FALSE(c.present(9, 3));  // wrong epoch
}

TEST(CacheModel, CapacityEviction) {
  // 2 sets x 1 way = 2 blocks capacity: touching many distinct blocks evicts.
  CacheModel c;
  c.init(2 * 64, 64, 1);
  for (std::size_t b = 0; b < 64; ++b) c.touch(b, 0);
  EXPECT_GT(c.evictions(), 0u);
  // With 64 recently-touched blocks and 2 slots, block 0 is long gone.
  EXPECT_FALSE(c.present(0, 0));
}

TEST(CacheModel, LruPrefersRecent) {
  // Force a single set (1 set of 2 ways) to exercise LRU order.
  CacheModel c;
  c.init(2 * 64, 64, 2);
  // Find three blocks mapping to the same set by brute force.
  // With one set, all blocks collide by construction.
  c.touch(1, 0);
  c.touch(2, 0);
  c.touch(1, 0);      // 1 is now most recent
  c.touch(3, 0);      // evicts 2 (LRU), not 1
  EXPECT_TRUE(c.present(1, 0));
  EXPECT_FALSE(c.present(2, 0));
}

TEST(CacheModel, InfiniteModeNeverEvicts) {
  CacheModel c;
  c.init(0, 4096, 1);
  for (std::size_t b = 0; b < 10000; ++b) c.touch(b, 0);
  EXPECT_EQ(c.evictions(), 0u);
  EXPECT_TRUE(c.present(0, 0));
  EXPECT_FALSE(c.present(0, 1));  // epochs still apply
}

TEST(CacheModel, ClearDropsContents) {
  CacheModel c;
  c.init(64 * 1024, 64, 2);
  c.touch(5, 0);
  c.clear();
  EXPECT_FALSE(c.present(5, 0));
}

}  // namespace
}  // namespace ptb
