// Galaxy generators: determinism, physical sanity (mass, COM, virial-ish
// velocity scale), and distribution shape differences.
#include <gtest/gtest.h>

#include <cmath>

#include "bh/generate.hpp"

namespace ptb {
namespace {

double total_mass(const Bodies& b) {
  double m = 0;
  for (const auto& x : b) m += x.mass;
  return m;
}

Vec3 center_of_mass(const Bodies& b) {
  Vec3 c{};
  double m = 0;
  for (const auto& x : b) {
    c += x.mass * x.pos;
    m += x.mass;
  }
  return (1.0 / m) * c;
}

TEST(Plummer, DeterministicInSeed) {
  const Bodies a = make_plummer(512, 99);
  const Bodies b = make_plummer(512, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pos, b[i].pos);
    EXPECT_EQ(a[i].vel, b[i].vel);
  }
}

TEST(Plummer, SeedChangesOutput) {
  const Bodies a = make_plummer(128, 1);
  const Bodies b = make_plummer(128, 2);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    if (!(a[i].pos == b[i].pos)) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Plummer, UnitMassAndCenteredCOM) {
  const Bodies b = make_plummer(4096, 5);
  EXPECT_NEAR(total_mass(b), 1.0, 1e-12);
  const Vec3 com = center_of_mass(b);
  EXPECT_NEAR(norm(com), 0.0, 1e-10);
}

TEST(Plummer, MomentumIsZero) {
  const Bodies b = make_plummer(4096, 5);
  Vec3 p{};
  for (const auto& x : b) p += x.mass * x.vel;
  EXPECT_NEAR(norm(p), 0.0, 1e-10);
}

TEST(Plummer, CentrallyCondensed) {
  // A Plummer sphere has half its mass within ~1.3 scale radii: verify the
  // distribution is far more concentrated than uniform.
  const Bodies b = make_plummer(8192, 7);
  int inner = 0;
  for (const auto& x : b)
    if (norm(x.pos) < 1.0) ++inner;
  EXPECT_GT(inner, static_cast<int>(b.size()) / 2);
}

TEST(Plummer, IdsAreStableIdentity) {
  const Bodies b = make_plummer(100, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b[static_cast<std::size_t>(i)].id, i);
}

TEST(UniformCube, InBounds) {
  const Bodies b = make_uniform_cube(2048, 21);
  EXPECT_NEAR(total_mass(b), 1.0, 1e-12);
  for (const auto& x : b) {
    EXPECT_GE(x.pos.x, -0.5);
    EXPECT_LT(x.pos.x, 0.5);
    EXPECT_GE(x.pos.y, -0.5);
    EXPECT_LT(x.pos.y, 0.5);
  }
}

TEST(CollidingPair, TwoClustersApproach) {
  const Bodies b = make_colliding_pair(2000, 31);
  EXPECT_EQ(b.size(), 2000u);
  EXPECT_NEAR(total_mass(b), 1.0, 1e-12);
  // First half is displaced negative-x and moving +x; second half opposite.
  double mean_x1 = 0, mean_x2 = 0, mean_vx1 = 0, mean_vx2 = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    mean_x1 += b[i].pos.x;
    mean_vx1 += b[i].vel.x;
  }
  for (std::size_t i = 1000; i < 2000; ++i) {
    mean_x2 += b[i].pos.x;
    mean_vx2 += b[i].vel.x;
  }
  EXPECT_LT(mean_x1 / 1000, -0.5);
  EXPECT_GT(mean_x2 / 1000, 0.5);
  EXPECT_GT(mean_vx1 / 1000, 0.1);
  EXPECT_LT(mean_vx2 / 1000, -0.1);
}

TEST(CollidingPair, UniqueIds) {
  const Bodies b = make_colliding_pair(501, 4);  // odd n exercises the split
  std::vector<char> seen(b.size(), 0);
  for (const auto& x : b) {
    ASSERT_GE(x.id, 0);
    ASSERT_LT(static_cast<std::size_t>(x.id), b.size());
    ASSERT_FALSE(seen[static_cast<std::size_t>(x.id)]);
    seen[static_cast<std::size_t>(x.id)] = 1;
  }
}

}  // namespace
}  // namespace ptb
