// Sequential reference octree: structural invariants, moments correctness,
// canonical serialization properties.
#include <gtest/gtest.h>

#include "bh/generate.hpp"
#include "bh/seqtree.hpp"
#include "bh/verify.hpp"

namespace ptb {
namespace {

struct SeqTreeCase {
  int n;
  int leaf_cap;
  std::uint64_t seed;
};

class SeqTreeP : public ::testing::TestWithParam<SeqTreeCase> {};

TEST_P(SeqTreeP, InvariantsHold) {
  const auto [n, leaf_cap, seed] = GetParam();
  BHConfig cfg;
  cfg.n = n;
  cfg.leaf_cap = leaf_cap;
  const Bodies bodies = make_plummer(n, seed);
  NodePool pool;
  pool.init(static_cast<std::size_t>(n) * 2 + 1024);
  Node* root = SeqTree::build(bodies, cfg, pool);
  SeqTree::compute_moments(root, bodies);
  const TreeCheckResult res = check_tree(root, bodies, cfg, /*check_moments=*/true);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.body_count, n);
  EXPECT_GT(res.leaf_count, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeqTreeP,
                         ::testing::Values(SeqTreeCase{64, 1, 3}, SeqTreeCase{64, 8, 3},
                                           SeqTreeCase{1000, 4, 5},
                                           SeqTreeCase{4096, 8, 7},
                                           SeqTreeCase{4096, 16, 7},
                                           SeqTreeCase{10000, 8, 11}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_k" +
                                  std::to_string(info.param.leaf_cap) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(SeqTree, SingleBodyIsRootLeaf) {
  BHConfig cfg;
  cfg.n = 1;
  Bodies bodies(1);
  bodies[0].pos = Vec3{0.1, 0.2, 0.3};
  bodies[0].mass = 1.0;
  NodePool pool;
  pool.init(16);
  Node* root = SeqTree::build(bodies, cfg, pool);
  EXPECT_TRUE(root->is_leaf());
  EXPECT_EQ(root->nbodies, 1);
}

TEST(SeqTree, MassConservedInMoments) {
  BHConfig cfg;
  cfg.n = 2048;
  const Bodies bodies = make_plummer(cfg.n, 17);
  NodePool pool;
  pool.init(8192);
  Node* root = SeqTree::build(bodies, cfg, pool);
  SeqTree::compute_moments(root, bodies);
  EXPECT_NEAR(root->mass, 1.0, 1e-12);
  // Root COM equals global COM (zeroed by the generator).
  EXPECT_NEAR(norm(root->com), 0.0, 1e-9);
}

TEST(SeqTree, CostRollupCountsBodies) {
  // With all body costs at the default 1.0, root->cost == n.
  BHConfig cfg;
  cfg.n = 777;
  const Bodies bodies = make_plummer(cfg.n, 19);
  NodePool pool;
  pool.init(4096);
  Node* root = SeqTree::build(bodies, cfg, pool);
  SeqTree::compute_moments(root, bodies);
  EXPECT_NEAR(root->cost, 777.0, 1e-9);
}

TEST(SeqTree, DepthGrowsWithSmallerLeafCap) {
  const Bodies bodies = make_plummer(4096, 23);
  BHConfig a;
  a.n = 4096;
  a.leaf_cap = 16;
  BHConfig b = a;
  b.leaf_cap = 1;
  NodePool pa, pb;
  pa.init(32768);
  pb.init(65536);
  const auto ra = check_tree(SeqTree::build(bodies, a, pa), bodies, a);
  const auto rb = check_tree(SeqTree::build(bodies, b, pb), bodies, b);
  ASSERT_TRUE(ra.ok) << ra.error;
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_GT(rb.max_depth, ra.max_depth);
  EXPECT_GT(rb.node_count, ra.node_count);
}

TEST(Canonical, IdenticalTreesHashEqual) {
  const Bodies bodies = make_plummer(1024, 29);
  BHConfig cfg;
  cfg.n = 1024;
  NodePool p1, p2;
  p1.init(8192);
  p2.init(8192);
  Node* r1 = SeqTree::build(bodies, cfg, p1);
  Node* r2 = SeqTree::build(bodies, cfg, p2);
  EXPECT_EQ(canonical_hash(r1, bodies), canonical_hash(r2, bodies));
  EXPECT_EQ(canonical_serialization(r1, bodies), canonical_serialization(r2, bodies));
}

TEST(Canonical, InsertionOrderIrrelevant) {
  // Build with bodies in reverse order: same octree, same hash.
  Bodies bodies = make_plummer(1024, 31);
  BHConfig cfg;
  cfg.n = 1024;
  NodePool p1;
  p1.init(8192);
  Node* r1 = SeqTree::build(bodies, cfg, p1);
  const auto h1 = canonical_hash(r1, bodies);

  Bodies reversed(bodies.rbegin(), bodies.rend());
  NodePool p2;
  p2.init(8192);
  Node* r2 = SeqTree::build(reversed, cfg, p2);
  EXPECT_EQ(h1, canonical_hash(r2, reversed));
}

TEST(Canonical, DifferentLeafCapDiffers) {
  const Bodies bodies = make_plummer(1024, 37);
  BHConfig a;
  a.n = 1024;
  a.leaf_cap = 8;
  BHConfig b = a;
  b.leaf_cap = 2;
  NodePool p1, p2;
  p1.init(8192);
  p2.init(16384);
  EXPECT_NE(canonical_hash(SeqTree::build(bodies, a, p1), bodies),
            canonical_hash(SeqTree::build(bodies, b, p2), bodies));
}

TEST(CheckTree, DetectsBodyOutsideLeaf) {
  Bodies bodies = make_plummer(256, 41);
  BHConfig cfg;
  cfg.n = 256;
  NodePool pool;
  pool.init(2048);
  Node* root = SeqTree::build(bodies, cfg, pool);
  ASSERT_TRUE(check_tree(root, bodies, cfg).ok);
  // Teleport a body without updating the tree: the checker must object.
  bodies[0].pos = Vec3{1e6, 1e6, 1e6};
  EXPECT_FALSE(check_tree(root, bodies, cfg).ok);
}

TEST(CheckTree, DetectsOverfullLeaf) {
  Bodies bodies = make_plummer(64, 43);
  BHConfig cfg;
  cfg.n = 64;
  cfg.leaf_cap = 8;
  NodePool pool;
  pool.init(1024);
  Node* root = SeqTree::build(bodies, cfg, pool);
  ASSERT_TRUE(check_tree(root, bodies, cfg).ok);
  cfg.leaf_cap = 1;  // judge the same tree by a stricter rule
  EXPECT_FALSE(check_tree(root, bodies, cfg).ok);
}

}  // namespace
}  // namespace ptb
