// Differential property test for the DES scheduler: random synchronization
// programs (compute / lock / unlock / barrier) are executed both by the
// threaded SimContext and by a simple sequential reference implementation of
// the same virtual-time semantics; final clocks must agree exactly.
#include <gtest/gtest.h>

#include <map>
#include <queue>

#include "sim/sim_rt.hpp"
#include "support/rng.hpp"

namespace ptb {
namespace {

struct Op {
  enum Kind { kCompute, kLock, kUnlock, kBarrier } kind;
  double amount = 0.0;  // compute units
  int lock_id = 0;
};

using Script = std::vector<Op>;

/// Generates one barrier-aligned random program per processor: `rounds`
/// barrier rounds, each with random compute and balanced lock/unlock pairs
/// over `nlocks` locks (critical sections may contain compute).
std::vector<Script> random_programs(Rng& rng, int nprocs, int rounds, int nlocks) {
  std::vector<Script> scripts(static_cast<std::size_t>(nprocs));
  for (auto& s : scripts) {
    for (int r = 0; r < rounds; ++r) {
      const int actions = 1 + static_cast<int>(rng.next_below(6));
      for (int a = 0; a < actions; ++a) {
        s.push_back(Op{Op::kCompute, static_cast<double>(1 + rng.next_below(500)), 0});
        if (rng.next_below(2) == 0) {
          const int lk = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nlocks)));
          s.push_back(Op{Op::kLock, 0, lk});
          s.push_back(Op{Op::kCompute, static_cast<double>(1 + rng.next_below(300)), 0});
          s.push_back(Op{Op::kUnlock, 0, lk});
        }
      }
      s.push_back(Op{Op::kBarrier, 0, 0});
    }
  }
  return scripts;
}

/// Sequential reference implementation of the scheduler semantics: execute
/// the globally minimum-clock runnable processor's next operation (ties by
/// id); locks grant FIFO-by-request-time; barriers release at the max
/// arrival clock. Protocol costs are zero (ideal platform).
std::vector<std::uint64_t> reference_run(const std::vector<Script>& scripts) {
  const int np = static_cast<int>(scripts.size());
  struct LockRef {
    bool held = false;
    std::vector<std::pair<std::uint64_t, int>> waiters;
  };
  std::vector<std::uint64_t> clock(static_cast<std::size_t>(np), 0);
  std::vector<std::size_t> pc(static_cast<std::size_t>(np), 0);
  enum class St { kRun, kLockWait, kBarrier, kDone };
  std::vector<St> state(static_cast<std::size_t>(np), St::kRun);
  std::map<int, LockRef> locks;
  int in_barrier = 0;

  auto alive = [&] {
    int c = 0;
    for (auto s : state)
      if (s != St::kDone) ++c;
    return c;
  };

  for (;;) {
    // Barrier release?
    if (in_barrier > 0 && in_barrier == alive()) {
      std::uint64_t mx = 0;
      for (int q = 0; q < np; ++q)
        if (state[static_cast<std::size_t>(q)] == St::kBarrier)
          mx = std::max(mx, clock[static_cast<std::size_t>(q)]);
      for (int q = 0; q < np; ++q)
        if (state[static_cast<std::size_t>(q)] == St::kBarrier) {
          clock[static_cast<std::size_t>(q)] = mx;
          state[static_cast<std::size_t>(q)] = St::kRun;
        }
      in_barrier = 0;
    }
    // Pick the min-clock runnable processor.
    int p = -1;
    for (int q = 0; q < np; ++q) {
      if (state[static_cast<std::size_t>(q)] != St::kRun) continue;
      if (p < 0 || clock[static_cast<std::size_t>(q)] < clock[static_cast<std::size_t>(p)])
        p = q;
    }
    if (p < 0) break;  // everyone blocked (barrier handled above) or done
    const auto pi = static_cast<std::size_t>(p);
    if (pc[pi] >= scripts[pi].size()) {
      state[pi] = St::kDone;
      continue;
    }
    const Op op = scripts[pi][pc[pi]++];
    switch (op.kind) {
      case Op::kCompute:
        clock[pi] += static_cast<std::uint64_t>(op.amount);  // ns_per_work = 1
        break;
      case Op::kLock: {
        LockRef& l = locks[op.lock_id];
        if (!l.held) {
          l.held = true;
        } else {
          l.waiters.emplace_back(clock[pi], p);
          state[pi] = St::kLockWait;
        }
        break;
      }
      case Op::kUnlock: {
        LockRef& l = locks[op.lock_id];
        if (l.waiters.empty()) {
          l.held = false;
        } else {
          auto best = std::min_element(l.waiters.begin(), l.waiters.end());
          const int w = best->second;
          l.waiters.erase(best);
          clock[static_cast<std::size_t>(w)] =
              std::max(clock[static_cast<std::size_t>(w)], clock[pi]);
          state[static_cast<std::size_t>(w)] = St::kRun;
        }
        break;
      }
      case Op::kBarrier:
        state[pi] = St::kBarrier;
        ++in_barrier;
        break;
    }
  }
  return clock;
}

std::vector<std::uint64_t> threaded_run(const std::vector<Script>& scripts) {
  const int np = static_cast<int>(scripts.size());
  SimContext ctx(PlatformSpec::ideal(), np);
  static int lock_objs[64];
  ctx.run([&](SimProc& rt) {
    for (const Op& op : scripts[static_cast<std::size_t>(rt.self())]) {
      switch (op.kind) {
        case Op::kCompute:
          rt.compute(op.amount);
          break;
        case Op::kLock:
          rt.lock(&lock_objs[op.lock_id]);
          break;
        case Op::kUnlock:
          rt.unlock(&lock_objs[op.lock_id]);
          break;
        case Op::kBarrier:
          rt.barrier();
          break;
      }
    }
  });
  std::vector<std::uint64_t> clocks;
  for (int p = 0; p < np; ++p) clocks.push_back(ctx.clock_ns(p));
  return clocks;
}

class SimReferenceP : public ::testing::TestWithParam<int> {};

TEST_P(SimReferenceP, ThreadedMatchesSequentialReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
  const int np = 2 + static_cast<int>(rng.next_below(7));
  const int rounds = 1 + static_cast<int>(rng.next_below(4));
  const int nlocks = 1 + static_cast<int>(rng.next_below(5));
  const auto scripts = random_programs(rng, np, rounds, nlocks);
  const auto expect = reference_run(scripts);
  const auto got = threaded_run(scripts);
  ASSERT_EQ(expect, got) << "np=" << np << " rounds=" << rounds
                         << " nlocks=" << nlocks;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SimReferenceP, ::testing::Range(0, 30));

}  // namespace
}  // namespace ptb
