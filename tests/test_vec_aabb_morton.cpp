// Geometry primitives: Vec3 algebra, cubes/octants, Morton keys.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "bh/aabb.hpp"
#include "bh/morton.hpp"
#include "bh/vec3.hpp"
#include "support/rng.hpp"

namespace ptb {
namespace {

TEST(Vec3, Algebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(a), 14.0);
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
}

TEST(Vec3, Indexing) {
  Vec3 v{1, 2, 3};
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  v[1] = 9.0;
  EXPECT_DOUBLE_EQ(v.y, 9.0);
}

TEST(Cube, ContainsIsHalfOpen) {
  const Cube c{Vec3{0, 0, 0}, 1.0};
  EXPECT_TRUE(c.contains(Vec3{0, 0, 0}));
  EXPECT_TRUE(c.contains(Vec3{-1, -1, -1}));  // low edge included
  EXPECT_FALSE(c.contains(Vec3{1, 0, 0}));    // high edge excluded
  EXPECT_FALSE(c.contains(Vec3{2, 0, 0}));
}

TEST(Cube, OctantIndexing) {
  const Cube c{Vec3{0, 0, 0}, 1.0};
  EXPECT_EQ(c.octant_of(Vec3{-0.5, -0.5, -0.5}), 0);
  EXPECT_EQ(c.octant_of(Vec3{0.5, -0.5, -0.5}), 1);
  EXPECT_EQ(c.octant_of(Vec3{-0.5, 0.5, -0.5}), 2);
  EXPECT_EQ(c.octant_of(Vec3{-0.5, -0.5, 0.5}), 4);
  EXPECT_EQ(c.octant_of(Vec3{0.5, 0.5, 0.5}), 7);
}

TEST(Cube, ChildGeometryRoundTrip) {
  const Cube c{Vec3{1, 2, 3}, 4.0};
  for (int o = 0; o < 8; ++o) {
    const Cube ch = c.child(o);
    EXPECT_DOUBLE_EQ(ch.half, 2.0);
    // The child's center lies in octant o of the parent.
    EXPECT_EQ(c.octant_of(ch.center), o);
    // Points in the child are in the parent.
    EXPECT_TRUE(c.contains(ch.center));
  }
}

TEST(Cube, PointLandsInItsOctantChild) {
  Rng rng(5);
  const Cube c{Vec3{0, 0, 0}, 2.0};
  for (int i = 0; i < 1000; ++i) {
    const Vec3 p{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
    const int o = c.octant_of(p);
    EXPECT_TRUE(c.child(o).contains(p));
  }
}

TEST(BoundingCube, EnclosesAllStrictly) {
  Rng rng(9);
  std::vector<Vec3> pts;
  for (int i = 0; i < 500; ++i)
    pts.push_back(Vec3{rng.uniform(-3, 7), rng.uniform(0, 1), rng.uniform(-9, -2)});
  const Cube c = bounding_cube(pts);
  for (const Vec3& p : pts) EXPECT_TRUE(c.contains(p));
}

TEST(BoundingCube, MatchesMinMaxVariant) {
  std::vector<Vec3> pts{{0, 0, 0}, {1, 2, 3}, {-1, 0.5, 2}};
  const Cube a = bounding_cube(pts);
  const Cube b = cube_from_minmax(Vec3{-1, 0, 0}, Vec3{1, 2, 3});
  EXPECT_EQ(a.center, b.center);
  EXPECT_DOUBLE_EQ(a.half, b.half);
}

TEST(Morton, EncodeDecodeRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next_below(1u << 21));
    const auto y = static_cast<std::uint32_t>(rng.next_below(1u << 21));
    const auto z = static_cast<std::uint32_t>(rng.next_below(1u << 21));
    std::uint32_t dx, dy, dz;
    morton_decode(morton_encode(x, y, z), dx, dy, dz);
    ASSERT_EQ(x, dx);
    ASSERT_EQ(y, dy);
    ASSERT_EQ(z, dz);
  }
}

TEST(Morton, OrderRespectsOctants) {
  // All points in a lower octant of the root sort before points in a higher
  // octant (property of Z-order with our bit assignment).
  const Cube root{Vec3{0, 0, 0}, 1.0};
  const auto lo = morton_key(Vec3{-0.5, -0.5, -0.5}, root);
  const auto hi = morton_key(Vec3{0.5, 0.5, 0.5}, root);
  EXPECT_LT(lo, hi);
}

TEST(Morton, ClampsOutOfRange) {
  const Cube root{Vec3{0, 0, 0}, 1.0};
  // Far outside the cube clamps to the maximum quantized coordinate.
  const auto k = morton_key(Vec3{100, 100, 100}, root);
  EXPECT_EQ(k, morton_encode(0x1fffff, 0x1fffff, 0x1fffff));
  const auto lo = morton_key(Vec3{-100, -100, -100}, root);
  EXPECT_EQ(lo, 0u);
}

TEST(Morton, BoundaryCoordinatesStayInside) {
  // A coordinate exactly on the AABB's high face is outside the half-open
  // cube; the key must still clamp to the top quantum, never wrap to 0 or
  // produce a 22nd bit. The low face maps to quantum 0.
  const Cube root{Vec3{0.5, 0.5, 0.5}, 0.5};  // unit cube [0,1)^3
  const auto hi = morton_key(Vec3{1.0, 1.0, 1.0}, root);
  EXPECT_EQ(hi, morton_encode(0x1fffff, 0x1fffff, 0x1fffff));
  const auto lo = morton_key(Vec3{0.0, 0.0, 0.0}, root);
  EXPECT_EQ(lo, 0u);
  // One ulp below the face still lands in the top quantum.
  const double below = std::nextafter(1.0, 0.0);
  EXPECT_EQ(morton_key(Vec3{below, below, below}, root), hi);
  // Every key uses at most 63 bits (21 per axis).
  EXPECT_EQ(hi >> 63, 0u);
}

TEST(Morton, TwentyOneBitPerAxisClamp) {
  // Quantization saturates at 2^21 - 1 per axis: positions closer together
  // than one quantum (2 * half / 2^21) can map to the SAME key, and the
  // key can never resolve more than kMortonLevels octant triplets.
  const Cube root{Vec3{0, 0, 0}, 1.0};
  const double quantum = 2.0 / 2097152.0;
  const Vec3 a{-1.0, -1.0, -1.0};
  const Vec3 b{-1.0 + quantum / 4.0, -1.0, -1.0};  // sub-quantum apart
  EXPECT_EQ(morton_key(a, root), morton_key(b, root));
  const Vec3 c{-1.0 + 1.5 * quantum, -1.0, -1.0};  // more than one quantum
  EXPECT_NE(morton_key(a, root), morton_key(c, root));
}

TEST(Morton, DuplicatePositionsShareAKey) {
  Rng rng(17);
  const Cube root{Vec3{0, 0, 0}, 2.0};
  for (int i = 0; i < 200; ++i) {
    const Vec3 p{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
    EXPECT_EQ(morton_key(p, root), morton_key(p, root));
  }
}

TEST(Morton, OctantPathMatchesGeometricDescent) {
  // The key's octant path (top-down 3-bit groups) must agree with the
  // geometric descent Cube::octant_of takes through child cubes — this is
  // the bridge that lets RADIX build the same tree the insertion builders
  // build. Quantized and geometric descent agree until the descent cube
  // shrinks to the key quantum, so check the first levels only.
  Rng rng(23);
  const Cube root{Vec3{0.25, -0.5, 1.0}, 3.0};
  for (int i = 0; i < 500; ++i) {
    const Vec3 p{rng.uniform(root.center.x - 3, root.center.x + 3),
                 rng.uniform(root.center.y - 3, root.center.y + 3),
                 rng.uniform(root.center.z - 3, root.center.z + 3)};
    const std::uint64_t key = morton_key(p, root);
    Cube c = root;
    for (int level = 0; level < 12; ++level) {
      const int o = c.octant_of(p);
      ASSERT_EQ(morton_octant(key, level), o)
          << "level " << level << " point (" << p.x << "," << p.y << "," << p.z << ")";
      c = c.child(o);
    }
  }
}

TEST(Morton, PrefixIdentifiesSharedCells) {
  const Cube root{Vec3{0, 0, 0}, 1.0};
  // Two points in the same root octant but different sub-octants: prefixes
  // agree at level 0 and diverge at level 1.
  const Vec3 a{0.1, 0.1, 0.1};   // octant 7, then octant 0 of that child
  const Vec3 b{0.9, 0.9, 0.9};   // octant 7, then octant 7 of that child
  const auto ka = morton_key(a, root);
  const auto kb = morton_key(b, root);
  EXPECT_EQ(morton_prefix(ka, 0), morton_prefix(kb, 0));
  EXPECT_NE(morton_prefix(ka, 1), morton_prefix(kb, 1));
  // The level-l prefix is the level-(l-1) prefix extended by the octant.
  for (int level = 1; level < kMortonLevels; ++level)
    EXPECT_EQ(morton_prefix(ka, level),
              (morton_prefix(ka, level - 1) << 3) |
                  static_cast<std::uint64_t>(morton_octant(ka, level)));
}

}  // namespace
}  // namespace ptb
