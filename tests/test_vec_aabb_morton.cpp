// Geometry primitives: Vec3 algebra, cubes/octants, Morton keys.
#include <gtest/gtest.h>

#include "bh/aabb.hpp"
#include "bh/morton.hpp"
#include "bh/vec3.hpp"
#include "support/rng.hpp"

namespace ptb {
namespace {

TEST(Vec3, Algebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(a), 14.0);
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
}

TEST(Vec3, Indexing) {
  Vec3 v{1, 2, 3};
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  v[1] = 9.0;
  EXPECT_DOUBLE_EQ(v.y, 9.0);
}

TEST(Cube, ContainsIsHalfOpen) {
  const Cube c{Vec3{0, 0, 0}, 1.0};
  EXPECT_TRUE(c.contains(Vec3{0, 0, 0}));
  EXPECT_TRUE(c.contains(Vec3{-1, -1, -1}));  // low edge included
  EXPECT_FALSE(c.contains(Vec3{1, 0, 0}));    // high edge excluded
  EXPECT_FALSE(c.contains(Vec3{2, 0, 0}));
}

TEST(Cube, OctantIndexing) {
  const Cube c{Vec3{0, 0, 0}, 1.0};
  EXPECT_EQ(c.octant_of(Vec3{-0.5, -0.5, -0.5}), 0);
  EXPECT_EQ(c.octant_of(Vec3{0.5, -0.5, -0.5}), 1);
  EXPECT_EQ(c.octant_of(Vec3{-0.5, 0.5, -0.5}), 2);
  EXPECT_EQ(c.octant_of(Vec3{-0.5, -0.5, 0.5}), 4);
  EXPECT_EQ(c.octant_of(Vec3{0.5, 0.5, 0.5}), 7);
}

TEST(Cube, ChildGeometryRoundTrip) {
  const Cube c{Vec3{1, 2, 3}, 4.0};
  for (int o = 0; o < 8; ++o) {
    const Cube ch = c.child(o);
    EXPECT_DOUBLE_EQ(ch.half, 2.0);
    // The child's center lies in octant o of the parent.
    EXPECT_EQ(c.octant_of(ch.center), o);
    // Points in the child are in the parent.
    EXPECT_TRUE(c.contains(ch.center));
  }
}

TEST(Cube, PointLandsInItsOctantChild) {
  Rng rng(5);
  const Cube c{Vec3{0, 0, 0}, 2.0};
  for (int i = 0; i < 1000; ++i) {
    const Vec3 p{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
    const int o = c.octant_of(p);
    EXPECT_TRUE(c.child(o).contains(p));
  }
}

TEST(BoundingCube, EnclosesAllStrictly) {
  Rng rng(9);
  std::vector<Vec3> pts;
  for (int i = 0; i < 500; ++i)
    pts.push_back(Vec3{rng.uniform(-3, 7), rng.uniform(0, 1), rng.uniform(-9, -2)});
  const Cube c = bounding_cube(pts);
  for (const Vec3& p : pts) EXPECT_TRUE(c.contains(p));
}

TEST(BoundingCube, MatchesMinMaxVariant) {
  std::vector<Vec3> pts{{0, 0, 0}, {1, 2, 3}, {-1, 0.5, 2}};
  const Cube a = bounding_cube(pts);
  const Cube b = cube_from_minmax(Vec3{-1, 0, 0}, Vec3{1, 2, 3});
  EXPECT_EQ(a.center, b.center);
  EXPECT_DOUBLE_EQ(a.half, b.half);
}

TEST(Morton, EncodeDecodeRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next_below(1u << 21));
    const auto y = static_cast<std::uint32_t>(rng.next_below(1u << 21));
    const auto z = static_cast<std::uint32_t>(rng.next_below(1u << 21));
    std::uint32_t dx, dy, dz;
    morton_decode(morton_encode(x, y, z), dx, dy, dz);
    ASSERT_EQ(x, dx);
    ASSERT_EQ(y, dy);
    ASSERT_EQ(z, dz);
  }
}

TEST(Morton, OrderRespectsOctants) {
  // All points in a lower octant of the root sort before points in a higher
  // octant (property of Z-order with our bit assignment).
  const Cube root{Vec3{0, 0, 0}, 1.0};
  const auto lo = morton_key(Vec3{-0.5, -0.5, -0.5}, root);
  const auto hi = morton_key(Vec3{0.5, 0.5, 0.5}, root);
  EXPECT_LT(lo, hi);
}

TEST(Morton, ClampsOutOfRange) {
  const Cube root{Vec3{0, 0, 0}, 1.0};
  // Far outside the cube clamps to the maximum quantized coordinate.
  const auto k = morton_key(Vec3{100, 100, 100}, root);
  EXPECT_EQ(k, morton_encode(0x1fffff, 0x1fffff, 0x1fffff));
  const auto lo = morton_key(Vec3{-100, -100, -100}, root);
  EXPECT_EQ(lo, 0u);
}

}  // namespace
}  // namespace ptb
