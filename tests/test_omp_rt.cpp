// OpenMP runtime: the builders under an OpenMP team, cross-checked against
// the sequential reference and the std::thread runtime.
#include <gtest/gtest.h>

#ifdef PTB_HAVE_OPENMP

#include "bh/seqtree.hpp"
#include "bh/verify.hpp"
#include "harness/app.hpp"
#include "rt/omp_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/space.hpp"

namespace ptb {
namespace {

std::uint64_t reference_hash(const AppState& st) {
  NodePool pool;
  pool.init(static_cast<std::size_t>(st.cfg.n) * 2 + 1024);
  Node* root = SeqTree::build(st.bodies, st.cfg, pool);
  return canonical_hash(root, st.bodies);
}

template <class Builder>
void omp_build_matches_reference(int n, int np) {
  BHConfig cfg;
  cfg.n = n;
  AppState st = make_app_state(cfg, np);
  OmpContext ctx(np);
  Builder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](OmpProc& rt) {
    builder.build(rt);
    rt.barrier();
  });
  const TreeCheckResult check = check_tree(st.tree.root, st.bodies, st.cfg);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(canonical_hash(st.tree.root, st.bodies), reference_hash(st));
}

TEST(OmpRt, OrigBuild) { omp_build_matches_reference<OrigBuilder>(4000, 4); }
TEST(OmpRt, LocalBuild) { omp_build_matches_reference<LocalBuilder>(4000, 4); }
TEST(OmpRt, SpaceBuild) { omp_build_matches_reference<SpaceBuilder>(4000, 4); }

TEST(OmpRt, FullTimestepPipeline) {
  BHConfig cfg;
  cfg.n = 2000;
  AppState st = make_app_state(cfg, 4);
  OmpContext ctx(4);
  LocalBuilder builder(st);
  ctx.run([&](OmpProc& rt) {
    for (int s = 0; s < 2; ++s) timestep(rt, st, builder, true);
    builder.build(rt);
    rt.barrier();
  });
  const TreeCheckResult check = check_tree(st.tree.root, st.bodies, st.cfg);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.body_count, cfg.n);
}

TEST(OmpRt, StatsAreTracked) {
  BHConfig cfg;
  cfg.n = 1000;
  AppState st = make_app_state(cfg, 4);
  OmpContext ctx(4);
  OrigBuilder builder(st);
  ctx.run([&](OmpProc& rt) {
    rt.begin_phase(Phase::kTreeBuild);
    builder.build(rt);
    rt.barrier();
    rt.begin_phase(Phase::kOther);
  });
  std::uint64_t locks = 0;
  for (const auto& ps : ctx.stats())
    locks += ps.lock_acquires[static_cast<int>(Phase::kTreeBuild)];
  EXPECT_GT(locks, 500u);
}

}  // namespace
}  // namespace ptb

#endif  // PTB_HAVE_OPENMP
