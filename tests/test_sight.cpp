// Tests for ptb::sight — sharing-pattern classification, the planted
// false-sharing fixture (two per-proc counters in one 64 B line) with its
// padded negative control, exact reuse-distance / working-set tracking, the
// bit-identity guarantee across the full algorithm × platform matrix (sight
// must be a pure observer of virtual time), sight JSON, and the metrics
// bridge.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "json_checker.hpp"
#include "mem/model.hpp"
#include "platform/spec.hpp"
#include "sight/sight.hpp"
#include "support/cell_resolver.hpp"

namespace ptb {
namespace {

using sight::LineClass;
using sight::LineUse;
using sight::SightModel;
using sight::SightReport;
using testutil::JsonChecker;

std::unique_ptr<SightModel> make_sight(int nprocs) {
  return std::make_unique<SightModel>(make_mem_model(PlatformSpec::ideal(), nprocs));
}

std::uint64_t class_lines(const SightReport& r, LineClass c) {
  return r.total_classes[static_cast<std::size_t>(c)];
}

// --- classification taxonomy ---

TEST(SightClassify, OneProcessorIsPrivateRegardlessOfMix) {
  LineUse u;
  EXPECT_EQ(sight::classify(u), LineClass::kUntouched);
  u.readers = 0b1;
  u.reads = 3;
  EXPECT_EQ(sight::classify(u), LineClass::kPrivate);
  u.writers = 0b1;
  u.writes = 2;
  EXPECT_EQ(sight::classify(u), LineClass::kPrivate);
}

TEST(SightClassify, MultipleReadersNoWriterIsReadShared) {
  LineUse u;
  u.readers = 0b1011;
  u.reads = 9;
  EXPECT_EQ(sight::classify(u), LineClass::kReadShared);
}

TEST(SightClassify, SingleWriterWithReadersIsProducerConsumer) {
  LineUse u;
  u.readers = 0b110;
  u.writers = 0b001;
  u.reads = 6;
  u.writes = 3;
  EXPECT_EQ(sight::classify(u), LineClass::kProducerConsumer);
}

TEST(SightClassify, ReadBeforeWriteTransfersAreMigratory) {
  LineUse u;
  u.readers = 0b11;
  u.writers = 0b11;
  u.reads = 8;
  u.writes = 8;
  u.writer_changes = 4;
  u.migratory_changes = 4;  // every new owner read the line first
  EXPECT_EQ(sight::classify(u), LineClass::kMigratory);
  u.migratory_changes = 3;  // 3/4 transfers read-first still qualifies
  EXPECT_EQ(sight::classify(u), LineClass::kMigratory);
}

TEST(SightClassify, BlindWriteBouncingIsPingPong) {
  LineUse u;
  u.writers = 0b11;
  u.writes = 8;
  u.writer_changes = 4;
  u.migratory_changes = 0;
  EXPECT_EQ(sight::classify(u), LineClass::kPingPong);
  u.migratory_changes = 2;  // half read-first is below the 3/4 threshold
  EXPECT_EQ(sight::classify(u), LineClass::kPingPong);
}

// --- planted false sharing ---

// The classic bug: two processors increment their "own" 8-byte counters that
// the layout packed into one 64 B line.
TEST(SightFalseSharing, PlantedPerProcCountersInOneLineAreDetected) {
  auto sm = make_sight(2);
  alignas(64) static std::uint64_t counters[8] = {};
  sm->register_region(counters, sizeof(counters), HomePolicy::kFixed, 0,
                      "fixture.counters");
  sm->set_object_granule("fixture.counters", sizeof(std::uint64_t));

  std::uint64_t now = 0;
  for (int i = 0; i < 8; ++i) {
    sm->on_write(0, &counters[0], 8, now);
    now += 10;
    sm->on_write(1, &counters[1], 8, now);
    now += 10;
  }

  const SightReport rep = sm->build_report(CellResolver{});
  ASSERT_EQ(rep.false_sharing.size(), 1u);
  const sight::Finding& f = rep.false_sharing[0];
  EXPECT_EQ(f.region, "fixture.counters");
  EXPECT_EQ(f.line, 0u);
  EXPECT_EQ(f.objects, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(f.procs, (std::vector<int>{0, 1}));
  EXPECT_GE(f.hits, 8u);
  EXPECT_EQ(rep.false_sharing_hits, f.hits);
  // Blind cross-writes also classify the line ping-pong.
  EXPECT_EQ(class_lines(rep, LineClass::kPingPong), 1u);
}

// The fix — one counter per line — silences the detector and the line class.
TEST(SightFalseSharing, PaddedCountersAreTheNegativeControl) {
  struct alignas(64) Padded {
    std::uint64_t v = 0;
    char pad[56];
  };
  auto sm = make_sight(2);
  alignas(64) static Padded padded[2];
  sm->register_region(padded, sizeof(padded), HomePolicy::kFixed, 0, "fixture.padded");
  sm->set_object_granule("fixture.padded", sizeof(Padded));

  std::uint64_t now = 0;
  for (int i = 0; i < 8; ++i) {
    sm->on_write(0, &padded[0].v, 8, now);
    now += 10;
    sm->on_write(1, &padded[1].v, 8, now);
    now += 10;
  }

  const SightReport rep = sm->build_report(CellResolver{});
  EXPECT_TRUE(rep.false_sharing.empty());
  EXPECT_EQ(rep.false_sharing_hits, 0u);
  EXPECT_EQ(class_lines(rep, LineClass::kPrivate), 2u);
}

TEST(SightFalseSharing, WritesFartherApartThanTheWindowDoNotCount) {
  auto sm = make_sight(2);
  alignas(64) static std::uint64_t counters[8] = {};
  sm->register_region(counters, sizeof(counters), HomePolicy::kFixed, 0,
                      "fixture.counters");
  sm->set_object_granule("fixture.counters", sizeof(std::uint64_t));
  sm->set_window_ns(100);

  std::uint64_t now = 0;
  for (int i = 0; i < 8; ++i) {
    sm->on_write(0, &counters[0], 8, now);
    now += 5000;
    sm->on_write(1, &counters[1], 8, now);
    now += 5000;
  }
  const SightReport rep = sm->build_report(CellResolver{});
  EXPECT_TRUE(rep.false_sharing.empty());
  // Still genuinely shared — the classifier sees it even if the writes are
  // too far apart to cost coherence traffic.
  EXPECT_EQ(class_lines(rep, LineClass::kPingPong), 1u);
}

TEST(SightFalseSharing, TrueSharingOfOneObjectIsNotFlagged) {
  auto sm = make_sight(2);
  alignas(64) static std::uint64_t counters[8] = {};
  sm->register_region(counters, sizeof(counters), HomePolicy::kFixed, 0,
                      "fixture.counters");
  sm->set_object_granule("fixture.counters", sizeof(std::uint64_t));
  std::uint64_t now = 0;
  for (int i = 0; i < 8; ++i) {
    sm->on_write(i % 2, &counters[0], 8, now);  // both procs, SAME object
    now += 10;
  }
  EXPECT_TRUE(sm->build_report(CellResolver{}).false_sharing.empty());
}

TEST(SightFalseSharing, RegionsWithoutAGranuleAreNeverFlagged) {
  auto sm = make_sight(2);
  alignas(64) static std::uint64_t counters[8] = {};
  sm->register_region(counters, sizeof(counters), HomePolicy::kFixed, 0,
                      "fixture.counters");
  std::uint64_t now = 0;
  for (int i = 0; i < 8; ++i) {
    sm->on_write(0, &counters[0], 8, now);
    now += 10;
    sm->on_write(1, &counters[1], 8, now);
    now += 10;
  }
  EXPECT_TRUE(sm->build_report(CellResolver{}).false_sharing.empty());
}

TEST(SightWindow, EnvOverrideBeatsThePlatformDefault) {
  ::setenv("PTB_SIGHT_WINDOW_NS", "12345", 1);
  auto sm = make_sight(2);
  EXPECT_EQ(sm->window_ns(), 12345u);
  ::unsetenv("PTB_SIGHT_WINDOW_NS");
  auto sm2 = make_sight(2);
  EXPECT_GT(sm2->window_ns(), 0u);
}

// --- reuse distance / working set ---

TEST(SightReuse, ExactStackDistancesAndPerPhaseWorkingSets) {
  auto sm = make_sight(1);
  alignas(64) static char buf[64 * 4];
  sm->register_region(buf, sizeof(buf), HomePolicy::kFixed, 0, "fixture.buf");

  sm->on_phase(0, Phase::kTreeBuild);
  // A B C A: the second A has exactly 2 distinct lines in between.
  sm->on_read(0, buf + 0, 4, 0);
  sm->on_read(0, buf + 64, 4, 10);
  sm->on_read(0, buf + 128, 4, 20);
  sm->on_read(0, buf + 0, 4, 30);
  sm->on_phase(0, Phase::kForces);
  sm->on_read(0, buf + 0, 4, 40);  // re-touch in a new phase: distance 0

  const SightReport rep = sm->build_report(CellResolver{});
  const sight::WorkingSetRow* build = nullptr;
  const sight::WorkingSetRow* forces = nullptr;
  for (const auto& w : rep.working_set) {
    if (w.phase == static_cast<int>(Phase::kTreeBuild)) build = &w;
    if (w.phase == static_cast<int>(Phase::kForces)) forces = &w;
  }
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->distinct_lines, 3u);
  EXPECT_EQ(build->cold, 3u);  // A, B, C first-ever touches
  ASSERT_EQ(build->reuse.count(), 1u);
  EXPECT_DOUBLE_EQ(build->reuse.stat().max(), 2.0);  // the A..A distance

  ASSERT_NE(forces, nullptr);
  EXPECT_EQ(forces->distinct_lines, 1u);
  EXPECT_EQ(forces->cold, 0u);
  ASSERT_EQ(forces->reuse.count(), 1u);
  EXPECT_DOUBLE_EQ(forces->reuse.stat().max(), 0.0);  // immediate re-touch
}

TEST(SightReuse, SlotCompactionPreservesDistances) {
  auto sm = make_sight(1);
  // 33 lines cycled many times: >1024 accesses forces at least one Fenwick
  // compaction; every post-warm-up cycle must still see distance 32.
  alignas(64) static char buf[64 * 33];
  sm->register_region(buf, sizeof(buf), HomePolicy::kFixed, 0, "fixture.buf");
  for (int round = 0; round < 40; ++round)
    for (int l = 0; l < 33; ++l) sm->on_read(0, buf + 64 * l, 1, 0);
  const SightReport rep = sm->build_report(CellResolver{});
  ASSERT_EQ(rep.working_set.size(), 1u);
  const auto& w = rep.working_set[0];
  EXPECT_EQ(w.distinct_lines, 33u);
  EXPECT_EQ(w.cold, 33u);
  EXPECT_EQ(w.reuse.count(), 40u * 33u - 33u);
  EXPECT_DOUBLE_EQ(w.reuse.stat().max(), 32.0);
  EXPECT_DOUBLE_EQ(w.reuse.stat().mean(), 32.0);  // every reuse sees all others
}

// --- decorator plumbing ---

TEST(SightModelTest, ForwardsLatenciesAndStatsUnchanged) {
  const PlatformSpec spec = PlatformSpec::by_name("challenge");
  auto plain = make_mem_model(spec, 2);
  auto sighted = std::make_unique<SightModel>(make_mem_model(spec, 2));
  alignas(64) static char buf[4096];
  plain->register_region(buf, sizeof(buf), HomePolicy::kInterleavedBlock, 0, "buf");
  sighted->register_region(buf, sizeof(buf), HomePolicy::kInterleavedBlock, 0, "buf");
  std::uint64_t now = 0;
  for (int i = 0; i < 64; ++i) {
    const int p = i % 2;
    const std::size_t off = static_cast<std::size_t>((i * 192) % 4000);
    EXPECT_EQ(sighted->on_read(p, buf + off, 8, now), plain->on_read(p, buf + off, 8, now));
    EXPECT_EQ(sighted->on_write(p, buf + off, 8, now + 7),
              plain->on_write(p, buf + off, 8, now + 7));
    now += 100;
  }
  EXPECT_EQ(sighted->proc_stats(0).read_misses, plain->proc_stats(0).read_misses);
  EXPECT_EQ(sighted->total_stats().invalidations_sent,
            plain->total_stats().invalidations_sent);
}

TEST(SightModelTest, ObservedRegionsDoNotReachTheInnerModel) {
  auto sm = make_sight(2);
  alignas(64) static char lockwords[256];
  sm->add_observed_region(lockwords, sizeof(lockwords), "locks");
  // The observer resolves the lock word; the wrapped protocol model must not
  // (forwarding it would renumber blocks and change virtual time).
  std::uint64_t now = 0;
  sm->on_acquire(0, lockwords + 0, now);
  sm->on_release(0, lockwords + 0, now + 10);
  sm->on_acquire(1, lockwords + 0, now + 20);
  sm->on_release(1, lockwords + 0, now + 30);
  const SightReport rep = sm->build_report(CellResolver{});
  EXPECT_EQ(rep.lines_observed, 1u);
  // Acquire = read-then-write of the word: the contended lock is migratory.
  EXPECT_EQ(class_lines(rep, LineClass::kMigratory), 1u);
}

TEST(SightPath, FlagBeatsEnvAndEnvEnables) {
  ::setenv("PTB_SIGHT", "/tmp/env_sight.json", 1);
  EXPECT_EQ(sight::sight_path_from("/tmp/flag.json"), "/tmp/flag.json");
  EXPECT_EQ(sight::sight_path_from(""), "/tmp/env_sight.json");
  EXPECT_TRUE(sight::default_sight_enabled());
  ::setenv("PTB_SIGHT", "0", 1);
  EXPECT_FALSE(sight::default_sight_enabled());
  ::unsetenv("PTB_SIGHT");
  EXPECT_EQ(sight::sight_path_from(""), "");
  EXPECT_FALSE(sight::default_sight_enabled());
}

// --- end to end over the simulator ---

ExperimentSpec sight_spec(const char* platform, Algorithm alg, int n, int nprocs) {
  ExperimentSpec spec;
  spec.platform = platform;
  spec.algorithm = alg;
  spec.n = n;
  spec.nprocs = nprocs;
  spec.warmup_steps = 1;
  spec.measured_steps = 1;
  spec.sight = true;
  return spec;
}

// The tentpole guarantee: sight forwards every latency unchanged, so the
// whole algorithm × platform matrix must be bit-identical with and without
// the observer attached.
TEST(SightEndToEnd, BitIdenticalAcrossTheAlgorithmPlatformMatrix) {
  for (const char* platform : {"ideal", "challenge", "origin2000", "paragon",
                               "typhoon0_hlrc", "typhoon0_sc"}) {
    for (Algorithm alg : all_algorithms()) {
      ExperimentSpec spec = sight_spec(platform, alg, 600, 4);
      ExperimentRunner runner;  // shares the cached sequential baseline
      spec.sight = false;
      const ExperimentResult plain = runner.run(spec);
      spec.sight = true;
      const ExperimentResult sighted = runner.run(spec);
      const std::string cfg =
          std::string(platform) + "/" + algorithm_name(alg);
      EXPECT_EQ(sighted.run.total_ns, plain.run.total_ns) << cfg;
      EXPECT_EQ(sighted.treebuild_locks_total, plain.treebuild_locks_total) << cfg;
      EXPECT_EQ(sighted.mem.page_faults, plain.mem.page_faults) << cfg;
      EXPECT_EQ(sighted.mem.remote_misses, plain.mem.remote_misses) << cfg;
      EXPECT_FALSE(plain.sight.enabled);
      EXPECT_TRUE(sighted.sight.enabled) << cfg;
      EXPECT_GT(sighted.sight.lines_observed, 0u) << cfg;
    }
  }
}

// All three observers stacked (sight outermost, wrapping race, wrapping the
// protocol) still perturb nothing.
TEST(SightEndToEnd, CombinedSightRaceProfIsBitIdentical) {
  ExperimentSpec spec = sight_spec("typhoon0_hlrc", Algorithm::kOrig, 1500, 4);
  spec.sight = false;
  ExperimentRunner plain_runner;
  const ExperimentResult plain = plain_runner.run(spec);
  spec.sight = true;
  spec.race = true;
  spec.prof = true;
  ExperimentRunner full_runner;
  const ExperimentResult full = full_runner.run(spec);
  EXPECT_EQ(full.run.total_ns, plain.run.total_ns);
  EXPECT_EQ(full.treebuild_locks_total, plain.treebuild_locks_total);
  EXPECT_EQ(full.mem.page_faults, plain.mem.page_faults);
  ASSERT_TRUE(full.sight.enabled);
  ASSERT_TRUE(full.race.enabled);
  EXPECT_EQ(full.race.races, 0u);
  ASSERT_TRUE(full.profile.enabled);
}

// The paper's SPACE claim made data-centric: each processor builds its own
// subtree in its own spatial region, so during the build phase the cell
// lines it touches are overwhelmingly its own — only the handful of shared
// upper-tree cells where the subtrees link up are touched cross-processor
// (empirically ~2% of build-phase cell lines at n=2048/p=4) — and none of
// the write traffic is false sharing.
TEST(SightEndToEnd, SpaceBuildPhaseCellLinesArePrivateWithNoFalseSharing) {
  ExperimentRunner runner;
  const ExperimentResult r =
      runner.run(sight_spec("challenge", Algorithm::kSpace, 2048, 4));
  ASSERT_TRUE(r.sight.enabled);

  std::uint64_t cell_build_lines = 0, cell_build_private = 0;
  for (const sight::ClassCell& c : r.sight.classes) {
    if (c.phase != static_cast<int>(Phase::kTreeBuild) || c.scope != "cells") continue;
    cell_build_lines += c.lines;
    if (c.cls == LineClass::kPrivate) cell_build_private += c.lines;
  }
  ASSERT_GT(cell_build_lines, 0u);
  EXPECT_GE(static_cast<double>(cell_build_private),
            0.95 * static_cast<double>(cell_build_lines))
      << "private " << cell_build_private << " of " << cell_build_lines;

  for (const sight::Finding& f : r.sight.false_sharing)
    EXPECT_EQ(f.phase_hits[static_cast<std::size_t>(Phase::kTreeBuild)], 0u)
        << f.region << " line " << f.line;
}

// ORIG is the contrast: every processor inserts through the shared upper
// tree, so build-phase cell lines cannot all be private.
TEST(SightEndToEnd, OrigBuildPhaseSharesCells) {
  ExperimentRunner runner;
  const ExperimentResult r =
      runner.run(sight_spec("challenge", Algorithm::kOrig, 2048, 4));
  ASSERT_TRUE(r.sight.enabled);
  std::uint64_t shared_lines = 0;
  for (const sight::ClassCell& c : r.sight.classes) {
    if (c.phase != static_cast<int>(Phase::kTreeBuild) || c.scope != "cells") continue;
    if (c.cls != LineClass::kPrivate) shared_lines += c.lines;
  }
  EXPECT_GT(shared_lines, 0u);
}

TEST(SightEndToEnd, JsonIsWellFormedAndMetricsAreIngested) {
  ExperimentRunner runner;
  const ExperimentResult r =
      runner.run(sight_spec("origin2000", Algorithm::kLocal, 1024, 4));
  ASSERT_TRUE(r.sight.enabled);
  EXPECT_EQ(r.sight.platform, "origin2000");
  EXPECT_EQ(r.sight.algorithm, "LOCAL");
  EXPECT_EQ(r.sight.nprocs, 4);

  const std::string json = sight_json(r.sight);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  for (const char* key : {"provenance", "window_ns", "total_classes", "classes",
                          "false_sharing", "working_set", "reuse_p95"})
    EXPECT_NE(json.find(key), std::string::npos) << key;

  EXPECT_DOUBLE_EQ(r.metrics.value("sight.lines_observed", {}),
                   static_cast<double>(r.sight.lines_observed));
  EXPECT_DOUBLE_EQ(r.metrics.value("sight.false_sharing_hits", {}),
                   static_cast<double>(r.sight.false_sharing_hits));
  double class_sum = 0.0;
  for (int c = 1; c < sight::kNumClasses; ++c)
    class_sum += r.metrics.value(
        "sight.class_lines",
        {{"class", line_class_name(static_cast<LineClass>(c))}});
  EXPECT_DOUBLE_EQ(class_sum, static_cast<double>(r.sight.lines_observed));
  // Working sets flow into the registry per (proc, phase).
  EXPECT_GT(r.metrics.sum("sight.ws_distinct_lines"), 0.0);
}

}  // namespace
}  // namespace ptb
