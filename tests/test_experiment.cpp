// ExperimentRunner: speedups, baselines, caching, and the headline paper
// shapes at test scale.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace ptb {
namespace {

ExperimentSpec spec(const std::string& platform, Algorithm alg, int n, int np) {
  ExperimentSpec s;
  s.platform = platform;
  s.algorithm = alg;
  s.n = n;
  s.nprocs = np;
  s.warmup_steps = 1;
  s.measured_steps = 1;
  return s;
}

TEST(Experiment, SpeedupsPositiveAndBounded) {
  ExperimentRunner runner;
  const ExperimentResult r = runner.run(spec("origin2000", Algorithm::kLocal, 2000, 8));
  EXPECT_GT(r.speedup, 1.0);
  EXPECT_LE(r.speedup, 8.0);
  EXPECT_GT(r.seq_seconds, 0.0);
  EXPECT_GT(r.treebuild_fraction, 0.0);
  EXPECT_LT(r.treebuild_fraction, 1.0);
}

TEST(Experiment, BaselineCachedAcrossAlgorithms) {
  ExperimentRunner runner;
  const auto a = runner.run(spec("origin2000", Algorithm::kLocal, 1500, 4));
  const auto b = runner.run(spec("origin2000", Algorithm::kSpace, 1500, 4));
  EXPECT_DOUBLE_EQ(a.seq_seconds, b.seq_seconds);
}

TEST(Experiment, SequentialTimeScalesSuperlinearly) {
  // O(N log N): doubling N should more than double the time.
  ExperimentRunner runner;
  BHConfig bh;
  const double t1 = runner.sequential_seconds("origin2000", 1000, bh, 1, 1);
  const double t2 = runner.sequential_seconds("origin2000", 2000, bh, 1, 1);
  EXPECT_GT(t2, 2.0 * t1);
  EXPECT_LT(t2, 4.0 * t1);
}

TEST(Experiment, SequentialPlatformOrdering) {
  // Paper Table 1: Origin < Challenge < Typhoon-0 < Paragon.
  ExperimentRunner runner;
  BHConfig bh;
  const double origin = runner.sequential_seconds("origin2000", 1000, bh, 1, 1);
  const double challenge = runner.sequential_seconds("challenge", 1000, bh, 1, 1);
  const double typhoon = runner.sequential_seconds("typhoon0_hlrc", 1000, bh, 1, 1);
  const double paragon = runner.sequential_seconds("paragon", 1000, bh, 1, 1);
  EXPECT_LT(origin, challenge);
  EXPECT_LT(challenge, typhoon);
  EXPECT_LT(typhoon, paragon);
}

TEST(Experiment, LockCountsFallAcrossAlgorithms) {
  // Paper Fig. 15: ORIG -> LOCAL -> UPDATE -> PARTREE -> SPACE lock counts
  // fall off "very quickly". (UPDATE's advantage needs slow motion and
  // multiple steps, so here we check the rebuild algorithms + SPACE == 0.)
  ExperimentRunner runner;
  std::vector<std::uint64_t> locks;
  for (Algorithm alg :
       {Algorithm::kOrig, Algorithm::kLocal, Algorithm::kPartree, Algorithm::kSpace}) {
    locks.push_back(runner.run(spec("origin2000", alg, 2000, 8)).treebuild_locks_total);
  }
  // ORIG and LOCAL both lock per inserted particle, so they are near-equal;
  // PARTREE locks per merged subtree; SPACE never locks.
  EXPECT_NEAR(static_cast<double>(locks[0]), static_cast<double>(locks[1]),
              0.05 * static_cast<double>(locks[0]));
  EXPECT_GT(locks[1], 2 * locks[2]);
  EXPECT_GT(locks[2], locks[3]);
  EXPECT_EQ(locks[3], 0u);
}

TEST(Experiment, SvmRankingSpaceFirstPartreeSecond) {
  // Paper Figs 12/13: the SVM ranking is SPACE > PARTREE > (ORIG slowdown).
  // Use a paper-scale-ish size: at toy sizes SPACE's fixed partitioning
  // cost is not yet amortized.
  ExperimentRunner runner;
  const auto orig = runner.run(spec("typhoon0_hlrc", Algorithm::kOrig, 8192, 16));
  const auto local = runner.run(spec("typhoon0_hlrc", Algorithm::kLocal, 8192, 16));
  const auto partree = runner.run(spec("typhoon0_hlrc", Algorithm::kPartree, 8192, 16));
  const auto space = runner.run(spec("typhoon0_hlrc", Algorithm::kSpace, 8192, 16));
  // SPACE and PARTREE trade the lead within ~1% at 8k (SPACE pulls ahead as
  // n grows — see bench_fig13); both must clearly beat the
  // lock-per-particle algorithms, and ORIG must be last.
  EXPECT_GT(space.speedup, 0.97 * partree.speedup);
  EXPECT_GT(space.speedup, 1.2 * local.speedup);
  EXPECT_GT(partree.speedup, 1.2 * local.speedup);
  EXPECT_GT(local.speedup, orig.speedup);
  // And the paper's headline: the lock-heavy build makes ORIG's tree-build
  // share explode while SPACE's stays small.
  EXPECT_GT(orig.treebuild_fraction, 2.0 * space.treebuild_fraction);
}

TEST(Experiment, MemStatsPopulated) {
  ExperimentRunner runner;
  const auto r = runner.run(spec("paragon", Algorithm::kLocal, 1000, 4));
  EXPECT_GT(r.mem.page_faults, 0u);
  EXPECT_GT(r.mem.twins, 0u);
  EXPECT_GT(r.mem.diffs, 0u);
  EXPECT_GT(r.mem.notices_received, 0u);
  const auto d = runner.run(spec("origin2000", Algorithm::kLocal, 1000, 4));
  EXPECT_GT(d.mem.read_misses, 0u);
  EXPECT_GT(d.mem.invalidations_sent, 0u);
}

TEST(Experiment, ForceInteractionMetricsLabeled) {
  // forces.interactions{kind=cell|body,proc=p}: every processor gets both
  // kind cells, their per-kind sums match the headline interaction total
  // (st.interactions = cells + bodies per proc), and summarize() surfaces
  // the split.
  ExperimentRunner runner;
  const ExperimentSpec s = spec("origin2000", Algorithm::kSpace, 2000, 8);
  const auto r = runner.run(s);
  double cells = 0.0;
  double bodies = 0.0;
  for (int p = 0; p < s.nprocs; ++p) {
    trace::Labels lc = trace::proc_label(p);
    lc.emplace_back("kind", "cell");
    trace::Labels lb = trace::proc_label(p);
    lb.emplace_back("kind", "body");
    const double c = r.metrics.value("forces.interactions", lc);
    const double b = r.metrics.value("forces.interactions", lb);
    EXPECT_GT(c, 0.0) << "proc " << p;
    EXPECT_GT(b, 0.0) << "proc " << p;
    cells += c;
    bodies += b;
  }
  EXPECT_EQ(cells, r.metrics.sum("forces.interactions", {{"kind", "cell"}}));
  EXPECT_EQ(bodies, r.metrics.sum("forces.interactions", {{"kind", "body"}}));
  EXPECT_GT(bodies, 0.0);
  const std::string line = summarize(s, r);
  EXPECT_NE(line.find("interactions[cell="), std::string::npos);
}

TEST(Report, FormattersProduceReadableCells) {
  EXPECT_EQ(fmt_speedup(12.345), "12.35");
  EXPECT_EQ(fmt_percent(0.5), "50.0%");
  EXPECT_EQ(fmt_seconds(1.5), "1.500s");
  EXPECT_EQ(fmt_seconds(0.0021), "2.10ms");
  EXPECT_EQ(fmt_seconds(2e-5), "20.0us");
}

TEST(Report, FormatterUnitBoundaries) {
  // Exactly at the s/ms and ms/us switch points.
  EXPECT_EQ(fmt_seconds(1.0), "1.000s");
  EXPECT_EQ(fmt_seconds(0.9999), "999.90ms");
  EXPECT_EQ(fmt_seconds(1e-3), "1.00ms");
  EXPECT_EQ(fmt_seconds(0.99e-3), "990.0us");
  EXPECT_EQ(fmt_seconds(0.0), "0.0us");
  EXPECT_EQ(fmt_speedup(0.0), "0.00");
  EXPECT_EQ(fmt_percent(0.0), "0.0%");
  EXPECT_EQ(fmt_percent(1.0), "100.0%");
}

TEST(Report, BreakdownFromRegistry) {
  trace::MetricsRegistry m;
  // Two procs, one measured phase: 100ns total each, of which proc0 stalls
  // 30ns and waits 10ns at the barrier; warm-up ("other") must be ignored.
  m.add("time.phase_ns", trace::proc_phase_label(0, "forces"), 100.0);
  m.add("time.phase_ns", trace::proc_phase_label(1, "forces"), 100.0);
  m.add("time.phase_ns", trace::proc_phase_label(0, "other"), 1e9);
  m.add("time.mem_stall_ns", trace::proc_phase_label(0, "forces"), 30.0);
  m.add("sync.barrier_wait_ns", trace::proc_phase_label(0, "forces"), 10.0);
  const Breakdown b = breakdown_from(m, 2);
  EXPECT_DOUBLE_EQ(b.total_s, 100e-9);
  EXPECT_DOUBLE_EQ(b.mem_stall_s, 15e-9);
  EXPECT_DOUBLE_EQ(b.barrier_wait_s, 5e-9);
  EXPECT_DOUBLE_EQ(b.lock_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(b.busy_s, 80e-9);
  EXPECT_DOUBLE_EQ(b.frac(b.busy_s), 0.8);
}

TEST(Report, WaitFormatting) {
  WaitSummary none;
  EXPECT_EQ(fmt_wait(none), "none");
  WaitSummary w;
  w.events = 12;
  w.mean_s = 2e-3;
  w.max_s = 1.5;
  w.p50_s = 0.1e-3;
  w.p95_s = 0.5e-3;
  w.p99_s = 1e-3;
  EXPECT_EQ(fmt_wait(w),
            "mean=2.00ms p50=100.0us p95=500.0us p99=1.00ms max=1.500s (x12)");
}

}  // namespace
}  // namespace ptb
