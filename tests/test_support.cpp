// Unit tests for the support utilities: RNG determinism and distribution
// sanity, statistics accumulators, histogram, table printer, CLI parser.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace ptb {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform(-1.0, 1.0));
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 3.0), 0.02);
}

TEST(Rng, NextBelowIsBounded) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(17);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[r.next_below(8)];
  for (int c : seen) EXPECT_GT(c, 800);  // each bucket near 1000
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(r.next_normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSequentialAdds) {
  RunningStat all, a, b;
  const double xs[] = {3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0, 3.5};
  for (int i = 0; i < 8; ++i) {
    all.add(xs[i]);
    (i < 3 ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(RunningStat, MergeWithEmptyEitherSide) {
  RunningStat a, b;
  a.add(2.0);
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Distribution, BucketEdges) {
  Distribution d;
  d.add(0.0);   // [0,1) -> bucket 0
  d.add(0.99);  // bucket 0
  d.add(1.0);   // [1,2) -> bucket 1
  d.add(2.0);   // [2,4) -> bucket 2
  d.add(3.99);  // bucket 2
  d.add(4.0);   // [4,8) -> bucket 3
  EXPECT_EQ(d.count(), 6u);
  EXPECT_EQ(d.bucket_count(0), 2u);
  EXPECT_EQ(d.bucket_count(1), 1u);
  EXPECT_EQ(d.bucket_count(2), 2u);
  EXPECT_EQ(d.bucket_count(3), 1u);
}

TEST(Distribution, HugeSampleClampsToLastBucket) {
  Distribution d;
  d.add(1e30);
  EXPECT_EQ(d.bucket_count(Distribution::kBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(d.stat().max(), 1e30);
}

TEST(Distribution, QuantileBoundsAndMonotonicity) {
  Distribution d;
  for (int i = 1; i <= 1000; ++i) d.add(static_cast<double>(i));
  EXPECT_EQ(d.quantile(0.0), d.stat().min());
  EXPECT_DOUBLE_EQ(d.quantile(1.0), d.stat().max());
  const double p50 = d.quantile(0.5);
  const double p95 = d.p95();
  EXPECT_LE(p50, p95);
  EXPECT_GE(p50, d.stat().min());
  EXPECT_LE(p95, d.stat().max());
  // With log2 buckets the interpolation is coarse but must land in the
  // right power-of-two range: p95 of 1..1000 is in [512, 1024).
  EXPECT_GE(p95, 512.0);
}

TEST(Distribution, EmptyIsSafe) {
  Distribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.quantile(0.5), 0.0);
  EXPECT_EQ(d.p95(), 0.0);
}

TEST(Distribution, MergeAddsBucketsAndMoments) {
  Distribution a, b, all;
  for (double v : {1.0, 10.0, 100.0}) {
    a.add(v);
    all.add(v);
  }
  for (double v : {2.0, 20.0, 200.0}) {
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 6u);
  EXPECT_DOUBLE_EQ(a.stat().mean(), all.stat().mean());
  for (int i = 0; i < Distribution::kBuckets; ++i)
    EXPECT_EQ(a.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);  // clamps to first
  h.add(42.0);  // clamps to last
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(9), 10.0);
}

TEST(Histogram, ExactBucketBoundariesGoToUpperBucket) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);  // lo edge -> bucket 0
  h.add(1.0);  // boundary between 0 and 1 -> bucket 1 (half-open buckets)
  h.add(9.0);  // -> bucket 9
  h.add(10.0); // hi edge clamps into the last bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(ImbalanceFactor, Balanced) {
  EXPECT_DOUBLE_EQ(imbalance_factor({2.0, 2.0, 2.0}), 1.0);
}

TEST(ImbalanceFactor, Skewed) {
  EXPECT_DOUBLE_EQ(imbalance_factor({1.0, 1.0, 4.0}), 2.0);
}

TEST(Table, RendersAlignedRows) {
  Table t("demo");
  t.set_header({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  // Header divider present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "--flag"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0, ""), 3);
  EXPECT_EQ(cli.get_int("beta", 0, ""), 7);
  EXPECT_TRUE(cli.get_bool("flag", false, ""));
  EXPECT_EQ(cli.get_string("gamma", "dflt", ""), "dflt");
  cli.finish();
}

TEST(Cli, IntList) {
  const char* argv[] = {"prog", "--sizes=1,2,30"};
  Cli cli(2, const_cast<char**>(argv));
  const auto v = cli.get_int_list("sizes", "", "");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 30);
  cli.finish();
}

}  // namespace
}  // namespace ptb
