// UPDATE-specific semantics: incremental maintenance across time-steps,
// reclamation, stability under zero motion, lock-count advantage.
#include <gtest/gtest.h>

#include "bh/verify.hpp"
#include "harness/app.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/update.hpp"

namespace ptb {
namespace {

/// Runs `steps` full time-steps and then one more build, so the final tree is
/// fresh w.r.t. the final body positions and can be checked strictly. The
/// FIRST step (UPDATE's initial full build) is attributed to kOther so
/// lock counts reflect steady-state behaviour.
template <class Builder>
AppState run_steps_then_build(const BHConfig& cfg, int np, int steps,
                              std::uint64_t* locks_out = nullptr) {
  AppState st = make_app_state(cfg, np);
  SimContext ctx(PlatformSpec::ideal(), np);
  register_common_regions(ctx, st);
  Builder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) {
    for (int s = 0; s < steps; ++s) timestep(rt, st, builder, /*measured=*/s > 0);
    rt.begin_phase(Phase::kTreeBuild);
    builder.build(rt);
    rt.barrier();
    rt.begin_phase(Phase::kOther);
  });
  if (locks_out != nullptr) {
    *locks_out = 0;
    for (const auto& ps : ctx.stats())
      *locks_out += ps.lock_acquires[static_cast<int>(Phase::kTreeBuild)];
  }
  return st;
}

TEST(UpdateBuilder, TreeValidAfterSeveralSteps) {
  BHConfig cfg;
  cfg.n = 2000;
  cfg.dt = 0.05;  // meaningful motion
  AppState st = run_steps_then_build<UpdateBuilder>(cfg, 4, 4);
  const TreeCheckResult res = check_tree(st.tree.root, st.bodies, st.cfg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.body_count, cfg.n);
  // The body->leaf map stayed coherent through relocations.
  for (int bi = 0; bi < cfg.n; ++bi) {
    const Node* leaf = st.tree.leaf_of(bi);
    ASSERT_NE(leaf, nullptr);
    ASSERT_TRUE(leaf->is_leaf(std::memory_order_relaxed));
    EXPECT_TRUE(leaf->cube.contains(st.bodies[static_cast<std::size_t>(bi)].pos));
  }
}

TEST(UpdateBuilder, NoMotionMeansNoRestructuring) {
  // With dt = 0 bodies never move, so after the initial build every later
  // "update" must leave the tree bit-identical (pure-maintenance fixpoint).
  BHConfig cfg;
  cfg.n = 1500;
  cfg.dt = 0.0;
  AppState st = make_app_state(cfg, 4);
  SimContext ctx(PlatformSpec::ideal(), 4);
  register_common_regions(ctx, st);
  UpdateBuilder builder(st);
  builder.register_regions(ctx);
  std::uint64_t h1 = 0, h2 = 0;
  ctx.run([&](SimProc& rt) {
    timestep(rt, st, builder, true);
    rt.barrier();
    if (rt.self() == 0) h1 = canonical_hash(st.tree.root, st.bodies);
    rt.barrier();
    timestep(rt, st, builder, true);
    timestep(rt, st, builder, true);
    rt.barrier();
    if (rt.self() == 0) h2 = canonical_hash(st.tree.root, st.bodies);
    rt.barrier();
  });
  EXPECT_EQ(h1, h2);
}

TEST(UpdateBuilder, ReclaimsEmptiedLeaves) {
  // Force heavy motion with the colliding-pair workload and check no dead
  // node stays reachable and counts balance.
  BHConfig cfg;
  cfg.n = 1000;
  cfg.dt = 0.2;  // violent steps => many relocations
  AppState st;
  st.cfg = cfg;
  st.init(make_colliding_pair(cfg.n, 3), 4);
  st.cfg = cfg;
  SimContext ctx(PlatformSpec::ideal(), 4);
  register_common_regions(ctx, st);
  UpdateBuilder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) {
    for (int s = 0; s < 5; ++s) timestep(rt, st, builder, true);
    rt.begin_phase(Phase::kTreeBuild);
    builder.build(rt);
    rt.barrier();
    rt.begin_phase(Phase::kOther);
  });
  const TreeCheckResult res = check_tree(st.tree.root, st.bodies, st.cfg);
  ASSERT_TRUE(res.ok) << res.error;  // checker rejects reachable dead nodes
  EXPECT_EQ(res.body_count, cfg.n);
}

TEST(UpdateBuilder, FewerLocksThanFullRebuildWhenMotionIsSlow) {
  BHConfig cfg;
  cfg.n = 3000;
  cfg.dt = 0.002;  // slow evolution: few movers per step
  std::uint64_t update_locks = 0, local_locks = 0;
  run_steps_then_build<UpdateBuilder>(cfg, 4, 3, &update_locks);
  run_steps_then_build<LocalBuilder>(cfg, 4, 3, &local_locks);
  // The final build-only pass: UPDATE relocates a handful of bodies while
  // LOCAL re-inserts all 3000.
  EXPECT_LT(update_locks * 5, local_locks);
}

TEST(UpdateBuilder, PhysicsStaysCloseToRebuild) {
  // UPDATE's tree can differ in shape from a full rebuild (no collapsing),
  // which perturbs forces only within the theta-approximation error. After a
  // few steps the two trajectories must still agree to ~1e-3 RMS.
  BHConfig cfg;
  cfg.n = 1000;
  cfg.dt = 0.0125;
  AppState a = make_app_state(cfg, 4);
  AppState b = make_app_state(cfg, 4);
  auto run = [&](AppState& st, auto&& mk) {
    SimContext ctx(PlatformSpec::ideal(), 4);
    register_common_regions(ctx, st);
    auto builder = mk(st);
    builder.register_regions(ctx);
    ctx.run([&](SimProc& rt) {
      for (int s = 0; s < 4; ++s) timestep(rt, st, builder, true);
    });
  };
  run(a, [](AppState& st) { return UpdateBuilder(st); });
  run(b, [](AppState& st) { return LocalBuilder(st); });
  double rms = 0.0;
  for (int i = 0; i < cfg.n; ++i) {
    rms += norm2(a.bodies[static_cast<std::size_t>(i)].pos -
                 b.bodies[static_cast<std::size_t>(i)].pos);
  }
  rms = std::sqrt(rms / cfg.n);
  EXPECT_LT(rms, 2e-3);
}

}  // namespace
}  // namespace ptb
