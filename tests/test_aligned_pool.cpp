// Page-aligned allocation utilities and the node pool.
#include <gtest/gtest.h>

#include "bh/pool.hpp"
#include "support/aligned.hpp"

namespace ptb {
namespace {

TEST(Aligned, VectorStorageIsPageAligned) {
  AlignedVec<int> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kRegionAlignment, 0u);
  AlignedVec<double> w;
  w.resize(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kRegionAlignment, 0u);
}

TEST(Aligned, ArrayIsPageAlignedAndValueInitialized) {
  auto arr = make_aligned_array<int>(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arr.get()) % kRegionAlignment, 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(arr[static_cast<std::size_t>(i)], 0);
}

TEST(Aligned, ArrayOfAtomicsStartsNull) {
  auto arr = make_aligned_array<std::atomic<void*>>(64);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(arr[static_cast<std::size_t>(i)].load(), nullptr);
}

TEST(Aligned, AllocatorEqualityAndRebind) {
  AlignedAlloc<int> a;
  AlignedAlloc<double> b;
  EXPECT_TRUE(a == AlignedAlloc<int>(b));
  int* p = a.allocate(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kRegionAlignment, 0u);
  a.deallocate(p, 10);
}

TEST(NodePool, TakeBumpAllocates) {
  NodePool pool;
  pool.init(16);
  Node* a = pool.take();
  Node* b = pool.take();
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(pool.used(), 2u);
  EXPECT_EQ(pool.capacity(), 16u);
}

TEST(NodePool, ResetReusesStorage) {
  NodePool pool;
  pool.init(8);
  Node* first = pool.take();
  pool.take();
  pool.reset();
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(pool.take(), first);
}

TEST(NodePool, CounterSupportsSharedFetchAdd) {
  NodePool pool;
  pool.init(8);
  auto& ctr = pool.counter();
  EXPECT_EQ(ctr.fetch_add(1), 0);
  EXPECT_EQ(pool.at(0), pool.base());
  EXPECT_EQ(pool.used(), 1u);
}

TEST(NodePool, MoveTransfersOwnership) {
  NodePool a;
  a.init(8);
  Node* base = a.base();
  a.take();
  NodePool b = std::move(a);
  EXPECT_EQ(b.base(), base);
  EXPECT_EQ(b.used(), 1u);
  EXPECT_EQ(a.capacity(), 0u);
}

TEST(NodePoolDeath, ExhaustionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  NodePool pool;
  pool.init(1);
  pool.take();
  EXPECT_DEATH(pool.take(), "node pool exhausted");
}

}  // namespace
}  // namespace ptb
